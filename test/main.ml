(* Aggregate the domain-based library test suites into one alcotest
   binary.  The fork-based cross-process suites (Test_procipc) run in
   their own binary, main_proc.ml: OCaml 5's Unix.fork is forbidden in
   any process that has ever spawned a domain, and these suites do. *)
let () =
  Alcotest.run "ulipc"
    (List.concat
       [
         Test_engine.suites;
         Test_os.suites;
         Test_shm.suites;
         Test_core.suites;
         Test_realipc.suites;
         Test_sharded.suites;
         Test_differential.suites;
         Test_workload.suites;
         Test_policies.suites;
         Test_observability.suites;
         Test_telemetry.suites;
         Test_trace_analysis.suites;
       ])
