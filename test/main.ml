(* Aggregate all library test suites into one alcotest binary. *)
let () =
  Alcotest.run "ulipc"
    (List.concat [ Test_engine.suites; Test_os.suites; Test_shm.suites; Test_core.suites; Test_realipc.suites; Test_sharded.suites; Test_differential.suites; Test_workload.suites; Test_policies.suites; Test_observability.suites; Test_trace_analysis.suites ])
