(* Tests for the cross-process substrate (lib/procipc): arena carving,
   the futex semaphore, the arena rings, and the protocols end to end
   across fork(2) — including the differential property that fork'd
   processes over the shm arena compute exactly the reply sequences the
   in-process domains backend computes, and the dead-peer guard that
   keeps a server from hanging when its client is killed mid-run.

   These suites live in their own binary (main_proc.ml), NOT in the
   aggregate main.ml: OCaml 5's [Unix.fork] refuses to run once any
   domain has ever been spawned in the process — joining the domain
   does not lift the ban — and the aggregate binary spawns domains in
   its earlier suites.  For the same reason the differential property
   below runs its domain-based reference leg inside a forked child, so
   this parent process stays domain-free for the next trial's fork.

   Every fork here follows the repo's child discipline: children never
   return into the test runner — they [Unix._exit] (no atexit, no
   buffered-output replay) — and parents always reap with waitpid. *)

module Parena = Ulipc_procipc.Parena
module Fsem = Ulipc_procipc.Fsem
module Pring = Ulipc_procipc.Pring
module Pslab = Ulipc_procipc.Pslab
module Proc_rpc = Ulipc_procipc.Proc_rpc

(* ------------------------------------------------------------------ *)
(* Fork plumbing: run [f] in a child, marshal its result back. *)

let in_child (f : unit -> 'a) : 'a =
  let rd, wr = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    Unix.close rd;
    (try
       let oc = Unix.out_channel_of_descr wr in
       Marshal.to_channel oc (f ()) [];
       flush oc
     with _ -> Unix._exit 1);
    Unix._exit 0
  | pid -> (
    Unix.close wr;
    let ic = Unix.in_channel_of_descr rd in
    let v : 'a = Marshal.from_channel ic in
    close_in ic;
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> v
    | _, status ->
      Alcotest.failf "child did not exit cleanly: %s"
        (match status with
        | Unix.WEXITED n -> Printf.sprintf "exit %d" n
        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s))

(* ------------------------------------------------------------------ *)
(* Parena: bump-allocation invariants *)

let test_arena_shared_across_fork () =
  let a = Parena.create ~size_words:64 () in
  let off = Parena.alloc_line a ~words:1 in
  Parena.set a off 0;
  let seen =
    in_child (fun () ->
        Parena.set a off 42;
        Parena.get a off)
  in
  Alcotest.(check int) "child wrote through the mapping" 42 seen;
  Alcotest.(check int) "parent reads the child's store" 42 (Parena.get a off)

(* Random allocation programs: every block is aligned as requested,
   in bounds, disjoint from every other block, and the offsets are
   monotone (it IS a bump allocator). *)
let prop_arena_alloc_invariants =
  let req_gen =
    QCheck.Gen.(
      pair (int_range 1 64) (int_range 0 5) >>= fun (words, e) ->
      return (words, 1 lsl e))
  in
  let arb =
    QCheck.make
      QCheck.Gen.(list_size (int_range 1 24) req_gen)
      ~print:(fun reqs ->
        String.concat "; "
          (List.map (fun (w, al) -> Printf.sprintf "%dw@%d" w al) reqs))
  in
  QCheck.Test.make ~count:200 ~name:"arena allocations aligned and disjoint"
    arb
    (fun reqs ->
      let a = Parena.create ~size_words:8192 () in
      let used0 = Parena.used_words a in
      let blocks =
        List.map
          (fun (words, align) -> (Parena.alloc a ~words ~align, words, align))
          reqs
      in
      let in_bounds =
        List.for_all
          (fun (off, words, _) ->
            off >= 0 && off + words <= Parena.size_words a)
          blocks
      in
      let aligned =
        List.for_all (fun (off, _, align) -> off mod align = 0) blocks
      in
      let rec monotone_disjoint = function
        | (o1, w1, _) :: ((o2, _, _) :: _ as rest) ->
          o1 + w1 <= o2 && monotone_disjoint rest
        | [ _ ] | [] -> true
      in
      in_bounds && aligned && monotone_disjoint blocks
      && Parena.used_words a
         >= used0 + List.fold_left (fun acc (w, _) -> acc + w) 0 reqs)

let test_arena_exhaustion_raises () =
  let a = Parena.create ~size_words:32 () in
  Alcotest.check_raises "over-allocation rejected"
    (Invalid_argument "Parena.alloc: arena exhausted (0 + 4096 > 32 words)")
    (fun () -> ignore (Parena.alloc a ~words:4096 ~align:1 : int))

(* ------------------------------------------------------------------ *)
(* Fsem: the futex semaphore *)

let test_fsem_uncontended () =
  let a = Parena.create ~size_words:64 () in
  let s = Fsem.create a in
  Alcotest.(check bool) "P on empty fails" false (Fsem.try_p s);
  Fsem.v s;
  Fsem.v s;
  Alcotest.(check int) "two credits" 2 (Fsem.value s);
  Alcotest.(check bool) "P succeeds" true (Fsem.try_p s);
  Fsem.p s;
  Alcotest.(check int) "drained" 0 (Fsem.value s)

let test_fsem_cross_process_wake () =
  let a = Parena.create ~size_words:64 () in
  let s = Fsem.create a in
  let n = 50 in
  match Unix.fork () with
  | 0 ->
    for _ = 1 to n do
      Fsem.v s
    done;
    Unix._exit 0
  | pid ->
    (* The child's Vs must wake every blocking P the parent issues —
       across the process boundary, through the kernel when the grace
       period misses. *)
    for _ = 1 to n do
      Fsem.p s
    done;
    Alcotest.(check int) "all credits consumed" 0 (Fsem.value s);
    ignore (Unix.waitpid [] pid)

let test_fsem_p_timed_expires () =
  let a = Parena.create ~size_words:64 () in
  let s = Fsem.create a in
  let t0 = Ulipc_observe.Clock.now_ns () in
  let got = Fsem.p_timed s ~timeout_ns:20_000_000 in
  let elapsed = Ulipc_observe.Clock.now_ns () - t0 in
  Alcotest.(check bool) "timed out without credit" false got;
  Alcotest.(check bool)
    (Printf.sprintf "waited at least ~20ms (%dns)" elapsed)
    true
    (elapsed >= 15_000_000);
  (* And with a credit available it returns immediately. *)
  Fsem.v s;
  Alcotest.(check bool) "credit claims instantly" true
    (Fsem.p_timed s ~timeout_ns:20_000_000)

let test_fsem_p_timed_woken_by_child () =
  let a = Parena.create ~size_words:64 () in
  let s = Fsem.create a in
  match Unix.fork () with
  | 0 ->
    Unix.sleepf 0.02;
    Fsem.v s;
    Unix._exit 0
  | pid ->
    Alcotest.(check bool) "woken well before the 5s timeout" true
      (Fsem.p_timed s ~timeout_ns:5_000_000_000);
    ignore (Unix.waitpid [] pid)

(* ------------------------------------------------------------------ *)
(* Pring: the arena rings *)

let test_spsc_fifo_and_capacity () =
  let a = Parena.create ~size_words:1024 () in
  let q = Pring.Spsc.create a ~capacity:8 in
  let cap = Pring.Spsc.capacity q in
  Alcotest.(check bool) "empty" true (Pring.Spsc.is_empty q);
  let pushed = ref 0 in
  while Pring.Spsc.enqueue q (100 + !pushed) do
    incr pushed
  done;
  Alcotest.(check int) "fills to capacity" cap !pushed;
  for i = 0 to cap - 1 do
    Alcotest.(check int) "FIFO order" (100 + i) (Pring.Spsc.dequeue q)
  done;
  Alcotest.(check int) "empty again" Pring.nil (Pring.Spsc.dequeue q)

let test_mpsc_fifo_and_capacity () =
  let a = Parena.create ~size_words:1024 () in
  let q = Pring.Mpsc.create a ~capacity:8 in
  let cap = Pring.Mpsc.capacity q in
  let pushed = ref 0 in
  while Pring.Mpsc.enqueue q (200 + !pushed) do
    incr pushed
  done;
  Alcotest.(check int) "fills to capacity" cap !pushed;
  for i = 0 to cap - 1 do
    Alcotest.(check int) "FIFO order" (200 + i) (Pring.Mpsc.dequeue q)
  done;
  Alcotest.(check int) "empty again" Pring.nil (Pring.Mpsc.dequeue q);
  (* A drained ring is reusable: seq words were recycled, not burnt. *)
  Alcotest.(check bool) "reusable after drain" true (Pring.Mpsc.enqueue q 7);
  Alcotest.(check int) "value survives" 7 (Pring.Mpsc.dequeue q)

(* length/is_empty: exact when quiescent (the only writer is the
   caller), conservative under a race.  The sequential leg pins the
   exact values through a fill/drain cycle; the cross-fork leg polls
   length while a child producer runs and holds the documented
   invariant — never negative, and never "empty" while values the
   parent has not yet dequeued are known to be inside. *)
module type RING = sig
  type t

  val create : Parena.t -> capacity:int -> t
  val capacity : t -> int
  val enqueue : t -> int -> bool
  val dequeue : t -> int
  val is_empty : t -> bool
  val length : t -> int
end

let length_fill_drain ~name (module R : RING) =
  let a = Parena.create ~size_words:1024 () in
  let q = R.create a ~capacity:8 in
  let cap = R.capacity q in
  Alcotest.(check int) (name ^ " empty length") 0 (R.length q);
  Alcotest.(check bool) (name ^ " empty") true (R.is_empty q);
  for i = 1 to cap do
    Alcotest.(check bool) (name ^ " enqueue") true (R.enqueue q i);
    Alcotest.(check int) (name ^ " length tracks fill") i (R.length q);
    Alcotest.(check bool) (name ^ " non-empty") false (R.is_empty q)
  done;
  for i = cap downto 1 do
    ignore (R.dequeue q);
    Alcotest.(check int) (name ^ " length tracks drain") (i - 1) (R.length q)
  done;
  Alcotest.(check bool) (name ^ " empty after drain") true (R.is_empty q)

let test_spsc_length_exact_quiescent () =
  length_fill_drain ~name:"spsc" (module Pring.Spsc)

let test_mpsc_length_exact_quiescent () =
  length_fill_drain ~name:"mpsc" (module Pring.Mpsc)

let test_spsc_length_conservative_under_race () =
  let a = Parena.create ~size_words:1024 () in
  let q = Pring.Spsc.create a ~capacity:16 in
  let n = 2000 in
  match Unix.fork () with
  | 0 ->
    for v = 0 to n - 1 do
      while not (Pring.Spsc.enqueue q v) do
        Parena.sched_yield ()
      done
    done;
    Unix._exit 0
  | pid ->
    let ok = ref true in
    for expect = 0 to n - 1 do
      (* The consumer is this process, so between a successful dequeue
         and the next one the snapshots race only against the producer:
         length may over-report arrivals but must never go negative,
         and a non-empty verdict can only become MORE true. *)
      if Pring.Spsc.length q < 0 then ok := false;
      let rec next () =
        let v = Pring.Spsc.dequeue q in
        if v = Pring.nil then (
          Parena.sched_yield ();
          next ())
        else v
      in
      if next () <> expect then ok := false
    done;
    ignore (Unix.waitpid [] pid);
    Alcotest.(check bool) "length never negative under race, FIFO kept" true
      !ok;
    Alcotest.(check int) "drained exactly" 0 (Pring.Spsc.length q);
    Alcotest.(check bool) "empty at quiescence" true (Pring.Spsc.is_empty q)

(* One producer process, one consumer process, 5000 values in order
   through a 16-slot ring: the fenceless single-writer publishes must
   never tear or reorder across the MAP_SHARED mapping. *)
let cross_fork_transfer enqueue dequeue q =
  let n = 5000 in
  match Unix.fork () with
  | 0 ->
    for v = 0 to n - 1 do
      while not (enqueue q v) do
        Parena.sched_yield ()
      done
    done;
    Unix._exit 0
  | pid ->
    let ok = ref true in
    for expect = 0 to n - 1 do
      let rec next () =
        let v = dequeue q in
        if v = Pring.nil then (
          Parena.sched_yield ();
          next ())
        else v
      in
      if next () <> expect then ok := false
    done;
    ignore (Unix.waitpid [] pid);
    !ok

let test_spsc_cross_fork () =
  let a = Parena.create ~size_words:1024 () in
  let q = Pring.Spsc.create a ~capacity:16 in
  Alcotest.(check bool) "in-order across fork" true
    (cross_fork_transfer Pring.Spsc.enqueue Pring.Spsc.dequeue q)

let test_mpsc_cross_fork () =
  let a = Parena.create ~size_words:1024 () in
  let q = Pring.Mpsc.create a ~capacity:16 in
  Alcotest.(check bool) "in-order across fork" true
    (cross_fork_transfer Pring.Mpsc.enqueue Pring.Mpsc.dequeue q)

(* ------------------------------------------------------------------ *)
(* Pslab across fork: slots allocated in the child are visible and
   releasable in the parent — index-passing ownership transfer. *)

let test_pslab_cross_fork_handoff () =
  let a = Parena.create ~size_words:4096 () in
  let slab = Pslab.create a ~slots:8 in
  let i =
    in_child (fun () ->
        let i = Pslab.try_alloc slab in
        Pslab.set_client slab i 3;
        Pslab.set_data slab i 777;
        i)
  in
  Alcotest.(check bool) "child allocated" true (i <> Pslab.nil);
  Alcotest.(check int) "payload crosses the fork" 777 (Pslab.get_data slab i);
  Alcotest.(check int) "client field crosses" 3 (Pslab.get_client slab i);
  Alcotest.(check int) "slot accounted in-use" 1 (Pslab.in_use_count slab);
  Pslab.release slab i;
  Alcotest.(check int) "parent released it" 0 (Pslab.in_use_count slab)

(* ------------------------------------------------------------------ *)
(* Differential: fork'd shm processes vs in-process domains.

   The same client-dependent transform and the same seeded traces as
   test_differential.ml, so a reply delivered to the wrong channel, out
   of order, or dropped across the process boundary is caught.  The
   domains side reuses Ulipc_real.Rpc; the proc side forks one child
   per client and serves from the parent. *)

let transform ~client v = (2 * v) + client

let run_proc waiting (traces : int list array) =
  let nclients = Array.length traces in
  let t = Proc_rpc.create ~capacity:8 ~nclients waiting in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 traces in
  let children =
    Array.to_list
      (Array.mapi
         (fun c trace ->
           let rd, wr = Unix.pipe ~cloexec:false () in
           match Unix.fork () with
           | 0 ->
             Unix.close rd;
             (try
                let replies =
                  List.map (fun v -> Proc_rpc.call t ~client:c v) trace
                in
                let oc = Unix.out_channel_of_descr wr in
                Marshal.to_channel oc (replies : int list) [];
                flush oc
              with _ -> Unix._exit 1);
             Unix._exit 0
           | pid ->
             Unix.close wr;
             (pid, rd))
         traces)
  in
  for _ = 1 to total do
    Proc_rpc.serve t transform
  done;
  let replies =
    List.map
      (fun (pid, rd) ->
        let ic = Unix.in_channel_of_descr rd in
        let r : int list = Marshal.from_channel ic in
        close_in ic;
        (match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _, _ -> Alcotest.fail "proc client did not exit cleanly");
        r)
      children
  in
  Array.of_list replies

let run_domains waiting (traces : int list array) =
  let nclients = Array.length traces in
  let t : (int, int) Ulipc_real.Rpc.t =
    Ulipc_real.Rpc.create ~capacity:8
      ~transport:Ulipc_real.Real_substrate.Ring ~nclients waiting
  in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 traces in
  let server =
    Domain.spawn (fun () ->
        for _ = 1 to total do
          let client, v = Ulipc_real.Rpc.receive t in
          Ulipc_real.Rpc.reply t ~client (transform ~client v)
        done)
  in
  let clients =
    Array.mapi
      (fun c trace ->
        Domain.spawn (fun () ->
            List.map (fun v -> Ulipc_real.Rpc.send t ~client:c v) trace))
      traces
  in
  let replies = Array.map Domain.join clients in
  Domain.join server;
  replies

let traces_arb =
  QCheck.make
    QCheck.Gen.(
      int_range 1 3 >>= fun nclients ->
      array_repeat nclients (list_size (int_bound 8) (int_bound 1000)))
    ~print:(fun traces ->
      String.concat "; "
        (Array.to_list
           (Array.map
              (fun l ->
                "[" ^ String.concat "," (List.map string_of_int l) ^ "]")
              traces)))

let prop_proc_matches_domains name waiting =
  (* fork-per-trial is the dominant cost; 25 random programs per
     protocol keeps the suite under a few seconds while still varying
     client counts and interleavings. *)
  QCheck.Test.make ~count:25
    ~name:(Printf.sprintf "fork'd shm and domains agree: %s" name)
    traces_arb
    (fun traces ->
      let proc = run_proc waiting traces in
      (* The domains leg runs in a forked child: once a process spawns
         a domain it may never fork again (OCaml 5), and the next trial
         of this very property needs to. *)
      let dom = in_child (fun () -> run_domains waiting traces) in
      if proc <> dom then
        QCheck.Test.fail_reportf "reply sequences differ for %s" name;
      Array.iteri
        (fun c trace ->
          let expect = List.map (fun v -> transform ~client:c v) trace in
          if proc.(c) <> expect then
            QCheck.Test.fail_reportf "proc replies wrong for client %d" c)
        traces;
      true)

(* ------------------------------------------------------------------ *)
(* Dead peer: the server must detect a SIGKILLed client via the timed
   receive instead of parking forever in the futex. *)

let test_dead_peer_detected () =
  let t = Proc_rpc.create ~capacity:8 ~nclients:1 Proc_rpc.Block in
  match Unix.fork () with
  | 0 ->
    (* Client: call forever; the parent kills us mid-run. *)
    (try
       let i = ref 0 in
       while true do
         incr i;
         ignore (Proc_rpc.call t ~client:0 !i : int)
       done
     with _ -> ());
    Unix._exit 0
  | pid ->
    (* Serve a handful of requests so the kill lands mid-conversation,
       not before it starts. *)
    for _ = 1 to 5 do
      Proc_rpc.serve t (fun ~client:_ v -> v + 1)
    done;
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    (* Drain any in-flight request the client enqueued before dying,
       then require a clean timeout — not a hang.  The 100ms budget per
       receive bounds the whole loop well under the test timeout. *)
    let t0 = Ulipc_observe.Clock.now_ns () in
    let rec drain n =
      match Proc_rpc.receive_opt t ~timeout_ns:100_000_000 with
      | Some (client, v) ->
        Proc_rpc.reply t ~client (v + 1);
        if n > 3 then Alcotest.fail "dead client keeps sending"
        else drain (n + 1)
      | None -> ()
    in
    drain 0;
    let elapsed_ms =
      (Ulipc_observe.Clock.now_ns () - t0) / 1_000_000
    in
    Alcotest.(check bool)
      (Printf.sprintf "detected dead peer promptly (%dms)" elapsed_ms)
      true (elapsed_ms < 2_000)

(* ------------------------------------------------------------------ *)
(* End to end through the fork driver: counters balance, echoes check
   out (the driver fails internally on a wrong echo), and the merged
   pid-namespaced trace passes the causal invariant checker. *)

let test_driver_counters_balance () =
  let m =
    Ulipc_workload.Proc_driver.run ~nclients:2 ~messages:100 Proc_rpc.Block
  in
  let c = m.Ulipc_workload.Metrics.counters in
  let open Ulipc.Counters in
  Alcotest.(check int) "driver reports all messages" 200
    m.Ulipc_workload.Metrics.messages;
  Alcotest.(check bool) "sends cover the workload" true (c.sends >= 200);
  Alcotest.(check int) "replies match sends" c.sends c.replies;
  Alcotest.(check bool) "throughput is finite" true
    (Float.is_finite m.Ulipc_workload.Metrics.throughput_msg_per_ms)

let test_driver_trace_invariants () =
  let events_out = ref [] and dropped_out = ref 0 in
  let _m =
    Ulipc_workload.Proc_driver.run ~nclients:2 ~messages:150 ~events_out
      ~dropped_out Proc_rpc.Block
  in
  let events = !events_out in
  Alcotest.(check bool) "trace non-empty" true (events <> []);
  (* Actors must be pid-namespaced: three processes, three actors. *)
  let actors =
    List.sort_uniq compare
      (List.map (fun e -> e.Ulipc_observe.Event.actor) events)
  in
  Alcotest.(check int) "one actor per process" 3 (List.length actors);
  let r =
    Ulipc_observe.Trace_analysis.analyse ~complete:(!dropped_out = 0) events
  in
  Alcotest.(check int) "no causal violations" 0
    (List.length r.Ulipc_observe.Trace_analysis.violations);
  Alcotest.(check bool) "blocks were observed" true
    (r.Ulipc_observe.Trace_analysis.blocks > 0)

let test_fd_baseline_echoes () =
  (* The pipe baseline the bench rows race: run it small, here, so a
     broken framing or a hung select fails in the suite and not only
     in CI's bench smoke. *)
  List.iter
    (fun transport ->
      let m =
        Ulipc_workload.Proc_driver.run_fd ~transport ~nclients:2 ~messages:50
          ()
      in
      Alcotest.(check int)
        (Ulipc_workload.Proc_driver.fd_transport_name transport ^ " messages")
        100 m.Ulipc_workload.Metrics.messages)
    Ulipc_workload.Proc_driver.[ Fd_pipe; Fd_socket ]

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "procipc.arena",
      [
        Alcotest.test_case "shared across fork" `Quick
          test_arena_shared_across_fork;
        QCheck_alcotest.to_alcotest prop_arena_alloc_invariants;
        Alcotest.test_case "exhaustion raises" `Quick
          test_arena_exhaustion_raises;
      ] );
    ( "procipc.fsem",
      [
        Alcotest.test_case "uncontended V/P" `Quick test_fsem_uncontended;
        Alcotest.test_case "cross-process wake" `Quick
          test_fsem_cross_process_wake;
        Alcotest.test_case "p_timed expires" `Quick test_fsem_p_timed_expires;
        Alcotest.test_case "p_timed woken by child" `Quick
          test_fsem_p_timed_woken_by_child;
      ] );
    ( "procipc.ring",
      [
        Alcotest.test_case "spsc fifo+capacity" `Quick
          test_spsc_fifo_and_capacity;
        Alcotest.test_case "mpsc fifo+capacity" `Quick
          test_mpsc_fifo_and_capacity;
        Alcotest.test_case "spsc length exact when quiescent" `Quick
          test_spsc_length_exact_quiescent;
        Alcotest.test_case "mpsc length exact when quiescent" `Quick
          test_mpsc_length_exact_quiescent;
        Alcotest.test_case "spsc length conservative under race" `Quick
          test_spsc_length_conservative_under_race;
        Alcotest.test_case "spsc cross-fork transfer" `Quick
          test_spsc_cross_fork;
        Alcotest.test_case "mpsc cross-fork transfer" `Quick
          test_mpsc_cross_fork;
        Alcotest.test_case "slab cross-fork handoff" `Quick
          test_pslab_cross_fork_handoff;
      ] );
    ( "procipc.differential",
      [
        QCheck_alcotest.to_alcotest
          (prop_proc_matches_domains "BSW" Proc_rpc.Block);
        QCheck_alcotest.to_alcotest
          (prop_proc_matches_domains "BSWY" Proc_rpc.Block_yield);
        QCheck_alcotest.to_alcotest
          (prop_proc_matches_domains "ADAPT" (Proc_rpc.Adaptive 4096));
      ] );
    ( "procipc.liveness",
      [
        Alcotest.test_case "dead peer detected" `Quick test_dead_peer_detected;
        Alcotest.test_case "driver counters balance" `Quick
          test_driver_counters_balance;
        Alcotest.test_case "driver trace invariants" `Quick
          test_driver_trace_invariants;
        Alcotest.test_case "fd baselines echo" `Quick test_fd_baseline_echoes;
      ] );
  ]
