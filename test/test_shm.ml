(* Tests for the simulated shared-memory primitives and the Michael & Scott
   two-lock queue.  Shared-memory operations only run inside simulated
   processes, so each test spins up a small kernel. *)

open Ulipc_engine
open Ulipc_os
open Ulipc_shm

let costs = Costs.default

let make_kernel ?(ncpus = 1) () =
  Kernel.create ~ncpus
    ~policy:(Sched_fixed.create Sched_fixed.default_params)
    ~costs ()

(* Run [f] inside a single simulated process and return its result. *)
let in_proc ?ncpus f =
  let k = make_kernel ?ncpus () in
  let result = ref None in
  let _ = Kernel.spawn k ~name:"test" (fun () -> result := Some (f k)) in
  (match Kernel.run k with
  | Kernel.Completed -> ()
  | r -> Alcotest.failf "simulation did not complete: %a" Kernel.pp_result r);
  match !result with Some v -> v | None -> Alcotest.fail "no result"

(* ------------------------------------------------------------------ *)
(* Cells and flags *)

let test_cell_read_write () =
  let v =
    in_proc (fun _ ->
        let c = Mem.Cell.make ~costs 1 in
        Mem.Cell.write c 42;
        Mem.Cell.read c)
  in
  Alcotest.(check int) "round trip" 42 v

let test_cell_charges_time () =
  let k = make_kernel () in
  let c = Mem.Cell.make ~costs 0 in
  let _ =
    Kernel.spawn k ~name:"t" (fun () ->
        for i = 1 to 10 do
          Mem.Cell.write c i
        done)
  in
  ignore (Kernel.run k : Kernel.run_result);
  Alcotest.(check bool)
    "time advanced by at least ten stores" true
    (Kernel.now k >= 10 * costs.Costs.shared_write)

let test_flag_tas_semantics () =
  let before, after, second =
    in_proc (fun _ ->
        let f = Mem.Flag.make ~costs false in
        let before = Mem.Flag.test_and_set f in
        let after = Mem.Flag.peek f in
        let second = Mem.Flag.test_and_set f in
        (before, after, second))
  in
  Alcotest.(check bool) "tas of clear flag returns false" false before;
  Alcotest.(check bool) "flag set afterwards" true after;
  Alcotest.(check bool) "second tas returns true" true second

let test_flag_clear () =
  let v =
    in_proc (fun _ ->
        let f = Mem.Flag.make ~costs true in
        Mem.Flag.clear f;
        Mem.Flag.read f)
  in
  Alcotest.(check bool) "cleared" false v

(* ------------------------------------------------------------------ *)
(* Spinlock *)

let test_spinlock_mutual_exclusion () =
  (* Two processes on two CPUs increment a plain counter under the lock;
     with mutual exclusion the lost-update count is zero. *)
  let k = make_kernel ~ncpus:2 () in
  let lock = Mem.Spinlock.make ~costs () in
  let counter = ref 0 in
  let body () =
    for _ = 1 to 500 do
      Mem.Spinlock.acquire lock;
      let v = !counter in
      (* A charged step inside the critical section widens the window a
         racing increment would need. *)
      Usys.work (Sim_time.ns 500);
      counter := v + 1;
      Mem.Spinlock.release lock
    done
  in
  let _ = Kernel.spawn k ~name:"a" body in
  let _ = Kernel.spawn k ~name:"b" body in
  (match Kernel.run k with
  | Kernel.Completed -> ()
  | r -> Alcotest.failf "run: %a" Kernel.pp_result r);
  Alcotest.(check int) "no lost updates" 1000 !counter;
  Alcotest.(check bool)
    "lock saw contention on two cpus" true
    (Mem.Spinlock.contended_acquires lock > 0)

(* ------------------------------------------------------------------ *)
(* Ms_queue: single-process behaviour *)

let test_queue_fifo () =
  let out =
    in_proc (fun _ ->
        let q = Ms_queue.create ~costs ~capacity:8 () in
        List.iter (fun v -> ignore (Ms_queue.enqueue q v : bool)) [ 1; 2; 3 ];
        List.filter_map (fun () -> Ms_queue.dequeue q) [ (); (); (); () ])
  in
  Alcotest.(check (list int)) "fifo order, then empty" [ 1; 2; 3 ] out

let test_queue_capacity () =
  let results =
    in_proc (fun _ ->
        let q = Ms_queue.create ~costs ~capacity:2 () in
        let a = Ms_queue.enqueue q 1 in
        let b = Ms_queue.enqueue q 2 in
        let c = Ms_queue.enqueue q 3 in
        let _ = Ms_queue.dequeue q in
        let d = Ms_queue.enqueue q 4 in
        (a, b, c, d))
  in
  let a, b, c, d = results in
  Alcotest.(check (list bool))
    "full rejects, drain admits" [ true; true; false; true ] [ a; b; c; d ]

let test_queue_is_empty () =
  let e1, e2, e3 =
    in_proc (fun _ ->
        let q = Ms_queue.create ~costs ~capacity:4 () in
        let e1 = Ms_queue.is_empty q in
        ignore (Ms_queue.enqueue q 7 : bool);
        let e2 = Ms_queue.is_empty q in
        ignore (Ms_queue.dequeue q : int option);
        let e3 = Ms_queue.is_empty q in
        (e1, e2, e3))
  in
  Alcotest.(check (list bool)) "empty transitions" [ true; false; true ]
    [ e1; e2; e3 ]

let test_queue_counters () =
  let enq, deq, len =
    in_proc (fun _ ->
        let q = Ms_queue.create ~costs ~capacity:8 () in
        ignore (Ms_queue.enqueue q 1 : bool);
        ignore (Ms_queue.enqueue q 2 : bool);
        ignore (Ms_queue.dequeue q : int option);
        (Ms_queue.enqueues_peek q, Ms_queue.dequeues_peek q, Ms_queue.length_peek q))
  in
  Alcotest.(check (list int)) "counters" [ 2; 1; 1 ] [ enq; deq; len ]

let test_queue_rejects_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Ms_queue.create: capacity must be positive") (fun () ->
      ignore (Ms_queue.create ~costs ~capacity:0 () : int Ms_queue.t))

(* Property: against a list model, any enqueue/dequeue program agrees. *)
let prop_queue_model =
  QCheck.Test.make ~name:"Ms_queue matches a FIFO model" ~count:100
    QCheck.(list (option (int_bound 100)))
    (fun program ->
      in_proc (fun _ ->
          let q = Ms_queue.create ~costs ~capacity:16 () in
          let model = Queue.create () in
          List.for_all
            (fun op ->
              match op with
              | Some v ->
                let accepted = Ms_queue.enqueue q v in
                let model_accepts = Queue.length model < 16 in
                if model_accepts then Queue.add v model;
                accepted = model_accepts
              | None -> Ms_queue.dequeue q = Queue.take_opt model)
            program))

(* ------------------------------------------------------------------ *)
(* Ms_queue: concurrent behaviour on a multiprocessor *)

let test_queue_concurrent_transfer () =
  let k = make_kernel ~ncpus:4 () in
  let q = Ms_queue.create ~costs ~capacity:16 () in
  let n_producers = 2 and per_producer = 300 in
  let received = ref [] in
  for p = 0 to n_producers - 1 do
    ignore
      (Kernel.spawn k
         ~name:(Printf.sprintf "producer-%d" p)
         (fun () ->
           for i = 1 to per_producer do
             let v = (p * 100000) + i in
             while not (Ms_queue.enqueue q v) do
               Usys.work (Sim_time.us 1)
             done
           done))
  done;
  let _ =
    Kernel.spawn k ~name:"consumer" (fun () ->
        let remaining = ref (n_producers * per_producer) in
        while !remaining > 0 do
          match Ms_queue.dequeue q with
          | Some v ->
            received := v :: !received;
            decr remaining
          | None -> Usys.work (Sim_time.us 1)
        done)
  in
  (match Kernel.run k with
  | Kernel.Completed -> ()
  | r -> Alcotest.failf "run: %a" Kernel.pp_result r);
  let received = List.rev !received in
  Alcotest.(check int)
    "every element transferred exactly once"
    (n_producers * per_producer)
    (List.length (List.sort_uniq compare received));
  (* Per-producer FIFO: each producer's elements arrive in its send order. *)
  let per_producer_ordered p =
    let mine = List.filter (fun v -> v / 100000 = p) received in
    let sorted = List.sort compare mine in
    mine = sorted
  in
  Alcotest.(check bool) "producer 0 order preserved" true (per_producer_ordered 0);
  Alcotest.(check bool) "producer 1 order preserved" true (per_producer_ordered 1)

let suites =
  [
    ( "shm.mem",
      [
        Alcotest.test_case "cell round trip" `Quick test_cell_read_write;
        Alcotest.test_case "cell charges time" `Quick test_cell_charges_time;
        Alcotest.test_case "flag tas semantics" `Quick test_flag_tas_semantics;
        Alcotest.test_case "flag clear" `Quick test_flag_clear;
        Alcotest.test_case "spinlock mutual exclusion" `Quick
          test_spinlock_mutual_exclusion;
      ] );
    ( "shm.ms_queue",
      [
        Alcotest.test_case "fifo" `Quick test_queue_fifo;
        Alcotest.test_case "capacity bound" `Quick test_queue_capacity;
        Alcotest.test_case "is_empty" `Quick test_queue_is_empty;
        Alcotest.test_case "statistics" `Quick test_queue_counters;
        Alcotest.test_case "bad capacity" `Quick test_queue_rejects_bad_capacity;
        QCheck_alcotest.to_alcotest prop_queue_model;
        Alcotest.test_case "concurrent transfer" `Quick
          test_queue_concurrent_transfer;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Arena *)

let test_arena_alloc_free_coalesce () =
  let ok =
    in_proc (fun _ ->
        let a = Arena.create ~costs ~size:100 () in
        match (Arena.alloc a 40, Arena.alloc a 40) with
        | Some b1, Some b2 ->
          (* 20 bytes left: a 40-byte request must fail... *)
          let failed = Arena.alloc a 40 = None in
          (* ...until freeing both coalesces the space back. *)
          Arena.free a b1;
          Arena.free a b2;
          failed
          && Arena.free_bytes_peek a = 100
          && Arena.largest_free_block_peek a = 100
          && Arena.alloc a 100 <> None
        | _ -> false)
  in
  Alcotest.(check bool) "alloc/free/coalesce" true ok

let test_arena_payload_roundtrip () =
  let got =
    in_proc (fun _ ->
        let a = Arena.create ~costs ~size:256 () in
        match Arena.alloc a 11 with
        | None -> Alcotest.fail "alloc failed"
        | Some b ->
          Arena.write_bytes a b (Bytes.of_string "hello arena");
          Bytes.to_string (Arena.read_bytes a b))
  in
  Alcotest.(check string) "payload" "hello arena" got

let test_arena_double_free_detected () =
  in_proc (fun _ ->
      let a = Arena.create ~costs ~size:64 () in
      match Arena.alloc a 8 with
      | None -> Alcotest.fail "alloc failed"
      | Some b ->
        Arena.free a b;
        Alcotest.check_raises "double free"
          (Invalid_argument
             (Printf.sprintf "Arena.free: no live allocation at %d (+%d)"
                b.Arena.offset b.Arena.length))
          (fun () -> Arena.free a b))

let test_arena_overflow_write_rejected () =
  in_proc (fun _ ->
      let a = Arena.create ~costs ~size:64 () in
      match Arena.alloc a 4 with
      | None -> Alcotest.fail "alloc failed"
      | Some b ->
        Alcotest.check_raises "overflow"
          (Invalid_argument "Arena: 5 bytes do not fit allocation of 4")
          (fun () -> Arena.write_bytes a b (Bytes.of_string "12345")))

let prop_arena_no_overlap =
  QCheck.Test.make ~name:"arena allocations never overlap" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 12) (int_range 1 40))
    (fun sizes ->
      in_proc (fun _ ->
          let a = Arena.create ~costs ~size:200 () in
          let blocks = List.filter_map (Arena.alloc a) sizes in
          let rec pairs = function
            | [] -> []
            | b :: rest -> List.map (fun b' -> (b, b')) rest @ pairs rest
          in
          List.for_all
            (fun ((b1 : Arena.allocation), (b2 : Arena.allocation)) ->
              b1.Arena.offset + b1.Arena.length <= b2.Arena.offset
              || b2.Arena.offset + b2.Arena.length <= b1.Arena.offset)
            (pairs blocks)
          && List.for_all
               (fun (b : Arena.allocation) ->
                 b.Arena.offset >= 0
                 && b.Arena.offset + b.Arena.length <= 200)
               blocks))

let allocator_suites =
  [
    ( "shm.arena",
      [
        Alcotest.test_case "alloc/free/coalesce" `Quick
          test_arena_alloc_free_coalesce;
        Alcotest.test_case "payload round trip" `Quick
          test_arena_payload_roundtrip;
        Alcotest.test_case "double free" `Quick test_arena_double_free_detected;
        Alcotest.test_case "overflow rejected" `Quick
          test_arena_overflow_write_rejected;
        QCheck_alcotest.to_alcotest prop_arena_no_overlap;
      ] );
  ]

let suites = suites @ allocator_suites
