(* Tests for the unified trace pipeline: exact recovery of planted wake
   latencies and block durations from synthetic event streams, each
   invariant-checker violation triggered in isolation, end-to-end real
   and simulated runs coming back violation-free, and the Perfetto
   export parsing as real JSON. *)

open Ulipc_workload
module Event = Ulipc_observe.Event
module A = Ulipc_observe.Trace_analysis

let ev ~t ~actor ~seq ~chan kind =
  { Event.t_us = t; actor; seq; chan; kind }

let violation_strings (r : A.t) =
  List.map (Fmt.str "%a" A.pp_violation) r.A.violations

let check_clean what r =
  Alcotest.(check (list string)) (what ^ ": no violations") []
    (violation_strings r)

(* ------------------------------------------------------------------ *)
(* Exact recovery on synthetic streams *)

(* One planted episode on channel [c]: the consumer blocks at [t0], the
   producer enqueues [d1] later and wakes one tick after that, and the
   woken consumer dequeues [d2] after the wake.  The analysis must
   recover block duration [d1 + 1] and wake latency [d2] exactly. *)
let episode ~c ~t0 ~d1 ~d2 =
  let consumer = 100 + c and producer = 200 + c in
  [
    ev ~t:t0 ~actor:consumer ~seq:0 ~chan:c Event.Block;
    ev ~t:(t0 +. d1) ~actor:producer ~seq:0 ~chan:c Event.Enqueue;
    ev ~t:(t0 +. d1 +. 1.0) ~actor:producer ~seq:1 ~chan:c Event.Wake;
    ev ~t:(t0 +. d1 +. 1.0 +. d2) ~actor:consumer ~seq:1 ~chan:c Event.Dequeue;
  ]

let sorted_floats l = List.sort Float.compare l

let prop_exact_recovery =
  QCheck.Test.make ~name:"planted latencies recovered exactly" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_range 0 500) (int_range 0 500)))
    (fun delays ->
      (* Channel [c] gets its own actors and a disjoint time window, so
         episodes are independent; feeding the events newest-first
         checks that the analysis does its own causal sort. *)
      let events =
        List.concat
          (List.mapi
             (fun c (d1, d2) ->
               episode ~c ~t0:(float_of_int (c * 10_000))
                 ~d1:(float_of_int d1) ~d2:(float_of_int d2))
             delays)
        |> List.rev
      in
      let r = A.analyse ~complete:true events in
      let planted_blocks =
        sorted_floats (List.map (fun (d1, _) -> float_of_int d1 +. 1.0) delays)
      and planted_wakes =
        sorted_floats (List.map (fun (_, d2) -> float_of_int d2) delays)
      in
      r.A.violations = []
      && sorted_floats (List.map A.pair_us r.A.block_pairs) = planted_blocks
      && sorted_floats (List.map A.pair_us r.A.wake_pairs) = planted_wakes
      && r.A.blocks = List.length delays
      && r.A.wakes = List.length delays)

let test_raced_wake_recovery () =
  (* V before P: the wake banks a credit, the block consumes it
     immediately (duration clamps to 0) and the wake still pairs with
     the dequeue it enabled. *)
  let events =
    [
      ev ~t:0.0 ~actor:2 ~seq:0 ~chan:0 Event.Enqueue;
      ev ~t:1.0 ~actor:2 ~seq:1 ~chan:0 Event.Wake;
      ev ~t:2.0 ~actor:1 ~seq:0 ~chan:0 Event.Block;
      ev ~t:5.0 ~actor:1 ~seq:1 ~chan:0 Event.Dequeue;
    ]
  in
  let r = A.analyse ~complete:true events in
  check_clean "raced wake" r;
  Alcotest.(check int) "one wake pair" 1 (List.length r.A.wake_pairs);
  Alcotest.(check (float 1e-9)) "wake latency is wake->dequeue" 4.0
    (A.pair_us (List.hd r.A.wake_pairs));
  Alcotest.(check int) "one block pair" 1 (List.length r.A.block_pairs);
  Alcotest.(check (float 1e-9)) "raced block duration clamps to 0" 0.0
    (A.pair_us (List.hd r.A.block_pairs))

let test_wake_drain_balances () =
  (* The C.3' drain: the consumer never sleeps, absorbs the raced V with
     sem_try_p, and dequeues without a wake pair.  The credit algebra
     must balance — no Lost_wake, no wake-latency sample. *)
  let events =
    [
      ev ~t:0.0 ~actor:2 ~seq:0 ~chan:0 Event.Enqueue;
      ev ~t:1.0 ~actor:2 ~seq:1 ~chan:0 Event.Wake;
      ev ~t:2.0 ~actor:1 ~seq:0 ~chan:0 Event.Wake_drain;
      ev ~t:3.0 ~actor:1 ~seq:1 ~chan:0 Event.Dequeue;
    ]
  in
  let r = A.analyse ~complete:true events in
  check_clean "drained wake" r;
  Alcotest.(check int) "raced wakes counted" 1 r.A.raced_wakes;
  Alcotest.(check int) "no wake pair for a drained wake" 0
    (List.length r.A.wake_pairs)

(* ------------------------------------------------------------------ *)
(* Each violation, triggered in isolation *)

let kinds_of_violations (r : A.t) =
  List.map
    (function
      | A.Queue_underflow _ -> "underflow"
      | A.Orphan_block _ -> "orphan-block"
      | A.Lost_wake _ -> "lost-wake"
      | A.Drain_without_wake _ -> "drain-without-wake"
      | A.Wake_without_dequeue _ -> "wake-without-dequeue"
      | A.Non_monotonic_actor _ -> "non-monotonic"
      | A.Seq_gap _ -> "seq-gap")
    r.A.violations

let check_kinds what expected events =
  let r = A.analyse ~complete:true events in
  Alcotest.(check (list string)) what expected (kinds_of_violations r)

let test_violation_detection () =
  check_kinds "dequeue from an empty queue" [ "underflow" ]
    [ ev ~t:0.0 ~actor:1 ~seq:0 ~chan:0 Event.Dequeue ];
  check_kinds "block never woken" [ "orphan-block" ]
    [ ev ~t:0.0 ~actor:1 ~seq:0 ~chan:0 Event.Block ];
  check_kinds "wake never consumed" [ "lost-wake" ]
    [ ev ~t:0.0 ~actor:1 ~seq:0 ~chan:0 Event.Wake ];
  check_kinds "drain with no credit" [ "drain-without-wake" ]
    [ ev ~t:0.0 ~actor:1 ~seq:0 ~chan:0 Event.Wake_drain ];
  check_kinds "woken sleeper never dequeues" [ "wake-without-dequeue" ]
    [
      ev ~t:0.0 ~actor:1 ~seq:0 ~chan:0 Event.Block;
      ev ~t:1.0 ~actor:2 ~seq:0 ~chan:0 Event.Wake;
    ];
  check_kinds "actor clock steps backwards" [ "non-monotonic"; "lost-wake" ]
    [
      ev ~t:10.0 ~actor:1 ~seq:0 ~chan:0 Event.Enqueue;
      ev ~t:5.0 ~actor:1 ~seq:1 ~chan:0 Event.Wake;
    ];
  check_kinds "per-actor sequence hole" [ "seq-gap" ]
    [
      ev ~t:0.0 ~actor:1 ~seq:0 ~chan:0 Event.Enqueue;
      ev ~t:1.0 ~actor:1 ~seq:2 ~chan:0 Event.Dequeue;
    ]

let test_truncated_trace_suppresses_end_checks () =
  (* A truncated ring legitimately loses the closing events; with
     [complete:false] the end-state checks (and underflow/drain, whose
     counterparts may have been overwritten) must not fire. *)
  let events =
    [
      ev ~t:0.0 ~actor:1 ~seq:0 ~chan:0 Event.Dequeue;
      ev ~t:1.0 ~actor:1 ~seq:1 ~chan:0 Event.Block;
      ev ~t:2.0 ~actor:1 ~seq:2 ~chan:0 Event.Wake_drain;
    ]
  in
  let r = A.analyse ~complete:false events in
  check_clean "truncated trace" r;
  Alcotest.(check bool) "report marked incomplete" false r.A.complete

(* ------------------------------------------------------------------ *)
(* End to end: both backends come back violation-free *)

let test_real_run_clean (waiting, name) transport () =
  let sink = Ulipc_real.Trace_ring.create ~capacity:65536 () in
  let m =
    Real_driver.run ~transport ~trace:sink ~nclients:2 ~messages:100 waiting
  in
  Alcotest.(check int) "all messages echoed" 200 m.Metrics.messages;
  Alcotest.(check int) "nothing dropped" 0
    (Ulipc_real.Trace_ring.dropped sink);
  let r = A.analyse ~complete:true (Ulipc_real.Trace_ring.events sink) in
  check_clean name r;
  Alcotest.(check bool) "trace is non-trivial" true (r.A.events > 0)

let test_sim_run_clean machine () =
  let sink = Ulipc_observe.Sink.create ~capacity:65536 () in
  let m =
    Driver.run
      (Driver.config ~events:sink ~machine ~kind:Ulipc.Protocol_kind.BSW
         ~nclients:3 ~messages_per_client:50 ())
  in
  Alcotest.(check int) "all messages echoed" 150 m.Metrics.messages;
  Alcotest.(check int) "nothing dropped" 0 (Ulipc_observe.Sink.dropped sink);
  let r = A.analyse ~complete:true (Ulipc_observe.Sink.events sink) in
  check_clean (machine.Ulipc_machines.Machine.name ^ " BSW") r;
  Alcotest.(check bool) "simulated run blocked at least once" true
    (r.A.blocks > 0);
  (* The driver distils the same trace into the metrics row. *)
  Alcotest.(check bool) "wake-latency percentile flows into Metrics" true
    (Float.is_finite m.Metrics.wake_latency_p50_us)

(* ------------------------------------------------------------------ *)
(* Perfetto export parses as real JSON *)

let test_perfetto_export () =
  let events =
    List.concat
      [
        episode ~c:0 ~t0:0.0 ~d1:3.0 ~d2:2.0;
        episode ~c:1 ~t0:100.0 ~d1:1.0 ~d2:7.0;
      ]
  in
  let r = A.analyse ~complete:true events in
  let path = Filename.temp_file "ulipc_trace" ".json" in
  Ulipc_observe.Perfetto.write ~process_name:"test \"quoted\"" ~report:r ~path
    events;
  let contents = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  let module J = Ulipc_observe.Json_min in
  let j =
    match J.parse_result contents with
    | Ok v -> v
    | Error msg -> Alcotest.failf "perfetto json: %s" msg
  in
  match J.member_opt "traceEvents" j with
  | Some (J.Arr records) ->
    (* 1 process + 4 thread metadata records, 8 instants, 2 slices and
       2 flow pairs. *)
    Alcotest.(check int) "record count" 19 (List.length records);
    let phases =
      List.filter_map
        (fun rec_ ->
          match J.member_opt "ph" rec_ with Some (J.Str p) -> Some p | _ -> None)
      records
    in
    Alcotest.(check int) "all records carry a phase" (List.length records)
      (List.length phases);
    List.iter
      (fun ph ->
        Alcotest.(check bool) ("known phase " ^ ph) true
          (List.mem ph [ "M"; "i"; "X"; "s"; "f" ]))
      phases;
    List.iter
      (fun rec_ ->
        match J.member_opt "ts" rec_ with
        | Some (J.Num ts) ->
          Alcotest.(check bool) "timestamps normalised to >= 0" true (ts >= 0.0)
        | Some _ -> Alcotest.fail "ts is not a number"
        | None -> ())
      records
  | _ -> Alcotest.fail "traceEvents missing or not an array"

(* ------------------------------------------------------------------ *)

let real_protocols =
  [
    (Ulipc_real.Rpc.Block, "BSW");
    (Ulipc_real.Rpc.Block_yield, "BSWY");
    (Ulipc_real.Rpc.Limited_spin 50, "BSLS 50");
    (Ulipc_real.Rpc.Adaptive 4096, "ADAPT 4096");
  ]

let suites =
  [
    ( "observe.trace_analysis",
      [
        QCheck_alcotest.to_alcotest prop_exact_recovery;
        Alcotest.test_case "raced wake pairs via the credit bank" `Quick
          test_raced_wake_recovery;
        Alcotest.test_case "drained wake balances the algebra" `Quick
          test_wake_drain_balances;
        Alcotest.test_case "each violation detected in isolation" `Quick
          test_violation_detection;
        Alcotest.test_case "truncated trace suppresses end checks" `Quick
          test_truncated_trace_suppresses_end_checks;
      ] );
    ( "observe.end_to_end",
      List.concat_map
        (fun (waiting, name) ->
          [
            Alcotest.test_case
              (Printf.sprintf "%s clean (ring)" name)
              `Quick
              (test_real_run_clean (waiting, name)
                 Ulipc_real.Real_substrate.Ring);
            Alcotest.test_case
              (Printf.sprintf "%s clean (two-lock)" name)
              `Quick
              (test_real_run_clean (waiting, name)
                 Ulipc_real.Real_substrate.Two_lock);
          ])
        real_protocols
      @ [
          Alcotest.test_case "simulated BSW clean (uniprocessor)" `Quick
            (test_sim_run_clean Ulipc_machines.Sgi_indy.machine);
          Alcotest.test_case "simulated BSW clean (multiprocessor)" `Quick
            (test_sim_run_clean Ulipc_machines.Sgi_challenge.machine);
        ] );
    ( "observe.perfetto",
      [ Alcotest.test_case "export parses as JSON" `Quick test_perfetto_export ]
    );
  ]
