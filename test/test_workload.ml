(* Tests for the benchmark driver, metrics, and the paper-figure
   experiments (run at reduced message counts). *)

open Ulipc_engine
open Ulipc_workload

let sgi = Ulipc_machines.Sgi_indy.machine

(* ------------------------------------------------------------------ *)
(* Driver basics *)

let test_driver_validation () =
  Alcotest.check_raises "no clients"
    (Invalid_argument "Driver.run: nclients must be positive") (fun () ->
      ignore
        (Driver.run
           (Driver.config ~machine:sgi ~kind:Ulipc.Protocol_kind.BSS
              ~nclients:0 ~messages_per_client:1 ())));
  Alcotest.check_raises "fixed priority unsupported"
    (Invalid_argument
       "Driver.run: linux486-stock does not support fixed priorities")
    (fun () ->
      ignore
        (Driver.run
           (Driver.config ~machine:Ulipc_machines.Linux486.stock
              ~kind:Ulipc.Protocol_kind.BSS ~fixed_priority:true ~nclients:1
              ~messages_per_client:1 ())))

let test_driver_determinism () =
  let run () =
    Driver.run
      (Driver.config ~machine:sgi ~kind:Ulipc.Protocol_kind.BSS ~nclients:3
         ~messages_per_client:300 ())
  in
  let a = run () and b = run () in
  Alcotest.(check int) "identical elapsed" a.Metrics.elapsed b.Metrics.elapsed;
  Alcotest.(check int) "identical steps" a.Metrics.sim_steps b.Metrics.sim_steps

let test_metrics_consistency () =
  let m =
    Driver.run
      (Driver.config ~machine:sgi ~kind:Ulipc.Protocol_kind.BSW ~nclients:2
         ~messages_per_client:200 ())
  in
  Alcotest.(check int) "messages" 400 m.Metrics.messages;
  let rt = Metrics.round_trip_us m in
  let tp = m.Metrics.throughput_msg_per_ms in
  (* rt(us) = nclients * 1000 / throughput(msg/ms) by construction *)
  Alcotest.(check (float 0.01))
    "rt and throughput agree"
    (2.0 *. 1000.0 /. tp)
    rt

let test_latency_collection () =
  let m =
    Driver.run
      (Driver.config ~machine:sgi ~kind:Ulipc.Protocol_kind.BSS ~nclients:1
         ~messages_per_client:300 ~collect_latency:true ())
  in
  match m.Metrics.latency_us with
  | None -> Alcotest.fail "latency not collected"
  | Some hist ->
    Alcotest.(check int)
      "one sample per message" 300
      (Ulipc.Histogram.count hist);
    let mean = Ulipc.Histogram.mean hist in
    let rt = Metrics.round_trip_us m in
    Alcotest.(check bool)
      (Printf.sprintf "latency mean %.1f ~ round-trip %.1f" mean rt)
      true
      (Float.abs (mean -. rt) /. rt < 0.25);
    (* Percentiles are available and ordered. *)
    Alcotest.(check bool)
      "p99 >= p50" true
      (Ulipc.Histogram.percentile hist 99.0
      >= Ulipc.Histogram.percentile hist 50.0)

let test_server_work_slows_throughput () =
  let run work =
    (Driver.run
       (Driver.config ~machine:sgi ~kind:Ulipc.Protocol_kind.BSS ~nclients:2
          ~messages_per_client:200 ~server_work:work ()))
      .Metrics.throughput_msg_per_ms
  in
  let fast = run Sim_time.zero and slow = run (Sim_time.us 200) in
  Alcotest.(check bool)
    (Printf.sprintf "server work lowers throughput (%.1f -> %.1f)" fast slow)
    true (slow < 0.8 *. fast)

let test_sweep_points () =
  let ms =
    Driver.sweep
      (Driver.config ~machine:sgi ~kind:Ulipc.Protocol_kind.BSS ~nclients:1
         ~messages_per_client:100 ())
      ~clients:[ 1; 3 ]
  in
  Alcotest.(check (list int)) "client counts" [ 1; 3 ]
    (List.map (fun m -> m.Metrics.nclients) ms)

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let test_table1_anchors () =
  let rows = Experiments.table1 () in
  let find op =
    List.find (fun r -> r.Experiments.operation = op) rows
  in
  let qp = find "enqueue/dequeue pair" in
  Alcotest.(check bool)
    (Printf.sprintf "SGI queue pair ~3us (measured %.1f)" qp.Experiments.sgi_us)
    true
    (qp.Experiments.sgi_us >= 2.0 && qp.Experiments.sgi_us <= 4.5);
  let mp = find "msgsnd/msgrcv pair" in
  Alcotest.(check bool)
    (Printf.sprintf "SGI msgq pair ~37us (measured %.1f)" mp.Experiments.sgi_us)
    true
    (mp.Experiments.sgi_us >= 33.0 && mp.Experiments.sgi_us <= 41.0);
  let y1 = find "concurrent yields, 1 process" in
  Alcotest.(check bool)
    (Printf.sprintf "SGI solo yield ~16us (measured %.1f)" y1.Experiments.sgi_us)
    true
    (y1.Experiments.sgi_us >= 14.0 && y1.Experiments.sgi_us <= 18.0);
  let y2 = find "concurrent yields, 2 processes" in
  let y4 = find "concurrent yields, 4 processes" in
  Alcotest.(check bool)
    "concurrent yields grow with processes" true
    (y2.Experiments.sgi_us > y1.Experiments.sgi_us
    && y4.Experiments.sgi_us >= y2.Experiments.sgi_us)

(* ------------------------------------------------------------------ *)
(* Every figure's shape checks hold (reduced message count). *)

let figure_test build () =
  let f = build () in
  match Experiments.failed_checks f with
  | [] -> ()
  | failed ->
    Alcotest.failf "%s: %d failed checks: %s" f.Experiments.id
      (List.length failed)
      (String.concat "; "
         (List.map (fun c -> c.Experiments.claim) failed))

let messages = 2_000

let figure_cases =
  let pair name (build : ?messages:int -> unit -> Experiments.figure * Experiments.figure) =
    [
      Alcotest.test_case (name ^ "a shape") `Slow
        (figure_test (fun () -> fst (build ~messages ())));
      Alcotest.test_case (name ^ "b shape") `Slow
        (figure_test (fun () -> snd (build ~messages ())));
    ]
  in
  pair "fig2" Experiments.fig2
  @ pair "fig3" Experiments.fig3
  @ pair "fig6" Experiments.fig6
  @ pair "fig8" Experiments.fig8
  @ [
      Alcotest.test_case "fig10 shape" `Slow
        (figure_test (fun () -> Experiments.fig10 ~messages ()));
      Alcotest.test_case "fig11 shape" `Slow
        (figure_test (fun () -> Experiments.fig11 ~messages ()));
      Alcotest.test_case "fig12 shape" `Slow
        (figure_test (fun () -> Experiments.fig12 ~messages ()));
    ]

(* ------------------------------------------------------------------ *)
(* Machine definitions *)

let test_machine_invariants () =
  let machines =
    [
      Ulipc_machines.Sgi_indy.machine;
      Ulipc_machines.Ibm_p4.machine;
      Ulipc_machines.Sgi_challenge.machine;
      Ulipc_machines.Linux486.stock;
      Ulipc_machines.Linux486.modified_yield;
    ]
  in
  List.iter
    (fun (m : Ulipc_machines.Machine.t) ->
      Alcotest.(check bool)
        (m.Ulipc_machines.Machine.name ^ " multiprocessor flag")
        (m.Ulipc_machines.Machine.ncpus > 1)
        m.Ulipc_machines.Machine.multiprocessor;
      (* Policies are factories: two instances must not share state. *)
      let p1 = m.Ulipc_machines.Machine.policy () in
      let p2 = m.Ulipc_machines.Machine.policy () in
      let proc = Ulipc_os.Proc.make ~pid:1 ~name:"x" ~body:(fun () -> ()) in
      p1.Ulipc_os.Policy.enqueue proc Ulipc_os.Policy.New ~now:0;
      Alcotest.(check int)
        (m.Ulipc_machines.Machine.name ^ " fresh policy state")
        0
        (p2.Ulipc_os.Policy.ready_count ()))
    machines

let test_fixed_priority_starvation () =
  (* The deadlock the paper warns super-users about: one fixed-priority
     spinner starves a timeshare process forever. *)
  let k =
    Ulipc_os.Kernel.create ~ncpus:1
      ~policy:(Ulipc_os.Sched_decay.create Ulipc_machines.Sgi_indy.sched_params)
      ~costs:Ulipc_machines.Sgi_indy.costs ()
  in
  let flag = ref false in
  let spinner =
    Ulipc_os.Kernel.spawn k ~name:"rt-spinner" (fun () ->
        while not !flag do
          Ulipc_os.Usys.yield ()
        done)
  in
  spinner.Ulipc_os.Proc.fixed_prio <- true;
  let _victim =
    Ulipc_os.Kernel.spawn k ~name:"timeshare" (fun () -> flag := true)
  in
  match Ulipc_os.Kernel.run ~until:(Sim_time.ms 100) k with
  | Ulipc_os.Kernel.Time_limit ->
    Alcotest.(check bool) "victim starved" false !flag
  | r ->
    Alcotest.failf "expected starvation until the horizon, got %a"
      Ulipc_os.Kernel.pp_result r

let suites =
  [
    ( "workload.driver",
      [
        Alcotest.test_case "validation" `Quick test_driver_validation;
        Alcotest.test_case "determinism" `Quick test_driver_determinism;
        Alcotest.test_case "metrics consistency" `Quick test_metrics_consistency;
        Alcotest.test_case "latency collection" `Quick test_latency_collection;
        Alcotest.test_case "server work slows" `Quick
          test_server_work_slows_throughput;
        Alcotest.test_case "sweep" `Quick test_sweep_points;
      ] );
    ("workload.table1", [ Alcotest.test_case "anchors" `Slow test_table1_anchors ]);
    ("workload.figures", figure_cases);
    ( "machines",
      [
        Alcotest.test_case "invariants" `Quick test_machine_invariants;
        Alcotest.test_case "fixed-priority starvation hazard" `Quick
          test_fixed_priority_starvation;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Server architectures *)

let challenge = Ulipc_machines.Sgi_challenge.machine

let test_arch_all_complete () =
  List.iter
    (fun architecture ->
      let r =
        Arch.run ~machine:challenge ~kind:(Ulipc.Protocol_kind.BSLS 10)
          ~architecture ~nclients:3 ~messages_per_client:300 ()
      in
      Alcotest.(check int)
        (Arch.architecture_name architecture ^ " messages")
        900 r.Arch.messages;
      Alcotest.(check bool)
        (Arch.architecture_name architecture ^ " utilization sane")
        true
        (r.Arch.utilization > 0.0 && r.Arch.utilization <= 1.0))
    [ Arch.Single_queue; Arch.Thread_per_client; Arch.Multi_server 2 ]

let test_arch_thread_per_client_scales () =
  let tp arch =
    (Arch.run ~machine:challenge ~kind:(Ulipc.Protocol_kind.BSLS 10)
       ~architecture:arch ~nclients:4 ~messages_per_client:1000 ())
      .Arch.throughput_msg_per_ms
  in
  let single = tp Arch.Single_queue in
  let per_client = tp Arch.Thread_per_client in
  Alcotest.(check bool)
    (Printf.sprintf "thread-per-client beats the saturated single server \
                     (%.0f vs %.0f msg/ms)"
       per_client single)
    true
    (per_client > 1.5 *. single)

let test_arch_multi_server_scales_with_k () =
  let tp k =
    (Arch.run ~machine:challenge ~kind:Ulipc.Protocol_kind.CSEM
       ~architecture:(Arch.Multi_server k) ~nclients:6
       ~messages_per_client:500 ())
      .Arch.throughput_msg_per_ms
  in
  let k1 = tp 1 and k4 = tp 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 servers beat 1 (%.1f vs %.1f msg/ms)" k4 k1)
    true (k4 > 1.2 *. k1)

let test_arch_validation () =
  Alcotest.check_raises "zero servers"
    (Invalid_argument "Arch.run: server threads must be positive") (fun () ->
      ignore
        (Arch.run ~machine:challenge ~kind:Ulipc.Protocol_kind.CSEM
           ~architecture:(Arch.Multi_server 0) ~nclients:1
           ~messages_per_client:1 ()))

(* ------------------------------------------------------------------ *)
(* Background noise *)

let test_noise_slows_but_preserves_correctness () =
  let run noise =
    Driver.run
      (Driver.config ~machine:sgi ~kind:(Ulipc.Protocol_kind.BSLS 20)
         ~nclients:2 ~messages_per_client:500 ?noise ())
  in
  let quiet = run None in
  let noisy = run (Some (Noise.config ())) in
  Alcotest.(check int) "all messages under noise" 1000 noisy.Metrics.messages;
  Alcotest.(check bool)
    (Printf.sprintf "noise costs throughput (%.1f vs %.1f)"
       noisy.Metrics.throughput_msg_per_ms quiet.Metrics.throughput_msg_per_ms)
    true
    (noisy.Metrics.throughput_msg_per_ms
    < quiet.Metrics.throughput_msg_per_ms);
  (* The noise processes must terminate with the run (Completed implies it,
     but make the shutdown path explicit). *)
  Alcotest.(check bool) "utilization sane" true (noisy.Metrics.utilization <= 1.0)

let test_noise_config_validation () =
  Alcotest.check_raises "bad procs"
    (Invalid_argument "Noise.config: procs must be positive") (fun () ->
      ignore (Noise.config ~procs:0 ()));
  let c = Noise.config () in
  Alcotest.(check bool) "duty cycle sane" true
    (Noise.duty_cycle c > 0.0 && Noise.duty_cycle c < 1.0)

(* ------------------------------------------------------------------ *)
(* Open-loop latency under load *)

let test_openloop_light_load_blocking_wins () =
  let point kind =
    Openloop.run_point ~machine:sgi ~kind ~nclients:3 ~messages_per_client:300
      ~think_mean:(Sim_time.ms 2) ()
  in
  let bss = point Ulipc.Protocol_kind.BSS in
  let bsw = point Ulipc.Protocol_kind.BSW in
  Alcotest.(check bool)
    (Printf.sprintf
       "blocking beats spinning under sparse arrivals (BSW %.0f us vs BSS \
        %.0f us mean response)"
       bsw.Openloop.mean_response_us bss.Openloop.mean_response_us)
    true
    (bsw.Openloop.mean_response_us < bss.Openloop.mean_response_us);
  Alcotest.(check bool)
    (Printf.sprintf "blocking idles the machine (%.0f%% vs %.0f%%)"
       (100. *. bsw.Openloop.utilization)
       (100. *. bss.Openloop.utilization))
    true
    (bsw.Openloop.utilization < 0.8 *. bss.Openloop.utilization)

let test_openloop_response_grows_with_load () =
  let points =
    Openloop.sweep ~machine:sgi ~kind:Ulipc.Protocol_kind.BSW ~nclients:3
      ~messages_per_client:300
      ~think_means:[ Sim_time.ms 5; Sim_time.us 300 ]
      ()
  in
  match points with
  | [ light; heavy ] ->
    Alcotest.(check bool)
      (Printf.sprintf "response grows with load (%.0f -> %.0f us)"
         light.Openloop.mean_response_us heavy.Openloop.mean_response_us)
      true
      (heavy.Openloop.mean_response_us > light.Openloop.mean_response_us);
    Alcotest.(check bool) "offered ordering" true
      (heavy.Openloop.offered_per_ms > light.Openloop.offered_per_ms)
  | _ -> Alcotest.fail "expected two points"

let test_openloop_deterministic () =
  let p () =
    Openloop.run_point ~machine:sgi ~kind:Ulipc.Protocol_kind.BSW ~nclients:2
      ~messages_per_client:200 ~think_mean:(Sim_time.ms 1) ()
  in
  let a = p () and b = p () in
  Alcotest.(check (float 0.0)) "identical response means"
    a.Openloop.mean_response_us b.Openloop.mean_response_us

let extension_suites =
  [
    ( "workload.arch",
      [
        Alcotest.test_case "all architectures complete" `Quick
          test_arch_all_complete;
        Alcotest.test_case "thread-per-client scales" `Quick
          test_arch_thread_per_client_scales;
        Alcotest.test_case "multi-server scales with k" `Quick
          test_arch_multi_server_scales_with_k;
        Alcotest.test_case "validation" `Quick test_arch_validation;
      ] );
    ( "workload.noise",
      [
        Alcotest.test_case "noise slows, correctness holds" `Quick
          test_noise_slows_but_preserves_correctness;
        Alcotest.test_case "config validation" `Quick
          test_noise_config_validation;
      ] );
    ( "workload.openloop",
      [
        Alcotest.test_case "blocking wins under sparse arrivals" `Quick
          test_openloop_light_load_blocking_wins;
        Alcotest.test_case "response grows with load" `Quick
          test_openloop_response_grows_with_load;
        Alcotest.test_case "deterministic" `Quick test_openloop_deterministic;
      ] );
  ]

let suites = suites @ extension_suites
