(* Tests for the simulated kernel: scheduling, syscalls, blocking,
   accounting, determinism. *)

open Ulipc_engine
open Ulipc_os

let us = Sim_time.us

let make_kernel ?(ncpus = 1) ?policy ?(costs = Costs.default) () =
  let policy =
    match policy with
    | Some p -> p
    | None -> Sched_fixed.create Sched_fixed.default_params
  in
  Kernel.create ~ncpus ~policy ~costs ()

let check_completed result =
  Alcotest.(check string)
    "run completed" "completed"
    (Format.asprintf "%a" Kernel.pp_result result)

(* ------------------------------------------------------------------ *)
(* Basic execution *)

let test_single_proc_work () =
  let k = make_kernel () in
  let done_ = ref false in
  let p =
    Kernel.spawn k ~name:"worker" (fun () ->
        Usys.work (us 100);
        Usys.work (us 50);
        done_ := true)
  in
  check_completed (Kernel.run k);
  Alcotest.(check bool) "body ran" true !done_;
  Alcotest.(check int) "cpu time" (us 150) p.Proc.cpu_time;
  Alcotest.(check int) "live" 0 (Kernel.live_count k)

let test_spawn_returns_distinct_pids () =
  let k = make_kernel () in
  let a = Kernel.spawn k ~name:"a" (fun () -> ()) in
  let b = Kernel.spawn k ~name:"b" (fun () -> ()) in
  Alcotest.(check bool) "pids differ" true (a.Proc.pid <> b.Proc.pid);
  check_completed (Kernel.run k)

let test_elapsed_includes_switch_cost () =
  let k = make_kernel () in
  let _ = Kernel.spawn k ~name:"w" (fun () -> Usys.work (us 100)) in
  check_completed (Kernel.run k);
  (* initial dispatch pays one context switch (10us default) + 100us work *)
  Alcotest.(check int) "final time" (us 110) (Kernel.now k)

let test_proc_failure_propagates () =
  let k = make_kernel () in
  let _ = Kernel.spawn k ~name:"bad" (fun () -> failwith "boom") in
  match Kernel.run k with
  | exception Kernel.Proc_failure (name, Failure msg) ->
    Alcotest.(check string) "failing process" "bad" name;
    Alcotest.(check string) "original message" "boom" msg
  | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
  | r -> Alcotest.failf "expected failure, got %a" Kernel.pp_result r

(* ------------------------------------------------------------------ *)
(* Yield under fixed round-robin *)

let test_yield_round_robin () =
  let k = make_kernel () in
  let log = ref [] in
  let mk name =
    Kernel.spawn k ~name (fun () ->
        for i = 1 to 3 do
          Usys.work (us 10);
          log := (name, i) :: !log;
          Usys.yield ()
        done)
  in
  let _a = mk "a" and _b = mk "b" in
  check_completed (Kernel.run k);
  let order = List.rev !log in
  Alcotest.(check (list (pair string int)))
    "strict alternation"
    [ ("a", 1); ("b", 1); ("a", 2); ("b", 2); ("a", 3); ("b", 3) ]
    order

let test_yield_alone_returns_to_caller () =
  let k = make_kernel () in
  let p =
    Kernel.spawn k ~name:"solo" (fun () ->
        for _ = 1 to 5 do
          Usys.yield ()
        done)
  in
  check_completed (Kernel.run k);
  (* No other process: the yields never produce a context switch. *)
  Alcotest.(check int) "no voluntary switches" 0 p.Proc.vcsw

let test_yield_switch_counts_voluntary () =
  let k = make_kernel () in
  let body () =
    for _ = 1 to 4 do
      Usys.work (us 1);
      Usys.yield ()
    done
  in
  let a = Kernel.spawn k ~name:"a" body in
  let _b = Kernel.spawn k ~name:"b" body in
  check_completed (Kernel.run k);
  (* Every yield hands off under round-robin (until the peer dies). *)
  Alcotest.(check bool)
    (Printf.sprintf "a.vcsw = %d >= 3" a.Proc.vcsw)
    true (a.Proc.vcsw >= 3)

(* ------------------------------------------------------------------ *)
(* Semaphores *)

let test_sem_p_nonblocking_when_positive () =
  let k = make_kernel () in
  let sem = Kernel.new_sem k ~init:2 in
  let _ =
    Kernel.spawn k ~name:"taker" (fun () ->
        Usys.sem_p sem;
        Usys.sem_p sem)
  in
  check_completed (Kernel.run k);
  Alcotest.(check int) "count drained" 0 (Kernel.sem_value k sem)

let test_sem_blocks_and_wakes () =
  let k = make_kernel () in
  let sem = Kernel.new_sem k ~init:0 in
  let got = ref Sim_time.zero in
  let waiter =
    Kernel.spawn k ~name:"waiter" (fun () ->
        Usys.sem_p sem;
        got := Usys.time ())
  in
  let _poster =
    Kernel.spawn k ~name:"poster" (fun () ->
        Usys.work (us 500);
        Usys.sem_v sem)
  in
  check_completed (Kernel.run k);
  Alcotest.(check bool) "woke after the V" true (!got >= us 500);
  Alcotest.(check bool) "block was voluntary" true (waiter.Proc.vcsw >= 1)

let test_sem_v_accumulates () =
  let k = make_kernel () in
  let sem = Kernel.new_sem k ~init:0 in
  let _ =
    Kernel.spawn k ~name:"poster" (fun () ->
        for _ = 1 to 5 do
          Usys.sem_v sem
        done)
  in
  check_completed (Kernel.run k);
  Alcotest.(check int) "count accumulated" 5 (Kernel.sem_value k sem)

let test_sem_v_does_not_reschedule () =
  (* The §3.1 behaviour: V readies the waiter but the caller keeps the
     CPU, so work after the V happens before the waiter's work. *)
  let k = make_kernel () in
  let sem = Kernel.new_sem k ~init:0 in
  let log = ref [] in
  let _waiter =
    Kernel.spawn k ~name:"waiter" (fun () ->
        Usys.sem_p sem;
        log := "waiter" :: !log)
  in
  let _poster =
    Kernel.spawn k ~name:"poster" (fun () ->
        Usys.work (us 10);
        Usys.sem_v sem;
        Usys.work (us 10);
        log := "poster" :: !log)
  in
  check_completed (Kernel.run k);
  Alcotest.(check (list string))
    "poster finished first" [ "poster"; "waiter" ] (List.rev !log)

let test_sem_wakes_fifo () =
  let k = make_kernel () in
  let sem = Kernel.new_sem k ~init:0 in
  let order = ref [] in
  let waiter name =
    ignore
      (Kernel.spawn k ~name (fun () ->
           Usys.sem_p sem;
           order := name :: !order))
  in
  waiter "w1";
  waiter "w2";
  waiter "w3";
  let _ =
    Kernel.spawn k ~name:"poster" (fun () ->
        Usys.work (us 100);
        for _ = 1 to 3 do
          Usys.sem_v sem
        done)
  in
  check_completed (Kernel.run k);
  Alcotest.(check (list string)) "fifo wakeups" [ "w1"; "w2"; "w3" ]
    (List.rev !order)

let test_sem_value_syscall () =
  let k = make_kernel () in
  let sem = Kernel.new_sem k ~init:3 in
  let seen = ref (-1) in
  let _ = Kernel.spawn k ~name:"r" (fun () -> seen := Usys.sem_value sem) in
  check_completed (Kernel.run k);
  Alcotest.(check int) "value" 3 !seen

(* ------------------------------------------------------------------ *)
(* Sleep *)

let test_sleep_duration () =
  let k = make_kernel () in
  let woke = ref Sim_time.zero in
  let _ =
    Kernel.spawn k ~name:"sleeper" (fun () ->
        Usys.sleep (Sim_time.ms 5);
        woke := Usys.time ())
  in
  check_completed (Kernel.run k);
  Alcotest.(check bool)
    (Format.asprintf "woke at %a >= 5ms" Sim_time.pp !woke)
    true
    (!woke >= Sim_time.ms 5)

let test_sleepers_wake_in_order () =
  let k = make_kernel () in
  let order = ref [] in
  let sleeper name d =
    ignore
      (Kernel.spawn k ~name (fun () ->
           Usys.sleep d;
           order := name :: !order))
  in
  sleeper "late" (Sim_time.ms 10);
  sleeper "early" (Sim_time.ms 1);
  sleeper "mid" (Sim_time.ms 5);
  check_completed (Kernel.run k);
  Alcotest.(check (list string))
    "wake order" [ "early"; "mid"; "late" ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Message queues *)

let univ_int : (int -> Univ.t) * (Univ.t -> int option) = Univ.embed ()

let test_msgq_send_receive () =
  let inj, proj = univ_int in
  let k = make_kernel () in
  let q = Kernel.new_msgq k ~capacity:8 in
  let got = ref [] in
  let _rcv =
    Kernel.spawn k ~name:"rcv" (fun () ->
        for _ = 1 to 3 do
          match proj (Usys.msgrcv q ~mtype:0) with
          | Some v -> got := v :: !got
          | None -> Alcotest.fail "wrong payload brand"
        done)
  in
  let _snd =
    Kernel.spawn k ~name:"snd" (fun () ->
        List.iter (fun v -> Usys.msgsnd q ~mtype:1 (inj v)) [ 10; 20; 30 ])
  in
  check_completed (Kernel.run k);
  Alcotest.(check (list int)) "fifo payloads" [ 10; 20; 30 ] (List.rev !got)

let test_msgq_mtype_selection () =
  let inj, proj = univ_int in
  let k = make_kernel () in
  let q = Kernel.new_msgq k ~capacity:8 in
  let got = ref [] in
  let _snd =
    Kernel.spawn k ~name:"snd" (fun () ->
        Usys.msgsnd q ~mtype:7 (inj 70);
        Usys.msgsnd q ~mtype:3 (inj 30);
        Usys.msgsnd q ~mtype:7 (inj 71))
  in
  let _rcv =
    Kernel.spawn k ~name:"rcv" (fun () ->
        let take mtype =
          match proj (Usys.msgrcv q ~mtype) with
          | Some v -> got := v :: !got
          | None -> Alcotest.fail "wrong brand"
        in
        take 3;
        take 7;
        take 7)
  in
  check_completed (Kernel.run k);
  Alcotest.(check (list int)) "selected by type" [ 30; 70; 71 ] (List.rev !got)

let test_msgq_full_blocks_sender () =
  let inj, _ = univ_int in
  let k = make_kernel () in
  let q = Kernel.new_msgq k ~capacity:2 in
  let sent = ref 0 in
  let snd =
    Kernel.spawn k ~name:"snd" (fun () ->
        for i = 1 to 4 do
          Usys.msgsnd q ~mtype:1 (inj i);
          sent := i
        done)
  in
  let _rcv =
    Kernel.spawn k ~name:"rcv" (fun () ->
        Usys.sleep (Sim_time.ms 1);
        for _ = 1 to 4 do
          ignore (Usys.msgrcv q ~mtype:0)
        done)
  in
  check_completed (Kernel.run k);
  Alcotest.(check int) "all sent" 4 !sent;
  Alcotest.(check bool) "sender blocked at least once" true (snd.Proc.vcsw >= 1);
  Alcotest.(check int) "queue drained" 0 (Kernel.msgq_length k q)

let test_msgq_rcv_blocks_until_send () =
  let inj, proj = univ_int in
  let k = make_kernel () in
  let q = Kernel.new_msgq k ~capacity:4 in
  let got = ref 0 in
  let rcv =
    Kernel.spawn k ~name:"rcv" (fun () ->
        match proj (Usys.msgrcv q ~mtype:0) with
        | Some v -> got := v
        | None -> Alcotest.fail "wrong brand")
  in
  let _snd =
    Kernel.spawn k ~name:"snd" (fun () ->
        Usys.work (us 300);
        Usys.msgsnd q ~mtype:1 (inj 99))
  in
  check_completed (Kernel.run k);
  Alcotest.(check int) "received" 99 !got;
  Alcotest.(check bool) "receiver blocked" true (rcv.Proc.vcsw >= 1)

(* ------------------------------------------------------------------ *)
(* Termination conditions *)

let test_deadlock_detection () =
  let k = make_kernel () in
  let sem = Kernel.new_sem k ~init:0 in
  let _ = Kernel.spawn k ~name:"stuck" (fun () -> Usys.sem_p sem) in
  match Kernel.run k with
  | Kernel.Deadlock [ p ] ->
    Alcotest.(check string) "blocked proc" "stuck" p.Proc.name
  | r -> Alcotest.failf "expected deadlock, got %a" Kernel.pp_result r

let test_time_limit () =
  let k = make_kernel () in
  let _ =
    Kernel.spawn k ~name:"spinner" (fun () ->
        while true do
          Usys.yield ()
        done)
  in
  match Kernel.run ~until:(Sim_time.ms 10) k with
  | Kernel.Time_limit ->
    Alcotest.(check bool) "time advanced" true (Kernel.now k >= Sim_time.ms 9)
  | r -> Alcotest.failf "expected time limit, got %a" Kernel.pp_result r

let test_step_limit () =
  let k =
    Kernel.create ~max_steps:1000 ~ncpus:1
      ~policy:(Sched_fixed.create Sched_fixed.default_params)
      ~costs:Costs.default ()
  in
  let _ =
    Kernel.spawn k ~name:"spinner" (fun () ->
        while true do
          Usys.work (us 1)
        done)
  in
  match Kernel.run k with
  | Kernel.Step_limit -> ()
  | r -> Alcotest.failf "expected step limit, got %a" Kernel.pp_result r

(* ------------------------------------------------------------------ *)
(* Multiprocessor *)

let test_two_cpus_run_in_parallel () =
  let k = make_kernel ~ncpus:2 () in
  let body () = Usys.work (Sim_time.ms 1) in
  let _ = Kernel.spawn k ~name:"w1" body in
  let _ = Kernel.spawn k ~name:"w2" body in
  check_completed (Kernel.run k);
  Alcotest.(check bool)
    (Format.asprintf "parallel elapsed %a < 1.5ms" Sim_time.pp (Kernel.now k))
    true
    (Kernel.now k < Sim_time.ms 1 + Sim_time.us 500)

let test_idle_cpu_picks_up_woken_proc () =
  let k = make_kernel ~ncpus:2 () in
  let sem = Kernel.new_sem k ~init:0 in
  let woke = ref Sim_time.zero in
  let _waiter =
    Kernel.spawn k ~name:"waiter" (fun () ->
        Usys.sem_p sem;
        woke := Usys.time ())
  in
  let _poster =
    Kernel.spawn k ~name:"poster" (fun () ->
        Usys.work (us 100);
        Usys.sem_v sem;
        (* keeps running: the waiter must proceed on the other CPU *)
        Usys.work (Sim_time.ms 5))
  in
  check_completed (Kernel.run k);
  Alcotest.(check bool)
    (Format.asprintf "waiter resumed at %a, before poster finished" Sim_time.pp
       !woke)
    true
    (!woke > us 100 && !woke < Sim_time.ms 2)

(* ------------------------------------------------------------------ *)
(* Handoff *)

let test_handoff_favors_target () =
  let k = make_kernel () in
  let log = ref [] in
  let spin name =
    Kernel.spawn k ~name (fun () ->
        Usys.work (us 1);
        log := name :: !log)
  in
  (* Three ready processes; the first hands off to the third, jumping the
     FIFO order. *)
  let _a =
    Kernel.spawn k ~name:"a" (fun () ->
        Usys.work (us 1);
        log := "a" :: !log;
        Usys.handoff (Syscall.To_pid 4);
        log := "a2" :: !log)
  in
  let _b = spin "b" in
  let _c = spin "c" in
  let d = spin "d" in
  Alcotest.(check int) "pid of d" 4 d.Proc.pid;
  check_completed (Kernel.run k);
  let order = List.rev !log in
  Alcotest.(check (list string))
    "d jumped the queue" [ "a"; "d"; "b"; "c"; "a2" ] order

let test_handoff_any_avoids_caller () =
  let k = make_kernel () in
  let log = ref [] in
  let _a =
    Kernel.spawn k ~name:"a" (fun () ->
        log := "a1" :: !log;
        Usys.handoff Syscall.To_any;
        log := "a2" :: !log)
  in
  let _b = Kernel.spawn k ~name:"b" (fun () -> log := "b" :: !log) in
  check_completed (Kernel.run k);
  Alcotest.(check (list string)) "b ran in between" [ "a1"; "b"; "a2" ]
    (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Policies: decay and Linux behaviours *)

let test_decay_policy_fairness () =
  let policy = Sched_decay.create Sched_decay.default_params in
  let k = make_kernel ~policy () in
  let a_count = ref 0 and b_count = ref 0 in
  let spin counter =
    for _ = 1 to 2000 do
      Usys.work (us 10);
      incr counter
    done
  in
  let _a = Kernel.spawn k ~name:"a" (fun () -> spin a_count) in
  let _b = Kernel.spawn k ~name:"b" (fun () -> spin b_count) in
  check_completed (Kernel.run k);
  Alcotest.(check int) "a finished" 2000 !a_count;
  Alcotest.(check int) "b finished" 2000 !b_count

let test_decay_yield_can_return_to_caller () =
  (* With degrading priorities, a fresh yield need not switch: the caller
     may still have the best priority (the §2.2 phenomenon). *)
  let policy = Sched_decay.create Sched_decay.default_params in
  let k = make_kernel ~policy () in
  let switches = ref 0 in
  let yields = 50 in
  let spin name =
    ignore
      (Kernel.spawn k ~name (fun () ->
           for _ = 1 to yields do
             Usys.work (us 2);
             Usys.yield ()
           done))
  in
  spin "a";
  spin "b";
  check_completed (Kernel.run k);
  List.iter (fun p -> switches := !switches + p.Proc.vcsw) (Kernel.procs k);
  Alcotest.(check bool)
    (Printf.sprintf "switches %d < total yields %d" !switches (2 * yields))
    true
    (!switches < 2 * yields)

let test_linux_unmodified_yield_starves () =
  (* Stock Linux 1.0: yield between equal spinners returns to the caller
     until a whole timer tick is accounted. *)
  let policy = Sched_linux.create Sched_linux.default_params in
  let k = make_kernel ~policy () in
  let first_switch = ref Sim_time.zero in
  let other_ran = ref false in
  let _a =
    Kernel.spawn k ~name:"a" (fun () ->
        while not !other_ran do
          Usys.work (us 5);
          Usys.yield ()
        done)
  in
  let _b =
    Kernel.spawn k ~name:"b" (fun () ->
        other_ran := true;
        first_switch := Usys.time ())
  in
  check_completed (Kernel.run k);
  Alcotest.(check bool)
    (Format.asprintf "first switch at %a, tick-scale" Sim_time.pp !first_switch)
    true
    (!first_switch >= Sim_time.ms 5)

let test_linux_modified_yield_switches_fast () =
  let policy =
    Sched_linux.create { Sched_linux.default_params with modified_yield = true }
  in
  let k = make_kernel ~policy () in
  let first_switch = ref Sim_time.zero in
  let other_ran = ref false in
  let _a =
    Kernel.spawn k ~name:"a" (fun () ->
        while not !other_ran do
          Usys.work (us 5);
          Usys.yield ()
        done)
  in
  let _b =
    Kernel.spawn k ~name:"b" (fun () ->
        other_ran := true;
        first_switch := Usys.time ())
  in
  check_completed (Kernel.run k);
  Alcotest.(check bool)
    (Format.asprintf "first switch at %a, microsecond-scale" Sim_time.pp
       !first_switch)
    true
    (!first_switch < Sim_time.ms 1)

(* ------------------------------------------------------------------ *)
(* Fixed-priority syscall *)

let test_set_fixed_priority_support () =
  let k = make_kernel ~policy:(Sched_decay.create Sched_decay.default_params) () in
  let supported = ref false in
  let _ =
    Kernel.spawn k ~name:"p" (fun () ->
        supported := Usys.set_fixed_priority true)
  in
  check_completed (Kernel.run k);
  Alcotest.(check bool) "decay supports fixed" true !supported;
  let kl = make_kernel ~policy:(Sched_linux.create Sched_linux.default_params) () in
  let supported_l = ref true in
  let _ =
    Kernel.spawn kl ~name:"p" (fun () ->
        supported_l := Usys.set_fixed_priority true)
  in
  check_completed (Kernel.run kl);
  Alcotest.(check bool) "linux 1.0 does not" false !supported_l

(* ------------------------------------------------------------------ *)
(* Accounting and determinism *)

let test_usage_snapshot () =
  let k = make_kernel () in
  let sem = Kernel.new_sem k ~init:0 in
  let usage = ref None in
  let _w =
    Kernel.spawn k ~name:"w" (fun () ->
        Usys.work (us 100);
        Usys.sem_p sem;
        usage := Some (Usys.usage ()))
  in
  let _p =
    Kernel.spawn k ~name:"p" (fun () ->
        Usys.work (us 10);
        Usys.sem_v sem)
  in
  check_completed (Kernel.run k);
  match !usage with
  | None -> Alcotest.fail "no usage recorded"
  | Some u ->
    Alcotest.(check bool) "cpu time counted" true (u.Syscall.cpu_time >= us 100);
    Alcotest.(check bool) "syscalls counted" true (u.Syscall.syscalls >= 2);
    Alcotest.(check bool)
      "block counted voluntary" true
      (u.Syscall.voluntary_switches >= 1)

let run_ping_pong seed =
  let policy = Sched_decay.create Sched_decay.default_params in
  let k = make_kernel ~policy () in
  let sem_a = Kernel.new_sem k ~init:0 in
  let sem_b = Kernel.new_sem k ~init:0 in
  ignore seed;
  let _a =
    Kernel.spawn k ~name:"a" (fun () ->
        for _ = 1 to 100 do
          Usys.sem_v sem_b;
          Usys.sem_p sem_a
        done)
  in
  let _b =
    Kernel.spawn k ~name:"b" (fun () ->
        for _ = 1 to 100 do
          Usys.sem_p sem_b;
          Usys.sem_v sem_a
        done)
  in
  (match Kernel.run k with
  | Kernel.Completed -> ()
  | r -> Alcotest.failf "ping-pong did not complete: %a" Kernel.pp_result r);
  Kernel.now k

let test_determinism () =
  let t1 = run_ping_pong 0 and t2 = run_ping_pong 0 in
  Alcotest.(check int) "identical final times" t1 t2

let test_trace_records_switches () =
  let tr = Trace.create ~enabled:true () in
  let policy = Sched_fixed.create Sched_fixed.default_params in
  let k = Kernel.create ~trace:tr ~ncpus:1 ~policy ~costs:Costs.default () in
  let body () =
    Usys.work (us 1);
    Usys.yield ();
    Usys.work (us 1)
  in
  let _a = Kernel.spawn k ~name:"a" body in
  let _b = Kernel.spawn k ~name:"b" body in
  check_completed (Kernel.run k);
  Alcotest.(check bool) "switch events" true (Trace.count tr ~tag:"switch" >= 2);
  Alcotest.(check bool) "syscalls traced" true (Trace.count tr ~tag:"syscall" >= 2);
  Alcotest.(check int) "spawns" 2 (Trace.count tr ~tag:"spawn")

(* ------------------------------------------------------------------ *)
(* Ready_set *)

let mk_proc name = Proc.make ~pid:0 ~name ~body:(fun () -> ())

let test_ready_set_fifo () =
  let rs = Ready_set.create () in
  let a = mk_proc "a" and b = mk_proc "b" and c = mk_proc "c" in
  Ready_set.add rs a;
  Ready_set.add rs b;
  Ready_set.add rs c;
  Alcotest.(check int) "count" 3 (Ready_set.count rs);
  Alcotest.(check (option string))
    "first out" (Some "a")
    (Option.map (fun p -> p.Proc.name) (Ready_set.take_first rs));
  Alcotest.(check bool) "a gone" false (Ready_set.mem rs a)

let test_ready_set_best_with_ties () =
  let rs = Ready_set.create () in
  let a = mk_proc "a" and b = mk_proc "b" in
  a.Proc.usage <- 5.0;
  b.Proc.usage <- 5.0;
  Ready_set.add rs a;
  Ready_set.add rs b;
  let best = Ready_set.take_best rs ~score:(fun p -> p.Proc.usage) in
  Alcotest.(check (option string))
    "fifo tie-break" (Some "a")
    (Option.map (fun p -> p.Proc.name) best)

let test_ready_set_excluding () =
  let rs = Ready_set.create () in
  let a = mk_proc "a" and b = mk_proc "b" in
  Ready_set.add rs a;
  Ready_set.add rs b;
  let got = Ready_set.take_best_excluding rs ~score:(fun _ -> 0.0) a in
  Alcotest.(check (option string))
    "skips excluded" (Some "b")
    (Option.map (fun p -> p.Proc.name) got);
  (* Now only [a] remains: exclusion cannot be honoured. *)
  Ready_set.add rs b;
  ignore (Ready_set.remove rs b : bool);
  let got2 = Ready_set.take_best_excluding rs ~score:(fun _ -> 0.0) a in
  Alcotest.(check (option string))
    "falls back to excluded when alone" (Some "a")
    (Option.map (fun p -> p.Proc.name) got2)

let test_ready_set_double_add_rejected () =
  let rs = Ready_set.create () in
  let a = mk_proc "a" in
  Ready_set.add rs a;
  Alcotest.check_raises "double add"
    (Invalid_argument "Ready_set.add: process already queued") (fun () ->
      Ready_set.add rs a)

let suites =
  [
    ( "os.kernel.basics",
      [
        Alcotest.test_case "single process work" `Quick test_single_proc_work;
        Alcotest.test_case "distinct pids" `Quick test_spawn_returns_distinct_pids;
        Alcotest.test_case "switch cost in elapsed" `Quick
          test_elapsed_includes_switch_cost;
        Alcotest.test_case "failure propagates" `Quick test_proc_failure_propagates;
      ] );
    ( "os.kernel.yield",
      [
        Alcotest.test_case "round robin alternation" `Quick test_yield_round_robin;
        Alcotest.test_case "solo yield returns to caller" `Quick
          test_yield_alone_returns_to_caller;
        Alcotest.test_case "yield switches count voluntary" `Quick
          test_yield_switch_counts_voluntary;
      ] );
    ( "os.kernel.semaphores",
      [
        Alcotest.test_case "P without blocking" `Quick
          test_sem_p_nonblocking_when_positive;
        Alcotest.test_case "P blocks, V wakes" `Quick test_sem_blocks_and_wakes;
        Alcotest.test_case "V accumulates" `Quick test_sem_v_accumulates;
        Alcotest.test_case "V does not reschedule" `Quick
          test_sem_v_does_not_reschedule;
        Alcotest.test_case "FIFO wakeups" `Quick test_sem_wakes_fifo;
        Alcotest.test_case "semvalue" `Quick test_sem_value_syscall;
      ] );
    ( "os.kernel.sleep",
      [
        Alcotest.test_case "sleep duration" `Quick test_sleep_duration;
        Alcotest.test_case "wake ordering" `Quick test_sleepers_wake_in_order;
      ] );
    ( "os.kernel.msgq",
      [
        Alcotest.test_case "send/receive fifo" `Quick test_msgq_send_receive;
        Alcotest.test_case "mtype selection" `Quick test_msgq_mtype_selection;
        Alcotest.test_case "full queue blocks sender" `Quick
          test_msgq_full_blocks_sender;
        Alcotest.test_case "empty queue blocks receiver" `Quick
          test_msgq_rcv_blocks_until_send;
      ] );
    ( "os.kernel.termination",
      [
        Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
        Alcotest.test_case "time limit" `Quick test_time_limit;
        Alcotest.test_case "step limit" `Quick test_step_limit;
      ] );
    ( "os.kernel.mp",
      [
        Alcotest.test_case "two cpus in parallel" `Quick
          test_two_cpus_run_in_parallel;
        Alcotest.test_case "idle cpu picks up wake" `Quick
          test_idle_cpu_picks_up_woken_proc;
      ] );
    ( "os.kernel.handoff",
      [
        Alcotest.test_case "favor target" `Quick test_handoff_favors_target;
        Alcotest.test_case "any avoids caller" `Quick test_handoff_any_avoids_caller;
      ] );
    ( "os.policies",
      [
        Alcotest.test_case "decay fairness" `Quick test_decay_policy_fairness;
        Alcotest.test_case "decay yield may return to caller" `Quick
          test_decay_yield_can_return_to_caller;
        Alcotest.test_case "linux stock yield starves" `Quick
          test_linux_unmodified_yield_starves;
        Alcotest.test_case "linux modified yield switches" `Quick
          test_linux_modified_yield_switches_fast;
        Alcotest.test_case "fixed-priority support" `Quick
          test_set_fixed_priority_support;
      ] );
    ( "os.accounting",
      [
        Alcotest.test_case "usage snapshot" `Quick test_usage_snapshot;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "trace records" `Quick test_trace_records_switches;
      ] );
    ( "os.ready_set",
      [
        Alcotest.test_case "fifo" `Quick test_ready_set_fifo;
        Alcotest.test_case "best with ties" `Quick test_ready_set_best_with_ties;
        Alcotest.test_case "excluding" `Quick test_ready_set_excluding;
        Alcotest.test_case "double add rejected" `Quick
          test_ready_set_double_add_rejected;
      ] );
  ]
