(* Tests for the real OCaml-5-domains implementation: the two-lock queue,
   the lock-free SPSC/MPSC ring transports, the Mutex/Condition semaphore,
   and the Send/Receive/Reply protocols over both transports. *)

open Ulipc_real

(* ------------------------------------------------------------------ *)
(* Tl_queue *)

let test_tlq_fifo () =
  let q = Tl_queue.create ~capacity:8 () in
  List.iter (fun v -> ignore (Tl_queue.enqueue q v : bool)) [ 1; 2; 3 ];
  (* bind in sequence: list literals evaluate right to left *)
  let a = Tl_queue.dequeue q in
  let b = Tl_queue.dequeue q in
  let c = Tl_queue.dequeue q in
  let d = Tl_queue.dequeue q in
  Alcotest.(check (list (option int)))
    "fifo then empty"
    [ Some 1; Some 2; Some 3; None ]
    [ a; b; c; d ]

let test_tlq_capacity () =
  let q = Tl_queue.create ~capacity:2 () in
  Alcotest.(check bool) "1st" true (Tl_queue.enqueue q 1);
  Alcotest.(check bool) "2nd" true (Tl_queue.enqueue q 2);
  Alcotest.(check bool) "3rd rejected" false (Tl_queue.enqueue q 3);
  ignore (Tl_queue.dequeue q : int option);
  Alcotest.(check bool) "room again" true (Tl_queue.enqueue q 4);
  Alcotest.(check int) "length" 2 (Tl_queue.length q)

let test_tlq_is_empty () =
  let q = Tl_queue.create ~capacity:4 () in
  Alcotest.(check bool) "empty" true (Tl_queue.is_empty q);
  ignore (Tl_queue.enqueue q 1 : bool);
  Alcotest.(check bool) "non-empty" false (Tl_queue.is_empty q)

let test_tlq_concurrent_transfer () =
  let q = Tl_queue.create ~capacity:32 () in
  let per_producer = 2_000 in
  let producer p () =
    for i = 1 to per_producer do
      while not (Tl_queue.enqueue q ((p * 1_000_000) + i)) do
        Domain.cpu_relax ()
      done
    done
  in
  let received = ref [] in
  let consumer () =
    let remaining = ref (2 * per_producer) in
    while !remaining > 0 do
      match Tl_queue.dequeue q with
      | Some v ->
        received := v :: !received;
        decr remaining
      | None -> Domain.cpu_relax ()
    done
  in
  let d1 = Domain.spawn (producer 1) in
  let d2 = Domain.spawn (producer 2) in
  let dc = Domain.spawn consumer in
  Domain.join d1;
  Domain.join d2;
  Domain.join dc;
  let received = List.rev !received in
  Alcotest.(check int) "no loss, no duplication" (2 * per_producer)
    (List.length (List.sort_uniq compare received));
  let ordered p =
    let mine = List.filter (fun v -> v / 1_000_000 = p) received in
    mine = List.sort compare mine
  in
  Alcotest.(check bool) "producer 1 fifo" true (ordered 1);
  Alcotest.(check bool) "producer 2 fifo" true (ordered 2)

let prop_tlq_model =
  QCheck.Test.make ~name:"Tl_queue matches a FIFO model" ~count:200
    QCheck.(list (option (int_bound 100)))
    (fun program ->
      let q = Tl_queue.create ~capacity:8 () in
      let model = Queue.create () in
      List.for_all
        (function
          | Some v ->
            let accepted = Tl_queue.enqueue q v in
            let model_accepts = Queue.length model < 8 in
            if model_accepts then Queue.add v model;
            accepted = model_accepts
          | None -> Tl_queue.dequeue q = Queue.take_opt model)
        program)

(* ------------------------------------------------------------------ *)
(* Spsc_ring: must be observationally identical to Tl_queue under one
   producer and one consumer — FIFO, exact capacity boundary, the nil
   sentinel when empty — including at non-power-of-two capacities, where
   the slot array is bigger than the logical bound. *)

let test_spsc_fifo () =
  let q = Spsc_ring.create ~capacity:8 () in
  List.iter (fun v -> ignore (Spsc_ring.enqueue q v : bool)) [ 1; 2; 3 ];
  let a = Spsc_ring.dequeue q in
  let b = Spsc_ring.dequeue q in
  let c = Spsc_ring.dequeue q in
  let d = Spsc_ring.dequeue q in
  Alcotest.(check (list int))
    "fifo then nil"
    [ 1; 2; 3; Spsc_ring.nil ]
    [ a; b; c; d ]

let test_spsc_capacity () =
  let q = Spsc_ring.create ~capacity:2 () in
  Alcotest.(check bool) "1st" true (Spsc_ring.enqueue q 1);
  Alcotest.(check bool) "2nd" true (Spsc_ring.enqueue q 2);
  Alcotest.(check bool) "3rd rejected" false (Spsc_ring.enqueue q 3);
  ignore (Spsc_ring.dequeue q : int);
  Alcotest.(check bool) "room again" true (Spsc_ring.enqueue q 4);
  Alcotest.(check int) "length" 2 (Spsc_ring.length q)

let test_spsc_wraparound () =
  (* Capacity 3 rides a 4-slot array: every lap crosses the wrap point
     and the flow-control boundary must still fire at 3, not 4. *)
  let q = Spsc_ring.create ~capacity:3 () in
  Alcotest.(check int) "capacity" 3 (Spsc_ring.capacity q);
  for lap = 0 to 99 do
    for i = 1 to 3 do
      Alcotest.(check bool) "accepted" true (Spsc_ring.enqueue q ((3 * lap) + i))
    done;
    Alcotest.(check bool) "4th rejected" false (Spsc_ring.enqueue q 0);
    for i = 1 to 3 do
      Alcotest.(check int)
        "fifo across wrap"
        ((3 * lap) + i)
        (Spsc_ring.dequeue q)
    done;
    Alcotest.(check int) "empty again" Spsc_ring.nil (Spsc_ring.dequeue q);
    Alcotest.(check bool) "is_empty" true (Spsc_ring.is_empty q)
  done

let test_spsc_rejects_negative_value () =
  let q = Spsc_ring.create ~capacity:4 () in
  Alcotest.check_raises "negative value"
    (Invalid_argument "Spsc_ring.enqueue: negative value") (fun () ->
      ignore (Spsc_ring.enqueue q (-3) : bool))

(* The sentinel-returning dequeue against an option-returning model:
   [nil] must appear exactly when the model is empty. *)
let deq_matches_model dequeue nil q model =
  let got = dequeue q in
  match Queue.take_opt model with
  | Some v -> got = v
  | None -> got = nil

let prop_spsc_model =
  QCheck.Test.make ~name:"Spsc_ring matches a FIFO model" ~count:200
    QCheck.(list (option (int_bound 100)))
    (fun program ->
      let q = Spsc_ring.create ~capacity:8 () in
      let model = Queue.create () in
      List.for_all
        (function
          | Some v ->
            let accepted = Spsc_ring.enqueue q v in
            let model_accepts = Queue.length model < 8 in
            if model_accepts then Queue.add v model;
            accepted = model_accepts
          | None -> deq_matches_model Spsc_ring.dequeue Spsc_ring.nil q model)
        program)

let test_spsc_concurrent_transfer () =
  (* One producer domain, one consumer domain, a ring much smaller than
     the traffic: the consumer must see exactly 1..n in order. *)
  let q = Spsc_ring.create ~capacity:16 () in
  let n = 20_000 in
  let producer () =
    for i = 1 to n do
      while not (Spsc_ring.enqueue q i) do
        Domain.cpu_relax ()
      done
    done
  in
  let consumer () =
    let next = ref 1 in
    let ok = ref true in
    while !next <= n do
      let v = Spsc_ring.dequeue q in
      if v = Spsc_ring.nil then Domain.cpu_relax ()
      else begin
        if v <> !next then ok := false;
        incr next
      end
    done;
    !ok
  in
  let dp = Domain.spawn producer in
  let dc = Domain.spawn consumer in
  Domain.join dp;
  Alcotest.(check bool) "exact fifo sequence" true (Domain.join dc);
  Alcotest.(check bool) "drained" true (Spsc_ring.is_empty q)

let test_spsc_rejects_nonpositive () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Spsc_ring.create: capacity must be positive") (fun () ->
      ignore (Spsc_ring.create ~capacity:0 () : Spsc_ring.t))

(* Multipush (Torquati): locally buffered values are invisible until a
   flush publishes them, publication is all-or-nothing, and FIFO order
   holds across mixed local/plain use. *)

let test_spsc_multipush_visibility () =
  let q = Spsc_ring.create ~capacity:16 () in
  Alcotest.(check bool) "buffered" true (Spsc_ring.enqueue_local q 1);
  Alcotest.(check bool) "buffered" true (Spsc_ring.enqueue_local q 2);
  Alcotest.(check int) "pending" 2 (Spsc_ring.pending_local q);
  Alcotest.(check bool) "invisible before flush" true (Spsc_ring.is_empty q);
  Alcotest.(check bool) "flush publishes" true (Spsc_ring.flush q);
  Alcotest.(check int) "pending drained" 0 (Spsc_ring.pending_local q);
  Alcotest.(check int) "first" 1 (Spsc_ring.dequeue q);
  Alcotest.(check int) "second" 2 (Spsc_ring.dequeue q);
  Alcotest.(check int) "empty" Spsc_ring.nil (Spsc_ring.dequeue q)

let test_spsc_multipush_autoflush () =
  (* The local buffer holds at most min 8 capacity: the 8th append must
     publish the whole span on its own. *)
  let q = Spsc_ring.create ~capacity:16 () in
  for v = 1 to 8 do
    Alcotest.(check bool) "accepted" true (Spsc_ring.enqueue_local q v)
  done;
  Alcotest.(check int) "auto-flushed" 0 (Spsc_ring.pending_local q);
  Alcotest.(check int) "published" 8 (Spsc_ring.length q);
  for v = 1 to 8 do
    Alcotest.(check int) "fifo" v (Spsc_ring.dequeue q)
  done

let test_spsc_multipush_mixed_fifo () =
  (* A plain enqueue must first flush leftovers so order is preserved. *)
  let q = Spsc_ring.create ~capacity:16 () in
  ignore (Spsc_ring.enqueue_local q 1 : bool);
  ignore (Spsc_ring.enqueue_local q 2 : bool);
  Alcotest.(check bool) "plain enqueue flushes first" true
    (Spsc_ring.enqueue q 3);
  (* bind in sequence: list literals evaluate right to left *)
  let a = Spsc_ring.dequeue q in
  let b = Spsc_ring.dequeue q in
  let c = Spsc_ring.dequeue q in
  Alcotest.(check (list int)) "fifo across mixed use" [ 1; 2; 3 ] [ a; b; c ]

let test_spsc_multipush_full () =
  (* All-or-nothing publication at the flow-control boundary. *)
  let q = Spsc_ring.create ~capacity:3 () in
  ignore (Spsc_ring.enqueue q 10 : bool);
  ignore (Spsc_ring.enqueue q 11 : bool);
  ignore (Spsc_ring.enqueue_local q 12 : bool);
  ignore (Spsc_ring.enqueue_local q 13 : bool);
  Alcotest.(check bool) "span of 2 does not fit in 1 slot" false
    (Spsc_ring.flush q);
  Alcotest.(check int) "span stays buffered" 2 (Spsc_ring.pending_local q);
  Alcotest.(check int) "room appears" 10 (Spsc_ring.dequeue q);
  Alcotest.(check bool) "now it fits" true (Spsc_ring.flush q);
  (* bind in sequence: list literals evaluate right to left *)
  let a = Spsc_ring.dequeue q in
  let b = Spsc_ring.dequeue q in
  let c = Spsc_ring.dequeue q in
  Alcotest.(check (list int)) "fifo preserved" [ 11; 12; 13 ] [ a; b; c ]

let test_spsc_multipush_concurrent_transfer () =
  (* The multipush producer against a batch consumer: same exact-FIFO
     guarantee as the plain transfer test. *)
  let q = Spsc_ring.create ~capacity:16 () in
  let n = 20_000 in
  let producer () =
    for i = 1 to n do
      while not (Spsc_ring.enqueue_local q i) do
        ignore (Spsc_ring.flush q : bool);
        Domain.cpu_relax ()
      done
    done;
    while not (Spsc_ring.flush q) do
      Domain.cpu_relax ()
    done
  in
  let consumer () =
    let buf = Array.make 8 0 in
    let next = ref 1 in
    let ok = ref true in
    while !next <= n do
      let k = Spsc_ring.dequeue_batch q buf ~pos:0 ~max:8 in
      if k = 0 then Domain.cpu_relax ()
      else
        for j = 0 to k - 1 do
          if buf.(j) <> !next then ok := false;
          incr next
        done
    done;
    !ok
  in
  let dp = Domain.spawn producer in
  let dc = Domain.spawn consumer in
  Domain.join dp;
  Alcotest.(check bool) "exact fifo sequence" true (Domain.join dc);
  Alcotest.(check bool) "drained" true (Spsc_ring.is_empty q)

(* ------------------------------------------------------------------ *)
(* Mpsc_ring: Tl_queue semantics sequentially, and no loss, duplication
   or per-producer reordering under concurrent producers. *)

let prop_mpsc_model =
  QCheck.Test.make ~name:"Mpsc_ring matches a FIFO model" ~count:200
    QCheck.(list (option (int_bound 100)))
    (fun program ->
      let q = Mpsc_ring.create ~capacity:8 () in
      let model = Queue.create () in
      List.for_all
        (function
          | Some v ->
            let accepted = Mpsc_ring.enqueue q v in
            let model_accepts = Queue.length model < 8 in
            if model_accepts then Queue.add v model;
            accepted = model_accepts
          | None -> deq_matches_model Mpsc_ring.dequeue Mpsc_ring.nil q model)
        program)

let test_mpsc_capacity () =
  (* Capacity 3 on a 4-slot array: boundary at the logical bound, across
     wraps. *)
  let q = Mpsc_ring.create ~capacity:3 () in
  for lap = 0 to 99 do
    for i = 1 to 3 do
      Alcotest.(check bool) "accepted" true (Mpsc_ring.enqueue q ((3 * lap) + i))
    done;
    Alcotest.(check bool) "4th rejected" false (Mpsc_ring.enqueue q 0);
    for i = 1 to 3 do
      Alcotest.(check int)
        "fifo across wrap"
        ((3 * lap) + i)
        (Mpsc_ring.dequeue q)
    done;
    Alcotest.(check int) "empty again" Mpsc_ring.nil (Mpsc_ring.dequeue q)
  done

let test_mpsc_concurrent_producers () =
  let q = Mpsc_ring.create ~capacity:32 () in
  let nproducers = 4 in
  let per_producer = 2_000 in
  let producer p () =
    for i = 1 to per_producer do
      while not (Mpsc_ring.enqueue q ((p * 1_000_000) + i)) do
        Domain.cpu_relax ()
      done
    done
  in
  let received = ref [] in
  let consumer () =
    let remaining = ref (nproducers * per_producer) in
    while !remaining > 0 do
      let v = Mpsc_ring.dequeue q in
      if v = Mpsc_ring.nil then Domain.cpu_relax ()
      else begin
        received := v :: !received;
        decr remaining
      end
    done
  in
  let producers = List.init nproducers (fun p -> Domain.spawn (producer (p + 1))) in
  let dc = Domain.spawn consumer in
  List.iter Domain.join producers;
  Domain.join dc;
  let received = List.rev !received in
  Alcotest.(check int) "no loss, no duplication"
    (nproducers * per_producer)
    (List.length (List.sort_uniq compare received));
  let ordered p =
    let mine = List.filter (fun v -> v / 1_000_000 = p) received in
    mine = List.sort compare mine
  in
  for p = 1 to nproducers do
    Alcotest.(check bool) (Printf.sprintf "producer %d fifo" p) true (ordered p)
  done;
  Alcotest.(check bool) "drained" true (Mpsc_ring.is_empty q)

let test_mpsc_rejects_nonpositive () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Mpsc_ring.create: capacity must be positive") (fun () ->
      ignore (Mpsc_ring.create ~capacity:0 () : Mpsc_ring.t))

(* ------------------------------------------------------------------ *)
(* Batch operations: on every transport, a batch must be observationally
   identical to n single ops — FIFO, no loss/duplication, exact capacity
   boundary (the accepted count is the model's free space, even when the
   batch straddles it). *)

let batch_program =
  QCheck.(
    list
      (oneof
         [
           map (fun vs -> `Enq vs) (list (int_bound 100));
           map (fun n -> `Deq n) (int_bound 12);
         ]))

let prop_batch_model name create enqueue_batch dequeue_batch =
  QCheck.Test.make ~name ~count:300 batch_program (fun program ->
      let q = create ~capacity:8 () in
      let model = Queue.create () in
      List.for_all
        (function
          | `Enq vs ->
            let k = enqueue_batch q vs in
            let expect = min (List.length vs) (8 - Queue.length model) in
            let rec add i = function
              | v :: rest when i < expect ->
                Queue.add v model;
                add (i + 1) rest
              | _ -> ()
            in
            add 0 vs;
            k = expect
          | `Deq max ->
            let got = dequeue_batch q ~max in
            let expect =
              List.init
                (min max (Queue.length model))
                (fun _ -> Queue.take model)
            in
            got = expect)
        program)

(* The rings' batch seam is array spans; adapt it to the list shape the
   generic model drives (and Tl_queue still exposes natively). *)
let array_batch_ops enqueue_batch dequeue_batch =
  let enq q vs =
    let a = Array.of_list vs in
    enqueue_batch q a ~pos:0 ~len:(Array.length a)
  in
  let deq q ~max =
    let buf = Array.make (Stdlib.max max 1) Slab.nil in
    let k = dequeue_batch q buf ~pos:0 ~max in
    Array.to_list (Array.sub buf 0 k)
  in
  (enq, deq)

let prop_tlq_batch_model =
  prop_batch_model "Tl_queue batch ops match n single ops" Tl_queue.create
    Tl_queue.enqueue_batch Tl_queue.dequeue_batch

let prop_spsc_batch_model =
  let enq, deq = array_batch_ops Spsc_ring.enqueue_batch Spsc_ring.dequeue_batch in
  prop_batch_model "Spsc_ring batch ops match n single ops" Spsc_ring.create
    enq deq

let prop_mpsc_batch_model =
  let enq, deq = array_batch_ops Mpsc_ring.enqueue_batch Mpsc_ring.dequeue_batch in
  prop_batch_model "Mpsc_ring batch ops match n single ops" Mpsc_ring.create
    enq deq

let test_batch_validation () =
  let q = Spsc_ring.create ~capacity:4 () in
  let buf = Array.make 10 0 in
  Alcotest.(check int) "max 0" 0 (Spsc_ring.dequeue_batch q buf ~pos:0 ~max:0);
  Alcotest.check_raises "negative max"
    (Invalid_argument "Spsc_ring.dequeue_batch: negative max") (fun () ->
      ignore (Spsc_ring.dequeue_batch q buf ~pos:0 ~max:(-1) : int));
  Alcotest.check_raises "span past the buffer"
    (Invalid_argument "Spsc_ring.dequeue_batch: bad span") (fun () ->
      ignore (Spsc_ring.dequeue_batch q buf ~pos:8 ~max:5 : int));
  Alcotest.check_raises "bad enqueue span"
    (Invalid_argument "Spsc_ring.enqueue_batch: bad span") (fun () ->
      ignore (Spsc_ring.enqueue_batch q buf ~pos:8 ~len:5 : int));
  Alcotest.check_raises "negative value in span"
    (Invalid_argument "Spsc_ring.enqueue_batch: negative value") (fun () ->
      ignore (Spsc_ring.enqueue_batch q [| 1; -2 |] ~pos:0 ~len:2 : int));
  Alcotest.(check int) "empty batch" 0 (Spsc_ring.enqueue_batch q [||] ~pos:0 ~len:0);
  (* Prefix semantics at the boundary: capacity 4, 2 occupied, a 5-batch
     accepts exactly 2. *)
  Alcotest.(check int) "fill 2" 2 (Spsc_ring.enqueue_batch q [| 1; 2 |] ~pos:0 ~len:2);
  Alcotest.(check int) "prefix at boundary" 2
    (Spsc_ring.enqueue_batch q [| 3; 4; 5; 6; 7 |] ~pos:0 ~len:5);
  Alcotest.(check int) "fifo across batches" 4
    (Spsc_ring.dequeue_batch q buf ~pos:0 ~max:10);
  Alcotest.(check (list int)) "fifo contents" [ 1; 2; 3; 4 ]
    (Array.to_list (Array.sub buf 0 4))

(* Batch enqueues racing a concurrent consumer, on the MPSC ring: two
   producer domains each pushing batches of varying size, one consumer
   draining with dequeue_batch.  No loss, no duplication, per-producer
   FIFO — the span-claim CAS must never hand two producers overlapping
   slots. *)
let test_mpsc_batch_concurrent () =
  let q = Mpsc_ring.create ~capacity:16 () in
  let nproducers = 2 in
  let per_producer = 3_000 in
  let producer p () =
    let batch = Array.make 7 0 in
    let sent = ref 0 in
    while !sent < per_producer do
      let k = min (1 + (!sent mod 7)) (per_producer - !sent) in
      for i = 0 to k - 1 do
        batch.(i) <- (p * 1_000_000) + !sent + i + 1
      done;
      let accepted = Mpsc_ring.enqueue_batch q batch ~pos:0 ~len:k in
      if accepted = 0 then Domain.cpu_relax ();
      sent := !sent + accepted
    done
  in
  let received = ref [] in
  let consumer () =
    let buf = Array.make 8 0 in
    let remaining = ref (nproducers * per_producer) in
    while !remaining > 0 do
      match Mpsc_ring.dequeue_batch q buf ~pos:0 ~max:8 with
      | 0 -> Domain.cpu_relax ()
      | k ->
        for i = 0 to k - 1 do
          received := buf.(i) :: !received
        done;
        remaining := !remaining - k
    done
  in
  let producers =
    List.init nproducers (fun p -> Domain.spawn (producer (p + 1)))
  in
  let dc = Domain.spawn consumer in
  List.iter Domain.join producers;
  Domain.join dc;
  let received = List.rev !received in
  Alcotest.(check int) "no loss, no duplication"
    (nproducers * per_producer)
    (List.length (List.sort_uniq compare received));
  let ordered p =
    let mine = List.filter (fun v -> v / 1_000_000 = p) received in
    mine = List.sort compare mine
  in
  for p = 1 to nproducers do
    Alcotest.(check bool) (Printf.sprintf "producer %d fifo" p) true (ordered p)
  done

(* ------------------------------------------------------------------ *)
(* Slab: the lock-free free-list behind the zero-copy message plane. *)

(* Random alloc/release programs against a free-set model: try_alloc
   succeeds exactly while the model says slots remain, never hands out a
   slot the model believes allocated, and release returns it. *)
let prop_slab_model =
  QCheck.Test.make ~name:"Slab alloc/release matches a free-set model"
    ~count:300
    QCheck.(list (option (int_bound 20)))
    (fun program ->
      let slots = 6 in
      let s = Slab.create ~slots () in
      let held = ref [] in
      List.for_all
        (function
          | Some pick -> (
            (* Release one of the held slots, chosen by the generator. *)
            match !held with
            | [] -> true
            | hs ->
              let i = List.nth hs (pick mod List.length hs) in
              Slab.release s i;
              held := List.filter (fun j -> j <> i) hs;
              true)
          | None -> (
            let i = Slab.try_alloc s in
            if List.length !held >= slots then i = Slab.nil
            else
              i >= 0 && i < slots
              && (not (List.mem i !held))
              &&
              (held := i :: !held;
               true)))
        program)

let test_slab_exhaustion () =
  let s = Slab.create ~slots:2 () in
  let a = Slab.try_alloc s in
  let b = Slab.try_alloc s in
  Alcotest.(check bool) "two distinct slots" true
    (a <> Slab.nil && b <> Slab.nil && a <> b);
  Alcotest.(check int) "exhausted -> nil" Slab.nil (Slab.try_alloc s);
  Alcotest.(check (option int)) "exhausted -> None" None (Slab.alloc s);
  Alcotest.(check int) "both in use" 2 (Slab.in_use_count s);
  Slab.release s a;
  Alcotest.(check int) "released slot comes back" a (Slab.try_alloc s)

let test_slab_double_release_rejected () =
  let s = Slab.create ~slots:2 () in
  let i = Slab.try_alloc s in
  Slab.release s i;
  Alcotest.check_raises "double release"
    (Invalid_argument "Slab.release: slot is not allocated") (fun () ->
      Slab.release s i);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Slab.release: index out of range") (fun () ->
      Slab.release s 99);
  Alcotest.check_raises "nil index"
    (Invalid_argument "Slab.release: index out of range") (fun () ->
      Slab.release s Slab.nil)

let test_slab_payload_roundtrip () =
  let s = Slab.create ~slots:4 () in
  let i = Slab.try_alloc s in
  Slab.set_client s i 3;
  Slab.set_tag s i 7;
  Slab.set_data s i 123456;
  Slab.set_aux s i (-9);
  Slab.set_arg s i 2.5;
  Alcotest.(check int) "client" 3 (Slab.get_client s i);
  Alcotest.(check int) "tag" 7 (Slab.get_tag s i);
  Alcotest.(check int) "data" 123456 (Slab.get_data s i);
  Alcotest.(check int) "aux" (-9) (Slab.get_aux s i);
  Alcotest.(check (float 0.0)) "arg" 2.5 (Slab.get_arg s i)

(* 4-domain stress: each domain brands every slot it allocates with a
   value unique to (domain, iteration), spins briefly, and verifies the
   brand before releasing.  If the free list ever hands the same slot to
   two domains (ABA or a lost CAS), a brand check fails; the final
   in_use_count confirms nothing leaked. *)
let test_slab_no_aliasing_under_stress () =
  let s = Slab.create ~slots:8 () in
  let ndomains = 4 in
  let iters = 20_000 in
  let worker d () =
    let ok = ref true in
    for k = 1 to iters do
      let i = Slab.try_alloc s in
      if i <> Slab.nil then begin
        let brand = (d * 100_000_000) + k in
        Slab.set_data s i brand;
        Slab.set_aux s i (lnot brand);
        Domain.cpu_relax ();
        if Slab.get_data s i <> brand || Slab.get_aux s i <> lnot brand then
          ok := false;
        Slab.release s i
      end
      else Domain.cpu_relax ()
    done;
    !ok
  in
  let domains = List.init ndomains (fun d -> Domain.spawn (worker (d + 1))) in
  let oks = List.map Domain.join domains in
  List.iteri
    (fun d ok ->
      Alcotest.(check bool) (Printf.sprintf "domain %d saw no aliasing" d) true ok)
    oks;
  Alcotest.(check int) "no leaked slots" 0 (Slab.in_use_count s)

let test_slab_rejects_bad_sizes () =
  Alcotest.check_raises "zero slots"
    (Invalid_argument "Slab.create: slots must be positive") (fun () ->
      ignore (Slab.create ~slots:0 () : Slab.t))

(* ------------------------------------------------------------------ *)
(* Rsem *)

let test_rsem_counting () =
  let s = Rsem.create 2 in
  Rsem.p s;
  Rsem.p s;
  Alcotest.(check int) "drained" 0 (Rsem.value s);
  Rsem.v s;
  Rsem.v s;
  Rsem.v s;
  Alcotest.(check int) "accumulates" 3 (Rsem.value s)

let test_rsem_pending_v_prevents_block () =
  (* Interleaving 1 of the paper: a V posted before the P must remain
     pending.  If it did not, this test would hang. *)
  let s = Rsem.create 0 in
  Rsem.v s;
  Rsem.p s;
  Alcotest.(check int) "consumed" 0 (Rsem.value s)

let test_rsem_blocks_until_v () =
  let s = Rsem.create 0 in
  let woke = Atomic.make false in
  let waiter =
    Domain.spawn (fun () ->
        Rsem.p s;
        Atomic.set woke true)
  in
  (* Give the waiter a chance to block, then wake it. *)
  Unix.sleepf 0.02;
  Alcotest.(check bool) "still blocked" false (Atomic.get woke);
  Rsem.v s;
  Domain.join waiter;
  Alcotest.(check bool) "woke after V" true (Atomic.get woke)

let test_rsem_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Rsem.create: negative initial count")
    (fun () -> ignore (Rsem.create (-1)))

let test_rsem_try_p () =
  let s = Rsem.create 2 in
  Alcotest.(check bool) "takes 1st" true (Rsem.try_p s);
  Alcotest.(check bool) "takes 2nd" true (Rsem.try_p s);
  Alcotest.(check bool) "refuses on zero" false (Rsem.try_p s);
  Alcotest.(check int) "count untouched by refusal" 0 (Rsem.value s);
  Rsem.v s;
  Alcotest.(check bool) "takes after V" true (Rsem.try_p s)

let test_rsem_try_p_never_blocks () =
  (* try_p on an empty semaphore must return, not wait: run it on this
     domain with no V anywhere in flight. *)
  let s = Rsem.create 0 in
  for _ = 1 to 1_000 do
    if Rsem.try_p s then Alcotest.fail "took from an empty semaphore"
  done;
  Alcotest.(check int) "still zero" 0 (Rsem.value s)

let test_rsem_v_n_counting () =
  let s = Rsem.create 0 in
  Rsem.v_n s 0;
  Alcotest.(check int) "v_n 0 is a no-op" 0 (Rsem.value s);
  Rsem.v_n s 5;
  Alcotest.(check int) "batched credits" 5 (Rsem.value s);
  for _ = 1 to 5 do
    Rsem.p s
  done;
  Alcotest.(check int) "all consumable" 0 (Rsem.value s);
  Alcotest.check_raises "negative n"
    (Invalid_argument "Rsem.v_n: negative credit count") (fun () ->
      Rsem.v_n s (-1))

let test_rsem_v_n_no_lost_wakeup () =
  (* 4-domain stress: 2 producers publish credits in batches of 1..7 via
     v_n, 2 consumers take them one P at a time.  Every credit must be
     consumed exactly once — a lost wake-up hangs a consumer (and the
     join), an invented one leaves value <> 0. *)
  let s = Rsem.create 0 in
  let per_side = 3_000 in
  let producer seed () =
    let sent = ref 0 in
    let k = ref seed in
    while !sent < per_side do
      let n = min (1 + (!k mod 7)) (per_side - !sent) in
      Rsem.v_n s n;
      sent := !sent + n;
      k := !k + 3
    done
  in
  let consumer () =
    for _ = 1 to per_side do
      Rsem.p s
    done
  in
  let domains =
    [
      Domain.spawn (producer 0);
      Domain.spawn (producer 1);
      Domain.spawn consumer;
      Domain.spawn consumer;
    ]
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "all credits consumed exactly once" 0 (Rsem.value s)

(* ------------------------------------------------------------------ *)
(* Rpc protocols on real domains *)

(* Run a complete 2×-double echo workload through an existing session:
   one server domain, [Rpc.nclients t] client domains, [messages] calls
   each; joins everything before returning. *)
let echo_through (t : (int, int) Rpc.t) ~messages =
  let nclients = Rpc.nclients t in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref (nclients * messages) in
        while !remaining > 0 do
          let client, v = Rpc.receive t in
          Rpc.reply t ~client (v * 2);
          decr remaining
        done)
  in
  let clients =
    List.init nclients (fun c ->
        Domain.spawn (fun () ->
            for i = 1 to messages do
              let v = (c * 10_000_000) + i in
              if Rpc.send t ~client:c v <> 2 * v then
                failwith "echo mismatch"
            done))
  in
  List.iter Domain.join clients;
  Domain.join server

let echo_exchange ?(messages = 500) ?transport waiting () =
  let nclients = 2 in
  let t : (int, int) Rpc.t = Rpc.create ?transport ~nclients waiting in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref (nclients * messages) in
        while !remaining > 0 do
          let client, v = Rpc.receive t in
          Rpc.reply t ~client (v * 2);
          decr remaining
        done)
  in
  let client c =
    Domain.spawn (fun () ->
        let bad = ref 0 in
        for i = 1 to messages do
          let v = (c * 10_000_000) + i in
          if Rpc.send t ~client:c v <> 2 * v then incr bad
        done;
        !bad)
  in
  let clients = List.init nclients client in
  let bads = List.map Domain.join clients in
  Domain.join server;
  Alcotest.(check (list int)) "all echoes correct" [ 0; 0 ] bads;
  Alcotest.(check bool)
    (Printf.sprintf "wake residue bounded (%d)" (Rpc.wake_residue t))
    true
    (Rpc.wake_residue t <= nclients + 1)

let test_rpc_async () =
  let t : (int, int) Rpc.t = Rpc.create ~nclients:1 Rpc.Block in
  let batch = 50 in
  let server =
    Domain.spawn (fun () ->
        for _ = 1 to batch do
          let client, v = Rpc.receive t in
          Rpc.reply t ~client (v + 1)
        done)
  in
  let client =
    Domain.spawn (fun () ->
        for i = 1 to batch do
          Rpc.post t ~client:0 i
        done;
        let sum = ref 0 in
        for _ = 1 to batch do
          sum := !sum + Rpc.collect t ~client:0
        done;
        !sum)
  in
  let sum = Domain.join client in
  Domain.join server;
  Alcotest.(check int) "sum of replies" ((batch * (batch + 1) / 2) + batch) sum

let test_rpc_validation () =
  let t : (int, int) Rpc.t = Rpc.create ~nclients:2 Rpc.Block in
  Alcotest.(check int) "nclients" 2 (Rpc.nclients t);
  Alcotest.check_raises "bad client"
    (Invalid_argument "Rpc.reply_channel: no channel 9") (fun () ->
      ignore (Rpc.post t ~client:9 0));
  Alcotest.check_raises "bad nclients"
    (Invalid_argument "Rpc.create: nclients must be positive") (fun () ->
      ignore (Rpc.create ~nclients:0 Rpc.Block : (int, int) Rpc.t));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Rpc.create: capacity must be positive") (fun () ->
      ignore (Rpc.create ~capacity:0 ~nclients:1 Rpc.Block : (int, int) Rpc.t));
  Alcotest.check_raises "bad max_spin"
    (Invalid_argument "Rpc.create: max_spin must be non-negative") (fun () ->
      ignore (Rpc.create ~nclients:1 (Rpc.Limited_spin (-1)) : (int, int) Rpc.t))

let test_rpc_no_stale_wakeups transport () =
  (* The C.4 drain (Rsem.try_p after a successful second dequeue) must
     absorb every wake-up raced against a non-sleeping consumer: after a
     blocking exchange fully quiesces, no semaphore may hold residue —
     on either transport.  Quiescence must also return every payload
     slot: a slab leak means a send/receive/reply path dropped a slot
     without releasing it. *)
  let t : (int, int) Rpc.t = Rpc.create ~transport ~nclients:2 Rpc.Block in
  echo_through t ~messages:300;
  Alcotest.(check int) "no stale V residue" 0 (Rpc.wake_residue t);
  Alcotest.(check int) "no leaked slab slots" 0
    (Slab.in_use_count (Rpc.slab t))

let test_rpc_zero_alloc_steady_state () =
  (* The tentpole property: with immediate-int codecs on the ring
     transport, a steady-state synchronous round-trip allocates nothing
     on the client's minor heap — indices through flat rings, payloads
     in flat slab fields.  minor_words is per-domain in OCaml 5, so the
     server's allocations (its domain spawn, its own warm-up) cannot
     contaminate the reading; the calibration pair subtracts what the
     Gc.minor_words calls themselves charge. *)
  let t : (int, int) Rpc.t =
    Rpc.create ~transport:Real_substrate.Ring ~req_codec:Rpc.int_codec
      ~rep_codec:Rpc.int_codec ~nclients:1 Rpc.Block
  in
  let server =
    Domain.spawn (fun () ->
        (* Bind the handler once — a closure built inside the loop would
           be allocated per serve turn (server-side, but keep the server
           turn zero-allocation too). *)
        let stop = ref false in
        let handler ~client:_ v =
          if v = -1 then stop := true;
          v + 1
        in
        while not !stop do
          Rpc.serve t handler
        done)
  in
  (* Warm-up faults in the domain-local backoff state and any lazy
     initialisation on both sides. *)
  for i = 1 to 64 do
    if Rpc.call t ~client:0 i <> i + 1 then Alcotest.fail "echo mismatch"
  done;
  let calib =
    let a = Gc.minor_words () in
    Gc.minor_words () -. a
  in
  let ops = 512 in
  let w0 = Gc.minor_words () in
  for i = 1 to ops do
    ignore (Rpc.call t ~client:0 i : int)
  done;
  let w1 = Gc.minor_words () in
  let per_op = (w1 -. w0 -. calib) /. float_of_int ops in
  ignore (Rpc.call t ~client:0 (-1) : int);
  Domain.join server;
  Alcotest.(check (float 0.0))
    (Printf.sprintf "0 minor words per round-trip (got %g)" per_op)
    0.0 per_op;
  Alcotest.(check int) "no leaked slab slots" 0
    (Slab.in_use_count (Rpc.slab t))

let test_rpc_counters () =
  let messages = 200 in
  let nclients = 2 in
  let t : (int, int) Rpc.t = Rpc.create ~nclients Rpc.Block in
  echo_through t ~messages;
  let c = Rpc.counters t in
  let total = nclients * messages in
  (* sends/receives/replies are bumped by single writers per field
     (clients never race the server on the same field only for
     server-side ones); client-side sends race across 2 domains, so
     allow undercount but never overcount. *)
  Alcotest.(check int) "receives (single writer)" total
    c.Ulipc.Counters.receives;
  Alcotest.(check int) "replies (single writer)" total c.Ulipc.Counters.replies;
  Alcotest.(check bool) "sends bounded" true
    (c.Ulipc.Counters.sends > 0 && c.Ulipc.Counters.sends <= total);
  Alcotest.(check bool) "server wakeups bounded" true
    (c.Ulipc.Counters.server_wakeups <= total)

(* Batched server loop: receive_batch + reply_batch must be
   observationally identical to the one-at-a-time loop. *)
let test_rpc_batched_server transport () =
  let nclients = 2 in
  let messages = 300 in
  let t : (int, int) Rpc.t =
    Rpc.create ~transport ~nclients (Rpc.Adaptive 4096)
  in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref (nclients * messages) in
        while !remaining > 0 do
          let batch = Rpc.receive_batch t ~max:16 in
          Rpc.reply_batch t (List.map (fun (c, v) -> (c, v * 2)) batch);
          remaining := !remaining - List.length batch
        done)
  in
  let clients =
    List.init nclients (fun c ->
        Domain.spawn (fun () ->
            let bad = ref 0 in
            for i = 1 to messages do
              let v = (c * 10_000_000) + i in
              if Rpc.send t ~client:c v <> 2 * v then incr bad
            done;
            !bad))
  in
  let bads = List.map Domain.join clients in
  Domain.join server;
  Alcotest.(check (list int)) "all echoes correct" [ 0; 0 ] bads

(* Differential: depth-k pipelining must produce exactly the replies of k
   sequential sends, in request order. *)
let test_rpc_pipelined_differential () =
  let messages = 200 in
  let t : (int, int) Rpc.t = Rpc.create ~nclients:1 Rpc.Block in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref messages in
        while !remaining > 0 do
          let batch = Rpc.receive_batch t ~max:16 in
          Rpc.reply_batch t (List.map (fun (c, v) -> (c, v + 7)) batch);
          remaining := !remaining - List.length batch
        done)
  in
  let reqs = List.init messages (fun i -> i * 3) in
  let got =
    Domain.join
      (Domain.spawn (fun () -> Rpc.call_pipelined t ~client:0 ~depth:8 reqs))
  in
  Domain.join server;
  let expect = List.map (fun v -> v + 7) reqs in
  Alcotest.(check (list int)) "depth-8 = sequential sends" expect got

let test_rpc_pipelined_validation () =
  let t : (int, int) Rpc.t = Rpc.create ~nclients:1 Rpc.Block in
  Alcotest.(check (list int)) "empty request list" []
    (Rpc.call_pipelined t ~client:0 ~depth:4 []);
  Alcotest.check_raises "bad depth"
    (Invalid_argument "Rpc.call_pipelined: depth must be positive") (fun () ->
      ignore (Rpc.call_pipelined t ~client:0 ~depth:0 [ 1 ]));
  Alcotest.check_raises "bad adaptive cap"
    (Invalid_argument "Rpc.create: adaptive spin cap must be non-negative")
    (fun () ->
      ignore (Rpc.create ~nclients:1 (Rpc.Adaptive (-1)) : (int, int) Rpc.t))

let suites =
  [
    ( "realipc.tl_queue",
      [
        Alcotest.test_case "fifo" `Quick test_tlq_fifo;
        Alcotest.test_case "capacity" `Quick test_tlq_capacity;
        Alcotest.test_case "is_empty" `Quick test_tlq_is_empty;
        Alcotest.test_case "concurrent transfer" `Quick
          test_tlq_concurrent_transfer;
        QCheck_alcotest.to_alcotest prop_tlq_model;
        QCheck_alcotest.to_alcotest prop_tlq_batch_model;
      ] );
    ( "realipc.spsc_ring",
      [
        Alcotest.test_case "fifo" `Quick test_spsc_fifo;
        Alcotest.test_case "capacity boundary" `Quick test_spsc_capacity;
        Alcotest.test_case "wraparound at capacity 3" `Quick
          test_spsc_wraparound;
        Alcotest.test_case "rejects negative values" `Quick
          test_spsc_rejects_negative_value;
        Alcotest.test_case "concurrent 1p/1c transfer" `Quick
          test_spsc_concurrent_transfer;
        Alcotest.test_case "rejects non-positive capacity" `Quick
          test_spsc_rejects_nonpositive;
        QCheck_alcotest.to_alcotest prop_spsc_model;
        QCheck_alcotest.to_alcotest prop_spsc_batch_model;
        Alcotest.test_case "batch validation + prefix boundary" `Quick
          test_batch_validation;
        Alcotest.test_case "multipush invisible until flush" `Quick
          test_spsc_multipush_visibility;
        Alcotest.test_case "multipush auto-flush at 8" `Quick
          test_spsc_multipush_autoflush;
        Alcotest.test_case "multipush mixed-use fifo" `Quick
          test_spsc_multipush_mixed_fifo;
        Alcotest.test_case "multipush all-or-nothing at full" `Quick
          test_spsc_multipush_full;
        Alcotest.test_case "multipush concurrent 1p/1c transfer" `Quick
          test_spsc_multipush_concurrent_transfer;
      ] );
    ( "realipc.slab",
      [
        QCheck_alcotest.to_alcotest prop_slab_model;
        Alcotest.test_case "exhaustion returns nil/None" `Quick
          test_slab_exhaustion;
        Alcotest.test_case "double release rejected" `Quick
          test_slab_double_release_rejected;
        Alcotest.test_case "payload field round-trip" `Quick
          test_slab_payload_roundtrip;
        Alcotest.test_case "4-domain no-aliasing stress" `Quick
          test_slab_no_aliasing_under_stress;
        Alcotest.test_case "rejects bad sizes" `Quick
          test_slab_rejects_bad_sizes;
      ] );
    ( "realipc.mpsc_ring",
      [
        Alcotest.test_case "capacity boundary + wraparound" `Quick
          test_mpsc_capacity;
        Alcotest.test_case "concurrent 4p/1c, no loss/dup" `Quick
          test_mpsc_concurrent_producers;
        Alcotest.test_case "rejects non-positive capacity" `Quick
          test_mpsc_rejects_nonpositive;
        QCheck_alcotest.to_alcotest prop_mpsc_model;
        QCheck_alcotest.to_alcotest prop_mpsc_batch_model;
        Alcotest.test_case "concurrent batch 2p/1c, no loss/dup" `Quick
          test_mpsc_batch_concurrent;
      ] );
    ( "realipc.rsem",
      [
        Alcotest.test_case "counting" `Quick test_rsem_counting;
        Alcotest.test_case "pending V (Interleaving 1)" `Quick
          test_rsem_pending_v_prevents_block;
        Alcotest.test_case "blocks until V" `Quick test_rsem_blocks_until_v;
        Alcotest.test_case "rejects negative" `Quick test_rsem_rejects_negative;
        Alcotest.test_case "try_p counting" `Quick test_rsem_try_p;
        Alcotest.test_case "try_p never blocks" `Quick
          test_rsem_try_p_never_blocks;
        Alcotest.test_case "v_n counting + validation" `Quick
          test_rsem_v_n_counting;
        Alcotest.test_case "v_n 4-domain no-lost-wakeup stress" `Quick
          test_rsem_v_n_no_lost_wakeup;
      ] );
    ( "realipc.rpc",
      [
        (* Spinning on an oversubscribed host costs an OS quantum per
           round-trip; keep the spin runs short.  The default transport is
           the ring; the two-lock variants pin the classic backend. *)
        Alcotest.test_case "echo, spin (BSS)" `Quick
          (echo_exchange ~messages:50 Rpc.Spin);
        Alcotest.test_case "echo, spin (BSS, two-lock)" `Quick
          (echo_exchange ~messages:50 ~transport:Real_substrate.Two_lock
             Rpc.Spin);
        Alcotest.test_case "echo, block (BSW)" `Quick (echo_exchange Rpc.Block);
        Alcotest.test_case "echo, block (BSW, two-lock)" `Quick
          (echo_exchange ~transport:Real_substrate.Two_lock Rpc.Block);
        Alcotest.test_case "echo, block+yield (BSWY)" `Quick
          (echo_exchange Rpc.Block_yield);
        Alcotest.test_case "echo, limited spin (BSLS)" `Quick
          (echo_exchange (Rpc.Limited_spin 100));
        Alcotest.test_case "echo, handoff" `Quick (echo_exchange Rpc.Handoff);
        Alcotest.test_case "echo, adaptive (ADAPT)" `Quick
          (echo_exchange (Rpc.Adaptive 4096));
        Alcotest.test_case "echo, adaptive (ADAPT, two-lock)" `Quick
          (echo_exchange ~transport:Real_substrate.Two_lock (Rpc.Adaptive 4096));
        Alcotest.test_case "async post/collect" `Quick test_rpc_async;
        Alcotest.test_case "validation" `Quick test_rpc_validation;
        Alcotest.test_case "no stale wake-ups (try_p drain, ring)" `Quick
          (test_rpc_no_stale_wakeups Real_substrate.Ring);
        Alcotest.test_case "no stale wake-ups (try_p drain, two-lock)" `Quick
          (test_rpc_no_stale_wakeups Real_substrate.Two_lock);
        Alcotest.test_case "counters" `Quick test_rpc_counters;
        Alcotest.test_case "batched server (receive_batch/reply_batch, ring)"
          `Quick
          (test_rpc_batched_server Real_substrate.Ring);
        Alcotest.test_case
          "batched server (receive_batch/reply_batch, two-lock)" `Quick
          (test_rpc_batched_server Real_substrate.Two_lock);
        Alcotest.test_case "pipelined depth-8 = sequential (differential)"
          `Quick test_rpc_pipelined_differential;
        Alcotest.test_case "pipelined validation" `Quick
          test_rpc_pipelined_validation;
        Alcotest.test_case "zero-alloc steady-state round-trip" `Quick
          test_rpc_zero_alloc_steady_state;
      ] );
  ]
