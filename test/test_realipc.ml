(* Tests for the real OCaml-5-domains implementation: the two-lock queue,
   the lock-free SPSC/MPSC ring transports, the Mutex/Condition semaphore,
   and the Send/Receive/Reply protocols over both transports. *)

open Ulipc_real

(* ------------------------------------------------------------------ *)
(* Tl_queue *)

let test_tlq_fifo () =
  let q = Tl_queue.create ~capacity:8 () in
  List.iter (fun v -> ignore (Tl_queue.enqueue q v : bool)) [ 1; 2; 3 ];
  (* bind in sequence: list literals evaluate right to left *)
  let a = Tl_queue.dequeue q in
  let b = Tl_queue.dequeue q in
  let c = Tl_queue.dequeue q in
  let d = Tl_queue.dequeue q in
  Alcotest.(check (list (option int)))
    "fifo then empty"
    [ Some 1; Some 2; Some 3; None ]
    [ a; b; c; d ]

let test_tlq_capacity () =
  let q = Tl_queue.create ~capacity:2 () in
  Alcotest.(check bool) "1st" true (Tl_queue.enqueue q 1);
  Alcotest.(check bool) "2nd" true (Tl_queue.enqueue q 2);
  Alcotest.(check bool) "3rd rejected" false (Tl_queue.enqueue q 3);
  ignore (Tl_queue.dequeue q : int option);
  Alcotest.(check bool) "room again" true (Tl_queue.enqueue q 4);
  Alcotest.(check int) "length" 2 (Tl_queue.length q)

let test_tlq_is_empty () =
  let q = Tl_queue.create ~capacity:4 () in
  Alcotest.(check bool) "empty" true (Tl_queue.is_empty q);
  ignore (Tl_queue.enqueue q 1 : bool);
  Alcotest.(check bool) "non-empty" false (Tl_queue.is_empty q)

let test_tlq_concurrent_transfer () =
  let q = Tl_queue.create ~capacity:32 () in
  let per_producer = 2_000 in
  let producer p () =
    for i = 1 to per_producer do
      while not (Tl_queue.enqueue q ((p * 1_000_000) + i)) do
        Domain.cpu_relax ()
      done
    done
  in
  let received = ref [] in
  let consumer () =
    let remaining = ref (2 * per_producer) in
    while !remaining > 0 do
      match Tl_queue.dequeue q with
      | Some v ->
        received := v :: !received;
        decr remaining
      | None -> Domain.cpu_relax ()
    done
  in
  let d1 = Domain.spawn (producer 1) in
  let d2 = Domain.spawn (producer 2) in
  let dc = Domain.spawn consumer in
  Domain.join d1;
  Domain.join d2;
  Domain.join dc;
  let received = List.rev !received in
  Alcotest.(check int) "no loss, no duplication" (2 * per_producer)
    (List.length (List.sort_uniq compare received));
  let ordered p =
    let mine = List.filter (fun v -> v / 1_000_000 = p) received in
    mine = List.sort compare mine
  in
  Alcotest.(check bool) "producer 1 fifo" true (ordered 1);
  Alcotest.(check bool) "producer 2 fifo" true (ordered 2)

let prop_tlq_model =
  QCheck.Test.make ~name:"Tl_queue matches a FIFO model" ~count:200
    QCheck.(list (option (int_bound 100)))
    (fun program ->
      let q = Tl_queue.create ~capacity:8 () in
      let model = Queue.create () in
      List.for_all
        (function
          | Some v ->
            let accepted = Tl_queue.enqueue q v in
            let model_accepts = Queue.length model < 8 in
            if model_accepts then Queue.add v model;
            accepted = model_accepts
          | None -> Tl_queue.dequeue q = Queue.take_opt model)
        program)

(* ------------------------------------------------------------------ *)
(* Spsc_ring: must be observationally identical to Tl_queue under one
   producer and one consumer — FIFO, exact capacity boundary, None when
   empty — including at non-power-of-two capacities, where the slot array
   is bigger than the logical bound. *)

let test_spsc_fifo () =
  let q = Spsc_ring.create ~capacity:8 () in
  List.iter (fun v -> ignore (Spsc_ring.enqueue q v : bool)) [ 1; 2; 3 ];
  let a = Spsc_ring.dequeue q in
  let b = Spsc_ring.dequeue q in
  let c = Spsc_ring.dequeue q in
  let d = Spsc_ring.dequeue q in
  Alcotest.(check (list (option int)))
    "fifo then empty"
    [ Some 1; Some 2; Some 3; None ]
    [ a; b; c; d ]

let test_spsc_capacity () =
  let q = Spsc_ring.create ~capacity:2 () in
  Alcotest.(check bool) "1st" true (Spsc_ring.enqueue q 1);
  Alcotest.(check bool) "2nd" true (Spsc_ring.enqueue q 2);
  Alcotest.(check bool) "3rd rejected" false (Spsc_ring.enqueue q 3);
  ignore (Spsc_ring.dequeue q : int option);
  Alcotest.(check bool) "room again" true (Spsc_ring.enqueue q 4);
  Alcotest.(check int) "length" 2 (Spsc_ring.length q)

let test_spsc_wraparound () =
  (* Capacity 3 rides a 4-slot array: every lap crosses the wrap point
     and the flow-control boundary must still fire at 3, not 4. *)
  let q = Spsc_ring.create ~capacity:3 () in
  Alcotest.(check int) "capacity" 3 (Spsc_ring.capacity q);
  for lap = 0 to 99 do
    for i = 1 to 3 do
      Alcotest.(check bool) "accepted" true (Spsc_ring.enqueue q ((3 * lap) + i))
    done;
    Alcotest.(check bool) "4th rejected" false (Spsc_ring.enqueue q 0);
    for i = 1 to 3 do
      Alcotest.(check (option int))
        "fifo across wrap"
        (Some ((3 * lap) + i))
        (Spsc_ring.dequeue q)
    done;
    Alcotest.(check (option int)) "empty again" None (Spsc_ring.dequeue q);
    Alcotest.(check bool) "is_empty" true (Spsc_ring.is_empty q)
  done

let prop_spsc_model =
  QCheck.Test.make ~name:"Spsc_ring matches a FIFO model" ~count:200
    QCheck.(list (option (int_bound 100)))
    (fun program ->
      let q = Spsc_ring.create ~capacity:8 () in
      let model = Queue.create () in
      List.for_all
        (function
          | Some v ->
            let accepted = Spsc_ring.enqueue q v in
            let model_accepts = Queue.length model < 8 in
            if model_accepts then Queue.add v model;
            accepted = model_accepts
          | None -> Spsc_ring.dequeue q = Queue.take_opt model)
        program)

let test_spsc_concurrent_transfer () =
  (* One producer domain, one consumer domain, a ring much smaller than
     the traffic: the consumer must see exactly 1..n in order. *)
  let q = Spsc_ring.create ~capacity:16 () in
  let n = 20_000 in
  let producer () =
    for i = 1 to n do
      while not (Spsc_ring.enqueue q i) do
        Domain.cpu_relax ()
      done
    done
  in
  let consumer () =
    let next = ref 1 in
    let ok = ref true in
    while !next <= n do
      match Spsc_ring.dequeue q with
      | Some v ->
        if v <> !next then ok := false;
        incr next
      | None -> Domain.cpu_relax ()
    done;
    !ok
  in
  let dp = Domain.spawn producer in
  let dc = Domain.spawn consumer in
  Domain.join dp;
  Alcotest.(check bool) "exact fifo sequence" true (Domain.join dc);
  Alcotest.(check bool) "drained" true (Spsc_ring.is_empty q)

let test_spsc_rejects_nonpositive () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Spsc_ring.create: capacity must be positive") (fun () ->
      ignore (Spsc_ring.create ~capacity:0 () : int Spsc_ring.t))

(* ------------------------------------------------------------------ *)
(* Mpsc_ring: Tl_queue semantics sequentially, and no loss, duplication
   or per-producer reordering under concurrent producers. *)

let prop_mpsc_model =
  QCheck.Test.make ~name:"Mpsc_ring matches a FIFO model" ~count:200
    QCheck.(list (option (int_bound 100)))
    (fun program ->
      let q = Mpsc_ring.create ~capacity:8 () in
      let model = Queue.create () in
      List.for_all
        (function
          | Some v ->
            let accepted = Mpsc_ring.enqueue q v in
            let model_accepts = Queue.length model < 8 in
            if model_accepts then Queue.add v model;
            accepted = model_accepts
          | None -> Mpsc_ring.dequeue q = Queue.take_opt model)
        program)

let test_mpsc_capacity () =
  (* Capacity 3 on a 4-slot array: boundary at the logical bound, across
     wraps. *)
  let q = Mpsc_ring.create ~capacity:3 () in
  for lap = 0 to 99 do
    for i = 1 to 3 do
      Alcotest.(check bool) "accepted" true (Mpsc_ring.enqueue q ((3 * lap) + i))
    done;
    Alcotest.(check bool) "4th rejected" false (Mpsc_ring.enqueue q 0);
    for i = 1 to 3 do
      Alcotest.(check (option int))
        "fifo across wrap"
        (Some ((3 * lap) + i))
        (Mpsc_ring.dequeue q)
    done;
    Alcotest.(check (option int)) "empty again" None (Mpsc_ring.dequeue q)
  done

let test_mpsc_concurrent_producers () =
  let q = Mpsc_ring.create ~capacity:32 () in
  let nproducers = 4 in
  let per_producer = 2_000 in
  let producer p () =
    for i = 1 to per_producer do
      while not (Mpsc_ring.enqueue q ((p * 1_000_000) + i)) do
        Domain.cpu_relax ()
      done
    done
  in
  let received = ref [] in
  let consumer () =
    let remaining = ref (nproducers * per_producer) in
    while !remaining > 0 do
      match Mpsc_ring.dequeue q with
      | Some v ->
        received := v :: !received;
        decr remaining
      | None -> Domain.cpu_relax ()
    done
  in
  let producers = List.init nproducers (fun p -> Domain.spawn (producer (p + 1))) in
  let dc = Domain.spawn consumer in
  List.iter Domain.join producers;
  Domain.join dc;
  let received = List.rev !received in
  Alcotest.(check int) "no loss, no duplication"
    (nproducers * per_producer)
    (List.length (List.sort_uniq compare received));
  let ordered p =
    let mine = List.filter (fun v -> v / 1_000_000 = p) received in
    mine = List.sort compare mine
  in
  for p = 1 to nproducers do
    Alcotest.(check bool) (Printf.sprintf "producer %d fifo" p) true (ordered p)
  done;
  Alcotest.(check bool) "drained" true (Mpsc_ring.is_empty q)

let test_mpsc_rejects_nonpositive () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Mpsc_ring.create: capacity must be positive") (fun () ->
      ignore (Mpsc_ring.create ~capacity:0 () : int Mpsc_ring.t))

(* ------------------------------------------------------------------ *)
(* Batch operations: on every transport, a batch must be observationally
   identical to n single ops — FIFO, no loss/duplication, exact capacity
   boundary (the accepted count is the model's free space, even when the
   batch straddles it). *)

let batch_program =
  QCheck.(
    list
      (oneof
         [
           map (fun vs -> `Enq vs) (list (int_bound 100));
           map (fun n -> `Deq n) (int_bound 12);
         ]))

let prop_batch_model name create enqueue_batch dequeue_batch =
  QCheck.Test.make ~name ~count:300 batch_program (fun program ->
      let q = create ~capacity:8 () in
      let model = Queue.create () in
      List.for_all
        (function
          | `Enq vs ->
            let k = enqueue_batch q vs in
            let expect = min (List.length vs) (8 - Queue.length model) in
            let rec add i = function
              | v :: rest when i < expect ->
                Queue.add v model;
                add (i + 1) rest
              | _ -> ()
            in
            add 0 vs;
            k = expect
          | `Deq max ->
            let got = dequeue_batch q ~max in
            let expect =
              List.init
                (min max (Queue.length model))
                (fun _ -> Queue.take model)
            in
            got = expect)
        program)

let prop_tlq_batch_model =
  prop_batch_model "Tl_queue batch ops match n single ops" Tl_queue.create
    Tl_queue.enqueue_batch Tl_queue.dequeue_batch

let prop_spsc_batch_model =
  prop_batch_model "Spsc_ring batch ops match n single ops" Spsc_ring.create
    Spsc_ring.enqueue_batch Spsc_ring.dequeue_batch

let prop_mpsc_batch_model =
  prop_batch_model "Mpsc_ring batch ops match n single ops" Mpsc_ring.create
    Mpsc_ring.enqueue_batch Mpsc_ring.dequeue_batch

let test_batch_validation () =
  let q = Spsc_ring.create ~capacity:4 () in
  Alcotest.(check (list int)) "max 0" [] (Spsc_ring.dequeue_batch q ~max:0);
  Alcotest.check_raises "negative max"
    (Invalid_argument "Spsc_ring.dequeue_batch: negative max") (fun () ->
      ignore (Spsc_ring.dequeue_batch q ~max:(-1) : int list));
  Alcotest.(check int) "empty batch" 0 (Spsc_ring.enqueue_batch q []);
  (* Prefix semantics at the boundary: capacity 4, 2 occupied, a 5-batch
     accepts exactly 2. *)
  Alcotest.(check int) "fill 2" 2 (Spsc_ring.enqueue_batch q [ 1; 2 ]);
  Alcotest.(check int) "prefix at boundary" 2
    (Spsc_ring.enqueue_batch q [ 3; 4; 5; 6; 7 ]);
  Alcotest.(check (list int)) "fifo across batches" [ 1; 2; 3; 4 ]
    (Spsc_ring.dequeue_batch q ~max:10)

(* Batch enqueues racing a concurrent consumer, on the MPSC ring: two
   producer domains each pushing batches of varying size, one consumer
   draining with dequeue_batch.  No loss, no duplication, per-producer
   FIFO — the span-claim CAS must never hand two producers overlapping
   slots. *)
let test_mpsc_batch_concurrent () =
  let q = Mpsc_ring.create ~capacity:16 () in
  let nproducers = 2 in
  let per_producer = 3_000 in
  let producer p () =
    let sent = ref 0 in
    while !sent < per_producer do
      let k = min (1 + (!sent mod 7)) (per_producer - !sent) in
      let batch =
        List.init k (fun i -> (p * 1_000_000) + !sent + i + 1)
      in
      let accepted = Mpsc_ring.enqueue_batch q batch in
      if accepted = 0 then Domain.cpu_relax ();
      sent := !sent + accepted
    done
  in
  let received = ref [] in
  let consumer () =
    let remaining = ref (nproducers * per_producer) in
    while !remaining > 0 do
      match Mpsc_ring.dequeue_batch q ~max:8 with
      | [] -> Domain.cpu_relax ()
      | vs ->
        received := List.rev_append vs !received;
        remaining := !remaining - List.length vs
    done
  in
  let producers =
    List.init nproducers (fun p -> Domain.spawn (producer (p + 1)))
  in
  let dc = Domain.spawn consumer in
  List.iter Domain.join producers;
  Domain.join dc;
  let received = List.rev !received in
  Alcotest.(check int) "no loss, no duplication"
    (nproducers * per_producer)
    (List.length (List.sort_uniq compare received));
  let ordered p =
    let mine = List.filter (fun v -> v / 1_000_000 = p) received in
    mine = List.sort compare mine
  in
  for p = 1 to nproducers do
    Alcotest.(check bool) (Printf.sprintf "producer %d fifo" p) true (ordered p)
  done

(* ------------------------------------------------------------------ *)
(* Rsem *)

let test_rsem_counting () =
  let s = Rsem.create 2 in
  Rsem.p s;
  Rsem.p s;
  Alcotest.(check int) "drained" 0 (Rsem.value s);
  Rsem.v s;
  Rsem.v s;
  Rsem.v s;
  Alcotest.(check int) "accumulates" 3 (Rsem.value s)

let test_rsem_pending_v_prevents_block () =
  (* Interleaving 1 of the paper: a V posted before the P must remain
     pending.  If it did not, this test would hang. *)
  let s = Rsem.create 0 in
  Rsem.v s;
  Rsem.p s;
  Alcotest.(check int) "consumed" 0 (Rsem.value s)

let test_rsem_blocks_until_v () =
  let s = Rsem.create 0 in
  let woke = Atomic.make false in
  let waiter =
    Domain.spawn (fun () ->
        Rsem.p s;
        Atomic.set woke true)
  in
  (* Give the waiter a chance to block, then wake it. *)
  Unix.sleepf 0.02;
  Alcotest.(check bool) "still blocked" false (Atomic.get woke);
  Rsem.v s;
  Domain.join waiter;
  Alcotest.(check bool) "woke after V" true (Atomic.get woke)

let test_rsem_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Rsem.create: negative initial count")
    (fun () -> ignore (Rsem.create (-1)))

let test_rsem_try_p () =
  let s = Rsem.create 2 in
  Alcotest.(check bool) "takes 1st" true (Rsem.try_p s);
  Alcotest.(check bool) "takes 2nd" true (Rsem.try_p s);
  Alcotest.(check bool) "refuses on zero" false (Rsem.try_p s);
  Alcotest.(check int) "count untouched by refusal" 0 (Rsem.value s);
  Rsem.v s;
  Alcotest.(check bool) "takes after V" true (Rsem.try_p s)

let test_rsem_try_p_never_blocks () =
  (* try_p on an empty semaphore must return, not wait: run it on this
     domain with no V anywhere in flight. *)
  let s = Rsem.create 0 in
  for _ = 1 to 1_000 do
    if Rsem.try_p s then Alcotest.fail "took from an empty semaphore"
  done;
  Alcotest.(check int) "still zero" 0 (Rsem.value s)

let test_rsem_v_n_counting () =
  let s = Rsem.create 0 in
  Rsem.v_n s 0;
  Alcotest.(check int) "v_n 0 is a no-op" 0 (Rsem.value s);
  Rsem.v_n s 5;
  Alcotest.(check int) "batched credits" 5 (Rsem.value s);
  for _ = 1 to 5 do
    Rsem.p s
  done;
  Alcotest.(check int) "all consumable" 0 (Rsem.value s);
  Alcotest.check_raises "negative n"
    (Invalid_argument "Rsem.v_n: negative credit count") (fun () ->
      Rsem.v_n s (-1))

let test_rsem_v_n_no_lost_wakeup () =
  (* 4-domain stress: 2 producers publish credits in batches of 1..7 via
     v_n, 2 consumers take them one P at a time.  Every credit must be
     consumed exactly once — a lost wake-up hangs a consumer (and the
     join), an invented one leaves value <> 0. *)
  let s = Rsem.create 0 in
  let per_side = 3_000 in
  let producer seed () =
    let sent = ref 0 in
    let k = ref seed in
    while !sent < per_side do
      let n = min (1 + (!k mod 7)) (per_side - !sent) in
      Rsem.v_n s n;
      sent := !sent + n;
      k := !k + 3
    done
  in
  let consumer () =
    for _ = 1 to per_side do
      Rsem.p s
    done
  in
  let domains =
    [
      Domain.spawn (producer 0);
      Domain.spawn (producer 1);
      Domain.spawn consumer;
      Domain.spawn consumer;
    ]
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "all credits consumed exactly once" 0 (Rsem.value s)

(* ------------------------------------------------------------------ *)
(* Rpc protocols on real domains *)

(* Run a complete 2×-double echo workload through an existing session:
   one server domain, [Rpc.nclients t] client domains, [messages] calls
   each; joins everything before returning. *)
let echo_through (t : (int, int) Rpc.t) ~messages =
  let nclients = Rpc.nclients t in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref (nclients * messages) in
        while !remaining > 0 do
          let client, v = Rpc.receive t in
          Rpc.reply t ~client (v * 2);
          decr remaining
        done)
  in
  let clients =
    List.init nclients (fun c ->
        Domain.spawn (fun () ->
            for i = 1 to messages do
              let v = (c * 10_000_000) + i in
              if Rpc.send t ~client:c v <> 2 * v then
                failwith "echo mismatch"
            done))
  in
  List.iter Domain.join clients;
  Domain.join server

let echo_exchange ?(messages = 500) ?transport waiting () =
  let nclients = 2 in
  let t : (int, int) Rpc.t = Rpc.create ?transport ~nclients waiting in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref (nclients * messages) in
        while !remaining > 0 do
          let client, v = Rpc.receive t in
          Rpc.reply t ~client (v * 2);
          decr remaining
        done)
  in
  let client c =
    Domain.spawn (fun () ->
        let bad = ref 0 in
        for i = 1 to messages do
          let v = (c * 10_000_000) + i in
          if Rpc.send t ~client:c v <> 2 * v then incr bad
        done;
        !bad)
  in
  let clients = List.init nclients client in
  let bads = List.map Domain.join clients in
  Domain.join server;
  Alcotest.(check (list int)) "all echoes correct" [ 0; 0 ] bads;
  Alcotest.(check bool)
    (Printf.sprintf "wake residue bounded (%d)" (Rpc.wake_residue t))
    true
    (Rpc.wake_residue t <= nclients + 1)

let test_rpc_async () =
  let t : (int, int) Rpc.t = Rpc.create ~nclients:1 Rpc.Block in
  let batch = 50 in
  let server =
    Domain.spawn (fun () ->
        for _ = 1 to batch do
          let client, v = Rpc.receive t in
          Rpc.reply t ~client (v + 1)
        done)
  in
  let client =
    Domain.spawn (fun () ->
        for i = 1 to batch do
          Rpc.post t ~client:0 i
        done;
        let sum = ref 0 in
        for _ = 1 to batch do
          sum := !sum + Rpc.collect t ~client:0
        done;
        !sum)
  in
  let sum = Domain.join client in
  Domain.join server;
  Alcotest.(check int) "sum of replies" ((batch * (batch + 1) / 2) + batch) sum

let test_rpc_validation () =
  let t : (int, int) Rpc.t = Rpc.create ~nclients:2 Rpc.Block in
  Alcotest.(check int) "nclients" 2 (Rpc.nclients t);
  Alcotest.check_raises "bad client"
    (Invalid_argument "Rpc.reply_channel: no channel 9") (fun () ->
      ignore (Rpc.post t ~client:9 0));
  Alcotest.check_raises "bad nclients"
    (Invalid_argument "Rpc.create: nclients must be positive") (fun () ->
      ignore (Rpc.create ~nclients:0 Rpc.Block : (int, int) Rpc.t));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Rpc.create: capacity must be positive") (fun () ->
      ignore (Rpc.create ~capacity:0 ~nclients:1 Rpc.Block : (int, int) Rpc.t));
  Alcotest.check_raises "bad max_spin"
    (Invalid_argument "Rpc.create: max_spin must be non-negative") (fun () ->
      ignore (Rpc.create ~nclients:1 (Rpc.Limited_spin (-1)) : (int, int) Rpc.t))

let test_rpc_no_stale_wakeups transport () =
  (* The C.4 drain (Rsem.try_p after a successful second dequeue) must
     absorb every wake-up raced against a non-sleeping consumer: after a
     blocking exchange fully quiesces, no semaphore may hold residue —
     on either transport. *)
  let t : (int, int) Rpc.t = Rpc.create ~transport ~nclients:2 Rpc.Block in
  echo_through t ~messages:300;
  Alcotest.(check int) "no stale V residue" 0 (Rpc.wake_residue t)

let test_rpc_counters () =
  let messages = 200 in
  let nclients = 2 in
  let t : (int, int) Rpc.t = Rpc.create ~nclients Rpc.Block in
  echo_through t ~messages;
  let c = Rpc.counters t in
  let total = nclients * messages in
  (* sends/receives/replies are bumped by single writers per field
     (clients never race the server on the same field only for
     server-side ones); client-side sends race across 2 domains, so
     allow undercount but never overcount. *)
  Alcotest.(check int) "receives (single writer)" total
    c.Ulipc.Counters.receives;
  Alcotest.(check int) "replies (single writer)" total c.Ulipc.Counters.replies;
  Alcotest.(check bool) "sends bounded" true
    (c.Ulipc.Counters.sends > 0 && c.Ulipc.Counters.sends <= total);
  Alcotest.(check bool) "server wakeups bounded" true
    (c.Ulipc.Counters.server_wakeups <= total)

(* Batched server loop: receive_batch + reply_batch must be
   observationally identical to the one-at-a-time loop. *)
let test_rpc_batched_server transport () =
  let nclients = 2 in
  let messages = 300 in
  let t : (int, int) Rpc.t =
    Rpc.create ~transport ~nclients (Rpc.Adaptive 4096)
  in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref (nclients * messages) in
        while !remaining > 0 do
          let batch = Rpc.receive_batch t ~max:16 in
          Rpc.reply_batch t (List.map (fun (c, v) -> (c, v * 2)) batch);
          remaining := !remaining - List.length batch
        done)
  in
  let clients =
    List.init nclients (fun c ->
        Domain.spawn (fun () ->
            let bad = ref 0 in
            for i = 1 to messages do
              let v = (c * 10_000_000) + i in
              if Rpc.send t ~client:c v <> 2 * v then incr bad
            done;
            !bad))
  in
  let bads = List.map Domain.join clients in
  Domain.join server;
  Alcotest.(check (list int)) "all echoes correct" [ 0; 0 ] bads

(* Differential: depth-k pipelining must produce exactly the replies of k
   sequential sends, in request order. *)
let test_rpc_pipelined_differential () =
  let messages = 200 in
  let t : (int, int) Rpc.t = Rpc.create ~nclients:1 Rpc.Block in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref messages in
        while !remaining > 0 do
          let batch = Rpc.receive_batch t ~max:16 in
          Rpc.reply_batch t (List.map (fun (c, v) -> (c, v + 7)) batch);
          remaining := !remaining - List.length batch
        done)
  in
  let reqs = List.init messages (fun i -> i * 3) in
  let got =
    Domain.join
      (Domain.spawn (fun () -> Rpc.call_pipelined t ~client:0 ~depth:8 reqs))
  in
  Domain.join server;
  let expect = List.map (fun v -> v + 7) reqs in
  Alcotest.(check (list int)) "depth-8 = sequential sends" expect got

let test_rpc_pipelined_validation () =
  let t : (int, int) Rpc.t = Rpc.create ~nclients:1 Rpc.Block in
  Alcotest.(check (list int)) "empty request list" []
    (Rpc.call_pipelined t ~client:0 ~depth:4 []);
  Alcotest.check_raises "bad depth"
    (Invalid_argument "Rpc.call_pipelined: depth must be positive") (fun () ->
      ignore (Rpc.call_pipelined t ~client:0 ~depth:0 [ 1 ]));
  Alcotest.check_raises "bad adaptive cap"
    (Invalid_argument "Rpc.create: adaptive spin cap must be non-negative")
    (fun () ->
      ignore (Rpc.create ~nclients:1 (Rpc.Adaptive (-1)) : (int, int) Rpc.t))

let suites =
  [
    ( "realipc.tl_queue",
      [
        Alcotest.test_case "fifo" `Quick test_tlq_fifo;
        Alcotest.test_case "capacity" `Quick test_tlq_capacity;
        Alcotest.test_case "is_empty" `Quick test_tlq_is_empty;
        Alcotest.test_case "concurrent transfer" `Quick
          test_tlq_concurrent_transfer;
        QCheck_alcotest.to_alcotest prop_tlq_model;
        QCheck_alcotest.to_alcotest prop_tlq_batch_model;
      ] );
    ( "realipc.spsc_ring",
      [
        Alcotest.test_case "fifo" `Quick test_spsc_fifo;
        Alcotest.test_case "capacity boundary" `Quick test_spsc_capacity;
        Alcotest.test_case "wraparound at capacity 3" `Quick
          test_spsc_wraparound;
        Alcotest.test_case "concurrent 1p/1c transfer" `Quick
          test_spsc_concurrent_transfer;
        Alcotest.test_case "rejects non-positive capacity" `Quick
          test_spsc_rejects_nonpositive;
        QCheck_alcotest.to_alcotest prop_spsc_model;
        QCheck_alcotest.to_alcotest prop_spsc_batch_model;
        Alcotest.test_case "batch validation + prefix boundary" `Quick
          test_batch_validation;
      ] );
    ( "realipc.mpsc_ring",
      [
        Alcotest.test_case "capacity boundary + wraparound" `Quick
          test_mpsc_capacity;
        Alcotest.test_case "concurrent 4p/1c, no loss/dup" `Quick
          test_mpsc_concurrent_producers;
        Alcotest.test_case "rejects non-positive capacity" `Quick
          test_mpsc_rejects_nonpositive;
        QCheck_alcotest.to_alcotest prop_mpsc_model;
        QCheck_alcotest.to_alcotest prop_mpsc_batch_model;
        Alcotest.test_case "concurrent batch 2p/1c, no loss/dup" `Quick
          test_mpsc_batch_concurrent;
      ] );
    ( "realipc.rsem",
      [
        Alcotest.test_case "counting" `Quick test_rsem_counting;
        Alcotest.test_case "pending V (Interleaving 1)" `Quick
          test_rsem_pending_v_prevents_block;
        Alcotest.test_case "blocks until V" `Quick test_rsem_blocks_until_v;
        Alcotest.test_case "rejects negative" `Quick test_rsem_rejects_negative;
        Alcotest.test_case "try_p counting" `Quick test_rsem_try_p;
        Alcotest.test_case "try_p never blocks" `Quick
          test_rsem_try_p_never_blocks;
        Alcotest.test_case "v_n counting + validation" `Quick
          test_rsem_v_n_counting;
        Alcotest.test_case "v_n 4-domain no-lost-wakeup stress" `Quick
          test_rsem_v_n_no_lost_wakeup;
      ] );
    ( "realipc.rpc",
      [
        (* Spinning on an oversubscribed host costs an OS quantum per
           round-trip; keep the spin runs short.  The default transport is
           the ring; the two-lock variants pin the classic backend. *)
        Alcotest.test_case "echo, spin (BSS)" `Quick
          (echo_exchange ~messages:50 Rpc.Spin);
        Alcotest.test_case "echo, spin (BSS, two-lock)" `Quick
          (echo_exchange ~messages:50 ~transport:Real_substrate.Two_lock
             Rpc.Spin);
        Alcotest.test_case "echo, block (BSW)" `Quick (echo_exchange Rpc.Block);
        Alcotest.test_case "echo, block (BSW, two-lock)" `Quick
          (echo_exchange ~transport:Real_substrate.Two_lock Rpc.Block);
        Alcotest.test_case "echo, block+yield (BSWY)" `Quick
          (echo_exchange Rpc.Block_yield);
        Alcotest.test_case "echo, limited spin (BSLS)" `Quick
          (echo_exchange (Rpc.Limited_spin 100));
        Alcotest.test_case "echo, handoff" `Quick (echo_exchange Rpc.Handoff);
        Alcotest.test_case "echo, adaptive (ADAPT)" `Quick
          (echo_exchange (Rpc.Adaptive 4096));
        Alcotest.test_case "echo, adaptive (ADAPT, two-lock)" `Quick
          (echo_exchange ~transport:Real_substrate.Two_lock (Rpc.Adaptive 4096));
        Alcotest.test_case "async post/collect" `Quick test_rpc_async;
        Alcotest.test_case "validation" `Quick test_rpc_validation;
        Alcotest.test_case "no stale wake-ups (try_p drain, ring)" `Quick
          (test_rpc_no_stale_wakeups Real_substrate.Ring);
        Alcotest.test_case "no stale wake-ups (try_p drain, two-lock)" `Quick
          (test_rpc_no_stale_wakeups Real_substrate.Two_lock);
        Alcotest.test_case "counters" `Quick test_rpc_counters;
        Alcotest.test_case "batched server (receive_batch/reply_batch, ring)"
          `Quick
          (test_rpc_batched_server Real_substrate.Ring);
        Alcotest.test_case
          "batched server (receive_batch/reply_batch, two-lock)" `Quick
          (test_rpc_batched_server Real_substrate.Two_lock);
        Alcotest.test_case "pipelined depth-8 = sequential (differential)"
          `Quick test_rpc_pipelined_differential;
        Alcotest.test_case "pipelined validation" `Quick
          test_rpc_pipelined_validation;
      ] );
  ]
