(* Tests for the sharded server fleet: the client→shard map, the
   steal-token rebalancing protocol, the pooled sessions' observational
   equivalence with a single server, and the directed Rsem wake-ups the
   fleet leans on.  Everything here runs on real domains. *)

open Ulipc_real

(* ------------------------------------------------------------------ *)
(* Shard_map *)

let test_shard_map_default () =
  let m = Shard_map.create ~nclients:7 ~nshards:3 () in
  Alcotest.(check int) "nshards" 3 (Shard_map.nshards m);
  Alcotest.(check int) "nclients" 7 (Shard_map.nclients m);
  Alcotest.(check (list int)) "round-robin affinity"
    [ 0; 1; 2; 0; 1; 2; 0 ]
    (List.init 7 (Shard_map.shard m));
  Alcotest.(check (list int)) "per-shard load" [ 3; 2; 2 ]
    (Array.to_list (Shard_map.load m))

let test_shard_map_custom () =
  let m =
    Shard_map.create ~assign:(fun _ -> 1) ~nclients:4 ~nshards:2 ()
  in
  Alcotest.(check (list int)) "all pinned" [ 1; 1; 1; 1 ]
    (List.init 4 (Shard_map.shard m));
  Alcotest.(check (list int)) "load all on shard 1" [ 0; 4 ]
    (Array.to_list (Shard_map.load m))

let test_shard_map_validation () =
  Alcotest.check_raises "no shards"
    (Invalid_argument "Shard_map.create: nshards must be positive") (fun () ->
      ignore (Shard_map.create ~nclients:1 ~nshards:0 () : Shard_map.t));
  Alcotest.check_raises "no clients"
    (Invalid_argument "Shard_map.create: nclients must be positive") (fun () ->
      ignore (Shard_map.create ~nclients:0 ~nshards:1 () : Shard_map.t));
  Alcotest.check_raises "assign out of range"
    (Invalid_argument
       "Shard_map.create: assignment maps client 2 to shard 5 (have 2 shards)")
    (fun () ->
      ignore
        (Shard_map.create
           ~assign:(fun c -> if c = 2 then 5 else 0)
           ~nclients:3 ~nshards:2 ()
          : Shard_map.t))

let await ?(timeout_s = 10.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  if not (pred ()) then Alcotest.fail ("timed out waiting for " ^ what)

(* ------------------------------------------------------------------ *)
(* Pooled echo harness.

   [nservers] server domains run the driver's poison discipline: serve
   until a poison request ([-1 - shard]) naming the server's own shard
   arrives; forward a sibling's poison to its target.  Poisons are
   posted only after all client traffic has been collected, so each ring
   then holds at most its own poison (depth 1 < steal_min) and no poison
   can be stolen. *)

let spawn_server (t : (int, int) Rpc.t) ~k ~reply_of =
  Domain.spawn (fun () ->
      let live = ref true in
      while !live do
        let client, v = Rpc.receive ~server:k t in
        if v >= 0 then Rpc.reply t ~client (reply_of v)
        else begin
          let target = -1 - v in
          if target = k then live := false
          else Rpc.post ~shard:target t ~client:0 v
        end
      done)

let spawn_pool (t : (int, int) Rpc.t) ~nservers ~reply_of =
  Array.init nservers (fun k -> spawn_server t ~k ~reply_of)

let poison_pool (t : (int, int) Rpc.t) ~nservers servers =
  for k = 0 to nservers - 1 do
    Rpc.post ~shard:k t ~client:0 (-1 - k)
  done;
  Array.iter Domain.join servers

(* Each client posts its requests in windows of [window], collecting the
   window's replies before the next — enough outstanding traffic to
   build shard backlog (and trigger stealing), bounded enough never to
   exceed queue capacity.  Returns each client's reply multiset, sorted.
   Stealing may reorder a client's in-flight requests, so the sorted
   list is the observable a pooled run must preserve. *)
let pooled_echo ?shard_assign ?(window = 8) ~nservers ~nclients ~messages
    ~reply_of () =
  let t : (int, int) Rpc.t =
    Rpc.create ?shard_assign ~req_codec:Rpc.int_codec ~rep_codec:Rpc.int_codec
      ~nservers ~nclients Rpc.Block
  in
  let servers = spawn_pool t ~nservers ~reply_of in
  let clients =
    List.init nclients (fun c ->
        Domain.spawn (fun () ->
            let got = ref [] in
            let sent = ref 0 in
            while !sent < messages do
              let k = min window (messages - !sent) in
              for j = 1 to k do
                Rpc.post t ~client:c ((c * 1_000_000) + !sent + j)
              done;
              for _ = 1 to k do
                got := Rpc.collect t ~client:c :: !got
              done;
              sent := !sent + k
            done;
            List.sort compare !got))
  in
  let replies = List.map Domain.join clients in
  poison_pool t ~nservers servers;
  (t, replies)

let expected_replies ~nclients ~messages ~reply_of =
  List.init nclients (fun c ->
      List.sort compare
        (List.init messages (fun j -> reply_of ((c * 1_000_000) + j + 1))))

(* Differential: for every pool size, a pooled echo session delivers to
   each client exactly the multiset of replies the single-server session
   defines — no loss, no duplication, no cross-client leak.  Randomised
   over pool size, client count and per-client traffic. *)
let prop_pool_differential =
  QCheck.Test.make ~name:"N-server echo = single-server echo (per client)"
    ~count:15
    QCheck.(triple (int_range 1 4) (int_range 1 5) (int_range 1 40))
    (fun (nservers, nclients, messages) ->
      let reply_of v = (2 * v) + 1 in
      let t, replies =
        pooled_echo ~nservers ~nclients ~messages ~reply_of ()
      in
      replies = expected_replies ~nclients ~messages ~reply_of
      && Slab.in_use_count (Rpc.slab t) = 0)

(* Forced stealing: every client pinned to shard 0 of a 4-server pool.
   A thief scans its siblings once per receive (then parks until its own
   ring gets traffic — a handoff or a poison), so the test sequences the
   race deterministically: build shard 0's backlog first, start the
   idle servers second (their first scan finds the backlog and one of
   them claims the steal token), and start the victim last, so its very
   first receive finds the token with the backlog still deep and must
   hand a span over.  The handoffs must neither lose, duplicate nor
   double-deliver a message (the multiset check), nor leak a slot. *)
let test_forced_stealing () =
  let nservers = 4 and nclients = 4 and messages = 256 in
  let window = 8 in
  let reply_of v = v * 3 in
  let t : (int, int) Rpc.t =
    Rpc.create
      ~shard_assign:(fun _ -> 0)
      ~req_codec:Rpc.int_codec ~rep_codec:Rpc.int_codec ~nservers ~nclients
      Rpc.Block
  in
  (* First window for every client, posted before any server exists:
     shard 0 starts [nclients * window] deep. *)
  for c = 0 to nclients - 1 do
    for j = 1 to window do
      Rpc.post t ~client:c ((c * 1_000_000) + j)
    done
  done;
  (* Idle servers first: each finds its own ring empty, scans, and one
     of them claims the steal token on shard 0.  Wait for the claim
     before letting the victim near its backlog. *)
  let thieves =
    Array.init (nservers - 1) (fun i -> spawn_server t ~k:(i + 1) ~reply_of)
  in
  await "a steal token posted" (fun () ->
      (Rpc.counters t).Ulipc.Counters.steal_posts > 0);
  let victim = spawn_server t ~k:0 ~reply_of in
  let servers = Array.append [| victim |] thieves in
  let clients =
    List.init nclients (fun c ->
        Domain.spawn (fun () ->
            let got = ref [] in
            (* collect the pre-posted window, then run the rest *)
            for _ = 1 to window do
              got := Rpc.collect t ~client:c :: !got
            done;
            let sent = ref window in
            while !sent < messages do
              let k = min window (messages - !sent) in
              for j = 1 to k do
                Rpc.post t ~client:c ((c * 1_000_000) + !sent + j)
              done;
              for _ = 1 to k do
                got := Rpc.collect t ~client:c :: !got
              done;
              sent := !sent + k
            done;
            List.sort compare !got))
  in
  let replies = List.map Domain.join clients in
  poison_pool t ~nservers servers;
  Alcotest.(check bool) "per-client reply multisets exact" true
    (replies = expected_replies ~nclients ~messages ~reply_of);
  let c = Rpc.counters t in
  Alcotest.(check bool)
    (Printf.sprintf "steal handoffs happened (posts=%d handoffs=%d msgs=%d)"
       c.Ulipc.Counters.steal_posts c.Ulipc.Counters.steal_handoffs
       c.Ulipc.Counters.steal_msgs)
    true
    (c.Ulipc.Counters.steal_handoffs > 0 && c.Ulipc.Counters.steal_msgs > 0);
  Alcotest.(check bool) "stolen messages bounded by traffic" true
    (c.Ulipc.Counters.steal_msgs <= nclients * messages);
  Alcotest.(check int) "no leaked slab slots" 0
    (Slab.in_use_count (Rpc.slab t))

(* A steal token is consumed at most once: total messages handed off can
   never exceed total requests, and with no traffic at all an idle pool
   posts tokens but never completes a handoff. *)
let test_steal_token_idle_pool () =
  let nservers = 4 in
  let t : (int, int) Rpc.t =
    Rpc.create ~req_codec:Rpc.int_codec ~rep_codec:Rpc.int_codec ~nservers
      ~nclients:2 Rpc.Block
  in
  let servers = spawn_pool t ~nservers ~reply_of:(fun v -> v) in
  (* No traffic: every server is parked (or about to park) on an empty
     shard.  Poison the pool and make sure shutdown alone neither steals
     nor loses anything. *)
  Unix.sleepf 0.05;
  poison_pool t ~nservers servers;
  let c = Rpc.counters t in
  Alcotest.(check int) "no handoffs without traffic" 0
    c.Ulipc.Counters.steal_handoffs;
  Alcotest.(check int) "no stolen messages" 0 c.Ulipc.Counters.steal_msgs;
  Alcotest.(check int) "no leaked slab slots" 0
    (Slab.in_use_count (Rpc.slab t))

(* An 8-server pooled run under trace: the merged event stream must pass
   every Trace_analysis invariant — queue underflow, orphan blocks, lost
   wakes and sequence gaps would each expose a sharding or stealing bug
   (a message dequeued twice, a wake posted to the wrong shard's
   semaphore, ...). *)
let test_pool_trace_invariants () =
  let nservers = 8 and nclients = 16 and messages = 40 in
  let trace = Trace_ring.create ~capacity:65536 () in
  let t : (int, int) Rpc.t =
    Rpc.create ~trace ~req_codec:Rpc.int_codec ~rep_codec:Rpc.int_codec
      ~nservers ~nclients Rpc.Block
  in
  let servers = spawn_pool t ~nservers ~reply_of:(fun v -> v + 9) in
  let clients =
    List.init nclients (fun c ->
        Domain.spawn (fun () ->
            for i = 1 to messages do
              let v = (c * 1_000_000) + i in
              if Rpc.send t ~client:c v <> v + 9 then
                failwith "echo mismatch"
            done))
  in
  List.iter Domain.join clients;
  poison_pool t ~nservers servers;
  let report =
    Ulipc_observe.Trace_analysis.analyse
      ~complete:(Trace_ring.dropped trace = 0)
      (Trace_ring.events trace)
  in
  Alcotest.(check int)
    (Format.asprintf "zero trace violations (%a)"
       (Format.pp_print_list Ulipc_observe.Trace_analysis.pp_violation)
       report.Ulipc_observe.Trace_analysis.violations)
    0
    (List.length report.Ulipc_observe.Trace_analysis.violations);
  Alcotest.(check int) "no stale wake residue" 0 (Rpc.wake_residue t)

(* ------------------------------------------------------------------ *)
(* Pool plumbing details *)

let test_rpc_pool_validation () =
  Alcotest.check_raises "bad nservers"
    (Invalid_argument "Rpc.create: nservers must be positive") (fun () ->
      ignore (Rpc.create ~nservers:0 ~nclients:1 Rpc.Block : (int, int) Rpc.t));
  let t : (int, int) Rpc.t = Rpc.create ~nservers:2 ~nclients:3 Rpc.Block in
  Alcotest.(check int) "nservers" 2 (Rpc.nservers t);
  Alcotest.(check (list int)) "home shards" [ 0; 1; 0 ]
    (List.init 3 (Rpc.shard_of_client t));
  Alcotest.check_raises "bad server"
    (Invalid_argument "Real_substrate.request_shard: no shard 7") (fun () ->
      ignore (Rpc.receive ~server:7 t));
  Alcotest.check_raises "bad shard on post"
    (Invalid_argument "Real_substrate.request_shard: no shard 5") (fun () ->
      Rpc.post ~shard:5 t ~client:0 1)

(* The slab is sized from (nclients, nservers, capacity) by default; an
   explicitly undersized slab must fail the sender with a clear error
   after bounded back-off, never hang. *)
let test_slab_exhaustion_error () =
  let t : (int, int) Rpc.t =
    Rpc.create ~capacity:4 ~slots:1 ~req_codec:Rpc.int_codec
      ~rep_codec:Rpc.int_codec ~nclients:1 Rpc.Block
  in
  Rpc.post t ~client:0 1;
  (* slot 1 of 1 is now in flight with no server to release it *)
  match Rpc.post t ~client:0 2 with
  | () -> Alcotest.fail "undersized slab did not fail the sender"
  | exception Failure msg ->
    let prefix = "Rpc: payload slab exhausted" in
    Alcotest.(check bool)
      (Printf.sprintf "clear exhaustion error (got %S)" msg)
      true
      (String.length msg >= String.length prefix
      && String.sub msg 0 (String.length prefix) = prefix)

let test_slab_high_water () =
  let reply_of v = v + 1 in
  let t, replies =
    pooled_echo ~nservers:2 ~nclients:3 ~messages:32 ~reply_of ()
  in
  Alcotest.(check bool) "echo correct" true
    (replies = expected_replies ~nclients:3 ~messages:32 ~reply_of);
  let s = Rpc.slab t in
  Alcotest.(check int) "quiescent slab empty" 0 (Slab.in_use_count s);
  Alcotest.(check bool)
    (Printf.sprintf "high-water mark recorded (%d)" (Slab.high_water s))
    true
    (Slab.high_water s > 0 && Slab.high_water s <= Slab.slots s)

(* ------------------------------------------------------------------ *)
(* Rsem directed wake-ups *)

(* v_n with fewer credits than sleepers must release exactly that many
   waiters — a broadcast here would wake the whole herd and the surplus
   would show up as extra completions. *)
let test_rsem_directed_wake () =
  let n = 8 in
  let s = Rsem.create 0 in
  let completed = Atomic.make 0 in
  let waiters =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            Rsem.p s;
            Atomic.incr completed))
  in
  await "all waiters parked" (fun () -> Rsem.waiters s = n);
  Rsem.v_n s 3;
  await "3 directed wake-ups" (fun () -> Atomic.get completed = 3);
  (* The remaining 5 must still be asleep: give a stray broadcast time
     to surface before checking. *)
  Unix.sleepf 0.05;
  Alcotest.(check int) "exactly 3 released" 3 (Atomic.get completed);
  Alcotest.(check int) "5 still parked" (n - 3) (Rsem.waiters s);
  Rsem.v_n s (n - 3);
  List.iter Domain.join waiters;
  Alcotest.(check int) "all released" n (Atomic.get completed);
  Alcotest.(check int) "no waiters left" 0 (Rsem.waiters s);
  Alcotest.(check int) "no credit left" 0 (Rsem.value s)

(* Wake-latency microtest, 2 → 64 parked waiters: emit the Figure 5
   event shapes around the semaphore ops (Block before P, Dequeue after
   it returns; Enqueue then Wake around each posted credit) and let
   Trace_analysis recover the V→dequeue latency distribution.  The
   assertions are lenient — zero invariant violations, every wake paired,
   and a loose absolute p99 roof — so the test gates against pathologies
   (lost wake-ups hang the join; a thundering-herd wake path shows up as
   a runaway p99), not against scheduler noise.

   Parking is serialised (waiter [i] stamps its Block only once [i]
   waiters are already committed): the analysis pairs wakes with blocks
   in timestamp order while the waiting array serves park *tickets* in
   claim order, and a park storm can commit tickets in a different
   order than the Block stamps — a mispairing the trace would report as
   a wake-without-dequeue even though the semaphore behaved.  Serial
   parking pins stamp order to ticket order so the causal pairing is
   exact. *)
let test_rsem_wake_latency n () =
  let trace = Trace_ring.create ~capacity:8192 () in
  let chan = 1 in
  let s = Rsem.create ~slots:n 0 in
  let waiters =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            await "my turn to park" (fun () -> Rsem.parked s = i);
            Trace_ring.record trace Ulipc_observe.Event.Block ~chan;
            Rsem.p s;
            Trace_ring.record trace Ulipc_observe.Event.Dequeue ~chan))
  in
  await "all waiters parked" (fun () -> Rsem.parked s = n);
  (* Half the credits one V at a time, the rest as one directed v_n. *)
  let half = n / 2 in
  for _ = 1 to half do
    Trace_ring.record trace Ulipc_observe.Event.Enqueue ~chan;
    Trace_ring.record trace Ulipc_observe.Event.Wake ~chan;
    Rsem.v s
  done;
  for _ = 1 to n - half do
    Trace_ring.record trace Ulipc_observe.Event.Enqueue ~chan;
    Trace_ring.record trace Ulipc_observe.Event.Wake ~chan
  done;
  Rsem.v_n s (n - half);
  List.iter Domain.join waiters;
  let report =
    Ulipc_observe.Trace_analysis.analyse
      ~complete:(Trace_ring.dropped trace = 0)
      (Trace_ring.events trace)
  in
  let open Ulipc_observe.Trace_analysis in
  Alcotest.(check int)
    (Format.asprintf "zero violations (%a)"
       (Format.pp_print_list pp_violation)
       report.violations)
    0
    (List.length report.violations);
  Alcotest.(check int) "every wake paired with a dequeue" n
    report.wake_latency.n;
  Alcotest.(check bool)
    (Printf.sprintf "wake-latency p99 bounded (%.1f us)"
       report.wake_latency.p99_us)
    true
    (Float.is_finite report.wake_latency.p99_us
    && report.wake_latency.p99_us < 2_000_000.0)

(* The 512-waiter extension of the sweep above.  512 parked entities
   exceed what real domains can provide, so this point runs on
   systhreads through the Sem_bench harness — same causal pipeline
   (serialised parking, one directed credit per wake, full violation
   checking), scaled past the domain cap. *)
let test_sem_bench_512 () =
  let r =
    Ulipc_workload.Sem_bench.wake_latency ~target_samples:512 ~waiters:512 ()
  in
  Alcotest.(check int) "zero violations" 0
    r.Ulipc_workload.Sem_bench.violations;
  Alcotest.(check int) "one sample per waiter" 512
    (Array.length r.Ulipc_workload.Sem_bench.samples);
  Alcotest.(check int) "every waiter got a private slot" 0
    r.Ulipc_workload.Sem_bench.broadcasts;
  Alcotest.(check bool)
    (Printf.sprintf "wake-latency p99 bounded (%.1f us)"
       r.Ulipc_workload.Sem_bench.p99_us)
    true
    (Float.is_finite r.Ulipc_workload.Sem_bench.p99_us
    && r.Ulipc_workload.Sem_bench.p99_us < 2_000_000.0)

(* Waiting-array observability: the cumulative dispensers and per-slot
   counters that harvest_sem_counters folds into the session totals. *)
let test_rsem_observability () =
  let n = 3 in
  let s = Rsem.create ~slots:4 0 in
  Alcotest.(check int) "array rounded to a power of two" 4 (Rsem.array_size s);
  let waiters =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            await "my turn to park" (fun () -> Rsem.parked s = i);
            Rsem.p s))
  in
  await "all waiters parked" (fun () -> Rsem.parked s = n);
  Alcotest.(check int) "parks counts committed tickets" n (Rsem.parks s);
  Alcotest.(check int) "no grants yet" 0 (Rsem.grants s);
  Rsem.v_n s n;
  List.iter Domain.join waiters;
  Alcotest.(check int) "all grants dispensed" n (Rsem.grants s);
  Alcotest.(check int) "nobody left parked" 0 (Rsem.parked s);
  Alcotest.(check int) "per-slot waits sum to parks" n
    (Array.fold_left ( + ) 0 (Rsem.slot_waits s));
  Alcotest.(check int) "private slots, no shared-slot broadcasts" 0
    (Rsem.shared_slot_broadcasts s)

(* Generation sharing: an array smaller than the population must still
   release everyone (waiters of different generations share a slot; a
   grant that finds several sleepers broadcasts and each rechecks its
   own generation's credit). *)
let test_rsem_shared_slot () =
  let n = 3 in
  let s = Rsem.create ~slots:1 0 in
  Alcotest.(check int) "single-slot array" 1 (Rsem.array_size s);
  let completed = Atomic.make 0 in
  let waiters =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            await "my turn to park" (fun () -> Rsem.parked s = i);
            Rsem.p s;
            Atomic.incr completed))
  in
  await "all waiters parked" (fun () -> Rsem.parked s = n);
  (* Release one at a time: each grant lands in the shared slot and must
     free exactly the oldest generation. *)
  for k = 1 to n do
    Rsem.v s;
    await "oldest generation released" (fun () -> Atomic.get completed = k)
  done;
  List.iter Domain.join waiters;
  Alcotest.(check int) "all released through one slot" n (Atomic.get completed);
  Alcotest.(check int) "waits all on slot 0" n (Rsem.slot_waits s).(0);
  Alcotest.(check int) "no credit left" 0 (Rsem.value s)

(* Fairness / starvation-freedom property: under paced v_n bursts, the
   FIFO ticket dispenser must spread wakes evenly — no waiter's tally
   may exceed 3x the median, and every posted credit must release
   exactly one park (a lost wake-up times out the pacing await; a
   thundering herd inflates the tally sum). *)
(* Credits posted through round [r]: bursts cycle 1 .. n. *)
let total_of_rounds n rounds =
  let t = ref 0 in
  for r = 1 to rounds do
    t := !t + 1 + (r mod n)
  done;
  !t

let prop_rsem_fairness =
  QCheck.Test.make ~name:"waiting array is fair under v_n coalescing"
    ~count:15
    QCheck.(pair (int_range 2 4) (int_range 8 30))
    (fun (n, rounds) ->
      let s = Rsem.create ~slots:n 0 in
      let counts = Array.init n (fun _ -> Atomic.make 0) in
      let stop = Atomic.make false in
      let waiters =
        List.init n (fun i ->
            Domain.spawn (fun () ->
                let rec loop () =
                  Rsem.p s;
                  if not (Atomic.get stop) then begin
                    Atomic.incr counts.(i);
                    loop ()
                  end
                in
                loop ()))
      in
      let tally () =
        Array.fold_left (fun acc c -> acc + Atomic.get c) 0 counts
      in
      for round = 1 to rounds do
        await "all waiters parked" (fun () -> Rsem.parked s = n);
        let burst = 1 + (round mod n) in
        Rsem.v_n s burst;
        (* Pacing: every credit of the burst consumed and its takers
           re-parked before the next burst — this is where a lost
           wake-up under coalescing would hang (and fail the await). *)
        await "burst fully consumed" (fun () ->
            tally () = total_of_rounds n round && Rsem.parked s = n)
      done;
      let total = tally () in
      Atomic.set stop true;
      Rsem.v_n s n;
      List.iter Domain.join waiters;
      let sorted = Array.map Atomic.get counts in
      Array.sort compare sorted;
      let median = sorted.(n / 2) in
      total = total_of_rounds n rounds
      && Array.for_all (fun c -> Atomic.get c <= max 3 (3 * median)) counts)

let suites =
  [
    ( "realipc.shard_map",
      [
        Alcotest.test_case "round-robin default" `Quick test_shard_map_default;
        Alcotest.test_case "custom assignment" `Quick test_shard_map_custom;
        Alcotest.test_case "validation" `Quick test_shard_map_validation;
      ] );
    ( "realipc.fleet",
      [
        QCheck_alcotest.to_alcotest prop_pool_differential;
        Alcotest.test_case "forced stealing: no loss/dup" `Quick
          test_forced_stealing;
        Alcotest.test_case "idle pool: tokens never deliver" `Quick
          test_steal_token_idle_pool;
        Alcotest.test_case "8-server trace invariants" `Quick
          test_pool_trace_invariants;
        Alcotest.test_case "pool validation" `Quick test_rpc_pool_validation;
        Alcotest.test_case "undersized slab fails clearly" `Quick
          test_slab_exhaustion_error;
        Alcotest.test_case "slab high-water mark" `Quick test_slab_high_water;
      ] );
    ( "realipc.rsem_directed",
      [
        Alcotest.test_case "v_n wakes exactly n" `Quick
          test_rsem_directed_wake;
        Alcotest.test_case "wake latency, 2 waiters" `Quick
          (test_rsem_wake_latency 2);
        Alcotest.test_case "wake latency, 8 waiters" `Quick
          (test_rsem_wake_latency 8);
        Alcotest.test_case "wake latency, 64 waiters" `Quick
          (test_rsem_wake_latency 64);
        Alcotest.test_case "wake latency, 512 waiters (systhreads)" `Quick
          test_sem_bench_512;
        Alcotest.test_case "observability counters" `Quick
          test_rsem_observability;
        Alcotest.test_case "generation-shared slot" `Quick
          test_rsem_shared_slot;
        QCheck_alcotest.to_alcotest prop_rsem_fairness;
      ] );
  ]
