(* Tests for the real-backend observability layer: the log-bucketed
   Ulipc.Histogram (vs the exact Stat accumulator), the per-domain
   Trace_ring event sink, per-call latency in Real_driver, and the
   Bench_json writer parsed back as actual JSON. *)

open Ulipc_engine
open Ulipc_workload

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_basics () =
  let h = Ulipc.Histogram.create "t" in
  Alcotest.(check int) "empty" 0 (Ulipc.Histogram.count h);
  List.iter (Ulipc.Histogram.record h) [ 1.0; 2.0; 4.0; 8.0 ];
  Alcotest.(check int) "count" 4 (Ulipc.Histogram.count h);
  Alcotest.(check (float 1e-9)) "total" 15.0 (Ulipc.Histogram.total h);
  Alcotest.(check (float 1e-9)) "mean" 3.75 (Ulipc.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Ulipc.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 8.0 (Ulipc.Histogram.max_value h);
  (* p0/p100 are exact: clamped to the recorded extremes. *)
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Ulipc.Histogram.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p100" 8.0 (Ulipc.Histogram.percentile h 100.0)

let test_histogram_guards () =
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Histogram.percentile: no samples") (fun () ->
      ignore (Ulipc.Histogram.percentile (Ulipc.Histogram.create "t") 50.0));
  let h = Ulipc.Histogram.create "t" in
  Ulipc.Histogram.record h 1.0;
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Histogram.percentile: p out of range") (fun () ->
      ignore (Ulipc.Histogram.percentile h 101.0));
  Alcotest.check_raises "bad lo"
    (Invalid_argument "Histogram.create: lo must be positive") (fun () ->
      ignore (Ulipc.Histogram.create ~lo:0.0 "t"));
  Alcotest.check_raises "geometry mismatch"
    (Invalid_argument "Histogram.merge_into: bucket geometries differ")
    (fun () ->
      Ulipc.Histogram.merge_into
        ~dst:(Ulipc.Histogram.create "dst")
        (Ulipc.Histogram.create ~buckets_per_decade:8 "src"))

let test_histogram_out_of_range () =
  (* Values outside the regular bucket range (and non-finite ones) land
     in the under/overflow buckets but stay inside min/max. *)
  let h = Ulipc.Histogram.create ~lo:1.0 ~decades:2 "t" in
  List.iter (Ulipc.Histogram.record h) [ 1e-9; 5.0; 1e6 ];
  Alcotest.(check int) "count" 3 (Ulipc.Histogram.count h);
  Alcotest.(check (float 1e-12)) "p0 is the underflow value" 1e-9
    (Ulipc.Histogram.percentile h 0.0);
  Alcotest.(check (float 1e-3)) "p100 is the overflow value" 1e6
    (Ulipc.Histogram.percentile h 100.0);
  let mid = Ulipc.Histogram.percentile h 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %.3f within one bucket of 5.0" mid)
    true
    (Float.abs (mid -. 5.0) /. 5.0 < Ulipc.Histogram.bucket_ratio h -. 1.0)

(* The tentpole accuracy contract: histogram percentiles agree with the
   exact sample percentiles of Stat ~keep_samples:true within one
   bucket's relative error.  Both use the same interpolated rank, so the
   bound holds pointwise at every p. *)
let prop_histogram_matches_stat =
  QCheck.Test.make ~name:"Histogram percentiles ~ Stat percentiles" ~count:200
    QCheck.(
      pair (float_range 0.01 100_000.0)
        (list_of_size Gen.(1 -- 300) (float_range 0.01 100_000.0)))
    (fun (x, xs) ->
      let samples = x :: xs in
      let h = Ulipc.Histogram.create "h" in
      let s = Stat.create ~keep_samples:true "s" in
      List.iter
        (fun v ->
          Ulipc.Histogram.record h v;
          Stat.add s v)
        samples;
      let tol = Ulipc.Histogram.bucket_ratio h -. 1.0 in
      List.for_all
        (fun p ->
          let exact = Stat.percentile s p in
          let approx = Ulipc.Histogram.percentile h p in
          Float.abs (approx -. exact) <= (tol *. Float.abs exact) +. 1e-9)
        [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ])

let test_histogram_merge_across_domains () =
  (* Per-domain recording, merge after join: 4 domains record disjoint
     ranges concurrently into their own histograms; the merge must lose
     nothing and match a sequentially-built Stat. *)
  let per_domain = 10_000 in
  let value d i = float_of_int (((d + 1) * 1000) + (i mod 997)) +. 0.5 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let h = Ulipc.Histogram.create "h" in
            for i = 1 to per_domain do
              Ulipc.Histogram.record h (value d i)
            done;
            h))
  in
  let hists = List.map Domain.join domains in
  let merged = Ulipc.Histogram.create "h" in
  List.iter (fun h -> Ulipc.Histogram.merge_into ~dst:merged h) hists;
  Alcotest.(check int) "no lost samples" (4 * per_domain)
    (Ulipc.Histogram.count merged);
  let s = Stat.create ~keep_samples:true "s" in
  List.init 4 (fun d -> d)
  |> List.iter (fun d ->
         for i = 1 to per_domain do
           Stat.add s (value d i)
         done);
  Alcotest.(check (float 1e-6))
    "totals add up" (Stat.total s)
    (Ulipc.Histogram.total merged);
  Alcotest.(check (float 1e-9)) "min" (Stat.min_value s)
    (Ulipc.Histogram.min_value merged);
  Alcotest.(check (float 1e-9)) "max" (Stat.max_value s)
    (Ulipc.Histogram.max_value merged);
  let tol = Ulipc.Histogram.bucket_ratio merged -. 1.0 in
  List.iter
    (fun p ->
      let exact = Stat.percentile s p in
      let approx = Ulipc.Histogram.percentile merged p in
      Alcotest.(check bool)
        (Printf.sprintf "merged p%.0f %.1f ~ exact %.1f" p approx exact)
        true
        (Float.abs (approx -. exact) <= tol *. exact))
    [ 50.0; 99.0 ]

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_trace_ring_bounds () =
  let sink = Ulipc_real.Trace_ring.create ~capacity:8 () in
  for i = 1 to 20 do
    Ulipc_real.Trace_ring.record sink Ulipc_observe.Event.Enqueue ~chan:i
  done;
  Alcotest.(check int) "recorded" 20 (Ulipc_real.Trace_ring.recorded sink);
  Alcotest.(check int) "dropped" 12 (Ulipc_real.Trace_ring.dropped sink);
  let events = Ulipc_real.Trace_ring.events sink in
  Alcotest.(check int) "retains the last capacity events" 8
    (List.length events);
  Alcotest.(check (list int))
    "oldest-to-newest"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun e -> e.Ulipc_observe.Event.chan) events);
  (* Ring drops oldest-first, so retained per-actor seqs stay contiguous
     — the property Trace_analysis.Seq_gap relies on. *)
  Alcotest.(check (list int))
    "sequence numbers contiguous"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun e -> e.Ulipc_observe.Event.seq) events);
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Trace_ring.create: capacity must be positive")
    (fun () -> ignore (Ulipc_real.Trace_ring.create ~capacity:0 ()))

let test_trace_through_real_run () =
  let open Ulipc_real in
  let nclients = 2 and messages = 100 in
  let sink = Trace_ring.create () in
  let m = Real_driver.run ~trace:sink ~nclients ~messages Rpc.Block in
  Alcotest.(check int) "all messages echoed" (nclients * messages)
    m.Metrics.messages;
  let events = Trace_ring.events sink in
  Alcotest.(check int) "nothing dropped" 0 (Trace_ring.dropped sink);
  Alcotest.(check int) "drained = recorded" (Trace_ring.recorded sink)
    (List.length events);
  let count k =
    List.length
      (List.filter (fun e -> e.Ulipc_observe.Event.kind = k) events)
  in
  (* Every request and every reply is one enqueue and one dequeue — the
     driver's pre-barrier allocation probe included: probe round-trips
     run outside the measured interval but inside the trace.  The
     shutdown poison (one per shard, never replied to) adds a final
     enqueue/dequeue pair of its own. *)
  let total =
    2 * ((nclients * messages) + Real_driver.probe_warmup
       + Real_driver.probe_ops)
    + 1
  in
  Alcotest.(check int) "enqueue events" total
    (count Ulipc_observe.Event.Enqueue);
  Alcotest.(check int) "dequeue events" total
    (count Ulipc_observe.Event.Dequeue);
  (* Every completed block consumed a wake; raced wakes are drained
     without blocking (and show up as Wake_drain), so wakes dominate
     blocks. *)
  Alcotest.(check bool)
    (Printf.sprintf "wakes (%d) >= blocks (%d)"
       (count Ulipc_observe.Event.Wake)
       (count Ulipc_observe.Event.Block))
    true
    (count Ulipc_observe.Event.Wake >= count Ulipc_observe.Event.Block);
  List.iter
    (fun e ->
      Alcotest.(check bool) "channel id in range" true
        (e.Ulipc_observe.Event.chan >= -1
        && e.Ulipc_observe.Event.chan < nclients))
    events;
  let ts = List.map (fun e -> e.Ulipc_observe.Event.t_us) events in
  Alcotest.(check bool) "timestamps sorted" true
    (List.sort Float.compare ts = ts);
  (* The unified analysis over a real run: the invariant checker must
     come back clean and every block must have recovered a wake pair. *)
  let report =
    Ulipc_observe.Trace_analysis.analyse
      ~complete:(Trace_ring.dropped sink = 0)
      events
  in
  Alcotest.(check (list string))
    "no invariant violations" []
    (List.map
       (Fmt.str "%a" Ulipc_observe.Trace_analysis.pp_violation)
       report.Ulipc_observe.Trace_analysis.violations)

(* ------------------------------------------------------------------ *)
(* Real_driver latency *)

let test_real_driver_latency transport () =
  let nclients = 2 and messages = 50 in
  let m =
    Real_driver.run ~transport ~nclients ~messages Ulipc_real.Rpc.Block
  in
  Alcotest.(check int) "messages" (nclients * messages) m.Metrics.messages;
  match m.Metrics.latency_us with
  | None -> Alcotest.fail "real run did not collect latency"
  | Some hist ->
    Alcotest.(check int)
      "one sample per message" (nclients * messages)
      (Ulipc.Histogram.count hist);
    let p50 = Ulipc.Histogram.percentile hist 50.0 in
    let p99 = Ulipc.Histogram.percentile hist 99.0 in
    let maxv = Ulipc.Histogram.max_value hist in
    Alcotest.(check bool)
      (Printf.sprintf "percentiles ordered (p50 %.1f <= p99 %.1f <= max %.1f)"
         p50 p99 maxv)
      true
      (p50 <= p99 && p99 <= maxv *. 1.0000001);
    Alcotest.(check bool) "latencies are non-negative" true
      (Ulipc.Histogram.min_value hist >= 0.0);
    (match Metrics.latency_percentile m 50.0 with
    | Some _ -> ()
    | None -> Alcotest.fail "latency_percentile empty for a real row")

(* ------------------------------------------------------------------ *)
(* Bench_json: emitted file parses as JSON, percentiles are non-null *)

(* The shared minimal reader (Ulipc_observe.Json_min) validates real
   syntax — a raw [nan] token fails the parse — without a JSON
   dependency.  Thin wrappers turn parse/lookup failures into test
   failures. *)
module J = Ulipc_observe.Json_min

let parse_json s =
  match J.parse_result s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "json parse: %s" msg

let member k j =
  match J.member_opt k j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" k

let test_json_float_non_finite () =
  Alcotest.(check string) "nan" "null" (Bench_json.json_float nan);
  Alcotest.(check string) "+inf" "null" (Bench_json.json_float infinity);
  Alcotest.(check string) "-inf" "null" (Bench_json.json_float neg_infinity);
  Alcotest.(check string) "finite" "1.500" (Bench_json.json_float 1.5)

let test_bench_json_roundtrip () =
  let transports = Ulipc_real.Real_substrate.[ Two_lock; Ring ] in
  let real =
    List.map
      (fun transport ->
        ( "inproc",
          Ulipc_real.Real_substrate.transport_name transport,
          Real_driver.run ~transport ~nclients:2 ~messages:50
            Ulipc_real.Rpc.Block ))
      transports
  in
  (* Non-finite micro rows exercise the null path end to end. *)
  let micro =
    [ ("spsc pair", 25.1); ("nan row", nan); ("inf row", infinity) ]
  in
  (* Schema 7: the semaphore directed-wake-latency sweep rides along. *)
  let sem =
    [ Ulipc_workload.Sem_bench.wake_latency ~target_samples:16 ~waiters:2 () ]
  in
  let path = Filename.temp_file "bench_real" ".json" in
  Bench_json.write ~path ~quick:true ~micro ~sem ~real ();
  let contents = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  let j = parse_json contents in
  (match member "schema" j with
  | J.Str "ulipc-bench-real/9" -> ()
  | _ -> Alcotest.fail "wrong schema");
  (match member "sem_wake_latency" j with
  | J.Arr [ row ] ->
    (match
       (member "waiters" row, member "p99_us" row, member "violations" row)
     with
    | J.Num w, J.Num p99, J.Num v ->
      Alcotest.(check (float 0.0)) "sem row waiters" 2.0 w;
      Alcotest.(check bool) "sem row p99 positive" true (p99 > 0.0);
      Alcotest.(check (float 0.0)) "sem row clean trace" 0.0 v
    | _ -> Alcotest.fail "sem row fields not numbers")
  | _ -> Alcotest.fail "sem_wake_latency not a one-row array");
  (match member "micro_ns_per_op" j with
  | J.Arr rows ->
    let ns name =
      member "ns_per_op"
        (List.find (fun r -> member "name" r = J.Str name) rows)
    in
    (match ns "spsc pair" with
    | J.Num v -> Alcotest.(check (float 1e-6)) "finite ns survives" 25.1 v
    | _ -> Alcotest.fail "finite ns row not a number");
    Alcotest.(check bool) "nan serialises as null" true (ns "nan row" = J.Null);
    Alcotest.(check bool) "inf serialises as null" true (ns "inf row" = J.Null)
  | _ -> Alcotest.fail "micro_ns_per_op not an array");
  match member "real_driver" j with
  | J.Arr rows ->
    Alcotest.(check int) "one row per transport" (List.length transports)
      (List.length rows);
    List.iter
      (fun row ->
        (* The acceptance criterion: non-null latency percentiles. *)
        let num k =
          match member k row with
          | J.Num v -> v
          | _ -> Alcotest.failf "%s is not a number" k
        in
        let p50 = num "latency_p50_us" in
        let p99 = num "latency_p99_us" in
        let maxv = num "latency_max_us" in
        Alcotest.(check bool)
          (Printf.sprintf "percentiles ordered (%.1f/%.1f/%.1f)" p50 p99 maxv)
          true
          (p50 <= p99 && p99 <= maxv *. 1.0000001);
        (* Schema 3: depth column, and a measured (finite, in-range)
           utilization instead of schema 2's null. *)
        (match member "depth" row with
        | J.Num d -> Alcotest.(check (float 0.0)) "depth" 1.0 d
        | _ -> Alcotest.fail "depth is not a number");
        (* Schema 8: the backend column that keys cross-process rows
           apart from the in-process domains rows. *)
        (match member "backend" row with
        | J.Str "inproc" -> ()
        | _ -> Alcotest.fail "backend is not \"inproc\"");
        let u = num "utilization" in
        Alcotest.(check bool)
          (Printf.sprintf "utilization in [0,1] (%.3f)" u)
          true
          (u >= 0.0 && u <= 1.0);
        (* Schema 6: (nclients, nservers)-keyed rows and the pool's
           busiest-server utilization alongside the mean. *)
        (match member "nservers" row with
        | J.Num n -> Alcotest.(check (float 0.0)) "nservers" 1.0 n
        | _ -> Alcotest.fail "nservers is not a number");
        let umax = num "utilization_max" in
        Alcotest.(check bool)
          (Printf.sprintf "utilization_max in [mean, 1] (%.3f)" umax)
          true
          (umax >= u && umax <= 1.0);
        (* Schema 4: wake-latency percentiles recovered from the trace.
           The rows are BSW (a blocking protocol), so they must be
           non-null, non-negative and ordered. *)
        let w50 = num "wake_latency_p50_us" in
        let w99 = num "wake_latency_p99_us" in
        Alcotest.(check bool)
          (Printf.sprintf "wake latency ordered (%.1f/%.1f)" w50 w99)
          true
          (0.0 <= w50 && w50 <= w99);
        (* Schema 5: per-op minor-heap allocation probe.  Present and
           non-negative on every row; the ring row must be exactly zero
           — the tentpole property the CI gate holds the line on. *)
        let mw = num "minor_words_per_op" in
        Alcotest.(check bool)
          (Printf.sprintf "minor_words_per_op non-negative (%.3f)" mw)
          true (mw >= 0.0);
        if member "transport" row = J.Str "ring" then
          Alcotest.(check (float 0.0)) "ring row allocation-free" 0.0 mw;
        (* Schema 9: the sampled telemetry timeline.  Real rows are
           live-sampled, so the series must be present with strictly
           increasing timestamps, and the summed per-window "messages"
           deltas must reproduce the row's message total exactly (the
           counter is bumped once per measured message and the final
           tick closes the partial window). *)
        match member "series" row with
        | J.Arr frames ->
          Alcotest.(check bool) "series non-empty" true (frames <> []);
          let prev_t = ref neg_infinity in
          let summed = ref 0.0 in
          List.iter
            (fun fr ->
              (match member "t_us" fr with
              | J.Num t ->
                Alcotest.(check bool)
                  (Printf.sprintf "t_us monotonic (%.1f > %.1f)" t !prev_t)
                  true (t > !prev_t);
                prev_t := t
              | _ -> Alcotest.fail "frame t_us is not a number");
              (* Counter points are per-window deltas, so the timeline
                 sums back to the cumulative total. *)
              match member "messages" (member "points" fr) with
              | J.Num m -> summed := !summed +. m
              | _ -> Alcotest.fail "frame messages point is not a number")
            frames;
          Alcotest.(check (float 0.0))
            "summed window deltas reproduce row messages" (num "messages")
            !summed
        | _ -> Alcotest.fail "series is not an array")
      rows
  | _ -> Alcotest.fail "real_driver not an array"

let suites =
  [
    ( "core.histogram",
      [
        Alcotest.test_case "basics" `Quick test_histogram_basics;
        Alcotest.test_case "guards" `Quick test_histogram_guards;
        Alcotest.test_case "under/overflow" `Quick test_histogram_out_of_range;
        QCheck_alcotest.to_alcotest prop_histogram_matches_stat;
        Alcotest.test_case "concurrent record, merge at join" `Quick
          test_histogram_merge_across_domains;
      ] );
    ( "realipc.trace_ring",
      [
        Alcotest.test_case "bounded, keeps the newest" `Quick
          test_trace_ring_bounds;
        Alcotest.test_case "events through a real run" `Quick
          test_trace_through_real_run;
      ] );
    ( "workload.real_driver",
      [
        Alcotest.test_case "latency histogram (ring)" `Quick
          (test_real_driver_latency Ulipc_real.Real_substrate.Ring);
        Alcotest.test_case "latency histogram (two-lock)" `Quick
          (test_real_driver_latency Ulipc_real.Real_substrate.Two_lock);
      ] );
    ( "workload.bench_json",
      [
        Alcotest.test_case "json_float non-finite -> null" `Quick
          test_json_float_non_finite;
        Alcotest.test_case "emit, parse back, percentiles non-null" `Quick
          test_bench_json_roundtrip;
      ] );
  ]
