(* The cross-process (fork-based) suites in their own binary: OCaml 5's
   Unix.fork refuses to run once any domain has been spawned in the
   process — joining the domain does not lift the ban — so these tests
   cannot share a binary with the domain-based suites in main.ml.  This
   process itself never spawns a domain; anything that needs domains
   (the differential reference leg) runs inside a forked child. *)
let () = Alcotest.run "ulipc-proc" Test_procipc.suites
