(* Direct tests of the scheduling policies through the Policy record
   interface, without a kernel: priority banding, tick-granular counters,
   epochs, hints. *)

open Ulipc_engine
open Ulipc_os

let mk name = Proc.make ~pid:(Hashtbl.hash name land 0xffff) ~name ~body:(fun () -> ())

let names = List.map (fun p -> p.Proc.name)

let drain policy ~now =
  let rec go acc =
    match policy.Policy.pick ~now with
    | None -> List.rev acc
    | Some p -> go (p :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Sched_fixed *)

let test_fixed_fifo () =
  let policy = Sched_fixed.create Sched_fixed.default_params in
  let a = mk "a" and b = mk "b" and c = mk "c" in
  List.iter (fun p -> policy.Policy.enqueue p Policy.New ~now:0) [ a; b; c ];
  Alcotest.(check int) "ready count" 3 (policy.Policy.ready_count ());
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ]
    (names (drain policy ~now:0))

let test_fixed_favor_hint () =
  let policy = Sched_fixed.create Sched_fixed.default_params in
  let a = mk "a" and b = mk "b" in
  policy.Policy.enqueue a Policy.New ~now:0;
  policy.Policy.enqueue b Policy.New ~now:0;
  policy.Policy.set_hint (Policy.Favor b);
  Alcotest.(check (list string)) "favored first" [ "b"; "a" ]
    (names (drain policy ~now:0))

let test_fixed_avoid_hint () =
  let policy = Sched_fixed.create Sched_fixed.default_params in
  let a = mk "a" and b = mk "b" in
  policy.Policy.enqueue a Policy.New ~now:0;
  policy.Policy.enqueue b Policy.New ~now:0;
  policy.Policy.set_hint (Policy.Avoid a);
  Alcotest.(check (list string)) "avoided second" [ "b"; "a" ]
    (names (drain policy ~now:0))

let test_fixed_quantum_preempt () =
  let policy = Sched_fixed.create { Sched_fixed.quantum = Sim_time.ms 1 } in
  let a = mk "a" and b = mk "b" in
  policy.Policy.enqueue b Policy.New ~now:0;
  a.Proc.quantum_used <- Sim_time.ms 2;
  Alcotest.(check bool) "preempt after quantum" true
    (policy.Policy.should_preempt a ~now:0);
  a.Proc.quantum_used <- Sim_time.us 10;
  Alcotest.(check bool) "keep inside quantum" false
    (policy.Policy.should_preempt a ~now:0)

(* ------------------------------------------------------------------ *)
(* Sched_decay *)

let decay_params = Ulipc_machines.Sgi_indy.sched_params

let test_decay_prefers_low_usage () =
  let policy = Sched_decay.create decay_params in
  let hog = mk "hog" and fresh = mk "fresh" in
  hog.Proc.usage <- 1.0e6 (* 1 ms of recent CPU *);
  policy.Policy.enqueue hog Policy.New ~now:0;
  policy.Policy.enqueue fresh Policy.New ~now:0;
  Alcotest.(check (list string)) "fresh first" [ "fresh"; "hog" ]
    (names (drain policy ~now:0))

let test_decay_incumbent_wins_ties () =
  let policy = Sched_decay.create decay_params in
  let a = mk "a" and b = mk "b" in
  (* Same usage; [b] ran last, so within a band it stays preferred even
     though [a] has FIFO seniority. *)
  a.Proc.usage <- 5.0e4;
  b.Proc.usage <- 5.0e4;
  policy.Policy.enqueue a Policy.New ~now:0;
  policy.Policy.enqueue b Policy.New ~now:0;
  (match policy.Policy.pick ~now:0 with
  | Some first ->
    Alcotest.(check string) "fifo on first pick" "a" first.Proc.name;
    policy.Policy.enqueue first Policy.Yielded ~now:0
  | None -> Alcotest.fail "empty pick");
  (* Now [a] is the incumbent: it must win the tie against waiting [b]. *)
  match policy.Policy.pick ~now:0 with
  | Some again -> Alcotest.(check string) "incumbent repicked" "a" again.Proc.name
  | None -> Alcotest.fail "empty pick"

let test_decay_usage_decays_over_time () =
  let policy = Sched_decay.create decay_params in
  let p = mk "p" in
  p.Proc.usage <- 1.0e6;
  p.Proc.usage_stamp <- 0;
  policy.Policy.enqueue p Policy.New ~now:(Sim_time.ms 500);
  (* enqueue refreshes the decayed usage *)
  Alcotest.(check bool)
    (Printf.sprintf "usage decayed (%.0f < 1e6)" p.Proc.usage)
    true (p.Proc.usage < 1.0e6 /. 100.0)

let test_decay_fixed_prio_dominates () =
  let policy = Sched_decay.create decay_params in
  let rt = mk "rt" and ts = mk "ts" in
  rt.Proc.fixed_prio <- true;
  rt.Proc.usage <- 1.0e9 (* irrelevant: fixed class ignores usage *);
  policy.Policy.enqueue ts Policy.New ~now:0;
  policy.Policy.enqueue rt Policy.New ~now:0;
  Alcotest.(check (list string)) "real-time class first" [ "rt"; "ts" ]
    (names (drain policy ~now:0))

let test_decay_preempt_margin () =
  let policy = Sched_decay.create decay_params in
  let running = mk "running" and waiter = mk "waiter" in
  running.Proc.usage <- 0.0;
  waiter.Proc.usage <- 0.0;
  policy.Policy.enqueue waiter Policy.New ~now:0;
  Alcotest.(check bool) "no preemption among equals" false
    (policy.Policy.should_preempt running ~now:0);
  (* Push the runner many bands above the waiter: preempt. *)
  running.Proc.usage <-
    decay_params.Sched_decay.band_ns
    *. (decay_params.Sched_decay.preempt_margin_bands +. 2.0);
  Alcotest.(check bool) "preempted once far above margin" true
    (policy.Policy.should_preempt running ~now:0)

(* ------------------------------------------------------------------ *)
(* Sched_linux *)

let linux_params = Sched_linux.default_params

let test_linux_pick_highest_counter () =
  let policy = Sched_linux.create linux_params in
  let a = mk "a" and b = mk "b" in
  policy.Policy.enqueue a Policy.New ~now:0;
  policy.Policy.enqueue b Policy.New ~now:0;
  a.Proc.counter <- 1.0e6;
  b.Proc.counter <- 2.0e6;
  match policy.Policy.pick ~now:0 with
  | Some p -> Alcotest.(check string) "highest counter" "b" p.Proc.name
  | None -> Alcotest.fail "empty pick"

let test_linux_tick_granular_charge () =
  let policy = Sched_linux.create linux_params in
  let p = mk "p" in
  p.Proc.counter <- float_of_int linux_params.Sched_linux.quantum;
  let before = p.Proc.counter in
  (* Half a tick of CPU: no counter movement yet. *)
  policy.Policy.charge p ~ran:(linux_params.Sched_linux.tick / 2) ~now:0;
  Alcotest.(check (float 0.0)) "sub-tick usage pending" before p.Proc.counter;
  (* The second half crosses the tick boundary. *)
  policy.Policy.charge p ~ran:(linux_params.Sched_linux.tick / 2) ~now:0;
  Alcotest.(check (float 0.0)) "one tick accounted"
    (before -. float_of_int linux_params.Sched_linux.tick)
    p.Proc.counter

let test_linux_affinity_keeps_caller () =
  let policy = Sched_linux.create linux_params in
  let a = mk "a" and b = mk "b" in
  policy.Policy.enqueue a Policy.New ~now:0;
  policy.Policy.enqueue b Policy.New ~now:0;
  (* First pick takes [a] (FIFO among equal counters) and makes it the
     last-run process. *)
  (match policy.Policy.pick ~now:0 with
  | Some p -> policy.Policy.enqueue p Policy.Yielded ~now:0
  | None -> Alcotest.fail "empty pick");
  match policy.Policy.pick ~now:0 with
  | Some p ->
    Alcotest.(check string) "affinity bonus keeps the caller" "a" p.Proc.name
  | None -> Alcotest.fail "empty pick"

let test_linux_modified_yield_expires () =
  let policy =
    Sched_linux.create { linux_params with modified_yield = true }
  in
  let a = mk "a" and b = mk "b" in
  policy.Policy.enqueue a Policy.New ~now:0;
  policy.Policy.enqueue b Policy.New ~now:0;
  (match policy.Policy.pick ~now:0 with
  | Some p ->
    policy.Policy.on_yield p ~now:0;
    Alcotest.(check (float 0.0)) "counter expired" 0.0 p.Proc.counter;
    policy.Policy.enqueue p Policy.Yielded ~now:0
  | None -> Alcotest.fail "empty pick");
  match policy.Policy.pick ~now:0 with
  | Some p -> Alcotest.(check string) "switches to the peer" "b" p.Proc.name
  | None -> Alcotest.fail "empty pick"

let test_linux_epoch_refills () =
  let policy = Sched_linux.create linux_params in
  let a = mk "a" and b = mk "b" in
  policy.Policy.enqueue a Policy.New ~now:0;
  policy.Policy.enqueue b Policy.New ~now:0;
  a.Proc.counter <- 0.0;
  b.Proc.counter <- -1.0e6;
  (match policy.Policy.pick ~now:0 with
  | Some p ->
    Alcotest.(check bool)
      (Printf.sprintf "counter refilled to quantum (%.0f)" p.Proc.counter)
      true
      (p.Proc.counter > 0.0)
  | None -> Alcotest.fail "empty pick");
  Alcotest.(check bool) "peer refilled too" true (b.Proc.counter > 0.0 || a.Proc.counter > 0.0)

let suites =
  [
    ( "policies.fixed",
      [
        Alcotest.test_case "fifo order" `Quick test_fixed_fifo;
        Alcotest.test_case "favor hint" `Quick test_fixed_favor_hint;
        Alcotest.test_case "avoid hint" `Quick test_fixed_avoid_hint;
        Alcotest.test_case "quantum preemption" `Quick test_fixed_quantum_preempt;
      ] );
    ( "policies.decay",
      [
        Alcotest.test_case "prefers low usage" `Quick test_decay_prefers_low_usage;
        Alcotest.test_case "incumbent wins ties" `Quick
          test_decay_incumbent_wins_ties;
        Alcotest.test_case "usage decays" `Quick test_decay_usage_decays_over_time;
        Alcotest.test_case "fixed class dominates" `Quick
          test_decay_fixed_prio_dominates;
        Alcotest.test_case "preemption margin" `Quick test_decay_preempt_margin;
      ] );
    ( "policies.linux",
      [
        Alcotest.test_case "highest counter wins" `Quick
          test_linux_pick_highest_counter;
        Alcotest.test_case "tick-granular accounting" `Quick
          test_linux_tick_granular_charge;
        Alcotest.test_case "affinity keeps the caller" `Quick
          test_linux_affinity_keeps_caller;
        Alcotest.test_case "modified yield expires quantum" `Quick
          test_linux_modified_yield_expires;
        Alcotest.test_case "epoch refill" `Quick test_linux_epoch_refills;
      ] );
  ]
