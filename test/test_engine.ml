(* Unit and property tests for the discrete-event engine. *)

open Ulipc_engine

let q = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Sim_time *)

let test_time_units () =
  Alcotest.(check int) "us" 1_000 (Sim_time.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Sim_time.ms 1);
  Alcotest.(check int) "sec" 1_000_000_000 (Sim_time.sec 1);
  Alcotest.(check int) "us_f rounds" 350 (Sim_time.us_f 0.35);
  Alcotest.(check (float 1e-9)) "to_us" 2.5 (Sim_time.to_us 2_500);
  Alcotest.(check (float 1e-9)) "to_ms" 1.5 (Sim_time.to_ms 1_500_000)

let test_time_pp () =
  let s t = Format.asprintf "%a" Sim_time.pp t in
  Alcotest.(check string) "ns" "999ns" (s 999);
  Alcotest.(check string) "us" "1.50us" (s 1_500);
  Alcotest.(check string) "ms" "2.000ms" (s (Sim_time.ms 2));
  Alcotest.(check string) "s" "3.000s" (s (Sim_time.sec 3))

(* ------------------------------------------------------------------ *)
(* Event_heap *)

let test_heap_ordering () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:30 "c";
  Event_heap.push h ~time:10 "a";
  Event_heap.push h ~time:20 "b";
  Alcotest.(check (option int)) "peek" (Some 10) (Event_heap.peek_time h);
  let order = List.map snd (Event_heap.drain h) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order

let test_heap_fifo_ties () =
  let h = Event_heap.create ~initial_capacity:1 () in
  List.iter (fun s -> Event_heap.push h ~time:5 s) [ "1"; "2"; "3"; "4" ];
  let order = List.map snd (Event_heap.drain h) in
  Alcotest.(check (list string)) "fifo among equals" [ "1"; "2"; "3"; "4" ] order

let test_heap_interleaved () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:10 1;
  Event_heap.push h ~time:5 2;
  Alcotest.(check (option (pair int int))) "pop" (Some (5, 2)) (Event_heap.pop h);
  Event_heap.push h ~time:7 3;
  Alcotest.(check (option (pair int int))) "pop2" (Some (7, 3)) (Event_heap.pop h);
  Alcotest.(check (option (pair int int))) "pop3" (Some (10, 1)) (Event_heap.pop h);
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h)

let test_heap_clear () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:1 ();
  Event_heap.clear h;
  Alcotest.(check bool) "cleared" true (Event_heap.is_empty h);
  Alcotest.(check int) "len" 0 (Event_heap.length h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap drains sorted by time, fifo ties" ~count:300
    QCheck.(list (int_bound 50))
    (fun times ->
      let h = Event_heap.create ~initial_capacity:2 () in
      List.iteri (fun i time -> Event_heap.push h ~time i) times;
      let drained = Event_heap.drain h in
      (* Sorted by time. *)
      let rec sorted = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && i1 < i2)) && sorted rest
        | _ -> true
      in
      List.length drained = List.length times && sorted drained)

let prop_heap_push_pop_multiset =
  QCheck.Test.make ~name:"heap preserves elements" ~count:300
    QCheck.(list (pair (int_bound 100) small_int))
    (fun pairs ->
      let h = Event_heap.create () in
      List.iter (fun (time, v) -> Event_heap.push h ~time v) pairs;
      let drained = List.map snd (Event_heap.drain h) in
      List.sort compare drained = List.sort compare (List.map snd pairs))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let c = Rng.split a in
  Alcotest.(check bool) "split differs" false (Rng.bits64 a = Rng.bits64 c)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float in bounds" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Rng.create ~seed in
      let v = Rng.float r 10.0 in
      v >= 0.0 && v < 10.0)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f within 5%% of 5.0" mean)
    true
    (mean > 4.75 && mean < 5.25)

(* ------------------------------------------------------------------ *)
(* Stat *)

let test_stat_basic () =
  let s = Stat.create "x" in
  List.iter (Stat.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stat.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stat.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stat.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stat.max_value s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stat.total s);
  Alcotest.(check (float 1e-6)) "variance" (5.0 /. 3.0) (Stat.variance s)

let test_stat_empty () =
  let s = Stat.create "empty" in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stat.mean s));
  Alcotest.(check bool) "var nan" true (Float.is_nan (Stat.variance s))

let test_stat_percentile () =
  let s = Stat.create ~keep_samples:true "p" in
  for i = 1 to 100 do
    Stat.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-6)) "p0" 1.0 (Stat.percentile s 0.0);
  Alcotest.(check (float 1e-6)) "p100" 100.0 (Stat.percentile s 100.0);
  Alcotest.(check (float 0.6)) "p50" 50.5 (Stat.percentile s 50.0);
  Alcotest.(check (float 1.0)) "p90" 90.1 (Stat.percentile s 90.0)

let test_stat_percentile_requires_samples () =
  let s = Stat.create "nokeep" in
  Stat.add s 1.0;
  Alcotest.check_raises "no samples kept"
    (Invalid_argument "Stat.percentile: accumulator does not keep samples")
    (fun () -> ignore (Stat.percentile s 50.0))

let test_stat_merge () =
  let a = Stat.create "a" and b = Stat.create "b" in
  List.iter (Stat.add a) [ 1.0; 2.0 ];
  List.iter (Stat.add b) [ 3.0; 4.0; 5.0 ];
  Stat.merge_into ~dst:a b;
  Alcotest.(check int) "count" 5 (Stat.count a);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stat.mean a);
  Alcotest.(check (float 1e-6)) "variance" 2.5 (Stat.variance a)

let prop_stat_welford_matches_naive =
  QCheck.Test.make ~name:"Welford mean/variance match naive computation"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stat.create "w" in
      List.iter (Stat.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
        /. (n -. 1.0)
      in
      Float.abs (Stat.mean s -. mean) < 1e-6 *. (1.0 +. Float.abs mean)
      && Float.abs (Stat.variance s -. var) < 1e-6 *. (1.0 +. var))

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_disabled_is_noop () =
  let tr = Trace.create ~enabled:false () in
  Trace.record tr ~at:0 ~tag:"x" "hello";
  Trace.recordf tr ~at:0 ~tag:"x" "%d" 42;
  Alcotest.(check int) "nothing recorded" 0 (Trace.total_recorded tr);
  Alcotest.(check (list string)) "no entries" []
    (List.map (fun e -> e.Trace.detail) (Trace.entries tr))

let test_trace_ring_overwrite () =
  let tr = Trace.create ~capacity:3 ~enabled:true () in
  List.iter (fun i -> Trace.recordf tr ~at:i ~tag:"t" "%d" i) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "total" 5 (Trace.total_recorded tr);
  Alcotest.(check (list string))
    "keeps the most recent, oldest first"
    [ "3"; "4"; "5" ]
    (List.map (fun e -> e.Trace.detail) (Trace.entries tr))

let test_trace_find_count () =
  let tr = Trace.create ~enabled:true () in
  Trace.record tr ~at:1 ~tag:"a" "one";
  Trace.record tr ~at:2 ~tag:"b" "two";
  Trace.record tr ~at:3 ~tag:"a" "three";
  Alcotest.(check int) "count a" 2 (Trace.count tr ~tag:"a");
  Alcotest.(check (list string)) "find a" [ "one"; "three" ]
    (List.map (fun e -> e.Trace.detail) (Trace.find tr ~tag:"a"))

(* ------------------------------------------------------------------ *)
(* Univ *)

let test_univ_roundtrip () =
  let inj, proj = Univ.embed () in
  let u = inj 42 in
  Alcotest.(check (option int)) "roundtrip" (Some 42) (proj u)

let test_univ_brands_distinct () =
  let inj_i, _proj_i = Univ.embed () in
  let _inj_s, proj_s = Univ.embed () in
  let u = inj_i 1 in
  Alcotest.(check (option string)) "wrong brand" None (proj_s u)

let suites =
  [
    ( "engine.sim_time",
      [
        Alcotest.test_case "units" `Quick test_time_units;
        Alcotest.test_case "pretty-printing" `Quick test_time_pp;
      ] );
    ( "engine.event_heap",
      [
        Alcotest.test_case "time ordering" `Quick test_heap_ordering;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "interleaved push/pop" `Quick test_heap_interleaved;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        q prop_heap_sorted;
        q prop_heap_push_pop_multiset;
      ] );
    ( "engine.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        q prop_rng_int_bounds;
        q prop_rng_float_bounds;
      ] );
    ( "engine.stat",
      [
        Alcotest.test_case "basic summary" `Quick test_stat_basic;
        Alcotest.test_case "empty" `Quick test_stat_empty;
        Alcotest.test_case "percentiles" `Quick test_stat_percentile;
        Alcotest.test_case "percentile guard" `Quick
          test_stat_percentile_requires_samples;
        Alcotest.test_case "merge" `Quick test_stat_merge;
        q prop_stat_welford_matches_naive;
      ] );
    ( "engine.trace",
      [
        Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_is_noop;
        Alcotest.test_case "ring overwrite" `Quick test_trace_ring_overwrite;
        Alcotest.test_case "find and count" `Quick test_trace_find_count;
      ] );
    ( "engine.univ",
      [
        Alcotest.test_case "roundtrip" `Quick test_univ_roundtrip;
        Alcotest.test_case "distinct brands" `Quick test_univ_brands_distinct;
      ] );
  ]
