(* Tests for the user-level IPC core: message format, sessions, the five
   protocols, the asynchronous extension, the ablation variants and the
   overload throttle. *)

open Ulipc_engine
open Ulipc_os
open Ulipc_workload

let sgi = Ulipc_machines.Sgi_indy.machine
let ibm = Ulipc_machines.Ibm_p4.machine
let challenge = Ulipc_machines.Sgi_challenge.machine

(* ------------------------------------------------------------------ *)
(* Message *)

let test_message_roundtrip () =
  let m = Ulipc.Message.make ~opcode:Echo ~reply_chan:3 ~seq:7 1.5 in
  let r = Ulipc.Message.echo_reply m in
  Alcotest.(check bool) "reply equals request" true (Ulipc.Message.equal m r);
  Alcotest.(check int) "reply chan kept" 3 r.Ulipc.Message.reply_chan

let test_message_opcode_equal () =
  let open Ulipc.Message in
  Alcotest.(check bool) "custom equal" true (opcode_equal (Custom 2) (Custom 2));
  Alcotest.(check bool) "custom differs" false (opcode_equal (Custom 2) (Custom 3));
  Alcotest.(check bool) "connect vs echo" false (opcode_equal Connect Echo)

let test_counters_add_reset () =
  let a = Ulipc.Counters.create () in
  let b = Ulipc.Counters.create () in
  a.Ulipc.Counters.sends <- 3;
  b.Ulipc.Counters.sends <- 4;
  b.Ulipc.Counters.race_fix_p <- 2;
  Ulipc.Counters.add a b;
  Alcotest.(check int) "sends summed" 7 a.Ulipc.Counters.sends;
  Alcotest.(check int) "race fixes summed" 2 a.Ulipc.Counters.race_fix_p;
  Ulipc.Counters.reset a;
  Alcotest.(check int) "reset" 0 a.Ulipc.Counters.sends

(* ------------------------------------------------------------------ *)
(* Session *)

let make_session ?(nclients = 2) ?(kind = Ulipc.Protocol_kind.BSW) () =
  let kernel =
    Kernel.create ~ncpus:1
      ~policy:(Sched_fixed.create Sched_fixed.default_params)
      ~costs:Costs.default ()
  in
  ( kernel,
    Ulipc.Session.create ~kernel ~costs:Costs.default ~multiprocessor:false
      ~kind ~nclients ~capacity:8 () )

let test_session_validation () =
  let _, session = make_session () in
  Alcotest.(check int) "nclients" 2 (Ulipc.Session.nclients session);
  Alcotest.check_raises "bad channel"
    (Invalid_argument "Session.reply_channel: no channel 5") (fun () ->
      ignore (Ulipc.Session.reply_channel session 5));
  Alcotest.check_raises "bad nclients"
    (Invalid_argument "Session.create: nclients must be positive") (fun () ->
      ignore (make_session ~nclients:0 ()));
  Alcotest.check_raises "bad max_spin"
    (Invalid_argument "Session.create: max_spin must be non-negative")
    (fun () ->
      ignore (make_session ~kind:(Ulipc.Protocol_kind.BSLS (-1)) ()))

let test_session_mtype () =
  Alcotest.(check int) "mtype positive" 1 (Ulipc.Session.sysv_reply_mtype ~client:0);
  Alcotest.(check int) "mtype distinct" 4 (Ulipc.Session.sysv_reply_mtype ~client:3)

(* ------------------------------------------------------------------ *)
(* Every protocol passes the echo workload on both machine classes. *)

let all_protocols =
  Ulipc.Protocol_kind.
    [ BSS; BSW; BSWY; BSLS 5; BSLS 20; SYSV; HANDOFF; CSEM ]

let echo_test machine kind () =
  let nclients = 3 and messages = 150 in
  let m =
    Driver.run
      (Driver.config ~machine ~kind ~nclients ~messages_per_client:messages ())
  in
  Alcotest.(check int) "all messages echoed" (nclients * messages)
    m.Metrics.messages;
  let c = m.Metrics.counters in
  (* Connects and disconnects also go through Send/Receive/Reply. *)
  let expected = (nclients * messages) + (2 * nclients) in
  Alcotest.(check int) "sends" expected c.Ulipc.Counters.sends;
  Alcotest.(check int) "receives" expected c.Ulipc.Counters.receives;
  Alcotest.(check int) "replies" expected c.Ulipc.Counters.replies

let protocol_cases machine tag =
  List.map
    (fun kind ->
      Alcotest.test_case
        (Printf.sprintf "%s echo on %s" (Ulipc.Protocol_kind.name kind) tag)
        `Quick (echo_test machine kind))
    all_protocols

(* Single client, single message: the degenerate case every protocol must
   also handle (connect, one echo, disconnect). *)
let test_single_message () =
  List.iter
    (fun kind ->
      let m =
        Driver.run
          (Driver.config ~machine:sgi ~kind ~nclients:1 ~messages_per_client:1 ())
      in
      Alcotest.(check int)
        (Ulipc.Protocol_kind.name kind ^ " one message")
        1 m.Metrics.messages)
    all_protocols

(* Zero echo messages: connect + disconnect only. *)
let test_zero_messages () =
  List.iter
    (fun kind ->
      let m =
        Driver.run
          (Driver.config ~machine:sgi ~kind ~nclients:2 ~messages_per_client:0 ())
      in
      Alcotest.(check int)
        (Ulipc.Protocol_kind.name kind ^ " zero messages")
        0 m.Metrics.messages)
    all_protocols

(* The blocking protocols actually block: with one slow client the server
   must sleep rather than burn the CPU. *)
let test_bsw_blocks_when_idle () =
  let m =
    Driver.run
      (Driver.config ~machine:sgi ~kind:Ulipc.Protocol_kind.BSW ~nclients:1
         ~messages_per_client:50
         ~client_think:(Sim_time.ms 1) ())
  in
  let c = m.Metrics.counters in
  Alcotest.(check bool)
    (Printf.sprintf "server slept (%d blocks)" c.Ulipc.Counters.server_blocks)
    true
    (c.Ulipc.Counters.server_blocks >= 45);
  (* The server sleeps through the clients' think time, so its CPU use is
     a small fraction of the elapsed time. *)
  Alcotest.(check bool)
    "blocking saves server CPU (cpu << elapsed)" true
    (float_of_int m.Metrics.server_usage.Syscall.cpu_time
    < 0.5 *. float_of_int m.Metrics.elapsed)

(* BSS by contrast never blocks and consumes the whole machine. *)
let test_bss_burns_cpu () =
  let m =
    Driver.run
      (Driver.config ~machine:sgi ~kind:Ulipc.Protocol_kind.BSS ~nclients:1
         ~messages_per_client:50
         ~client_think:(Sim_time.us 100) ())
  in
  let c = m.Metrics.counters in
  Alcotest.(check int) "no blocks" 0
    (c.Ulipc.Counters.server_blocks + c.Ulipc.Counters.client_blocks)

(* Queue-full flow control: a tiny queue forces the one-second sleep. *)
let test_queue_full_sleep () =
  let m =
    Driver.run
      (Driver.config ~machine:sgi ~kind:Ulipc.Protocol_kind.BSW ~nclients:4
         ~messages_per_client:30 ~capacity:1 ())
  in
  Alcotest.(check int) "completed despite tiny queue" 120 m.Metrics.messages;
  Alcotest.(check bool)
    (Printf.sprintf "flow-control sleeps happened (%d)"
       m.Metrics.counters.Ulipc.Counters.queue_full_sleeps)
    true
    (m.Metrics.counters.Ulipc.Counters.queue_full_sleeps > 0)

(* ------------------------------------------------------------------ *)
(* Asynchronous extension *)

let test_async_batch () =
  let kernel =
    Kernel.create ~ncpus:1
      ~policy:(Sched_decay.create Ulipc_machines.Sgi_indy.sched_params)
      ~costs:Ulipc_machines.Sgi_indy.costs ()
  in
  let session =
    Ulipc.Session.create ~kernel ~costs:Ulipc_machines.Sgi_indy.costs
      ~multiprocessor:false ~kind:Ulipc.Protocol_kind.BSW ~nclients:1
      ~capacity:16 ()
  in
  let batch = 10 in
  let got = ref [] in
  let _server =
    Kernel.spawn kernel ~name:"server" (fun () ->
        for _ = 1 to batch do
          let m = Ulipc.Dispatch.receive session in
          Ulipc.Dispatch.reply session ~client:m.Ulipc.Message.reply_chan
            (Ulipc.Message.echo_reply m)
        done)
  in
  let _client =
    Kernel.spawn kernel ~name:"client" (fun () ->
        let requests =
          List.init batch (fun i ->
              Ulipc.Message.make ~opcode:Echo ~reply_chan:0 ~seq:i
                (float_of_int i))
        in
        let replies = Ulipc.Async.call_batch session ~client:0 requests in
        got := List.map (fun (m : Ulipc.Message.t) -> m.Ulipc.Message.seq) replies)
  in
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> Alcotest.failf "async run: %a" Kernel.pp_result r);
  Alcotest.(check (list int))
    "replies in order" (List.init batch Fun.id) !got

let test_async_try_collect () =
  let kernel =
    Kernel.create ~ncpus:1
      ~policy:(Sched_fixed.create Sched_fixed.default_params)
      ~costs:Costs.default ()
  in
  let session =
    Ulipc.Session.create ~kernel ~costs:Costs.default ~multiprocessor:false
      ~kind:Ulipc.Protocol_kind.BSW ~nclients:1 ~capacity:8 ()
  in
  let observed_empty = ref false in
  let collected = ref (-1) in
  let _client =
    Kernel.spawn kernel ~name:"client" (fun () ->
        observed_empty := Ulipc.Async.try_collect session ~client:0 = None;
        Ulipc.Async.post session ~client:0
          (Ulipc.Message.make ~opcode:Echo ~reply_chan:0 ~seq:5 0.0);
        let m = Ulipc.Dispatch.receive session in
        Ulipc.Dispatch.reply session ~client:0 (Ulipc.Message.echo_reply m);
        match Ulipc.Async.try_collect session ~client:0 with
        | Some r -> collected := r.Ulipc.Message.seq
        | None -> ())
  in
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> Alcotest.failf "run: %a" Kernel.pp_result r);
  Alcotest.(check bool) "initially empty" true !observed_empty;
  Alcotest.(check int) "collected own echo" 5 !collected

(* ------------------------------------------------------------------ *)
(* Race repairs and ablations *)

(* An adversarial cost model that widens the consumer's C.1->C.2 window
   past the producer's publish->tas path, so the Figure 4 interleavings
   occur constantly. *)
let racy_machine =
  let costs =
    { challenge.Ulipc_machines.Machine.costs with flag_write = Sim_time.us 20 }
  in
  { challenge with costs }

let test_correct_bsw_survives_races () =
  let o =
    Driver.run_outcome
      (Driver.config ~machine:racy_machine ~kind:Ulipc.Protocol_kind.BSW
         ~nclients:2 ~messages_per_client:400
         ~time_limit:(Sim_time.sec 60) ())
  in
  Alcotest.(check int) "all echoed" 800 o.Driver.metrics.Metrics.messages;
  Alcotest.(check bool)
    (Printf.sprintf "interleaving-3 repairs fired (%d)"
       o.Driver.metrics.Metrics.counters.Ulipc.Counters.race_fix_p)
    true
    (o.Driver.metrics.Metrics.counters.Ulipc.Counters.race_fix_p > 0);
  Alcotest.(check int) "no semaphore residue" 0
    (Ulipc.Ablation.semaphore_residue o.Driver.session ~kernel:o.Driver.kernel)

let test_ablation_no_second_dequeue_deadlocks () =
  match
    Driver.run
      (Driver.config ~machine:racy_machine ~kind:Ulipc.Protocol_kind.BSW
         ~nclients:2 ~messages_per_client:400
         ~iface:(Ulipc.Ablation.iface Ulipc.Ablation.No_second_dequeue)
         ~time_limit:(Sim_time.sec 60) ())
  with
  | _ -> Alcotest.fail "expected the missing C.3 to lose a wake-up"
  | exception Driver.Hung (Kernel.Deadlock _) -> ()
  | exception Driver.Hung r ->
    Alcotest.failf "expected a deadlock, got %a" Kernel.pp_result r

let test_ablation_plain_store_degrades () =
  let run iface =
    Driver.run
      (Driver.config ~machine:racy_machine ~kind:Ulipc.Protocol_kind.BSW
         ~nclients:2 ~messages_per_client:400 ?iface
         ~time_limit:(Sim_time.sec 60) ())
  in
  let correct = run None in
  let broken =
    run (Some (Ulipc.Ablation.iface Ulipc.Ablation.Plain_store_wake))
  in
  Alcotest.(check int) "still completes" 800 broken.Metrics.messages;
  Alcotest.(check bool)
    (Printf.sprintf "duplicate wake-ups cost throughput (%.1f vs %.1f)"
       broken.Metrics.throughput_msg_per_ms correct.Metrics.throughput_msg_per_ms)
    true
    (broken.Metrics.throughput_msg_per_ms
    < 0.85 *. correct.Metrics.throughput_msg_per_ms)

let test_ablation_unconditional_wake_residue () =
  let o =
    Driver.run_outcome
      (Driver.config ~machine:sgi ~kind:Ulipc.Protocol_kind.BSW ~nclients:2
         ~messages_per_client:200
         ~iface:(Ulipc.Ablation.iface Ulipc.Ablation.Unconditional_wake)
         ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "semaphore residue accumulated (%d)"
       (Ulipc.Ablation.semaphore_residue o.Driver.session ~kernel:o.Driver.kernel))
    true
    (Ulipc.Ablation.semaphore_residue o.Driver.session ~kernel:o.Driver.kernel
    > 50)

(* ------------------------------------------------------------------ *)
(* Overload throttle *)

let test_throttle_completes_and_improves () =
  let nclients = 12 and messages = 400 in
  let plain =
    Driver.run
      (Driver.config ~machine:challenge ~kind:(Ulipc.Protocol_kind.BSLS 5)
         ~nclients ~messages_per_client:messages ())
  in
  let st = Ulipc.Bsls_throttle.server_state ~max_pending:4 in
  let throttled =
    Driver.run
      (Driver.config ~machine:challenge ~kind:(Ulipc.Protocol_kind.BSLS 5)
         ~iface:(Ulipc.Bsls_throttle.iface ~max_spin:5 st)
         ~nclients ~messages_per_client:messages ())
  in
  Alcotest.(check int) "all echoed" (nclients * messages)
    throttled.Metrics.messages;
  Alcotest.(check bool)
    (Printf.sprintf "no starvation: pending drained to %d"
       (Ulipc.Bsls_throttle.pending_wakeups st))
    true
    (Ulipc.Bsls_throttle.pending_wakeups st <= nclients);
  Alcotest.(check bool)
    (Printf.sprintf "throttle does not lose throughput (%.1f vs %.1f)"
       throttled.Metrics.throughput_msg_per_ms plain.Metrics.throughput_msg_per_ms)
    true
    (throttled.Metrics.throughput_msg_per_ms
    >= 0.9 *. plain.Metrics.throughput_msg_per_ms)

let suites =
  [
    ( "core.message",
      [
        Alcotest.test_case "echo reply round trip" `Quick test_message_roundtrip;
        Alcotest.test_case "opcode equality" `Quick test_message_opcode_equal;
        Alcotest.test_case "counters add/reset" `Quick test_counters_add_reset;
      ] );
    ( "core.session",
      [
        Alcotest.test_case "validation" `Quick test_session_validation;
        Alcotest.test_case "sysv mtypes" `Quick test_session_mtype;
      ] );
    ("core.protocols.sgi", protocol_cases sgi "sgi-indy");
    ("core.protocols.ibm", protocol_cases ibm "ibm-p4");
    ("core.protocols.mp", protocol_cases challenge "sgi-challenge");
    ( "core.protocols.edges",
      [
        Alcotest.test_case "single message" `Quick test_single_message;
        Alcotest.test_case "zero messages" `Quick test_zero_messages;
        Alcotest.test_case "BSW blocks when idle" `Quick test_bsw_blocks_when_idle;
        Alcotest.test_case "BSS never blocks" `Quick test_bss_burns_cpu;
        Alcotest.test_case "queue-full flow control" `Quick test_queue_full_sleep;
      ] );
    ( "core.async",
      [
        Alcotest.test_case "batched requests" `Quick test_async_batch;
        Alcotest.test_case "post / try_collect" `Quick test_async_try_collect;
      ] );
    ( "core.races",
      [
        Alcotest.test_case "correct BSW survives adversarial timing" `Quick
          test_correct_bsw_survives_races;
        Alcotest.test_case "dropping C.3 deadlocks (Interleaving 4)" `Quick
          test_ablation_no_second_dequeue_deadlocks;
        Alcotest.test_case "plain-store wake degrades (Interleavings 2-3)"
          `Quick test_ablation_plain_store_degrades;
        Alcotest.test_case "unconditional wake accumulates (semaphore overflow)"
          `Quick test_ablation_unconditional_wake_residue;
      ] );
    ( "core.throttle",
      [
        Alcotest.test_case "overload throttle completes, no starvation" `Slow
          test_throttle_completes_and_improves;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Bulk transfer (variable-sized payloads through a shared arena) *)

let bulk_fixture ~nclients ~kind =
  let kernel =
    Kernel.create ~ncpus:1
      ~policy:(Sched_decay.create Ulipc_machines.Sgi_indy.sched_params)
      ~costs:Ulipc_machines.Sgi_indy.costs ()
  in
  let session =
    Ulipc.Session.create ~kernel ~costs:Ulipc_machines.Sgi_indy.costs
      ~multiprocessor:false ~kind ~nclients ~capacity:32 ()
  in
  (kernel, Ulipc.Bulk.create session ~arena_size:4096)

let test_bulk_roundtrip () =
  let kernel, bulk = bulk_fixture ~nclients:1 ~kind:Ulipc.Protocol_kind.BSW in
  let requests = 40 in
  let _server =
    Kernel.spawn kernel ~name:"server" (fun () ->
        for _ = 1 to requests do
          Ulipc.Bulk.serve_one bulk ~handler:(fun ~client:_ payload ->
              Bytes.of_string (String.uppercase_ascii (Bytes.to_string payload)))
        done)
  in
  let ok = ref 0 in
  let _client =
    Kernel.spawn kernel ~name:"client" (fun () ->
        for i = 1 to requests do
          (* Sizes vary from empty to several hundred bytes. *)
          let payload = String.make (i * 13 mod 400) 'x' in
          let reply =
            Ulipc.Bulk.call bulk ~client:0 (Bytes.of_string payload)
          in
          if Bytes.to_string reply = String.uppercase_ascii payload then incr ok
        done)
  in
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> Alcotest.failf "bulk run: %a" Kernel.pp_result r);
  Alcotest.(check int) "all payloads round-tripped" requests !ok;
  (* Ownership discipline: every block freed by its receiver. *)
  Alcotest.(check int) "arena drained" 0
    (Ulipc_shm.Arena.allocations_peek (Ulipc.Bulk.arena bulk))

let test_bulk_arena_backpressure () =
  (* An arena smaller than the burst forces the flow-control sleep but
     never corrupts payloads. *)
  let kernel =
    Kernel.create ~ncpus:1
      ~policy:(Sched_decay.create Ulipc_machines.Sgi_indy.sched_params)
      ~costs:Ulipc_machines.Sgi_indy.costs ()
  in
  let session =
    Ulipc.Session.create ~kernel ~costs:Ulipc_machines.Sgi_indy.costs
      ~multiprocessor:false ~kind:Ulipc.Protocol_kind.BSW ~nclients:2
      ~capacity:32 ()
  in
  let bulk = Ulipc.Bulk.create session ~arena_size:700 in
  let per_client = 15 in
  let _server =
    Kernel.spawn kernel ~name:"server" (fun () ->
        for _ = 1 to 2 * per_client do
          Ulipc.Bulk.serve_one bulk ~handler:(fun ~client:_ payload -> payload)
        done)
  in
  let ok = ref 0 in
  for client = 0 to 1 do
    ignore
      (Kernel.spawn kernel
         ~name:(Printf.sprintf "client-%d" client)
         (fun () ->
           for i = 1 to per_client do
             let payload = Bytes.make 300 (Char.chr (65 + ((client + i) mod 26))) in
             let reply = Ulipc.Bulk.call bulk ~client payload in
             if Bytes.equal reply payload then incr ok
           done))
  done;
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> Alcotest.failf "backpressure run: %a" Kernel.pp_result r);
  Alcotest.(check int) "all echoed despite tiny arena" (2 * per_client) !ok

let test_bulk_decode_rejects_non_bulk () =
  let _, bulk = bulk_fixture ~nclients:1 ~kind:Ulipc.Protocol_kind.BSW in
  ignore bulk;
  (* [decode] is internal; the public contract is that mixing plain and
     bulk traffic routes on [bulk_opcode]. *)
  Alcotest.(check bool) "bulk opcode is custom" true
    (match Ulipc.Bulk.bulk_opcode with
    | Ulipc.Message.Custom _ -> true
    | Ulipc.Message.Connect | Ulipc.Message.Echo | Ulipc.Message.Disconnect ->
      false)

(* ------------------------------------------------------------------ *)
(* Kernel-level accounting property over random protocol workloads *)

let prop_accounting_conserved =
  QCheck.Test.make ~name:"cpu time and switches conserved across protocols"
    ~count:12
    QCheck.(
      pair (int_range 1 4)
        (pair (int_range 1 60) (int_bound 5)))
    (fun (nclients, (messages, kind_idx)) ->
      let kind = List.nth all_protocols (kind_idx mod List.length all_protocols) in
      let o =
        Driver.run_outcome
          (Driver.config ~machine:sgi ~kind ~nclients
             ~messages_per_client:messages ())
      in
      let kernel = o.Driver.kernel in
      let total_cpu =
        List.fold_left
          (fun acc p -> acc + p.Proc.cpu_time)
          0
          (Kernel.procs kernel)
      in
      (* CPU consumed never exceeds wall time x CPUs, and the busy
         accounting brackets the per-process sum. *)
      total_cpu <= Kernel.now kernel
      && Kernel.cpu_busy kernel 0 >= total_cpu
      && Kernel.utilization kernel <= 1.0
      && List.for_all
           (fun p ->
             p.Proc.vcsw >= 0 && p.Proc.icsw >= 0
             && p.Proc.state = Proc.Dead)
           (Kernel.procs kernel))

let bulk_suites =
  [
    ( "core.bulk",
      [
        Alcotest.test_case "variable payload round trip" `Quick
          test_bulk_roundtrip;
        Alcotest.test_case "arena backpressure" `Quick
          test_bulk_arena_backpressure;
        Alcotest.test_case "opcode routing" `Quick test_bulk_decode_rejects_non_bulk;
      ] );
    ( "core.properties",
      [ QCheck_alcotest.to_alcotest prop_accounting_conserved ] );
  ]

let suites = suites @ bulk_suites

(* ------------------------------------------------------------------ *)
(* Guard: the §1 server-protection discipline against hostile clients *)

let test_guard_survives_malicious_client () =
  let kernel =
    Kernel.create ~ncpus:1
      ~policy:(Sched_decay.create Ulipc_machines.Sgi_indy.sched_params)
      ~costs:Ulipc_machines.Sgi_indy.costs ()
  in
  let session =
    Ulipc.Session.create ~kernel ~costs:Ulipc_machines.Sgi_indy.costs
      ~multiprocessor:false ~kind:Ulipc.Protocol_kind.BSW ~nclients:2
      ~capacity:32 ()
  in
  let guard = Ulipc.Guard.create session Ulipc.Guard.default_policy in
  let honest_messages = 60 and garbage = 30 in
  let _server =
    Kernel.spawn kernel ~name:"server" (fun () ->
        (* Serve exactly the honest traffic; garbage must be skipped. *)
        for _ = 1 to honest_messages do
          let m = Ulipc.Guard.receive guard in
          Ulipc.Guard.reply guard ~client:m.Ulipc.Message.reply_chan
            (Ulipc.Message.echo_reply m)
        done)
  in
  let _attacker =
    Kernel.spawn kernel ~name:"attacker" (fun () ->
        for i = 1 to garbage do
          (* Alternate an out-of-range reply channel with a forbidden
             opcode; never wait for an answer. *)
          let msg =
            if i mod 2 = 0 then
              Ulipc.Message.make ~opcode:Echo ~reply_chan:7 ~seq:i 0.0
            else
              Ulipc.Message.make ~opcode:(Custom 666) ~reply_chan:0 ~seq:i 0.0
          in
          Ulipc.Async.post session ~client:0 msg
        done)
  in
  let ok = ref 0 in
  let _honest =
    Kernel.spawn kernel ~name:"honest" (fun () ->
        for seq = 1 to honest_messages do
          let ans =
            Ulipc.Dispatch.send session ~client:1
              (Ulipc.Message.make ~opcode:Echo ~reply_chan:1 ~seq
                 (float_of_int seq))
          in
          if ans.Ulipc.Message.seq = seq then incr ok
        done)
  in
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> Alcotest.failf "guard run: %a" Kernel.pp_result r);
  Alcotest.(check int) "honest client fully served" honest_messages !ok;
  Alcotest.(check int) "all garbage rejected" garbage
    (Ulipc.Guard.rejected guard)

let test_guard_credit_bound () =
  let kernel =
    Kernel.create ~ncpus:1
      ~policy:(Sched_decay.create Ulipc_machines.Sgi_indy.sched_params)
      ~costs:Ulipc_machines.Sgi_indy.costs ()
  in
  let session =
    Ulipc.Session.create ~kernel ~costs:Ulipc_machines.Sgi_indy.costs
      ~multiprocessor:false ~kind:Ulipc.Protocol_kind.BSW ~nclients:2
      ~capacity:32 ()
  in
  let guard =
    Ulipc.Guard.create session
      { Ulipc.Guard.default_policy with max_outstanding = 4 }
  in
  let flood = 12 in
  let from_flooder = ref 0 and honest_served = ref false in
  let _server =
    Kernel.spawn kernel ~name:"server" (fun () ->
        (* Four receives exhaust the flooder's credit (nothing is replied);
           the fifth receive must skip the flooder's backlog and deliver
           the honest client's request. *)
        for _ = 1 to 4 do
          let m = Ulipc.Guard.receive guard in
          if m.Ulipc.Message.reply_chan = 0 then incr from_flooder
        done;
        let m = Ulipc.Guard.receive guard in
        if m.Ulipc.Message.reply_chan = 1 then begin
          honest_served := true;
          Ulipc.Guard.reply guard ~client:1 (Ulipc.Message.echo_reply m)
        end)
  in
  let _flooder =
    Kernel.spawn kernel ~name:"flooder" (fun () ->
        for seq = 1 to flood do
          Ulipc.Async.post session ~client:0
            (Ulipc.Message.make ~opcode:Echo ~reply_chan:0 ~seq 0.0)
        done)
  in
  let _honest =
    Kernel.spawn kernel ~name:"honest" (fun () ->
        (* Arrive well after the flood. *)
        Usys.sleep (Sim_time.ms 5);
        let (_ : Ulipc.Message.t) =
          Ulipc.Dispatch.send session ~client:1
            (Ulipc.Message.make ~opcode:Echo ~reply_chan:1 ~seq:1 1.0)
        in
        ())
  in
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> Alcotest.failf "credit run: %a" Kernel.pp_result r);
  Alcotest.(check int) "first four came from the flooder" 4 !from_flooder;
  Alcotest.(check bool) "honest client served past the backlog" true
    !honest_served;
  Alcotest.(check int) "backlog beyond the credit dropped" (flood - 4)
    (Ulipc.Guard.rejected guard)

let guard_suites =
  [
    ( "core.guard",
      [
        Alcotest.test_case "survives a malicious client" `Quick
          test_guard_survives_malicious_client;
        Alcotest.test_case "per-client credit bound" `Quick
          test_guard_credit_bound;
      ] );
  ]

let suites = suites @ guard_suites
