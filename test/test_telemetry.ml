(* Tests for the live telemetry plane (PR 10): the Series frame ring,
   the instrument registry with its double-buffered windowed histograms,
   the Prometheus exposition, and the Counters snapshot/diff algebra the
   ext-counter instruments ride on. *)

module T = Ulipc_observe.Telemetry
module S = Ulipc_observe.Series
module H = Ulipc_observe.Histogram
module C = Ulipc.Counters

(* ------------------------------------------------------------------ *)
(* Series ring. *)

let test_series_ring () =
  let s = S.create ~capacity:4 () in
  Alcotest.(check int) "empty recorded" 0 (S.recorded s);
  Alcotest.(check bool) "empty latest" true (S.latest s = None);
  let mk i =
    {
      S.t_us = float_of_int i;
      window_us = 1.0;
      points = [| ("x", float_of_int (10 * i)) |];
    }
  in
  for i = 1 to 6 do
    S.push s (mk i)
  done;
  Alcotest.(check int) "recorded counts overwrites" 6 (S.recorded s);
  Alcotest.(check int) "dropped = recorded - capacity" 2 (S.dropped s);
  let frames = S.frames s in
  Alcotest.(check (list (float 0.0)))
    "oldest first, oldest two overwritten" [ 3.0; 4.0; 5.0; 6.0 ]
    (List.map (fun f -> f.S.t_us) frames);
  (match S.latest s with
  | Some f -> Alcotest.(check (option (float 0.0))) "point" (Some 60.0)
                (S.point f "x")
  | None -> Alcotest.fail "latest after pushes");
  Alcotest.(check (option (float 0.0)))
    "missing point" None
    (S.point (mk 1) "absent")

(* ------------------------------------------------------------------ *)
(* Counter / gauge deltas through tick. *)

let test_tick_deltas () =
  let t = T.create () in
  let c = T.counter t "msgs" in
  let g = ref 7.0 in
  T.gauge t "depth" (fun () -> !g);
  let total = ref [ ("harvested", 0) ] in
  T.ext_counters t (fun () -> !total);
  T.add c 5;
  let f1 = T.tick t in
  Alcotest.(check (option (float 0.0))) "first delta" (Some 5.0)
    (S.point f1 "msgs");
  Alcotest.(check (option (float 0.0))) "gauge read" (Some 7.0)
    (S.point f1 "depth");
  Alcotest.(check (option (float 0.0))) "ext first" (Some 0.0)
    (S.point f1 "harvested");
  T.add c 3;
  T.incr c;
  g := 2.0;
  total := [ ("harvested", 11) ];
  let f2 = T.tick t in
  Alcotest.(check (option (float 0.0))) "second delta" (Some 4.0)
    (S.point f2 "msgs");
  Alcotest.(check (option (float 0.0))) "gauge re-read" (Some 2.0)
    (S.point f2 "depth");
  Alcotest.(check (option (float 0.0))) "ext delta" (Some 11.0)
    (S.point f2 "harvested");
  Alcotest.(check int) "cumulative value" 9 (T.counter_value c);
  Alcotest.(check bool) "window_us positive" true (f2.S.window_us > 0.0);
  Alcotest.(check bool) "t_us advances" true (f2.S.t_us > f1.S.t_us)

(* ------------------------------------------------------------------ *)
(* Windowed histogram: N windows of flip-merge must equal one
   unwindowed histogram over the same stream.  Flips happen on the
   recording thread, so there is no in-flight race and the equality is
   exact — count, sum, and every percentile (same bucket geometry). *)

let prop_whist_flip_merge =
  QCheck.Test.make ~count:50 ~name:"N-window flip-merge == unwindowed"
    QCheck.(
      pair (list_of_size Gen.(1 -- 8) (list (float_range 0.5 5e6)))
        (float_range 0.0 100.0))
    (fun (windows, p) ->
      let t = T.create () in
      let w = T.whist t "lat" in
      let reference = H.create "ref" in
      let window_counts =
        List.map
          (fun samples ->
            List.iter
              (fun v ->
                T.record w v;
                H.record reference v)
              samples;
            let f = T.tick t in
            match S.point f "lat_count" with
            | Some c -> int_of_float c
            | None -> -1)
          windows
      in
      let cum = T.whist_cumulative w in
      let total = List.fold_left ( + ) 0 window_counts in
      H.count cum = H.count reference
      && total = H.count reference
      (* Sums are accumulated in different orders (per-window partials
         merged vs. one running total), so compare them relatively. *)
      && abs_float (H.total cum -. H.total reference)
         <= 1e-9 *. Float.max 1.0 (abs_float (H.total reference))
      && (H.count cum = 0
         || H.percentile cum p = H.percentile reference p))

(* Writers hammer [record] from several domains while the main thread
   flips concurrently.  The documented race bound: each writer can lose
   or double-count at most one in-flight sample per flip, so the
   cumulative count after the final quiescent tick must land within
   [writers * flips] of the true total — and in practice almost exactly
   on it.  (A torn or out-of-thin-air value would crash percentile.) *)
let test_whist_record_during_flip () =
  let t = T.create () in
  let w = T.whist t "race" in
  let writers = 4 and per_writer = 20_000 in
  let flips = ref 0 in
  let running = Atomic.make writers in
  let domains =
    List.init writers (fun i ->
        Domain.spawn (fun () ->
            for k = 1 to per_writer do
              T.record w (float_of_int (((i * per_writer) + k) mod 1000 + 1))
            done;
            Atomic.decr running))
  in
  while Atomic.get running > 0 do
    ignore (T.tick t);
    incr flips;
    Domain.cpu_relax ()
  done;
  List.iter Domain.join domains;
  ignore (T.tick t) (* quiescent: collects every straggler *);
  let total = writers * per_writer in
  let bound = writers * (!flips + 1) in
  let got = H.count (T.whist_cumulative w) in
  Alcotest.(check bool)
    (Printf.sprintf "count %d within %d of %d (%d flips)" got bound total
       !flips)
    true
    (abs (got - total) <= bound);
  (* The histogram itself must be internally consistent. *)
  Alcotest.(check bool)
    "p99 within recorded range" true
    (let p = H.percentile (T.whist_cumulative w) 99.0 in
     p >= 1.0 && p <= H.max_value (T.whist_cumulative w) *. 1.0000001)

(* ------------------------------------------------------------------ *)
(* Sampler thread: frames accumulate without an explicit tick and the
   series stays monotonic; double-start is rejected. *)

let test_sampler_lifecycle () =
  let t = T.create ~interval_ms:2.0 () in
  let c = T.counter t "beats" in
  T.start_sampler t;
  Alcotest.check_raises "double start"
    (Invalid_argument "Telemetry.start_sampler: sampler already running")
    (fun () -> T.start_sampler t);
  for _ = 1 to 5 do
    T.incr c;
    Unix.sleepf 0.004
  done;
  T.stop_sampler t;
  T.stop_sampler t (* idempotent *);
  let frames = T.frames t in
  Alcotest.(check bool)
    (Printf.sprintf "sampled >= 2 frames (%d)" (List.length frames))
    true
    (List.length frames >= 2);
  let rec monotonic = function
    | a :: (b :: _ as rest) -> a.S.t_us < b.S.t_us && monotonic rest
    | _ -> true
  in
  Alcotest.(check bool) "t_us strictly increasing" true (monotonic frames);
  let summed =
    List.fold_left
      (fun acc f -> acc +. Option.value ~default:0.0 (S.point f "beats"))
      0.0 frames
  in
  Alcotest.(check (float 0.0)) "deltas sum to total" 5.0 summed

(* ------------------------------------------------------------------ *)
(* Prometheus exposition. *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_prometheus () =
  let t = T.create () in
  let c = T.counter t "messages" in
  T.add c 42;
  T.gauge t "ring depth/0" (fun () -> 3.0);
  T.ext_counters t (fun () -> [ ("steal_msgs", 7) ]);
  let w = T.whist t "latency_us" in
  T.record w 10.0;
  T.record w 20.0;
  ignore (T.tick t);
  let out = T.to_prometheus t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains ~needle out))
    [
      "# TYPE ulipc_messages_total counter";
      "ulipc_messages_total 42";
      (* Invalid metric characters sanitised to '_'. *)
      "# TYPE ulipc_ring_depth_0 gauge";
      "ulipc_ring_depth_0 3";
      "ulipc_steal_msgs_total 7";
      "# TYPE ulipc_latency_us summary";
      "ulipc_latency_us{quantile=\"0.99\"}";
      "ulipc_latency_us_count 2";
    ];
  (* The summary quotes the cumulative histogram: the flip above moved
     both samples into it, and sum is exact. *)
  Alcotest.(check bool) "summary sum" true
    (contains ~needle:"ulipc_latency_us_sum 30" out)

(* ------------------------------------------------------------------ *)
(* Counters snapshot/diff: [add before (diff after before) = after]
   whenever [after] descends from [before] (all monotonic fields grew,
   hwm never regressed) — the harvest algebra the drivers rely on. *)

let counters_gen =
  QCheck.Gen.(
    let field = 0 -- 10_000 in
    let* base = array_repeat 20 field in
    let* inc = array_repeat 20 field in
    return (base, inc))

let prop_counters_diff_roundtrip =
  QCheck.Test.make ~count:200 ~name:"add before (diff after before) = after"
    (QCheck.make counters_gen) (fun (base, inc) ->
      let mk a =
        let c = C.create () in
        List.iteri
          (fun i (name, _) ->
            (* Drive each field through the public mutable record. *)
            match name with
            | "sends" -> c.C.sends <- a.(i)
            | "receives" -> c.C.receives <- a.(i)
            | "replies" -> c.C.replies <- a.(i)
            | "client_blocks" -> c.C.client_blocks <- a.(i)
            | "server_blocks" -> c.C.server_blocks <- a.(i)
            | "client_wakeups" -> c.C.client_wakeups <- a.(i)
            | "server_wakeups" -> c.C.server_wakeups <- a.(i)
            | "race_fix_p" -> c.C.race_fix_p <- a.(i)
            | "queue_full_sleeps" -> c.C.queue_full_sleeps <- a.(i)
            | "spin_iterations" -> c.C.spin_iterations <- a.(i)
            | "spin_fallthroughs" -> c.C.spin_fallthroughs <- a.(i)
            | "server_spin_iterations" -> c.C.server_spin_iterations <- a.(i)
            | "server_spin_fallthroughs" ->
              c.C.server_spin_fallthroughs <- a.(i)
            | "backoff_sleeps" -> c.C.backoff_sleeps <- a.(i)
            | "steal_posts" -> c.C.steal_posts <- a.(i)
            | "steal_handoffs" -> c.C.steal_handoffs <- a.(i)
            | "steal_msgs" -> c.C.steal_msgs <- a.(i)
            | "slab_hwm" -> c.C.slab_hwm <- a.(i)
            | "sem_parks" -> c.C.sem_parks <- a.(i)
            | "sem_grants" -> c.C.sem_grants <- a.(i)
            | other -> Alcotest.failf "unknown counters field %s" other)
          (C.to_fields (C.create ()));
        c
      in
      let before = mk base in
      (* [after] descends from [before]: every field grew by a
         non-negative increment (hwm included, so it never regressed). *)
      let after = mk (Array.mapi (fun i b -> b + inc.(i)) base) in
      let before' = C.snapshot before in
      let d = C.diff (C.snapshot after) before' in
      C.add before' d;
      C.to_fields before' = C.to_fields after)

let test_counters_snapshot_isolated () =
  let live = C.create () in
  live.C.sends <- 5;
  let snap = C.snapshot live in
  live.C.sends <- 9;
  Alcotest.(check int) "snapshot unaffected by later bumps" 5 snap.C.sends;
  let d = C.diff (C.snapshot live) snap in
  Alcotest.(check int) "diff picks up the delta" 4 d.C.sends;
  Alcotest.(check int) "hwm diff carries the later value" live.C.slab_hwm
    d.C.slab_hwm

let suites =
  [
    ( "observe.series",
      [
        Alcotest.test_case "bounded ring, overwrite oldest" `Quick
          test_series_ring;
      ] );
    ( "observe.telemetry",
      [
        Alcotest.test_case "counter/gauge/ext deltas" `Quick test_tick_deltas;
        QCheck_alcotest.to_alcotest prop_whist_flip_merge;
        Alcotest.test_case "record during flip (multi-domain)" `Quick
          test_whist_record_during_flip;
        Alcotest.test_case "sampler lifecycle" `Quick test_sampler_lifecycle;
        Alcotest.test_case "prometheus exposition" `Quick test_prometheus;
      ] );
    ( "core.counters",
      [
        QCheck_alcotest.to_alcotest prop_counters_diff_roundtrip;
        Alcotest.test_case "snapshot isolation + hwm diff" `Quick
          test_counters_snapshot_isolated;
      ] );
  ]
