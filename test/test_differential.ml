(* Differential tests: the protocol core is one body of code instantiated
   over two substrates — the simulator and real OCaml 5 domains — and the
   real substrate further offers two queue transports (the two-lock queue
   and the lock-free rings).  For any protocol and any trace of requests,
   all backends must compute identical per-client reply sequences, and
   none may deadlock or leak wake-ups: each property runs the simulator
   once and replays the same trace on real domains over BOTH transports.

   Server transform: reply = 2 * v + client — client-dependent, so a reply
   delivered to the wrong channel or out of order is caught, not masked. *)

open Ulipc_engine
open Ulipc_os

let transform ~client v = (2 * v) + client

(* ------------------------------------------------------------------ *)
(* One trace through the simulator *)

let sim_kind_of = function
  | Ulipc_real.Rpc.Spin -> Ulipc.Protocol_kind.BSS
  | Ulipc_real.Rpc.Block -> Ulipc.Protocol_kind.BSW
  | Ulipc_real.Rpc.Block_yield -> Ulipc.Protocol_kind.BSWY
  | Ulipc_real.Rpc.Limited_spin n -> Ulipc.Protocol_kind.BSLS n
  | Ulipc_real.Rpc.Handoff -> Ulipc.Protocol_kind.HANDOFF
  | Ulipc_real.Rpc.Adaptive cap -> Ulipc.Protocol_kind.ADAPT cap

let run_sim waiting (traces : int list array) =
  let nclients = Array.length traces in
  let kernel =
    Kernel.create ~ncpus:1
      ~policy:(Sched_decay.create Ulipc_machines.Sgi_indy.sched_params)
      ~costs:Ulipc_machines.Sgi_indy.costs ()
  in
  let session =
    Ulipc.Session.create ~kernel ~costs:Ulipc_machines.Sgi_indy.costs
      ~multiprocessor:false ~kind:(sim_kind_of waiting) ~nclients ~capacity:8 ()
  in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 traces in
  let _server =
    Kernel.spawn kernel ~name:"server" (fun () ->
        for _ = 1 to total do
          let m = Ulipc.Dispatch.receive session in
          let client = m.Ulipc.Message.reply_chan in
          let v = int_of_float m.Ulipc.Message.arg in
          Ulipc.Dispatch.reply session ~client
            (Ulipc.Message.make ~opcode:Echo ~reply_chan:client
               (float_of_int (transform ~client v)))
        done)
  in
  let replies = Array.make nclients [] in
  Array.iteri
    (fun c trace ->
      ignore
        (Kernel.spawn kernel
           ~name:(Printf.sprintf "client-%d" c)
           (fun () ->
             List.iter
               (fun v ->
                 let r =
                   Ulipc.Dispatch.send session ~client:c
                     (Ulipc.Message.make ~opcode:Echo ~reply_chan:c
                        (float_of_int v))
                 in
                 replies.(c) <-
                   int_of_float r.Ulipc.Message.arg :: replies.(c))
               trace)))
    traces;
  (match Kernel.run ~until:(Sim_time.sec 600) kernel with
  | Kernel.Completed -> ()
  | r -> Alcotest.failf "simulated run did not complete: %a" Kernel.pp_result r);
  Array.map List.rev replies

(* ------------------------------------------------------------------ *)
(* The same trace on real domains *)

let run_real ~transport waiting (traces : int list array) =
  let nclients = Array.length traces in
  let t : (int, int) Ulipc_real.Rpc.t =
    Ulipc_real.Rpc.create ~capacity:8 ~transport ~nclients waiting
  in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 traces in
  let server =
    Domain.spawn (fun () ->
        for _ = 1 to total do
          let client, v = Ulipc_real.Rpc.receive t in
          Ulipc_real.Rpc.reply t ~client (transform ~client v)
        done)
  in
  let clients =
    Array.mapi
      (fun c trace ->
        Domain.spawn (fun () ->
            List.map (fun v -> Ulipc_real.Rpc.send t ~client:c v) trace))
      traces
  in
  let replies = Array.map Domain.join clients in
  Domain.join server;
  (replies, Ulipc_real.Rpc.wake_residue t)

(* ------------------------------------------------------------------ *)
(* qcheck: random client counts and traces, every protocol *)

let traces_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun nclients ->
    array_repeat nclients (list_size (int_bound 12) (int_bound 1000)))

let traces_arb =
  QCheck.make traces_gen
    ~print:(fun traces ->
      String.concat "; "
        (Array.to_list
           (Array.map
              (fun l -> "[" ^ String.concat "," (List.map string_of_int l) ^ "]")
              traces)))

let prop_backends_agree name waiting =
  QCheck.Test.make ~count:110
    ~name:(Printf.sprintf "sim and real agree: %s" name)
    traces_arb
    (fun traces ->
      let sim = run_sim waiting traces in
      List.iter
        (fun transport ->
          let real, residue = run_real ~transport waiting traces in
          if sim <> real then
            QCheck.Test.fail_reportf "reply sequences differ for %s over %s"
              name
              (Ulipc_real.Real_substrate.transport_name transport);
          (* Spin leaves no wake-ups by construction; the blocking
             protocols must have drained every raced V. *)
          if residue <> 0 then
            QCheck.Test.fail_reportf "wake residue %d after quiescence (%s)"
              residue
              (Ulipc_real.Real_substrate.transport_name transport))
        Ulipc_real.Real_substrate.[ Two_lock; Ring ];
      (* The same checks hold against the oracle directly: every client's
         reply list is its trace, transformed, in order. *)
      Array.iteri
        (fun c trace ->
          let expect = List.map (fun v -> transform ~client:c v) trace in
          if sim.(c) <> expect then
            QCheck.Test.fail_reportf "sim replies wrong for client %d" c)
        traces;
      true)

(* ------------------------------------------------------------------ *)
(* Stress: Limited_spin counters on real domains.

   One client, so the client-side counter fields have a single writer and
   the totals are exact (Domain.join orders the final reads).  A spin
   fall-through implies the full max_spin poll iterations were spent in
   that invocation, so iterations >= fallthroughs * max_spin; and neither
   side can fall through more often than it waited. *)

let test_limited_spin_counters transport () =
  let max_spin = 7 in
  let messages = 3_000 in
  let t : (int, int) Ulipc_real.Rpc.t =
    Ulipc_real.Rpc.create ~transport ~nclients:1
      (Ulipc_real.Rpc.Limited_spin max_spin)
  in
  let server =
    Domain.spawn (fun () ->
        for _ = 1 to messages do
          let client, v = Ulipc_real.Rpc.receive t in
          Ulipc_real.Rpc.reply t ~client (v + 1)
        done)
  in
  let client =
    Domain.spawn (fun () ->
        for i = 1 to messages do
          if Ulipc_real.Rpc.send t ~client:0 i <> i + 1 then
            failwith "echo mismatch"
        done)
  in
  Domain.join client;
  Domain.join server;
  let c = Ulipc_real.Rpc.counters t in
  let open Ulipc.Counters in
  Alcotest.(check int) "sends" messages c.sends;
  Alcotest.(check int) "receives" messages c.receives;
  Alcotest.(check int) "replies" messages c.replies;
  Alcotest.(check bool) "client falls <= sends" true
    (c.spin_fallthroughs <= c.sends);
  Alcotest.(check bool) "server falls <= receives" true
    (c.server_spin_fallthroughs <= c.receives);
  Alcotest.(check bool) "client iters bounded above" true
    (c.spin_iterations <= c.sends * max_spin);
  Alcotest.(check bool) "server iters bounded above" true
    (c.server_spin_iterations <= c.receives * max_spin);
  Alcotest.(check bool) "client falls imply full spins" true
    (c.spin_iterations >= c.spin_fallthroughs * max_spin);
  Alcotest.(check bool) "server falls imply full spins" true
    (c.server_spin_iterations >= c.server_spin_fallthroughs * max_spin);
  Alcotest.(check int) "no stale wake-ups" 0 (Ulipc_real.Rpc.wake_residue t)

let suites =
  [
    ( "differential",
      [
        QCheck_alcotest.to_alcotest
          (prop_backends_agree "BSS (spin)" Ulipc_real.Rpc.Spin);
        QCheck_alcotest.to_alcotest
          (prop_backends_agree "BSW (block)" Ulipc_real.Rpc.Block);
        QCheck_alcotest.to_alcotest
          (prop_backends_agree "BSWY (block+yield)" Ulipc_real.Rpc.Block_yield);
        QCheck_alcotest.to_alcotest
          (prop_backends_agree "BSLS(3)" (Ulipc_real.Rpc.Limited_spin 3));
        QCheck_alcotest.to_alcotest
          (prop_backends_agree "BSLS(0)" (Ulipc_real.Rpc.Limited_spin 0));
        QCheck_alcotest.to_alcotest
          (prop_backends_agree "handoff" Ulipc_real.Rpc.Handoff);
        Alcotest.test_case "BSLS counters under stress (real domains, ring)"
          `Slow
          (test_limited_spin_counters Ulipc_real.Real_substrate.Ring);
        Alcotest.test_case
          "BSLS counters under stress (real domains, two-lock)" `Slow
          (test_limited_spin_counters Ulipc_real.Real_substrate.Two_lock);
      ] );
  ]
