(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation from the simulator, runs the ablation comparisons DESIGN.md
   calls out, and measures the real-domains primitives with Bechamel.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- figs         # all figures
     dune exec bench/main.exe -- fig2a fig11  # specific figures
     dune exec bench/main.exe -- table1 ablations micro
     dune exec bench/main.exe -- quick        # reduced counts + short quotas
     dune exec bench/main.exe -- micro --json BENCH_real.json
                                              # also write the real-domains
                                              # results as JSON *)

open Ulipc_workload

(* ------------------------------------------------------------------ *)
(* Simulated tables and figures *)

let print_table1 () =
  Format.printf
    "=== Table 1: primitive operation costs (simulated; paper SGI column: \
     3us, 37us, 16/18/45us) ===@.";
  Format.printf "%a@." Experiments.pp_table1 (Experiments.table1 ())

let figure_builders messages : (string * (unit -> Experiments.figure)) list =
  [
    ("fig2a", fun () -> fst (Experiments.fig2 ~messages ()));
    ("fig2b", fun () -> snd (Experiments.fig2 ~messages ()));
    ("fig3a", fun () -> fst (Experiments.fig3 ~messages ()));
    ("fig3b", fun () -> snd (Experiments.fig3 ~messages ()));
    ("fig6a", fun () -> fst (Experiments.fig6 ~messages ()));
    ("fig6b", fun () -> snd (Experiments.fig6 ~messages ()));
    ("fig8a", fun () -> fst (Experiments.fig8 ~messages ()));
    ("fig8b", fun () -> snd (Experiments.fig8 ~messages ()));
    ("fig10", fun () -> Experiments.fig10 ~messages ());
    ("fig11", fun () -> Experiments.fig11 ~messages ());
    ("fig12", fun () -> Experiments.fig12 ~messages ());
  ]

let failed = ref 0

let print_figure build =
  let f = build () in
  Format.printf "%a@." Experiments.pp_figure f;
  failed := !failed + List.length (Experiments.failed_checks f)

(* ------------------------------------------------------------------ *)
(* Ablations (§3's safeguards removed, plus the §5 future-work throttle) *)

let print_ablations () =
  Format.printf
    "=== Ablations: the Figure 4 safeguards, under adversarial flag timing \
     ===@.";
  let base = Ulipc_machines.Sgi_challenge.machine in
  let racy =
    {
      base with
      costs =
        {
          base.Ulipc_machines.Machine.costs with
          flag_write = Ulipc_engine.Sim_time.us 20;
        };
    }
  in
  let run label iface =
    let cfg =
      Driver.config ~machine:racy ~kind:Ulipc.Protocol_kind.BSW ~nclients:2
        ~messages_per_client:3000 ?iface
        ~time_limit:(Ulipc_engine.Sim_time.sec 60) ()
    in
    match Driver.run_outcome cfg with
    | o ->
      Format.printf
        "%-24s %8.1f msg/ms   race-fix P: %5d   semaphore residue: %d@." label
        o.Driver.metrics.Metrics.throughput_msg_per_ms
        o.Driver.metrics.Metrics.counters.Ulipc.Counters.race_fix_p
        (Ulipc.Ablation.semaphore_residue o.Driver.session
           ~kernel:o.Driver.kernel)
    | exception Driver.Hung r ->
      Format.printf "%-24s %a  <- the race the safeguard prevents@." label
        Ulipc_os.Kernel.pp_result r
  in
  run "BSW (correct)" None;
  List.iter
    (fun v -> run (Ulipc.Ablation.name v) (Some (Ulipc.Ablation.iface v)))
    Ulipc.Ablation.[ No_second_dequeue; Plain_store_wake; Unconditional_wake ];
  Format.printf
    "@.=== Extension: overload-aware BSLS (the §5 future-work sketch) ===@.";
  Format.printf
    "8-CPU Challenge, BSLS(5); the throttle defers wake-ups behind an \
     admission window@.";
  List.iter
    (fun n ->
      let plain =
        Driver.run
          (Driver.config ~machine:Ulipc_machines.Sgi_challenge.machine
             ~kind:(Ulipc.Protocol_kind.BSLS 5) ~nclients:n
             ~messages_per_client:3000 ())
      in
      let st = Ulipc.Bsls_throttle.server_state ~max_pending:4 in
      let throttled =
        Driver.run
          (Driver.config ~machine:Ulipc_machines.Sgi_challenge.machine
             ~kind:(Ulipc.Protocol_kind.BSLS 5)
             ~iface:(Ulipc.Bsls_throttle.iface ~max_spin:5 st)
             ~nclients:n ~messages_per_client:3000 ())
      in
      Format.printf
        "  %2d clients: plain %7.1f msg/ms   throttled %7.1f msg/ms@." n
        plain.Metrics.throughput_msg_per_ms
        throttled.Metrics.throughput_msg_per_ms)
    [ 4; 8; 10; 12 ]

(* ------------------------------------------------------------------ *)
(* Beyond the paper: server architectures (2.1 discussion, 8 future
   work) and latency under offered load *)

let print_arch () =
  Format.printf
    "=== Server architectures on the 8-CPU Challenge (BSLS(10) unless \
     noted) ===@.";
  Format.printf
    "single-queue is the paper's design; thread-per-client is the \
     alternative@.of 2.1; multi-server shares one queue among k threads \
     and pays CSEM's per-item grants@.";
  List.iter
    (fun architecture ->
      List.iter
        (fun nclients ->
          let r =
            Arch.run ~machine:Ulipc_machines.Sgi_challenge.machine
              ~kind:(Ulipc.Protocol_kind.BSLS 10) ~architecture ~nclients
              ~messages_per_client:3000 ()
          in
          Format.printf "  %a@." Arch.pp_result r)
        [ 2; 4; 6 ])
    [ Arch.Single_queue; Arch.Thread_per_client; Arch.Multi_server 2;
      Arch.Multi_server 4 ];
  Format.printf "@."

let print_load () =
  Format.printf
    "=== Latency under offered load (sgi-indy, 4 clients, idle think time) \
     ===@.";
  Format.printf
    "The regime the paper motivates but does not measure: blocking wins \
     latency,@.throughput AND CPU when arrivals are sparse on a \
     uniprocessor.@.";
  let think_means =
    Ulipc_engine.Sim_time.[ ms 5; ms 2; ms 1; us 400; us 150 ]
  in
  List.iter
    (fun kind ->
      Format.printf "--- %s ---@." (Ulipc.Protocol_kind.name kind);
      List.iter
        (fun p -> Format.printf "  %a@." Openloop.pp_point p)
        (Openloop.sweep ~machine:Ulipc_machines.Sgi_indy.machine ~kind
           ~nclients:4 ~messages_per_client:1500 ~think_means ()))
    Ulipc.Protocol_kind.[ BSS; BSW; BSLS 10 ];
  Format.printf "@."

let print_noise () =
  Format.printf
    "=== Background load (BSLS(20), sgi-indy): the 4.2 statistics under \
     noise ===@.";
  List.iter
    (fun (label, noise) ->
      List.iter
        (fun nclients ->
          let m =
            Driver.run
              (Driver.config ~machine:Ulipc_machines.Sgi_indy.machine
                 ~kind:(Ulipc.Protocol_kind.BSLS 20) ~nclients
                 ~messages_per_client:4000 ?noise ())
          in
          let c = m.Metrics.counters in
          let sends = max 1 m.Metrics.messages in
          Format.printf
            "  %-12s n=%d  %6.2f msg/ms  blocks %4.1f%%  poll iters/send \
             %.1f@."
            label nclients m.Metrics.throughput_msg_per_ms
            (100.0
            *. float_of_int c.Ulipc.Counters.spin_fallthroughs
            /. float_of_int sends)
            (float_of_int c.Ulipc.Counters.spin_iterations
            /. float_of_int sends))
        [ 1; 6 ])
    [
      ("quiet", None);
      ("daemons", Some (Noise.config ()));
      ( "heavy",
        Some
          (Noise.config ~procs:3
             ~busy_mean:(Ulipc_engine.Sim_time.ms 1)
             ~idle_mean:(Ulipc_engine.Sim_time.ms 6) ()) );
    ];
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the real-domains primitives *)

let transports = Ulipc_real.Real_substrate.[ Two_lock; Ring ]
let transport_name = Ulipc_real.Real_substrate.transport_name

let micro_tests () =
  let open Bechamel in
  let queue_pair =
    Test.make_with_resource ~name:"tl_queue enqueue+dequeue" Test.uniq
      ~allocate:(fun () -> Ulipc_real.Tl_queue.create ~capacity:64 ())
      ~free:ignore
      (Staged.stage (fun q ->
           ignore (Ulipc_real.Tl_queue.enqueue q 1 : bool);
           ignore (Ulipc_real.Tl_queue.dequeue q : int option)))
  in
  let spsc_pair =
    Test.make_with_resource ~name:"spsc_ring enqueue+dequeue" Test.uniq
      ~allocate:(fun () -> Ulipc_real.Spsc_ring.create ~capacity:64 ())
      ~free:ignore
      (Staged.stage (fun q ->
           ignore (Ulipc_real.Spsc_ring.enqueue q 1 : bool);
           ignore (Ulipc_real.Spsc_ring.dequeue q : int)))
  in
  let mpsc_pair =
    Test.make_with_resource ~name:"mpsc_ring enqueue+dequeue" Test.uniq
      ~allocate:(fun () -> Ulipc_real.Mpsc_ring.create ~capacity:64 ())
      ~free:ignore
      (Staged.stage (fun q ->
           ignore (Ulipc_real.Mpsc_ring.enqueue q 1 : bool);
           ignore (Ulipc_real.Mpsc_ring.dequeue q : int)))
  in
  let slab_pair =
    Test.make_with_resource ~name:"slab alloc+release" Test.uniq
      ~allocate:(fun () -> Ulipc_real.Slab.create ~slots:64 ())
      ~free:ignore
      (Staged.stage (fun s ->
           Ulipc_real.Slab.release s (Ulipc_real.Slab.try_alloc s)))
  in
  (* Batch rows push 8 messages per span claim (the ring rows through
     flat array spans, a shared scratch is fine single-threaded); ns/op
     is divided by 8 after analysis (micro_rows) so the row reads per
     message, directly comparable with the single-op row above it. *)
  let eight_list = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let eight = [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  let scratch8 = Array.make 8 0 in
  let queue_batch =
    Test.make_with_resource ~name:"tl_queue batch-8 enqueue+dequeue"
      Test.uniq
      ~allocate:(fun () -> Ulipc_real.Tl_queue.create ~capacity:64 ())
      ~free:ignore
      (Staged.stage (fun q ->
           ignore (Ulipc_real.Tl_queue.enqueue_batch q eight_list : int);
           ignore (Ulipc_real.Tl_queue.dequeue_batch q ~max:8 : int list)))
  in
  let spsc_batch =
    Test.make_with_resource ~name:"spsc_ring batch-8 enqueue+dequeue"
      Test.uniq
      ~allocate:(fun () -> Ulipc_real.Spsc_ring.create ~capacity:64 ())
      ~free:ignore
      (Staged.stage (fun q ->
           ignore (Ulipc_real.Spsc_ring.enqueue_batch q eight ~pos:0 ~len:8 : int);
           ignore
             (Ulipc_real.Spsc_ring.dequeue_batch q scratch8 ~pos:0 ~max:8 : int)))
  in
  (* Torquati multipush: eight producer-local appends, one index
     publish (the eighth append auto-flushes at the buffer bound). *)
  let spsc_multipush =
    Test.make_with_resource ~name:"spsc_ring multipush-8 local+flush+dequeue"
      Test.uniq
      ~allocate:(fun () -> Ulipc_real.Spsc_ring.create ~capacity:64 ())
      ~free:ignore
      (Staged.stage (fun q ->
           for v = 1 to 8 do
             ignore (Ulipc_real.Spsc_ring.enqueue_local q v : bool)
           done;
           ignore (Ulipc_real.Spsc_ring.flush q : bool);
           ignore
             (Ulipc_real.Spsc_ring.dequeue_batch q scratch8 ~pos:0 ~max:8 : int)))
  in
  let mpsc_batch =
    Test.make_with_resource ~name:"mpsc_ring batch-8 enqueue+dequeue"
      Test.uniq
      ~allocate:(fun () -> Ulipc_real.Mpsc_ring.create ~capacity:64 ())
      ~free:ignore
      (Staged.stage (fun q ->
           ignore (Ulipc_real.Mpsc_ring.enqueue_batch q eight ~pos:0 ~len:8 : int);
           ignore
             (Ulipc_real.Mpsc_ring.dequeue_batch q scratch8 ~pos:0 ~max:8 : int)))
  in
  let sem_pair =
    Test.make_with_resource ~name:"rsem V+P" Test.uniq
      ~allocate:(fun () -> Ulipc_real.Rsem.create 0)
      ~free:ignore
      (Staged.stage (fun s ->
           Ulipc_real.Rsem.v s;
           Ulipc_real.Rsem.p s))
  in
  let sem_vn =
    Test.make_with_resource ~name:"rsem batch-8 v_n+P" Test.uniq
      ~allocate:(fun () -> Ulipc_real.Rsem.create 0)
      ~free:ignore
      (Staged.stage (fun s ->
           Ulipc_real.Rsem.v_n s 8;
           for _ = 1 to 8 do
             Ulipc_real.Rsem.p s
           done))
  in
  let tas =
    Test.make_with_resource ~name:"atomic exchange (tas)" Test.uniq
      ~allocate:(fun () -> Atomic.make false)
      ~free:ignore
      (Staged.stage (fun f -> ignore (Atomic.exchange f true : bool)))
  in
  let round_trip name transport waiting =
    (* Resource: a live echo server domain on the in-place [serve] path
       (the zero-allocation server turn); -1 asks it to exit.  Immediate
       int codecs keep the payload in the slot's unboxed data field, so
       the measured round-trip is the index-passing hot path. *)
    let name = Printf.sprintf "%s [%s]" name (transport_name transport) in
    Test.make_with_resource ~name Test.uniq
      ~allocate:(fun () ->
        let t : (int, int) Ulipc_real.Rpc.t =
          Ulipc_real.Rpc.create ~transport ~req_codec:Ulipc_real.Rpc.int_codec
            ~rep_codec:Ulipc_real.Rpc.int_codec ~nclients:1 waiting
        in
        let d =
          Domain.spawn (fun () ->
              (* Bind the handler once: a closure built inside the loop
                 would be allocated per serve turn. *)
              let stop = ref false in
              let handler ~client:_ v =
                if v = -1 then stop := true;
                v + 1
              in
              while not !stop do
                Ulipc_real.Rpc.serve t handler
              done)
        in
        (t, d))
      ~free:(fun (t, d) ->
        ignore (Ulipc_real.Rpc.send t ~client:0 (-1) : int);
        Domain.join d)
      (Staged.stage (fun ((t, _) : (int, int) Ulipc_real.Rpc.t * unit Domain.t) ->
           ignore (Ulipc_real.Rpc.send t ~client:0 42 : int)))
  in
  [
    queue_pair; queue_batch; spsc_pair; spsc_batch; spsc_multipush; mpsc_pair;
    mpsc_batch; slab_pair; sem_pair; sem_vn; tas;
  ]
  @ List.concat_map
      (fun transport ->
        [
          round_trip "round-trip, spin (BSS)" transport Ulipc_real.Rpc.Spin;
          round_trip "round-trip, block (BSW)" transport Ulipc_real.Rpc.Block;
          round_trip "round-trip, block+yield (BSWY)" transport
            Ulipc_real.Rpc.Block_yield;
          round_trip "round-trip, limited spin (BSLS)" transport
            (Ulipc_real.Rpc.Limited_spin 500);
          round_trip "round-trip, adaptive (ADAPT)" transport
            (Ulipc_real.Rpc.Adaptive 4096);
          round_trip "round-trip, handoff" transport Ulipc_real.Rpc.Handoff;
        ])
      transports

(* [(bechamel name, ns/op)] rows, sorted by name.  In quick mode the
   quota drops from 500 ms to 50 ms per test and GC stabilisation is
   skipped: noisier numbers, but the whole sweep fits in CI time. *)
let micro_rows ~quick () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    if quick then
      Benchmark.cfg ~limit:300 ~quota:(Time.second 0.05) ~stabilize:false ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let tests = Test.make_grouped ~name:"real" (micro_tests ()) in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> (name, t) :: acc
        | Some [] | None -> acc)
      results []
  in
  (* Batch and multipush tests move 8 messages per run: report them per
     message. *)
  let per_message (name, ns) =
    let contains sub =
      let n = String.length name and k = String.length sub in
      let rec scan i = i + k <= n && (String.sub name i k = sub || scan (i + 1)) in
      scan 0
    in
    if contains "batch-8" || contains "multipush-8" then (name, ns /. 8.0)
    else (name, ns)
  in
  List.sort compare (List.map per_message rows)

(* The same protocol-event counters the simulator reports, now measured on
   the real backend — over both transports, so every run records the
   two-lock-vs-ring comparison.  [(transport, metrics)] rows. *)
let real_rows ~quick () =
  let messages = if quick then 300 else 2_000 in
  List.concat_map
    (fun transport ->
      let row ?depth waiting =
        ( transport,
          Real_driver.run
            ~machine:(transport_name transport)
            ~transport ?depth ~nclients:2 ~messages waiting )
      in
      List.map row
        Ulipc_real.Rpc.[ Block; Block_yield; Limited_spin 50; Handoff;
                         Adaptive 4096 ]
      (* The pipelined fast path: same protocols, depth-8 windows over
         the batched enqueue/dequeue/wake operations. *)
      @ List.map (row ~depth:8)
          Ulipc_real.Rpc.[ Block; Adaptive 4096 ])
    transports

(* The F2/F11-scale client-count sweep on the sharded server fleet (ring
   transport): per-client throughput of the blocking protocols should
   stay near-flat as the population grows — the paper's Figure 2 shape —
   while limited spinning collapses once spinners outnumber processors,
   the Figure 11 cliff (EXPERIMENTS.md records the observed collapse
   point).  Full mode sweeps 2 → 512 logical clients against a 4-server
   pool with a fixed total message budget, so every cell costs about the
   same wall time; quick mode is the CI smoke — a small client sweep
   crossed with pool sizes 1 and 4, enough to key rows by
   (nclients, nservers) and exercise stealing without the long tail. *)
let sweep_rows ~quick () =
  let nclients_list = if quick then [ 2; 8; 32 ] else [ 2; 8; 32; 128; 512 ] in
  let nservers_list = if quick then [ 1; 4 ] else [ 4 ] in
  let budget = if quick then 512 else 8192 in
  let protocols =
    Ulipc_real.Rpc.[ Block; Block_yield; Limited_spin 50; Adaptive 4096 ]
  in
  List.concat_map
    (fun nservers ->
      List.concat_map
        (fun nclients ->
          let messages = max 4 (budget / nclients) in
          List.map
            (fun waiting ->
              ( Ulipc_real.Real_substrate.Ring,
                Real_driver.run
                  ~machine:(transport_name Ulipc_real.Real_substrate.Ring)
                  ~nservers ~nclients ~messages waiting ))
            protocols)
        nclients_list)
    nservers_list

(* Cross-process rows: the paper's protocols over the mmap'd arena
   (fork'd processes, futex-backed semaphores — lib/procipc), raced
   against the kernel-IPC baselines on the same machine: a pipe pair
   and a Unix-domain socketpair, the FreeBSD-ladder comparison of
   arXiv:2008.02145.  All rows are 1 client / 1 server so round-trip
   latency is the honest head-to-head; the depth-8 row shows the
   pipelining win when the protocol overlaps requests.  The fd
   baselines block in read/select — the kernel's own sleep/wake-up —
   so shm beating pipe is user-level wake-up beating kernel wake-up on
   identical semantics, the paper's thesis measured cross-process. *)
let proc_rows ~quick () =
  let messages = if quick then 400 else 4_000 in
  let shm ?depth waiting =
    ( "proc",
      "shm",
      Proc_driver.run ~machine:"shm" ?depth ~nclients:1 ~messages waiting )
  in
  let fd transport =
    let name = Proc_driver.fd_transport_name transport in
    ( "proc",
      name,
      Proc_driver.run_fd ~machine:name ~transport ~nclients:1 ~messages () )
  in
  List.map
    (fun w -> shm w)
    Ulipc_real.Rpc.[ Spin; Block; Block_yield; Limited_spin 50; Adaptive 4096;
                     Handoff ]
  @ [ shm ~depth:8 Ulipc_real.Rpc.Block ]
  @ [ fd Proc_driver.Fd_pipe; fd Proc_driver.Fd_socket ]

(* Directed-wake-latency sweep for the waiting-array semaphore: the
   population grows 2 -> 512 (2 -> 64 in quick mode: CI hosts schedule
   hundreds of systhreads too noisily for a smoke gate) while each
   credit still wakes exactly one waiter through its private slot.  The
   row the analysis must show flat is p99: a global-mutex slow path
   degrades with population, a waiting array does not. *)
let sem_rows ~quick () =
  let populations = if quick then [ 2; 8; 64 ] else [ 2; 8; 64; 512 ] in
  let target_samples = if quick then 512 else 2048 in
  List.map
    (fun waiters -> Sem_bench.wake_latency ~target_samples ~waiters ())
    populations

let print_micro ~quick ~json () =
  (* The cross-process rows run before ANYTHING spawns a domain:
     fork() from a process whose heap and thread table still carry the
     residue of hundreds of bechamel/sweep domains is both slower
     (COW-copying a grown heap per child) and riskier (only the
     forking thread survives in the child; a runtime lock held by any
     other systhread at fork time deadlocks it).  At this point the
     process is single-threaded and the heap is a few megabytes. *)
  Format.printf
    "=== Cross-process echo: shm arena + futex vs pipe vs socket (fork'd, 1 \
     client) ===@.";
  let proc = proc_rows ~quick () in
  List.iter
    (fun (_, transport, m) ->
      Format.printf "%-7s %a@.%a@.@." transport Metrics.pp_row m
        Ulipc.Counters.pp m.Metrics.counters)
    proc;
  (* The sem sweep runs next, before bechamel and the fleet sweep: its
     p99 flatness claim is about the semaphore, and on a 1-CPU host the
     hundreds of domains the fleet sweep spawns leave the process with a
     grown, fragmented heap whose cold-page faults inflate the large-
     population tails by ~3x — state pollution, not wake discipline. *)
  Format.printf
    "=== Semaphore directed wake latency (waiting array, 1 credit = 1 \
     wake) ===@.";
  let sem = sem_rows ~quick () in
  List.iter
    (fun (r : Sem_bench.result) ->
      Format.printf
        "%4d waiters  %4d samples  p50 %8.2f us  p99 %8.2f us  max %8.2f us  \
         violations %d@."
        r.Sem_bench.waiters
        (Array.length r.Sem_bench.samples)
        r.Sem_bench.p50_us r.Sem_bench.p99_us r.Sem_bench.max_us
        r.Sem_bench.violations)
    sem;
  Format.printf "@.";
  Format.printf
    "=== Real-hardware micro-benchmarks (OCaml domains, Bechamel) ===@.";
  Format.printf
    "The modern analogue of Table 1: user-level queue ops vs blocking.@.";
  let micro = micro_rows ~quick () in
  List.iter
    (fun (name, ns) -> Format.printf "%-50s %10.1f ns/op@." name ns)
    micro;
  Format.printf "@.";
  Format.printf
    "--- real-domains echo runs (same counter fields as simulated runs) \
     ---@.";
  let real = real_rows ~quick () in
  List.iter
    (fun (_, m) ->
      Format.printf "%a@.%a@.@." Metrics.pp_row m Ulipc.Counters.pp
        m.Metrics.counters)
    real;
  Format.printf
    "--- client-count sweep on the sharded fleet (F2/F11 scale) ---@.";
  let sweep = sweep_rows ~quick () in
  List.iter
    (fun (_, m) ->
      let per_client =
        m.Metrics.throughput_msg_per_ms /. float_of_int m.Metrics.nclients
      in
      Format.printf "%a  per-client %8.4f msg/ms  util %3.0f%%/%3.0f%%@."
        Metrics.pp_row m per_client
        (100.0 *. m.Metrics.utilization)
        (100.0 *. m.Metrics.utilization_max))
    sweep;
  Format.printf "@.";
  let inproc =
    List.map (fun (tr, m) -> ("inproc", transport_name tr, m)) (real @ sweep)
  in
  match json with
  | None -> ()
  | Some path ->
    Bench_json.write ~path ~quick ~micro ~sem ~real:(inproc @ proc) ();
    Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split_json acc = function
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | [ "--json" ] ->
      prerr_endline "bench: --json requires a path";
      exit 2
    | a :: rest -> split_json (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json, args = split_json [] args in
  let quick = List.mem "quick" args in
  let messages = if quick then 2_000 else Experiments.messages_default in
  let builders = figure_builders messages in
  let args = List.filter (fun a -> a <> "quick") args in
  let sections =
    if args = [] then
      [ "table1"; "figs"; "ablations"; "arch"; "load"; "noise"; "micro" ]
    else args
  in
  (* --json data comes from the micro section; make sure it runs. *)
  let sections =
    if json <> None && not (List.mem "micro" sections) then
      sections @ [ "micro" ]
    else sections
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun section ->
      match section with
      | "table1" -> print_table1 ()
      | "figs" -> List.iter (fun (_, b) -> print_figure b) builders
      | "ablations" -> print_ablations ()
      | "arch" -> print_arch ()
      | "load" -> print_load ()
      | "noise" -> print_noise ()
      | "micro" -> print_micro ~quick ~json ()
      | id when List.mem_assoc id builders ->
        print_figure (List.assoc id builders)
      | other ->
        Format.printf
          "unknown section %S (table1, figs, ablations, arch, load, noise, micro, quick, --json <path>, %s)@."
          other
          (String.concat ", " (List.map fst builders)))
    sections;
  Format.printf "=== done in %.1fs; %d shape check(s) failed ===@."
    (Unix.gettimeofday () -. t0)
    !failed;
  if !failed > 0 then exit 1
