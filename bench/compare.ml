(* Perf-regression gate over BENCH_real.json files.

     dune exec bench/compare.exe -- BASELINE.json CURRENT.json [--factor F]

   Reads the micro_ns_per_op rows of both files (the exact line-per-row
   layout Bench_json.write emits — this is a purpose-built scanner, not
   a JSON parser; field lookups take the FIRST occurrence of a key in
   the line, which schema /9 preserves by emitting the embedded
   telemetry "series" — whose point names shadow row keys like
   "messages" — as the last key of every row) and fails with exit code 1 if
   any row present in both is more than F times slower in CURRENT than in
   BASELINE (default F = 3: wide enough to absorb quick-mode noise and
   shared-CI jitter, tight enough to catch a lost fast path).  Rows whose
   baseline already sits at 1 µs or more are scheduler-bound (round-trips
   through sleep/wake on a time-shared core, where a single descheduled
   trial shows up as an 8-10x outlier), so they get 3F instead — still
   far under the 75x of the original BSS pathology.

   The real_driver rows gate too: every echo/sweep row is keyed by
   (backend, transport, protocol, nclients, nservers, depth) — backend
   defaults to "inproc" for pre-/8 baselines — and its saturation
   throughput (msg/ms) must not fall below baseline/3F — the whole row
   class is scheduler-bound, hence the wide factor; what the gate exists
   to catch is the order-of-magnitude cliff of a sharding or stealing
   bug serialising the fleet.  Throughput on these rows depends on the
   per-cell message budget (a 512-message quick cell is startup-
   dominated where an 8192-message full cell is steady-state), so the
   two sections must be gated against *like-mode* baselines: CI runs
   this per-section, `--micro-only` against the committed full-mode
   BENCH_real.json and `--real-only` against the committed quick-mode
   BENCH_quick.json.  Real rows whose baseline sits below 1 msg/ms are
   reported but not gated (pure scheduler thrash — 100+ domains round-
   robin on a shared runner; run-to-run spread there exceeds any
   sane limit).  Rows missing on either side, or null on either side,
   are reported but never fatal — adding or renaming a benchmark (or
   widening the sweep grid) must not break the gate.

   The sem_wake_latency rows (schema /7) gate the waiting-array
   semaphore's directed wake path: per waiter population, the p99
   V->woken-waiter-runs latency must not exceed 3F times baseline —
   the micro gate's scheduler-bound tier, because every sample crosses
   a sleep/wake through the OS scheduler.  `--wake-only` selects just
   this section; like the real rows it needs a like-mode baseline
   (quick vs quick), and a trace violation in the current file is
   itself fatal — a lost wake-up is a bug, not noise.

   `--proc-only FILE` (single file, schema /8) is an absolute gate, not
   a baseline comparison: every backend=proc shm row's round-trip
   latency must beat the pipe baseline row in the SAME file — the
   tentpole claim that user-level sleep/wake-up over a shared arena
   beats the kernel's pipe path on identical blocking semantics.  It
   is absolute because it compares two transports measured seconds
   apart on the same host, so host speed divides out. *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* Extract the string after [key] up to the closing quote, if present. *)
let string_field line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  match
    let n = String.length line and k = String.length pat in
    let rec scan i =
      if i + k > n then None
      else if String.sub line i k = pat then Some (i + k)
      else scan (i + 1)
    in
    scan 0
  with
  | None -> None
  | Some start -> (
    match String.index_from_opt line start '"' with
    | None -> None
    | Some stop -> Some (String.sub line start (stop - start)))

(* Extract the number (or null) after [key]. *)
let float_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let n = String.length line and k = String.length pat in
  let rec scan i =
    if i + k > n then None
    else if String.sub line i k = pat then Some (i + k)
    else scan (i + 1)
  in
  match scan 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < n
      && match line.[!stop] with
         | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
         | _ -> false
    do
      incr stop
    done;
    if !stop = start then None (* "null" or malformed *)
    else float_of_string_opt (String.sub line start (!stop - start))

(* [(name, ns_per_op)] rows of the micro section. *)
let micro_rows path =
  let in_micro = ref false in
  List.filter_map
    (fun line ->
      if !in_micro && String.trim line = "]," then in_micro := false;
      if String.length (String.trim line) >= 18
         && String.trim line = "\"micro_ns_per_op\": ["
      then in_micro := true;
      (* row lines carry both a name and ns_per_op *)
      if not !in_micro then None
      else
        match (string_field line "name", float_field line "ns_per_op") with
        | Some name, Some ns -> Some (name, ns)
        | _ -> None)
    (read_lines path)

(* [(key, throughput_msg_per_ms option)] rows of the real_driver section,
   keyed by everything that identifies a sweep cell.  Bench_json writes
   one row per line, so the same line scanner applies. *)
let real_rows path =
  let in_real = ref false in
  List.filter_map
    (fun line ->
      if !in_real && String.trim line = "]" then in_real := false;
      if String.trim line = "\"real_driver\": [" then in_real := true;
      if not !in_real then None
      else
        let backend =
          (* schema /7 and earlier predate the cross-process backend *)
          Option.value (string_field line "backend") ~default:"inproc"
        in
        match
          ( string_field line "transport",
            string_field line "protocol",
            float_field line "nclients",
            float_field line "nservers",
            float_field line "depth" )
        with
        | Some transport, Some protocol, Some nclients, Some nservers,
          Some depth ->
          let key =
            Printf.sprintf "%s %s %s %dc %ds d%d" backend transport protocol
              (int_of_float nclients) (int_of_float nservers)
              (int_of_float depth)
          in
          Some (key, float_field line "throughput_msg_per_ms")
        | Some transport, Some protocol, Some nclients, None, Some depth ->
          (* schema /5 baselines predate the server pool: one server *)
          let key =
            Printf.sprintf "%s %s %s %dc 1s d%d" backend transport protocol
              (int_of_float nclients) (int_of_float depth)
          in
          Some (key, float_field line "throughput_msg_per_ms")
        | _ -> None)
    (read_lines path)

(* [(transport, protocol, depth, round_trip_us option)] rows of the
   backend=proc real_driver section — the input of the absolute
   shm-beats-pipe gate. *)
let proc_rt_rows path =
  let in_real = ref false in
  List.filter_map
    (fun line ->
      if !in_real && String.trim line = "]" then in_real := false;
      if String.trim line = "\"real_driver\": [" then in_real := true;
      if not !in_real then None
      else if string_field line "backend" <> Some "proc" then None
      else
        match
          ( string_field line "transport",
            string_field line "protocol",
            float_field line "depth" )
        with
        | Some transport, Some protocol, Some depth ->
          Some
            ( transport,
              protocol,
              int_of_float depth,
              float_field line "round_trip_us" )
        | _ -> None)
    (read_lines path)

(* The absolute cross-process gate: every shm row beats the pipe
   baseline row of the same file on round-trip latency.  Exit 2 when
   the file has no proc rows at all (wrong file, or the bench section
   silently skipped) so CI can't pass vacuously. *)
let proc_gate path =
  let rows = proc_rt_rows path in
  let rt_of transport =
    List.filter_map
      (fun (tr, _, _, rt) -> if tr = transport then rt else None)
      rows
  in
  match rt_of "pipe" with
  | [] ->
    Printf.eprintf "compare: no backend=proc pipe row in %s\n" path;
    exit 2
  | pipe_rts -> (
    let pipe_rt = List.fold_left min infinity pipe_rts in
    let shm = List.filter (fun (tr, _, _, _) -> tr = "shm") rows in
    if shm = [] then (
      Printf.eprintf "compare: no backend=proc shm rows in %s\n" path;
      exit 2);
    let losses = ref 0 in
    List.iter
      (fun (_, protocol, depth, rt) ->
        match rt with
        | None ->
          incr losses;
          Printf.printf "  NULL      shm %s d%d (no round_trip_us)\n" protocol
            depth
        | Some rt ->
          let flag =
            if rt < pipe_rt then "ok"
            else (
              incr losses;
              "LOST")
          in
          Printf.printf "  %-9s shm %-11s d%-2d %10.2f us  vs pipe %10.2f us  (x%.2f)\n"
            flag protocol depth rt pipe_rt (rt /. pipe_rt))
      shm;
    (match rt_of "socket" with
    | s :: _ -> Printf.printf "  (socket baseline: %.2f us)\n" s
    | [] -> ());
    if !losses > 0 then (
      Printf.printf
        "compare: %d shm row(s) fail to beat the pipe baseline (%.2f us)\n"
        !losses pipe_rt;
      exit 1)
    else
      Printf.printf "compare: all %d shm rows beat the pipe baseline (%.2f us)\n"
        (List.length shm) pipe_rt)

(* [(waiters, (p99_us option, violations))] rows of the sem_wake_latency
   section. *)
let sem_rows path =
  let in_sem = ref false in
  List.filter_map
    (fun line ->
      if !in_sem && String.trim line = "]," then in_sem := false;
      if String.trim line = "\"sem_wake_latency\": [" then in_sem := true;
      if not !in_sem then None
      else
        match (float_field line "waiters", float_field line "violations") with
        | Some waiters, Some violations ->
          Some
            ( int_of_float waiters,
              (float_field line "p99_us", int_of_float violations) )
        | _ -> None)
    (read_lines path)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let micro_on = ref true and real_on = ref true and wake_on = ref true in
  let proc_on = ref false in
  let rec split_factor acc = function
    | "--factor" :: f :: rest -> (float_of_string f, List.rev_append acc rest)
    | "--micro-only" :: rest ->
      real_on := false;
      wake_on := false;
      split_factor acc rest
    | "--real-only" :: rest ->
      micro_on := false;
      wake_on := false;
      split_factor acc rest
    | "--wake-only" :: rest ->
      micro_on := false;
      real_on := false;
      split_factor acc rest
    | "--proc-only" :: rest ->
      proc_on := true;
      split_factor acc rest
    | a :: rest -> split_factor (a :: acc) rest
    | [] -> (3.0, List.rev acc)
  in
  let factor, paths = split_factor [] args in
  match paths with
  | [ path ] when !proc_on -> proc_gate path
  | [ baseline_path; current_path ] ->
    let baseline = if !micro_on then micro_rows baseline_path else [] in
    let current = if !micro_on then micro_rows current_path else [] in
    if !micro_on && baseline = [] then (
      Printf.eprintf "compare: no micro rows in %s\n" baseline_path;
      exit 2);
    if !micro_on && current = [] then (
      Printf.eprintf "compare: no micro rows in %s\n" current_path;
      exit 2);
    let regressions = ref 0 in
    List.iter
      (fun (name, base_ns) ->
        match List.assoc_opt name current with
        | None -> Printf.printf "  MISSING %-52s (baseline %.1f ns)\n" name base_ns
        | Some cur_ns ->
          let ratio = if base_ns > 0.0 then cur_ns /. base_ns else nan in
          let limit = if base_ns >= 1000.0 then factor *. 3.0 else factor in
          let flag =
            if Float.is_finite ratio && ratio > limit then (
              incr regressions;
              "REGRESSED")
            else "ok"
          in
          Printf.printf "  %-9s %-52s %10.1f -> %10.1f ns  (x%.2f)\n" flag
            name base_ns cur_ns ratio)
      baseline;
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name baseline) then
          Printf.printf "  NEW       %s\n" name)
      current;
    (* Saturation-throughput gate over the echo/sweep rows: throughput
       is higher-better, so the failing direction is CURRENT falling
       below BASELINE / limit.  Baselines under 1 msg/ms are reported
       as NOISY but never gated. *)
    let base_real = if !real_on then real_rows baseline_path else [] in
    let cur_real = if !real_on then real_rows current_path else [] in
    if !real_on && base_real = [] then (
      Printf.eprintf "compare: no real_driver rows in %s\n" baseline_path;
      exit 2);
    let limit = factor *. 3.0 in
    List.iter
      (fun (key, base_tp) ->
        match (base_tp, List.assoc_opt key cur_real) with
        | None, _ -> ()
        | Some tp, None ->
          Printf.printf "  MISSING %-52s (baseline %.2f msg/ms)\n" key tp
        | Some _, Some None ->
          Printf.printf "  NULL      %s\n" key
        | Some base_tp, Some (Some cur_tp) ->
          let ratio = if cur_tp > 0.0 then base_tp /. cur_tp else infinity in
          let flag =
            if not (Float.is_finite base_tp) then "ok"
            else if base_tp < 1.0 then "NOISY"
            else if ratio > limit then (
              incr regressions;
              "REGRESSED")
            else "ok"
          in
          Printf.printf
            "  %-9s %-52s %10.2f -> %10.2f msg/ms  (x%.2f)\n" flag key
            base_tp cur_tp ratio)
      base_real;
    List.iter
      (fun (key, _) ->
        if not (List.mem_assoc key base_real) then
          Printf.printf "  NEW       %s\n" key)
      cur_real;
    (* Directed-wake-latency gate: p99 is lower-better like the micro
       rows, and every sample crosses the OS scheduler, so the limit is
       the micro gate's scheduler-bound tier (3F).  A trace violation
       in the current file fails outright: the causal analysis found a
       lost or misdirected wake-up. *)
    let base_sem = if !wake_on then sem_rows baseline_path else [] in
    let cur_sem = if !wake_on then sem_rows current_path else [] in
    if !wake_on && base_sem = [] then (
      Printf.eprintf "compare: no sem_wake_latency rows in %s\n" baseline_path;
      exit 2);
    if !wake_on && cur_sem = [] then (
      Printf.eprintf "compare: no sem_wake_latency rows in %s\n" current_path;
      exit 2);
    let limit = factor *. 3.0 in
    List.iter
      (fun (waiters, (base_p99, _)) ->
        let key = Printf.sprintf "sem wake p99, %d waiters" waiters in
        match (base_p99, List.assoc_opt waiters cur_sem) with
        | None, _ -> ()
        | Some p99, None ->
          Printf.printf "  MISSING %-52s (baseline %.2f us)\n" key p99
        | Some _, Some (None, _) -> Printf.printf "  NULL      %s\n" key
        | Some base_p99, Some (Some cur_p99, cur_viol) ->
          let ratio = if base_p99 > 0.0 then cur_p99 /. base_p99 else nan in
          let flag =
            if cur_viol > 0 then (
              incr regressions;
              "VIOLATED")
            else if Float.is_finite ratio && ratio > limit then (
              incr regressions;
              "REGRESSED")
            else "ok"
          in
          Printf.printf "  %-9s %-52s %10.2f -> %10.2f us  (x%.2f)\n" flag key
            base_p99 cur_p99 ratio)
      base_sem;
    List.iter
      (fun (waiters, _) ->
        if not (List.mem_assoc waiters base_sem) then
          Printf.printf "  NEW       sem wake p99, %d waiters\n" waiters)
      cur_sem;
    if !regressions > 0 then (
      Printf.printf "compare: %d row(s) regressed beyond %.1fx\n" !regressions
        factor;
      exit 1)
    else Printf.printf "compare: no regression beyond %.1fx\n" factor
  | _ ->
    prerr_endline
      "usage: compare BASELINE.json CURRENT.json [--factor F] [--micro-only | \
       --real-only | --wake-only]   (default F = 3.0)\n\
      \       compare FILE.json --proc-only    (absolute shm-beats-pipe gate)";
    exit 2
