(* Live terminal dashboard over the telemetry plane: run one echo
   workload on the real-domains or cross-process backend with a
   [Telemetry.t] attached and repaint a small status screen from every
   sampled frame — throughput sparkline, current-window latency
   percentiles, per-shard queue depths, park/wake/steal rates.

     ulipc_top --backend real --protocol bsw --nclients 8
     ulipc_top --backend proc --protocol adapt:4096 --messages 50000
     ulipc_top --backend real --once --prometheus

   [--once] skips the live repaint (no ANSI, CI-safe), renders the final
   frame once after the run and prints the one-line summary; [--prometheus]
   appends the registry's text exposition — the same bytes a scrape
   endpoint would serve.  The dashboard is a pure consumer of the frame
   stream: everything it shows is in [Metrics.series] / BENCH_real.json
   rows too. *)

open Cmdliner
open Ulipc_workload
module T = Ulipc_observe.Telemetry
module S = Ulipc_observe.Series

type backend = Real | Proc

let backend_conv =
  let parse = function
    | "real" -> Ok Real
    | "proc" -> Ok Proc
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S (real, proc)" s))
  in
  let print ppf b =
    Format.pp_print_string ppf (match b with Real -> "real" | Proc -> "proc")
  in
  Arg.conv (parse, print)

(* Same spelling as ulipc_trace; SYSV/CSEM are sim-only and rejected by
   [waiting_of_kind] below. *)
let protocol_conv =
  let with_arg s prefix k =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      match int_of_string_opt (String.sub s n (String.length s - n)) with
      | Some v when v >= 0 -> Some (Ok (k v))
      | Some _ | None ->
        Some (Error (`Msg (prefix ^ "N needs a non-negative N")))
    else None
  in
  let parse s =
    match String.lowercase_ascii s with
    | "bss" -> Ok Ulipc.Protocol_kind.BSS
    | "bsw" -> Ok Ulipc.Protocol_kind.BSW
    | "bswy" -> Ok Ulipc.Protocol_kind.BSWY
    | "handoff" -> Ok Ulipc.Protocol_kind.HANDOFF
    | "bsls" -> Ok (Ulipc.Protocol_kind.BSLS 10)
    | "adapt" -> Ok (Ulipc.Protocol_kind.ADAPT 4096)
    | s -> (
      match
        ( with_arg s "bsls:" (fun n -> Ulipc.Protocol_kind.BSLS n),
          with_arg s "adapt:" (fun n -> Ulipc.Protocol_kind.ADAPT n) )
      with
      | Some r, _ | _, Some r -> r
      | None, None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown protocol %S (bss, bsw, bswy, bsls[:N], adapt[:N], \
                handoff)"
               s)))
  in
  Arg.conv (parse, Ulipc.Protocol_kind.pp)

let waiting_of_kind = function
  | Ulipc.Protocol_kind.BSS -> Ok Ulipc_real.Rpc.Spin
  | Ulipc.Protocol_kind.BSW -> Ok Ulipc_real.Rpc.Block
  | Ulipc.Protocol_kind.BSWY -> Ok Ulipc_real.Rpc.Block_yield
  | Ulipc.Protocol_kind.BSLS n -> Ok (Ulipc_real.Rpc.Limited_spin n)
  | Ulipc.Protocol_kind.ADAPT cap -> Ok (Ulipc_real.Rpc.Adaptive cap)
  | Ulipc.Protocol_kind.HANDOFF -> Ok Ulipc_real.Rpc.Handoff
  | (Ulipc.Protocol_kind.SYSV | Ulipc.Protocol_kind.CSEM) as k ->
    Error
      (Printf.sprintf "protocol %s has no real implementation"
         (Ulipc.Protocol_kind.name k))

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let spark_levels = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}";
                      "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]
[@@ocamlformat "disable"]

(* Throughput history for the sparkline: a little ring of the most
   recent per-window rates, oldest first when rendered. *)
let spark_width = 48

type hist = { cells : float array; mutable n : int }

let hist_push h v =
  h.cells.(h.n mod spark_width) <- v;
  h.n <- h.n + 1

let sparkline h =
  let len = min h.n spark_width in
  let cell i = h.cells.((h.n - len + i) mod spark_width) in
  let hi = ref 0.0 in
  for i = 0 to len - 1 do
    let v = cell i in
    if (not (Float.is_nan v)) && v > !hi then hi := v
  done;
  let b = Buffer.create (3 * spark_width) in
  for i = 0 to len - 1 do
    let v = cell i in
    if Float.is_nan v || v <= 0.0 || !hi <= 0.0 then Buffer.add_char b ' '
    else
      Buffer.add_string b
        spark_levels.(min 7 (int_of_float (v /. !hi *. 8.0)))
  done;
  Buffer.contents b

let fmt_us v =
  if Float.is_nan v then "   -  "
  else if v >= 10_000.0 then Printf.sprintf "%5.1fms" (v /. 1000.0)
  else Printf.sprintf "%6.1fus" v

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* One frame -> the status lines, appended to [buf].  Every line is
   driven by point lookups so the same renderer serves both backends:
   the proc plane has no latency histogram or steal counters and those
   lines simply shrink. *)
let render_frame buf ~header hist (f : S.frame) =
  let p name = S.point f name in
  let window_ms = f.S.window_us /. 1000.0 in
  let rate name =
    match p name with
    | Some d when window_ms > 0.0 -> Some (d /. window_ms)
    | _ -> None
  in
  let tput = Option.value ~default:0.0 (rate "messages") in
  hist_push hist tput;
  Printf.bprintf buf "%s\n" header;
  Printf.bprintf buf " tput %-*s %9.1f msg/ms\n" spark_width (sparkline hist)
    tput;
  (match (p "latency_us_p50", p "latency_us_p99", p "latency_us_max") with
  | Some p50, Some p99, Some mx ->
    Printf.bprintf buf " lat  p50 %s   p99 %s   max %s   (window n=%.0f)\n"
      (fmt_us p50) (fmt_us p99) (fmt_us mx)
      (Option.value ~default:0.0 (p "latency_us_count"))
  | _ -> ());
  let depths =
    List.filter
      (fun (n, _) -> starts_with ~prefix:"ring_depth_" n)
      (Array.to_list f.S.points)
  in
  if depths <> [] then begin
    Printf.bprintf buf " q   ";
    List.iter
      (fun (n, v) ->
        let shard =
          String.sub n 11 (String.length n - 11) (* after ring_depth_ *)
        in
        Printf.bprintf buf " [%s]=%.0f" shard v)
      depths;
    (match p "slab_in_use" with
    | Some v -> Printf.bprintf buf "   slab=%.0f" v
    | None -> ());
    (match p "trace_dropped" with
    | Some v when v > 0.0 -> Printf.bprintf buf "   trace_dropped=%.0f" v
    | _ -> ());
    Printf.bprintf buf "\n"
  end;
  let sum_rates names =
    List.fold_left
      (fun acc n ->
        match rate n with
        | Some r -> Some (Option.value ~default:0.0 acc +. r)
        | None -> acc)
      None names
  in
  let labelled =
    [
      ("parks", sum_rates [ "client_blocks"; "server_blocks" ]);
      ("wakes", sum_rates [ "client_wakeups"; "server_wakeups" ]);
      ("steals", sum_rates [ "steal_msgs" ]);
      ("backoff", sum_rates [ "backoff_sleeps" ]);
      ("sem_parks", sum_rates [ "sem_parks" ]);
    ]
  in
  let shown = List.filter (fun (_, r) -> r <> None) labelled in
  if shown <> [] then begin
    Printf.bprintf buf " rate";
    List.iter
      (fun (name, r) ->
        Printf.bprintf buf "  %s=%.1f/ms" name (Option.get r))
      shown;
    Printf.bprintf buf "\n"
  end

(* Live repaint: home the cursor and clear-to-end per line, so the
   screen never flickers the way a full clear would. *)
let paint_live ~header hist f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "\027[H";
  render_frame buf ~header hist f;
  (* Clear whatever a previous (longer) paint left below. *)
  Buffer.add_string buf "\027[J";
  print_string
    (String.concat "\027[K\n"
       (String.split_on_char '\n' (Buffer.contents buf)));
  flush stdout

(* --dump: the whole sampled timeline as an aligned table, one frame
   per row — the scriptable surface (EXPERIMENTS.md timelines, gnuplot)
   next to the human one. *)
let dump_series frames =
  print_string
    "#     t_ms  window_ms     msg/ms    p50_us    p99_us      depth  \
     slab\n";
  let t0 = match frames with f :: _ -> f.S.t_us | [] -> 0.0 in
  List.iter
    (fun f ->
      let p name = S.point f name in
      let window_ms = f.S.window_us /. 1000.0 in
      let tput =
        match p "messages" with
        | Some d when window_ms > 0.0 -> d /. window_ms
        | _ -> 0.0
      in
      let opt v = match v with Some x -> x | None -> nan in
      let depth =
        Array.fold_left
          (fun acc (n, v) ->
            if starts_with ~prefix:"ring_depth_" n then acc +. v else acc)
          0.0 f.S.points
      in
      Printf.printf "%10.1f %10.2f %10.1f %9.1f %9.1f %10.0f %5.0f\n"
        ((f.S.t_us -. t0) /. 1000.0)
        window_ms tput
        (opt (p "latency_us_p50"))
        (opt (p "latency_us_p99"))
        depth
        (opt (p "slab_in_use")))
    frames

let run_dashboard backend kind nclients messages depth nservers transport
    interval_ms once dump prometheus =
  match waiting_of_kind kind with
  | Error e -> `Error (false, e)
  | Ok waiting -> (
    if backend = Proc && nservers > 1 then
      `Error (false, "--nservers applies to the real backend only")
    else
      try
        let header =
          Printf.sprintf
            "ulipc_top — %s %s  nclients=%d depth=%d%s  interval=%.1fms"
            (match backend with Real -> "real" | Proc -> "proc")
            (Ulipc.Protocol_kind.name kind)
            nclients depth
            (if backend = Real then Printf.sprintf " nservers=%d" nservers
             else "")
            interval_ms
        in
        let hist = { cells = Array.make spark_width nan; n = 0 } in
        let on_frame =
          if once then None else Some (paint_live ~header hist)
        in
        let tel = T.create ~interval_ms ?on_frame () in
        if not once then print_string "\027[?25l\027[2J";
        let m =
          Fun.protect
            ~finally:(fun () ->
              if not once then (
                print_string "\027[?25h";
                flush stdout))
            (fun () ->
              match backend with
              | Real ->
                Real_driver.run ~transport ~telemetry:tel ~depth ~nservers
                  ~nclients ~messages waiting
              | Proc ->
                Proc_driver.run ~telemetry:tel ~depth ~nclients ~messages
                  waiting)
        in
        (if once then
           (* The closing tick's window is post-run (all zeros); show the
              busiest sampled window instead.  The sparkline still needs
              the full history, so fold every frame through the renderer
              and print only the peak frame's paint. *)
           let peak =
             List.fold_left
               (fun acc f ->
                 let msgs =
                   Option.value ~default:0.0 (S.point f "messages")
                 in
                 match acc with
                 | Some (best, _) when best >= msgs -> acc
                 | _ -> Some (msgs, f))
               None (T.frames tel)
           in
           match peak with
           | Some (_, f) ->
             List.iter
               (fun fr ->
                 hist_push hist
                   (if fr.S.window_us > 0.0 then
                      Option.value ~default:0.0 (S.point fr "messages")
                      /. (fr.S.window_us /. 1000.0)
                    else 0.0))
               (T.frames tel);
             let buf = Buffer.create 512 in
             render_frame buf ~header hist f;
             print_string (Buffer.contents buf)
           | None -> ());
        if dump then dump_series (T.frames tel);
        Printf.printf
          "ulipc_top: %d frames sampled; run total %.1f msg/ms, p99 %.1f us\n"
          (List.length (T.frames tel))
          m.Metrics.throughput_msg_per_ms
          (Option.value ~default:nan (Metrics.latency_percentile m 99.0));
        if prometheus then print_string (T.to_prometheus tel);
        `Ok ()
      with Failure msg -> `Error (false, msg))

(* ------------------------------------------------------------------ *)
(* Command line.                                                       *)

let backend_t =
  Arg.(
    value
    & opt backend_conv Real
    & info [ "backend" ] ~docv:"BACKEND" ~doc:"Backend: real or proc.")

let protocol_t =
  Arg.(
    value
    & opt protocol_conv Ulipc.Protocol_kind.BSW
    & info [ "protocol" ] ~docv:"PROTO"
        ~doc:"Wait protocol: bss, bsw, bswy, bsls[:N], adapt[:N], handoff.")

let nclients_t =
  Arg.(
    value & opt int 4
    & info [ "nclients" ] ~docv:"N" ~doc:"Number of clients.")

let messages_t =
  Arg.(
    value & opt int 100_000
    & info [ "messages" ] ~docv:"N" ~doc:"Echo calls per client.")

let depth_t =
  Arg.(
    value & opt int 1
    & info [ "depth" ] ~docv:"D" ~doc:"Pipelining depth (1 = synchronous).")

let nservers_t =
  Arg.(
    value & opt int 1
    & info [ "nservers" ] ~docv:"N" ~doc:"Server pool size (real backend).")

let transport_conv =
  let parse = function
    | "ring" -> Ok Ulipc_real.Real_substrate.Ring
    | "two-lock" -> Ok Ulipc_real.Real_substrate.Two_lock
    | s ->
      Error (`Msg (Printf.sprintf "unknown transport %S (ring, two-lock)" s))
  in
  let print ppf t =
    Format.pp_print_string ppf (Ulipc_real.Real_substrate.transport_name t)
  in
  Arg.conv (parse, print)

let transport_t =
  Arg.(
    value
    & opt transport_conv Ulipc_real.Real_substrate.Ring
    & info [ "transport" ] ~docv:"T"
        ~doc:"Queue transport for the real backend: ring or two-lock.")

let interval_t =
  Arg.(
    value & opt float 10.0
    & info [ "interval-ms" ] ~docv:"MS" ~doc:"Sampling interval.")

let once_t =
  Arg.(
    value & flag
    & info [ "once" ]
        ~doc:
          "No live repaint: run, render the final frame once, print the \
           summary.  CI-safe (no ANSI control sequences).")

let dump_t =
  Arg.(
    value & flag
    & info [ "dump" ]
        ~doc:
          "Print the whole sampled timeline as an aligned table after the \
           run (one frame per row).")

let prometheus_t =
  Arg.(
    value & flag
    & info [ "prometheus" ]
        ~doc:"Print the Prometheus text exposition after the run.")

let () =
  let doc = "live telemetry dashboard for the echo workload" in
  let info = Cmd.info "ulipc_top" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      ret
        (const run_dashboard $ backend_t $ protocol_t $ nclients_t
       $ messages_t $ depth_t $ nservers_t $ transport_t $ interval_t
       $ once_t $ dump_t $ prometheus_t))
  in
  exit (Cmd.eval (Cmd.v info term))
