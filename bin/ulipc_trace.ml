(* Trace driver for the unified observability pipeline: run one echo
   workload on either backend with the event sink attached, print the
   causal wake-latency/block-duration breakdown, write the Chrome-trace
   JSON (Perfetto-loadable) and a one-line summary, and exit non-zero if
   the invariant checker found violations.

     ulipc_trace --backend real --protocol bsw --out trace.json
     ulipc_trace --backend sim --machine sgi-indy --protocol bsls:10
     ulipc_trace --backend proc --protocol bsw --out trace_proc.json

   The emitted JSON is re-read through the hand-rolled parser before the
   tool reports success, so a malformed export fails loudly here rather
   than in the Perfetto UI. *)

open Cmdliner
open Ulipc_workload
module A = Ulipc_observe.Trace_analysis

type backend = Real | Sim | Proc

let backend_conv =
  let parse = function
    | "real" -> Ok Real
    | "sim" -> Ok Sim
    | "proc" -> Ok Proc
    | s ->
      Error (`Msg (Printf.sprintf "unknown backend %S (real, sim, proc)" s))
  in
  let print ppf b =
    Format.pp_print_string ppf
      (match b with Real -> "real" | Sim -> "sim" | Proc -> "proc")
  in
  Arg.conv (parse, print)

let protocol_conv =
  let with_arg s prefix k =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      match int_of_string_opt (String.sub s n (String.length s - n)) with
      | Some v when v >= 0 -> Some (Ok (k v))
      | Some _ | None ->
        Some (Error (`Msg (prefix ^ "N needs a non-negative N")))
    else None
  in
  let parse s =
    match String.lowercase_ascii s with
    | "bss" -> Ok Ulipc.Protocol_kind.BSS
    | "bsw" -> Ok Ulipc.Protocol_kind.BSW
    | "bswy" -> Ok Ulipc.Protocol_kind.BSWY
    | "sysv" -> Ok Ulipc.Protocol_kind.SYSV
    | "handoff" -> Ok Ulipc.Protocol_kind.HANDOFF
    | "csem" -> Ok Ulipc.Protocol_kind.CSEM
    | "bsls" -> Ok (Ulipc.Protocol_kind.BSLS 10)
    | "adapt" -> Ok (Ulipc.Protocol_kind.ADAPT 4096)
    | s -> (
      match
        ( with_arg s "bsls:" (fun n -> Ulipc.Protocol_kind.BSLS n),
          with_arg s "adapt:" (fun n -> Ulipc.Protocol_kind.ADAPT n) )
      with
      | Some r, _ | _, Some r -> r
      | None, None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown protocol %S (bss, bsw, bswy, bsls[:N], adapt[:N], \
                sysv, handoff, csem)"
               s)))
  in
  Arg.conv (parse, Ulipc.Protocol_kind.pp)

let waiting_of_kind = function
  | Ulipc.Protocol_kind.BSS -> Ok Ulipc_real.Rpc.Spin
  | Ulipc.Protocol_kind.BSW -> Ok Ulipc_real.Rpc.Block
  | Ulipc.Protocol_kind.BSWY -> Ok Ulipc_real.Rpc.Block_yield
  | Ulipc.Protocol_kind.BSLS n -> Ok (Ulipc_real.Rpc.Limited_spin n)
  | Ulipc.Protocol_kind.ADAPT cap -> Ok (Ulipc_real.Rpc.Adaptive cap)
  | Ulipc.Protocol_kind.HANDOFF -> Ok Ulipc_real.Rpc.Handoff
  | (Ulipc.Protocol_kind.SYSV | Ulipc.Protocol_kind.CSEM) as k ->
    Error
      (Printf.sprintf "protocol %s has no real-domains implementation"
         (Ulipc.Protocol_kind.name k))

let machines =
  [
    Ulipc_machines.Sgi_indy.machine;
    Ulipc_machines.Ibm_p4.machine;
    Ulipc_machines.Sgi_challenge.machine;
    Ulipc_machines.Linux486.stock;
    Ulipc_machines.Linux486.modified_yield;
  ]

let machine_conv =
  let parse s =
    match
      List.find_opt
        (fun m -> String.equal m.Ulipc_machines.Machine.name s)
        machines
    with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown machine %S (try: %s)" s
             (String.concat ", "
                (List.map (fun m -> m.Ulipc_machines.Machine.name) machines))))
  in
  let print ppf m = Format.pp_print_string ppf m.Ulipc_machines.Machine.name in
  Arg.conv (parse, print)

let transport_conv =
  let parse = function
    | "ring" -> Ok Ulipc_real.Real_substrate.Ring
    | "two-lock" -> Ok Ulipc_real.Real_substrate.Two_lock
    | s ->
      Error (`Msg (Printf.sprintf "unknown transport %S (ring, two-lock)" s))
  in
  let print ppf t =
    Format.pp_print_string ppf (Ulipc_real.Real_substrate.transport_name t)
  in
  Arg.conv (parse, print)

(* The summary line mirrors the BENCH_real.json conventions: every float
   through Bench_json.json_float, so nan (e.g. wake latency of a
   protocol that never blocked) prints as null.  [dropped] is the ring
   overflow count — a truncated trace means the causal analysis ran on
   an incomplete stream (percentiles are over surviving pairs only, and
   the invariant checker already degrades to warnings), so it is both
   reported in the summary and warned about loudly: silently analysing
   a partial trace is how a lost wake-up hides. *)
let summary_json ~backend ~label ~kind ~out ~dropped (m : Metrics.t) (r : A.t)
    =
  if dropped > 0 then
    Printf.eprintf
      "ulipc_trace: WARNING: trace truncated — %d event(s) dropped by a full \
       ring; wake-latency percentiles cover the surviving events only \
       (raise the sink capacity or lower --messages for a complete trace)\n\
       %!"
      dropped;
  let f = Bench_json.json_float in
  Printf.printf
    "{\"backend\": \"%s\", %s, \"protocol\": \"%s\", \"events\": %d, \
     \"dropped\": %d, \"actors\": %d, \"blocks\": %d, \"wakes\": %d, \
     \"raced_wakes\": %d, \"spurious_wakes\": %d, \"spin_exhausts\": %d, \
     \"wake_latency_p50_us\": %s, \"wake_latency_p99_us\": %s, \
     \"block_duration_p50_us\": %s, \"block_duration_p99_us\": %s, \
     \"throughput_msg_per_ms\": %s, \"violations\": %d, \"trace_file\": \
     \"%s\"}\n"
    backend label
    (Bench_json.json_escape (Ulipc.Protocol_kind.name kind))
    r.A.events dropped r.A.actors r.A.blocks r.A.wakes r.A.raced_wakes
    r.A.spurious_wakes r.A.spin_exhausts
    (f r.A.wake_latency.A.p50_us)
    (f r.A.wake_latency.A.p99_us)
    (f r.A.block_duration.A.p50_us)
    (f r.A.block_duration.A.p99_us)
    (f m.Metrics.throughput_msg_per_ms)
    (List.length r.A.violations)
    (Bench_json.json_escape out)

let validate_json path =
  let contents = In_channel.with_open_text path In_channel.input_all in
  match Ulipc_observe.Json_min.parse_result contents with
  | Ok j -> (
    match Ulipc_observe.Json_min.member_opt "traceEvents" j with
    | Some (Ulipc_observe.Json_min.Arr (_ :: _)) -> ()
    | Some _ -> failwith (path ^ ": traceEvents is empty or not an array")
    | None -> failwith (path ^ ": no traceEvents field"))
  | Error msg -> failwith (path ^ ": emitted JSON does not parse: " ^ msg)

let run_real ~kind ~transport ~nclients ~messages ~depth ~out =
  match waiting_of_kind kind with
  | Error msg -> failwith msg
  | Ok waiting ->
    let sink = Ulipc_real.Trace_ring.create ~capacity:(1 lsl 18) () in
    let m =
      Real_driver.run ~transport ~trace:sink ~depth ~nclients ~messages
        waiting
    in
    let events = Ulipc_real.Trace_ring.events sink in
    let r =
      A.analyse ~complete:(Ulipc_real.Trace_ring.dropped sink = 0) events
    in
    let process_name =
      Printf.sprintf "ulipc real %s %s"
        (Ulipc_real.Real_substrate.transport_name transport)
        (Ulipc.Protocol_kind.name kind)
    in
    Ulipc_observe.Perfetto.write ~process_name ~report:r ~path:out events;
    validate_json out;
    Format.printf "%a@." A.pp r;
    let label =
      Printf.sprintf "\"transport\": \"%s\""
        (Ulipc_real.Real_substrate.transport_name transport)
    in
    summary_json ~backend:"real" ~label ~kind ~out
      ~dropped:(Ulipc_real.Trace_ring.dropped sink)
      m r;
    r

(* Cross-process backend: fork'd processes over the shm arena, events
   pid-namespaced and merged by the driver (CLOCK_MONOTONIC is
   system-wide, so the merged order is causal across processes). *)
let run_proc ~kind ~nclients ~messages ~depth ~out =
  match waiting_of_kind kind with
  | Error msg -> failwith msg
  | Ok waiting ->
    let events_out = ref [] and dropped_out = ref 0 in
    let m =
      Proc_driver.run ~depth ~nclients ~messages ~events_out ~dropped_out
        waiting
    in
    let events = !events_out in
    let r = A.analyse ~complete:(!dropped_out = 0) events in
    let process_name =
      Printf.sprintf "ulipc proc shm %s" (Ulipc.Protocol_kind.name kind)
    in
    Ulipc_observe.Perfetto.write ~process_name ~report:r ~path:out events;
    validate_json out;
    Format.printf "%a@." A.pp r;
    summary_json ~backend:"proc" ~label:"\"transport\": \"shm\"" ~kind ~out
      ~dropped:!dropped_out m r;
    r

let run_sim ~kind ~machine ~nclients ~messages ~out =
  let sink = Ulipc_observe.Sink.create ~capacity:(1 lsl 18) () in
  let m =
    Driver.run
      (Driver.config ~events:sink ~machine ~kind ~nclients
         ~messages_per_client:messages ())
  in
  let events = Ulipc_observe.Sink.events sink in
  let r = A.analyse ~complete:(Ulipc_observe.Sink.dropped sink = 0) events in
  let process_name =
    Printf.sprintf "ulipc sim %s %s" machine.Ulipc_machines.Machine.name
      (Ulipc.Protocol_kind.name kind)
  in
  Ulipc_observe.Perfetto.write ~process_name ~report:r ~path:out events;
  validate_json out;
  Format.printf "%a@." A.pp r;
  let label =
    Printf.sprintf "\"machine\": \"%s\""
      (Bench_json.json_escape machine.Ulipc_machines.Machine.name)
  in
  summary_json ~backend:"sim" ~label ~kind ~out
    ~dropped:(Ulipc_observe.Sink.dropped sink) m r;
  r

let main backend kind machine transport nclients messages depth out =
  try
    let r =
      match backend with
      | Real -> run_real ~kind ~transport ~nclients ~messages ~depth ~out
      | Sim -> run_sim ~kind ~machine ~nclients ~messages ~out
      | Proc -> run_proc ~kind ~nclients ~messages ~depth ~out
    in
    if r.A.violations <> [] then begin
      Printf.eprintf "ulipc_trace: trace invariants violated (%d)\n"
        (List.length r.A.violations);
      exit 1
    end
    else `Ok ()
  with
  | Invalid_argument msg | Failure msg -> `Error (false, msg)
  | Driver.Hung res ->
    `Error
      ( false,
        Format.asprintf "run did not complete: %a" Ulipc_os.Kernel.pp_result
          res )

let backend_arg =
  Arg.(
    value & opt backend_conv Real
    & info [ "b"; "backend" ] ~docv:"BACKEND"
        ~doc:
          "Where to run: real (OCaml domains), sim (simulator), or proc \
           (fork'd processes over the shared-memory arena).")

let protocol_arg =
  Arg.(
    value
    & opt protocol_conv Ulipc.Protocol_kind.BSW
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:
          "IPC protocol: bss, bsw, bswy, bsls[:N], adapt[:N], handoff; sim \
           only: sysv, csem.")

let machine_arg =
  Arg.(
    value
    & opt machine_conv Ulipc_machines.Sgi_indy.machine
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:"Machine model (sim backend only).")

let transport_arg =
  Arg.(
    value
    & opt transport_conv Ulipc_real.Real_substrate.Ring
    & info [ "t"; "transport" ] ~docv:"TRANSPORT"
        ~doc:"Queue transport (real backend only): ring or two-lock.")

let clients_arg =
  Arg.(
    value & opt int 2
    & info [ "c"; "clients" ] ~docv:"N" ~doc:"Number of clients.")

let messages_arg =
  Arg.(
    value & opt int 200
    & info [ "n"; "messages" ] ~docv:"N" ~doc:"Echo requests per client.")

let depth_arg =
  Arg.(
    value & opt int 1
    & info [ "d"; "depth" ] ~docv:"N"
        ~doc:"Pipelining depth (real backend only).")

let out_arg =
  Arg.(
    value & opt string "trace.json"
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Chrome-trace JSON output path (load at ui.perfetto.dev).")

let () =
  let doc =
    "capture a unified IPC event trace, analyse wake-up causality and \
     export Perfetto JSON"
  in
  let info = Cmd.info "ulipc_trace" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      ret
        (const main $ backend_arg $ protocol_arg $ machine_arg $ transport_arg
        $ clients_arg $ messages_arg $ depth_arg $ out_arg))
  in
  exit (Cmd.eval (Cmd.v info term))
