(* Command-line driver for the simulator: run any single benchmark
   configuration, a client sweep, a paper figure, or the primitive-cost
   table, with every knob exposed.

     ulipc_sim run   --machine sgi-indy --protocol bsls:10 --clients 4
     ulipc_sim sweep --machine ibm-p4 --protocol bss --clients 1-6
     ulipc_sim fig   fig2a fig10
     ulipc_sim table1
     ulipc_sim list *)

open Cmdliner
open Ulipc_workload

(* Render argument-validation failures from the library as usage errors
   rather than cmdliner's "internal error" banner. *)
let guarded f =
  try
    f ();
    `Ok ()
  with
  | Invalid_argument msg | Failure msg -> `Error (false, msg)
  | Driver.Hung r ->
    `Error (false, Format.asprintf "run did not complete: %a" Ulipc_os.Kernel.pp_result r)

let machines =
  [
    Ulipc_machines.Sgi_indy.machine;
    Ulipc_machines.Ibm_p4.machine;
    Ulipc_machines.Sgi_challenge.machine;
    Ulipc_machines.Linux486.stock;
    Ulipc_machines.Linux486.modified_yield;
  ]

let machine_conv =
  let parse s =
    match
      List.find_opt
        (fun m -> String.equal m.Ulipc_machines.Machine.name s)
        machines
    with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown machine %S (try: %s)" s
             (String.concat ", "
                (List.map (fun m -> m.Ulipc_machines.Machine.name) machines))))
  in
  let print ppf m = Format.pp_print_string ppf m.Ulipc_machines.Machine.name in
  Arg.conv (parse, print)

let protocol_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "bss" -> Ok Ulipc.Protocol_kind.BSS
    | "bsw" -> Ok Ulipc.Protocol_kind.BSW
    | "bswy" -> Ok Ulipc.Protocol_kind.BSWY
    | "sysv" -> Ok Ulipc.Protocol_kind.SYSV
    | "handoff" -> Ok Ulipc.Protocol_kind.HANDOFF
    | "csem" -> Ok Ulipc.Protocol_kind.CSEM
    | "bsls" -> Ok (Ulipc.Protocol_kind.BSLS 10)
    | s when String.length s > 5 && String.sub s 0 5 = "bsls:" -> (
      match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some n when n >= 0 -> Ok (Ulipc.Protocol_kind.BSLS n)
      | Some _ | None -> Error (`Msg "bsls:N needs a non-negative N"))
    | _ ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown protocol %S (bss, bsw, bswy, bsls[:N], sysv, handoff, csem)" s))
  in
  let print ppf k = Ulipc.Protocol_kind.pp ppf k in
  Arg.conv (parse, print)

let machine_arg =
  Arg.(
    value
    & opt machine_conv Ulipc_machines.Sgi_indy.machine
    & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"Machine model to simulate.")

let protocol_arg =
  Arg.(
    value
    & opt protocol_conv Ulipc.Protocol_kind.BSS
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:"IPC protocol: bss, bsw, bswy, bsls[:N], sysv, handoff, csem.")

let messages_arg =
  Arg.(
    value & opt int 20_000
    & info [ "n"; "messages" ] ~docv:"N" ~doc:"Echo requests per client.")

let clients_arg =
  Arg.(
    value & opt int 1
    & info [ "c"; "clients" ] ~docv:"N" ~doc:"Number of client processes.")

let fixed_arg =
  Arg.(
    value & flag
    & info [ "fixed-priority" ]
        ~doc:"Run all processes in the non-degrading scheduling class.")

let latency_arg =
  Arg.(
    value & flag
    & info [ "latency" ] ~doc:"Collect per-send round-trip latencies.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print full metrics.")

let print_metrics ~verbose m =
  if verbose then Format.printf "%a@." Metrics.pp m
  else Format.printf "%a@." Metrics.pp_row m;
  match m.Metrics.latency_us with
  | Some hist when Ulipc.Histogram.count hist > 0 ->
    Format.printf
      "  latency: mean %.1f us  p50 %.1f  p90 %.1f  p99 %.1f  max %.1f@."
      (Ulipc.Histogram.mean hist)
      (Ulipc.Histogram.percentile hist 50.0)
      (Ulipc.Histogram.percentile hist 90.0)
      (Ulipc.Histogram.percentile hist 99.0)
      (Ulipc.Histogram.max_value hist);
    if verbose then Format.printf "%a" Ulipc.Histogram.pp_buckets hist
  | Some _ | None -> ()

let run_cmd =
  let run machine kind clients messages fixed latency verbose =
    guarded (fun () ->
        let cfg =
          Driver.config ~machine ~kind ~nclients:clients
            ~messages_per_client:messages ~fixed_priority:fixed
            ~collect_latency:latency ()
        in
        print_metrics ~verbose (Driver.run cfg))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one benchmark configuration.")
    Term.(
      ret
        (const run $ machine_arg $ protocol_arg $ clients_arg $ messages_arg
        $ fixed_arg $ latency_arg $ verbose_arg))

let range_conv =
  let parse s =
    match String.split_on_char '-' s with
    | [ single ] -> (
      match int_of_string_opt single with
      | Some n -> Ok [ n ]
      | None -> Error (`Msg "expected N or LO-HI"))
    | [ lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when lo <= hi -> Ok (List.init (hi - lo + 1) (( + ) lo))
      | _ -> Error (`Msg "expected N or LO-HI"))
    | _ -> Error (`Msg "expected N or LO-HI")
  in
  let print ppf ns =
    Format.pp_print_string ppf (String.concat "," (List.map string_of_int ns))
  in
  Arg.conv (parse, print)

let sweep_cmd =
  let sweep machine kind clients messages fixed =
    guarded (fun () ->
        let cfg =
          Driver.config ~machine ~kind ~nclients:1
            ~messages_per_client:messages ~fixed_priority:fixed ()
        in
        List.iter
          (fun m -> Format.printf "%a@." Metrics.pp_row m)
          (Driver.sweep cfg ~clients))
  in
  let clients =
    Arg.(
      value
      & opt range_conv [ 1; 2; 3; 4; 5; 6 ]
      & info [ "c"; "clients" ] ~docv:"LO-HI" ~doc:"Client counts to sweep.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep a protocol over client counts.")
    Term.(
      ret
        (const sweep $ machine_arg $ protocol_arg $ clients $ messages_arg
        $ fixed_arg))

let figure_builders messages : (string * (unit -> Experiments.figure)) list =
  [
    ("fig2a", fun () -> fst (Experiments.fig2 ~messages ()));
    ("fig2b", fun () -> snd (Experiments.fig2 ~messages ()));
    ("fig3a", fun () -> fst (Experiments.fig3 ~messages ()));
    ("fig3b", fun () -> snd (Experiments.fig3 ~messages ()));
    ("fig6a", fun () -> fst (Experiments.fig6 ~messages ()));
    ("fig6b", fun () -> snd (Experiments.fig6 ~messages ()));
    ("fig8a", fun () -> fst (Experiments.fig8 ~messages ()));
    ("fig8b", fun () -> snd (Experiments.fig8 ~messages ()));
    ("fig10", fun () -> Experiments.fig10 ~messages ());
    ("fig11", fun () -> Experiments.fig11 ~messages ());
    ("fig12", fun () -> Experiments.fig12 ~messages ());
  ]

let fig_cmd =
  let run_figs messages ids =
    let builders = figure_builders messages in
    let ids = if ids = [] then List.map fst builders else ids in
    let bad = List.filter (fun id -> not (List.mem_assoc id builders)) ids in
    if bad <> [] then
      `Error
        ( false,
          Printf.sprintf "unknown figures: %s (known: %s)"
            (String.concat ", " bad)
            (String.concat ", " (List.map fst builders)) )
    else begin
      List.iter
        (fun id ->
          let f = (List.assoc id builders) () in
          Format.printf "%a@." Experiments.pp_figure f)
        ids;
      `Ok ()
    end
  in
  let fig_messages =
    Arg.(
      value
      & opt int Experiments.messages_default
      & info [ "n"; "messages" ] ~docv:"N" ~doc:"Echo requests per client.")
  in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"FIGURE" ~doc:"Figure ids.")
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Reproduce one or more of the paper's figures.")
    Term.(ret (const run_figs $ fig_messages $ ids))

let arch_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "single" -> Ok Arch.Single_queue
    | "per-client" -> Ok Arch.Thread_per_client
    | s when String.length s > 6 && String.sub s 0 6 = "multi:" -> (
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some k when k > 0 -> Ok (Arch.Multi_server k)
      | Some _ | None -> Error (`Msg "multi:K needs a positive K"))
    | _ -> Error (`Msg "expected single, per-client or multi:K")
  in
  let print ppf a = Format.pp_print_string ppf (Arch.architecture_name a) in
  Arg.conv (parse, print)

let arch_cmd =
  let run machine kind architecture clients messages =
    guarded (fun () ->
        let r =
          Arch.run ~machine ~kind ~architecture ~nclients:clients
            ~messages_per_client:messages ()
        in
        Format.printf "%a@." Arch.pp_result r)
  in
  let architecture =
    Arg.(
      value
      & opt arch_conv Arch.Single_queue
      & info [ "a"; "architecture" ] ~docv:"ARCH"
          ~doc:"Server architecture: single, per-client, multi:K.")
  in
  Cmd.v
    (Cmd.info "arch" ~doc:"Run one benchmark under a server architecture.")
    Term.(
      ret
        (const run $ machine_arg $ protocol_arg $ architecture $ clients_arg
        $ messages_arg))

let load_cmd =
  let run machine kind clients messages think_us_list =
    guarded (fun () ->
        let think_means =
          List.map (fun us -> Ulipc_engine.Sim_time.us us) think_us_list
        in
        List.iter
          (fun p -> Format.printf "%a@." Openloop.pp_point p)
          (Openloop.sweep ~machine ~kind ~nclients:clients
             ~messages_per_client:messages ~think_means ()))
  in
  let thinks =
    Arg.(
      value
      & opt (list int) [ 5000; 2000; 1000; 400; 150 ]
      & info [ "t"; "think-us" ] ~docv:"US,US,..."
          ~doc:"Mean idle think times to sweep, in microseconds.")
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Latency under offered load (idle think times).")
    Term.(
      ret
        (const run $ machine_arg $ protocol_arg $ clients_arg $ messages_arg
        $ thinks))

let trace_cmd =
  let run machine kind clients messages entries =
    guarded @@ fun () ->
    let tr = Ulipc_engine.Trace.create ~capacity:(max entries 16) ~enabled:true () in
    let cfg =
      Driver.config ~trace:tr ~machine ~kind ~nclients:clients
        ~messages_per_client:messages ()
    in
    let (_ : Metrics.t) = Driver.run cfg in
    let shown = ref 0 in
    List.iter
      (fun (e : Ulipc_engine.Trace.entry) ->
        if !shown < entries then begin
          incr shown;
          Format.printf "[%a] %-8s %s@." Ulipc_engine.Sim_time.pp
            e.Ulipc_engine.Trace.at e.Ulipc_engine.Trace.tag
            e.Ulipc_engine.Trace.detail
        end)
      (Ulipc_engine.Trace.entries tr);
    Format.printf "(%d events recorded in total)@."
      (Ulipc_engine.Trace.total_recorded tr)
  in
  let entries =
    Arg.(
      value & opt int 80
      & info [ "e"; "entries" ] ~docv:"N" ~doc:"Trace entries to print.")
  in
  let messages =
    Arg.(
      value & opt int 3
      & info [ "n"; "messages" ] ~docv:"N" ~doc:"Echo requests per client.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a tiny workload with kernel tracing and print the event log \
          (spawns, context switches, system calls, blocks).")
    Term.(
      ret (const run $ machine_arg $ protocol_arg $ clients_arg $ messages $ entries))

let table1_cmd =
  let run () =
    Format.printf "%a" Experiments.pp_table1 (Experiments.table1 ())
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Table 1 (primitive operation costs).")
    Term.(const run $ const ())

let list_cmd =
  let run () =
    Format.printf "machines:@.";
    List.iter
      (fun m -> Format.printf "  %a@." Ulipc_machines.Machine.pp m)
      machines;
    Format.printf "protocols: bss, bsw, bswy, bsls[:N], sysv, handoff, csem@.";
    Format.printf "figures: %s@."
      (String.concat ", " (List.map fst (figure_builders 0)))
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List machines, protocols and figures.")
    Term.(const run $ const ())

let () =
  let doc =
    "user-level IPC sleep/wake-up protocol simulator (Unrau & Krieger, \
     ICPP'98)"
  in
  let info = Cmd.info "ulipc_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; sweep_cmd; fig_cmd; arch_cmd; load_cmd; trace_cmd; table1_cmd;
            list_cmd ]))
