(* Quickstart: the two faces of the library in ~40 lines.

   1. The simulator: run the paper's echo benchmark on the calibrated SGI
      Indy model and compare a busy-waiting protocol with a blocking one.
   2. The real thing: the same Send/Receive/Reply interface on OCaml 5
      domains, within this process.

   Run with: dune exec examples/quickstart.exe *)

let simulated () =
  Format.printf "--- simulated SGI Indy (IRIX 6.2), 4 clients ---@.";
  List.iter
    (fun kind ->
      let config =
        Ulipc_workload.Driver.config ~machine:Ulipc_machines.Sgi_indy.machine
          ~kind ~nclients:4 ~messages_per_client:5_000 ()
      in
      let m = Ulipc_workload.Driver.run config in
      Format.printf "%-9s %7.2f msg/ms  (%d blocking sleeps, %d wake-up calls)@."
        (Ulipc.Protocol_kind.name kind)
        m.Ulipc_workload.Metrics.throughput_msg_per_ms
        (m.Ulipc_workload.Metrics.counters.Ulipc.Counters.client_blocks
        + m.Ulipc_workload.Metrics.counters.Ulipc.Counters.server_blocks)
        (m.Ulipc_workload.Metrics.counters.Ulipc.Counters.client_wakeups
        + m.Ulipc_workload.Metrics.counters.Ulipc.Counters.server_wakeups))
    Ulipc.Protocol_kind.[ BSS; BSW; BSLS 10; SYSV ]

let real () =
  Format.printf "@.--- real OCaml domains, blocking protocol ---@.";
  let t : (string, string) Ulipc_real.Rpc.t =
    Ulipc_real.Rpc.create ~nclients:1 Ulipc_real.Rpc.Block
  in
  let server =
    Domain.spawn (fun () ->
        let rec serve () =
          match Ulipc_real.Rpc.receive t with
          | client, "quit" -> Ulipc_real.Rpc.reply t ~client "bye"
          | client, req ->
            Ulipc_real.Rpc.reply t ~client (String.uppercase_ascii req);
            serve ()
        in
        serve ())
  in
  Format.printf "send \"hello\" -> %s@." (Ulipc_real.Rpc.send t ~client:0 "hello");
  Format.printf "send \"quit\"  -> %s@." (Ulipc_real.Rpc.send t ~client:0 "quit");
  Domain.join server

let () =
  simulated ();
  real ()
