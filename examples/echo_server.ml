(* A real client-server echo benchmark on OCaml 5 domains — the paper's
   §2.2 experiment against actual hardware instead of the simulator.

   One server domain, N client domains, each client sends a barrage of
   requests through the Send/Receive/Reply interface.  Compares the three
   waiting disciplines (spin / block / limited spin) the way Figure 2
   compares BSS with the blocking protocols.  Numbers are real wall-clock
   measurements and vary with the host:

   - with free cores, spinning wins on latency and blocking follows
     closely at a fraction of the CPU burn (the paper's multiprocessor);
   - with fewer cores than domains, spinning degenerates to OS-quantum
     round-trips and the blocking protocol beats it by orders of
     magnitude — the uniprocessor story the paper opens with, live.

   Run with: dune exec examples/echo_server.exe -- [nclients] [messages] *)

(* On a host with fewer cores than domains, pure spinning degenerates to
   OS-quantum-scale round-trips — the very uniprocessor pathology the
   paper opens with.  Cap the spin run so the demonstration stays short. *)
let cap_messages ~nclients ~messages waiting =
  let oversubscribed = Domain.recommended_domain_count () < nclients + 1 in
  match waiting with
  | Ulipc_real.Rpc.Spin when oversubscribed -> min messages 200
  | Ulipc_real.Rpc.Limited_spin _ when oversubscribed -> min messages 2_000
  | Ulipc_real.Rpc.Spin | Ulipc_real.Rpc.Block | Ulipc_real.Rpc.Block_yield
  | Ulipc_real.Rpc.Limited_spin _ | Ulipc_real.Rpc.Handoff
  | Ulipc_real.Rpc.Adaptive _ ->
    messages

let run_benchmark ~nclients ~messages waiting label =
  let messages = cap_messages ~nclients ~messages waiting in
  let t : (int, int) Ulipc_real.Rpc.t =
    Ulipc_real.Rpc.create ~nclients waiting
  in
  let served = Atomic.make 0 in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref (nclients * messages) in
        while !remaining > 0 do
          let client, v = Ulipc_real.Rpc.receive t in
          Ulipc_real.Rpc.reply t ~client (v + 1);
          Atomic.incr served;
          decr remaining
        done)
  in
  let t0 = Unix.gettimeofday () in
  let clients =
    List.init nclients (fun c ->
        Domain.spawn (fun () ->
            for i = 1 to messages do
              let r = Ulipc_real.Rpc.send t ~client:c i in
              if r <> i + 1 then failwith "echo mismatch"
            done))
  in
  List.iter Domain.join clients;
  Domain.join server;
  let dt = Unix.gettimeofday () -. t0 in
  let total = nclients * messages in
  Format.printf
    "%-20s %9.1f msg/ms   round-trip %8.2f us   residue %d   (%d msgs)@."
    label
    (float_of_int total /. (dt *. 1000.0))
    (dt *. 1.0e6 *. float_of_int nclients /. float_of_int total)
    (Ulipc_real.Rpc.wake_residue t)
    messages

let () =
  let nclients =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2
  in
  let messages =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 20_000
  in
  Format.printf "real echo benchmark: %d clients x %d messages (%d cores)@."
    nclients messages (Domain.recommended_domain_count ());
  run_benchmark ~nclients ~messages Ulipc_real.Rpc.Spin "spin (BSS)";
  run_benchmark ~nclients ~messages Ulipc_real.Rpc.Block "block (BSW)";
  run_benchmark ~nclients ~messages Ulipc_real.Rpc.Block_yield
    "block+yield (BSWY)";
  run_benchmark ~nclients ~messages (Ulipc_real.Rpc.Limited_spin 200)
    "limited spin (BSLS)";
  run_benchmark ~nclients ~messages Ulipc_real.Rpc.Handoff "handoff (§6)"
