(* The paper's motivating application (§8): a database server reached over
   user-level IPC.  Requests alternate between cached lookups (pure CPU)
   and disk reads (the server sleeps on simulated I/O) — exactly the
   situation where busy-waiting clients "can waste resources while
   busy-waiting for their reply ... if the server is performing I/O to a
   disk on the client's behalf".

   The example prints, per protocol: throughput, mean/99th-percentile
   client latency, and how much CPU the whole machine burned per request —
   showing why a database wants the blocking protocols even though BSS
   wins the echo micro-benchmark.

   Run with: dune exec examples/db_server.exe *)

open Ulipc_engine
open Ulipc_os

let machine = Ulipc_machines.Sgi_indy.machine
let nclients = 4
let requests_per_client = 400
let disk_read = Sim_time.ms 2 (* a 1997 disk with a good cache *)
let cached_lookup = Sim_time.us 80
let cache_hit_ratio = 4 (* 1 miss per this many requests *)

let run kind =
  let kernel =
    Kernel.create ~ncpus:machine.Ulipc_machines.Machine.ncpus
      ~policy:(machine.Ulipc_machines.Machine.policy ())
      ~costs:machine.Ulipc_machines.Machine.costs ()
  in
  let session =
    Ulipc.Session.create ~kernel ~costs:machine.Ulipc_machines.Machine.costs
      ~multiprocessor:false ~kind ~nclients ~capacity:64 ()
  in
  let total = nclients * requests_per_client in
  let server =
    Kernel.spawn kernel ~name:"db-server" (fun () ->
        for _ = 1 to total do
          let m = Ulipc.Dispatch.receive session in
          (* Key lookup in the buffer cache... *)
          Usys.work cached_lookup;
          (* ...and every few requests, a real disk read: the server
             SLEEPS, so whether clients also sleep decides whether the
             machine idles or burns. *)
          if m.Ulipc.Message.seq mod cache_hit_ratio = 0 then
            Usys.sleep disk_read;
          Ulipc.Dispatch.reply session ~client:m.Ulipc.Message.reply_chan
            (Ulipc.Message.echo_reply m)
        done)
  in
  Ulipc.Session.register_server session server.Proc.pid;
  let latency = Stat.create ~keep_samples:true "latency" in
  let clients =
    List.init nclients (fun client ->
        Kernel.spawn kernel
          ~name:(Printf.sprintf "app-%d" client)
          (fun () ->
            for seq = 1 to requests_per_client do
              let t0 = Usys.time () in
              let (_ : Ulipc.Message.t) =
                Ulipc.Dispatch.send session ~client
                  (Ulipc.Message.make ~opcode:Echo ~reply_chan:client ~seq
                     (float_of_int seq))
              in
              let t1 = Usys.time () in
              Stat.add latency (Sim_time.to_us (Sim_time.sub t1 t0))
            done))
  in
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> Format.kasprintf failwith "db run: %a" Kernel.pp_result r);
  let elapsed = Kernel.now kernel in
  let cpu =
    List.fold_left
      (fun acc p -> acc + p.Proc.cpu_time)
      server.Proc.cpu_time clients
  in
  Format.printf
    "%-9s %6.2f req/ms   latency mean %8.1f us  p99 %8.1f us   machine \
     busy %5.1f%%@."
    (Ulipc.Protocol_kind.name kind)
    (float_of_int total /. Sim_time.to_ms elapsed)
    (Stat.mean latency)
    (Stat.percentile latency 99.0)
    (100.0 *. float_of_int cpu /. float_of_int elapsed)

let () =
  Format.printf
    "database server, %d clients x %d requests, 1-in-%d disk misses of %a@."
    nclients requests_per_client cache_hit_ratio Sim_time.pp disk_read;
  List.iter run
    Ulipc.Protocol_kind.[ BSS; BSW; BSWY; BSLS 10; SYSV ]
