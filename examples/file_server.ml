(* Variable-sized messages through shared memory (§2.1): a tiny file
   server.  Clients request named "files" of very different sizes; the
   payloads travel through a shared arena while the fixed 24-byte messages
   carry only (offset, length) — the paper's pointer-into-shared-memory
   scheme.  The fixed-size free pool keeps flow control simple; the arena
   does the same for the bulk bytes.

   Run with: dune exec examples/file_server.exe *)

open Ulipc_engine
open Ulipc_os

let machine = Ulipc_machines.Sgi_indy.machine
let nclients = 3
let requests_per_client = 200

(* The "filesystem": name -> contents of assorted sizes. *)
let files =
  [
    ("motd", String.make 60 'm');
    ("passwd", String.make 600 'p');
    ("kernel", String.make 6_000 'k');
  ]

let () =
  let kernel =
    Kernel.create ~ncpus:machine.Ulipc_machines.Machine.ncpus
      ~policy:(machine.Ulipc_machines.Machine.policy ())
      ~costs:machine.Ulipc_machines.Machine.costs ()
  in
  let session =
    Ulipc.Session.create ~kernel ~costs:machine.Ulipc_machines.Machine.costs
      ~multiprocessor:false ~kind:(Ulipc.Protocol_kind.BSLS 10) ~nclients
      ~capacity:64 ()
  in
  let bulk = Ulipc.Bulk.create session ~arena_size:32_768 in
  let total = nclients * requests_per_client in
  let server =
    Kernel.spawn kernel ~name:"file-server" (fun () ->
        for _ = 1 to total do
          Ulipc.Bulk.serve_one bulk ~handler:(fun ~client:_ request ->
              let name = Bytes.to_string request in
              match List.assoc_opt name files with
              | Some contents -> Bytes.of_string contents
              | None -> Bytes.of_string ("ENOENT " ^ name))
        done)
  in
  Ulipc.Session.register_server session server.Proc.pid;
  let bytes_served = ref 0 in
  for client = 0 to nclients - 1 do
    ignore
      (Kernel.spawn kernel
         ~name:(Printf.sprintf "reader-%d" client)
         (fun () ->
           for i = 1 to requests_per_client do
             let name, contents = List.nth files ((client + i) mod 3) in
             let reply =
               Ulipc.Bulk.call bulk ~client (Bytes.of_string name)
             in
             if Bytes.length reply <> String.length contents then
               failwith "file server returned the wrong size";
             bytes_served := !bytes_served + Bytes.length reply
           done))
  done;
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> Format.kasprintf failwith "file server: %a" Kernel.pp_result r);
  let elapsed = Kernel.now kernel in
  Format.printf
    "served %d requests (%.1f MB) in %a — %.1f MB/s of shared-memory \
     bandwidth, arena high-water %d B live@."
    total
    (float_of_int !bytes_served /. 1.0e6)
    Sim_time.pp elapsed
    (float_of_int !bytes_served /. 1.0e6 /. Sim_time.to_sec elapsed)
    (32_768 - Ulipc_shm.Arena.free_bytes_peek (Ulipc.Bulk.arena bulk))
