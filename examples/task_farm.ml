(* Asynchronous IPC: the task-farm pattern from the paper's introduction
   ("parallel applications that must co-ordinate worker activities ...
   using task queues").

   Three ways for a farmer to push the same tasks through one worker:

   - synchronous:   one RPC per task (the paper's echo pattern);
   - async batch:   post a whole batch, then collect the replies;
   - async pipeline: post batch b+1 before collecting batch b, doing the
     farmer's own post-processing in between, so the worker drains each
     batch while the farmer is busy and almost nobody ever sleeps.

   This is §1's claim made concrete: "a client process can enqueue
   multiple asynchronous messages on to a shared queue without blocking
   waiting for a response", and in the best case user-level IPC needs no
   system calls at all.  The session runs BSLS so the worker polls through
   the farmer's posting bursts instead of blocking between them.  Watch
   the sleep+wake pairs per task collapse.

   Run with: dune exec examples/task_farm.exe *)

open Ulipc_engine
open Ulipc_os

let machine = Ulipc_machines.Sgi_indy.machine
let batch = 64
let batches = 100
let worker_cost = Sim_time.us 5 (* server-side work per task *)
let farmer_cost = Sim_time.us 20 (* client-side post-processing per result *)

let make_tasks b =
  List.init batch (fun i ->
      Ulipc.Message.make ~opcode:Echo ~reply_chan:0
        ~seq:((b * 1000) + i)
        (float_of_int i))

let run label farmer =
  let kernel =
    Kernel.create ~ncpus:machine.Ulipc_machines.Machine.ncpus
      ~policy:(machine.Ulipc_machines.Machine.policy ())
      ~costs:machine.Ulipc_machines.Machine.costs ()
  in
  let session =
    Ulipc.Session.create ~kernel ~costs:machine.Ulipc_machines.Machine.costs
      ~multiprocessor:false ~kind:(Ulipc.Protocol_kind.BSLS 10) ~nclients:1
      ~capacity:(4 * batch) ()
  in
  let total = batch * batches in
  let _server =
    Kernel.spawn kernel ~name:"worker" (fun () ->
        for _ = 1 to total do
          let m = Ulipc.Dispatch.receive session in
          Usys.work worker_cost;
          Ulipc.Dispatch.reply session ~client:m.Ulipc.Message.reply_chan
            (Ulipc.Message.echo_reply m)
        done)
  in
  let checksum = ref 0.0 in
  let _client = Kernel.spawn kernel ~name:"farmer" (farmer session checksum) in
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> Format.kasprintf failwith "run: %a" Kernel.pp_result r);
  let c = session.Ulipc.Session.counters in
  let sleeps = c.Ulipc.Counters.client_blocks + c.Ulipc.Counters.server_blocks in
  Format.printf
    "%-15s %a for %d tasks  (%6.2f us/task, %.3f sleep+wake pairs per task, \
     checksum %.0f)@."
    label Sim_time.pp (Kernel.now kernel) total
    (Sim_time.to_us (Kernel.now kernel) /. float_of_int total)
    (float_of_int sleeps /. float_of_int total)
    !checksum

let consume checksum (r : Ulipc.Message.t) =
  Usys.work farmer_cost;
  checksum := !checksum +. r.Ulipc.Message.arg

let synchronous session checksum () =
  for b = 1 to batches do
    List.iter
      (fun t ->
        let r = Ulipc.Dispatch.send session ~client:0 t in
        consume checksum r)
      (make_tasks b)
  done

let async_batch session checksum () =
  for b = 1 to batches do
    let results = Ulipc.Async.call_batch session ~client:0 (make_tasks b) in
    List.iter (consume checksum) results
  done

let async_pipeline session checksum () =
  let post b = List.iter (Ulipc.Async.post session ~client:0) (make_tasks b) in
  let collect_batch () =
    for _ = 1 to batch do
      consume checksum (Ulipc.Async.collect session ~client:0)
    done
  in
  post 1;
  for b = 2 to batches do
    post b;
    collect_batch ()
  done;
  collect_batch ()

let () =
  Format.printf "task farm on the simulated uniprocessor: %d batches of %d@."
    batches batch;
  run "synchronous" synchronous;
  run "async batch" async_batch;
  run "async pipeline" async_pipeline
