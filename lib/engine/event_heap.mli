(** A deterministic priority queue of timed events.

    Events are ordered by time; events scheduled for the same instant are
    delivered in insertion order (FIFO), which makes simulation runs exactly
    reproducible.  The heap grows on demand and never shrinks. *)

type 'a t
(** A heap of events carrying payloads of type ['a]. *)

val create : ?initial_capacity:int -> unit -> 'a t
(** [create ()] is an empty heap.  [initial_capacity] defaults to 64 and
    must be positive. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of events currently queued. *)

val push : 'a t -> time:Sim_time.t -> 'a -> unit
(** [push h ~time e] schedules [e] at [time].  [time] may be in the past of
    previously popped events; the heap itself imposes no monotonicity (the
    simulation loop does). *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** Remove and return the earliest event, FIFO among equal times. *)

val peek_time : 'a t -> Sim_time.t option
(** Time of the earliest event without removing it. *)

val clear : 'a t -> unit

val drain : 'a t -> (Sim_time.t * 'a) list
(** [drain h] pops everything, earliest first, leaving [h] empty. *)
