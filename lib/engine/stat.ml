type t = {
  stat_name : string;
  keep_samples : bool;
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float; (* sum of squared deviations, Welford *)
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
  mutable samples : float list; (* newest first; only if keep_samples *)
  mutable sorted_cache : float array option;
}

let create ?(keep_samples = false) stat_name =
  {
    stat_name;
    keep_samples;
    n = 0;
    mean_acc = 0.0;
    m2 = 0.0;
    sum = 0.0;
    minv = nan;
    maxv = nan;
    samples = [];
    sorted_cache = None;
  }

let name t = t.stat_name

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if t.n = 1 then begin
    t.minv <- x;
    t.maxv <- x
  end
  else begin
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x
  end;
  if t.keep_samples then begin
    t.samples <- x :: t.samples;
    t.sorted_cache <- None
  end

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then nan else t.mean_acc
let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = t.minv
let max_value t = t.maxv

let sorted t =
  match t.sorted_cache with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort Float.compare a;
    t.sorted_cache <- Some a;
    a

let percentile t p =
  if not t.keep_samples then
    invalid_arg "Stat.percentile: accumulator does not keep samples";
  if t.n = 0 then invalid_arg "Stat.percentile: no samples";
  if p < 0.0 || p > 100.0 then invalid_arg "Stat.percentile: p out of range";
  let a = sorted t in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let merge_into ~dst src =
  if src.n > 0 then begin
    (* Chan et al. parallel-merge formulas. *)
    let na = float_of_int dst.n and nb = float_of_int src.n in
    let delta = src.mean_acc -. dst.mean_acc in
    let n' = dst.n + src.n in
    let nf = float_of_int n' in
    let mean' =
      if dst.n = 0 then src.mean_acc
      else dst.mean_acc +. (delta *. nb /. nf)
    in
    let m2' = dst.m2 +. src.m2 +. (delta *. delta *. na *. nb /. nf) in
    dst.n <- n';
    dst.mean_acc <- mean';
    dst.m2 <- (if na = 0.0 then src.m2 else m2');
    dst.sum <- dst.sum +. src.sum;
    dst.minv <-
      (if Float.is_nan dst.minv then src.minv else Stdlib.min dst.minv src.minv);
    dst.maxv <-
      (if Float.is_nan dst.maxv then src.maxv else Stdlib.max dst.maxv src.maxv);
    if dst.keep_samples && src.keep_samples then begin
      dst.samples <- List.rev_append src.samples dst.samples;
      dst.sorted_cache <- None
    end
  end

let reset t =
  t.n <- 0;
  t.mean_acc <- 0.0;
  t.m2 <- 0.0;
  t.sum <- 0.0;
  t.minv <- nan;
  t.maxv <- nan;
  t.samples <- [];
  t.sorted_cache <- None

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "%s: (no samples)" t.stat_name
  else
    Format.fprintf ppf "%s: n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f"
      t.stat_name t.n (mean t)
      (if t.n < 2 then 0.0 else stddev t)
      t.minv t.maxv

let pp_histogram ?(buckets = 16) ?(log_scale = true) () ppf t =
  if not t.keep_samples then
    invalid_arg "Stat.pp_histogram: accumulator does not keep samples";
  if t.n = 0 then invalid_arg "Stat.pp_histogram: no samples";
  let lo = t.minv and hi = t.maxv in
  if lo = hi then
    Format.fprintf ppf "all %d samples at %.2f@." t.n lo
  else begin
    (* Geometric edges need a positive lower bound; shift if necessary. *)
    let shift = if log_scale && lo <= 0.0 then 1.0 -. lo else 0.0 in
    let lo' = lo +. shift and hi' = hi +. shift in
    let edge i =
      if log_scale then
        (lo' *. ((hi' /. lo') ** (float_of_int i /. float_of_int buckets)))
        -. shift
      else
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int buckets)
    in
    let counts = Array.make buckets 0 in
    List.iter
      (fun x ->
        let rec find i =
          if i >= buckets - 1 then buckets - 1
          else if x < edge (i + 1) then i
          else find (i + 1)
        in
        let i = find 0 in
        counts.(i) <- counts.(i) + 1)
      t.samples;
    let peak = Array.fold_left max 1 counts in
    for i = 0 to buckets - 1 do
      let bar = counts.(i) * 50 / peak in
      Format.fprintf ppf "%12.2f .. %12.2f  %6d %s@." (edge i)
        (edge (i + 1))
        counts.(i)
        (String.make bar '#')
    done
  end
