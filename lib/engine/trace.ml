type entry = { at : Sim_time.t; tag : string; detail : string }

type t = {
  enabled : bool;
  capacity : int;
  ring : entry option array;
  mutable next : int; (* total entries ever recorded *)
}

let create ?(capacity = 4096) ~enabled () =
  if capacity <= 0 then invalid_arg "Trace.create";
  { enabled; capacity; ring = Array.make capacity None; next = 0 }

let enabled t = t.enabled

let record t ~at ~tag detail =
  if t.enabled then begin
    t.ring.(t.next mod t.capacity) <- Some { at; tag; detail };
    t.next <- t.next + 1
  end

let recordf t ~at ~tag fmt =
  if t.enabled then
    Format.kasprintf (fun detail -> record t ~at ~tag detail) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t =
  let n = Stdlib.min t.next t.capacity in
  let start = if t.next <= t.capacity then 0 else t.next mod t.capacity in
  let rec loop i acc =
    if i = n then List.rev acc
    else
      match t.ring.((start + i) mod t.capacity) with
      | None -> loop (i + 1) acc
      | Some e -> loop (i + 1) (e :: acc)
  in
  loop 0 []

let find t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)
let count t ~tag = List.length (find t ~tag)
let total_recorded t = t.next

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0

let pp ppf t =
  let pp_entry ppf e =
    Format.fprintf ppf "[%a] %-12s %s" Sim_time.pp e.at e.tag e.detail
  in
  Format.pp_print_list pp_entry ppf (entries t)
