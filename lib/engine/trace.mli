(** Bounded execution trace.

    The simulator can record what happened (context switches, syscalls,
    queue operations…) into a fixed-capacity ring.  Tests assert on the
    recorded sequence; benchmarks disable recording entirely so tracing
    never perturbs timing-sensitive code paths. *)

type entry = { at : Sim_time.t; tag : string; detail : string }

type t

val create : ?capacity:int -> enabled:bool -> unit -> t
(** [capacity] (default 4096) bounds retained entries; older entries are
    overwritten. *)

val enabled : t -> bool

val record : t -> at:Sim_time.t -> tag:string -> string -> unit
(** No-op when the trace is disabled, including the formatting cost if the
    caller guards with {!enabled}. *)

val recordf :
  t ->
  at:Sim_time.t ->
  tag:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted variant.  Formatting is skipped when disabled. *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val find : t -> tag:string -> entry list
(** Retained entries with the given tag, oldest first. *)

val count : t -> tag:string -> int
(** Number of {e retained} entries with the given tag. *)

val total_recorded : t -> int
(** Number of entries ever recorded, including overwritten ones. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
