(* Universal type via a locally defined exception constructor: each [embed]
   creates a fresh constructor, so projection is a safe pattern match. *)

type t = exn

let embed (type a) () =
  let module M = struct
    exception E of a
  end in
  let inject x = M.E x in
  let project = function M.E x -> Some x | _ -> None in
  (inject, project)
