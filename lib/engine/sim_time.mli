(** Simulated time.

    All simulator components agree on a single integer time base of
    nanoseconds.  Integers keep the simulation exactly deterministic: there
    is no floating-point accumulation drift, comparisons are total, and the
    event heap tie-breaking is reproducible across platforms. *)

type t = int
(** A point in simulated time, or a duration, in nanoseconds.  Simulation
    runs start at [zero]; durations are non-negative. *)

val zero : t

val ns : int -> t
(** [ns n] is a duration of [n] nanoseconds. *)

val us : int -> t
(** [us n] is a duration of [n] microseconds. *)

val us_f : float -> t
(** [us_f x] is a duration of [x] microseconds, rounded to the nearest
    nanosecond.  Used for calibration constants such as [0.35] µs. *)

val ms : int -> t
(** [ms n] is a duration of [n] milliseconds. *)

val sec : int -> t
(** [sec n] is a duration of [n] seconds. *)

val to_us : t -> float
(** [to_us t] is [t] expressed in microseconds. *)

val to_ms : t -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val to_sec : t -> float
(** [to_sec t] is [t] expressed in seconds. *)

val add : t -> t -> t
val sub : t -> t -> t
val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Pretty-print with an adaptive unit (ns, µs, ms or s). *)
