(* Binary min-heap over (time, seq) with seq breaking ties FIFO.  The backing
   array is allocated lazily on first push so no dummy element is needed. *)

type 'a entry = { time : Sim_time.t; seq : int; payload : 'a }

type 'a t = {
  mutable entries : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  initial_capacity : int;
}

let create ?(initial_capacity = 64) () =
  if initial_capacity <= 0 then invalid_arg "Event_heap.create";
  { entries = [||]; size = 0; next_seq = 0; initial_capacity }

let is_empty h = h.size = 0
let length h = h.size

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Ensure room for one more element; [filler] initialises fresh slots. *)
let reserve h filler =
  let n = Array.length h.entries in
  if h.size = n then begin
    let capacity = if n = 0 then h.initial_capacity else 2 * n in
    let entries = Array.make capacity filler in
    Array.blit h.entries 0 entries 0 h.size;
    h.entries <- entries
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes h.entries.(i) h.entries.(parent) then begin
      let tmp = h.entries.(i) in
      h.entries.(i) <- h.entries.(parent);
      h.entries.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && precedes h.entries.(left) h.entries.(!smallest) then
    smallest := left;
  if right < h.size && precedes h.entries.(right) h.entries.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.entries.(i) in
    h.entries.(i) <- h.entries.(!smallest);
    h.entries.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~time payload =
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  let entry = { time; seq; payload } in
  reserve h entry;
  h.entries.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.entries.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.entries.(0) <- h.entries.(h.size);
      sift_down h 0
    end;
    Some (top.time, top.payload)
  end

let peek_time h = if h.size = 0 then None else Some h.entries.(0).time
let clear h = h.size <- 0

let drain h =
  let rec loop acc =
    match pop h with None -> List.rev acc | Some e -> loop (e :: acc)
  in
  loop []
