(** Deterministic pseudo-random numbers for the simulator.

    A small splitmix64 generator: fast, high quality for simulation purposes,
    and — unlike [Stdlib.Random] — with a stable algorithm we control, so a
    given seed reproduces the same run on any OCaml version. *)

type t

val create : seed:int -> t
(** Independent generator from a 63-bit seed.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] is a fresh generator whose stream is a deterministic function
    of [t]'s current state; [t] itself advances.  Use to give each simulated
    process its own stream without cross-coupling. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used for Poisson
    inter-arrival think times. *)
