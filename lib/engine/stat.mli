(** Online summary statistics.

    Accumulates samples one at a time using Welford's algorithm for a
    numerically stable mean and variance, with optional retention of every
    sample for exact percentiles. *)

type t

val create : ?keep_samples:bool -> string -> t
(** [create name] is an empty accumulator.  With [keep_samples:true]
    (default [false]) all samples are retained so {!percentile} is exact;
    otherwise only the running summary is kept. *)

val name : t -> string
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the samples; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** [nan] when empty. *)

val max_value : t -> float
(** [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], by linear interpolation.
    Requires [keep_samples:true] and at least one sample.
    @raise Invalid_argument otherwise. *)

val merge_into : dst:t -> t -> unit
(** Fold the samples of the second accumulator into [dst].  Sample retention
    merges only if both accumulators keep samples. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit

val pp_histogram :
  ?buckets:int -> ?log_scale:bool -> unit -> Format.formatter -> t -> unit
(** Render retained samples as a text histogram ([buckets] rows, default
    16; geometric bucket edges when [log_scale], the default, since
    latency distributions are heavy-tailed).  Requires [keep_samples:true]
    and at least two distinct values.
    @raise Invalid_argument if samples were not kept or are empty. *)
