(** Universal type.

    Lets the simulated kernel's message queues carry payloads of any type
    without depending on the libraries that define those types.  Each
    [embed] call creates a fresh injection/projection pair; projecting a
    value embedded by a different pair yields [None]. *)

type t

val embed : unit -> ('a -> t) * (t -> 'a option)
(** [embed ()] is [(inject, project)] for a fresh brand. *)
