(* The real shared-memory arena: one mmap(MAP_SHARED) region of intnat
   words, viewed through a Bigarray, holding every ring, semaphore word
   and payload slot of a cross-process session.

   This is the real-path realisation of the layout the sim-only
   [Ulipc_shm.Arena] models (offset-addressed allocations carved out of
   one flat region): processes cannot share OCaml heap pointers, but
   they can share WORD OFFSETS into a common mapping, so every
   cross-process structure in lib/procipc is "a base offset plus a
   layout" exactly as the sim arena's [allocation] records are.

   The backing file is created in /dev/shm when available (tmpfs: pages
   never touch a disk) and unlinked immediately after the map — the
   mapping keeps the pages alive, nothing ever appears in a directory
   listing, and the memory is reclaimed when the last process unmaps.
   The driver forks AFTER mapping, so children inherit the MAP_SHARED
   pages at the same address and the Bigarray proxy each child's heap
   copy carries points into common physical memory.

   Allocation is a bump pointer with power-of-two alignment — sessions
   carve the arena up front and never free, so the sim arena's first-fit
   free list would be dead weight here.  The allocator is parent-only
   (pre-fork); the shared words themselves are the concurrent part. *)

type words =
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  words : words;
  size_words : int;
  mutable next : int; (* bump pointer, in words *)
}

(* Cache-line pitch in words: allocations that pad to this never false-
   share with a neighbour. *)
let cache_line_words = 8

let create ~size_words () =
  if size_words <= 0 then
    invalid_arg "Parena.create: size_words must be positive";
  let dir =
    if Sys.file_exists "/dev/shm" && Sys.is_directory "/dev/shm" then
      "/dev/shm"
    else Filename.get_temp_dir_name ()
  in
  let path = Filename.temp_file ~temp_dir:dir "ulipc_arena_" ".mem" in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  Unix.unlink path;
  let ga =
    Unix.map_file fd Bigarray.int Bigarray.c_layout true [| size_words |]
  in
  Unix.close fd;
  let words = Bigarray.array1_of_genarray ga in
  (* map_file zero-fills fresh pages; the explicit fill also faults every
     page in pre-fork, so neither child pays first-touch faults inside
     the measured interval. *)
  Bigarray.Array1.fill words 0;
  { words; size_words; next = 0 }

let words t = t.words
let size_words t = t.size_words
let used_words t = t.next

let alloc t ~words ~align =
  if words < 0 then invalid_arg "Parena.alloc: negative size";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Parena.alloc: align must be a positive power of two";
  let off = (t.next + align - 1) land lnot (align - 1) in
  if off + words > t.size_words then
    invalid_arg
      (Printf.sprintf "Parena.alloc: arena exhausted (%d + %d > %d words)"
         off words t.size_words);
  t.next <- off + words;
  off

let alloc_line t ~words = alloc t ~words ~align:cache_line_words

(* Plain word access: ordinary Bigarray loads/stores, which the native
   compiler inlines to single movs.  These are the fenceless
   single-writer accesses of the ring layouts — see the TSO publication
   argument in pring.ml. *)
let get t i = Bigarray.Array1.get t.words i
let set t i v = Bigarray.Array1.set t.words i v

(* Atomic word operations (C stubs, __atomic builtins on the mapped
   words).  [@@noalloc]: none of these allocates, raises or blocks. *)

external at_load_ : words -> int -> int = "ulipc_shm_at_load" [@@noalloc]
external at_store_ : words -> int -> int -> unit = "ulipc_shm_at_store"
[@@noalloc]

external at_xchg_ : words -> int -> int -> int = "ulipc_shm_at_xchg"
[@@noalloc]

external at_fetch_add_ : words -> int -> int -> int = "ulipc_shm_at_fetch_add"
[@@noalloc]

external at_cas_ : words -> int -> int -> int -> bool = "ulipc_shm_at_cas"
[@@noalloc]

let at_load t i = at_load_ t.words i
let at_store t i v = at_store_ t.words i v
let at_xchg t i v = at_xchg_ t.words i v
let at_fetch_add t i d = at_fetch_add_ t.words i d
let at_cas t i ~expected ~desired = at_cas_ t.words i expected desired

(* Kernel sleep/wake on an arena word (see shm_stubs.c for the 32-bit
   futex-word discipline and the shared-futex rationale). *)

external futex_wait_ : words -> int -> int -> int -> int
  = "ulipc_shm_futex_wait"

external futex_wake_ : words -> int -> int -> int = "ulipc_shm_futex_wake"
[@@noalloc]

type wait_result = Woken | Value_changed | Timed_out

let futex_wait t i ~expected ~timeout_ns =
  match futex_wait_ t.words i expected timeout_ns with
  | 1 -> Value_changed
  | 2 -> Timed_out
  | _ -> Woken

let futex_wake t i ~count = futex_wake_ t.words i count

external sched_yield : unit -> unit = "ulipc_shm_sched_yield"
