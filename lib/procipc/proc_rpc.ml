(* The cross-process RPC layer: Protocol_core instantiated over
   {!Proc_substrate}, so BSS, BSW, BSWY, BSLS, HANDOFF and ADAPT run
   over the shared arena with their send/receive/reply sequences
   written exactly once — in the core — and fork'd processes as the
   peers.  Single server (the proc plane has no sharded fleet); the
   dispatch below is the in-process Rpc's with the steal/stash/shard
   machinery removed.

   Payloads are ints only ({!Pslab}): an OCaml pointer cannot cross an
   address space, so the typed codec seam of the in-process Rpc
   collapses to the [int_codec] case — which is also the paper's model
   (register-sized messages).

   The waiting type is THE in-process [Ulipc_real.Rpc.waiting], re-
   exported by equation, so drivers configure both backends with one
   value.  The single-core clamp (no spin budget can pay off when the
   peers outnumber the CPUs) applies with extra force here: the peer is
   a process, and nothing preempts a spinning process early. *)

module S = Proc_substrate
module P = Ulipc.Protocol_core.Make (Proc_substrate)

type waiting = Ulipc_real.Rpc.waiting =
  | Spin
  | Block
  | Block_yield
  | Limited_spin of int
  | Handoff
  | Adaptive of int

type t = {
  waiting : waiting;
  sub : S.t;
  adapt : int array;
      (* per-channel adaptive MAX_SPIN: slot 0 = request channel (the
         server's), slot [1 + i] = reply channel [i] (client [i]'s).
         Plain ints: the array is copied at fork and each slot is only
         ever touched by the process that owns its channel. *)
}

let create ?(capacity = 64) ?trace ?slots ~nclients waiting =
  (match waiting with
  | Limited_spin max_spin when max_spin < 0 ->
    invalid_arg "Proc_rpc.create: max_spin must be non-negative"
  | Adaptive cap when cap < 0 ->
    invalid_arg "Proc_rpc.create: adaptive spin cap must be non-negative"
  | Spin | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ -> ());
  (* Same single-core clamp as the in-process Rpc (see its comment for
     the trace evidence): a spin budget is pure loss when the peer
     cannot run concurrently. *)
  let waiting =
    if Domain.recommended_domain_count () > 1 then waiting
    else
      match waiting with
      | Adaptive _ -> Adaptive 0
      | Limited_spin _ -> Limited_spin 0
      | w -> w
  in
  {
    waiting;
    sub = S.create ?trace ?slots ~capacity ~nclients ();
    adapt = Array.make (1 + nclients) 0;
  }

let sub t = t.sub
let nclients t = S.nclients t.sub
let slab t = S.slab t.sub
let arena t = S.arena t.sub
let trace t = S.trace t.sub
let counters t = S.counters t.sub
let wake_residue t = S.wake_residue t.sub
let harvest_sem_counters t = S.harvest_sem_counters t.sub
let waiting t = t.waiting

(* Conservative occupancy of the one request ring (see Pring.Mpsc.length
   for the snapshot invariant) — the parent's telemetry gauge, readable
   across the fork boundary because it is all arena words. *)
let request_depth t = S.queue_length t.sub (S.request t.sub)

let check_client t client =
  ignore (S.reply_channel t.sub client : S.channel)

let ctrs t = S.counters t.sub

let bump_sends t =
  let c = ctrs t in
  c.Ulipc.Counters.sends <- c.Ulipc.Counters.sends + 1

let bump_receives t =
  let c = ctrs t in
  c.Ulipc.Counters.receives <- c.Ulipc.Counters.receives + 1

let bump_replies t =
  let c = ctrs t in
  c.Ulipc.Counters.replies <- c.Ulipc.Counters.replies + 1

let bump_full_sleep t =
  let c = ctrs t in
  c.Ulipc.Counters.queue_full_sleeps <- c.Ulipc.Counters.queue_full_sleeps + 1

(* Slab exhaustion = flow control, bounded as in-process (an undersized
   explicit ~slots must error out, not hang every producer). *)
let alloc_retry_limit = 10_000

let rec alloc_slot_retry t retries =
  let slab = S.slab t.sub in
  let i = Pslab.try_alloc slab in
  if i >= 0 then i
  else if retries >= alloc_retry_limit then
    failwith
      (Printf.sprintf
         "Proc_rpc: payload slab exhausted (%d of %d slots in use): size \
          ~slots at least (nclients + 1) * (capacity + 1), or omit it for \
          that default"
         (Pslab.in_use_count slab) (Pslab.slots slab))
  else begin
    (match t.waiting with
    | Spin -> P.Prims.busy_wait t.sub
    | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
      bump_full_sleep t;
      S.flow_sleep t.sub);
    alloc_slot_retry t (retries + 1)
  end

let alloc_slot t = alloc_slot_retry t 0

(* Adaptive BSLS: the same hit/miss MAX_SPIN controller as the
   in-process Rpc (multiplicative growth with a +8 kick, halve on miss,
   collapse at or below the kick; the elapsed-time guard makes every
   descheduled spin a miss — see rpc.ml for the full argument).  The
   budget slot is a plain per-process int, single-writer by channel
   ownership. *)
let adaptive_dequeue t ch ~slot ~cap ~side =
  if cap = 0 then P.Prims.blocking_dequeue t.sub ch ~side ()
  else begin
    let cur = t.adapt.(slot) in
    let productive =
      if cur = 0 then not (S.queue_is_empty t.sub ch)
      else begin
        let t0 = Ulipc_observe.Clock.now_ns () in
        P.Prims.limited_spin t.sub ch ~side ~max_spin:cur;
        let spin_ns = Ulipc_observe.Clock.now_ns () - t0 in
        (not (S.queue_is_empty t.sub ch)) && spin_ns < 1_000 + (cur * 10)
      end
    in
    if productive then t.adapt.(slot) <- min cap ((2 * cur) + 8)
    else t.adapt.(slot) <- (if cur <= 8 then 0 else cur / 2);
    P.Prims.blocking_dequeue t.sub ch ~side ~on_empty:P.Prims.Hint_busy_wait ()
  end

(* Raw index plane: the core's per-protocol send/receive/reply bodies,
   dispatch on the waiting mode (single server, so [S.request] is the
   one request channel throughout). *)

let send_msg t ~client m =
  let sub = t.sub in
  let req_ch = S.request sub in
  let reply_ch = S.reply_channel sub client in
  let ans =
    match t.waiting with
    | Spin ->
      P.Prims.spin_enqueue sub req_ch m;
      P.Prims.spinning_dequeue sub reply_ch
    | Block ->
      P.Prims.flow_enqueue sub req_ch m;
      let (_ : bool) = P.Prims.wake_consumer sub req_ch ~target:P.Prims.Server in
      P.Prims.blocking_dequeue sub reply_ch ~side:P.Prims.Client ()
    | Block_yield ->
      P.Prims.flow_enqueue sub req_ch m;
      if P.Prims.wake_consumer sub req_ch ~target:P.Prims.Server then
        S.busy_wait sub;
      P.Prims.blocking_dequeue sub reply_ch ~side:P.Prims.Client
        ~on_empty:P.Prims.Hint_busy_wait ()
    | Limited_spin max_spin ->
      P.Prims.flow_enqueue sub req_ch m;
      let (_ : bool) = P.Prims.wake_consumer sub req_ch ~target:P.Prims.Server in
      if max_spin > 0 then
        P.Prims.limited_spin sub reply_ch ~side:P.Prims.Client ~max_spin;
      P.Prims.blocking_dequeue sub reply_ch ~side:P.Prims.Client
        ~on_empty:P.Prims.Hint_busy_wait ()
    | Handoff ->
      P.Prims.flow_enqueue sub req_ch m;
      if P.Prims.wake_consumer sub req_ch ~target:P.Prims.Server then
        S.handoff_server sub;
      P.Prims.blocking_dequeue sub reply_ch ~side:P.Prims.Client
        ~on_empty:P.Prims.Hint_handoff_server ()
    | Adaptive cap ->
      P.Prims.flow_enqueue sub req_ch m;
      let (_ : bool) = P.Prims.wake_consumer sub req_ch ~target:P.Prims.Server in
      adaptive_dequeue t reply_ch ~slot:(1 + client) ~cap ~side:P.Prims.Client
  in
  bump_sends t;
  ans

let receive_msg t =
  let sub = t.sub in
  let ch = S.request sub in
  let m =
    match t.waiting with
    | Spin -> P.Prims.spinning_dequeue sub ch
    | Block -> P.Prims.blocking_dequeue sub ch ~side:P.Prims.Server ()
    | Block_yield ->
      let m = S.dequeue sub ch in
      if m != S.no_msg then m
      else begin
        S.yield sub;
        P.Prims.blocking_dequeue sub ch ~side:P.Prims.Server ()
      end
    | Limited_spin max_spin ->
      if max_spin > 0 then
        P.Prims.limited_spin sub ch ~side:P.Prims.Server ~max_spin;
      P.Prims.blocking_dequeue sub ch ~side:P.Prims.Server ()
    | Handoff ->
      let m = S.dequeue sub ch in
      if m != S.no_msg then m
      else begin
        S.handoff_any sub;
        P.Prims.blocking_dequeue sub ch ~side:P.Prims.Server ()
      end
    | Adaptive cap ->
      adaptive_dequeue t ch ~slot:0 ~cap ~side:P.Prims.Server
  in
  bump_receives t;
  m

let reply_msg t ~client m =
  let sub = t.sub in
  let ch = S.reply_channel sub client in
  (match t.waiting with
  | Spin -> P.Prims.spin_enqueue sub ch m
  | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
    P.Prims.flow_enqueue sub ch m;
    let (_ : bool) = P.Prims.wake_consumer sub ch ~target:P.Prims.Client in
    ());
  bump_replies t

(* Typed layer: alloc/fill before, read/release after. *)

let send t ~client req =
  check_client t client;
  let slab = S.slab t.sub in
  let i = alloc_slot t in
  Pslab.set_client slab i client;
  Pslab.set_data slab i req;
  let j = send_msg t ~client i in
  let rep = Pslab.get_data slab j in
  Pslab.release slab j;
  rep

let call = send

let receive t =
  let slab = S.slab t.sub in
  let i = receive_msg t in
  let client = Pslab.get_client slab i in
  let req = Pslab.get_data slab i in
  Pslab.release slab i;
  (client, req)

let reply t ~client rep =
  check_client t client;
  let slab = S.slab t.sub in
  let j = alloc_slot t in
  Pslab.set_data slab j rep;
  reply_msg t ~client j

(* In-place serve: the request slot becomes the reply slot (the server
   owns it between dequeue and reply enqueue), so a server turn touches
   no allocator state at all. *)
let serve t f =
  let slab = S.slab t.sub in
  let i = receive_msg t in
  let client = Pslab.get_client slab i in
  let rep = f ~client (Pslab.get_data slab i) in
  Pslab.set_data slab i rep;
  reply_msg t ~client i

(* Asynchronous halves, for the pipelined client. *)

let post t ~client req =
  check_client t client;
  let slab = S.slab t.sub in
  let i = alloc_slot t in
  Pslab.set_client slab i client;
  Pslab.set_data slab i req;
  let req_ch = S.request t.sub in
  match t.waiting with
  | Spin -> P.Prims.spin_enqueue t.sub req_ch i
  | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
    P.Prims.flow_enqueue t.sub req_ch i;
    ignore (P.Prims.wake_consumer t.sub req_ch ~target:P.Prims.Server : bool)

let collect t ~client =
  check_client t client;
  let slab = S.slab t.sub in
  let ch = S.reply_channel t.sub client in
  let j =
    match t.waiting with
    | Spin -> P.Prims.spinning_dequeue t.sub ch
    | Block | Handoff ->
      P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client ()
    | Block_yield ->
      P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client
        ~on_empty:P.Prims.Hint_busy_wait ()
    | Limited_spin max_spin ->
      if max_spin > 0 then
        P.Prims.limited_spin t.sub ch ~side:P.Prims.Client ~max_spin;
      P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client
        ~on_empty:P.Prims.Hint_busy_wait ()
    | Adaptive cap ->
      adaptive_dequeue t ch ~slot:(1 + client) ~cap ~side:P.Prims.Client
  in
  let rep = Pslab.get_data slab j in
  Pslab.release slab j;
  rep

(* Sliding-window pipelining: keep [depth] requests in flight, collect
   one before posting the next — the same window the in-process
   call_pipelined maintains, minus the multipush shortcut (the arena
   SPSC ring has no producer-private buffer). *)
let call_pipelined t ~client ~depth reqs =
  if depth <= 0 then invalid_arg "Proc_rpc.call_pipelined: depth must be > 0";
  let n = Array.length reqs in
  let out = Array.make n 0 in
  let posted = ref 0 and collected = ref 0 in
  while !collected < n do
    while !posted < n && !posted - !collected < depth do
      post t ~client reqs.(!posted);
      incr posted
    done;
    out.(!collected) <- collect t ~client;
    incr collected
  done;
  out

(* Timed server receive — the dead-peer detection path.  The blocking
   loop (Figure 4's C.1..C.5) with the kernel wait bounded: when the
   timed P expires we must decide whether the timeout LOST A RACE with
   a producer.  The producers' protocol makes that decidable: a
   producer that saw awake = false has either already issued its V or
   is about to, so one more test-and-set of the awake flag tells the
   two cases apart —

   - awake was still false: no producer signalled since we cleared it;
     the flag is now restored to true (the TAS set it), the queue was
     empty at C.3 and nothing arrived, so this is a clean timeout.
     Any LATER producer sees awake = true and skips its V: no credit
     leaks.

   - awake was already true: a producer raced the timeout, its message
     is (or is about to be) in the queue and its credit is (or is about
     to be) in the semaphore.  Drain that credit — it may lag the flag
     by an instant, hence the bounded wait — and go collect the
     message. *)
let receive_opt t ~timeout_ns =
  let sub = t.sub in
  let ch = S.request sub in
  let slab = S.slab t.sub in
  let deadline = Ulipc_observe.Clock.now_ns () + timeout_ns in
  let finish m =
    bump_receives t;
    let client = Pslab.get_client slab m in
    let req = Pslab.get_data slab m in
    Pslab.release slab m;
    Some (client, req)
  in
  let rec loop () =
    let m = S.dequeue sub ch in
    if m != S.no_msg then finish m
    else begin
      S.awake_clear sub ch;
      let m = S.dequeue sub ch in
      if m != S.no_msg then begin
        P.Prims.drain_raced_wakeup sub ch;
        finish m
      end
      else begin
        let remaining = deadline - Ulipc_observe.Clock.now_ns () in
        if remaining > 0 && S.sem_p_timed sub ch ~timeout_ns:remaining then begin
          S.awake_set sub ch;
          loop ()
        end
        else if S.awake_test_and_set sub ch then begin
          (* Producer raced the timeout: its credit is in flight. *)
          while not (S.sem_try_p sub ch) do
            S.busy_wait sub
          done;
          loop ()
        end
        else None (* clean timeout; awake flag restored by the TAS *)
      end
    end
  in
  loop ()
