(* Shared payload slab: the cross-process sibling of the in-process
   Slab, restricted to what can actually cross an address space — per
   slot one CLIENT word and one DATA word (an immediate payload).  The
   in-process slab's [box] column (arbitrary OCaml values via Obj.repr)
   has no cross-process analogue: an OCaml pointer is meaningless in
   the peer, so the proc plane is int-payload only, like the paper's
   register-sized messages.

   Allocation is a Treiber free list threaded through per-slot NEXT
   words, with the head word packed as

     head = version * (nslots + 1) + (index + 1)      (0 = empty)

   so a CAS that pops the list also bumps a version and the classic
   lock-free-stack ABA (slot freed and re-pushed between a popper's
   head load and its CAS, leaving the popper to install a stale next)
   cannot produce a head that compares equal.  63-bit words give the
   version field > 2^40 laps even on large slabs — unreachable.

   try_alloc/release are the only cross-process-concurrent entry
   points; in_use and the high-water mark are maintained with
   fetch-add / CAS-max on their own shared words so the post-run report
   reflects all processes. *)

type t = {
  a : Parena.t;
  w : Parena.words;
  head_w : int; (* packed versioned free-list head *)
  in_use_w : int;
  hwm_w : int;
  next0 : int; (* per-slot free-list link (slot index or -1) *)
  client0 : int;
  data0 : int;
  nslots : int;
}

let nil = -1

let create a ~slots:nslots =
  if nslots <= 0 then invalid_arg "Pslab.create: slots must be positive";
  let head_w = Parena.alloc_line a ~words:Parena.cache_line_words in
  let in_use_w = Parena.alloc_line a ~words:Parena.cache_line_words in
  let hwm_w = Parena.alloc_line a ~words:Parena.cache_line_words in
  let next0 = Parena.alloc_line a ~words:nslots in
  let client0 = Parena.alloc_line a ~words:nslots in
  let data0 = Parena.alloc_line a ~words:nslots in
  (* Thread the free list 0 -> 1 -> ... -> nslots-1 -> nil and point
     the (version 0) head at slot 0. *)
  for i = 0 to nslots - 2 do
    Parena.set a (next0 + i) (i + 1)
  done;
  Parena.set a (next0 + nslots - 1) nil;
  Parena.set a head_w 1 (* version 0, index 0 *);
  { a; w = Parena.words a; head_w; in_use_w; hwm_w; next0; client0; data0;
    nslots }

let slots t = t.nslots

let rec bump_high_water t seen =
  let hwm = Parena.at_load t.a t.hwm_w in
  if seen > hwm
     && not (Parena.at_cas t.a t.hwm_w ~expected:hwm ~desired:seen)
  then bump_high_water t seen

let rec try_alloc t =
  let h = Parena.at_load t.a t.head_w in
  let m = t.nslots + 1 in
  let idx = (h mod m) - 1 in
  if idx < 0 then nil
  else begin
    let next = Parena.get t.a (t.next0 + idx) in
    let desired = (((h / m) + 1) * m) + next + 1 in
    if Parena.at_cas t.a t.head_w ~expected:h ~desired then begin
      let now = Parena.at_fetch_add t.a t.in_use_w 1 + 1 in
      bump_high_water t now;
      idx
    end
    else try_alloc t
  end

let rec release t i =
  let h = Parena.at_load t.a t.head_w in
  let m = t.nslots + 1 in
  Parena.set t.a (t.next0 + i) ((h mod m) - 1);
  let desired = (((h / m) + 1) * m) + i + 1 in
  if Parena.at_cas t.a t.head_w ~expected:h ~desired then
    ignore (Parena.at_fetch_add t.a t.in_use_w (-1) : int)
  else release t i

let in_use_count t = Parena.at_load t.a t.in_use_w
let high_water t = Parena.at_load t.a t.hwm_w

module A1 = Bigarray.Array1

(* Payload accessors: plain word traffic, published (like a ring slot)
   by the enqueue of the slot index that follows the fill. *)
let set_client t i c = A1.unsafe_set t.w (t.client0 + i) c
let get_client t i = A1.unsafe_get t.w (t.client0 + i)
let set_data t i v = A1.unsafe_set t.w (t.data0 + i) v
let get_data t i = A1.unsafe_get t.w (t.data0 + i)
