(** The cross-process shared-memory arena: an mmap'd ([MAP_SHARED])
    region of intnat words behind a Bigarray, carved up by a bump
    allocator into the rings, semaphore words and payload slots of a
    {!Proc_substrate} session.

    Processes share {e word offsets}, never OCaml pointers: the parent
    maps and carves the arena, then forks — children inherit the mapping
    (same pages, same address), and their copies of the OCaml records
    that name offsets into it keep working unchanged.  The backing file
    lives in [/dev/shm] when present and is unlinked as soon as it is
    mapped.

    Allocation is parent-only (pre-fork).  The shared {e words} are the
    concurrent part: plain {!get}/{!set} for single-writer publishes
    (the rings' fenceless stores — see pring.ml for the TSO argument)
    and the [at_*] atomics plus {!futex_wait}/{!futex_wake} for
    everything that synchronises. *)

type words =
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val cache_line_words : int
(** 8: allocation pitch that defeats false sharing between neighbours. *)

val create : size_words:int -> unit -> t
(** Map a fresh zero-filled shared region of [size_words] words (every
    page faulted in, so children never pay first-touch faults).
    @raise Invalid_argument if [size_words <= 0]. *)

val words : t -> words
(** The raw mapped words, for modules that inline their own unsafe
    accesses over a carved-out span. *)

val size_words : t -> int
val used_words : t -> int

val alloc : t -> words:int -> align:int -> int
(** Bump-allocate [words] words aligned to [align] (a power of two);
    returns the word offset.  No free — sessions carve once, pre-fork.
    @raise Invalid_argument on exhaustion or a non-power-of-two align. *)

val alloc_line : t -> words:int -> int
(** {!alloc} at cache-line alignment. *)

val get : t -> int -> int
(** Plain (fenceless) word load. *)

val set : t -> int -> int -> unit
(** Plain (fenceless) word store. *)

(** {1 Atomic word operations} (C stubs over the mapped words) *)

val at_load : t -> int -> int
(** Acquire load. *)

val at_store : t -> int -> int -> unit
(** Release store. *)

val at_xchg : t -> int -> int -> int
(** Atomic exchange; returns the previous value. *)

val at_fetch_add : t -> int -> int -> int
(** Atomic fetch-and-add; returns the previous value. *)

val at_cas : t -> int -> expected:int -> desired:int -> bool

(** {1 Kernel sleep/wake} *)

type wait_result = Woken | Value_changed | Timed_out

val futex_wait : t -> int -> expected:int -> timeout_ns:int -> wait_result
(** Park until word [i]'s low 32 bits differ from [expected] or a wake
    arrives; [timeout_ns < 0] waits forever.  [Woken] covers genuine,
    spurious and signal-interrupted wake-ups — callers re-check their
    predicate. *)

val futex_wake : t -> int -> count:int -> int
(** Wake up to [count] parked processes; returns the number woken. *)

val sched_yield : unit -> unit
(** [sched_yield] with the OCaml runtime lock released — the
    uniprocessor's cross-process busy-wait. *)
