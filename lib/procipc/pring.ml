(* The flat rings of the message plane, ported onto the shared arena:
   the same layouts as the in-process Spsc_ring (Lamport with cached
   peer snapshots) and Mpsc_ring (Vyukov bounded queue, single
   consumer), with every index and slot a word INSIDE the mmap'd
   region instead of an OCaml array cell.

   What changes when the array becomes MAP_SHARED words:

   - Indices are plain Bigarray loads/stores ([Array1.unsafe_get/set]
     over [Bigarray.int] compile to bare movs natively).  The TSO
     publication argument is identical to the in-process rings' Obj.magic
     fenceless stores: each index has a single writer, the slot store
     precedes the index publish (store-store), the slot load precedes
     the consume-side publish (load-store), and x86-TSO reorders
     neither.  That the peer is now another PROCESS is irrelevant —
     MAP_SHARED pages are the same physical cache lines in both address
     spaces, so the coherence argument carries over verbatim.  On a
     weakly-ordered target the index accesses must become
     [Parena.at_load]/[at_store] (the C stubs' acquire/release forms).

   - The MPSC producers' ticket CAS goes through [Parena.at_cas] — that
     one is a real lock;cmpxchg, exactly as [Atomic.compare_and_set]
     was, and remains the only synchronising instruction on the path.

   - The SPSC per-side peer snapshots ([cached_head]/[cached_tail])
     stay ORDINARY OCAML MUTABLE FIELDS.  The record is copied
     copy-on-write at fork, so each process gets its own private
     snapshot — which is precisely what "producer-private"/
     "consumer-private" meant in-process.  They start at 0 (never ahead
     of any real index) and are refreshed from the shared word whenever
     they make the ring look full/empty, so a stale snapshot only costs
     a re-read, never correctness.

   - Geometry (power-of-two slot count, exact logical cap, unwrapped
     indices) comes from the same [Ring_layout] the in-process rings
     use, so the two backends cannot drift.

   Like the in-process rings, values are non-negative immediates (slab
   slot indices); [-1] is the empty sentinel. *)

module A1 = Bigarray.Array1

let nil = -1

(* Word offsets within a ring's arena span.  Index words get a cache
   line each (the whole point of splitting producer and consumer
   lines); slots start on their own line. *)
let idx0_off = 0
let idx1_off = Parena.cache_line_words
let slots_off = 2 * Parena.cache_line_words
let header_words = slots_off

module Spsc = struct
  type t = {
    w : Parena.words;
    head_w : int; (* next write index; written by the producer only *)
    tail_w : int; (* next read index; written by the consumer only *)
    slots : int; (* word offset of slot 0 *)
    mask : int;
    cap : int;
    mutable cached_tail : int; (* producer-PROCESS snapshot of [tail] *)
    mutable cached_head : int; (* consumer-PROCESS snapshot of [head] *)
  }

  let create a ~capacity =
    let ring, mask, cap =
      Ulipc_real.Ring_layout.geometry ~who:"Pring.Spsc.create" ~capacity
    in
    let base = Parena.alloc_line a ~words:(header_words + ring) in
    {
      w = Parena.words a;
      head_w = base + idx0_off;
      tail_w = base + idx1_off;
      slots = base + slots_off;
      mask;
      cap;
      cached_tail = 0;
      cached_head = 0;
    }

  let capacity q = q.cap

  (* Producer side: plain slot store published by the plain head store
     (TSO store-store; see header). *)
  let enqueue q v =
    if v < 0 then invalid_arg "Pring.Spsc.enqueue: negative value";
    let head = A1.unsafe_get q.w q.head_w in
    let free =
      head - q.cached_tail < q.cap
      ||
      (q.cached_tail <- A1.unsafe_get q.w q.tail_w;
       head - q.cached_tail < q.cap)
    in
    if free then begin
      A1.unsafe_set q.w (q.slots + (head land q.mask)) v;
      A1.unsafe_set q.w q.head_w (head + 1);
      true
    end
    else false

  (* Consumer side: slot load precedes the tail publish (load-store). *)
  let dequeue q =
    let tail = A1.unsafe_get q.w q.tail_w in
    let avail =
      q.cached_head - tail > 0
      ||
      (q.cached_head <- A1.unsafe_get q.w q.head_w;
       q.cached_head - tail > 0)
    in
    if avail then begin
      let v = A1.unsafe_get q.w (q.slots + (tail land q.mask)) in
      A1.unsafe_set q.w q.tail_w (tail + 1);
      v
    end
    else nil

  (* Snapshot ordering (Ring_layout rule): read the peer-advanced
     [tail] BEFORE own [head] so occupancy never goes negative. *)
  let is_empty q =
    let tail = A1.unsafe_get q.w q.tail_w in
    A1.unsafe_get q.w q.head_w - tail <= 0

  let length q =
    let tail = A1.unsafe_get q.w q.tail_w in
    A1.unsafe_get q.w q.head_w - tail
end

module Mpsc = struct
  type t = {
    a : Parena.t; (* kept for the ticket CAS *)
    w : Parena.words;
    tail_w : int; (* producers' ticket counter (CAS) *)
    head_w : int; (* next read index; written by the consumer only *)
    seqs : int; (* word offset of slot sequence 0 *)
    values : int; (* word offset of slot value 0 *)
    mask : int;
    ring : int;
    cap : int;
  }

  let create a ~capacity =
    let ring, mask, cap =
      Ulipc_real.Ring_layout.geometry ~who:"Pring.Mpsc.create" ~capacity
    in
    let base = Parena.alloc_line a ~words:(header_words + (2 * ring)) in
    let seqs = base + slots_off in
    (* Vyukov lap encoding: seq = i marks slot [i] free for ticket [i]
       (see mpsc_ring.ml for the full state table). *)
    for i = 0 to ring - 1 do
      Parena.set a (seqs + i) i
    done;
    {
      a;
      w = Parena.words a;
      tail_w = base + idx0_off;
      head_w = base + idx1_off;
      seqs;
      values = seqs + ring;
      mask;
      ring;
      cap;
    }

  let capacity q = q.cap

  (* Producers: exact capacity check, then the ticket CAS — the one
     real atomic on the path.  A won ticket owns its slot outright; the
     plain value store is published by the plain sequence bump (TSO). *)
  let rec raw_enqueue q v =
    let tail = Parena.at_load q.a q.tail_w in
    if tail - A1.unsafe_get q.w q.head_w >= q.cap then false
    else begin
      let i = tail land q.mask in
      let seq = A1.unsafe_get q.w (q.seqs + i) in
      if seq = tail then
        if Parena.at_cas q.a q.tail_w ~expected:tail ~desired:(tail + 1)
        then begin
          A1.unsafe_set q.w (q.values + i) v;
          A1.unsafe_set q.w (q.seqs + i) (tail + 1);
          true
        end
        else raw_enqueue q v (* lost the ticket race; retry *)
      else if seq - tail < 0 then
        false (* previous lap still occupied (Vyukov fallback) *)
      else raw_enqueue q v (* another producer advanced tail; reload *)
    end

  let enqueue q v =
    if v < 0 then invalid_arg "Pring.Mpsc.enqueue: negative value";
    raw_enqueue q v

  (* Single consumer: no CAS.  The sequence recycles a full lap BEFORE
     head advances, preserving the ordering the producers' capacity
     check relies on. *)
  let dequeue q =
    let head = A1.unsafe_get q.w q.head_w in
    let i = head land q.mask in
    if A1.unsafe_get q.w (q.seqs + i) = head + 1 then begin
      let v = A1.unsafe_get q.w (q.values + i) in
      A1.unsafe_set q.w (q.seqs + i) (head + q.ring);
      A1.unsafe_set q.w q.head_w (head + 1);
      v
    end
    else nil

  (* Snapshot rule with the roles swapped (consumer advances head):
     read [head] BEFORE [tail]. *)
  let is_empty q =
    let head = A1.unsafe_get q.w q.head_w in
    Parena.at_load q.a q.tail_w - head <= 0

  let length q =
    let head = A1.unsafe_get q.w q.head_w in
    Parena.at_load q.a q.tail_w - head
end
