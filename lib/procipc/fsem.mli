(** Futex-backed counting semaphore on two shared arena words: the
    cross-process realisation of the paper's blocking primitive.

    Uncontended V and P are each two userspace atomic operations (the
    benaphore bar the in-process [Rsem] set); the contended path parks
    in the kernel with [FUTEX_WAIT] keyed on the value word's address
    and is woken by the V side's [FUTEX_WAKE] — sleep-on-address /
    wakeup-by-address, for real.  See fsem.ml for the no-lost-wake-up
    interleaving argument. *)

type t

val create : ?initial:int -> Parena.t -> t
(** Carve the two semaphore words (one cache line apart) out of the
    arena.  Create pre-fork; the children's inherited copies of the
    record address the same shared words.
    @raise Invalid_argument if [initial < 0]. *)

val p : t -> unit
(** Down: one load + CAS while credit is available, else advertise,
    re-check and park in the kernel. *)

val try_p : t -> bool
(** Non-blocking down; [false] when the count is zero. *)

val p_timed : t -> timeout_ns:int -> bool
(** {!p} bounded by a deadline: [false] if no credit arrived within
    [timeout_ns] — the dead-peer detection primitive. *)

val v : t -> unit
(** Up: fetch-add plus a waiter-census load; issues [FUTEX_WAKE] only
    when somebody is actually parked. *)

val v_n : t -> int -> unit
(** [n] credits, one fetch-add, at most one wake syscall (for up to [n]
    waiters).  @raise Invalid_argument if [n < 0]. *)

val value : t -> int
(** Current count — the wake-residue probe. *)

val parks : t -> int
(** Kernel waits entered {e by the calling process} (statistics are
    process-local; drivers sum them post-run). *)

val grants : t -> int
(** Parked processes woken by the calling process's Vs. *)
