(* Futex-backed counting semaphore over two arena words — the paper's
   blocking primitive charged real FUTEX_WAIT/FUTEX_WAKE costs (the
   sleep-on-address / wakeup-by-address design: the kernel's wait queue
   is keyed by the value word's physical address, exactly the hash-table
   role toulouse's sleep.c plays in SNIPPETS.md).

   Layout (two cache lines so V and the waiter census never ping-pong):

     base + 0   value     the semaphore count, 64-bit atomics; also the
                          futex word (its low 32 bits — see shm_stubs.c)
     base + 8   nwaiters  how many processes are inside the kernel wait
                          (or committed to entering it)

   The uncontended paths are the two-atomic-op benaphore the in-process
   Rsem set as the bar:

     V: one fetch-add on value, one load of nwaiters (no syscall unless
        somebody is actually parked);
     P: one load of value, one CAS down (no syscall while credit is
        available).

   The contended P follows the classic futex discipline: advertise in
   nwaiters FIRST, re-check the count, then FUTEX_WAIT(value, 0).  A V
   that races any prefix of that sequence either (a) lands before the
   re-check — the waiter sees the credit and never sleeps; (b) lands
   between re-check and the kernel's own atomic compare — the futex
   word is no longer 0, the kernel returns EAGAIN; or (c) lands after
   the sleep — the V's nwaiters load (ordered after its fetch-add)
   observes the advertisement and issues the wake.  No interleaving
   loses a wake-up, which is invariant the trace analysis checks end to
   end.

   GRACE PERIOD: a park round trip costs about twice a yield hand-off
   on a uniprocessor (measured on this repo's 1-CPU reference box:
   ~2.2 µs of futex ping-pong per message vs ~1.5 µs for sched_yield —
   see EXPERIMENTS.md), and on a multiprocessor the common producer is
   only a few hundred nanoseconds from its V.  [p] therefore retries
   [try_p] a few times before the kernel wait — pause hints when the
   peer can run concurrently, [sched_yield]s when it cannot — the
   adaptive-semaphore discipline (glibc's spin-then-park mutexes), and
   the cross-process analogue of the in-process Backoff's pause budget.
   The grace is INSIDE the semaphore, below the Substrate.S seam: BSW
   still never spins on the QUEUE, the protocols' structure is
   untouched, and the bound (a handful of attempts) keeps a truly idle
   consumer's path to the kernel short.

   [p_timed] is the dead-peer guard: the same loop with a deadline
   threaded through FUTEX_WAIT's timeout, returning [false] once the
   deadline passes without a credit.  Callers own the protocol-level
   cleanup (see Proc_rpc.receive_opt).  No grace there — its caller is
   already prepared to wait the full timeout.

   Statistics (parks/grants) are process-local OCaml counters — each
   process tallies its own side and the driver sums them post-run,
   mirroring how the Rsem counters are harvested. *)

type t = {
  a : Parena.t;
  value_w : int;
  waiters_w : int;
  mutable parks : int; (* this process's kernel waits *)
  mutable grants : int; (* processes this process's Vs woke *)
}

let create ?(initial = 0) a =
  if initial < 0 then invalid_arg "Fsem.create: negative initial value";
  let base =
    Parena.alloc a
      ~words:(2 * Parena.cache_line_words)
      ~align:Parena.cache_line_words
  in
  Parena.at_store a base initial;
  {
    a;
    value_w = base;
    waiters_w = base + Parena.cache_line_words;
    parks = 0;
    grants = 0;
  }

let value t = Parena.at_load t.a t.value_w

let v_n t n =
  if n < 0 then invalid_arg "Fsem.v_n: negative count";
  if n > 0 then begin
    ignore (Parena.at_fetch_add t.a t.value_w n : int);
    (* The fetch-add above is a full RMW, so this load is ordered after
       it: a waiter that advertised before our add either sees the
       credit at its re-check or is observed here and woken. *)
    if Parena.at_load t.a t.waiters_w > 0 then
      t.grants <- t.grants + Parena.futex_wake t.a t.value_w ~count:n
  end

let v t = v_n t 1

let rec try_p t =
  let v = Parena.at_load t.a t.value_w in
  if v <= 0 then false
  else if Parena.at_cas t.a t.value_w ~expected:v ~desired:(v - 1) then true
  else try_p t

(* Grace attempts before a kernel park (see header).  On one CPU only a
   yield can make the expected V-issuer runnable, and two attempts
   cover the common hand-off; concurrent peers get a longer pause-hint
   budget since each attempt is only a few nanoseconds. *)
let unicore = Domain.recommended_domain_count () <= 1
let grace_attempts = if unicore then 2 else 64

let rec p_grace t k =
  if try_p t then true
  else if k <= 0 then false
  else begin
    if unicore then Parena.sched_yield () else Domain.cpu_relax ();
    p_grace t (k - 1)
  end

let rec p t =
  if not (p_grace t grace_attempts) then begin
    ignore (Parena.at_fetch_add t.a t.waiters_w 1 : int);
    (* Re-check after advertising; the kernel re-checks once more under
       its own lock, so a V racing this window returns EAGAIN instead of
       sleeping through its own wake. *)
    if Parena.at_load t.a t.value_w = 0 then begin
      t.parks <- t.parks + 1;
      ignore
        (Parena.futex_wait t.a t.value_w ~expected:0 ~timeout_ns:(-1)
          : Parena.wait_result)
    end;
    ignore (Parena.at_fetch_add t.a t.waiters_w (-1) : int);
    p t
  end

(* The timed P of the dead-peer guard: deadline-based so retries around
   spurious wake-ups and raced credits never extend the total wait. *)
let p_timed t ~timeout_ns =
  let deadline = Ulipc_observe.Clock.now_ns () + max 0 timeout_ns in
  let rec go () =
    if try_p t then true
    else begin
      let remaining = deadline - Ulipc_observe.Clock.now_ns () in
      if remaining <= 0 then false
      else begin
        ignore (Parena.at_fetch_add t.a t.waiters_w 1 : int);
        if Parena.at_load t.a t.value_w = 0 then begin
          t.parks <- t.parks + 1;
          ignore
            (Parena.futex_wait t.a t.value_w ~expected:0
               ~timeout_ns:remaining
              : Parena.wait_result)
        end;
        ignore (Parena.at_fetch_add t.a t.waiters_w (-1) : int);
        go ()
      end
    end
  in
  go ()

let parks t = t.parks
let grants t = t.grants
