(* The cross-PROCESS instantiation of Ulipc.Substrate.S: every word the
   peers synchronise on — ring indices and slots, awake flags, futex
   semaphore counts, payload slots — lives in one mmap'd MAP_SHARED
   arena ({!Parena}), and the peers are fork'd processes, not domains.

   The OCaml records below are carved by the parent BEFORE forking and
   inherited copy-on-write: they hold word OFFSETS into the arena (plus
   process-private scratch like the backoff streak), so each child's
   private copy addresses the same shared words.  Nothing here is valid
   to create post-fork.

   Mapping of the Substrate.S primitives:

   - queue        -> {!Pring} flat rings on arena words (MPSC request
                     ring, one SPSC reply ring per client);
   - awake flag   -> one arena word, 0/1, test-and-set via the stub's
                     atomic exchange;
   - semaphore    -> {!Fsem}: two userspace atomics uncontended,
                     FUTEX_WAIT/FUTEX_WAKE contended — the kernel
                     sleep/wake-up the paper's blocking protocols need,
                     without a kernel queue object;
   - messages     -> {!Pslab} slot indices, no_msg = -1, as in-process.

   The scheduling hints differ from Real_substrate in one deliberate
   way: the peer is a separate PROCESS, so on a machine where the peers
   outnumber the CPUs a pause-hint spin burns the whole timeslice the
   peer needs (nothing preempts a spinning process early).  [busy_wait]
   therefore escalates cpu_relax -> sched_yield -> bounded nanosleep on
   a per-process failure streak, reset on every successful queue
   operation; on a multiprocessor the first rungs are pure userspace
   and the blocking protocols still park in the futex, untouched.

   Counters and trace events are PROCESS-LOCAL (each process accumulates
   into its own copy-on-write record); the fork driver marshals them
   back over a pipe and merges, so the published totals cover every
   process without a single shared cache line of instrumentation. *)

type channel = {
  queue : queue;
  awake_w : int; (* arena word: 0/1 consumer-awake flag *)
  sem : Fsem.t;
  chan_id : int; (* -1 = request channel, n >= 0 = reply channel n *)
}

and queue = Q_mpsc of Pring.Mpsc.t | Q_spsc of Pring.Spsc.t

type t = {
  arena : Parena.t;
  request_ch : channel;
  replies : channel array;
  slab : Pslab.t;
  counters : Ulipc.Counters.t; (* process-local; merged by the driver *)
  trace : Ulipc_real.Trace_ring.t option; (* process-local too *)
  multicore : bool;
  mutable streak : int; (* consecutive fruitless waits, process-local *)
}

type msg = int

let no_msg = Pslab.nil

external nanosleep_ns : int -> unit = "ulipc_nanosleep_ns"
external set_timerslack_ns : int -> unit = "ulipc_set_timerslack_ns"

let make_channel a ~chan_id queue =
  let awake_w = Parena.alloc_line a ~words:Parena.cache_line_words in
  Parena.set a awake_w 1 (* consumers start awake, as in-process *);
  { queue; awake_w; sem = Fsem.create a; chan_id }

let create ?trace ?slots ?(extra_words = 0) ~capacity ~nclients () =
  if nclients <= 0 then
    invalid_arg "Proc_substrate.create: nclients must be positive";
  Ulipc_real.Ring_layout.check_capacity ~who:"Proc_substrate.create" capacity;
  let slots =
    match slots with Some n -> n | None -> (nclients + 1) * (capacity + 1)
  in
  (* Generous sizing: every span below is an over-estimate (alloc_line
     rounds each request up to whole cache lines), so the bump allocator
     cannot run dry mid-carve. *)
  let ring = Ulipc_real.Ring_layout.ceil_pow2 capacity in
  let size_words =
    1024 + (4 * ring)
    + (nclients * ((2 * ring) + 128))
    + (4 * slots)
    + extra_words
  in
  let arena = Parena.create ~size_words () in
  (* Tight timerslack before forking: PR_SET_TIMERSLACK is inherited
     across fork, so one call here covers every child's nanosleep
     parks (see Backoff for the in-process rationale). *)
  set_timerslack_ns 1;
  let request_ch =
    make_channel arena ~chan_id:(-1)
      (Q_mpsc (Pring.Mpsc.create arena ~capacity))
  in
  let replies =
    Array.init nclients (fun i ->
        make_channel arena ~chan_id:i (Q_spsc (Pring.Spsc.create arena ~capacity)))
  in
  let slab = Pslab.create arena ~slots in
  {
    arena;
    request_ch;
    replies;
    slab;
    counters = Ulipc.Counters.create ();
    trace;
    multicore = Domain.recommended_domain_count () > 1;
    streak = 0;
  }

let arena t = t.arena
let slab t = t.slab
let trace t = t.trace
let nclients t = Array.length t.replies
let multicore t = t.multicore
let request t = t.request_ch

let reply_channel t n =
  if n < 0 || n >= Array.length t.replies then
    invalid_arg (Printf.sprintf "Proc_substrate.reply_channel: no channel %d" n);
  t.replies.(n)

let emit t ch kind =
  match t.trace with
  | None -> ()
  | Some sink -> Ulipc_real.Trace_ring.record sink kind ~chan:ch.chan_id

let emit_at t ch kind ~t_ns =
  match t.trace with
  | None -> ()
  | Some sink ->
    Ulipc_real.Trace_ring.record_at sink kind ~t_ns ~chan:ch.chan_id

(* Same stamping discipline as Real_substrate: producer events (Enqueue,
   Wake) carry a clock read taken BEFORE the operation, consumer events
   after — a producer descheduled between operation and clock read must
   not let the dequeue's stamp precede the enqueue's. *)
let pre_stamp t =
  match t.trace with None -> 0 | Some _ -> Ulipc_observe.Clock.now_ns ()

let progress t = t.streak <- 0

let enqueue t ch m =
  let t_ns = pre_stamp t in
  let ok =
    match ch.queue with
    | Q_mpsc q -> Pring.Mpsc.enqueue q m
    | Q_spsc q -> Pring.Spsc.enqueue q m
  in
  if ok then begin
    progress t;
    emit_at t ch Ulipc_observe.Event.Enqueue ~t_ns
  end;
  ok

let dequeue t ch =
  let m =
    match ch.queue with
    | Q_mpsc q -> Pring.Mpsc.dequeue q
    | Q_spsc q -> Pring.Spsc.dequeue q
  in
  if m != no_msg then begin
    progress t;
    emit t ch Ulipc_observe.Event.Dequeue
  end;
  m

let queue_is_empty _ ch =
  match ch.queue with
  | Q_mpsc q -> Pring.Mpsc.is_empty q
  | Q_spsc q -> Pring.Spsc.is_empty q

let queue_length _ ch =
  match ch.queue with
  | Q_mpsc q -> Pring.Mpsc.length q
  | Q_spsc q -> Pring.Spsc.length q

(* Awake flag: one shared word, exchange for the producers' TAS. *)
let awake_test_and_set t ch = Parena.at_xchg t.arena ch.awake_w 1 <> 0
let awake_clear t ch = Parena.at_store t.arena ch.awake_w 0
let awake_set t ch = Parena.at_store t.arena ch.awake_w 1
let awake_read t ch = Parena.at_load t.arena ch.awake_w <> 0

let sem_p t ch =
  emit t ch Ulipc_observe.Event.Block;
  Fsem.p ch.sem

let sem_try_p t ch =
  let ok = Fsem.try_p ch.sem in
  (* Successful non-blocking P = the C.3' drain of a raced wake-up;
     recorded so the credit algebra balances (see Real_substrate). *)
  if ok then emit t ch Ulipc_observe.Event.Wake_drain;
  ok

let sem_v t ch =
  emit t ch Ulipc_observe.Event.Wake;
  Fsem.v ch.sem

(* Timed P for dead-peer detection: NO Block event on purpose — a timed
   wait that expires would leave an unmatched Block in the credit
   algebra, and the timed path is a liveness probe outside the traced
   protocol (the trace runs use the untimed receive). *)
let sem_p_timed _ ch ~timeout_ns = Fsem.p_timed ch.sem ~timeout_ns

let slept t =
  let c = t.counters in
  c.Ulipc.Counters.backoff_sleeps <- c.Ulipc.Counters.backoff_sleeps + 1

(* Escalating cross-process wait (see header).  The rungs:
     1..64     pause hint       (multicore only — on a uniprocessor a
                                 pause never lets the peer run)
     ..256     sched_yield      (hands the quantum to the runnable peer)
     beyond    nanosleep 1us -> 2us -> ... capped at 50us
   The streak is process-local and reset by any successful queue
   operation, so a healthy session keeps re-earning the cheap rungs. *)
let busy_wait t =
  let n = t.streak + 1 in
  t.streak <- n;
  if t.multicore && n <= 64 then Domain.cpu_relax ()
  else if n <= 256 then Parena.sched_yield ()
  else begin
    let shift = min 6 ((n - 257) / 64) in
    nanosleep_ns (min 50_000 (1_000 lsl shift));
    slept t
  end

(* One BSLS poll slice: a pause hint keeps arrival latency minimal on a
   multiprocessor; on a uniprocessor only a yield can make the producer
   runnable at all. *)
let poll t _ = if t.multicore then Domain.cpu_relax () else Parena.sched_yield ()
let yield _ = Parena.sched_yield ()

(* No directed-handoff syscall exists for sibling processes either; the
   yield is the §6 approximation, same as in-process. *)
let handoff_server t =
  emit t t.request_ch Ulipc_observe.Event.Handoff;
  Parena.sched_yield ()

let handoff_any t =
  emit t t.request_ch Ulipc_observe.Event.Handoff;
  Parena.sched_yield ()

(* Full queue: the consumer process is saturated — sleep long enough
   that it actually runs (a yield alone can starve it behind other
   producers on a loaded box). *)
let flow_sleep t =
  nanosleep_ns 20_000;
  slept t

let note_spin_exhausted t ch = emit t ch Ulipc_observe.Event.Spin_exhaust
let counters t = t.counters

let wake_residue t =
  let req = Fsem.value t.request_ch.sem in
  Array.fold_left (fun acc ch -> acc + Fsem.value ch.sem) req t.replies

(* Process-local harvest: parks/grants tallies live in the per-process
   copies of the Fsem records, so each process harvests its OWN traffic
   into its OWN counters before marshalling them home. *)
let harvest_sem_counters t =
  let parks = ref 0 and grants = ref 0 in
  let tally ch =
    parks := !parks + Fsem.parks ch.sem;
    grants := !grants + Fsem.grants ch.sem
  in
  tally t.request_ch;
  Array.iter tally t.replies;
  let c = t.counters in
  c.Ulipc.Counters.sem_parks <- !parks;
  c.Ulipc.Counters.sem_grants <- !grants
