(** Flat bounded rings over shared arena words — the cross-process
    siblings of [Ulipc_real.Spsc_ring]/[Mpsc_ring], same layouts
    ({!Ulipc_real.Ring_layout}), same fenceless single-writer index
    publishes (see pring.ml for the MAP_SHARED TSO argument), values
    restricted to non-negative immediates with [-1] as empty.

    Constructors carve their span out of the arena and must run
    pre-fork; the record a child inherits keeps working because it
    names word {e offsets}, not pointers. *)

val nil : int
(** [-1], the empty-dequeue sentinel. *)

(** Single producer / single consumer: one client's reply ring. *)
module Spsc : sig
  type t

  val create : Parena.t -> capacity:int -> t
  (** @raise Invalid_argument if [capacity <= 0] or the arena is full. *)

  val capacity : t -> int

  val enqueue : t -> int -> bool
  (** [false] when full (exact against the logical capacity).
      @raise Invalid_argument on a negative value. *)

  val dequeue : t -> int
  (** The oldest value, or {!nil} when empty. *)

  val is_empty : t -> bool
  (** Lock-free hint, same snapshot invariant as
      [Ulipc_real.Spsc_ring.is_empty]: reads the consumer-advanced
      [tail] BEFORE the producer's [head], so a racing dequeue can never
      make an occupied ring look empty. *)

  val length : t -> int
  (** Racy but conservative occupancy snapshot (consumer index first):
      may over-report against a racing consumer — the stale [tail] only
      under-counts consumption, the later [head] only grows — and is
      never negative.  The telemetry sampler's cross-process ring-depth
      gauge. *)
end

(** Multi producer / single consumer: the server's request ring.
    Producers claim slots by a ticket CAS on a shared word; per-slot
    sequence words distinguish claimed-but-unfilled from ready. *)
module Mpsc : sig
  type t

  val create : Parena.t -> capacity:int -> t
  (** @raise Invalid_argument if [capacity <= 0] or the arena is full. *)

  val capacity : t -> int

  val enqueue : t -> int -> bool
  (** [false] when full; may transiently report full while the consumer
      is mid-dequeue — callers retry, as for a genuinely full ring.
      @raise Invalid_argument on a negative value. *)

  val dequeue : t -> int
  (** Single consumer only. *)

  val is_empty : t -> bool
  (** Lock-free hint, roles swapped from {!Spsc.is_empty} (here the
      single consumer advances [head]): reads [head] BEFORE the
      producers' ticket [tail], so a racing dequeue can never make an
      occupied ring look empty.  Counts claimed-but-unfilled slots as
      present. *)

  val length : t -> int
  (** Racy but conservative occupancy snapshot (consumer index first,
      including claimed slots): may over-report against a racing
      consumer, never negative. *)
end
