/* Atomic word operations and futex wait/wake over a shared-memory
   Bigarray — the C floor of the cross-process substrate.

   The arena is an (int, int_elt, c_layout) Bigarray.Array1 mapped
   MAP_SHARED, so every word is an intnat at data + 8*index shared
   bit-for-bit between the forked processes.  Plain loads/stores go
   through the normal Bigarray primitives (inlined to bare movs on the
   native compiler); these stubs supply only what plain accesses cannot:
   the atomic read-modify-writes that synchronise producers (exchange,
   fetch-add, compare-and-swap) and the kernel sleep/wake pair.

   Futexes address 32-bit words.  The semaphore value is maintained with
   64-bit atomics like every other arena word, and the futex syscalls
   target the SAME address, i.e. the low 4 bytes of the word — on the
   little-endian targets this backend supports (x86-64, aarch64) those
   low bytes ARE the value for the small non-negative counts a channel
   semaphore holds, so FUTEX_WAIT's atomic value-recheck observes
   exactly what the OCaml side published.  FUTEX_PRIVATE_FLAG is
   deliberately NOT used: private futexes key the wait queue by
   (mm, address) and never match across address spaces — the whole
   point here is that they must.

   Non-Linux fallback: futex_wait degrades to a bounded nanosleep and
   reports a spurious wake-up (the caller's P loop re-checks the count,
   so this is slow but correct), futex_wake to a no-op. */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <caml/threads.h>
#include <stdint.h>
#include <time.h>
#include <errno.h>

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif
#include <sched.h>

#define WORD_PTR(ba, i) (((intnat *)Caml_ba_data_val(ba)) + Long_val(i))

CAMLprim value ulipc_shm_at_load(value ba, value i)
{
  return Val_long(__atomic_load_n(WORD_PTR(ba, i), __ATOMIC_ACQUIRE));
}

CAMLprim value ulipc_shm_at_store(value ba, value i, value v)
{
  __atomic_store_n(WORD_PTR(ba, i), Long_val(v), __ATOMIC_RELEASE);
  return Val_unit;
}

CAMLprim value ulipc_shm_at_xchg(value ba, value i, value v)
{
  return Val_long(
      __atomic_exchange_n(WORD_PTR(ba, i), Long_val(v), __ATOMIC_ACQ_REL));
}

CAMLprim value ulipc_shm_at_fetch_add(value ba, value i, value d)
{
  return Val_long(
      __atomic_fetch_add(WORD_PTR(ba, i), Long_val(d), __ATOMIC_ACQ_REL));
}

CAMLprim value ulipc_shm_at_cas(value ba, value i, value expected, value desired)
{
  intnat exp = Long_val(expected);
  return Val_bool(__atomic_compare_exchange_n(WORD_PTR(ba, i), &exp,
                                              Long_val(desired), 0,
                                              __ATOMIC_ACQ_REL,
                                              __ATOMIC_ACQUIRE));
}

/* Park on word [i] while its low 32 bits still equal [expected].
   [timeout_ns] < 0 waits forever.  Returns 0 = woken (or a spurious or
   EINTR return — callers re-check), 1 = the value had already changed
   (EAGAIN: the wake raced ahead of the sleep), 2 = timed out.  The
   runtime lock is released for the whole kernel wait so a parked
   process never stalls a sibling domain's GC. */
CAMLprim value ulipc_shm_futex_wait(value ba, value i, value expected,
                                    value timeout_ns)
{
#ifdef __linux__
  uint32_t *uaddr = (uint32_t *)WORD_PTR(ba, i);
  uint32_t exp = (uint32_t)Long_val(expected);
  intnat tmo = Long_val(timeout_ns);
  struct timespec ts, *tsp = NULL;
  long r;
  int err;
  if (tmo >= 0) {
    ts.tv_sec = tmo / 1000000000;
    ts.tv_nsec = tmo % 1000000000;
    tsp = &ts;
  }
  caml_release_runtime_system();
  r = syscall(SYS_futex, uaddr, FUTEX_WAIT, exp, tsp, NULL, 0);
  err = errno;
  caml_acquire_runtime_system();
  if (r == 0) return Val_long(0);
  if (err == EAGAIN) return Val_long(1);
  if (err == ETIMEDOUT) return Val_long(2);
  return Val_long(0); /* EINTR and friends: treat as spurious wake */
#else
  struct timespec req = {0, 50000}; /* 50 us poll: slow but correct */
  (void)expected;
  (void)timeout_ns;
  (void)ba;
  (void)i;
  caml_release_runtime_system();
  nanosleep(&req, NULL);
  caml_acquire_runtime_system();
  return Val_long(0);
#endif
}

/* Wake up to [n] processes parked on word [i]; returns how many were
   actually woken.  Fast (one syscall, never blocks), so the runtime
   lock is kept. */
CAMLprim value ulipc_shm_futex_wake(value ba, value i, value n)
{
#ifdef __linux__
  long r = syscall(SYS_futex, (uint32_t *)WORD_PTR(ba, i), FUTEX_WAKE,
                   (int)Long_val(n), NULL, NULL, 0);
  return Val_long(r < 0 ? 0 : r);
#else
  (void)ba;
  (void)i;
  (void)n;
  return Val_long(0);
#endif
}

/* sched_yield with the runtime lock released: on a time-shared core
   this genuinely hands the quantum to the peer process, which is the
   cheapest cross-process "busy wait" a uniprocessor has. */
CAMLprim value ulipc_shm_sched_yield(value unit)
{
  (void)unit;
  caml_release_runtime_system();
  sched_yield();
  caml_acquire_runtime_system();
  return Val_unit;
}
