(** Shared payload slab over arena words: cross-process sibling of
    [Ulipc_real.Slab], int payloads only (an OCaml pointer cannot cross
    an address space).  Free list is a versioned Treiber stack — see
    pslab.ml for the ABA argument. *)

type t

val nil : int
(** [-1]: allocation-failure sentinel. *)

val create : Parena.t -> slots:int -> t
(** Carve [slots] slots pre-fork.
    @raise Invalid_argument if [slots <= 0] or the arena is full. *)

val slots : t -> int

val try_alloc : t -> int
(** A free slot index, or {!nil} when exhausted.  Safe from any
    process. *)

val release : t -> int -> unit
(** Return a slot to the free list.  Safe from any process. *)

val in_use_count : t -> int
val high_water : t -> int

(** {1 Per-slot payload words} (plain accesses; published by the ring
    enqueue of the slot index, exactly like the in-process slab) *)

val set_client : t -> int -> int -> unit
val get_client : t -> int -> int
val set_data : t -> int -> int -> unit
val get_data : t -> int -> int
