(* Send/Receive/Reply on real OCaml 5 domains.

   This module contains NO protocol logic of its own: it instantiates the
   substrate-parametric core (Ulipc.Protocol_core.Make) over the
   real-domains substrate and routes each call to the protocol selected at
   create time.  The producer steps P.1–P.3, the consumer sequence
   C.1–C.5, the raced-wake-up drain and the poll loops are the very same
   code the simulator runs. *)

open Ulipc_engine
module P = Ulipc.Protocol_core.Make (Real_substrate)

type waiting =
  | Spin
  | Block
  | Block_yield
  | Limited_spin of int
  | Handoff
  | Adaptive of int

type ('req, 'rep) t = {
  waiting : waiting;
  sub : Real_substrate.t;
  adapt : int Atomic.t array;
      (* per-channel adaptive MAX_SPIN: slot 0 is the request channel
         (read/written by the server only), slot [i+1] reply channel [i]
         (its owning client only) — Atomic for cross-domain publication,
         never contended. *)
  inject_req : int * 'req -> Univ.t;
  project_req : Univ.t -> (int * 'req) option;
  inject_rep : 'rep -> Univ.t;
  project_rep : Univ.t -> 'rep option;
}

let create ?(capacity = 64) ?transport ?trace ~nclients waiting =
  if nclients <= 0 then invalid_arg "Rpc.create: nclients must be positive";
  if capacity <= 0 then invalid_arg "Rpc.create: capacity must be positive";
  (match waiting with
  | Limited_spin max_spin when max_spin < 0 ->
    invalid_arg "Rpc.create: max_spin must be non-negative"
  | Adaptive cap when cap < 0 ->
    invalid_arg "Rpc.create: adaptive spin cap must be non-negative"
  | Spin | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ -> ());
  (* On a single-core host a spinning consumer occupies the only CPU its
     producer could use, so no spin budget can ever pay off — the paper's
     own uniprocessor rule (§2.1: yield, never spin).  Clamp the adaptive
     cap to 0 there: the controller then runs BSW's exact consumer path
     (one extra queue-occupancy load) instead of re-learning futility per
     channel. *)
  let waiting =
    match waiting with
    | Adaptive _ when Domain.recommended_domain_count () <= 1 -> Adaptive 0
    | w -> w
  in
  let inject_req, project_req = Univ.embed () in
  let inject_rep, project_rep = Univ.embed () in
  {
    waiting;
    sub = Real_substrate.create ?transport ?trace ~capacity ~nclients ();
    adapt = Array.init (nclients + 1) (fun _ -> Atomic.make 0);
    inject_req;
    project_req;
    inject_rep;
    project_rep;
  }

let nclients t = Real_substrate.nclients t.sub
let transport t = Real_substrate.transport t.sub
let trace t = Real_substrate.trace t.sub
let counters t = Real_substrate.counters t.sub
let wake_residue t = Real_substrate.wake_residue t.sub

(* Channels only ever carry the embedding of their direction, so a failed
   projection is a bug in this module, not a user error. *)
let project_rep t m =
  match t.project_rep m with Some v -> v | None -> assert false

let project_req t m =
  match t.project_req m with Some v -> v | None -> assert false

let check_client t client =
  ignore (Real_substrate.reply_channel t.sub client : Real_substrate.channel)

(* Adaptive BSLS: the BSLS code path with a per-channel MAX_SPIN that
   tracks the observed spin-success rate.  A spin episode that ends with
   a visible message (hit) grows the budget multiplicatively,
   [cur <- min cap (2*cur + 8)]; an exhausted spin (miss) halves it.  The
   +8 additive kick lets a budget of 0 restart: at [cur = 0] a
   queue-occupancy load stands in for the spin, so an arriving message
   still reads as a hit.  At [cap = 0] no budget can ever grow — the
   controller is skipped entirely and the path is exactly BSW's
   consumer sequence, which is what [create]'s single-core clamp
   relies on (never-spin must cost nothing next to BSW).

   A hit only counts if the spin stayed on the CPU: a spin whose wall
   time far exceeds its iteration budget was descheduled mid-spin, and
   a message visible on resume was delivered by the preemption, not the
   polling.  Crediting those turns oversubscription into the paper's
   Figure 11 positive feedback — preemption causes hits, hits grow the
   budget, longer spins cause more preemption — driving the budget to
   its cap exactly when spinning is most harmful.  The elapsed-time
   guard (two CLOCK_MONOTONIC reads, only on the [cur > 0] path) makes
   every descheduled spin a miss, so on a saturated host the budget
   decays to 0 and ADAPT converges to BSW.  The clock must be monotonic:
   a wall-clock step during the spin would read as a huge (or negative)
   elapsed time and poison the learned budget. *)
let adaptive_dequeue t ch ~slot ~cap ~side =
  if cap = 0 then P.Prims.blocking_dequeue t.sub ch ~side ()
  else begin
    let cur = Atomic.get slot in
    let productive =
      if cur = 0 then not (Real_substrate.queue_is_empty t.sub ch)
      else begin
        let t0 = Ulipc_observe.Clock.now_us () in
        P.Prims.limited_spin t.sub ch ~side ~max_spin:cur;
        let spin_us = Ulipc_observe.Clock.now_us () -. t0 in
        (* ~10 ns per cpu_relax iteration plus 1 µs of clock-granularity
           slack: a genuine early exit sits under this, while even one
           context-switch round (the cheapest way off the CPU and back)
           costs several µs and lands over it. *)
        (not (Real_substrate.queue_is_empty t.sub ch))
        && spin_us < 1.0 +. (float_of_int cur *. 1e-2)
      end
    in
    if productive then Atomic.set slot (min cap ((2 * cur) + 8))
    else Atomic.set slot (cur / 2);
    P.Prims.blocking_dequeue t.sub ch ~side
      ~on_empty:(fun () -> P.Prims.busy_wait t.sub)
      ()
  end

let ctrs t = Real_substrate.counters t.sub

let bump_sends t k =
  let c = ctrs t in
  c.Ulipc.Counters.sends <- c.Ulipc.Counters.sends + k

let bump_receives t k =
  let c = ctrs t in
  c.Ulipc.Counters.receives <- c.Ulipc.Counters.receives + k

let bump_replies t k =
  let c = ctrs t in
  c.Ulipc.Counters.replies <- c.Ulipc.Counters.replies + k

let send t ~client req =
  check_client t client;
  let m = t.inject_req (client, req) in
  let ans =
    match t.waiting with
    | Spin -> P.Bss.send t.sub ~client m
    | Block -> P.Bsw.send t.sub ~client m
    | Block_yield -> P.Bswy.send t.sub ~client m
    | Limited_spin max_spin -> P.Bsls.send t.sub ~client ~max_spin m
    | Handoff -> P.Handoff.send t.sub ~client m
    | Adaptive cap ->
      let request = Real_substrate.request t.sub in
      let reply_ch = Real_substrate.reply_channel t.sub client in
      P.Prims.flow_enqueue t.sub request m;
      let (_ : bool) =
        P.Prims.wake_consumer t.sub request ~target:P.Prims.Server
      in
      let ans =
        adaptive_dequeue t reply_ch ~slot:t.adapt.(client + 1) ~cap
          ~side:P.Prims.Client
      in
      bump_sends t 1;
      ans
  in
  project_rep t ans

let receive_msg t =
  match t.waiting with
  | Spin -> P.Bss.receive t.sub
  | Block -> P.Bsw.receive t.sub
  | Block_yield -> P.Bswy.receive t.sub
  | Limited_spin max_spin -> P.Bsls.receive t.sub ~max_spin
  | Handoff -> P.Handoff.receive t.sub
  | Adaptive cap ->
    let m =
      adaptive_dequeue t
        (Real_substrate.request t.sub)
        ~slot:t.adapt.(0) ~cap ~side:P.Prims.Server
    in
    bump_receives t 1;
    m

let receive t = project_req t (receive_msg t)

let reply t ~client rep =
  let m = t.inject_rep rep in
  match t.waiting with
  | Spin -> P.Bss.reply t.sub ~client m
  | Block -> P.Bsw.reply t.sub ~client m
  | Block_yield -> P.Bswy.reply t.sub ~client m
  (* BSLS, Handoff and Adaptive replies are the plain BSW producer steps. *)
  | Limited_spin _ | Adaptive _ -> P.Bsls.reply t.sub ~client m
  | Handoff -> P.Handoff.reply t.sub ~client m

(* The asynchronous halves, composed from the same shared primitives the
   synchronous protocols use (cf. Ulipc.Async on the simulator side). *)

let post t ~client req =
  check_client t client;
  let m = t.inject_req (client, req) in
  let request = Real_substrate.request t.sub in
  match t.waiting with
  | Spin -> P.Prims.spin_enqueue t.sub request m
  | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
    P.Prims.flow_enqueue t.sub request m;
    ignore (P.Prims.wake_consumer t.sub request ~target:P.Prims.Server : bool)

let collect_msg t ~client =
  let ch = Real_substrate.reply_channel t.sub client in
  match t.waiting with
  | Spin -> P.Prims.spinning_dequeue t.sub ch
  | Block | Handoff -> P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client ()
  | Block_yield ->
    P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client
      ~on_empty:(fun () -> P.Prims.busy_wait t.sub)
      ()
  | Limited_spin max_spin ->
    P.Prims.limited_spin t.sub ch ~side:P.Prims.Client ~max_spin;
    P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client
      ~on_empty:(fun () -> P.Prims.busy_wait t.sub)
      ()
  | Adaptive cap ->
    adaptive_dequeue t ch ~slot:t.adapt.(client + 1) ~cap ~side:P.Prims.Client

let collect t ~client = project_rep t (collect_msg t ~client)

(* ------------------------------------------------------------------ *)
(* Batched & pipelined fast path.                                      *)
(* ------------------------------------------------------------------ *)

let rec drop k = function
  | rest when k <= 0 -> rest
  | [] -> []
  | _ :: rest -> drop (k - 1) rest

let take_drop k vs =
  let rec go k acc = function
    | rest when k <= 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | v :: rest -> go (k - 1) (v :: acc) rest
  in
  go k [] vs

(* Wake the channel's consumer once for a whole batch: the tas guard is
   the same as wake_consumer's, but the credit is published through the
   coalescing [sem_v_n] — at most one signal per batch no matter how
   many messages just landed. *)
let wake_batch t ch ~target =
  if not (Real_substrate.awake_test_and_set t.sub ch) then begin
    let c = ctrs t in
    (match target with
    | P.Prims.Client ->
      c.Ulipc.Counters.client_wakeups <- c.Ulipc.Counters.client_wakeups + 1
    | P.Prims.Server ->
      c.Ulipc.Counters.server_wakeups <- c.Ulipc.Counters.server_wakeups + 1);
    Real_substrate.sem_v_n t.sub ch 1
  end

(* Enqueue the whole list with span claims, waking the consumer after
   every non-empty claim (not only at the end: if the queue fills while
   the consumer sleeps, only a wake-up can make room — deferring the
   wake to the end of the batch would deadlock). *)
let push_batch t ch ~target ms =
  let rec go ms =
    match ms with
    | [] -> ()
    | ms ->
      let k = Real_substrate.enqueue_many t.sub ch ms in
      if k > 0 then begin
        (match t.waiting with
        | Spin -> ()
        | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
          wake_batch t ch ~target);
        go (drop k ms)
      end
      else begin
        (match t.waiting with
        | Spin -> P.Prims.busy_wait t.sub
        | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
          let c = ctrs t in
          c.Ulipc.Counters.queue_full_sleeps <-
            c.Ulipc.Counters.queue_full_sleeps + 1;
          Real_substrate.flow_sleep t.sub);
        go ms
      end
  in
  go ms

let post_batch t ~client reqs =
  check_client t client;
  match reqs with
  | [] -> ()
  | reqs ->
    let ms = List.map (fun r -> t.inject_req (client, r)) reqs in
    push_batch t (Real_substrate.request t.sub) ~target:P.Prims.Server ms

let receive_batch t ~max =
  if max <= 0 then invalid_arg "Rpc.receive_batch: max must be positive";
  let first = receive_msg t in
  let rest =
    if max = 1 then []
    else
      Real_substrate.dequeue_many t.sub
        (Real_substrate.request t.sub)
        ~max:(max - 1)
  in
  bump_receives t (List.length rest);
  List.map (project_req t) (first :: rest)

let reply_batch t reps =
  (* Group consecutive same-client replies so each run costs one span
     claim and at most one wake-up, while per-client FIFO order is
     preserved whatever the interleaving of clients in [reps]. *)
  let rec runs = function
    | [] -> ()
    | (client, rep) :: rest ->
      let rec span acc = function
        | (c, r) :: rest when c = client -> span (t.inject_rep r :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let ms, rest = span [ t.inject_rep rep ] rest in
      check_client t client;
      let ch = Real_substrate.reply_channel t.sub client in
      push_batch t ch ~target:P.Prims.Client ms;
      bump_replies t (List.length ms);
      runs rest
  in
  runs reps

let collect_batch t ~client ~n =
  if n < 0 then invalid_arg "Rpc.collect_batch: negative n";
  check_client t client;
  let ch = Real_substrate.reply_channel t.sub client in
  let rec go acc got =
    if got >= n then List.rev acc
    else
      match Real_substrate.dequeue_many t.sub ch ~max:(n - got) with
      | [] -> go (collect_msg t ~client :: acc) (got + 1)
      | ms -> go (List.rev_append ms acc) (got + List.length ms)
  in
  List.map (project_rep t) (go [] 0)

let call_pipelined t ~client ~depth reqs =
  if depth <= 0 then invalid_arg "Rpc.call_pipelined: depth must be positive";
  check_client t client;
  let ch = Real_substrate.reply_channel t.sub client in
  (* Sliding window: keep up to [depth] requests outstanding; post in
     span-claimed bursts, collect opportunistically in batches. *)
  let rec go pending npending out acc =
    if npending = 0 && out = 0 then List.rev acc
    else if npending > 0 && out < depth then begin
      let k = min (depth - out) npending in
      let burst, rest = take_drop k pending in
      post_batch t ~client burst;
      go rest (npending - k) (out + k) acc
    end
    else
      let ms =
        match Real_substrate.dequeue_many t.sub ch ~max:out with
        | [] -> [ collect_msg t ~client ]
        | ms -> ms
      in
      go pending npending (out - List.length ms) (List.rev_append ms acc)
  in
  let n = List.length reqs in
  bump_sends t n;
  List.map (project_rep t) (go reqs n 0 [])
