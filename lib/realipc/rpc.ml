(* Send/Receive/Reply on real OCaml 5 domains.

   This module contains NO protocol logic of its own: it instantiates the
   substrate-parametric core (Ulipc.Protocol_core.Make) over the
   real-domains substrate and routes each call to the protocol selected at
   create time.  The producer steps P.1–P.3, the consumer sequence
   C.1–C.5, the raced-wake-up drain and the poll loops are the very same
   code the simulator runs. *)

open Ulipc_engine
module P = Ulipc.Protocol_core.Make (Real_substrate)

type waiting =
  | Spin
  | Block
  | Block_yield
  | Limited_spin of int
  | Handoff

type ('req, 'rep) t = {
  waiting : waiting;
  sub : Real_substrate.t;
  inject_req : int * 'req -> Univ.t;
  project_req : Univ.t -> (int * 'req) option;
  inject_rep : 'rep -> Univ.t;
  project_rep : Univ.t -> 'rep option;
}

let create ?(capacity = 64) ?transport ?trace ~nclients waiting =
  if nclients <= 0 then invalid_arg "Rpc.create: nclients must be positive";
  if capacity <= 0 then invalid_arg "Rpc.create: capacity must be positive";
  (match waiting with
  | Limited_spin max_spin when max_spin < 0 ->
    invalid_arg "Rpc.create: max_spin must be non-negative"
  | Spin | Block | Block_yield | Limited_spin _ | Handoff -> ());
  let inject_req, project_req = Univ.embed () in
  let inject_rep, project_rep = Univ.embed () in
  {
    waiting;
    sub = Real_substrate.create ?transport ?trace ~capacity ~nclients ();
    inject_req;
    project_req;
    inject_rep;
    project_rep;
  }

let nclients t = Real_substrate.nclients t.sub
let transport t = Real_substrate.transport t.sub
let trace t = Real_substrate.trace t.sub
let counters t = Real_substrate.counters t.sub
let wake_residue t = Real_substrate.wake_residue t.sub

(* Channels only ever carry the embedding of their direction, so a failed
   projection is a bug in this module, not a user error. *)
let project_rep t m =
  match t.project_rep m with Some v -> v | None -> assert false

let project_req t m =
  match t.project_req m with Some v -> v | None -> assert false

let check_client t client =
  ignore (Real_substrate.reply_channel t.sub client : Real_substrate.channel)

let send t ~client req =
  check_client t client;
  let m = t.inject_req (client, req) in
  let ans =
    match t.waiting with
    | Spin -> P.Bss.send t.sub ~client m
    | Block -> P.Bsw.send t.sub ~client m
    | Block_yield -> P.Bswy.send t.sub ~client m
    | Limited_spin max_spin -> P.Bsls.send t.sub ~client ~max_spin m
    | Handoff -> P.Handoff.send t.sub ~client m
  in
  project_rep t ans

let receive t =
  let m =
    match t.waiting with
    | Spin -> P.Bss.receive t.sub
    | Block -> P.Bsw.receive t.sub
    | Block_yield -> P.Bswy.receive t.sub
    | Limited_spin max_spin -> P.Bsls.receive t.sub ~max_spin
    | Handoff -> P.Handoff.receive t.sub
  in
  project_req t m

let reply t ~client rep =
  let m = t.inject_rep rep in
  match t.waiting with
  | Spin -> P.Bss.reply t.sub ~client m
  | Block -> P.Bsw.reply t.sub ~client m
  | Block_yield -> P.Bswy.reply t.sub ~client m
  | Limited_spin _ -> P.Bsls.reply t.sub ~client m
  | Handoff -> P.Handoff.reply t.sub ~client m

(* The asynchronous halves, composed from the same shared primitives the
   synchronous protocols use (cf. Ulipc.Async on the simulator side). *)

let post t ~client req =
  check_client t client;
  let m = t.inject_req (client, req) in
  let request = Real_substrate.request t.sub in
  match t.waiting with
  | Spin -> P.Prims.spin_enqueue t.sub request m
  | Block | Block_yield | Limited_spin _ | Handoff ->
    P.Prims.flow_enqueue t.sub request m;
    ignore (P.Prims.wake_consumer t.sub request ~target:P.Prims.Server : bool)

let collect t ~client =
  let ch = Real_substrate.reply_channel t.sub client in
  let m =
    match t.waiting with
    | Spin -> P.Prims.spinning_dequeue t.sub ch
    | Block | Handoff ->
      P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client ()
    | Block_yield ->
      P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client
        ~on_empty:(fun () -> P.Prims.busy_wait t.sub)
        ()
    | Limited_spin max_spin ->
      P.Prims.limited_spin t.sub ch ~side:P.Prims.Client ~max_spin;
      P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client
        ~on_empty:(fun () -> P.Prims.busy_wait t.sub)
        ()
  in
  project_rep t m
