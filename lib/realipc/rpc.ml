type waiting = Spin | Block | Limited_spin of int

(* One direction: a queue plus the sleep/wake-up state of its consumer. *)
type 'a channel = { q : 'a Tl_queue.t; awake : bool Atomic.t; sem : Rsem.t }

type ('req, 'rep) t = {
  waiting : waiting;
  request : (int * 'req) channel;
  replies : 'rep channel array;
}

let channel ~capacity =
  {
    q = Tl_queue.create ~capacity ();
    awake = Atomic.make true;
    sem = Rsem.create 0;
  }

let create ?(capacity = 64) ~nclients waiting =
  if nclients <= 0 then invalid_arg "Rpc.create: nclients must be positive";
  {
    waiting;
    request = channel ~capacity;
    replies = Array.init nclients (fun _ -> channel ~capacity);
  }

let nclients t = Array.length t.replies

let reply_channel t client =
  if client < 0 || client >= Array.length t.replies then
    invalid_arg (Printf.sprintf "Rpc: no client %d" client);
  t.replies.(client)

(* Producer side, steps P.1–P.3 with the test-and-set repair: enqueue
   (spinning through the rare full-queue condition), then wake the consumer
   only if the flag was clear. *)
let produce ch v ~wake =
  while not (Tl_queue.enqueue ch.q v) do
    Domain.cpu_relax ()
  done;
  if wake && not (Atomic.exchange ch.awake true) then Rsem.v ch.sem

let spin_dequeue ch =
  let rec loop () =
    match Tl_queue.dequeue ch.q with
    | Some v -> v
    | None ->
      Domain.cpu_relax ();
      loop ()
  in
  loop ()

(* The consumer sequence C.1–C.5 of Figure 5, on real atomics. *)
let blocking_dequeue ch =
  let rec outer () =
    match Tl_queue.dequeue ch.q with (* C.1 *)
    | Some v -> v
    | None -> (
      Atomic.set ch.awake false;
      (* C.2 *)
      match Tl_queue.dequeue ch.q with (* C.3 *)
      | None ->
        Rsem.p ch.sem;
        (* C.4 *)
        Atomic.set ch.awake true;
        (* C.5 *)
        outer ()
      | Some v ->
        (* A producer that saw the cleared flag also posted a V; drain it
           or wake-ups accumulate (Interleaving 3). *)
        if Atomic.exchange ch.awake true then Rsem.p ch.sem;
        v)
  in
  outer ()

let limited_spin_dequeue ch ~max_spin =
  let rec poll spincnt =
    if spincnt < max_spin && Tl_queue.is_empty ch.q then begin
      Domain.cpu_relax ();
      poll (spincnt + 1)
    end
  in
  poll 0;
  blocking_dequeue ch

let consume t ch =
  match t.waiting with
  | Spin -> spin_dequeue ch
  | Block -> blocking_dequeue ch
  | Limited_spin max_spin -> limited_spin_dequeue ch ~max_spin

let wake_needed t = match t.waiting with Spin -> false | Block | Limited_spin _ -> true

let post t ~client req =
  let (_ : 'rep channel) = reply_channel t client in
  produce t.request (client, req) ~wake:(wake_needed t)

let collect t ~client = consume t (reply_channel t client)

let send t ~client req =
  post t ~client req;
  collect t ~client

let receive t = consume t t.request

let reply t ~client rep =
  produce (reply_channel t client) rep ~wake:(wake_needed t)

let wake_residue t =
  Array.fold_left
    (fun acc ch -> acc + Rsem.value ch.sem)
    (Rsem.value t.request.sem) t.replies
