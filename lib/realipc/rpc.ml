(* Send/Receive/Reply on real OCaml 5 domains.

   This module contains NO protocol logic of its own: it instantiates the
   substrate-parametric core (Ulipc.Protocol_core.Make) over the
   real-domains substrate and composes each call from the core's shared
   primitives (P.Prims) — the producer steps P.1–P.3, the consumer
   sequence C.1–C.5, the raced-wake-up drain and the poll loops are the
   very same code the simulator runs.  The composition (rather than the
   core's fixed Bss/Bsw/... entry points) is what lets the request plane
   be SHARDED without widening the Substrate.S seam: a client's send
   targets its home shard's channel, a server's receive drains its own
   shard's channel, and at [nservers = 1] every composition reduces to
   the core module bodies verbatim.

   Cross-shard rebalancing is handoff-based stealing.  Mpsc_ring has
   exactly one legal consumer, so an idle server cannot dequeue from a
   sibling's ring; instead it posts a steal token (one CAS word per
   shard) on the deepest loaded sibling and goes through its normal
   blocking sequence.  The victim — checking its token once per receive
   — honours it by draining a span of its own backlog (dequeue_many, its
   right as the ring's consumer) and re-enqueueing the span on the
   thief's ring (enqueue_many; any domain may produce), then waking the
   thief like any other producer would.  Slot indices move between rings
   for free: the payload slab is shared, so a steal copies ints, never
   messages.  Whatever the thief's ring cannot accept stays in the
   victim's private stash, consumed before its own ring — a message
   leaves its home ring at most once and can never be lost or
   duplicated.

   What this module also owns is the slot lifecycle of the zero-copy
   message plane.  The queues carry slab slot indices (Real_substrate's
   [msg = int]); a codec pair marshals the session's typed payloads into
   a slot's flat fields.  Ownership of a slot follows the message: the
   sender allocates and fills it, the queue transfer hands it over, and
   the receiver reads and releases it (or, in [serve], refills it in
   place for the reply).  On the ring transport a steady-state
   round-trip with immediate payloads therefore allocates nothing on the
   minor heap — no message records, no options, no closures, no queue
   nodes. *)

module P = Ulipc.Protocol_core.Make (Real_substrate)

type waiting =
  | Spin
  | Block
  | Block_yield
  | Limited_spin of int
  | Handoff
  | Adaptive of int

type 'a codec = {
  write : Slab.t -> int -> 'a -> unit;
  read : Slab.t -> int -> 'a;
}

(* The generality Univ used to provide, moved into the slot: arbitrary
   boxed payloads ride the slab's box field.  The dynamic check Univ did
   per message is replaced by the session invariant that each channel
   direction only ever carries its own codec's encoding — enforced by
   the ('req, 'rep) phantom on [t], not at runtime. *)
let boxed_codec () =
  {
    write = (fun slab i v -> Slab.set_box slab i (Obj.repr v));
    read = (fun slab i -> Obj.obj (Slab.get_box slab i));
  }

let int_codec = { write = Slab.set_data; read = Slab.get_data }
let float_codec = { write = Slab.set_arg; read = Slab.get_arg }

(* Per-server mutable state, owned exclusively by that server's domain
   (the scratch buffers and the stash are single-writer by the same
   convention that makes the Mpsc_ring consumer unique). *)
type server_state = {
  scratch : int array; (* span buffer for batch drains *)
  steal_buf : int array; (* span buffer for honouring a steal token *)
  stash : int array;
      (* handoff leftovers the thief's ring could not accept: consumed
         before the own ring, so stealing can never lose a message *)
  mutable stash_pos : int;
  mutable stash_len : int;
  mutable posted_on : int;
      (* the victim shard this server currently has a steal token posted
         on, -1 if none — so a server never posts two claims at once and
         can retract after its own traffic resumes *)
}

type ('req, 'rep) t = {
  waiting : waiting;
  sub : Real_substrate.t;
  adapt : int Atomic.t array;
      (* per-channel adaptive MAX_SPIN: slot [k < nservers] is request
         shard [k] (read/written by its server only), slot
         [nservers + i] reply channel [i] (its owning client only) —
         Atomic for cross-domain publication, never contended. *)
  req_codec : 'req codec;
  rep_codec : 'rep codec;
  servers : server_state array;
  client_scratch : int array array;
      (* span buffer per client, for its bursts and batch collects;
         owned by the client domain of that number *)
}

let create ?(capacity = 64) ?transport ?trace ?slots ?req_codec ?rep_codec
    ?(nservers = 1) ?shard_assign ~nclients waiting =
  if nclients <= 0 then invalid_arg "Rpc.create: nclients must be positive";
  if capacity <= 0 then invalid_arg "Rpc.create: capacity must be positive";
  if nservers <= 0 then invalid_arg "Rpc.create: nservers must be positive";
  (match waiting with
  | Limited_spin max_spin when max_spin < 0 ->
    invalid_arg "Rpc.create: max_spin must be non-negative"
  | Adaptive cap when cap < 0 ->
    invalid_arg "Rpc.create: adaptive spin cap must be non-negative"
  | Spin | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ -> ());
  (* On a single-core host a spinning consumer occupies the only CPU its
     producer could use, so no spin budget can ever pay off — the paper's
     own uniprocessor rule (§2.1: yield, never spin).  Clamp the adaptive
     cap to 0 there: the controller then runs BSW's exact consumer path
     (one extra queue-occupancy load) instead of re-learning futility per
     channel.  BSLS gets the same clamp: traces showed every BSLS(50)
     spin on a uniprocessor burning its full budget *inside the peer's
     already-signalled wake path* (spin exhausts ~= blocks, EXPERIMENTS
     "anomaly 1"), so a clamped budget of 0 skips the poll loop entirely
     and the path is BSW plus the busy-wait hint.  The driver still
     reports the protocol under its requested name — the clamp changes
     the budget actually spent, not the protocol asked for. *)
  let waiting =
    if Domain.recommended_domain_count () > 1 then waiting
    else
      match waiting with
      | Adaptive _ -> Adaptive 0
      | Limited_spin _ -> Limited_spin 0
      | w -> w
  in
  let req_codec =
    match req_codec with Some c -> c | None -> boxed_codec ()
  in
  let rep_codec =
    match rep_codec with Some c -> c | None -> boxed_codec ()
  in
  {
    waiting;
    sub =
      Real_substrate.create ?transport ?trace ?slots ~nservers ?shard_assign
        ~capacity ~nclients ();
    adapt = Array.init (nservers + nclients) (fun _ -> Atomic.make 0);
    req_codec;
    rep_codec;
    servers =
      Array.init nservers (fun _ ->
          {
            scratch = Array.make capacity 0;
            steal_buf = Array.make capacity 0;
            stash = Array.make capacity 0;
            stash_pos = 0;
            stash_len = 0;
            posted_on = -1;
          });
    client_scratch = Array.init nclients (fun _ -> Array.make capacity 0);
  }

let nclients t = Real_substrate.nclients t.sub
let nservers t = Real_substrate.nshards t.sub
let transport t = Real_substrate.transport t.sub
let trace t = Real_substrate.trace t.sub
let slab t = Real_substrate.slab t.sub
let counters t = Real_substrate.counters t.sub
let request_depth t k = Real_substrate.request_depth t.sub k
let wake_residue t = Real_substrate.wake_residue t.sub
let harvest_sem_counters t = Real_substrate.harvest_sem_counters t.sub
let shard_of_client t client = Real_substrate.shard_of_client t.sub client

let check_client t client =
  ignore (Real_substrate.reply_channel t.sub client : Real_substrate.channel)

let check_server t server =
  ignore (Real_substrate.request_shard t.sub server : Real_substrate.channel)

let ctrs t = Real_substrate.counters t.sub

let bump_sends t k =
  let c = ctrs t in
  c.Ulipc.Counters.sends <- c.Ulipc.Counters.sends + k

let bump_receives t k =
  let c = ctrs t in
  c.Ulipc.Counters.receives <- c.Ulipc.Counters.receives + k

let bump_replies t k =
  let c = ctrs t in
  c.Ulipc.Counters.replies <- c.Ulipc.Counters.replies + k

let bump_full_sleep t =
  let c = ctrs t in
  c.Ulipc.Counters.queue_full_sleeps <- c.Ulipc.Counters.queue_full_sleeps + 1

(* Slab exhaustion is flow control, one layer under the full-queue case:
   every slot is riding a queue or held by a busy peer, so the sender
   backs off exactly as it would for a full queue — but only for a
   bounded number of episodes.  Unreachable with the default slab sizing
   (every queue full plus one slot per endpoint fits); an undersized
   explicit [~slots] on a fleet-scale session would otherwise hang every
   producer forever, which is why the bound turns persistent exhaustion
   into a clear error instead. *)
let alloc_retry_limit = 10_000

let rec alloc_slot_retry t retries =
  let slab = Real_substrate.slab t.sub in
  let i = Slab.try_alloc slab in
  if i >= 0 then i
  else if retries >= alloc_retry_limit then
    failwith
      (Printf.sprintf
         "Rpc: payload slab exhausted (%d of %d slots in use after %d \
          back-offs): the session's ~slots is too small for this client \
          count and depth — size it at least (nclients + nservers) * \
          (capacity + 1), or omit ~slots for that default"
         (Slab.in_use_count slab) (Slab.slots slab) retries)
  else begin
    (match t.waiting with
    | Spin -> P.Prims.busy_wait t.sub
    | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
      bump_full_sleep t;
      Real_substrate.flow_sleep t.sub);
    alloc_slot_retry t (retries + 1)
  end

let alloc_slot t = alloc_slot_retry t 0

(* Adaptive BSLS: the BSLS code path with a per-channel MAX_SPIN that
   tracks the observed spin-success rate.  A spin episode that ends with
   a visible message (hit) grows the budget multiplicatively,
   [cur <- min cap (2*cur + 8)]; an exhausted spin (miss) halves it, and
   a miss at or below the kick size drops it straight to 0.  The +8
   additive kick lets a budget of 0 restart: at [cur = 0] a
   queue-occupancy load stands in for the spin, so an arriving message
   still reads as a hit.  At [cap = 0] no budget can ever grow — the
   controller is skipped entirely and the path is exactly BSW's
   consumer sequence, which is what [create]'s single-core clamp
   relies on (never-spin must cost nothing next to BSW).

   A hit only counts if the spin stayed on the CPU: a spin whose wall
   time far exceeds its iteration budget was descheduled mid-spin, and
   a message visible on resume was delivered by the preemption, not the
   polling.  Crediting those turns oversubscription into the paper's
   Figure 11 positive feedback — preemption causes hits, hits grow the
   budget, longer spins cause more preemption — driving the budget to
   its cap exactly when spinning is most harmful.  The elapsed-time
   guard (two CLOCK_MONOTONIC reads, only on the [cur > 0] path) makes
   every descheduled spin a miss, so on a saturated host the budget
   decays to 0 and ADAPT converges to BSW.  The clock must be monotonic:
   a wall-clock step during the spin would read as a huge (or negative)
   elapsed time and poison the learned budget.  Integer nanoseconds end
   to end ([Clock.now_ns]) so the guard allocates no floats. *)
let adaptive_dequeue t ch ~slot ~cap ~side =
  if cap = 0 then P.Prims.blocking_dequeue t.sub ch ~side ()
  else begin
    let cur = Atomic.get slot in
    let productive =
      if cur = 0 then not (Real_substrate.queue_is_empty t.sub ch)
      else begin
        let t0 = Ulipc_observe.Clock.now_ns () in
        P.Prims.limited_spin t.sub ch ~side ~max_spin:cur;
        let spin_ns = Ulipc_observe.Clock.now_ns () - t0 in
        (* ~10 ns per cpu_relax iteration plus 1 µs of clock-granularity
           slack: a genuine early exit sits under this, while even one
           context-switch round (the cheapest way off the CPU and back)
           costs several µs and lands over it. *)
        (not (Real_substrate.queue_is_empty t.sub ch))
        && spin_ns < 1_000 + (cur * 10)
      end
    in
    if productive then Atomic.set slot (min cap ((2 * cur) + 8))
    else
      (* A miss at or below the additive kick collapses straight to 0
         rather than decaying 8 -> 4 -> 2 -> 1 -> 0: the decay tail is
         four more missed episodes, each paying two clock reads and its
         leftover polls, before the channel returns to the blocking
         path — and every spurious hit restarts it.  With the collapse
         one miss undoes one kick, so the budget is non-zero only while
         hits actually recur and ADAPT's floor is provably BSW: at
         [cur = 0] the only per-message overhead is the one
         queue-occupancy probe. *)
      Atomic.set slot (if cur <= 8 then 0 else cur / 2);
    P.Prims.blocking_dequeue t.sub ch ~side ~on_empty:P.Prims.Hint_busy_wait ()
  end

(* ------------------------------------------------------------------ *)
(* Steal orchestration.                                                *)
(* ------------------------------------------------------------------ *)

(* A shard is worth stealing from only if a span survives the handoff
   round-trip: below two messages the victim would hand over its entire
   backlog and the pair would just ping-pong single messages. *)
let steal_min = 2

(* Thief side: my ring is empty, so post a claim on the deepest loaded
   sibling and then block as usual — the handoff arrives on MY ring, so
   the normal producer wake-up protocol covers the delivery and there is
   no second wait primitive to get wrong.  At most one outstanding claim
   per server ([posted_on]); claims on an already-claimed victim simply
   fail (one thief per victim at a time). *)
let try_post_steal t ~server =
  let sub = t.sub in
  let n = Real_substrate.nshards sub in
  let st = t.servers.(server) in
  if n > 1 && st.posted_on < 0 then begin
    let best = ref (-1) and best_depth = ref (steal_min - 1) in
    for k = 0 to n - 1 do
      if k <> server then begin
        let d = Real_substrate.request_depth sub k in
        if d > !best_depth then begin
          best := k;
          best_depth := d
        end
      end
    done;
    if !best >= 0 && Real_substrate.steal_claim sub ~victim:!best ~thief:server
    then begin
      st.posted_on <- !best;
      let c = ctrs t in
      c.Ulipc.Counters.steal_posts <- c.Ulipc.Counters.steal_posts + 1
    end
  end

(* After a successful receive the thief no longer needs the claim.  The
   retract CAS may lose to the victim taking the token concurrently —
   then the span is already on its way and the thief's next receive
   consumes it like any other traffic. *)
let retract_steal t ~server =
  let st = t.servers.(server) in
  if st.posted_on >= 0 then begin
    Real_substrate.steal_retract t.sub ~victim:st.posted_on ~thief:server;
    st.posted_on <- -1
  end

(* Victim side: called once per receive, before draining the own ring.
   Honouring a token = drain half my backlog (span-claimed dequeue_many:
   I am this ring's only consumer) and re-enqueue it on the thief's ring
   (enqueue_many: anyone may produce), then wake the thief exactly as a
   client producer would.  Only runs when the stash is empty, so the
   leftover span always fits ([steal_buf] and [stash] share the ring
   capacity bound). *)
let service_steal t ~server =
  let sub = t.sub in
  if
    Real_substrate.nshards sub > 1
    && Real_substrate.steal_pending sub ~shard:server >= 0
    && Real_substrate.request_depth sub server >= steal_min
  then begin
    let thief = Real_substrate.steal_take sub ~shard:server in
    if thief >= 0 && thief <> server then begin
      let st = t.servers.(server) in
      let own = Real_substrate.request_shard sub server in
      let depth = Real_substrate.request_depth sub server in
      let want = min (Array.length st.steal_buf) (max 1 (depth / 2)) in
      let k =
        Real_substrate.dequeue_many sub own ~buf:st.steal_buf ~pos:0 ~max:want
      in
      if k > 0 then begin
        let thief_ch = Real_substrate.request_shard sub thief in
        let a =
          Real_substrate.enqueue_many sub thief_ch st.steal_buf ~pos:0 ~len:k
        in
        if a > 0 then begin
          ignore
            (P.Prims.wake_consumer sub thief_ch ~target:P.Prims.Server : bool);
          let c = ctrs t in
          c.Ulipc.Counters.steal_handoffs <-
            c.Ulipc.Counters.steal_handoffs + 1;
          c.Ulipc.Counters.steal_msgs <- c.Ulipc.Counters.steal_msgs + a
        end;
        if a < k then begin
          (* The thief's ring filled mid-handoff (its own clients raced
             us): keep the tail ourselves.  Dequeued means owned — these
             must not be re-enqueued on our ring behind newer traffic,
             or per-shard FIFO would invert; the stash preserves their
             position at the head of our backlog. *)
          Array.blit st.steal_buf a st.stash 0 (k - a);
          st.stash_pos <- 0;
          st.stash_len <- k - a
        end
      end
    end
  end

let pop_stash st =
  if st.stash_pos < st.stash_len then begin
    let m = st.stash.(st.stash_pos) in
    st.stash_pos <- st.stash_pos + 1;
    if st.stash_pos = st.stash_len then begin
      st.stash_pos <- 0;
      st.stash_len <- 0
    end;
    m
  end
  else Real_substrate.no_msg

(* ------------------------------------------------------------------ *)
(* The raw index planes: protocol dispatch over slot indices.  The     *)
(* typed layer below them is nothing but alloc/fill before and         *)
(* read/release after.                                                 *)
(* ------------------------------------------------------------------ *)

(* Client send: the core's Bss/Bsw/Bswy/Bsls/Handoff send bodies with
   the client's HOME SHARD channel in place of the session-global
   [S.request].  Composed from the same Prims, so the producer steps and
   the consumer sequence are still written exactly once (in the core) —
   at [nservers = 1] this is the core module body, line for line. *)
let send_msg t ~client m =
  let sub = t.sub in
  let req_ch = Real_substrate.request_shard sub (shard_of_client t client) in
  let reply_ch = Real_substrate.reply_channel sub client in
  let ans =
    match t.waiting with
    | Spin ->
      P.Prims.spin_enqueue sub req_ch m;
      P.Prims.spinning_dequeue sub reply_ch
    | Block ->
      P.Prims.flow_enqueue sub req_ch m;
      let (_ : bool) = P.Prims.wake_consumer sub req_ch ~target:P.Prims.Server in
      P.Prims.blocking_dequeue sub reply_ch ~side:P.Prims.Client ()
    | Block_yield ->
      P.Prims.flow_enqueue sub req_ch m;
      if P.Prims.wake_consumer sub req_ch ~target:P.Prims.Server then
        (* We really did wake the server: let it run (Figure 7). *)
        Real_substrate.busy_wait sub;
      P.Prims.blocking_dequeue sub reply_ch ~side:P.Prims.Client
        ~on_empty:P.Prims.Hint_busy_wait ()
    | Limited_spin max_spin ->
      P.Prims.flow_enqueue sub req_ch m;
      let (_ : bool) = P.Prims.wake_consumer sub req_ch ~target:P.Prims.Server in
      (* A clamped (or explicit) budget of 0 skips the spin entirely:
         invoking the loop would still charge a fall-through per empty
         check, and never-spin must cost nothing next to BSW. *)
      if max_spin > 0 then
        P.Prims.limited_spin sub reply_ch ~side:P.Prims.Client ~max_spin;
      P.Prims.blocking_dequeue sub reply_ch ~side:P.Prims.Client
        ~on_empty:P.Prims.Hint_busy_wait ()
    | Handoff ->
      P.Prims.flow_enqueue sub req_ch m;
      if P.Prims.wake_consumer sub req_ch ~target:P.Prims.Server then
        Real_substrate.handoff_server sub;
      P.Prims.blocking_dequeue sub reply_ch ~side:P.Prims.Client
        ~on_empty:P.Prims.Hint_handoff_server ()
    | Adaptive cap ->
      P.Prims.flow_enqueue sub req_ch m;
      let (_ : bool) = P.Prims.wake_consumer sub req_ch ~target:P.Prims.Server in
      adaptive_dequeue t reply_ch
        ~slot:t.adapt.(nservers t + client)
        ~cap ~side:P.Prims.Client
  in
  bump_sends t 1;
  ans

(* Server receive on its own shard: stash first (stolen-handoff
   leftovers are the oldest messages this server owns), then one
   token-service pass, then the waiting-mode consumer sequence on the
   own ring — posting a steal claim on the deepest sibling first
   whenever the own ring is already empty (the claim costs one CAS and
   is retracted after the next successful receive). *)
let receive_msg t ~server =
  let st = t.servers.(server) in
  let m = pop_stash st in
  if m != Real_substrate.no_msg then begin
    bump_receives t 1;
    m
  end
  else begin
    service_steal t ~server;
    let sub = t.sub in
    let ch = Real_substrate.request_shard sub server in
    if Real_substrate.queue_is_empty sub ch then try_post_steal t ~server;
    let m =
      match t.waiting with
      | Spin -> P.Prims.spinning_dequeue sub ch
      | Block -> P.Prims.blocking_dequeue sub ch ~side:P.Prims.Server ()
      | Block_yield ->
        let m = Real_substrate.dequeue sub ch in
        if m != Real_substrate.no_msg then
          (* Requests pending: keep processing rather than give up the
             CPU — this is what lets the server batch under multiple
             clients. *)
          m
        else begin
          Real_substrate.yield sub;
          (* let the clients run *)
          P.Prims.blocking_dequeue sub ch ~side:P.Prims.Server ()
        end
      | Limited_spin max_spin ->
        if max_spin > 0 then
          P.Prims.limited_spin sub ch ~side:P.Prims.Server ~max_spin;
        P.Prims.blocking_dequeue sub ch ~side:P.Prims.Server ()
      | Handoff ->
        let m = Real_substrate.dequeue sub ch in
        if m != Real_substrate.no_msg then m
        else begin
          Real_substrate.handoff_any sub;
          (* let the clients run *)
          P.Prims.blocking_dequeue sub ch ~side:P.Prims.Server ()
        end
      | Adaptive cap ->
        adaptive_dequeue t ch ~slot:t.adapt.(server) ~cap ~side:P.Prims.Server
    in
    retract_steal t ~server;
    bump_receives t 1;
    m
  end

(* Replies: one producer path for every waiting mode (the core's reply
   bodies only differ in Bss's unthrottled enqueue).  Any server may
   reply to any client — after a steal the thief answers on a reply
   channel whose "home" server never saw the request, which is exactly
   why pooled ring sessions use MPSC reply rings. *)
let reply_msg t ~client m =
  let sub = t.sub in
  let ch = Real_substrate.reply_channel sub client in
  (match t.waiting with
  | Spin -> P.Prims.spin_enqueue sub ch m
  | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
    P.Prims.flow_enqueue sub ch m;
    let (_ : bool) = P.Prims.wake_consumer sub ch ~target:P.Prims.Client in
    ());
  bump_replies t 1

let send t ~client req =
  check_client t client;
  let slab = Real_substrate.slab t.sub in
  let i = alloc_slot t in
  Slab.set_client slab i client;
  t.req_codec.write slab i req;
  let j = send_msg t ~client i in
  let rep = t.rep_codec.read slab j in
  Slab.release slab j;
  rep

let call = send

let receive ?(server = 0) t =
  check_server t server;
  let slab = Real_substrate.slab t.sub in
  let i = receive_msg t ~server in
  let client = Slab.get_client slab i in
  let req = t.req_codec.read slab i in
  Slab.release slab i;
  (client, req)

let reply t ~client rep =
  check_client t client;
  let slab = Real_substrate.slab t.sub in
  let j = alloc_slot t in
  t.rep_codec.write slab j rep;
  reply_msg t ~client j

let serve ?(server = 0) t f =
  check_server t server;
  let slab = Real_substrate.slab t.sub in
  let i = receive_msg t ~server in
  let client = Slab.get_client slab i in
  let rep = f ~client (t.req_codec.read slab i) in
  (* The request slot becomes the reply slot: the server owns it between
     its dequeue and the reply enqueue, so refilling in place is safe and
     saves the release/alloc pair — the whole server turn touches no
     shared allocator state and no heap. *)
  t.rep_codec.write slab i rep;
  reply_msg t ~client i

(* The asynchronous halves, composed from the same shared primitives the
   synchronous protocols use (cf. Ulipc.Async on the simulator side). *)

let post ?shard t ~client req =
  check_client t client;
  let sh = match shard with Some s -> s | None -> shard_of_client t client in
  check_server t sh;
  let slab = Real_substrate.slab t.sub in
  let i = alloc_slot t in
  Slab.set_client slab i client;
  t.req_codec.write slab i req;
  let req_ch = Real_substrate.request_shard t.sub sh in
  match t.waiting with
  | Spin -> P.Prims.spin_enqueue t.sub req_ch i
  | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
    P.Prims.flow_enqueue t.sub req_ch i;
    ignore (P.Prims.wake_consumer t.sub req_ch ~target:P.Prims.Server : bool)

let collect_msg t ~client =
  let ch = Real_substrate.reply_channel t.sub client in
  match t.waiting with
  | Spin -> P.Prims.spinning_dequeue t.sub ch
  | Block | Handoff -> P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client ()
  | Block_yield ->
    P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client
      ~on_empty:P.Prims.Hint_busy_wait ()
  | Limited_spin max_spin ->
    if max_spin > 0 then
      P.Prims.limited_spin t.sub ch ~side:P.Prims.Client ~max_spin;
    P.Prims.blocking_dequeue t.sub ch ~side:P.Prims.Client
      ~on_empty:P.Prims.Hint_busy_wait ()
  | Adaptive cap ->
    adaptive_dequeue t ch
      ~slot:t.adapt.(nservers t + client)
      ~cap ~side:P.Prims.Client

let collect t ~client =
  let slab = Real_substrate.slab t.sub in
  let j = collect_msg t ~client in
  let rep = t.rep_codec.read slab j in
  Slab.release slab j;
  rep

(* ------------------------------------------------------------------ *)
(* Batched & pipelined fast path.                                      *)
(* ------------------------------------------------------------------ *)

(* Wake the channel's consumer once for a whole batch: the tas guard is
   the same as wake_consumer's, but the credit is published through the
   coalescing [sem_v_n] — at most one signal per batch no matter how
   many messages just landed. *)
let wake_batch t ch ~target =
  if not (Real_substrate.awake_test_and_set t.sub ch) then begin
    let c = ctrs t in
    (match target with
    | P.Prims.Client ->
      c.Ulipc.Counters.client_wakeups <- c.Ulipc.Counters.client_wakeups + 1
    | P.Prims.Server ->
      c.Ulipc.Counters.server_wakeups <- c.Ulipc.Counters.server_wakeups + 1);
    Real_substrate.sem_v_n t.sub ch 1
  end

(* Enqueue the whole span with span claims, waking the consumer after
   every non-empty claim (not only at the end: if the queue fills while
   the consumer sleeps, only a wake-up can make room — deferring the
   wake to the end of the batch would deadlock). *)
let rec push_batch t ch ~target buf ~pos ~len =
  if len > 0 then begin
    let k = Real_substrate.enqueue_many t.sub ch buf ~pos ~len in
    if k > 0 then begin
      (match t.waiting with
      | Spin -> ()
      | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
        wake_batch t ch ~target);
      push_batch t ch ~target buf ~pos:(pos + k) ~len:(len - k)
    end
    else begin
      (match t.waiting with
      | Spin -> P.Prims.busy_wait t.sub
      | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
        bump_full_sleep t;
        Real_substrate.flow_sleep t.sub);
      push_batch t ch ~target buf ~pos ~len
    end
  end

let post_batch t ~client reqs =
  check_client t client;
  let slab = Real_substrate.slab t.sub in
  let buf = t.client_scratch.(client) in
  let cap = Array.length buf in
  let request =
    Real_substrate.request_shard t.sub (shard_of_client t client)
  in
  let rec chunks = function
    | [] -> ()
    | reqs ->
      let rec fill n = function
        | r :: rest when n < cap ->
          let i = alloc_slot t in
          Slab.set_client slab i client;
          t.req_codec.write slab i r;
          buf.(n) <- i;
          fill (n + 1) rest
        | rest -> (n, rest)
      in
      let n, rest = fill 0 reqs in
      if n > 0 then push_batch t request ~target:P.Prims.Server buf ~pos:0 ~len:n;
      chunks rest
  in
  chunks reqs

let receive_batch ?(server = 0) t ~max =
  if max <= 0 then invalid_arg "Rpc.receive_batch: max must be positive";
  check_server t server;
  let slab = Real_substrate.slab t.sub in
  let st = t.servers.(server) in
  let take i =
    let client = Slab.get_client slab i in
    let req = t.req_codec.read slab i in
    Slab.release slab i;
    (client, req)
  in
  let first = take (receive_msg t ~server) in
  if max = 1 then [ first ]
  else begin
    let buf = st.scratch in
    (* Drain the stash before the ring: stolen-handoff leftovers are the
       oldest messages this server owns. *)
    let n_stash = ref 0 in
    let want = min (max - 1) (Array.length buf) in
    while
      !n_stash < want
      &&
      let m = pop_stash st in
      if m != Real_substrate.no_msg then begin
        buf.(!n_stash) <- m;
        incr n_stash;
        true
      end
      else false
    do
      ()
    done;
    let k =
      !n_stash
      + Real_substrate.dequeue_many t.sub
          (Real_substrate.request_shard t.sub server)
          ~buf ~pos:!n_stash
          ~max:(want - !n_stash)
    in
    bump_receives t k;
    let rec build i acc =
      if i < 0 then acc else build (i - 1) (take buf.(i) :: acc)
    in
    first :: build (k - 1) []
  end

(* Multipush flow control for a same-client reply run: [enqueue_local]
   parks each index in the SPSC producer-private buffer — no shared
   store per message — and the end-of-run flush publishes the whole span
   with one head store, followed by one coalesced wake-up.  If buffer
   and ring both fill mid-run, only the consumer can make room, so the
   producer publishes what it can, wakes, and backs off (the same
   no-deferred-wake rule as [push_batch]).  On pooled sessions the reply
   rings are MPSC and enqueue_local degrades to plain enqueue — correct,
   just without the private-buffer shortcut. *)
let rec push_local t ch ~target m =
  if not (Real_substrate.enqueue_local t.sub ch m) then begin
    ignore (Real_substrate.flush_local t.sub ch : bool);
    (match t.waiting with
    | Spin -> P.Prims.busy_wait t.sub
    | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
      wake_batch t ch ~target;
      bump_full_sleep t;
      Real_substrate.flow_sleep t.sub);
    push_local t ch ~target m
  end

let rec flush_run t ch ~target =
  if not (Real_substrate.flush_local t.sub ch) then begin
    (match t.waiting with
    | Spin -> P.Prims.busy_wait t.sub
    | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
      wake_batch t ch ~target;
      bump_full_sleep t;
      Real_substrate.flow_sleep t.sub);
    flush_run t ch ~target
  end

let finish_run t ch ~target =
  flush_run t ch ~target;
  match t.waiting with
  | Spin -> ()
  | Block | Block_yield | Limited_spin _ | Handoff | Adaptive _ ->
    wake_batch t ch ~target

let reply_batch t reps =
  (* Group consecutive same-client replies so each run rides the reply
     ring's multipush — one index publish and at most one wake-up per
     run — while per-client FIFO order is preserved whatever the
     interleaving of clients in [reps]. *)
  let slab = Real_substrate.slab t.sub in
  let encode r =
    let j = alloc_slot t in
    t.rep_codec.write slab j r;
    j
  in
  let rec runs = function
    | [] -> ()
    | (client, rep) :: rest ->
      check_client t client;
      let ch = Real_substrate.reply_channel t.sub client in
      push_local t ch ~target:P.Prims.Client (encode rep);
      let rec run n = function
        | (c, r) :: rest when c = client ->
          push_local t ch ~target:P.Prims.Client (encode r);
          run (n + 1) rest
        | rest -> (n, rest)
      in
      let n, rest = run 1 rest in
      finish_run t ch ~target:P.Prims.Client;
      bump_replies t n;
      runs rest
  in
  runs reps

let collect_batch t ~client ~n =
  if n < 0 then invalid_arg "Rpc.collect_batch: negative n";
  check_client t client;
  let slab = Real_substrate.slab t.sub in
  let ch = Real_substrate.reply_channel t.sub client in
  let buf = t.client_scratch.(client) in
  let cap = Array.length buf in
  let decode j =
    let r = t.rep_codec.read slab j in
    Slab.release slab j;
    r
  in
  let rec go acc got =
    if got >= n then List.rev acc
    else begin
      let k =
        Real_substrate.dequeue_many t.sub ch ~buf ~pos:0
          ~max:(min (n - got) cap)
      in
      if k = 0 then go (decode (collect_msg t ~client) :: acc) (got + 1)
      else begin
        let rec add acc i =
          if i >= k then acc else add (decode buf.(i) :: acc) (i + 1)
        in
        go (add acc 0) (got + k)
      end
    end
  in
  go [] 0

let call_pipelined t ~client ~depth reqs =
  if depth <= 0 then invalid_arg "Rpc.call_pipelined: depth must be positive";
  check_client t client;
  let slab = Real_substrate.slab t.sub in
  let ch = Real_substrate.reply_channel t.sub client in
  let buf = t.client_scratch.(client) in
  let cap = Array.length buf in
  let request =
    Real_substrate.request_shard t.sub (shard_of_client t client)
  in
  let decode j =
    let r = t.rep_codec.read slab j in
    Slab.release slab j;
    r
  in
  (* Sliding window: keep up to [depth] requests outstanding; post in
     span-claimed bursts, collect opportunistically in batches.  The
     client's scratch array serves both directions — bursts and collects
     never overlap within the owning domain. *)
  let rec go pending npending out acc =
    if npending = 0 && out = 0 then List.rev acc
    else if npending > 0 && out < depth then begin
      let k = min (min (depth - out) npending) cap in
      let rec burst n pending =
        if n >= k then pending
        else
          match pending with
          | [] -> assert false (* npending counts the list *)
          | r :: rest ->
            let i = alloc_slot t in
            Slab.set_client slab i client;
            t.req_codec.write slab i r;
            buf.(n) <- i;
            burst (n + 1) rest
      in
      let pending = burst 0 pending in
      push_batch t request ~target:P.Prims.Server buf ~pos:0 ~len:k;
      go pending (npending - k) (out + k) acc
    end
    else begin
      let k = Real_substrate.dequeue_many t.sub ch ~buf ~pos:0 ~max:(min out cap) in
      if k = 0 then
        go pending npending (out - 1) (decode (collect_msg t ~client) :: acc)
      else begin
        let rec add acc i =
          if i >= k then acc else add (decode buf.(i) :: acc) (i + 1)
        in
        go pending npending (out - k) (add acc 0)
      end
    end
  in
  let n = List.length reqs in
  bump_sends t n;
  go reqs n 0 []
