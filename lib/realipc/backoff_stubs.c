/* Per-thread timer-slack reduction for the backoff sleeps.

   Linux pads every nanosleep of a non-realtime task by the task's
   timer slack (50 us by default), which puts a ~70 us floor under the
   1-10 us backoff parks and hence under every spin-protocol round-trip
   on an oversubscribed host.  PR_SET_TIMERSLACK is per-thread, costs
   nothing to set, and only trades batched timer interrupts for wakeup
   precision on this one thread — exactly the trade an IPC waiter
   wants.  On other systems this is a no-op. */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/threads.h>
#include <time.h>
#include <errno.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

CAMLprim value ulipc_set_timerslack_ns(value ns)
{
  CAMLparam1(ns);
#ifdef __linux__
  prctl(PR_SET_TIMERSLACK, (unsigned long)Long_val(ns));
#else
  (void)ns;
#endif
  CAMLreturn(Val_unit);
}

/* Allocation-free bounded park: a tagged-int duration straight into
   nanosleep, releasing the runtime lock so a parked domain never
   stalls another domain's stop-the-world GC.  The Unix.sleepf
   alternative boxes its float argument on every call — minor-heap
   traffic on exactly the paths that must stay allocation-free. */
CAMLprim value ulipc_nanosleep_ns(value ns)
{
  struct timespec req;
  intnat d = Long_val(ns);
  if (d > 0) {
    req.tv_sec = d / 1000000000;
    req.tv_nsec = d % 1000000000;
    caml_release_runtime_system();
    /* A signal can cut the park short; that only means an earlier
       retry of the caller's wait loop, so no EINTR resume here. */
    nanosleep(&req, NULL);
    caml_acquire_runtime_system();
  }
  return Val_unit;
}
