/* Per-thread timer-slack reduction for the backoff sleeps.

   Linux pads every nanosleep of a non-realtime task by the task's
   timer slack (50 us by default), which puts a ~70 us floor under the
   1-10 us backoff parks and hence under every spin-protocol round-trip
   on an oversubscribed host.  PR_SET_TIMERSLACK is per-thread, costs
   nothing to set, and only trades batched timer interrupts for wakeup
   precision on this one thread — exactly the trade an IPC waiter
   wants.  On other systems this is a no-op. */

#include <caml/mlvalues.h>
#include <caml/memory.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

CAMLprim value ulipc_set_timerslack_ns(value ns)
{
  CAMLparam1(ns);
#ifdef __linux__
  prctl(PR_SET_TIMERSLACK, (unsigned long)Long_val(ns));
#else
  (void)ns;
#endif
  CAMLreturn(Val_unit);
}
