(* Bounded single-producer/single-consumer ring on a preallocated slot
   array: the Lamport ring with the two modern refinements Torquati's
   SPSC study shows matter on shared-cache multicores —

   - head and tail live in separate cache-line-padded atomics, so the
     producer bumping [head] never invalidates the line the consumer's
     [tail] lives on;
   - each side keeps a private snapshot of the peer's index
     ([cached_tail]/[cached_head]) and re-reads the shared atomic only
     when the snapshot says the ring looks full/empty, so the common case
     of a half-full ring touches no shared line but the slot itself.

   Indices increase monotonically and are reduced modulo the (power of
   two) slot count; at 2^63 operations wraparound is unreachable.  The
   logical capacity is the one requested, checked exactly, so a ring of
   capacity 3 rejects the 4th enqueue even though its array has 4 slots —
   the same flow-control boundary as Tl_queue. *)

type 'a t = {
  slots : 'a option array;
  mask : int;
  cap : int;
  head : int Atomic.t; (* next write index; written by the producer only *)
  tail : int Atomic.t; (* next read index; written by the consumer only *)
  cached_tail : int ref; (* producer-private snapshot of [tail] *)
  cached_head : int ref; (* consumer-private snapshot of [head] *)
}

let rec ceil_pow2 n acc = if acc >= n then acc else ceil_pow2 n (acc * 2)

let create ~capacity () =
  if capacity <= 0 then
    invalid_arg "Spsc_ring.create: capacity must be positive";
  let ring = ceil_pow2 capacity 1 in
  {
    slots = Array.make ring None;
    mask = ring - 1;
    cap = capacity;
    head = Padding.copy_padded (Atomic.make 0);
    tail = Padding.copy_padded (Atomic.make 0);
    cached_tail = Padding.copy_padded (ref 0);
    cached_head = Padding.copy_padded (ref 0);
  }

let capacity q = q.cap

(* Producer side.  The [Some v] store is a plain mutation published by the
   [Atomic.set] on [head]: a consumer that observes the new head also
   observes the slot contents (release/acquire publication, the same
   argument Tl_queue makes for its node links). *)
let enqueue q v =
  let head = Atomic.get q.head in
  let free =
    head - !(q.cached_tail) < q.cap
    ||
    (q.cached_tail := Atomic.get q.tail;
     head - !(q.cached_tail) < q.cap)
  in
  if free then begin
    q.slots.(head land q.mask) <- Some v;
    Atomic.set q.head (head + 1);
    true
  end
  else false

(* Consumer side.  Clearing the slot before releasing [tail] keeps the
   ring from retaining consumed values, and the producer only rewrites a
   slot after observing the advanced tail. *)
let dequeue q =
  let tail = Atomic.get q.tail in
  let avail =
    !(q.cached_head) - tail > 0
    ||
    (q.cached_head := Atomic.get q.head;
     !(q.cached_head) - tail > 0)
  in
  if avail then begin
    let i = tail land q.mask in
    let v = q.slots.(i) in
    q.slots.(i) <- None;
    Atomic.set q.tail (tail + 1);
    v
  end
  else None

(* Batch operations: claim a whole span of slots per atomic index
   store.  The amortisation target is the coherence traffic Torquati's
   multipush measurements identify: n single enqueues publish [head] n
   times (n release stores the consumer's next acquire must pull), a
   batch writes n slots and publishes once.  Semantics are exactly n
   single ops: the accepted prefix obeys the same capacity boundary,
   FIFO order is preserved, and a batch never blocks. *)

let enqueue_batch q vs =
  match vs with
  | [] -> 0
  | vs ->
    let head = Atomic.get q.head in
    let n = List.length vs in
    let free =
      let f = q.cap - (head - !(q.cached_tail)) in
      if f >= n then f
      else begin
        q.cached_tail := Atomic.get q.tail;
        q.cap - (head - !(q.cached_tail))
      end
    in
    let k = min n free in
    if k <= 0 then 0
    else begin
      let rec fill i = function
        | v :: rest when i < k ->
          q.slots.((head + i) land q.mask) <- Some v;
          fill (i + 1) rest
        | _ -> ()
      in
      fill 0 vs;
      Atomic.set q.head (head + k);
      k
    end

let dequeue_batch q ~max =
  if max < 0 then invalid_arg "Spsc_ring.dequeue_batch: negative max";
  if max = 0 then []
  else begin
    let tail = Atomic.get q.tail in
    let avail =
      let a = !(q.cached_head) - tail in
      if a >= max then a
      else begin
        q.cached_head := Atomic.get q.head;
        !(q.cached_head) - tail
      end
    in
    let k = min max avail in
    if k <= 0 then []
    else begin
      (* Build back-to-front so the result is in FIFO order without a
         List.rev pass. *)
      let rec take i acc =
        if i < 0 then acc
        else begin
          let idx = (tail + i) land q.mask in
          match q.slots.(idx) with
          | Some v ->
            q.slots.(idx) <- None;
            take (i - 1) (v :: acc)
          | None -> assert false (* within [tail, head): always filled *)
        end
      in
      let out = take (k - 1) [] in
      Atomic.set q.tail (tail + k);
      out
    end
  end

(* Snapshot ordering invariant: read [tail] BEFORE [head].  Only the
   consumer advances [tail], so a tail read first can only be stale-low,
   and [head] read second can only have grown — the difference is a
   conservative occupancy (an over-estimate) and can never go negative.
   Reading [head] first races a consumer that drains messages enqueued
   after the head load: the stale head minus the fresh tail transiently
   reports a negative length / a spuriously empty ring. *)
let is_empty q =
  let tail = Atomic.get q.tail in
  Atomic.get q.head - tail <= 0

let length q =
  let tail = Atomic.get q.tail in
  Atomic.get q.head - tail
