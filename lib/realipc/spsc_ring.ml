(* Bounded single-producer/single-consumer ring over a flat int array:
   the Lamport ring with the refinements Torquati's SPSC study
   (TR-10-20) shows matter on shared-cache multicores —

   - head and tail live in separate cache-line-padded atomics, so the
     producer bumping [head] never invalidates the line the consumer's
     [tail] lives on;
   - each side keeps a private snapshot of the peer's index
     ([cached_tail]/[cached_head]) and re-reads the shared atomic only
     when the snapshot says the ring looks full/empty, so the common case
     of a half-full ring touches no shared line but the slot itself;
   - the slots are a flat [int array] carrying non-negative immediates
     (slab indices), so an enqueue is a plain unboxed store — no [Some]
     allocation, no write barrier, no GC pressure — and a dequeue
     returns the value itself with [-1] as the empty sentinel;
   - multipush ([enqueue_local]/[flush]): the producer batches up to
     [mp_k] values in a ring-resident private buffer and publishes them
     with ONE index store, without waiting for a caller-assembled batch;
   - temporal slipping: [flush] writes the buffered span {e backward}
     (highest slot first), so by the time the publish makes the span
     visible the producer has finished touching the slot cache lines
     and the consumer walks them without line ping-pong (TR-10-20's
     mpush ordering).

   Indices increase monotonically and are reduced modulo the (power of
   two) slot count; at 2^63 operations wraparound is unreachable.  The
   logical capacity is the one requested, checked exactly, so a ring of
   capacity 3 rejects the 4th enqueue even though its array has 4 slots —
   the same flow-control boundary as Tl_queue.

   Index publishes go through [fenceless_set] below — the x86-TSO
   plain store standing in for Torquati's compiler-only WMB — because
   [Atomic.set]'s full fence alone costs more than the rest of the
   operation.  The ordering argument: each index has a single writer;
   the slot stores precede the head publish (store-store) and the slot
   load precedes the tail publish (load-store), and TSO reorders
   neither; the amd64 backend schedules no instructions across them.
   On a weakly-ordered target (ARM) these must revert to
   [Atomic.set]/[Atomic.get] — a plain store is not a release there. *)

type t = {
  slots : int array;
  mask : int;
  cap : int;
  head : int Atomic.t; (* next write index; written by the producer only *)
  tail : int Atomic.t; (* next read index; written by the consumer only *)
  cached_tail : int ref; (* producer-private snapshot of [tail] *)
  cached_head : int ref; (* consumer-private snapshot of [head] *)
  mp_buf : int array; (* producer-private multipush buffer *)
  mp_n : int ref; (* producer-private, padded: it changes every
                     enqueue_local and must not share a line with the
                     record's shared fields *)
  mp_k : int;
}

let nil = -1

(* An [int Atomic.t] is a one-field mutable block at runtime, so the
   cast yields the plain immediate store/load.  Defined here rather
   than in a shared module on purpose: same-unit they are inlined to
   the bare mov, cross-module each one is a real call that costs more
   than the store it wraps (no flambda). *)
let fenceless_set (r : int Atomic.t) (v : int) = (Obj.magic r : int ref) := v
let fenceless_get (r : int Atomic.t) : int = !(Obj.magic r : int ref)


let create ~capacity () =
  let ring, mask, cap =
    Ring_layout.geometry ~who:"Spsc_ring.create" ~capacity
  in
  let mp_k = min 8 capacity in
  {
    slots = Array.make ring 0;
    mask;
    cap;
    head = Padding.copy_padded (Atomic.make 0);
    tail = Padding.copy_padded (Atomic.make 0);
    cached_tail = Padding.copy_padded (ref 0);
    cached_head = Padding.copy_padded (ref 0);
    mp_buf = Array.make mp_k 0;
    mp_n = Padding.copy_padded (ref 0);
    mp_k;
  }

let capacity q = q.cap

(* Producer side.  The slot store is a plain unboxed mutation published
   by the store on [head]: a consumer that observes the new head also
   observes the slot contents (store-store order under TSO — see the
   fenceless publication note in the header). *)
let raw_enqueue q v =
  let head = fenceless_get q.head in
  let free =
    head - !(q.cached_tail) < q.cap
    ||
    (q.cached_tail := fenceless_get q.tail;
     head - !(q.cached_tail) < q.cap)
  in
  if free then begin
    Array.unsafe_set q.slots (head land q.mask) v;
    fenceless_set q.head (head + 1);
    true
  end
  else false

(* Multipush (TR-10-20): publish the whole private buffer with one
   index store, writing the span backward — highest index first — so
   the producer is done with every slot cache line before the publish
   lets the consumer walk them forward (temporal slipping).  All or
   nothing: a span that does not fit stays buffered, [mp_k <= cap]
   guarantees it can always fit eventually. *)
let flush q =
  let n = !(q.mp_n) in
  n = 0
  ||
  let head = fenceless_get q.head in
  let free =
    head + n - !(q.cached_tail) <= q.cap
    ||
    (q.cached_tail := fenceless_get q.tail;
     head + n - !(q.cached_tail) <= q.cap)
  in
  free
  && begin
       for i = n - 1 downto 0 do
         Array.unsafe_set q.slots
           ((head + i) land q.mask)
           (Array.unsafe_get q.mp_buf i)
       done;
       fenceless_set q.head (head + n);
       q.mp_n := 0;
       true
     end

let pending_local q = !(q.mp_n)

let enqueue_local q v =
  if v < 0 then invalid_arg "Spsc_ring.enqueue_local: negative value";
  let n = !(q.mp_n) in
  if n < q.mp_k then begin
    Array.unsafe_set q.mp_buf n v;
    q.mp_n := n + 1;
    if n + 1 = q.mp_k then ignore (flush q : bool);
    (* Even if that auto-flush found the ring full the value IS
       buffered; a later flush retries. *)
    true
  end
  else if flush q then begin
    Array.unsafe_set q.mp_buf 0 v;
    q.mp_n := 1;
    true
  end
  else false

(* A plain enqueue first flushes any multipush leftovers so FIFO order
   holds across mixed use; with an empty buffer (the common case — the
   branch reads a producer-private word) it is the bare Lamport path,
   written out inline: without flambda a call to [raw_enqueue] is a real
   cross-function call, and at ~5 ns for the whole pair each call is a
   measurable fraction of the budget. *)
let enqueue q v =
  if v < 0 then invalid_arg "Spsc_ring.enqueue: negative value";
  if !(q.mp_n) = 0 then begin
    let head = fenceless_get q.head in
    let free =
      head - !(q.cached_tail) < q.cap
      ||
      (q.cached_tail := fenceless_get q.tail;
       head - !(q.cached_tail) < q.cap)
    in
    if free then begin
      Array.unsafe_set q.slots (head land q.mask) v;
      fenceless_set q.head (head + 1);
      true
    end
    else false
  end
  else flush q && raw_enqueue q v

(* Consumer side.  Consumed slots are not cleared: the values are
   immediates, so a stale slot retains nothing and the producer only
   rewrites it after observing the advanced tail. *)
let dequeue q =
  let tail = fenceless_get q.tail in
  let avail =
    !(q.cached_head) - tail > 0
    ||
    (q.cached_head := fenceless_get q.head;
     !(q.cached_head) - tail > 0)
  in
  if avail then begin
    let v = Array.unsafe_get q.slots (tail land q.mask) in
    fenceless_set q.tail (tail + 1);
    v
  end
  else nil

(* Batch operations: claim a whole span of slots per atomic index
   store, over caller-supplied arrays — O(1) span sizing (the list API
   this replaces paid a List.length traversal before the fill, then
   traversed again to fill).  Semantics are exactly n single ops: the
   accepted prefix obeys the same capacity boundary, FIFO order is
   preserved, and a batch never blocks. *)

let enqueue_batch q vs ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length vs then
    invalid_arg "Spsc_ring.enqueue_batch: bad span";
  for i = pos to pos + len - 1 do
    if vs.(i) < 0 then invalid_arg "Spsc_ring.enqueue_batch: negative value"
  done;
  if len = 0 then 0
  else if !(q.mp_n) > 0 && not (flush q) then 0
  else begin
    let head = fenceless_get q.head in
    let free =
      let f = q.cap - (head - !(q.cached_tail)) in
      if f >= len then f
      else begin
        q.cached_tail := fenceless_get q.tail;
        q.cap - (head - !(q.cached_tail))
      end
    in
    let k = min len free in
    if k <= 0 then 0
    else begin
      (* Backward fill, same temporal-slipping order as [flush]. *)
      for i = k - 1 downto 0 do
        Array.unsafe_set q.slots
          ((head + i) land q.mask)
          (Array.unsafe_get vs (pos + i))
      done;
      fenceless_set q.head (head + k);
      k
    end
  end

let dequeue_batch q buf ~pos ~max =
  if max < 0 then invalid_arg "Spsc_ring.dequeue_batch: negative max";
  if pos < 0 || pos + max > Array.length buf then
    invalid_arg "Spsc_ring.dequeue_batch: bad span";
  if max = 0 then 0
  else begin
    let tail = fenceless_get q.tail in
    let avail =
      let a = !(q.cached_head) - tail in
      if a >= max then a
      else begin
        q.cached_head := fenceless_get q.head;
        !(q.cached_head) - tail
      end
    in
    let k = min max avail in
    if k <= 0 then 0
    else begin
      for i = 0 to k - 1 do
        Array.unsafe_set buf (pos + i)
          (Array.unsafe_get q.slots ((tail + i) land q.mask))
      done;
      fenceless_set q.tail (tail + k);
      k
    end
  end

(* Snapshot ordering invariant: read [tail] BEFORE [head].  Only the
   consumer advances [tail], so a tail read first can only be stale-low,
   and [head] read second can only have grown — the difference is a
   conservative occupancy (an over-estimate) and can never go negative.
   Reading [head] first races a consumer that drains messages enqueued
   after the head load: the stale head minus the fresh tail transiently
   reports a negative length / a spuriously empty ring.  Unflushed
   multipush values are invisible here by design — they are not yet
   published. *)
let is_empty q =
  let tail = fenceless_get q.tail in
  fenceless_get q.head - tail <= 0

let length q =
  let tail = fenceless_get q.tail in
  fenceless_get q.head - tail
