(* The real-OCaml-5-domains instantiation of Ulipc.Substrate.S: a
   selectable queue transport, a bool Atomic.t for the awake flag, a
   Mutex/Condition counting semaphore, and pause-hint delay loops for
   every scheduling hint.

   Messages are slab slot indices (immediate ints): the substrate owns a
   {!Slab} of preallocated payload slots, producers fill a slot's flat
   fields and pass only its index through the queue, and the consumer
   reads the fields back out by index.  Queue emptiness is the [no_msg]
   sentinel (-1), never an option — so the steady-state data path
   touches no heap: no message records, no option boxing, no queue
   nodes (on the ring transport).

   The request plane is SHARDED: [nservers] request channels, each the
   inbox of one server domain, with clients mapped to a home shard by a
   static {!Shard_map} (round-robin by client id unless overridden).
   At [nservers = 1] this degenerates to exactly the old single-queue
   session.  Shard channels carry negative ids [-(k+1)] (so shard 0
   keeps the old [-1], and every consumer-side role test is just
   [chan_id < 0]); reply channels keep their client number.

   Cross-shard rebalancing hangs off the per-shard STEAL TOKENS: an
   idle server CAS-claims the token of a loaded sibling, and that
   sibling — the only consumer its Mpsc_ring permits — hands a span of
   its backlog over by draining and re-enqueueing onto the thief's
   ring.  The token is the whole substrate-side mechanism (three
   operations below); the orchestration lives in {!Rpc}.

   Two transports implement the queue primitives.  [Two_lock] is the
   paper's Michael & Scott two-lock queue (Tl_queue): safe for any mix of
   producers and consumers, but each operation pays a mutex pair, a
   shared count and a heap node.  [Ring] exploits the session shape:
   each request shard has many producers and exactly one consumer
   (Mpsc_ring), and each reply channel has one consumer — the owning
   client.  At [nservers = 1] the reply producer is unique too (the
   server), so replies ride {!Spsc_ring}; with a server *pool* any
   server may answer a stolen request, so reply channels switch to
   {!Mpsc_ring} (still single-consumer).  All rings are lock-free,
   allocation-free per message and keep their indices on padded cache
   lines.

   Instrumentation lives here, on the substrate side of the signature's
   counters seam, so the protocol core stays untouched: an optional
   Trace_ring sink records the unified Ulipc_observe.Event schema
   (enqueue/dequeue/block/wake/drain/handoff/spin-exhaust) with
   CLOCK_MONOTONIC timestamps into per-domain flat bounded rings.  With
   no sink attached the hot path pays one option match per operation. *)

type transport = Two_lock | Ring

let transport_name = function Two_lock -> "two-lock" | Ring -> "ring"

type queue =
  | Q_two_lock of int Tl_queue.t
  | Q_spsc of Spsc_ring.t
  | Q_mpsc of Mpsc_ring.t

type channel = {
  queue : queue;
  awake : bool Atomic.t;
  sem : Rsem.t;
  chan_id : int; (* -(k+1) = request shard k, n >= 0 = reply channel n *)
}

type t = {
  requests : channel array; (* one per server shard *)
  replies : channel array;
  shard_map : Shard_map.t;
  steal : int Atomic.t array;
      (* per-shard steal token: -1 = free, else the shard id of the idle
         server asking this shard's owner for a span of its backlog *)
  slab : Slab.t;
  transport : transport;
  counters : Ulipc.Counters.t;
  trace : Trace_ring.t option;
}

type msg = int

let no_msg = Slab.nil (* -1: an index no slab ever hands out *)

let make_channel ~chan_id queue =
  { queue; awake = Atomic.make true; sem = Rsem.create 0; chan_id }

let create ?(transport = Ring) ?trace ?slots ?(nservers = 1) ?shard_assign
    ~capacity ~nclients () =
  if nservers <= 0 then
    invalid_arg "Real_substrate.create: nservers must be positive";
  let shard_map =
    Shard_map.create ?assign:shard_assign ~nclients ~nshards:nservers ()
  in
  let request_queue () =
    match transport with
    | Two_lock -> Q_two_lock (Tl_queue.create ~capacity ())
    | Ring -> Q_mpsc (Mpsc_ring.create ~capacity ())
  in
  (* A lone server is the unique producer of every reply channel, so the
     SPSC ring applies; a pool is not — a stolen request is answered by
     the thief, so reply channels get a second (… nth) producer and must
     ride the MPSC ring.  Still one consumer: the owning client. *)
  let reply_queue () =
    match transport with
    | Two_lock -> Q_two_lock (Tl_queue.create ~capacity ())
    | Ring ->
      if nservers = 1 then Q_spsc (Spsc_ring.create ~capacity ())
      else Q_mpsc (Mpsc_ring.create ~capacity ())
  in
  (* Default slab sizing: every channel full plus one in-flight slot per
     endpoint (client or server) can never exhaust it, so the protocols'
     flow control (the bounded queues) is what callers observe, not slab
     pressure.  The channel count grows with the fleet — [nservers]
     request shards plus [nclients] reply channels — hence the explicit
     dependence on both. *)
  let slots =
    match slots with
    | Some n -> n
    | None -> (nclients + nservers) * (capacity + 1)
  in
  {
    requests =
      Array.init nservers (fun k ->
          make_channel ~chan_id:(-(k + 1)) (request_queue ()));
    replies =
      Array.init nclients (fun i -> make_channel ~chan_id:i (reply_queue ()));
    shard_map;
    steal = Array.init nservers (fun _ -> Atomic.make (-1));
    slab = Slab.create ~slots ();
    transport;
    counters = Ulipc.Counters.create ();
    trace;
  }

let transport t = t.transport
let trace t = t.trace
let slab t = t.slab

(* Substrate.S sees a single request channel: the protocol core is only
   ever handed shard channels explicitly by Rpc's sharded dispatch, and
   the [S.request] calls inside the core's Bss/Bsw/... modules are
   reached only on the [nservers = 1] fast path, where shard 0 IS the
   session's one request queue. *)
let request t = t.requests.(0)
let nclients t = Array.length t.replies
let nshards t = Array.length t.requests
let shard_map t = t.shard_map
let shard_of_client t client = Shard_map.shard t.shard_map client

let request_shard t k =
  if k < 0 || k >= Array.length t.requests then
    invalid_arg (Printf.sprintf "Real_substrate.request_shard: no shard %d" k);
  t.requests.(k)

let reply_channel t n =
  if n < 0 || n >= Array.length t.replies then
    invalid_arg (Printf.sprintf "Rpc.reply_channel: no channel %d" n);
  t.replies.(n)

let queue_length = function
  | Q_two_lock q -> Tl_queue.length q
  | Q_spsc q -> Spsc_ring.length q
  | Q_mpsc q -> Mpsc_ring.length q

let request_depth t k = queue_length t.requests.(k).queue

(* Steal token: one CAS word per shard.  [steal_claim] is the thief's
   side (post my shard id on a loaded victim, exactly one thief at a
   time); [steal_take] is the victim's side (consume the token before
   servicing it, so a token is honoured at most once); [steal_retract]
   lets a thief withdraw a request its own ring has since made moot —
   CAS, not set, because the victim may be taking it concurrently.
   Either CAS failing is benign: the token was already consumed. *)
let steal_claim t ~victim ~thief =
  Atomic.compare_and_set t.steal.(victim) (-1) thief

let steal_take t ~shard =
  let tok = t.steal.(shard) in
  let thief = Atomic.get tok in
  if thief >= 0 && Atomic.compare_and_set tok thief (-1) then thief else -1

let steal_retract t ~victim ~thief =
  ignore (Atomic.compare_and_set t.steal.(victim) thief (-1) : bool)

let steal_pending t ~shard = Atomic.get t.steal.(shard)

let emit t ch kind =
  match t.trace with
  | None -> ()
  | Some sink -> Trace_ring.record sink kind ~chan:ch.chan_id

let emit_at t ch kind ~t_ns =
  match t.trace with
  | None -> ()
  | Some sink -> Trace_ring.record_at sink kind ~t_ns ~chan:ch.chan_id

(* Producer-side events (Enqueue, Wake) are stamped *before* the
   operation and consumer-side Dequeues *after* it: a producer
   descheduled between its enqueue and a post-operation clock read would
   otherwise let the consumer's dequeue carry the earlier timestamp, and
   the merged stream would show the effect before its cause. *)
let pre_stamp t =
  match t.trace with None -> 0 | Some _ -> Ulipc_observe.Clock.now_ns ()

(* Every queue operation reports to the calling domain's backoff state:
   success ends the waiting episode, failure tags the wait's role (a
   request channel's consumer spins long, everyone else escalates to
   sleeping quickly — see Backoff).  Request shards are exactly the
   negative chan_ids.  The tag is what lets the stateless [busy_wait]
   hint pick the right spin budget without widening the Substrate.S
   seam. *)

let enqueue t ch m =
  let t_ns = pre_stamp t in
  let ok =
    match ch.queue with
    | Q_two_lock q -> Tl_queue.enqueue q m
    | Q_spsc q -> Spsc_ring.enqueue q m
    | Q_mpsc q -> Mpsc_ring.enqueue q m
  in
  if ok then begin
    Backoff.progress (Backoff.get ());
    emit_at t ch Ulipc_observe.Event.Enqueue ~t_ns
  end
  else Backoff.note_role (Backoff.get ()) ~server_side:false;
  ok

let dequeue t ch =
  let m =
    match ch.queue with
    | Q_two_lock q -> (
      match Tl_queue.dequeue q with Some v -> v | None -> no_msg)
    | Q_spsc q -> Spsc_ring.dequeue q
    | Q_mpsc q -> Mpsc_ring.dequeue q
  in
  if m != no_msg then begin
    Backoff.progress (Backoff.get ());
    emit t ch Ulipc_observe.Event.Dequeue
  end
  else Backoff.note_role (Backoff.get ()) ~server_side:(ch.chan_id < 0);
  m

(* Multipush seam (Torquati): [enqueue_local] parks the index in the
   SPSC ring's producer-private buffer — invisible to the consumer and
   free of any shared write — and [flush_local] publishes every parked
   index with one head store.  Callers must flush before waking the
   consumer, or the wake-up races a message it cannot yet see.  On the
   other queue kinds the pair degrades to plain enqueue / no-op, so the
   batched plane in Rpc is transport-oblivious (pooled sessions, whose
   reply channels are MPSC, simply lose the multipush shortcut). *)

let enqueue_local t ch m =
  match ch.queue with
  | Q_spsc q ->
    let t_ns = pre_stamp t in
    let ok = Spsc_ring.enqueue_local q m in
    if ok then begin
      Backoff.progress (Backoff.get ());
      emit_at t ch Ulipc_observe.Event.Enqueue ~t_ns
    end
    else Backoff.note_role (Backoff.get ()) ~server_side:false;
    ok
  | Q_two_lock _ | Q_mpsc _ -> enqueue t ch m

let flush_local _ ch =
  match ch.queue with
  | Q_spsc q -> Spsc_ring.flush q
  | Q_two_lock _ | Q_mpsc _ -> true

(* Batch variants: one span claim on the queue, one trace event per
   message, one backoff progress per batch.  Array-based — the spans
   live in caller-owned scratch buffers, so a batch round-trip builds
   no lists. *)

let enqueue_many t ch vs ~pos ~len =
  let t_ns = pre_stamp t in
  let k =
    match ch.queue with
    | Q_two_lock q ->
      let rec to_list i acc =
        if i < pos then acc else to_list (i - 1) (vs.(i) :: acc)
      in
      if len < 0 || pos < 0 || pos + len > Array.length vs then
        invalid_arg "Real_substrate.enqueue_many: bad span";
      Tl_queue.enqueue_batch q (to_list (pos + len - 1) [])
    | Q_spsc q -> Spsc_ring.enqueue_batch q vs ~pos ~len
    | Q_mpsc q -> Mpsc_ring.enqueue_batch q vs ~pos ~len
  in
  if k > 0 then begin
    Backoff.progress (Backoff.get ());
    for _ = 1 to k do
      emit_at t ch Ulipc_observe.Event.Enqueue ~t_ns
    done
  end
  else if len > 0 then Backoff.note_role (Backoff.get ()) ~server_side:false;
  k

let dequeue_many t ch ~buf ~pos ~max =
  let k =
    match ch.queue with
    | Q_two_lock q ->
      if max < 0 || pos < 0 || pos + max > Array.length buf then
        invalid_arg "Real_substrate.dequeue_many: bad span";
      let ms = Tl_queue.dequeue_batch q ~max in
      List.iteri (fun i v -> buf.(pos + i) <- v) ms;
      List.length ms
    | Q_spsc q -> Spsc_ring.dequeue_batch q buf ~pos ~max
    | Q_mpsc q -> Mpsc_ring.dequeue_batch q buf ~pos ~max
  in
  if k > 0 then begin
    Backoff.progress (Backoff.get ());
    for _ = 1 to k do
      emit t ch Ulipc_observe.Event.Dequeue
    done
  end
  else if max > 0 then
    Backoff.note_role (Backoff.get ()) ~server_side:(ch.chan_id < 0);
  k

let queue_is_empty _ ch =
  match ch.queue with
  | Q_two_lock q -> Tl_queue.is_empty q
  | Q_spsc q -> Spsc_ring.is_empty q
  | Q_mpsc q -> Mpsc_ring.is_empty q

let awake_test_and_set _ ch = Atomic.exchange ch.awake true
let awake_clear _ ch = Atomic.set ch.awake false
let awake_set _ ch = Atomic.set ch.awake true
let awake_read _ ch = Atomic.get ch.awake

let sem_p t ch =
  emit t ch Ulipc_observe.Event.Block;
  Rsem.p ch.sem

let sem_try_p t ch =
  let ok = Rsem.try_p ch.sem in
  (* A successful non-blocking P is the C.3' drain of a raced wake-up:
     record it so the analysis can balance the semaphore-credit algebra
     (every Wake must be consumed by a Block or a drain). *)
  if ok then emit t ch Ulipc_observe.Event.Wake_drain;
  ok

let sem_v t ch =
  emit t ch Ulipc_observe.Event.Wake;
  Rsem.v ch.sem

let sem_v_n t ch n =
  (* One trace event per credit, keeping the analysis' credit algebra
     exact (the coalesced wake-up still issues at most one signal). *)
  for _ = 1 to n do
    emit t ch Ulipc_observe.Event.Wake
  done;
  Rsem.v_n ch.sem n

(* Domains are genuinely parallel OS threads, so the waiting/scheduling
   hints are the paper's multiprocessor busy-wait — but a pure pause-hint
   spin is pathological whenever domains outnumber CPUs (the BSS consumer
   burns its whole timeslice while the producer holds the only core).
   [busy_wait] and [flow_sleep] therefore delegate to the per-domain
   {!Backoff} state: a role-sized pause-hint budget first, then bounded
   exponential nanosleep so the peer actually gets the core.  Each
   completed sleep is recorded in the substrate counters.  [poll] stays a
   single pause hint — BSLS accounts its own bounded spin. *)
let slept t =
  let c = t.counters in
  c.Ulipc.Counters.backoff_sleeps <- c.Ulipc.Counters.backoff_sleeps + 1

let busy_wait t = if Backoff.wait (Backoff.get ()) then slept t
let poll _ _ = Domain.cpu_relax ()
let yield _ = Domain.cpu_relax ()

let handoff_server t =
  emit t t.requests.(0) Ulipc_observe.Event.Handoff;
  Domain.cpu_relax ()

let handoff_any t =
  emit t t.requests.(0) Ulipc_observe.Event.Handoff;
  Domain.cpu_relax ()

let flow_sleep t = if Backoff.wait (Backoff.get ()) then slept t
let note_spin_exhausted t ch = emit t ch Ulipc_observe.Event.Spin_exhaust
let counters t = t.counters

let wake_residue t =
  let req =
    Array.fold_left (fun acc ch -> acc + Rsem.value ch.sem) 0 t.requests
  in
  Array.fold_left (fun acc ch -> acc + Rsem.value ch.sem) req t.replies

(* Post-run harvest (the slab high-water pattern): total the
   waiting-array traffic of every channel semaphore into the session
   counters.  Parks and grants are monotone per semaphore, so summing
   at quiescence is exact. *)
let harvest_sem_counters t =
  let parks = ref 0 and grants = ref 0 in
  let tally ch =
    parks := !parks + Rsem.parks ch.sem;
    grants := !grants + Rsem.grants ch.sem
  in
  Array.iter tally t.requests;
  Array.iter tally t.replies;
  let c = t.counters in
  c.Ulipc.Counters.sem_parks <- !parks;
  c.Ulipc.Counters.sem_grants <- !grants
