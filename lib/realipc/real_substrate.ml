(* The real-OCaml-5-domains instantiation of Ulipc.Substrate.S: a
   selectable queue transport, a bool Atomic.t for the awake flag, a
   Mutex/Condition counting semaphore, and pause-hint delay loops for
   every scheduling hint.  Messages are Univ.t so one (monomorphic)
   functor application in Rpc serves every ('req, 'rep) session.

   Two transports implement the queue primitives.  [Two_lock] is the
   paper's Michael & Scott two-lock queue (Tl_queue): safe for any mix of
   producers and consumers, but each operation pays a mutex pair, a
   shared count and a heap node.  [Ring] exploits the session shape the
   substrate signature already fixes: the shared request queue has many
   producers and exactly one consumer (Mpsc_ring), and each reply channel
   has exactly one producer — the server — and one consumer — the owning
   client (Spsc_ring).  Both rings are lock-free, allocation-free per
   message and keep their indices on padded cache lines.

   Instrumentation lives here, on the substrate side of the signature's
   counters seam, so the protocol core stays untouched: an optional
   Trace_ring sink records the unified Ulipc_observe.Event schema
   (enqueue/dequeue/block/wake/drain/handoff/spin-exhaust) with
   CLOCK_MONOTONIC timestamps into per-domain bounded rings.  With no
   sink attached the hot path pays one option match per operation. *)

open Ulipc_engine

type transport = Two_lock | Ring

let transport_name = function Two_lock -> "two-lock" | Ring -> "ring"

type queue =
  | Q_two_lock of Univ.t Tl_queue.t
  | Q_spsc of Univ.t Spsc_ring.t
  | Q_mpsc of Univ.t Mpsc_ring.t

type channel = {
  queue : queue;
  awake : bool Atomic.t;
  sem : Rsem.t;
  chan_id : int; (* -1 = shared request channel, n = reply channel n *)
}

type t = {
  request_ch : channel;
  replies : channel array;
  transport : transport;
  counters : Ulipc.Counters.t;
  trace : Trace_ring.t option;
}

type msg = Univ.t

let make_channel ~chan_id queue =
  { queue; awake = Atomic.make true; sem = Rsem.create 0; chan_id }

let create ?(transport = Ring) ?trace ~capacity ~nclients () =
  let request_queue =
    match transport with
    | Two_lock -> Q_two_lock (Tl_queue.create ~capacity ())
    | Ring -> Q_mpsc (Mpsc_ring.create ~capacity ())
  in
  let reply_queue () =
    match transport with
    | Two_lock -> Q_two_lock (Tl_queue.create ~capacity ())
    | Ring -> Q_spsc (Spsc_ring.create ~capacity ())
  in
  {
    request_ch = make_channel ~chan_id:(-1) request_queue;
    replies =
      Array.init nclients (fun i -> make_channel ~chan_id:i (reply_queue ()));
    transport;
    counters = Ulipc.Counters.create ();
    trace;
  }

let transport t = t.transport
let trace t = t.trace
let request t = t.request_ch
let nclients t = Array.length t.replies

let reply_channel t n =
  if n < 0 || n >= Array.length t.replies then
    invalid_arg (Printf.sprintf "Rpc.reply_channel: no channel %d" n);
  t.replies.(n)

let emit t ch kind =
  match t.trace with
  | None -> ()
  | Some sink -> Trace_ring.record sink kind ~chan:ch.chan_id

let emit_at t ch kind ~t_us =
  match t.trace with
  | None -> ()
  | Some sink -> Trace_ring.record_at sink kind ~t_us ~chan:ch.chan_id

(* Producer-side events (Enqueue, Wake) are stamped *before* the
   operation and consumer-side Dequeues *after* it: a producer
   descheduled between its enqueue and a post-operation clock read would
   otherwise let the consumer's dequeue carry the earlier timestamp, and
   the merged stream would show the effect before its cause. *)
let pre_stamp t =
  match t.trace with None -> 0.0 | Some _ -> Ulipc_observe.Clock.now_us ()

(* Every queue operation reports to the calling domain's backoff state:
   success ends the waiting episode, failure tags the wait's role (the
   request channel's consumer spins long, everyone else escalates to
   sleeping quickly — see Backoff).  The tag is what lets the stateless
   [busy_wait] hint pick the right spin budget without widening the
   Substrate.S seam. *)

let enqueue t ch m =
  let t_us = pre_stamp t in
  let ok =
    match ch.queue with
    | Q_two_lock q -> Tl_queue.enqueue q m
    | Q_spsc q -> Spsc_ring.enqueue q m
    | Q_mpsc q -> Mpsc_ring.enqueue q m
  in
  if ok then begin
    Backoff.progress (Backoff.get ());
    emit_at t ch Ulipc_observe.Event.Enqueue ~t_us
  end
  else Backoff.note_role (Backoff.get ()) ~server_side:false;
  ok

let dequeue t ch =
  let m =
    match ch.queue with
    | Q_two_lock q -> Tl_queue.dequeue q
    | Q_spsc q -> Spsc_ring.dequeue q
    | Q_mpsc q -> Mpsc_ring.dequeue q
  in
  (match m with
  | Some _ ->
    Backoff.progress (Backoff.get ());
    emit t ch Ulipc_observe.Event.Dequeue
  | None ->
    Backoff.note_role (Backoff.get ()) ~server_side:(ch.chan_id = -1));
  m

(* Batch variants: one span claim on the queue, one trace event per
   message, one backoff progress per batch. *)

let enqueue_many t ch ms =
  let t_us = pre_stamp t in
  let k =
    match ch.queue with
    | Q_two_lock q -> Tl_queue.enqueue_batch q ms
    | Q_spsc q -> Spsc_ring.enqueue_batch q ms
    | Q_mpsc q -> Mpsc_ring.enqueue_batch q ms
  in
  if k > 0 then begin
    Backoff.progress (Backoff.get ());
    for _ = 1 to k do
      emit_at t ch Ulipc_observe.Event.Enqueue ~t_us
    done
  end
  else if ms <> [] then Backoff.note_role (Backoff.get ()) ~server_side:false;
  k

let dequeue_many t ch ~max =
  let ms =
    match ch.queue with
    | Q_two_lock q -> Tl_queue.dequeue_batch q ~max
    | Q_spsc q -> Spsc_ring.dequeue_batch q ~max
    | Q_mpsc q -> Mpsc_ring.dequeue_batch q ~max
  in
  (match ms with
  | _ :: _ ->
    Backoff.progress (Backoff.get ());
    List.iter (fun _ -> emit t ch Ulipc_observe.Event.Dequeue) ms
  | [] ->
    if max > 0 then
      Backoff.note_role (Backoff.get ()) ~server_side:(ch.chan_id = -1));
  ms

let queue_is_empty _ ch =
  match ch.queue with
  | Q_two_lock q -> Tl_queue.is_empty q
  | Q_spsc q -> Spsc_ring.is_empty q
  | Q_mpsc q -> Mpsc_ring.is_empty q

let awake_test_and_set _ ch = Atomic.exchange ch.awake true
let awake_clear _ ch = Atomic.set ch.awake false
let awake_set _ ch = Atomic.set ch.awake true
let awake_read _ ch = Atomic.get ch.awake

let sem_p t ch =
  emit t ch Ulipc_observe.Event.Block;
  Rsem.p ch.sem

let sem_try_p t ch =
  let ok = Rsem.try_p ch.sem in
  (* A successful non-blocking P is the C.3' drain of a raced wake-up:
     record it so the analysis can balance the semaphore-credit algebra
     (every Wake must be consumed by a Block or a drain). *)
  if ok then emit t ch Ulipc_observe.Event.Wake_drain;
  ok

let sem_v t ch =
  emit t ch Ulipc_observe.Event.Wake;
  Rsem.v ch.sem

let sem_v_n t ch n =
  (* One trace event per credit, keeping the analysis' credit algebra
     exact (the coalesced wake-up still issues at most one signal). *)
  for _ = 1 to n do
    emit t ch Ulipc_observe.Event.Wake
  done;
  Rsem.v_n ch.sem n

(* Domains are genuinely parallel OS threads, so the waiting/scheduling
   hints are the paper's multiprocessor busy-wait — but a pure pause-hint
   spin is pathological whenever domains outnumber CPUs (the BSS consumer
   burns its whole timeslice while the producer holds the only core).
   [busy_wait] and [flow_sleep] therefore delegate to the per-domain
   {!Backoff} state: a role-sized pause-hint budget first, then bounded
   exponential [Unix.sleepf] so the peer actually gets the core.  Each
   completed sleep is recorded in the substrate counters.  [poll] stays a
   single pause hint — BSLS accounts its own bounded spin. *)
let slept t =
  let c = t.counters in
  c.Ulipc.Counters.backoff_sleeps <- c.Ulipc.Counters.backoff_sleeps + 1

let busy_wait t = if Backoff.wait (Backoff.get ()) then slept t
let poll _ _ = Domain.cpu_relax ()
let yield _ = Domain.cpu_relax ()

let handoff_server t =
  emit t t.request_ch Ulipc_observe.Event.Handoff;
  Domain.cpu_relax ()

let handoff_any t =
  emit t t.request_ch Ulipc_observe.Event.Handoff;
  Domain.cpu_relax ()

let flow_sleep t = if Backoff.wait (Backoff.get ()) then slept t
let note_spin_exhausted t ch = emit t ch Ulipc_observe.Event.Spin_exhaust
let counters t = t.counters

let wake_residue t =
  Array.fold_left
    (fun acc ch -> acc + Rsem.value ch.sem)
    (Rsem.value t.request_ch.sem)
    t.replies
