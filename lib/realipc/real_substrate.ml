(* The real-OCaml-5-domains instantiation of Ulipc.Substrate.S: the
   two-lock queue, a bool Atomic.t for the awake flag, a Mutex/Condition
   counting semaphore, and pause-hint delay loops for every scheduling
   hint.  Messages are Univ.t so one (monomorphic) functor application in
   Rpc serves every ('req, 'rep) session. *)

open Ulipc_engine

type channel = {
  queue : Univ.t Tl_queue.t;
  awake : bool Atomic.t;
  sem : Rsem.t;
}

type t = {
  request_ch : channel;
  replies : channel array;
  counters : Ulipc.Counters.t;
}

type msg = Univ.t

let make_channel ~capacity =
  {
    queue = Tl_queue.create ~capacity ();
    awake = Atomic.make true;
    sem = Rsem.create 0;
  }

let create ~capacity ~nclients =
  {
    request_ch = make_channel ~capacity;
    replies = Array.init nclients (fun _ -> make_channel ~capacity);
    counters = Ulipc.Counters.create ();
  }

let request t = t.request_ch
let nclients t = Array.length t.replies

let reply_channel t n =
  if n < 0 || n >= Array.length t.replies then
    invalid_arg (Printf.sprintf "Rpc.reply_channel: no channel %d" n);
  t.replies.(n)

let enqueue _ ch m = Tl_queue.enqueue ch.queue m
let dequeue _ ch = Tl_queue.dequeue ch.queue
let queue_is_empty _ ch = Tl_queue.is_empty ch.queue
let awake_test_and_set _ ch = Atomic.exchange ch.awake true
let awake_clear _ ch = Atomic.set ch.awake false
let awake_set _ ch = Atomic.set ch.awake true
let awake_read _ ch = Atomic.get ch.awake
let sem_p _ ch = Rsem.p ch.sem
let sem_try_p _ ch = Rsem.try_p ch.sem
let sem_v _ ch = Rsem.v ch.sem

(* Domains are genuinely parallel OS threads, so every waiting/scheduling
   hint is the paper's multiprocessor busy-wait: a pause-hint delay.
   There is no useful analogue of yield/handoff between domains — the
   hint degenerates, exactly as the paper's §6 anticipates for kernels
   without the extended interface. *)
let busy_wait _ = Domain.cpu_relax ()
let poll _ _ = Domain.cpu_relax ()
let yield _ = Domain.cpu_relax ()
let handoff_server _ = Domain.cpu_relax ()
let handoff_any _ = Domain.cpu_relax ()
let flow_sleep _ = Domain.cpu_relax ()
let counters t = t.counters

let wake_residue t =
  Array.fold_left
    (fun acc ch -> acc + Rsem.value ch.sem)
    (Rsem.value t.request_ch.sem)
    t.replies
