(* Per-domain bounded event rings behind one sink.

   Each domain's ring lives in domain-local storage keyed by the sink, so
   [record] is entirely unsynchronised: an array store at [count mod
   capacity] plus a counter bump.  The only lock in the module guards the
   registry of rings, taken once per domain (on first record) and once
   per drain.  Draining while writers are still running is memory-safe
   but can see torn orderings; callers drain after Domain.join, exactly
   like Histogram merges. *)

type kind = Enqueue | Dequeue | Block | Wake | Handoff

let kind_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Block -> "block"
  | Wake -> "wake"
  | Handoff -> "handoff"

type event = { t_us : float; domain : int; chan : int; kind : kind }
type ring = { slots : event array; mutable count : int }

type t = {
  ring_capacity : int;
  mutex : Mutex.t;
  rings : ring list ref; (* every domain's ring, shared with the DLS init *)
  key : ring Domain.DLS.key;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then
    invalid_arg "Trace_ring.create: capacity must be positive";
  let mutex = Mutex.create () in
  let rings = ref [] in
  let dummy = { t_us = 0.0; domain = -1; chan = 0; kind = Enqueue } in
  let key =
    Domain.DLS.new_key (fun () ->
        let r = { slots = Array.make capacity dummy; count = 0 } in
        Mutex.lock mutex;
        rings := r :: !rings;
        Mutex.unlock mutex;
        r)
  in
  { ring_capacity = capacity; mutex; rings; key }

let capacity t = t.ring_capacity

let record t kind ~chan =
  let r = Domain.DLS.get t.key in
  let ev =
    {
      t_us = Unix.gettimeofday () *. 1.0e6;
      domain = (Domain.self () :> int);
      chan;
      kind;
    }
  in
  r.slots.(r.count mod t.ring_capacity) <- ev;
  r.count <- r.count + 1

let snapshot t =
  Mutex.lock t.mutex;
  let rings = !(t.rings) in
  Mutex.unlock t.mutex;
  rings

(* Oldest-to-newest retained events of one ring: the full prefix while it
   has not wrapped, the last [capacity] otherwise. *)
let ring_events t r =
  let n = Stdlib.min r.count t.ring_capacity in
  let start = r.count - n in
  List.init n (fun i -> r.slots.((start + i) mod t.ring_capacity))

let events t =
  List.concat_map (ring_events t) (snapshot t)
  |> List.sort (fun a b -> Float.compare a.t_us b.t_us)

let recorded t =
  List.fold_left (fun acc r -> acc + r.count) 0 (snapshot t)

let dropped t =
  List.fold_left
    (fun acc r -> acc + Stdlib.max 0 (r.count - t.ring_capacity))
    0 (snapshot t)

let pp_event ppf ev =
  Format.fprintf ppf "%.1f us  domain %d  chan %d  %s" ev.t_us ev.domain
    ev.chan (kind_name ev.kind)
