(* Per-domain bounded event rings behind one sink.

   Each domain's ring lives in domain-local storage keyed by the sink, so
   [record] is entirely unsynchronised: three plain int-array stores at
   [count mod capacity] plus a counter bump.  The ring is FLAT — parallel
   int arrays for timestamp (nanoseconds), kind tag and channel — so
   recording allocates nothing: attaching a sink must not put minor-heap
   traffic on the zero-allocation message plane it observes.  Boxed
   Event.t records are built only at drain time.  The only lock in the
   module guards the registry of rings, taken once per domain (on first
   record) and once per drain.  Draining while writers are still running
   is memory-safe but can see torn orderings; callers drain after
   Domain.join, exactly like Histogram merges.

   The per-ring count doubles as the per-domain sequence number, and the
   ring drops oldest-first, so the retained window of any domain always
   carries contiguous sequences — the property Trace_analysis's gap
   check relies on. *)

module Event = Ulipc_observe.Event

type ring = {
  actor : int;
  t_ns : int array;
  kind : int array; (* Event.kind_tag codes *)
  chan : int array;
  mutable count : int;
}

type t = {
  ring_capacity : int;
  mutex : Mutex.t;
  rings : ring list ref; (* every domain's ring, shared with the DLS init *)
  key : ring Domain.DLS.key;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then
    invalid_arg "Trace_ring.create: capacity must be positive";
  let mutex = Mutex.create () in
  let rings = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let r =
          {
            actor = (Domain.self () :> int);
            t_ns = Array.make capacity 0;
            kind = Array.make capacity 0;
            chan = Array.make capacity 0;
            count = 0;
          }
        in
        Mutex.lock mutex;
        rings := r :: !rings;
        Mutex.unlock mutex;
        r)
  in
  { ring_capacity = capacity; mutex; rings; key }

let capacity t = t.ring_capacity

let record_at t kind ~t_ns ~chan =
  let r = Domain.DLS.get t.key in
  let i = r.count mod t.ring_capacity in
  r.t_ns.(i) <- t_ns;
  r.kind.(i) <- Event.kind_tag kind;
  r.chan.(i) <- chan;
  r.count <- r.count + 1

let record t kind ~chan =
  record_at t kind ~t_ns:(Ulipc_observe.Clock.now_ns ()) ~chan

let snapshot t =
  Mutex.lock t.mutex;
  let rings = !(t.rings) in
  Mutex.unlock t.mutex;
  rings

(* Oldest-to-newest retained events of one ring: the full prefix while it
   has not wrapped, the last [capacity] otherwise.  The boxed events are
   built here, at drain time, with timestamps converted to the trace
   schema's microseconds. *)
let ring_events t r =
  let n = Stdlib.min r.count t.ring_capacity in
  let start = r.count - n in
  List.init n (fun i ->
      let seq = start + i in
      let j = seq mod t.ring_capacity in
      {
        Event.t_us = float_of_int r.t_ns.(j) /. 1e3;
        actor = r.actor;
        seq;
        chan = r.chan.(j);
        kind = Event.kind_of_tag r.kind.(j);
      })

let events t =
  List.concat_map (ring_events t) (snapshot t) |> List.sort Event.compare

let recorded t =
  List.fold_left (fun acc r -> acc + r.count) 0 (snapshot t)

let dropped t =
  List.fold_left
    (fun acc r -> acc + Stdlib.max 0 (r.count - t.ring_capacity))
    0 (snapshot t)
