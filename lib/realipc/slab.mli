(** Preallocated, domain-safe message slab: fixed-size payload slots in
    flat unboxed arrays, recycled through a lock-free Treiber free list.

    The zero-copy message plane passes {e slot indices} through the
    queues instead of boxed records: a producer allocates a slot, fills
    its payload fields in place, and enqueues the index; the consumer
    reads the fields and releases the slot.  No step allocates on the
    OCaml heap, and no queue ever carries a heap pointer (unless the
    session opts into the {!set_box} escape hatch) — the property the
    MAP_SHARED cross-process substrate requires and [Ulipc_procipc.Pslab]
    realises over arena words.

    Thread safety: {!try_alloc}/{!alloc}/{!release} are lock-free and
    safe from any number of domains (ABA-protected by a version-packed
    head).  Payload accessors are unsynchronised plain loads/stores —
    safe under the ownership discipline (exactly one domain owns a slot
    between alloc and release; queue transfer hands ownership over with
    release/acquire publication). *)

type t

val create : slots:int -> unit -> t
(** A slab of [slots] fixed-size payload slots, all initially free.
    @raise Invalid_argument if [slots <= 0] or [slots >= 2^24]. *)

val slots : t -> int

val nil : int
(** [-1]: {!try_alloc}'s exhaustion sentinel; never a valid index. *)

val try_alloc : t -> int
(** Pop a free slot index, or {!nil} when the slab is exhausted.  The
    allocation-free hot-path variant of {!alloc}.  Exhaustion is the
    flow-control condition: every slot is in flight, so the caller backs
    off exactly as it would for a full queue. *)

val alloc : t -> int option
(** Like {!try_alloc}, with an option for test convenience ([None] when
    exhausted).  Allocates the [Some]. *)

val release : t -> int -> unit
(** Return a slot to the free list, clearing its boxed payload.
    @raise Invalid_argument if the index is out of range or the slot is
    not currently allocated (double release). *)

val in_use_count : t -> int
(** Slots currently allocated (one atomic load — a counter, not a scan);
    exact at quiescence, a snapshot under concurrency.  For tests and
    the exhaustion diagnostics in {!Rpc}. *)

val high_water : t -> int
(** The largest {!in_use_count} the slab has ever reached: how close the
    run came to exhaustion.  Reported in [Counters.slab_hwm] by the
    drivers so fleet-sized runs can verify their slab headroom. *)

(** {1 Payload fields}

    Parallel flat arrays indexed by slot: four immediate ints, one
    unboxed float, one boxed escape hatch.  The message plane reserves
    [client] for routing (the requesting client's number); codecs own
    the rest.  All accessors are plain array loads/stores and raise
    [Invalid_argument] on an out-of-range index. *)

val get_client : t -> int -> int
val set_client : t -> int -> int -> unit
val get_tag : t -> int -> int
val set_tag : t -> int -> int -> unit
val get_data : t -> int -> int
val set_data : t -> int -> int -> unit
val get_aux : t -> int -> int
val set_aux : t -> int -> int -> unit
val get_arg : t -> int -> float
val set_arg : t -> int -> float -> unit

val get_box : t -> int -> Obj.t
(** The escape hatch for arbitrary boxed payloads (used by the default
    {!Rpc} codec).  Cleared to an immediate on {!release} so the slab
    never retains a retired payload. *)

val set_box : t -> int -> Obj.t -> unit
