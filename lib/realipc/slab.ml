(* Preallocated message slab for the real backend's zero-copy message
   plane: the free-pool idea of §2.1 ("fixed sized messages to permit
   efficient free-pool management") built from one atomic word, usable
   from any number of domains, allocation-free per operation.  Its
   cross-process port is Ulipc_procipc.Pslab, the same design over
   arena words.

   Layout.  A message is not a record but an index into parallel flat
   arrays, one per payload field: four immediate ints (client, tag,
   data, aux), one unboxed float (arg), and one Obj.t escape hatch (box)
   for sessions that carry arbitrary boxed values.  Filling a slot
   writes plain array cells; nothing is allocated, and — except for
   [box] — nothing is a pointer, which is what a future MAP_SHARED
   cross-process substrate needs (OCaml heap pointers cannot cross a
   process boundary; slot indices can).

   Free list.  A Treiber stack threaded through [next], with the head
   packed as (version, index) in one int: 24 low bits of index, the
   rest version.  Every successful CAS — alloc or release — bumps the
   version, so the classic Treiber ABA (read head (v,i) and next[i]=j;
   meanwhile i is popped, j recycled elsewhere, i pushed back; the
   stale CAS to j would corrupt the list) can never succeed: the head
   word never repeats a value.  39 version bits wrap after ~5.5e11
   operations; a wrap is harmful only if a domain stalls across
   *exactly* that many operations and then wins its CAS, which we
   accept the way every packed-version Treiber stack does.

   Ownership.  alloc transfers the slot to the caller; passing the
   index through a queue transfers it to the consumer; release returns
   it.  [in_use] tracks the transfer endpoints so a double release (or
   a release of a never-allocated slot) is rejected — exact under the
   single-owner discipline, best-effort if two domains misuse one
   index concurrently.  Release also clears [box] so a retired payload
   is not kept alive by the slab. *)

let idx_bits = 24
let idx_mask = (1 lsl idx_bits) - 1
let enc_nil = idx_mask
let nil = -1

type t = {
  head : int Atomic.t; (* packed (version, index); the only shared word *)
  live : int Atomic.t; (* slots currently allocated, exact *)
  hwm : int Atomic.t; (* high-water mark of [live], CAS-maxed *)
  next : int array; (* free-list links, encoded like the head's index *)
  in_use : bool array;
  client : int array;
  tag : int array;
  data : int array;
  aux : int array;
  arg : float array;
  box : Obj.t array;
  n : int;
}

let create ~slots () =
  if slots <= 0 then invalid_arg "Slab.create: slots must be positive";
  if slots >= idx_mask then
    invalid_arg "Slab.create: too many slots for the packed free-list head";
  {
    head = Padding.copy_padded (Atomic.make 0) (* version 0, index 0 *);
    live = Padding.copy_padded (Atomic.make 0);
    hwm = Padding.copy_padded (Atomic.make 0);
    next = Array.init slots (fun i -> if i = slots - 1 then enc_nil else i + 1);
    in_use = Array.make slots false;
    client = Array.make slots 0;
    tag = Array.make slots 0;
    data = Array.make slots 0;
    aux = Array.make slots 0;
    arg = Array.make slots 0.0;
    box = Array.make slots (Obj.repr 0);
    n = slots;
  }

let slots t = t.n

(* CAS-max, racing with concurrent allocs: losing a race only matters if
   the winner published a *larger* value, in which case ours is moot.
   The common steady-state case — [v <= hwm] — is one read, no CAS. *)
let rec note_hwm t v =
  let h = Atomic.get t.hwm in
  if v > h && not (Atomic.compare_and_set t.hwm h v) then note_hwm t v

let rec try_alloc t =
  let h = Atomic.get t.head in
  let i = h land idx_mask in
  if i = enc_nil then nil
  else
    let nxt = Array.unsafe_get t.next i in
    (* [nxt] may be stale if another domain recycled slot [i] since the
       head read — the version bump below makes the CAS fail then. *)
    let h' = ((h lsr idx_bits) + 1) lsl idx_bits lor nxt in
    if Atomic.compare_and_set t.head h h' then begin
      t.in_use.(i) <- true;
      note_hwm t (1 + Atomic.fetch_and_add t.live 1);
      i
    end
    else try_alloc t

let alloc t =
  let i = try_alloc t in
  if i = nil then None else Some i

(* Top-level recursion, not a local [let rec]: a local closure would
   capture [t] and [i] and be allocated on every release — this build
   has no flambda to lift it, and release is on the zero-allocation
   round-trip path. *)
let rec push_free t i =
  let h = Atomic.get t.head in
  t.next.(i) <- h land idx_mask;
  let h' = ((h lsr idx_bits) + 1) lsl idx_bits lor i in
  if not (Atomic.compare_and_set t.head h h') then push_free t i

let release t i =
  if i < 0 || i >= t.n then invalid_arg "Slab.release: index out of range";
  if not t.in_use.(i) then invalid_arg "Slab.release: slot is not allocated";
  (* Clear ownership and the boxed payload BEFORE the push publishes the
     slot: once the CAS lands another domain may allocate [i]
     immediately, and a late store here would corrupt its slot. *)
  t.in_use.(i) <- false;
  t.box.(i) <- Obj.repr 0;
  ignore (Atomic.fetch_and_add t.live (-1) : int);
  push_free t i

let in_use_count t = Atomic.get t.live
let high_water t = Atomic.get t.hwm

(* Payload accessors: plain bounds-checked array cells.  All immediate
   (or unboxed-float) stores except [set_box], which pays one write
   barrier and is the one accessor a cross-process substrate could not
   offer. *)

let get_client t i = t.client.(i)
let set_client t i v = t.client.(i) <- v
let get_tag t i = t.tag.(i)
let set_tag t i v = t.tag.(i) <- v
let get_data t i = t.data.(i)
let set_data t i v = t.data.(i) <- v
let get_aux t i = t.aux.(i)
let set_aux t i v = t.aux.(i) <- v
let get_arg t i = t.arg.(i)
let set_arg t i (v : float) = t.arg.(i) <- v
let get_box t i = t.box.(i)
let set_box t i (v : Obj.t) = t.box.(i) <- v
