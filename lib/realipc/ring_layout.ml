(* Shared geometry for the flat bounded rings.

   Every ring in the message plane — the in-process Spsc_ring/Mpsc_ring
   over OCaml arrays and the cross-process Ulipc_procipc.Pring over
   mmap'd arena words — uses the same layout discipline: a power-of-two
   slot count masked into indices that grow without wrapping, an exact
   logical capacity that may be smaller than the slot count, and
   occupancy read as the difference of two monotonically increasing
   indices.  This module is that discipline's one home, so the two
   backends cannot drift.

   Snapshot ordering rule (restated from the ring implementations, which
   each apply it with their own reader role): occupancy [tail - head]
   read by a non-owner must load the index the PEER advances first —
   a stale own-index under-counts conservatively, never negatively. *)

let ceil_pow2 n =
  let rec go acc = if acc >= n then acc else go (acc * 2) in
  go 1

let check_capacity ~who capacity =
  if capacity <= 0 then
    invalid_arg (who ^ ": capacity must be positive")

(* Ring/mask/cap triple every ring constructor derives. *)
let geometry ~who ~capacity =
  check_capacity ~who capacity;
  let ring = ceil_pow2 capacity in
  (ring, ring - 1, capacity)
