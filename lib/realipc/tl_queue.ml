type 'a node = { mutable value : 'a option; next : 'a node option Atomic.t }

type 'a t = {
  cap : int;
  head_lock : Mutex.t;
  tail_lock : Mutex.t;
  mutable head : 'a node; (* dummy; protected by head_lock *)
  mutable tail : 'a node; (* protected by tail_lock *)
  count : int Atomic.t;
}

let fresh_node value = { value; next = Atomic.make None }

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Tl_queue.create: capacity must be positive";
  let dummy = fresh_node None in
  {
    cap = capacity;
    head_lock = Mutex.create ();
    tail_lock = Mutex.create ();
    head = dummy;
    tail = dummy;
    count = Atomic.make 0;
  }

let capacity q = q.cap

let enqueue q v =
  let node = fresh_node (Some v) in
  Mutex.lock q.tail_lock;
  let ok = Atomic.get q.count < q.cap in
  if ok then begin
    (* The [value] store above happens before this atomic publish, so a
       dequeuer that observes the link also observes the value. *)
    Atomic.set q.tail.next (Some node);
    q.tail <- node;
    Atomic.incr q.count
  end;
  Mutex.unlock q.tail_lock;
  ok

(* Batch variants: the span claim here is the lock itself — one
   tail-lock (resp. head-lock) round amortised over the whole batch,
   with the same per-message link/count discipline inside. *)
let enqueue_batch q vs =
  match vs with
  | [] -> 0
  | vs ->
    Mutex.lock q.tail_lock;
    (* Stop at the first rejection so the accepted values are always a
       prefix, even if a concurrent dequeue frees room mid-batch. *)
    let rec go k = function
      | v :: rest when Atomic.get q.count + k < q.cap ->
        let node = fresh_node (Some v) in
        Atomic.set q.tail.next (Some node);
        q.tail <- node;
        go (k + 1) rest
      | _ -> k
    in
    let k = go 0 vs in
    (* One count publish per batch; dequeuers read [count] only for the
       capacity check, where a batch-grained update is conservative. *)
    if k > 0 then ignore (Atomic.fetch_and_add q.count k : int);
    Mutex.unlock q.tail_lock;
    k

let dequeue_batch q ~max =
  if max < 0 then invalid_arg "Tl_queue.dequeue_batch: negative max";
  Mutex.lock q.head_lock;
  let rec take i acc =
    if i >= max then acc
    else
      match Atomic.get q.head.next with
      | None -> acc
      | Some node ->
        let v = node.value in
        node.value <- None;
        q.head <- node;
        Atomic.decr q.count;
        (match v with
        | Some v -> take (i + 1) (v :: acc)
        | None -> assert false (* linked nodes always hold a value *))
  in
  let acc = take 0 [] in
  Mutex.unlock q.head_lock;
  List.rev acc

let dequeue q =
  Mutex.lock q.head_lock;
  let result =
    match Atomic.get q.head.next with
    | None -> None
    | Some node ->
      let v = node.value in
      node.value <- None;
      q.head <- node;
      Atomic.decr q.count;
      v
  in
  Mutex.unlock q.head_lock;
  result

let is_empty q = Atomic.get q.head.next = None
let length q = Atomic.get q.count
