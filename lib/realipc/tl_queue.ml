type 'a node = { mutable value : 'a option; next : 'a node option Atomic.t }

type 'a t = {
  cap : int;
  head_lock : Mutex.t;
  tail_lock : Mutex.t;
  mutable head : 'a node; (* dummy; protected by head_lock *)
  mutable tail : 'a node; (* protected by tail_lock *)
  count : int Atomic.t;
}

let fresh_node value = { value; next = Atomic.make None }

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Tl_queue.create: capacity must be positive";
  let dummy = fresh_node None in
  {
    cap = capacity;
    head_lock = Mutex.create ();
    tail_lock = Mutex.create ();
    head = dummy;
    tail = dummy;
    count = Atomic.make 0;
  }

let capacity q = q.cap

let enqueue q v =
  let node = fresh_node (Some v) in
  Mutex.lock q.tail_lock;
  let ok = Atomic.get q.count < q.cap in
  if ok then begin
    (* The [value] store above happens before this atomic publish, so a
       dequeuer that observes the link also observes the value. *)
    Atomic.set q.tail.next (Some node);
    q.tail <- node;
    Atomic.incr q.count
  end;
  Mutex.unlock q.tail_lock;
  ok

let dequeue q =
  Mutex.lock q.head_lock;
  let result =
    match Atomic.get q.head.next with
    | None -> None
    | Some node ->
      let v = node.value in
      node.value <- None;
      q.head <- node;
      Atomic.decr q.count;
      v
  in
  Mutex.unlock q.head_lock;
  result

let is_empty q = Atomic.get q.head.next = None
let length q = Atomic.get q.count
