(* Static client->shard affinity map for the sharded request plane.

   The map is resolved once at session creation into a flat int array, so
   the per-send lookup is a single bounds-checked load — nothing on the
   zero-allocation send path.  The default assignment is round-robin
   ([client mod nshards]): exactly balanced for any client count, and —
   because the drivers also stripe clients over their domains round-robin
   — it keeps each client domain's traffic on one shard, which is the
   cache-friendly layout.  Static affinity (rather than
   rebalancing the map itself) is deliberate: a client's requests all
   land in one Mpsc_ring whose single consumer is that shard's server,
   so per-client FIFO order needs no cross-shard reasoning.  Imbalance
   is handled one layer up, by the steal-token protocol in Rpc, which
   moves *messages* between rings, never clients between shards.

   [assign] exists for tests: pinning every client to shard 0 is how the
   differential suite forces the steal path to carry all the traffic. *)

type t = { nshards : int; map : int array }

let create ?assign ~nclients ~nshards () =
  if nclients <= 0 then
    invalid_arg "Shard_map.create: nclients must be positive";
  if nshards <= 0 then invalid_arg "Shard_map.create: nshards must be positive";
  let pick =
    match assign with None -> fun c -> c mod nshards | Some f -> f
  in
  let map =
    Array.init nclients (fun c ->
        let s = pick c in
        if s < 0 || s >= nshards then
          invalid_arg
            (Printf.sprintf
               "Shard_map.create: assignment maps client %d to shard %d (have \
                %d shards)"
               c s nshards);
        s)
  in
  { nshards; map }

let nshards t = t.nshards
let nclients t = Array.length t.map
let shard t client = t.map.(client)

(* How many clients land on each shard — the balance the steal protocol
   has to smooth out.  For reports and tests. *)
let load t =
  let counts = Array.make t.nshards 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) t.map;
  counts
