(** Real-OCaml-5-domains substrate for the protocol core.

    {!Tl_queue} for the queues, [bool Atomic.t] for the awake flags,
    {!Rsem} for the counting semaphores, [Domain.cpu_relax] delay hints
    for every busy-wait.  Messages are {!Ulipc_engine.Univ.t}, so the
    single [Ulipc.Protocol_core.Make (Real_substrate)] application in
    {!Rpc} serves sessions of every request/reply type. *)

type t
type channel
type msg = Ulipc_engine.Univ.t

val create : capacity:int -> nclients:int -> t
(** One request channel plus [nclients] reply channels, each bounded by
    [capacity], and a fresh {!Ulipc.Counters} sink. *)

val nclients : t -> int

val wake_residue : t -> int
(** Sum of all channel semaphore counts: surplus wake-ups left pending.
    With the test-and-set discipline and the non-blocking drain this is 0
    at quiescence. *)

include
  Ulipc.Substrate.S
    with type t := t
     and type channel := channel
     and type msg := msg
