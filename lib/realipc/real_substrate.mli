(** Real-OCaml-5-domains substrate for the protocol core.

    A selectable queue transport for the data path, [bool Atomic.t] for
    the awake flags, {!Rsem} for the counting semaphores,
    [Domain.cpu_relax] delay hints for every busy-wait.  Messages are
    {!Ulipc_engine.Univ.t}, so the single
    [Ulipc.Protocol_core.Make (Real_substrate)] application in {!Rpc}
    serves sessions of every request/reply type. *)

type transport =
  | Two_lock
      (** {!Tl_queue} everywhere: the paper's Michael & Scott two-lock
          queue.  Safe for any producer/consumer mix; each operation pays
          a mutex pair and a heap node. *)
  | Ring
      (** Lock-free rings shaped to the session: {!Mpsc_ring} for the
          shared request queue (many clients, one server) and
          {!Spsc_ring} for each reply channel (the server is its only
          producer, the owning client its only consumer).  The default:
          no locks, no per-message allocation, padded index cache
          lines. *)

val transport_name : transport -> string
(** ["two-lock"] / ["ring"], for report rows and JSON. *)

type t
type channel
type msg = Ulipc_engine.Univ.t

val create :
  ?transport:transport ->
  ?trace:Trace_ring.t ->
  capacity:int ->
  nclients:int ->
  unit ->
  t
(** One request channel plus [nclients] reply channels, each bounded by
    [capacity], and a fresh {!Ulipc.Counters} sink.  [transport]
    (default {!Ring}) selects the queue implementation under every
    channel.  [trace] attaches an event-trace sink: every successful
    enqueue/dequeue, every semaphore block/wake and every handoff hint is
    recorded with a timestamp into the calling domain's bounded ring —
    instrumentation on the substrate side of the [Substrate.S] seam, like
    the counters, so the protocol core is untouched. *)

val transport : t -> transport

val trace : t -> Trace_ring.t option
(** The sink given at {!create} time, for post-run draining. *)

val nclients : t -> int

val wake_residue : t -> int
(** Sum of all channel semaphore counts: surplus wake-ups left pending.
    With the test-and-set discipline and the non-blocking drain this is 0
    at quiescence. *)

include
  Ulipc.Substrate.S
    with type t := t
     and type channel := channel
     and type msg := msg
