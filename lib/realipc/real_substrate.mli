(** Real-OCaml-5-domains substrate for the protocol core.

    A selectable queue transport for the data path, [bool Atomic.t] for
    the awake flags, {!Rsem} for the counting semaphores,
    [Domain.cpu_relax] delay hints for every busy-wait.  Messages are
    {!Ulipc_engine.Univ.t}, so the single
    [Ulipc.Protocol_core.Make (Real_substrate)] application in {!Rpc}
    serves sessions of every request/reply type. *)

type transport =
  | Two_lock
      (** {!Tl_queue} everywhere: the paper's Michael & Scott two-lock
          queue.  Safe for any producer/consumer mix; each operation pays
          a mutex pair and a heap node. *)
  | Ring
      (** Lock-free rings shaped to the session: {!Mpsc_ring} for the
          shared request queue (many clients, one server) and
          {!Spsc_ring} for each reply channel (the server is its only
          producer, the owning client its only consumer).  The default:
          no locks, no per-message allocation, padded index cache
          lines. *)

val transport_name : transport -> string
(** ["two-lock"] / ["ring"], for report rows and JSON. *)

type t
type channel
type msg = Ulipc_engine.Univ.t

val create :
  ?transport:transport ->
  ?trace:Trace_ring.t ->
  capacity:int ->
  nclients:int ->
  unit ->
  t
(** One request channel plus [nclients] reply channels, each bounded by
    [capacity], and a fresh {!Ulipc.Counters} sink.  [transport]
    (default {!Ring}) selects the queue implementation under every
    channel.  [trace] attaches an event-trace sink: every successful
    enqueue/dequeue, every semaphore block/wake and every handoff hint is
    recorded with a timestamp into the calling domain's bounded ring —
    instrumentation on the substrate side of the [Substrate.S] seam, like
    the counters, so the protocol core is untouched. *)

val transport : t -> transport

val trace : t -> Trace_ring.t option
(** The sink given at {!create} time, for post-run draining. *)

val nclients : t -> int

val wake_residue : t -> int
(** Sum of all channel semaphore counts: surplus wake-ups left pending.
    With the test-and-set discipline and the non-blocking drain this is 0
    at quiescence. *)

(** {1 Batch data path}

    Outside the [Substrate.S] seam (the protocol core stays untouched):
    the pipelined fast path in {!Rpc} uses these to move [k] messages
    per atomic span claim and coalesce [k] wake-ups into one. *)

val enqueue_many : t -> channel -> msg list -> int
(** Enqueue a prefix of the list with one span claim on the transport
    ({!Spsc_ring.enqueue_batch} / {!Mpsc_ring.enqueue_batch} /
    {!Tl_queue.enqueue_batch}); returns how many were accepted.  One
    trace event per message. *)

val dequeue_many : t -> channel -> max:int -> msg list
(** Dequeue up to [max] messages with one span claim (FIFO, possibly
    empty). *)

val sem_v_n : t -> channel -> int -> unit
(** Publish [n] semaphore credits with at most one wake-up
    ({!Rsem.v_n}): the wake-coalescing half of a batched send.  Records
    one trace event per credit so the analysis' credit algebra stays
    exact. *)

include
  Ulipc.Substrate.S
    with type t := t
     and type channel := channel
     and type msg := msg
