(** Real-OCaml-5-domains substrate for the protocol core.

    A selectable queue transport for the data path, [bool Atomic.t] for
    the awake flags, {!Rsem} for the counting semaphores,
    [Domain.cpu_relax] delay hints for every busy-wait.

    Messages are slab slot {e indices} (immediate ints): the substrate
    owns a {!Slab} of preallocated payload slots, producers fill a
    slot's flat fields and enqueue only its index, and consumers read
    the fields back out by index — so the steady-state data path
    allocates nothing on the minor heap.  The single
    [Ulipc.Protocol_core.Make (Real_substrate)] application in {!Rpc}
    still serves sessions of every request/reply type, via codecs that
    marshal typed payloads into slot fields.

    The request plane is {e sharded}: [nservers] request channels, one
    per server domain, with clients statically mapped to a home shard by
    a {!Shard_map} (round-robin by client id unless overridden).  At
    [nservers = 1] this is exactly the old single-queue session.
    Cross-shard rebalancing rides the per-shard steal tokens below; the
    orchestration (when to claim, how a victim hands a span over) lives
    in {!Rpc}. *)

type transport =
  | Two_lock
      (** {!Tl_queue} everywhere: the paper's Michael & Scott two-lock
          queue.  Safe for any producer/consumer mix; each operation pays
          a mutex pair and a heap node. *)
  | Ring
      (** Lock-free rings shaped to the session: {!Mpsc_ring} for each
          request shard (many clients, one server) and for the reply
          channels of a pooled session (any server may answer a stolen
          request; the owning client is still the only consumer);
          {!Spsc_ring} for reply channels when [nservers = 1] (the lone
          server is then the unique producer).  The default: no locks,
          no per-message allocation, padded index cache lines. *)

val transport_name : transport -> string
(** ["two-lock"] / ["ring"], for report rows and JSON. *)

type t
type channel

type msg = int
(** A {!Slab} slot index; {!Ulipc.Substrate.S.no_msg} is [-1]. *)

val create :
  ?transport:transport ->
  ?trace:Trace_ring.t ->
  ?slots:int ->
  ?nservers:int ->
  ?shard_assign:(int -> int) ->
  capacity:int ->
  nclients:int ->
  unit ->
  t
(** [nservers] request shard channels (default 1) plus [nclients] reply
    channels, each bounded by [capacity], one payload {!Slab} of [slots]
    slots (default [(nclients + nservers) * (capacity + 1)]: every
    channel full plus one in-flight slot per endpoint can never exhaust
    it), and a fresh {!Ulipc.Counters} sink.  [shard_assign] overrides
    the round-robin client→shard map (see {!Shard_map.create}).
    [transport] (default {!Ring}) selects the queue implementation under
    every channel.  [trace] attaches an event-trace sink: every
    successful enqueue/dequeue, every semaphore block/wake and every
    handoff hint is recorded with a timestamp into the calling domain's
    bounded ring — instrumentation on the substrate side of the
    [Substrate.S] seam, like the counters, so the protocol core is
    untouched.  Shard [k]'s channel id is [-(k+1)] (shard 0 keeps the
    historical [-1]); reply channel [n] keeps id [n]. *)

val transport : t -> transport

val trace : t -> Trace_ring.t option
(** The sink given at {!create} time, for post-run draining. *)

val slab : t -> Slab.t
(** The payload slab all channels pass indices into.  {!Rpc} owns the
    slot lifecycle (acquire/fill/pass/release); tests may inspect
    [Slab.in_use_count] at quiescence. *)

val nclients : t -> int

val wake_residue : t -> int
(** Sum of all channel semaphore counts: surplus wake-ups left pending.
    With the test-and-set discipline and the non-blocking drain this is 0
    at quiescence. *)

val harvest_sem_counters : t -> unit
(** Total every channel semaphore's waiting-array traffic (cumulative
    parks and directed grants) into the session counters' [sem_parks]
    and [sem_grants] — call at quiescence, the slab high-water
    pattern. *)

(** {1 Sharded request plane} *)

val nshards : t -> int
(** Number of request shards — the [nservers] of {!create}. *)

val shard_map : t -> Shard_map.t

val shard_of_client : t -> int -> int
(** Home shard of a client's requests: one array load. *)

val request_shard : t -> int -> channel
(** Shard [k]'s request channel.  [request_shard t 0 == request t].
    @raise Invalid_argument on a bad shard number. *)

val request_depth : t -> int -> int
(** Occupancy snapshot of shard [k]'s request queue — how the steal
    orchestration picks its victim.  Conservative under concurrency
    (see {!Mpsc_ring.length}). *)

(** {2 Steal tokens}

    One CAS word per shard, [-1] when free.  A server with nothing to do
    posts its shard id on a loaded sibling ({!steal_claim}); the
    sibling — its ring's only legal consumer — consumes the token
    ({!steal_take}), drains a span of its backlog and re-enqueues it on
    the thief's ring.  At most one thief per victim at a time, and a
    token is honoured at most once.  All three operations are benign
    under races: a failed CAS just means the token was already taken. *)

val steal_claim : t -> victim:int -> thief:int -> bool
(** Post [thief]'s shard id on [victim]'s token; [false] if some token
    is already posted there. *)

val steal_take : t -> shard:int -> int
(** Consume the token posted on [shard] (the caller must be its owning
    server): the thief's shard id, or [-1] if none was posted. *)

val steal_retract : t -> victim:int -> thief:int -> unit
(** Withdraw a claim [thief] posted on [victim], if still pending — a
    thief whose own ring has since filled no longer wants the handoff.
    No-op if the victim already took it (the span will just arrive; the
    thief's consumer loop handles it like any other traffic). *)

val steal_pending : t -> shard:int -> int
(** The thief id currently posted on [shard], or [-1]; for the owning
    server's fast-path check and for tests. *)

(** {1 Batch data path}

    Outside the [Substrate.S] seam (the protocol core stays untouched):
    the pipelined fast path in {!Rpc} uses these to move [k] slot
    indices per atomic span claim and coalesce [k] wake-ups into one.
    Spans live in caller-owned scratch arrays, so a batched round-trip
    builds no lists. *)

val enqueue_many : t -> channel -> msg array -> pos:int -> len:int -> int
(** Enqueue a prefix of [vs.(pos .. pos+len-1)] with one span claim on
    the transport ({!Spsc_ring.enqueue_batch} /
    {!Mpsc_ring.enqueue_batch} / {!Tl_queue.enqueue_batch}); returns how
    many were accepted.  One trace event per message. *)

val dequeue_many : t -> channel -> buf:msg array -> pos:int -> max:int -> int
(** Dequeue up to [max] indices into [buf.(pos ..)] with one span claim;
    returns how many were taken (FIFO, possibly 0). *)

val enqueue_local : t -> channel -> msg -> bool
(** Torquati multipush: park the index in the SPSC producer-private
    buffer — no shared write, invisible to the consumer until
    {!flush_local}.  On non-SPSC channels this is plain {!enqueue}.
    Callers must flush before waking the consumer. *)

val flush_local : t -> channel -> bool
(** Publish every parked index with one head store; [false] when the
    ring lacks room (the indices stay parked).  [true] and a no-op on
    non-SPSC channels. *)

val sem_v_n : t -> channel -> int -> unit
(** Publish [n] semaphore credits with at most one wake-up
    ({!Rsem.v_n}): the wake-coalescing half of a batched send.  Records
    one trace event per credit so the analysis' credit algebra stays
    exact. *)

include
  Ulipc.Substrate.S
    with type t := t
     and type channel := channel
     and type msg := msg
