(** Real-OCaml-5-domains substrate for the protocol core.

    A selectable queue transport for the data path, [bool Atomic.t] for
    the awake flags, {!Rsem} for the counting semaphores,
    [Domain.cpu_relax] delay hints for every busy-wait.

    Messages are slab slot {e indices} (immediate ints): the substrate
    owns a {!Slab} of preallocated payload slots, producers fill a
    slot's flat fields and enqueue only its index, and consumers read
    the fields back out by index — so the steady-state data path
    allocates nothing on the minor heap.  The single
    [Ulipc.Protocol_core.Make (Real_substrate)] application in {!Rpc}
    still serves sessions of every request/reply type, via codecs that
    marshal typed payloads into slot fields. *)

type transport =
  | Two_lock
      (** {!Tl_queue} everywhere: the paper's Michael & Scott two-lock
          queue.  Safe for any producer/consumer mix; each operation pays
          a mutex pair and a heap node. *)
  | Ring
      (** Lock-free rings shaped to the session: {!Mpsc_ring} for the
          shared request queue (many clients, one server) and
          {!Spsc_ring} for each reply channel (the server is its only
          producer, the owning client its only consumer).  The default:
          no locks, no per-message allocation, padded index cache
          lines. *)

val transport_name : transport -> string
(** ["two-lock"] / ["ring"], for report rows and JSON. *)

type t
type channel

type msg = int
(** A {!Slab} slot index; {!Ulipc.Substrate.S.no_msg} is [-1]. *)

val create :
  ?transport:transport ->
  ?trace:Trace_ring.t ->
  ?slots:int ->
  capacity:int ->
  nclients:int ->
  unit ->
  t
(** One request channel plus [nclients] reply channels, each bounded by
    [capacity], one payload {!Slab} of [slots] slots (default
    [(nclients + 1) * (capacity + 1)]: every channel full plus one
    in-flight slot per endpoint can never exhaust it), and a fresh
    {!Ulipc.Counters} sink.  [transport] (default {!Ring}) selects the
    queue implementation under every channel.  [trace] attaches an
    event-trace sink: every successful enqueue/dequeue, every semaphore
    block/wake and every handoff hint is recorded with a timestamp into
    the calling domain's bounded ring — instrumentation on the substrate
    side of the [Substrate.S] seam, like the counters, so the protocol
    core is untouched. *)

val transport : t -> transport

val trace : t -> Trace_ring.t option
(** The sink given at {!create} time, for post-run draining. *)

val slab : t -> Slab.t
(** The payload slab all channels pass indices into.  {!Rpc} owns the
    slot lifecycle (acquire/fill/pass/release); tests may inspect
    [Slab.in_use_count] at quiescence. *)

val nclients : t -> int

val wake_residue : t -> int
(** Sum of all channel semaphore counts: surplus wake-ups left pending.
    With the test-and-set discipline and the non-blocking drain this is 0
    at quiescence. *)

(** {1 Batch data path}

    Outside the [Substrate.S] seam (the protocol core stays untouched):
    the pipelined fast path in {!Rpc} uses these to move [k] slot
    indices per atomic span claim and coalesce [k] wake-ups into one.
    Spans live in caller-owned scratch arrays, so a batched round-trip
    builds no lists. *)

val enqueue_many : t -> channel -> msg array -> pos:int -> len:int -> int
(** Enqueue a prefix of [vs.(pos .. pos+len-1)] with one span claim on
    the transport ({!Spsc_ring.enqueue_batch} /
    {!Mpsc_ring.enqueue_batch} / {!Tl_queue.enqueue_batch}); returns how
    many were accepted.  One trace event per message. *)

val dequeue_many : t -> channel -> buf:msg array -> pos:int -> max:int -> int
(** Dequeue up to [max] indices into [buf.(pos ..)] with one span claim;
    returns how many were taken (FIFO, possibly 0). *)

val enqueue_local : t -> channel -> msg -> bool
(** Torquati multipush: park the index in the SPSC producer-private
    buffer — no shared write, invisible to the consumer until
    {!flush_local}.  On non-SPSC channels this is plain {!enqueue}.
    Callers must flush before waking the consumer. *)

val flush_local : t -> channel -> bool
(** Publish every parked index with one head store; [false] when the
    ring lacks room (the indices stay parked).  [true] and a no-op on
    non-SPSC channels. *)

val sem_v_n : t -> channel -> int -> unit
(** Publish [n] semaphore credits with at most one wake-up
    ({!Rsem.v_n}): the wake-coalescing half of a batched send.  Records
    one trace event per credit so the analysis' credit algebra stays
    exact. *)

include
  Ulipc.Substrate.S
    with type t := t
     and type channel := channel
     and type msg := msg
