(** Bounded lock-free multi-producer/single-consumer ring.

    Vyukov's bounded queue specialised to one consumer: producers claim
    slots by CAS on a tail ticket, per-slot sequence numbers mark each
    slot free / filled / consumed for the current lap, and the single
    consumer advances head with plain atomic stores — no lock, no
    per-message node.  Tail and head tickets live on separate
    cache-line-padded atomics ({!Padding}).

    This is the transport for the session's shared request queue: every
    client (and {!Rpc.post}) produces, only the server consumes.
    Behaviour is undefined if two domains consume concurrently.

    Same observable semantics as {!Tl_queue} when quiescent: FIFO per
    producer, [enqueue] returns [false] exactly when [capacity] messages
    are in flight, [dequeue] returns [None] when empty.  Under
    concurrency, [enqueue] may transiently report full (while the
    consumer is mid-dequeue) and [dequeue] may transiently report empty
    (while a producer is mid-enqueue); callers retry, as all the
    protocol loops already do. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** The slot array is the capacity rounded up to a power of two, but the
    flow-control boundary is checked against [capacity] exactly.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val enqueue : 'a t -> 'a -> bool
(** [false] when the queue is full.  Any number of concurrent producers;
    lock-free (a failed ticket race retries, but some producer always
    progresses). *)

val dequeue : 'a t -> 'a option
(** Consumer side only. *)

val enqueue_batch : 'a t -> 'a list -> int
(** Enqueue a prefix of the list, claiming the whole span of tickets
    with a single tail CAS, and return how many values were accepted —
    observationally n single {!enqueue}s (FIFO, exact capacity
    boundary), at one contended CAS per batch instead of one per
    message.  Never blocks; [0] when full.  Safe under any number of
    concurrent producers. *)

val dequeue_batch : 'a t -> max:int -> 'a list
(** Dequeue every ready value up to [max] (FIFO, possibly empty),
    publishing the consumer index once per batch.  Consumer side only.
    @raise Invalid_argument if [max < 0]. *)

val is_empty : 'a t -> bool
(** Lock-free hint, as used by polling loops: two atomic loads, [head]
    before [tail] so a concurrent dequeue can never make an occupied ring
    look empty.  Counts claimed-but-unfilled slots as present. *)

val length : 'a t -> int
(** Racy but conservative snapshot of the element count (including
    claimed slots): may over-report occupancy against a racing consumer,
    never negative. *)
