(** Bounded lock-free multi-producer/single-consumer ring over flat
    arrays.

    Vyukov's bounded queue specialised to one consumer: producers claim
    slots by CAS on a tail ticket, per-slot sequence numbers mark each
    slot free / filled / consumed for the current lap, and the single
    consumer advances head with plain atomic stores — no lock, no
    per-message node.  Tail and head tickets live on separate
    cache-line-padded atomics ({!Padding}).

    The ring carries {e non-negative immediate ints} (slab slot indices
    on the message plane, {!Slab}) in a flat [int array]: no ['a option]
    box, no write barrier, zero heap allocation per operation.  [-1] is
    the dequeue-side empty sentinel; enqueueing a negative value raises.

    This is the transport for the session's shared request queue: every
    client (and {!Rpc.post}) produces, only the server consumes.
    Behaviour is undefined if two domains consume concurrently.

    Same observable semantics as {!Tl_queue} when quiescent: FIFO per
    producer, [enqueue] returns [false] exactly when [capacity] messages
    are in flight, [dequeue] returns {!nil} when empty.  Under
    concurrency, [enqueue] may transiently report full (while the
    consumer is mid-dequeue) and [dequeue] may transiently report empty
    (while a producer is mid-enqueue); callers retry, as all the
    protocol loops already do. *)

type t

val nil : int
(** [-1]: {!dequeue}'s empty sentinel; never a valid element. *)

val create : capacity:int -> unit -> t
(** The slot array is the capacity rounded up to a power of two, but the
    flow-control boundary is checked against [capacity] exactly.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val enqueue : t -> int -> bool
(** [false] when the queue is full.  Any number of concurrent producers;
    lock-free (a failed ticket race retries, but some producer always
    progresses).
    @raise Invalid_argument on a negative value. *)

val dequeue : t -> int
(** The oldest ready value, or {!nil} when none is.  Consumer side only.
    Allocation-free. *)

val enqueue_batch : t -> int array -> pos:int -> len:int -> int
(** [enqueue_batch q vs ~pos ~len] enqueues a prefix of
    [vs.(pos .. pos+len-1)], claiming the whole span of tickets with a
    single tail CAS, and returns how many values were accepted —
    observationally n single {!enqueue}s (FIFO, exact capacity
    boundary), at one contended CAS per batch instead of one per
    message.  The span length is a parameter, not a list traversal.
    Never blocks; [0] when full.  Safe under any number of concurrent
    producers.
    @raise Invalid_argument on a bad span or a negative value. *)

val dequeue_batch : t -> int array -> pos:int -> max:int -> int
(** [dequeue_batch q buf ~pos ~max] dequeues every ready value up to
    [max] into [buf.(pos ..)] (FIFO), publishing the consumer index once
    per batch, and returns the count.  Consumer side only.
    Allocation-free.
    @raise Invalid_argument on a bad span. *)

val is_empty : t -> bool
(** Lock-free hint, as used by polling loops: two atomic loads, [head]
    before [tail] so a concurrent dequeue can never make an occupied ring
    look empty.  Counts claimed-but-unfilled slots as present. *)

val length : t -> int
(** Racy but conservative snapshot of the element count (including
    claimed slots): may over-report occupancy against a racing consumer,
    never negative. *)
