(** Static client->shard affinity for the sharded request plane.

    Resolved once into a flat array at creation: the per-send lookup is
    one array load.  Default assignment is round-robin
    ([client mod nshards]) — exactly balanced for any client count.
    Load imbalance is corrected at the message level by the steal-token
    protocol in {!Rpc}, never by remapping clients: a client's requests
    always enter its home shard's ring, so per-client FIFO needs no
    cross-shard argument. *)

type t

val create : ?assign:(int -> int) -> nclients:int -> nshards:int -> unit -> t
(** [assign] overrides the round-robin default (tests pin every client
    to one shard to force stealing).
    @raise Invalid_argument if a count is non-positive or [assign] maps
    a client outside [0 .. nshards-1]. *)

val nshards : t -> int
val nclients : t -> int

val shard : t -> int -> int
(** Home shard of a client.  @raise Invalid_argument out of range. *)

val load : t -> int array
(** Clients per shard under this map. *)
