(** Bounded exponential backoff for the real backend's busy-wait loops.

    Per-domain episode state (in domain-local storage): a waiting episode
    is the run of failed waits since the domain last made progress.
    Within an episode the first [budget] waits are [Domain.cpu_relax]
    hints; after that each wait is a bounded, exponentially growing
    nanosleep — the portable yield that stops oversubscribed
    spinners (BSS on few cores) from burning whole scheduler quanta
    while the peer they wait for cannot run.  Durations are integer
    nanoseconds end to end and the park is a direct [nanosleep] stub,
    so a backoff step never touches the minor heap (a [Unix.sleepf]
    park would box its float duration on every step).

    The spin budget is small and role-independent — on a single CPU a
    spinning domain is not preempted when its peer wakes, so long spins
    add directly to the round-trip — but the park length is
    role-specific: the request channel's consumer (the server) parks
    short so a new request finds it quickly, while producers and
    reply-side consumers park long enough to cover a whole server
    turnaround in one park.  Each domain also drops its Linux timer
    slack to 1 ns so parks wake at hrtimer precision. *)

type t

val get : unit -> t
(** The calling domain's backoff state. *)

val note_role : t -> server_side:bool -> unit
(** Tag the wait in progress: [server_side] when the waiter is the
    request channel's consumer.  Set by the substrate on every failed
    queue operation, read by {!wait} to pick the spin budget. *)

val wait : t -> bool
(** One backoff step; [true] when the step escalated to a sleep (the
    caller records it in {!Ulipc.Counters}). *)

val progress : t -> unit
(** Reset the episode: the domain completed a queue operation. *)
