(** Michael & Scott two-lock FIFO queue, for real, on OCaml 5 domains.

    The same structure the paper's evaluation software uses and that
    {!Ulipc_shm.Ms_queue} simulates: a linked list with a dummy node, one
    mutex for the head (dequeuers) and one for the tail (enqueuers), so a
    single producer and a single consumer never contend.  Node links are
    [Atomic.t]s so the unlocked {!is_empty} hint and cross-domain
    publication are sound under the OCaml memory model.  Bounded, because
    the paper's queues are flow-controlled by a fixed free pool. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val enqueue : 'a t -> 'a -> bool
(** [false] when the queue is full. *)

val dequeue : 'a t -> 'a option

val enqueue_batch : 'a t -> 'a list -> int
(** Enqueue a prefix of the list under ONE tail-lock acquisition,
    returning how many values were accepted — observationally n single
    {!enqueue}s (FIFO, exact capacity boundary) at one lock round per
    batch.  Never blocks on a full queue; [0] when full. *)

val dequeue_batch : 'a t -> max:int -> 'a list
(** Dequeue up to [max] values under ONE head-lock acquisition (FIFO,
    possibly empty).
    @raise Invalid_argument if [max < 0]. *)

val is_empty : 'a t -> bool
(** Lock-free hint, as used by polling loops: one atomic load. *)

val length : 'a t -> int
(** Racy snapshot of the element count. *)
