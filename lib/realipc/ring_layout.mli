(** Shared geometry for the flat bounded rings — in-process
    ([Spsc_ring]/[Mpsc_ring]) and cross-process ([Ulipc_procipc.Pring])
    alike: power-of-two slot counts, exact logical capacity, occupancy
    as a difference of unwrapped indices.  See ring_layout.ml for the
    snapshot-ordering rule the implementations restate. *)

val ceil_pow2 : int -> int
(** Smallest power of two [>= n] (and [>= 1]). *)

val check_capacity : who:string -> int -> unit
(** @raise Invalid_argument when the capacity is not positive. *)

val geometry : who:string -> capacity:int -> int * int * int
(** [(ring, mask, cap)]: slot count, index mask, exact logical
    capacity.  @raise Invalid_argument if [capacity <= 0]. *)
