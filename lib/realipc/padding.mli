(** Cache-line isolation for hot shared words.

    The ring transports keep their head and tail indices in dedicated
    [Atomic.t] boxes.  Two one-word boxes allocated back to back share a
    64-byte cache line, so a producer bumping one index would invalidate
    the line the consumer's index lives on — the classic false-sharing
    ping-pong.  {!copy_padded} re-allocates such a box with enough
    trailing padding words that it occupies (at least) a full line on its
    own.  OCaml 5.2's [Atomic.make_contended] subsumes this; until then
    this is the portable spelling. *)

val words : int
(** Number of padding words appended ([15], i.e. 120 bytes on 64-bit). *)

val copy_padded : 'a -> 'a
(** [copy_padded v] returns a copy of the heap block [v] padded to span a
    cache line.  [v] must be a uniform scannable block whose primitives
    only address field 0 — e.g. an ['a Atomic.t] or an ['a ref] — and
    must not yet be shared with another domain.  Use at structure
    creation time only. *)

