(** Counting semaphore over [Mutex]/[Condition].

    The portable stand-in for the System V semaphores the paper blocks on
    (and for the futex a modern implementation would use).  Counting
    semantics matter: the sleep/wake-up protocols rely on a V posted
    before the P remaining pending (§3, Interleaving 1). *)

type t

val create : int -> t
(** @raise Invalid_argument on a negative initial count. *)

val p : t -> unit
(** Down: block while the count is zero, then decrement. *)

val try_p : t -> bool
(** Non-blocking down: decrement and return [true] if the count is
    positive, return [false] (without waiting) if it is zero.  The
    Figure 5 consumer drains a raced wake-up with this after its second
    dequeue succeeds (Interleaving 3), where a blocking P could not be
    used speculatively. *)

val v : t -> unit
(** Up: increment and wake one waiter. *)

val value : t -> int
(** Racy snapshot, for tests and residue accounting. *)
