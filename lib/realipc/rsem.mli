(** Counting semaphore with an atomic fast path and a waiting-array
    slow path.

    The portable stand-in for the System V semaphores the paper blocks
    on, built the way a futex-based semaphore is: the count lives in one
    [Atomic.t] (negative values record waiters), so uncontended {!v} and
    {!p} are a single atomic read-modify-write and never take a lock.
    Counting semantics matter: the sleep/wake-up protocols rely on a V
    posted before the P remaining pending (§3, Interleaving 1).

    The contended path is a waiting array (Dice & Kogan, "Semaphores
    Augmented with a Waiting Array"): a parking P claims a FIFO ticket
    and sleeps on the ticket's private cache-padded slot (its own
    Mutex/Condition pair); a V that owes a wake claims the matching
    grant ticket and writes the credit straight into that slot.  So the
    V path takes {e no} semaphore-wide lock, every wake is directed at
    exactly the waiter it releases, and ticket order makes the
    semaphore starvation-free — grant [g] can only release park ticket
    [g], the oldest waiter not yet served.  Only when parked waiters
    outnumber the array's slots do generations share a slot and grants
    degrade to (counted) per-slot broadcasts. *)

type t

val create : ?spin:int -> ?slots:int -> int -> t
(** [create count] with the given initial count.  [spin] bounds the
    fast-path retries a {!p} performs before parking; the default is a
    small bound on multiprocessors and [0] on a uniprocessor, where
    spinning can only delay the poster.  [slots] is a hint for the
    expected concurrently-parked population (rounded up to a power of
    two, default 8): with at most [slots] waiters parked at once every
    wake is a directed single signal, beyond that slots are shared and
    grants broadcast per slot.
    @raise Invalid_argument on a negative initial count or spin bound,
      or a non-positive [slots]. *)

val p : t -> unit
(** Down: block while the count is zero, then decrement.  Uncontended
    (count positive): one CAS, no lock. *)

val try_p : t -> bool
(** Non-blocking down: decrement and return [true] if the count is
    positive, return [false] (without waiting) if it is zero.  The
    Figure 5 consumer drains a raced wake-up with this after its second
    dequeue succeeds (Interleaving 3), where a blocking P could not be
    used speculatively.  Never registers as a waiter. *)

val v : t -> unit
(** Up: increment and wake one waiter — a single directed signal into
    the oldest claimed slot, never a broadcast (unless that slot is
    shared).  Uncontended (no waiter): one atomic add, no lock, no
    signal. *)

val v_n : t -> int -> unit
(** [v_n t n] publishes [n] credits with one atomic add and at most
    [min n waiters] directed per-slot wakes — the wake-coalescing
    primitive batched replies use, where [n] separate {!v} calls would
    pay [n] count updates.  [v_n t 1] is {!v}; [v_n t 0] is a no-op.
    @raise Invalid_argument on a negative [n]. *)

val value : t -> int
(** Racy snapshot of the credit count (0 while waiters are parked), for
    tests and residue accounting. *)

val parked : t -> int
(** Number of waiters currently committed to the waiting array (ticket
    claimed, not yet released).  Read from a dedicated [Atomic.t], so
    the value is never a torn read — it is exact at quiescence and at
    any instant a consistent count of committed waiters. *)

val waiters : t -> int
(** Alias for {!parked}, kept for the PR-7 directed-wake call sites. *)

val parks : t -> int
(** Cumulative slow-path entries: how many P's ever claimed a park
    ticket (monotone).  With {!grants} this exposes the waiting-array
    traffic to the counters seam. *)

val grants : t -> int
(** Cumulative credits delivered into the waiting array by V's
    (monotone); [parks t - grants t] never exceeds the population still
    parked. *)

val array_size : t -> int
(** The waiting array's slot count (the rounded-up [slots] hint). *)

val slot_waits : t -> int array
(** Per-slot cumulative park counts, each read under its slot's mutex:
    the occupancy histogram of the waiting array (flat when the FIFO
    tickets rotate through the array, as they should). *)

val shared_slot_broadcasts : t -> int
(** How many grants found sleepers of more than one generation sharing
    the slot and had to broadcast — 0 whenever the concurrently-parked
    population stays within {!array_size}. *)
