(** Counting semaphore with an atomic fast path.

    The portable stand-in for the System V semaphores the paper blocks
    on, built the way a futex-based semaphore is: the count lives in one
    [Atomic.t] (negative values record waiters), so uncontended {!v} and
    {!p} are a single atomic read-modify-write and never take the mutex.
    Only a P that actually finds no credit parks on the internal
    Mutex/Condition pair — after a bounded spin — and only a V that
    observes a parked waiter takes the mutex to bank its wake-up.
    Counting semantics matter: the sleep/wake-up protocols rely on a V
    posted before the P remaining pending (§3, Interleaving 1).

    Wake-ups are {e directed}: the semaphore tracks how many waiters are
    actually parked, grants scarcer-than-sleepers credits with exactly
    one [Condition.signal] per credit, reserves [broadcast] for the case
    where every sleeper has a credit, and issues no condvar call at all
    when no one is parked (the banked credit is found by the parking
    waiter's own re-check).  As the fleet grows this keeps a contended V
    from waking the whole herd — cf. Dice & Kogan's waiting-array
    semaphore. *)

type t

val create : ?spin:int -> int -> t
(** [create count] with the given initial count.  [spin] bounds the
    fast-path retries a {!p} performs before parking; the default is a
    small bound on multiprocessors and [0] on a uniprocessor, where
    spinning can only delay the poster.
    @raise Invalid_argument on a negative initial count or spin bound. *)

val p : t -> unit
(** Down: block while the count is zero, then decrement.  Uncontended
    (count positive): one CAS, no lock. *)

val try_p : t -> bool
(** Non-blocking down: decrement and return [true] if the count is
    positive, return [false] (without waiting) if it is zero.  The
    Figure 5 consumer drains a raced wake-up with this after its second
    dequeue succeeds (Interleaving 3), where a blocking P could not be
    used speculatively.  Never registers as a waiter. *)

val v : t -> unit
(** Up: increment and wake one waiter — one [signal], never a broadcast.
    Uncontended (no waiter): one atomic add, no lock, no signal. *)

val v_n : t -> int -> unit
(** [v_n t n] publishes [n] credits with one atomic add and a directed
    wake: [min n parked] signals when sleepers outnumber the credits,
    one broadcast when they do not — the wake-coalescing primitive
    batched replies use, where [n] separate {!v} calls would pay up to
    [n] lock rounds.  [v_n t 1] is {!v}; [v_n t 0] is a no-op.
    @raise Invalid_argument on a negative [n]. *)

val value : t -> int
(** Racy snapshot of the credit count (0 while waiters are parked), for
    tests and residue accounting. *)

val waiters : t -> int
(** Racy snapshot of the number of waiters currently parked inside the
    semaphore (not counting those still spinning toward it); exact at
    quiescence.  For tests and reports. *)
