(* Bounded exponential backoff for the busy-wait loops of the real
   backend, with per-domain state in domain-local storage.

   The BSS pathology this repairs: on an oversubscribed host (more
   spinners than cores — the extreme being every protocol run on a
   single-CPU box), [Domain.cpu_relax] never yields the OS thread, so a
   spinning domain holds its core for a full scheduler quantum
   (milliseconds) while the peer it is waiting for cannot run.  The
   repair is the paper's §2.1 busy-wait-vs-yield distinction: after a
   bounded spin the waiter must give the CPU away, which for OCaml
   domains means a real (bounded, exponentially growing) nanosleep —
   the portable spelling of sched_yield.

   Both roles get the same small spin budget: on one CPU a spinning
   domain is not preempted when its peer is woken, so every spin
   iteration past the handful that covers a multiprocessor's
   imminent-value window adds directly to the round-trip.  What is
   role-specific is the park length (see below): the server parks
   short because a request can land at any moment, while a client
   parks long enough to cover a whole server turnaround in a single
   park — each early wake preempts the very domain it is waiting for.
   The long client parks are also what stops oversubscribed BSS
   clients from starving each other: every client spends almost all
   of its waiting time parked in the kernel, not burning quanta.

   An episode is the run of failed waits since this domain last made
   progress (a successful enqueue or dequeue); progress resets the
   spin count and the sleep duration.

   All state and arithmetic are integer nanoseconds, and the park is a
   direct nanosleep stub taking a tagged int: the sleep path allocates
   nothing (a [Unix.sleepf] park would box the float duration and every
   [Float.min/max] bound on it), so backoff never perturbs the zero-
   allocation message plane it serves. *)

type t = {
  mutable spins : int; (* failed waits this episode *)
  mutable sleep_ns : int; (* next sleep duration, grows exponentially *)
  mutable server_side : bool;
      (* the wait in progress is the request channel's consumer *)
}

(* Budgets in cpu_relax iterations (~2-25 ns each).  On one CPU a
   spinning domain cannot be preempted by a woken peer until the next
   scheduler tick, so any spin longer than the peer's work adds
   directly to the round-trip; both sides therefore escalate to a real
   park quickly.  The small budget still covers the few-µs window where
   the awaited value is genuinely imminent on a multiprocessor. *)
let server_spin_budget = 256
let client_spin_budget = 256

(* Park lengths are role-specific, tuned to how long the awaited event
   actually takes (each domain also drops its Linux timer slack to
   1 ns — see [key] — so a park wakes at hrtimer precision, ~30 µs
   floor here, instead of the 50 µs default-slack tick):

   - the request-side consumer (the server) parks minimally: a request
     can land at any moment and its wake latency is the first half of
     every round-trip;
   - a producer / reply-side consumer parks long enough to cover one
     whole server turnaround (server wake + dequeue + reply) in a
     single park — waking early is worse than oversleeping, because
     each early wake preempts the very domain it is waiting for.

   Both still grow exponentially to their cap, which stays low: a park
   costs floor + requested, so a large cap buys no extra CPU relief but
   adds its full value to the peer's worst-case wake latency. *)
let server_min_sleep_ns = 1_000
let server_max_sleep_ns = 10_000
let client_min_sleep_ns = 20_000
let client_max_sleep_ns = 50_000

external set_timerslack_ns : int -> unit = "ulipc_set_timerslack_ns"

external nanosleep_ns : int -> unit = "ulipc_nanosleep_ns"
(* Not [@@noalloc]: the stub releases the runtime lock around the
   nanosleep (a sleeper must not stall other domains' GC), which the
   noalloc calling convention does not allow.  The call itself still
   allocates nothing — int argument, unit result. *)

let key =
  Domain.DLS.new_key (fun () ->
      (* Timer slack is per-thread; ask for 1 ns the first time this
         domain backs off, so its parks wake at hrtimer precision
         (~30 µs here) instead of the 50 µs default-slack floor.
         No-op outside Linux. *)
      set_timerslack_ns 1;
      { spins = 0; sleep_ns = 0; server_side = false })

let get () = Domain.DLS.get key

let note_role t ~server_side = t.server_side <- server_side

(* One backoff step: cpu_relax within the episode's budget, then a
   bounded exponential sleep.  Returns [true] when the step slept. *)
let wait t =
  t.spins <- t.spins + 1;
  let budget =
    if t.server_side then server_spin_budget else client_spin_budget
  in
  if t.spins <= budget then begin
    Domain.cpu_relax ();
    false
  end
  else begin
    let lo, hi =
      if t.server_side then (server_min_sleep_ns, server_max_sleep_ns)
      else (client_min_sleep_ns, client_max_sleep_ns)
    in
    (* [sleep_ns = 0] means "fresh episode": start at the role's
       minimum; the clamp also handles a role change mid-episode. *)
    let d = min (max t.sleep_ns lo) hi in
    nanosleep_ns d;
    t.sleep_ns <- min (d * 2) hi;
    true
  end

let progress t =
  if t.spins > 0 then begin
    t.spins <- 0;
    t.sleep_ns <- 0
  end
