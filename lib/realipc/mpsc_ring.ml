(* Bounded multi-producer/single-consumer ring: Vyukov's bounded queue
   specialised to one consumer.  Producers claim a slot by CAS-ing the
   tail ticket; each slot carries a sequence number that says which lap
   of the ring it is ready for, so a claimed-but-unfilled slot is
   distinguishable from a filled one without any lock:

     seq = index            the slot is free for the producer holding
                            ticket [index];
     seq = index + 1        the slot holds the message for ticket
                            [index], ready for the consumer;
     seq = index + ring     the consumer has emptied it; free for the
                            producer holding ticket [index + ring].

   The consumer owns [head] outright (single consumer), so dequeue does
   no CAS at all: check the head slot's sequence, take the value, bump
   the sequence a full lap, bump head.

   Flow control is exact against the logical [cap] (which may be smaller
   than the power-of-two slot count): a producer first checks
   [tail - head >= cap] and reports full without claiming a ticket.
   Under concurrency [enqueue] may transiently report full while a
   consumer is mid-dequeue — callers retry (flow_enqueue/spin_enqueue),
   exactly as they already do for a genuinely full queue.

   A producer that is descheduled between winning the CAS and publishing
   its sequence leaves a "hole": the consumer cannot pass it, so later
   messages wait behind it.  The sleep/wake-up protocols tolerate this —
   every producer issues its wake-up only after its own enqueue completes,
   so the hole's owner is the one that wakes the consumer it stalled. *)

type 'a slot = { mutable value : 'a option; seq : int Atomic.t }

type 'a t = {
  slots : 'a slot array;
  mask : int;
  ring : int;
  cap : int;
  tail : int Atomic.t; (* producers' ticket counter (CAS) *)
  head : int Atomic.t; (* next read index; written by the consumer only *)
}

let rec ceil_pow2 n acc = if acc >= n then acc else ceil_pow2 n (acc * 2)

let create ~capacity () =
  if capacity <= 0 then
    invalid_arg "Mpsc_ring.create: capacity must be positive";
  let ring = ceil_pow2 capacity 1 in
  {
    slots = Array.init ring (fun i -> { value = None; seq = Atomic.make i });
    mask = ring - 1;
    ring;
    cap = capacity;
    tail = Padding.copy_padded (Atomic.make 0);
    head = Padding.copy_padded (Atomic.make 0);
  }

let capacity q = q.cap

let rec enqueue q v =
  let tail = Atomic.get q.tail in
  if tail - Atomic.get q.head >= q.cap then false
  else begin
    let slot = q.slots.(tail land q.mask) in
    let seq = Atomic.get slot.seq in
    if seq = tail then
      if Atomic.compare_and_set q.tail tail (tail + 1) then begin
        (* Ticket won: the slot is ours alone.  The plain value store is
           published by the sequence bump. *)
        slot.value <- Some v;
        Atomic.set slot.seq (tail + 1);
        true
      end
      else enqueue q v (* lost the ticket race; retry *)
    else if seq - tail < 0 then
      (* Still occupied from the previous lap: full at ring granularity
         (unreachable after the exact check above, kept as the Vyukov
         fallback). *)
      false
    else enqueue q v (* another producer advanced tail; reload *)
  end

(* Single consumer: no competition for [head].  The sequence is bumped a
   full lap *before* head so that a producer passing the exact capacity
   check always finds the slot recycled (see the ordering argument in
   enqueue's full check). *)
let dequeue q =
  let head = Atomic.get q.head in
  let slot = q.slots.(head land q.mask) in
  if Atomic.get slot.seq = head + 1 then begin
    let v = slot.value in
    slot.value <- None;
    Atomic.set slot.seq (head + q.ring);
    Atomic.set q.head (head + 1);
    v
  end
  else None

(* Batch enqueue: claim a span of [k] tickets with ONE tail CAS, then
   fill and publish the slots in ascending index order so the consumer
   can drain the batch progressively.  The claim is safe for the same
   reason the single-op claim is: [k <= cap - (tail - head)] and
   [cap <= ring] together guarantee every claimed slot's previous lap
   was already consumed (its sequence recycled before [head] passed it),
   so no per-slot sequence check is needed before the CAS.  A producer
   descheduled mid-fill leaves a [k]-slot hole, tolerated exactly as the
   single-op hole is: the batch's wake-up is only issued after the whole
   fill completes. *)
let rec enqueue_batch q vs =
  match vs with
  | [] -> 0
  | vs ->
    let tail = Atomic.get q.tail in
    let head = Atomic.get q.head in
    let free = q.cap - (tail - head) in
    let k = min (List.length vs) free in
    if k <= 0 then 0
    else if Atomic.compare_and_set q.tail tail (tail + k) then begin
      let rec fill i = function
        | v :: rest when i < k ->
          let idx = tail + i in
          let slot = q.slots.(idx land q.mask) in
          slot.value <- Some v;
          Atomic.set slot.seq (idx + 1);
          fill (i + 1) rest
        | _ -> ()
      in
      fill 0 vs;
      k
    end
    else enqueue_batch q vs (* lost the ticket race; reload *)

(* Batch dequeue (single consumer): take every ready slot from [head]
   up to [max], recycle each sequence a full lap as it is emptied, and
   publish [head] ONCE at the end — after all the recycles, preserving
   the seq-before-head ordering the producers' capacity check relies
   on. *)
let dequeue_batch q ~max =
  if max < 0 then invalid_arg "Mpsc_ring.dequeue_batch: negative max";
  let head = Atomic.get q.head in
  let rec take i acc =
    if i >= max then (i, acc)
    else begin
      let idx = head + i in
      let slot = q.slots.(idx land q.mask) in
      if Atomic.get slot.seq = idx + 1 then begin
        let v = slot.value in
        slot.value <- None;
        Atomic.set slot.seq (idx + q.ring);
        match v with
        | Some v -> take (i + 1) (v :: acc)
        | None -> assert false (* published slots always hold a value *)
      end
      else (i, acc)
    end
  in
  let k, acc = take 0 [] in
  if k > 0 then Atomic.set q.head (head + k);
  List.rev acc

(* Same snapshot ordering invariant as Spsc_ring, with the roles
   swapped: here the occupancy is [tail - head] and the single consumer
   advances [head], so read [head] BEFORE [tail].  A stale head can only
   under-count consumption and a later tail can only have grown, keeping
   the difference a conservative, never-negative occupancy. *)
let is_empty q =
  let head = Atomic.get q.head in
  Atomic.get q.tail - head <= 0

let length q =
  let head = Atomic.get q.head in
  Atomic.get q.tail - head
