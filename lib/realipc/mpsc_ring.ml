(* Bounded multi-producer/single-consumer ring: Vyukov's bounded queue
   specialised to one consumer, over flat arrays.  Producers claim a
   slot by CAS-ing the tail ticket; each slot carries a sequence number
   that says which lap of the ring it is ready for, so a
   claimed-but-unfilled slot is distinguishable from a filled one
   without any lock:

     seq = index            the slot is free for the producer holding
                            ticket [index];
     seq = index + 1        the slot holds the message for ticket
                            [index], ready for the consumer;
     seq = index + ring     the consumer has emptied it; free for the
                            producer holding ticket [index + ring].

   The consumer owns [head] outright (single consumer), so dequeue does
   no CAS at all: check the head slot's sequence, take the value, bump
   the sequence a full lap, bump head.

   The values live in a flat [int array] (non-negative immediates —
   slab indices on the message plane), published by the per-slot
   sequence bump exactly as the old record field was: the plain value
   store happens before the releasing [Atomic.set] on the slot's
   sequence, and the consumer reads the value only after acquiring that
   sequence.  No ['a option] box, no write barrier, no allocation;
   dequeue returns [-1] when empty.

   Flow control is exact against the logical [cap] (which may be smaller
   than the power-of-two slot count): a producer first checks
   [tail - head >= cap] and reports full without claiming a ticket.
   Under concurrency [enqueue] may transiently report full while a
   consumer is mid-dequeue — callers retry (flow_enqueue/spin_enqueue),
   exactly as they already do for a genuinely full queue.

   A producer that is descheduled between winning the CAS and publishing
   its sequence leaves a "hole": the consumer cannot pass it, so later
   messages wait behind it.  The sleep/wake-up protocols tolerate this —
   every producer issues its wake-up only after its own enqueue completes,
   so the hole's owner is the one that wakes the consumer it stalled. *)

type t = {
  values : int array;
  seqs : int Atomic.t array;
  mask : int;
  ring : int;
  cap : int;
  tail : int Atomic.t; (* producers' ticket counter (CAS) *)
  head : int Atomic.t; (* next read index; written by the consumer only *)
}

let nil = -1

(* Plain store/load into an atomic's cell — the x86-TSO publication
   spelling discussed at length in spsc_ring.ml: the producers' ticket
   CAS stays a real CAS (that is the synchronisation), but the stores
   that *follow* a won ticket (value, then sequence) and the single
   consumer's recycle/head stores are ordered by TSO alone, so
   [Atomic.set]'s full fence on each is pure overhead.  Same-unit so
   they inline to the bare mov.  On a weakly-ordered target revert to
   [Atomic.set]/[Atomic.get]. *)
let fenceless_set (r : int Atomic.t) (v : int) = (Obj.magic r : int ref) := v
let fenceless_get (r : int Atomic.t) : int = !(Obj.magic r : int ref)

let create ~capacity () =
  let ring, mask, cap =
    Ring_layout.geometry ~who:"Mpsc_ring.create" ~capacity
  in
  {
    values = Array.make ring 0;
    seqs = Array.init ring Atomic.make;
    mask;
    ring;
    cap;
    tail = Padding.copy_padded (Atomic.make 0);
    head = Padding.copy_padded (Atomic.make 0);
  }

let capacity q = q.cap

let rec raw_enqueue q v =
  let tail = Atomic.get q.tail in
  if tail - fenceless_get q.head >= q.cap then false
  else begin
    let i = tail land q.mask in
    let seq = Atomic.get (Array.unsafe_get q.seqs i) in
    if seq = tail then
      if Atomic.compare_and_set q.tail tail (tail + 1) then begin
        (* Ticket won: the slot is ours alone.  The plain value store is
           published by the sequence bump. *)
        Array.unsafe_set q.values i v;
        fenceless_set (Array.unsafe_get q.seqs i) (tail + 1);
        true
      end
      else raw_enqueue q v (* lost the ticket race; retry *)
    else if seq - tail < 0 then
      (* Still occupied from the previous lap: full at ring granularity
         (unreachable after the exact check above, kept as the Vyukov
         fallback). *)
      false
    else raw_enqueue q v (* another producer advanced tail; reload *)
  end

let enqueue q v =
  if v < 0 then invalid_arg "Mpsc_ring.enqueue: negative value";
  raw_enqueue q v

(* Single consumer: no competition for [head].  The sequence is bumped a
   full lap *before* head so that a producer passing the exact capacity
   check always finds the slot recycled (see the ordering argument in
   enqueue's full check). *)
let dequeue q =
  let head = fenceless_get q.head in
  let i = head land q.mask in
  if Atomic.get (Array.unsafe_get q.seqs i) = head + 1 then begin
    let v = Array.unsafe_get q.values i in
    fenceless_set (Array.unsafe_get q.seqs i) (head + q.ring);
    fenceless_set q.head (head + 1);
    v
  end
  else nil

(* Batch enqueue: claim a span of [k] tickets with ONE tail CAS, then
   fill and publish the slots in ascending index order so the consumer
   can drain the batch progressively.  The span length is a parameter
   (the list API this replaces paid a List.length traversal to learn it
   before the claim CAS, then traversed again to fill).  The claim is
   safe for the same reason the single-op claim is:
   [k <= cap - (tail - head)] and [cap <= ring] together guarantee every
   claimed slot's previous lap was already consumed (its sequence
   recycled before [head] passed it), so no per-slot sequence check is
   needed before the CAS.  A producer descheduled mid-fill leaves a
   [k]-slot hole, tolerated exactly as the single-op hole is: the
   batch's wake-up is only issued after the whole fill completes. *)
(* Top-level recursion, not a local [let rec]: a local claim loop would
   capture the queue and the span and be allocated on every batch (no
   flambda to lift it). *)
let rec claim_batch q vs ~pos ~len =
  if len = 0 then 0
  else begin
    let tail = Atomic.get q.tail in
    let head = fenceless_get q.head in
    let free = q.cap - (tail - head) in
    let k = min len free in
    if k <= 0 then 0
    else if Atomic.compare_and_set q.tail tail (tail + k) then begin
      for i = 0 to k - 1 do
        let idx = tail + i in
        let j = idx land q.mask in
        Array.unsafe_set q.values j (Array.unsafe_get vs (pos + i));
        fenceless_set (Array.unsafe_get q.seqs j) (idx + 1)
      done;
      k
    end
    else claim_batch q vs ~pos ~len (* lost the ticket race; reload *)
  end

let enqueue_batch q vs ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length vs then
    invalid_arg "Mpsc_ring.enqueue_batch: bad span";
  for i = pos to pos + len - 1 do
    if vs.(i) < 0 then invalid_arg "Mpsc_ring.enqueue_batch: negative value"
  done;
  claim_batch q vs ~pos ~len

(* Batch dequeue (single consumer): take every ready slot from [head]
   up to [max] into the caller's buffer, recycle each sequence a full
   lap as it is emptied, and publish [head] ONCE at the end — after all
   the recycles, preserving the seq-before-head ordering the producers'
   capacity check relies on. *)
let rec take_batch q buf ~pos ~max ~head i =
  if i >= max then i
  else begin
    let idx = head + i in
    let j = idx land q.mask in
    if Atomic.get (Array.unsafe_get q.seqs j) = idx + 1 then begin
      Array.unsafe_set buf (pos + i) (Array.unsafe_get q.values j);
      fenceless_set (Array.unsafe_get q.seqs j) (idx + q.ring);
      take_batch q buf ~pos ~max ~head (i + 1)
    end
    else i
  end

let dequeue_batch q buf ~pos ~max =
  if max < 0 then invalid_arg "Mpsc_ring.dequeue_batch: negative max";
  if pos < 0 || pos + max > Array.length buf then
    invalid_arg "Mpsc_ring.dequeue_batch: bad span";
  let head = fenceless_get q.head in
  let k = take_batch q buf ~pos ~max ~head 0 in
  if k > 0 then fenceless_set q.head (head + k);
  k

(* Same snapshot ordering invariant as Spsc_ring, with the roles
   swapped: here the occupancy is [tail - head] and the single consumer
   advances [head], so read [head] BEFORE [tail].  A stale head can only
   under-count consumption and a later tail can only have grown, keeping
   the difference a conservative, never-negative occupancy. *)
let is_empty q =
  let head = Atomic.get q.head in
  Atomic.get q.tail - head <= 0

let length q =
  let head = Atomic.get q.head in
  Atomic.get q.tail - head
