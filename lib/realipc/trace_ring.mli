(** Bounded per-domain protocol event traces for the real backend.

    A sink hands every recording domain its own fixed-size ring (via
    domain-local storage, registered on first use), so the hot path is a
    plain array store with no synchronisation — when the ring is full the
    oldest events are overwritten, keeping the last [capacity] events per
    domain and counting the rest as dropped.  Drain with {!events} after
    the traffic has quiesced (all recording domains joined).

    This is instrumentation on the substrate side of the
    [Ulipc.Substrate.S] seam, exactly like the counters sink: the
    protocol core never sees it. *)

type kind =
  | Enqueue  (** a message was accepted by a channel's queue *)
  | Dequeue  (** a message was taken from a channel's queue *)
  | Block  (** a consumer entered the semaphore P of step C.4 *)
  | Wake  (** a producer issued the semaphore V of step P.3 *)
  | Handoff  (** a §6 handoff/yield scheduling hint was issued *)

val kind_name : kind -> string

type event = {
  t_us : float;  (** wall-clock timestamp, µs since the epoch *)
  domain : int;  (** [Domain.self] of the recording domain *)
  chan : int;  (** -1 = shared request channel, n = reply channel n *)
  kind : kind;
}

type t

val create : ?capacity:int -> unit -> t
(** A fresh sink; each recording domain gets its own ring of [capacity]
    events (default 4096).
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val record : t -> kind -> chan:int -> unit
(** Append one event to the calling domain's ring (lazily created). *)

val events : t -> event list
(** All retained events, merged across domains and sorted by timestamp.
    Only meaningful once every recording domain has been joined. *)

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring overwrite, summed over domains. *)

val pp_event : Format.formatter -> event -> unit
