(** Bounded per-domain protocol event traces for the real backend.

    A sink hands every recording domain its own fixed-size ring (via
    domain-local storage, registered on first use), so the hot path is
    three plain int-array stores with no synchronisation — and {e no
    heap allocation}: the rings are flat parallel int arrays (timestamp
    in nanoseconds, kind tag, channel), so attaching a sink does not put
    minor-heap traffic on the zero-allocation message plane it observes.
    When the ring is full the oldest events are overwritten, keeping the
    last [capacity] events per domain and counting the rest as dropped.
    Drain with {!events} after the traffic has quiesced (all recording
    domains joined); boxed {!Ulipc_observe.Event.t} records are built
    only then.

    Events use the unified {!Ulipc_observe.Event} schema: the actor is
    [Domain.self], the timestamp is CLOCK_MONOTONIC
    ({!Ulipc_observe.Clock} — immune to NTP steps, unlike the wall
    clock; recorded in integer nanoseconds, drained as the schema's
    microseconds), and each domain stamps a private sequence number so
    the cross-domain merge is deterministic.

    This is instrumentation on the substrate side of the
    [Ulipc.Substrate.S] seam, exactly like the counters sink: the
    protocol core never sees it. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh sink; each recording domain gets its own ring of [capacity]
    events (default 4096).
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val record : t -> Ulipc_observe.Event.kind -> chan:int -> unit
(** Append one event stamped [Clock.now_ns ()] to the calling domain's
    ring (lazily created).  Allocation-free after the ring exists. *)

val record_at : t -> Ulipc_observe.Event.kind -> t_ns:int -> chan:int -> unit
(** Like {!record} with a caller-supplied timestamp — for pre-operation
    stamps taken before the recorded effect was attempted, so the merged
    stream never orders an effect before its cause. *)

val events : t -> Ulipc_observe.Event.t list
(** All retained events, merged across domains and sorted by
    [(t_us, actor, seq)] — equal timestamps tie-break on (actor,
    sequence), so the merge is deterministic.  Only meaningful once
    every recording domain has been joined. *)

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring overwrite, summed over domains. *)
