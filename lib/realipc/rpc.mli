(** The paper's Send/Receive/Reply protocols on real OCaml 5 domains.

    Domains within one process stand in for processes sharing a memory
    segment: the queue structure, the awake-flag discipline and the race
    repairs are identical to the simulated protocols; only the protection
    boundary differs (the paper explicitly defers security).

    A session has one request queue into the server and one reply channel
    per client, exactly like {!Ulipc.Session}.  Requests and replies are
    arbitrary OCaml values. *)

type waiting =
  | Spin  (** BSS: busy-wait with [Domain.cpu_relax], never block *)
  | Block  (** BSW: awake flag + counting semaphore, the Figure 5 sequence *)
  | Limited_spin of int
      (** BSLS: poll up to MAX_SPIN times, then run the Figure 5 sequence *)

type ('req, 'rep) t

val create : ?capacity:int -> nclients:int -> waiting -> ('req, 'rep) t
(** [capacity] (default 64) bounds every queue.
    @raise Invalid_argument if [nclients <= 0]. *)

val nclients : ('req, 'rep) t -> int

val send : ('req, 'rep) t -> client:int -> 'req -> 'rep
(** Synchronous call from client [client] (0-based).  Clients must not
    share a client number concurrently.
    @raise Invalid_argument on a bad client number. *)

val receive : ('req, 'rep) t -> int * 'req
(** Server side: next request as [(client, payload)]. *)

val reply : ('req, 'rep) t -> client:int -> 'rep -> unit

val post : ('req, 'rep) t -> client:int -> 'req -> unit
(** Asynchronous send: enqueue and wake the server, do not wait. *)

val collect : ('req, 'rep) t -> client:int -> 'rep
(** Wait for the next reply to this client (pairs with {!post}). *)

val wake_residue : ('req, 'rep) t -> int
(** Sum of all channel semaphore counts; surplus wake-ups left pending.
    For tests — with the test-and-set discipline this stays bounded by
    the number of channels. *)
