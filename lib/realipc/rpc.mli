(** The paper's Send/Receive/Reply protocols on real OCaml 5 domains.

    Domains within one process stand in for processes sharing a memory
    segment: the queue structure, the awake-flag discipline and the race
    repairs are {e literally} the simulated protocols — this module is
    [Ulipc.Protocol_core.Make] applied to the real-domains substrate
    ({!Real_substrate}), with every entry point composed from the core's
    shared primitives, so the producer steps P.1–P.3 and the consumer
    sequence C.1–C.5 exist in the codebase exactly once.

    A session has [nservers] request shards (one per server domain,
    default 1 — then exactly the classic one-queue session) and one
    reply channel per client, the client→shard map being static
    round-robin affinity ({!Shard_map}).  Load imbalance between shards
    is smoothed by {e handoff-based stealing}: an idle server CAS-posts
    a steal token on the deepest loaded sibling, and that sibling — the
    only legal consumer of its MPSC ring — hands half its backlog over
    by draining and re-enqueueing a span onto the idle server's ring.
    Messages are slab slot indices, so a steal moves ints between rings,
    never payloads; no message is ever lost, duplicated, or consumed by
    two servers (the token is consumed exactly once, and dequeued
    overflow waits in the victim's private stash).

    Requests and replies are arbitrary OCaml values, but they travel
    zero-copy: the queues carry only {!Slab} slot indices, and a
    {!type-codec} pair marshals each payload into a slot's flat fields.
    The sender allocates and fills a slot, the queue transfer hands its
    ownership over, the receiver reads and releases it.  With an
    immediate-payload codec ({!int_codec}) a steady-state round-trip on
    the ring transport allocates {e nothing} on the minor heap — at any
    [nservers]. *)

type waiting =
  | Spin  (** BSS: busy-wait with [Domain.cpu_relax], never block *)
  | Block  (** BSW: awake flag + counting semaphore, the Figure 5 sequence *)
  | Block_yield
      (** BSWY: BSW with a scheduling hint before blocking.  Between
          domains the hint degenerates to [Domain.cpu_relax]. *)
  | Limited_spin of int
      (** BSLS: poll up to MAX_SPIN times, then run the Figure 5 sequence *)
  | Handoff
      (** §6 handoff variant: the waiting hint names the likely next
          runner.  Between genuinely parallel domains this too degenerates
          to [Domain.cpu_relax]. *)
  | Adaptive of int
      (** Adaptive BSLS: per-channel MAX_SPIN, adjusted from the observed
          spin-success rate and capped by the argument.  A spin episode
          that ends with a message visible grows the budget
          ([cur <- min cap (2*cur + 8)]); an exhausted spin halves it.  At
          [cur = 0] the code path is BSW's consumer sequence, so idle
          channels pay nothing for the option to spin. *)

(** {1 Codecs}

    How a payload crosses the slot boundary: [write] marshals a value
    into slot [i]'s flat fields, [read] recovers it.  Each direction of
    a session uses exactly one codec, fixed at {!create} time — the
    [('req, 'rep)] type parameters are what make the [Obj]-based default
    safe, exactly as they did for the former dynamic [Univ] check. *)

type 'a codec = {
  write : Slab.t -> int -> 'a -> unit;
  read : Slab.t -> int -> 'a;
}

val boxed_codec : unit -> 'a codec
(** The default: the value rides the slot's boxed escape hatch
    ([Slab.set_box]/[get_box]).  Works for every type; payloads that are
    themselves heap values keep their usual allocation cost, immediates
    travel free. *)

val int_codec : int codec
(** The slot's [data] field: fully unboxed, the zero-allocation
    round-trip codec. *)

val float_codec : float codec
(** The slot's unboxed [arg] field.  (Reading through the codec seam
    still boxes the returned float — use it to keep floats out of the
    {e queues}, not to make a float round-trip allocation-free.) *)

type ('req, 'rep) t

val create :
  ?capacity:int ->
  ?transport:Real_substrate.transport ->
  ?trace:Trace_ring.t ->
  ?slots:int ->
  ?req_codec:'req codec ->
  ?rep_codec:'rep codec ->
  ?nservers:int ->
  ?shard_assign:(int -> int) ->
  nclients:int ->
  waiting ->
  ('req, 'rep) t
(** [capacity] (default 64) bounds every queue.  [transport] (default
    {!Real_substrate.Ring}) selects the queue implementation on the data
    path: lock-free SPSC/MPSC rings, or the paper's two-lock queue —
    see {!Real_substrate.transport}.  [trace] attaches a {!Trace_ring}
    sink recording timestamped enqueue/dequeue/block/wake/handoff events
    into per-domain bounded rings, drained after the run with
    {!Trace_ring.events}.  [slots] sizes the payload slab (default:
    derived from [(nclients, nservers, capacity)] so it can never
    exhaust — see {!Real_substrate.create}; an explicit undersized
    [slots] fails a sender with a clear [Failure] after bounded
    back-off rather than hanging).  [req_codec] / [rep_codec] (default
    {!boxed_codec}) marshal the two directions' payloads.

    [nservers] (default 1) shards the request plane: server domain [k]
    must pass [~server:k] to {!receive}/{!serve}/{!receive_batch}, and
    clients are mapped to shards round-robin by client id unless
    [shard_assign] overrides the map (tests pin all clients to one
    shard to force stealing).
    @raise Invalid_argument if [nclients <= 0], [capacity <= 0],
    [nservers <= 0], if a [Limited_spin] bound is negative, or if
    [shard_assign] maps a client outside [0 .. nservers-1]. *)

val nclients : ('req, 'rep) t -> int

val nservers : ('req, 'rep) t -> int
(** Number of request shards / server domains the session was built
    for. *)

val shard_of_client : ('req, 'rep) t -> int -> int
(** The home shard of a client's requests (one array load). *)

val transport : ('req, 'rep) t -> Real_substrate.transport

val trace : ('req, 'rep) t -> Trace_ring.t option
(** The event-trace sink given at {!create} time, if any. *)

val slab : ('req, 'rep) t -> Slab.t
(** The session's payload slab.  For tests: at quiescence every slot has
    been released, so [Slab.in_use_count] is 0; [Slab.high_water] tells
    how close the run came to the configured [slots]. *)

val send : ('req, 'rep) t -> client:int -> 'req -> 'rep
(** Synchronous call from client [client] (0-based), via its home
    shard.  Clients must not share a client number concurrently.
    @raise Invalid_argument on a bad client number. *)

val call : ('req, 'rep) t -> client:int -> 'req -> 'rep
(** Alias of {!send} — one slot out, one slot back. *)

val receive : ?server:int -> ('req, 'rep) t -> int * 'req
(** Server side: next request on shard [server] (default 0) as
    [(client, payload)].  Only shard [server]'s own server domain may
    call this — it is the MPSC ring's single consumer.  Also services
    pending steal tokens and, when its own shard is empty, posts one on
    the deepest loaded sibling.  (The pair is the one allocation this
    entails; {!serve} avoids it.)
    @raise Invalid_argument on a bad server number. *)

val reply : ('req, 'rep) t -> client:int -> 'rep -> unit

val serve : ?server:int -> ('req, 'rep) t -> (client:int -> 'req -> 'rep) -> unit
(** One allocation-free server turn on shard [server] (default 0):
    receive a request, apply [f], and send the reply {e in the request's
    slot} — the server owns the slot between dequeue and reply-enqueue,
    so it is refilled in place and no release/alloc pair (and no
    [receive] tuple) is paid. *)

val post : ?shard:int -> ('req, 'rep) t -> client:int -> 'req -> unit
(** Asynchronous send: enqueue on the client's home shard (or [shard]
    if given — shutdown fan-out uses this to target every server) and
    wake that server, do not wait.
    @raise Invalid_argument on a bad client or shard number. *)

val collect : ('req, 'rep) t -> client:int -> 'rep
(** Wait for the next reply to this client (pairs with {!post}). *)

(** {1 Batched & pipelined fast path}

    Built on the substrate's span-claim batch operations
    ({!Real_substrate.enqueue_many} / {!Real_substrate.dequeue_many})
    and, on the reply rings of single-server sessions, Torquati's
    multipush ({!Real_substrate.enqueue_local}): [k] slot indices move
    per atomic claim, spans live in preallocated scratch arrays, and the
    wake-up side coalesces to at most one signal per batch
    ({!Rsem.v_n}). *)

val post_batch : ('req, 'rep) t -> client:int -> 'req list -> unit
(** Enqueue the whole list on the client's home shard (blocking on flow
    control as {!post} does) with one span claim and at most one
    consumer wake-up per claim — normally exactly one for the whole
    batch.
    @raise Invalid_argument on a bad client number. *)

val collect_batch : ('req, 'rep) t -> client:int -> n:int -> 'rep list
(** Exactly [n] replies for this client, in order, draining every
    already-available reply with one span claim and waiting per the
    session's mode only when the channel runs dry.
    @raise Invalid_argument if [n < 0] or on a bad client number. *)

val receive_batch : ?server:int -> ('req, 'rep) t -> max:int -> (int * 'req) list
(** Server side: wait for the next request on shard [server] (default 0)
    per the session's waiting mode, then drain up to [max - 1] further
    already-queued requests (stolen-handoff leftovers first, then the
    shard's ring) with one span claim.  Always returns at least one
    request.
    @raise Invalid_argument if [max <= 0] or on a bad server number. *)

val reply_batch : ('req, 'rep) t -> (int * 'rep) list -> unit
(** Send every [(client, reply)] pair; consecutive same-client runs ride
    the reply ring's producer-local multipush buffer — one index publish
    and at most one wake-up per run.  Per-client FIFO order follows list
    order.
    @raise Invalid_argument on a bad client number (earlier runs in the
    list will already have been sent). *)

val call_pipelined :
  ('req, 'rep) t -> client:int -> depth:int -> 'req list -> 'rep list
(** Synchronous calls with up to [depth] requests outstanding: a sliding
    window over span-claimed bursts and batch collection.  Returns the
    replies in request order ([depth = 1] degenerates to sequential
    {!send}s).  Replies must preserve request order for this to pair
    correctly — true of single-server echo sessions, whose reply channel
    is FIFO per client; on a pooled session ([nservers > 1]) stealing
    may reorder a client's in-flight requests, so pair replies by
    content, not position, there.
    @raise Invalid_argument if [depth <= 0] or on a bad client number. *)

val request_depth : ('req, 'rep) t -> int -> int
(** Conservative occupancy snapshot of shard [k]'s request queue (see
    {!Ulipc_real.Mpsc_ring.length}): never negative, may over-report
    against a racing consumer.  What the steal orchestration already
    reads to pick a victim, exposed here so the telemetry sampler can
    gauge per-shard queue depth live.
    @raise Invalid_argument on a bad shard number. *)

val counters : ('req, 'rep) t -> Ulipc.Counters.t
(** The protocol-event counters the shared core maintains — the same
    fields the simulator reports (sends, receives, wake-ups, spin
    fall-throughs, race fixes, ...), plus the steal-protocol fields
    ([steal_posts]/[steal_handoffs]/[steal_msgs]).  Incremented without
    atomicity from several domains: totals are exact only for fields
    written by a single domain (e.g. per-victim handoff counts),
    otherwise lower bounds. *)

val wake_residue : ('req, 'rep) t -> int
(** Sum of all channel semaphore counts; surplus wake-ups left pending.
    For tests — the C.4 [Rsem.try_p] drain keeps this at 0 once all
    traffic has quiesced. *)

val harvest_sem_counters : ('req, 'rep) t -> unit
(** Fold every channel semaphore's cumulative waiting-array parks and
    directed grants into {!counters} ([sem_parks]/[sem_grants]).  Call
    at quiescence (all domains joined), like the slab high-water
    harvest. *)
