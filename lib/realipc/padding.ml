(* OCaml 5.1 has no [Atomic.make_contended], so hot atomics are isolated
   the way multicore libraries of that era do it: copy the one-word box
   into an oversized block whose trailing fields are immediate-zero
   padding.  Atomic and [ref] primitives address field 0 only, so the
   copy behaves identically; the padding merely guarantees that no other
   frequently-written word can share its cache line(s), because the block
   spans at least one full line by itself. *)

(* 15 extra words + the value word + the header = 17 words = 136 bytes on
   64-bit: at least one whole 64-byte line regardless of alignment. *)
let words = 15

let copy_padded (v : 'a) : 'a =
  let src = Obj.repr v in
  let n = Obj.size src in
  let dst = Obj.new_block (Obj.tag src) (n + words) in
  for i = 0 to n - 1 do
    Obj.set_field dst i (Obj.field src i)
  done;
  for i = n to n + words - 1 do
    Obj.set_field dst i (Obj.repr 0)
  done;
  Obj.obj dst

