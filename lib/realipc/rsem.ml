(* Counting semaphore with an atomic fast path (a "benaphore", the shape
   a futex-based semaphore takes without raw futex access): [count] holds
   the semaphore value when non-negative and minus the number of waiters
   when negative, so the uncontended V and P are one atomic
   read-modify-write each and never touch a lock — the property the
   paper's argument needs, since every block/wake otherwise re-imports
   the kernel-crossing cost the user-level queues removed.

   Slow path: a WAITING ARRAY (Dice & Kogan, "Semaphores Augmented with
   a Waiting Array").  A P that drives [count] negative claims a ticket
   from [p_ticket] (one fetch-and-add) and parks on the ticket's slot —
   a cache-padded Mutex/Condition/counter triple at index
   [ticket mod slots].  A V that observes a negative count claims the
   matching grant ticket from [v_ticket] and delivers the credit
   straight into that slot: per-slot [granted] is the banked-credit
   counter, and the waiter holding ticket [k] sleeps until
   [granted >= k/slots + 1] — the slot has seen one credit for every
   earlier generation that parked there, plus its own.  Banking the
   credit in the slot (rather than signalling into the void) closes the
   race where the V fires between the waiter's fetch-and-add and its
   Condition.wait: the waiter re-checks [granted] under the slot mutex
   before sleeping and finds the credit already published.

   What the array buys over the previous single Mutex/Condition bank:

   - The V path takes no global lock.  Each credit touches exactly one
     slot's mutex, so concurrent V's aimed at different waiters do not
     serialise against each other — and never against the whole parked
     population.
   - Each wake is DIRECTED at one waiter.  A signal on a slot whose one
     sleeper holds the matching ticket moves exactly that waiter; no
     herd wakes to re-check a shared predicate.  Only when more waiters
     than slots park concurrently does a slot hold sleepers of several
     generations, and only then does the grant broadcast (a signal
     could wake the wrong generation, which would re-sleep while the
     right one slept on) — the counted, bounded degradation mode.
   - FIFO tickets make the semaphore starvation-free: grant [g] can
     only release the waiter holding park ticket [g], so waiters are
     served in the exact order they committed to park (the
     claim/release shape of Chalmers & Pedersen's fair protocol).

   [v_n] still publishes n credits with ONE atomic add on [count] and
   one on [v_ticket]; the n slot deliveries each take only their own
   slot's lock — the wake-coalescing entry point for batched replies.

   A bounded spin in [p] before parking covers the multiprocessor case
   where the matching V is microseconds away; on a uniprocessor
   ([Domain.recommended_domain_count () = 1]) spinning can only delay
   the poster, so the default spin bound is 0 there — the paper's §2.1
   busy-wait-vs-yield distinction applied to the semaphore itself. *)

type slot = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable granted : int; (* credits delivered to this slot, monotone *)
  mutable sleeping : int; (* waiters inside Condition.wait right now *)
  mutable waits : int; (* cumulative parks on this slot (observability) *)
  mutable broadcasts : int;
      (* grants that had to broadcast because sleepers of more than one
         generation shared the slot (population > array size) *)
}

type t = {
  count : int Atomic.t;
      (* >= 0: semaphore value; < 0: number of waiters parked or parking *)
  spin : int; (* fast-path retries before parking *)
  p_ticket : int Atomic.t; (* FIFO park-ticket dispenser *)
  v_ticket : int Atomic.t; (* FIFO grant-ticket dispenser *)
  parked : int Atomic.t;
      (* waiters currently committed to the array: incremented after the
         park ticket is claimed, decremented when the waiter leaves its
         slot.  An atomic, not a lock-guarded field, so tests and
         observers never act on a torn read. *)
  mask : int; (* slots - 1; the array length is a power of two *)
  shift : int; (* log2 slots: ticket -> generation *)
  slots : slot array;
}

let default_spin =
  (* Resolved once: recommended_domain_count consults the machine. *)
  let cores = Domain.recommended_domain_count () in
  if cores <= 1 then 0 else 64

let default_slots = 8

let make_slot () =
  Padding.copy_padded
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      granted = 0;
      sleeping = 0;
      waits = 0;
      broadcasts = 0;
    }

let create ?(spin = default_spin) ?(slots = default_slots) count =
  if count < 0 then invalid_arg "Rsem.create: negative initial count";
  if spin < 0 then invalid_arg "Rsem.create: negative spin bound";
  if slots < 1 then invalid_arg "Rsem.create: slots must be positive";
  (* Round the waiter-population hint up to a power of two so the
     ticket->slot map is a mask and ticket->generation a shift. *)
  let size = ref 1 and shift = ref 0 in
  while !size < slots do
    size := !size * 2;
    incr shift
  done;
  {
    count = Padding.copy_padded (Atomic.make count);
    spin;
    p_ticket = Padding.copy_padded (Atomic.make 0);
    v_ticket = Padding.copy_padded (Atomic.make 0);
    parked = Padding.copy_padded (Atomic.make 0);
    mask = !size - 1;
    shift = !shift;
    slots = Array.init !size (fun _ -> make_slot ());
  }

(* Park: claim the next ticket and wait for the matching grant.  The
   waiter is already accounted for in the negative [count], so the V
   that will serve it is committed to granting this ticket's slot; the
   while-loop guard makes both the V-overtakes-P race (credit already
   in [granted]) and a broadcast-woken wrong-generation sleeper
   harmless. *)
let park t =
  let k = Atomic.fetch_and_add t.p_ticket 1 in
  let s = t.slots.(k land t.mask) in
  let need = (k lsr t.shift) + 1 in
  Atomic.incr t.parked;
  Mutex.lock s.mutex;
  s.waits <- s.waits + 1;
  while s.granted < need do
    s.sleeping <- s.sleeping + 1;
    Condition.wait s.cond s.mutex;
    s.sleeping <- s.sleeping - 1
  done;
  Mutex.unlock s.mutex;
  Atomic.decr t.parked

(* Deliver one credit into the slot of grant ticket [k].  Touches only
   that slot's mutex — the V path never takes a semaphore-wide lock.
   One sleeper gets one directed signal; zero sleepers means the parking
   waiter is still on its way and will find [granted] already
   sufficient (no condvar call at all — the V-overtakes-P race); more
   than one sleeper means generations share the slot and only a
   broadcast is sound, since a signal could pick a later generation
   that would re-sleep while the granted one slept on. *)
let grant t k =
  let s = t.slots.(k land t.mask) in
  Mutex.lock s.mutex;
  s.granted <- s.granted + 1;
  if s.sleeping > 1 then begin
    s.broadcasts <- s.broadcasts + 1;
    Condition.broadcast s.cond
  end
  else if s.sleeping = 1 then Condition.signal s.cond;
  Mutex.unlock s.mutex

(* Top-level recursion rather than a local [let rec]: a local loop
   closure would capture [t] and be allocated on every P — these are the
   block/wake primitives of the zero-allocation round-trip. *)
let rec p_loop t spins =
  let c = Atomic.get t.count in
  if c > 0 then begin
    if not (Atomic.compare_and_set t.count c (c - 1)) then p_loop t spins
  end
  else if spins > 0 then begin
    Domain.cpu_relax ();
    p_loop t (spins - 1)
  end
  else if Atomic.fetch_and_add t.count (-1) > 0 then
    (* Credit appeared between the last read and the add: it is ours
       (the add consumed it), no parking needed. *)
    ()
  else park t

let p t = p_loop t t.spin

(* CAS only on a positive count: never registers as a waiter, never
   blocks, and cannot disturb the waiter accounting. *)
let rec try_p t =
  let c = Atomic.get t.count in
  if c <= 0 then false
  else if Atomic.compare_and_set t.count c (c - 1) then true
  else try_p t

(* Wake [wake] parked waiters: claim a contiguous run of grant tickets
   with one fetch-and-add, then deliver each credit into its slot.
   Ticket arithmetic is the whole fairness argument — grant [g] can
   only release park ticket [g], the oldest committed waiter not yet
   served. *)
let wake_parked t wake =
  let base = Atomic.fetch_and_add t.v_ticket wake in
  for i = 0 to wake - 1 do
    grant t (base + i)
  done

let v t =
  let old = Atomic.fetch_and_add t.count 1 in
  if old < 0 then wake_parked t 1

let v_n t n =
  if n < 0 then invalid_arg "Rsem.v_n: negative credit count";
  if n > 0 then begin
    let old = Atomic.fetch_and_add t.count n in
    if old < 0 then wake_parked t (min n (-old))
  end

let value t = max 0 (Atomic.get t.count)
let parked t = Atomic.get t.parked
let waiters t = parked t
let parks t = Atomic.get t.p_ticket
let grants t = Atomic.get t.v_ticket
let array_size t = Array.length t.slots

let slot_waits t =
  Array.map
    (fun s ->
      Mutex.lock s.mutex;
      let w = s.waits in
      Mutex.unlock s.mutex;
      w)
    t.slots

let shared_slot_broadcasts t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.mutex;
      let b = s.broadcasts in
      Mutex.unlock s.mutex;
      acc + b)
    0 t.slots
