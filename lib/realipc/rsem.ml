type t = { mutex : Mutex.t; nonzero : Condition.t; mutable count : int }

let create count =
  if count < 0 then invalid_arg "Rsem.create: negative initial count";
  { mutex = Mutex.create (); nonzero = Condition.create (); count }

let p t =
  Mutex.lock t.mutex;
  while t.count = 0 do
    Condition.wait t.nonzero t.mutex
  done;
  t.count <- t.count - 1;
  Mutex.unlock t.mutex

let try_p t =
  Mutex.lock t.mutex;
  let taken = t.count > 0 in
  if taken then t.count <- t.count - 1;
  Mutex.unlock t.mutex;
  taken

let v t =
  Mutex.lock t.mutex;
  t.count <- t.count + 1;
  Condition.signal t.nonzero;
  Mutex.unlock t.mutex

let value t =
  Mutex.lock t.mutex;
  let c = t.count in
  Mutex.unlock t.mutex;
  c
