(* Counting semaphore with an atomic fast path (a "benaphore", the shape
   a futex-based semaphore takes without raw futex access): [count] holds
   the semaphore value when non-negative and minus the number of waiters
   when negative, so the uncontended V and P are one atomic
   read-modify-write each and never touch the mutex — the property the
   paper's argument needs, since every block/wake otherwise re-imports
   the kernel-crossing cost the user-level queues removed.

   Slow path: a P that drives [count] negative parks on the
   Mutex/Condition pair, but only for a *banked* credit: the V that
   observes a negative count takes the mutex, increments [wakeups] and
   signals.  Banking the credit (rather than signalling into the void)
   closes the race where the V fires between the waiter's fetch-and-add
   and its Condition.wait — the waiter finds [wakeups] already positive
   and never sleeps.  The futex analogue is the kernel's wait-queue
   count; the correctness argument is Interleaving 1 of §3 unchanged.

   [v_n] publishes n credits with ONE atomic add and at most ONE
   signal/broadcast, the wake-coalescing entry point for batched
   replies: n V operations would take the mutex up to n times and issue
   up to n wakes.

   A bounded spin in [p] before parking covers the multiprocessor case
   where the matching V is microseconds away; on a uniprocessor
   ([Domain.recommended_domain_count () = 1]) spinning can only delay
   the poster, so the default spin bound is 0 there — the paper's §2.1
   busy-wait-vs-yield distinction applied to the semaphore itself. *)

type t = {
  count : int Atomic.t;
      (* >= 0: semaphore value; < 0: number of waiters parked or parking *)
  spin : int; (* fast-path retries before parking *)
  mutex : Mutex.t;
  nonzero : Condition.t;
  mutable wakeups : int; (* banked credits for parked waiters *)
  mutable waiters : int;
      (* waiters actually parked on [nonzero] (inside the mutex), as
         opposed to the negative [count], which also counts waiters
         still on their way to the mutex.  This is what lets V direct
         its wake-ups: signal exactly [credits] times when fewer credits
         than sleepers arrive, broadcast only when every sleeper gets
         one, and skip the condvar entirely when nobody is parked yet —
         a parking waiter re-checks [wakeups] under the mutex before
         waiting, so a banked credit is never missed.  First step toward
         Dice & Kogan's waiting-array semaphore: the wake is aimed at
         the population that needs it, never the whole herd. *)
}

let default_spin =
  (* Resolved once: recommended_domain_count consults the machine. *)
  let cores = Domain.recommended_domain_count () in
  if cores <= 1 then 0 else 64

let create ?(spin = default_spin) count =
  if count < 0 then invalid_arg "Rsem.create: negative initial count";
  if spin < 0 then invalid_arg "Rsem.create: negative spin bound";
  {
    count = Padding.copy_padded (Atomic.make count);
    spin;
    mutex = Mutex.create ();
    nonzero = Condition.create ();
    wakeups = 0;
    waiters = 0;
  }

(* Park: wait for a banked credit.  The waiter is already accounted for
   in the negative [count], so the V that will serve it is committed to
   banking a wakeup; we may only consume exactly one. *)
let park t =
  Mutex.lock t.mutex;
  t.waiters <- t.waiters + 1;
  while t.wakeups = 0 do
    Condition.wait t.nonzero t.mutex
  done;
  t.waiters <- t.waiters - 1;
  t.wakeups <- t.wakeups - 1;
  Mutex.unlock t.mutex

(* Top-level recursion rather than a local [let rec]: a local loop
   closure would capture [t] and be allocated on every P — these are the
   block/wake primitives of the zero-allocation round-trip. *)
let rec p_loop t spins =
  let c = Atomic.get t.count in
  if c > 0 then begin
    if not (Atomic.compare_and_set t.count c (c - 1)) then p_loop t spins
  end
  else if spins > 0 then begin
    Domain.cpu_relax ();
    p_loop t (spins - 1)
  end
  else if Atomic.fetch_and_add t.count (-1) > 0 then
    (* Credit appeared between the last read and the add: it is ours
       (the add consumed it), no parking needed. *)
    ()
  else park t

let p t = p_loop t t.spin

(* CAS only on a positive count: never registers as a waiter, never
   blocks, and cannot disturb the waiter accounting. *)
let rec try_p t =
  let c = Atomic.get t.count in
  if c <= 0 then false
  else if Atomic.compare_and_set t.count c (c - 1) then true
  else try_p t

(* Wake [wake] parked waiters: bank the credits under the mutex, then
   wake DIRECTED — exactly one signal per credit while credits are
   scarcer than sleepers (each signal moves one waiter off the condvar;
   waking more would be a thundering herd in which [parked - wake]
   domains contend for the mutex only to re-sleep), one broadcast when
   every sleeper has a credit waiting (then n signals and one broadcast
   wake the same population and the broadcast is one call), and NO
   condvar operation at all when nobody is parked yet — the banked
   credit is found by the parking waiter's own [wakeups] re-check under
   the mutex, so the syscall-shaped call is skipped exactly in the
   V-overtakes-P race where it could wake no one.  Signalling while
   holding the mutex keeps the banked credit and its wake atomic with
   respect to a parking waiter. *)
let wake_parked t wake =
  Mutex.lock t.mutex;
  t.wakeups <- t.wakeups + wake;
  let parked = t.waiters in
  if parked > 0 then
    if wake >= parked then Condition.broadcast t.nonzero
    else
      for _ = 1 to wake do
        Condition.signal t.nonzero
      done;
  Mutex.unlock t.mutex

let v t =
  let old = Atomic.fetch_and_add t.count 1 in
  if old < 0 then wake_parked t 1

let v_n t n =
  if n < 0 then invalid_arg "Rsem.v_n: negative credit count";
  if n > 0 then begin
    let old = Atomic.fetch_and_add t.count n in
    if old < 0 then wake_parked t (min n (-old))
  end

let value t = max 0 (Atomic.get t.count)

(* Unsynchronized read of a mutex-guarded field: a snapshot for reports
   and tests, exact only at quiescence. *)
let waiters t = t.waiters
