(** Bounded lock-free single-producer/single-consumer ring.

    A preallocated array of slots with monotonically increasing head/tail
    indices on separate cache-line-padded atomics ({!Padding}), plus the
    cached-peer-index refinement: each side re-reads the other's index
    only when its private snapshot says the ring looks full (producer) or
    empty (consumer), so steady-state traffic never ping-pongs the index
    lines.  No mutex, no per-message node — the per-operation cost is one
    slot write and one atomic index store.

    The session's reply channels are SPSC {e by construction} (the server
    is the only producer, the owning client the only consumer), which is
    what makes this the right transport for them.  Behaviour is undefined
    if two domains produce, or two consume, concurrently — use
    {!Mpsc_ring} or {!Tl_queue} there.

    Same observable semantics as {!Tl_queue}: FIFO, [enqueue] returns
    [false] exactly when [capacity] messages are in flight, [dequeue]
    returns [None] when empty. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** The slot array is the capacity rounded up to a power of two, but the
    flow-control boundary is checked against [capacity] exactly.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val enqueue : 'a t -> 'a -> bool
(** [false] when the queue is full.  Producer side only. *)

val dequeue : 'a t -> 'a option
(** Consumer side only. *)

val enqueue_batch : 'a t -> 'a list -> int
(** Enqueue a prefix of the list, claiming the whole span with a single
    atomic [head] publish, and return how many values were accepted —
    observationally n single {!enqueue}s (same FIFO order, same exact
    capacity boundary) at one shared-index store per batch instead of
    one per message.  Never blocks; [0] when the ring is full.
    Producer side only. *)

val dequeue_batch : 'a t -> max:int -> 'a list
(** Dequeue up to [max] values (FIFO order, possibly empty), releasing
    the whole span with a single atomic [tail] store.  Consumer side
    only.
    @raise Invalid_argument if [max < 0]. *)

val is_empty : 'a t -> bool
(** Lock-free hint, as used by polling loops: two atomic loads, [tail]
    before [head] so a concurrent dequeue can never make an occupied ring
    look empty. *)

val length : 'a t -> int
(** Racy but conservative snapshot of the element count: may over-report
    occupancy against a racing consumer, never negative. *)
