(** Bounded lock-free single-producer/single-consumer ring over a flat
    int array.

    A preallocated [int array] of slots with monotonically increasing
    head/tail indices on separate cache-line-padded atomics
    ({!Padding}), plus the cached-peer-index refinement: each side
    re-reads the other's index only when its private snapshot says the
    ring looks full (producer) or empty (consumer), so steady-state
    traffic never ping-pongs the index lines.

    The ring carries {e non-negative immediate ints} — slab slot
    indices on the message plane ({!Slab}) — so the per-operation cost
    is one plain unboxed slot store and one atomic index store: no
    mutex, no per-message node, no ['a option] box, no write barrier,
    zero heap allocation.  [-1] is the dequeue-side empty sentinel;
    enqueueing a negative value raises.

    Two further Torquati (TR-10-20) refinements:

    - {e multipush}: {!enqueue_local} accumulates values in a
      producer-private buffer (at most [min 8 capacity]) and {!flush}
      publishes the whole span with one atomic store — batch-grade
      index traffic without a caller-assembled batch;
    - {e temporal slipping}: flushed spans are written backward
      (highest slot first), so the producer is done with the span's
      cache lines before the publish lets the consumer walk them.

    The session's reply channels are SPSC {e by construction} (the
    server is the only producer, the owning client the only consumer),
    which is what makes this the right transport for them.  Behaviour
    is undefined if two domains produce, or two consume, concurrently —
    use {!Mpsc_ring} or {!Tl_queue} there.

    Same observable semantics as {!Tl_queue}: FIFO, [enqueue] returns
    [false] exactly when [capacity] messages are in flight, [dequeue]
    returns {!nil} when empty. *)

type t

val nil : int
(** [-1]: {!dequeue}'s empty sentinel; never a valid element. *)

val create : capacity:int -> unit -> t
(** The slot array is the capacity rounded up to a power of two, but the
    flow-control boundary is checked against [capacity] exactly.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val enqueue : t -> int -> bool
(** [false] when the queue is full.  Producer side only.  Values must be
    non-negative.  Flushes any {!enqueue_local} leftovers first, so FIFO
    order holds across mixed use ([false] then means the flush itself
    found no room and nothing was accepted).
    @raise Invalid_argument on a negative value. *)

val dequeue : t -> int
(** The oldest value, or {!nil} when the ring is empty.  Consumer side
    only.  Allocation-free. *)

(** {1 Multipush} *)

val enqueue_local : t -> int -> bool
(** Append to the producer-private buffer, auto-flushing when it holds
    [min 8 capacity] values.  [true] means the value is accepted
    (buffered or published — buffered values are invisible to the
    consumer until a {!flush} succeeds, so publish before waking);
    [false] means buffer and ring are both full: flush later and retry.
    Producer side only.
    @raise Invalid_argument on a negative value. *)

val flush : t -> bool
(** Publish every buffered value with one atomic index store, writing
    the span backward (temporal slipping).  All or nothing: [false]
    when the ring lacks room for the whole span, which stays buffered.
    [true] when the buffer is (now) empty.  Producer side only. *)

val pending_local : t -> int
(** Buffered-but-unpublished value count.  Producer side only. *)

(** {1 Batch operations} *)

val enqueue_batch : t -> int array -> pos:int -> len:int -> int
(** [enqueue_batch q vs ~pos ~len] enqueues a prefix of
    [vs.(pos .. pos+len-1)], claiming the whole span with a single
    atomic [head] publish, and returns how many values were accepted —
    observationally n single {!enqueue}s (same FIFO order, same exact
    capacity boundary) at one shared-index store per batch.  The span
    length is a parameter, not a list traversal.  Never blocks; [0]
    when the ring is full (or when multipush leftovers could not be
    flushed first).  Producer side only.
    @raise Invalid_argument on a bad span or a negative value. *)

val dequeue_batch : t -> int array -> pos:int -> max:int -> int
(** [dequeue_batch q buf ~pos ~max] dequeues up to [max] values into
    [buf.(pos ..)] (FIFO order), releasing the whole span with a single
    atomic [tail] store, and returns the count.  Consumer side only.
    Allocation-free.
    @raise Invalid_argument on a bad span. *)

val is_empty : t -> bool
(** Lock-free hint, as used by polling loops: two atomic loads, [tail]
    before [head] so a concurrent dequeue can never make an occupied ring
    look empty.  Unflushed multipush values are not counted (they are
    not yet published). *)

val length : t -> int
(** Racy but conservative snapshot of the element count: may over-report
    occupancy against a racing consumer, never negative. *)
