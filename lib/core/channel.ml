type t = {
  id : int;
  queue : Message.t Ulipc_shm.Ms_queue.t;
  awake : Ulipc_shm.Mem.Flag.t;
  sem : Ulipc_os.Syscall.sem_id;
}

let create ~kernel ~costs ~capacity ~id =
  {
    id;
    queue = Ulipc_shm.Ms_queue.create ~costs ~capacity ();
    awake = Ulipc_shm.Mem.Flag.make ~costs true;
    sem = Ulipc_os.Kernel.new_sem kernel ~init:0;
  }
