(* The one simulator-side application of the protocol functor.  The
   historical module paths (Bss, Bsw, Bswy, Bsls, Handoff_ipc, Prims,
   Bsls_throttle) are thin re-exports of this instantiation, so dispatch,
   iface, bench and the examples keep working unchanged. *)

include Protocol_core.Make (Sim_substrate)
