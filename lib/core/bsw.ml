(* Both Sides Wait (Figure 5): the basic blocking protocol, instantiated
   over the simulated substrate.  Producers conditionally wake the
   consumer with tas-guarded V operations; consumers run the C.1–C.5
   sequence (Protocol_core.Make.Prims.blocking_dequeue) before sleeping.
   Functionally correct but, as §3.1 measures, no faster than System V
   IPC: the V does not force a rescheduling decision, so every round-trip
   still costs four system calls and two context switches. *)

include Sim_protocols.Bsw
