(* Both Sides Wait (Figure 5): the basic blocking protocol.  Producers
   conditionally wake the consumer with tas-guarded V operations; consumers
   run the C.1–C.5 sequence before sleeping.  Functionally correct but, as
   §3.1 measures, no faster than System V IPC: the V does not force a
   rescheduling decision, so every round-trip still costs four system calls
   and two context switches. *)

let send (s : Session.t) ~client msg =
  Prims.flow_enqueue s s.Session.request msg;
  let (_ : bool) = Prims.wake_consumer s s.Session.request ~target:Server in
  let ans =
    Prims.blocking_dequeue s (Session.reply_channel s client) ~side:Client ()
  in
  s.Session.counters.Counters.sends <- s.Session.counters.Counters.sends + 1;
  ans

let receive (s : Session.t) =
  let m = Prims.blocking_dequeue s s.Session.request ~side:Server () in
  s.Session.counters.Counters.receives <-
    s.Session.counters.Counters.receives + 1;
  m

let reply (s : Session.t) ~client msg =
  let ch = Session.reply_channel s client in
  Prims.flow_enqueue s ch msg;
  let (_ : bool) = Prims.wake_consumer s ch ~target:Client in
  s.Session.counters.Counters.replies <- s.Session.counters.Counters.replies + 1
