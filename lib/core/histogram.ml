(* The histogram lives in [Ulipc_observe] (PR 10) so the telemetry plane
   can build windowed views on it without a dependency cycle; this alias
   keeps [Ulipc.Histogram.t] the same type for every existing call
   site. *)

include Ulipc_observe.Histogram
