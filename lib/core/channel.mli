(** One unidirectional IPC channel: a flow-controlled shared-memory queue
    plus the sleep/wake-up state of its consumer.

    Per §2.1 there is one request channel at the server (shared by every
    client) and one reply channel per client; a request carries the number
    of the reply channel to respond on.  The [awake] flag and the counting
    semaphore are the two halves of the blocking protocol of §3: the flag
    lives in shared memory and is manipulated with test-and-set, the
    semaphore is a kernel object the consumer sleeps on. *)

type t = {
  id : int;  (** the channel number carried in messages *)
  queue : Message.t Ulipc_shm.Ms_queue.t;
  awake : Ulipc_shm.Mem.Flag.t;
      (** believed-awake flag of this channel's consumer; cleared by the
          consumer before it considers sleeping (step C.2) *)
  sem : Ulipc_os.Syscall.sem_id;  (** the consumer blocks here (P/V) *)
}

val create :
  kernel:Ulipc_os.Kernel.t ->
  costs:Ulipc_os.Costs.t ->
  capacity:int ->
  id:int ->
  t
(** A fresh channel whose consumer is presumed awake. *)
