(** The substrate a sleep/wake-up protocol runs on.

    The paper's protocols (Figures 4/5/7/9) are one algorithm whose
    behaviour is determined entirely by four primitives underneath it: a
    bounded FIFO queue, the consumer's awake flag with an atomic
    test-and-set, a counting semaphore, and the scheduling hints
    ([busy_wait]/[poll]/[yield]/[handoff]).  This signature names exactly
    those primitives, plus the session shape (one request channel, one
    reply channel per client) and a shared {!Counters} sink, so that
    {!Protocol_core.Make} can derive every protocol once and run it
    unchanged over the simulator ({!Sim_substrate}) and over real OCaml 5
    domains ([Ulipc_real.Real_substrate]) — or over any third backend that
    provides these operations. *)

module type S = sig
  type t
  (** The per-session environment: owns the channels and the counters. *)

  type channel
  (** One direction of traffic: a queue plus the sleep/wake-up state
      (awake flag and semaphore) of its unique consumer. *)

  type msg
  (** What the queues carry. *)

  val no_msg : msg
  (** The "no message" sentinel {!dequeue} returns on an empty queue —
      a distinguished value compared with physical equality ([==]), so
      substrates whose messages are immediates (the real backend passes
      slab slot indices, with [no_msg = -1]) report emptiness without
      allocating an option, and substrates with boxed messages use one
      distinguished block.  [no_msg] must never be enqueued. *)

  (** {2 Session shape} *)

  val request : t -> channel
  (** The request channel shared by all clients, consumed by the server. *)

  val reply_channel : t -> int -> channel
  (** The per-client reply channel.
      @raise Invalid_argument on an out-of-range client number. *)

  (** {2 Queue} *)

  val enqueue : t -> channel -> msg -> bool
  (** [false] when the queue is full (the flow-control condition). *)

  val dequeue : t -> channel -> msg
  (** The oldest message, or [no_msg] (test with [==]) when the queue
      is empty. *)

  val queue_is_empty : t -> channel -> bool
  (** Cheap emptiness hint, as used by the polling loops. *)

  (** {2 Awake flag} *)

  val awake_test_and_set : t -> channel -> bool
  (** Atomically set the consumer's awake flag, returning its previous
      value — the producer-side safeguard of Interleavings 2 and 3. *)

  val awake_clear : t -> channel -> unit
  (** Step C.2 of Figure 4: plain store of [false]. *)

  val awake_set : t -> channel -> unit
  (** Step C.5: plain store of [true]. *)

  val awake_read : t -> channel -> bool

  (** {2 Counting semaphore} *)

  val sem_p : t -> channel -> unit
  (** Down: block while the count is zero, then decrement (step C.4). *)

  val sem_try_p : t -> channel -> bool
  (** Non-blocking down: [false] when the count is zero.  Used by the
      Interleaving-3 drain of a raced wake-up. *)

  val sem_v : t -> channel -> unit
  (** Up: increment and wake one waiter (step P.3). *)

  (** {2 Scheduling hints} *)

  val busy_wait : t -> unit
  (** §2.1: a [yield] on a uniprocessor, a delay loop on a
      multiprocessor. *)

  val poll : t -> channel -> unit
  (** One BSLS poll (Figure 9): like {!busy_wait} but, on a
      multiprocessor, re-checking the queue's emptiness on every slice so
      an arrival is noticed promptly. *)

  val yield : t -> unit
  (** Give the scheduler a chance to run someone else (BSWY, Figure 7). *)

  val handoff_server : t -> unit
  (** §6 extended kernel interface: hand the CPU to the server. *)

  val handoff_any : t -> unit
  (** §6: "I have no useful work, run whoever is best". *)

  val flow_sleep : t -> unit
  (** What a producer does on a full queue before retrying — the paper
      sleeps one second (a full queue means the consumer is saturated). *)

  (** {2 Instrumentation} *)

  val note_spin_exhausted : t -> channel -> unit
  (** A §5 limited spin burned its full budget on [channel] and is about
      to fall through to the blocking sequence.  Pure instrumentation —
      substrates with a trace sink record a spin-exhaust event, others
      do nothing; the protocol core's behaviour must not depend on it. *)

  val counters : t -> Counters.t
  (** The shared sink for the §4.2 statistics.  Substrates whose
      processes run in parallel (real domains) may lose increments from
      concurrent writers of the same field; each field written by a
      single process is exact. *)
end
