(* Both Sides Spin (Figure 1): the busy-waiting baseline.  One
   instantiation of the substrate-parametric core — see Protocol_core for
   the algorithm and Sim_substrate for what busy_wait means here (a yield
   on a uniprocessor, a delay loop on a multiprocessor; §2.2's point is
   that performance is then entirely in the scheduler's hands). *)

include Sim_protocols.Bss
