(* Both Sides Spin (Figure 1): the busy-waiting baseline.  No process ever
   blocks; [busy_wait] is a yield on a uniprocessor and a delay loop on a
   multiprocessor, so performance is entirely in the scheduler's hands —
   which is the point of §2.2. *)

let send (s : Session.t) ~client msg =
  let reply_ch = Session.reply_channel s client in
  Prims.spin_enqueue s s.Session.request msg;
  let ans = Prims.spinning_dequeue s reply_ch in
  s.Session.counters.Counters.sends <- s.Session.counters.Counters.sends + 1;
  ans

let receive (s : Session.t) =
  let m = Prims.spinning_dequeue s s.Session.request in
  s.Session.counters.Counters.receives <-
    s.Session.counters.Counters.receives + 1;
  m

let reply (s : Session.t) ~client msg =
  Prims.spin_enqueue s (Session.reply_channel s client) msg;
  s.Session.counters.Counters.replies <- s.Session.counters.Counters.replies + 1
