(** The substrate-parametric protocol core.

    [Make (S)] derives {e every} sleep/wake-up protocol of the paper —
    BSS (Figure 1), BSW (Figure 5), BSWY (Figure 7), BSLS (Figure 9), the
    §6 hand-off variant and the §5 overload throttle — from the
    {!Substrate.S} primitives alone.  The library instantiates it twice:
    {!Sim_protocols} over the simulated kernel (re-exported as the
    historical {!Bss}/{!Bsw}/… modules) and [Ulipc_real.Rpc] over real
    OCaml 5 domains.  A third backend only has to provide a substrate;
    the protocol logic is shared, which is what makes differential
    testing across substrates meaningful. *)

module Make (S : Substrate.S) : sig
  (** The labelled steps of the paper's figures, over [S]'s primitives.
      See {!Prims} (the simulator instantiation) for per-function
      commentary. *)
  module Prims : sig
    type side = Client | Server

    val busy_wait : S.t -> unit
    val poll_queue : S.t -> S.channel -> unit
    val flow_enqueue : S.t -> S.channel -> S.msg -> unit
    val spin_enqueue : S.t -> S.channel -> S.msg -> unit
    val wake_consumer : S.t -> S.channel -> target:side -> bool
    val spinning_dequeue : S.t -> S.channel -> S.msg

    type empty_hint = No_hint | Hint_busy_wait | Hint_handoff_server
    (** The scheduling hint run between a failed first dequeue (C.1) and
        clearing the awake flag: nothing, the §2.1 busy-wait (BSWY,
        BSLS), or the §6 hand-off.  An enumeration, not a closure, so
        hinted consumers stay allocation-free. *)

    val drain_raced_wakeup : S.t -> S.channel -> unit
    (** The Interleaving-3 fix-up: restore the awake flag and absorb the
        semaphore credit of a producer that signalled between C.2 and
        C.3.  Exposed for consumers that leave the blocking loop by a
        side door (e.g. a TIMED receive) and must rebalance the credit
        themselves. *)

    val blocking_dequeue :
      S.t -> S.channel -> side:side -> ?on_empty:empty_hint -> unit -> S.msg

    val limited_spin : S.t -> S.channel -> side:side -> max_spin:int -> unit
  end

  module Bss : sig
    val send : S.t -> client:int -> S.msg -> S.msg
    val receive : S.t -> S.msg
    val reply : S.t -> client:int -> S.msg -> unit
  end

  module Bsw : sig
    val send : S.t -> client:int -> S.msg -> S.msg
    val receive : S.t -> S.msg
    val reply : S.t -> client:int -> S.msg -> unit
  end

  module Bswy : sig
    val send : S.t -> client:int -> S.msg -> S.msg
    val receive : S.t -> S.msg
    val reply : S.t -> client:int -> S.msg -> unit
  end

  module Bsls : sig
    val send : S.t -> client:int -> max_spin:int -> S.msg -> S.msg
    val receive : S.t -> max_spin:int -> S.msg
    val reply : S.t -> client:int -> S.msg -> unit
  end

  module Handoff : sig
    val send : S.t -> client:int -> S.msg -> S.msg
    val receive : S.t -> S.msg
    val reply : S.t -> client:int -> S.msg -> unit
  end

  type iface = {
    send : S.t -> client:int -> S.msg -> S.msg;
    receive : S.t -> S.msg;
    reply : S.t -> client:int -> S.msg -> unit;
  }
  (** A first-class protocol triple over this substrate (the generic
      analogue of {!Iface.t}). *)

  module Bsls_throttle : sig
    type server_state

    val server_state : max_pending:int -> server_state
    (** @raise Invalid_argument if [max_pending <= 0]. *)

    val pending_wakeups : server_state -> int
    val iface : max_spin:int -> server_state -> iface
  end
end
