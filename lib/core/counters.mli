(** Protocol instrumentation.

    Plain OCaml counters the protocol implementations bump as they run;
    they cost no simulated time.  The driver reads them to report the
    statistics quoted in the paper: how often a consumer actually blocked,
    how many wake-up system calls were issued, how many spin-loop
    iterations a BSLS client performed before its reply arrived (§4.2),
    and how often races were detected and repaired. *)

type t = {
  mutable sends : int;  (** completed synchronous sends *)
  mutable receives : int;  (** completed server receives *)
  mutable replies : int;
  mutable client_blocks : int;  (** P calls that client consumers made *)
  mutable server_blocks : int;
  mutable client_wakeups : int;  (** V calls aimed at sleeping clients *)
  mutable server_wakeups : int;
  mutable race_fix_p : int;
      (** P calls made only to drain a wake-up that raced with a successful
          second dequeue (Interleaving 3 repair) *)
  mutable queue_full_sleeps : int;  (** [sleep(1)] on a full queue *)
  mutable spin_iterations : int;  (** BSLS poll-loop iterations, client side *)
  mutable spin_fallthroughs : int;
      (** BSLS sends whose poll loop exhausted MAX_SPIN *)
  mutable server_spin_iterations : int;
  mutable server_spin_fallthroughs : int;
  mutable backoff_sleeps : int;
      (** busy-wait steps that escalated past the bounded spin budget to
          a real (bounded exponential) sleep — the real backend's yield;
          always 0 on the simulator *)
  mutable steal_posts : int;
      (** steal tokens posted by idle servers on loaded siblings (real
          backend, [nservers > 1] only) *)
  mutable steal_handoffs : int;
      (** tokens honoured: a victim drained a span of its backlog and
          re-enqueued it on the thief's ring *)
  mutable steal_msgs : int;  (** messages moved across shards by handoffs *)
  mutable slab_hwm : int;
      (** payload-slab in-use high-water mark observed over the run;
          merged by [max], not by sum *)
  mutable sem_parks : int;
      (** semaphore slow-path entries: P's that claimed a waiting-array
          ticket and parked (real backend; harvested post-run from the
          per-channel semaphores) *)
  mutable sem_grants : int;
      (** credits V's delivered into waiting-array slots — directed
          wake-ups aimed at one parked waiter each; [sem_parks] minus
          [sem_grants] is the population still parked *)
}

val create : unit -> t
val reset : t -> unit

val add : t -> t -> unit
(** [add dst src] accumulates [src] into [dst] ([slab_hwm] merges by
    [max] — it is a high-water mark, not a flow). *)

val snapshot : t -> t
(** A frozen copy.  Safe to take while writer domains are still bumping
    the source: int fields never tear, so every field of the copy is
    some recently written value (totals are as exact as the racy source
    itself).  Windowed telemetry deltas are one {!diff} of two
    snapshots. *)

val diff : t -> t -> t
(** [diff after before] is the field-wise flow [after - before], except
    [slab_hwm], which carries [after]'s value through: a high-water mark
    is monotone within a run, so the later observation is the window's
    high water.  With that convention
    [add before' (diff after before) = after] exactly whenever [after]
    was snapshotted later than [before] on the same counters
    ([before'] a copy of [before]). *)

val to_fields : t -> (string * int) list
(** Every field as a [(name, value)] pair, in declaration order — the
    flattening {!pp} prints and telemetry feeds to
    [Telemetry.ext_counters]. *)

val pp : Format.formatter -> t -> unit
(** Prints the {!to_fields} flattening as [name=value] pairs. *)
