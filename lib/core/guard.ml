type policy = {
  accept_opcode : Message.opcode -> bool;
  max_outstanding : int;
}

let default_policy =
  {
    accept_opcode =
      (fun op ->
        match op with
        | Message.Connect | Message.Echo | Message.Disconnect -> true
        | Message.Custom _ -> Message.opcode_equal op Bulk.bulk_opcode);
    max_outstanding = 16;
  }

type t = {
  s : Session.t;
  policy : policy;
  outstanding : int array; (* per-client credit in use *)
  mutable dropped : int;
}

let create s policy =
  if policy.max_outstanding <= 0 then
    invalid_arg "Guard.create: max_outstanding must be positive";
  {
    s;
    policy;
    outstanding = Array.make (Session.nclients s) 0;
    dropped = 0;
  }

let session t = t.s
let rejected t = t.dropped

let valid t (m : Message.t) =
  let nclients = Session.nclients t.s in
  if m.Message.reply_chan < 0 || m.Message.reply_chan >= nclients then false
  else if not (t.policy.accept_opcode m.Message.opcode) then false
  else t.outstanding.(m.Message.reply_chan) < t.policy.max_outstanding

let rec receive t =
  let m = Dispatch.receive t.s in
  if valid t m then begin
    t.outstanding.(m.Message.reply_chan) <-
      t.outstanding.(m.Message.reply_chan) + 1;
    m
  end
  else begin
    t.dropped <- t.dropped + 1;
    receive t
  end

let reply t ~client msg =
  if client >= 0 && client < Array.length t.outstanding then
    t.outstanding.(client) <- max 0 (t.outstanding.(client) - 1);
  Dispatch.reply t.s ~client msg
