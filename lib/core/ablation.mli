(** Deliberately broken protocol variants.

    Each variant removes one safeguard the paper's §3 argues for, so tests
    and the ablation benchmarks can demonstrate the failure mode the
    safeguard prevents:

    - {!No_second_dequeue} drops the "seemingly redundant" dequeue of step
      C.3.  Under Interleaving 4 the producer checks the awake flag after
      the consumer found the queue empty but before the flag is cleared —
      no wake-up is sent and the consumer sleeps forever.  Runs with this
      variant are expected to deadlock (usually within a few hundred
      round-trips on a uniprocessor).
    - {!Plain_store_wake} replaces the producer's test-and-set on the awake
      flag with a plain read-then-store.  Interleavings 2 and 3 are back:
      concurrent producers issue duplicate V operations and the semaphore
      count accumulates residue the consumer must iterate down (and that
      can overflow a System V semaphore in a long run — the failure the
      authors hit in their first version).
    - {!Unconditional_wake} issues a V on {e every} enqueue, ignoring the
      awake flag entirely.  Correct, but every send pays the wake-up
      system call, and the semaphore value grows without bound while the
      consumer is busy. *)

type variant = No_second_dequeue | Plain_store_wake | Unconditional_wake

val name : variant -> string

val iface : variant -> Iface.t
(** The BSW protocol with the variant's safeguard removed. *)

val semaphore_residue : Session.t -> kernel:Ulipc_os.Kernel.t -> int
(** Sum of the session's channel-semaphore counts — the accumulated
    surplus wake-ups left behind after a run.  Zero for the correct
    protocol. *)
