(* BSWY with the extended kernel interface of §6: every scheduling hint
   becomes an explicit [handoff] system call.  Clients hand off to the
   server's pid after waking it and while waiting for the reply; the
   server hands off to PID_ANY — "I have no useful work, run whoever is
   best, even at lower priority than me". *)

open Ulipc_os

let handoff_to_server (s : Session.t) =
  if s.Session.server_pid > 0 then
    Usys.handoff (Syscall.To_pid s.Session.server_pid)
  else
    (* Server not registered yet (connection phase): plain yield. *)
    Usys.yield ()

let send (s : Session.t) ~client msg =
  Prims.flow_enqueue s s.Session.request msg;
  if Prims.wake_consumer s s.Session.request ~target:Server then
    handoff_to_server s;
  let ans =
    Prims.blocking_dequeue s
      (Session.reply_channel s client)
      ~side:Client
      ~on_empty:(fun () -> handoff_to_server s)
      ()
  in
  s.Session.counters.Counters.sends <- s.Session.counters.Counters.sends + 1;
  ans

let receive (s : Session.t) =
  let counters = s.Session.counters in
  match Ulipc_shm.Ms_queue.dequeue s.Session.request.Channel.queue with
  | Some m ->
    counters.Counters.receives <- counters.Counters.receives + 1;
    m
  | None ->
    Usys.handoff Syscall.To_any;
    (* let the clients run *)
    let m = Prims.blocking_dequeue s s.Session.request ~side:Server () in
    counters.Counters.receives <- counters.Counters.receives + 1;
    m

let reply (s : Session.t) ~client msg =
  let ch = Session.reply_channel s client in
  Prims.flow_enqueue s ch msg;
  let (_ : bool) = Prims.wake_consumer s ch ~target:Client in
  s.Session.counters.Counters.replies <- s.Session.counters.Counters.replies + 1
