(* BSWY with the extended kernel interface of §6: every scheduling hint
   becomes an explicit [handoff] system call.  Clients hand off to the
   server's pid after waking it and while waiting for the reply; the
   server hands off to PID_ANY — "I have no useful work, run whoever is
   best, even at lower priority than me".  Instantiated from
   Protocol_core over the simulated substrate (Sim_substrate maps the
   hints to the simulated handoff syscall). *)

include Sim_protocols.Handoff
