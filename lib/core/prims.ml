(* The labelled steps of the paper's figures, instantiated over the
   simulated substrate.  The implementation lives in Protocol_core.Make
   (shared verbatim with the real-domains backend); this module keeps the
   historical path for Ablation, Async, Csem and the tests. *)

include Sim_protocols.Prims
