open Ulipc_engine
open Ulipc_os
open Ulipc_shm

type side = Client | Server

let busy_wait (s : Session.t) =
  if s.multiprocessor then Usys.work s.costs.Costs.spin_delay
  else Usys.yield ()

(* On a multiprocessor, slice the 25 µs poll into 1 µs pieces and re-check
   emptiness on every slice (§5: "the empty check is made on every
   iteration"), so a reply arriving mid-poll is noticed promptly. *)
let poll_queue (s : Session.t) (ch : Channel.t) =
  if s.multiprocessor then begin
    let slice = Sim_time.us 1 in
    let slices = max 1 (s.costs.Costs.poll_spin / slice) in
    let rec go i =
      if i < slices && Ms_queue.is_empty ch.Channel.queue then begin
        Usys.work slice;
        go (i + 1)
      end
    in
    go 0
  end
  else Usys.yield ()

let flow_enqueue (s : Session.t) (ch : Channel.t) msg =
  while not (Ms_queue.enqueue ch.Channel.queue msg) do
    s.counters.Counters.queue_full_sleeps <-
      s.counters.Counters.queue_full_sleeps + 1;
    Usys.sleep (Sim_time.sec 1)
  done

let spin_enqueue (s : Session.t) (ch : Channel.t) msg =
  while not (Ms_queue.enqueue ch.Channel.queue msg) do
    busy_wait s
  done

let wake_consumer (s : Session.t) (ch : Channel.t) ~target =
  if not (Mem.Flag.test_and_set ch.Channel.awake) then begin
    (match target with
    | Client ->
      s.counters.Counters.client_wakeups <-
        s.counters.Counters.client_wakeups + 1
    | Server ->
      s.counters.Counters.server_wakeups <-
        s.counters.Counters.server_wakeups + 1);
    Usys.sem_v ch.Channel.sem;
    true
  end
  else false

let spinning_dequeue (s : Session.t) (ch : Channel.t) =
  let rec loop () =
    match Ms_queue.dequeue ch.Channel.queue with
    | Some m -> m
    | None ->
      busy_wait s;
      loop ()
  in
  loop ()

let count_block (s : Session.t) = function
  | Client ->
    s.counters.Counters.client_blocks <- s.counters.Counters.client_blocks + 1
  | Server ->
    s.counters.Counters.server_blocks <- s.counters.Counters.server_blocks + 1

let blocking_dequeue (s : Session.t) (ch : Channel.t) ~side
    ?(on_empty = fun () -> ()) () =
  let rec outer () =
    match Ms_queue.dequeue ch.Channel.queue with (* C.1 *)
    | Some m -> m
    | None ->
      on_empty ();
      Mem.Flag.write ch.Channel.awake false;
      (* C.2 *)
      (match Ms_queue.dequeue ch.Channel.queue with (* C.3 *)
      | None ->
        count_block s side;
        Usys.sem_p ch.Channel.sem;
        (* C.4 *)
        Mem.Flag.write ch.Channel.awake true;
        (* C.5 *)
        outer ()
      | Some m ->
        (* Not empty after all.  Restore the flag with test-and-set: if a
           producer already set it, that producer also issued a V we must
           drain, or wake-ups would accumulate (Interleaving 3). *)
        if Mem.Flag.test_and_set ch.Channel.awake then begin
          s.counters.Counters.race_fix_p <- s.counters.Counters.race_fix_p + 1;
          Usys.sem_p ch.Channel.sem
        end;
        m)
  in
  outer ()

let limited_spin (s : Session.t) (ch : Channel.t) ~side ~max_spin =
  let bump_iter () =
    match side with
    | Client ->
      s.counters.Counters.spin_iterations <-
        s.counters.Counters.spin_iterations + 1
    | Server ->
      s.counters.Counters.server_spin_iterations <-
        s.counters.Counters.server_spin_iterations + 1
  in
  let bump_fall () =
    match side with
    | Client ->
      s.counters.Counters.spin_fallthroughs <-
        s.counters.Counters.spin_fallthroughs + 1
    | Server ->
      s.counters.Counters.server_spin_fallthroughs <-
        s.counters.Counters.server_spin_fallthroughs + 1
  in
  let rec loop spincnt =
    if Ms_queue.is_empty ch.Channel.queue then
      if spincnt < max_spin then begin
        bump_iter ();
        poll_queue s ch;
        loop (spincnt + 1)
      end
      else bump_fall ()
  in
  loop 0
