(** Building blocks shared by the sleep/wake-up protocols.

    These functions are the labelled steps of the paper's figures: the
    producer's conditional wake-up (P.1–P.3 of Figure 4), the consumer's
    carefully-ordered block sequence (C.1–C.5), the flow-control sleep on
    a full queue, and the two [busy_wait] implementations of §2.1.  Each
    protocol module composes them exactly the way its figure does. *)

type side = Client | Server
(** Which end of the session the calling process is; used to attribute
    instrumentation counters. *)

val busy_wait : Session.t -> unit
(** §2.1: a [yield] system call on a uniprocessor, a 25 µs delay loop on a
    multiprocessor. *)

val poll_queue : Session.t -> Channel.t -> unit
(** One BSLS poll (Figure 9): on a uniprocessor a [yield]; on a
    multiprocessor a 25 µs delay loop with the empty check made on every
    iteration (§5), returning early when the queue becomes non-empty. *)

val flow_enqueue : Session.t -> Channel.t -> Message.t -> unit
(** [while (!enqueue(Q, msg)) sleep(1)] — the queue-full path of every
    blocking protocol.  The one-second sleep is the paper's deliberate
    choice: a full queue means the consumer is saturated. *)

val spin_enqueue : Session.t -> Channel.t -> Message.t -> unit
(** The BSS producer: busy-wait (never sleep) until there is room. *)

val wake_consumer : Session.t -> Channel.t -> target:side -> bool
(** Steps P.2–P.3 with the test-and-set repair of Interleavings 2 and 3:
    [if (!tas(&Q->awake)) V(sem)].  Returns whether a V was actually
    issued (BSWY busy-waits only in that case). *)

val spinning_dequeue : Session.t -> Channel.t -> Message.t
(** The BSS consumer: [while (!dequeue(Q)) busy_wait()]. *)

type empty_hint = No_hint | Hint_busy_wait | Hint_handoff_server
(** The scheduling hint run between a failed first dequeue (C.1) and the
    awake-flag clear (C.2) — an enumeration, not a closure, so hinted
    consumers allocate nothing. *)

val blocking_dequeue :
  Session.t ->
  Channel.t ->
  side:side ->
  ?on_empty:empty_hint ->
  unit ->
  Message.t
(** The consumer sequence C.1–C.5 of Figure 4 as hardened in Figure 5:
    try to dequeue; on empty, run [on_empty] (BSWY inserts the hand-off
    [busy_wait] here, HANDOFF the [handoff] call — Figures 7 and 9), clear
    the awake flag, dequeue {e again} (the step C.3 whose necessity
    Interleaving 4 shows), and only then block on the semaphore.  When the
    second dequeue succeeds, restore the flag with test-and-set and drain
    a raced wake-up with a non-blocking P (Interleaving 3 repair). *)

val limited_spin : Session.t -> Channel.t -> side:side -> max_spin:int -> unit
(** The Figure 9 poll loop:
    [while (empty(Q) && spincnt++ < MAX_SPIN) poll_queue(Q)].  Updates the
    spin-iteration and fall-through counters the §4.2 statistics report. *)
