(** The sleep/wake-up protocols evaluated in the paper. *)

type t =
  | BSS  (** Both Sides Spin (Figure 1): pure busy-wait *)
  | BSW  (** Both Sides Wait (Figure 5): semaphores + awake flag *)
  | BSWY  (** Both Sides Wait and Yield (Figure 7): BSW + hand-off hints *)
  | BSLS of int
      (** Both Sides Limited Spin (Figure 9): BSWY + bounded polling; the
          argument is MAX_SPIN *)
  | ADAPT of int
      (** Adaptive BSLS: MAX_SPIN adjusted per channel from the observed
          spin-success rate, capped by the argument.  The adaptive
          controller lives in the real-domains backend
          ([Ulipc_real.Rpc.Adaptive]); the simulator treats [ADAPT n] as
          [BSLS n] (the cap is the budget an always-rewarded spinner
          converges to) *)
  | SYSV  (** the kernel-mediated baseline: System V message queues *)
  | HANDOFF
      (** BSWY with the proposed [handoff] system call (§6) in place of
          the yield-based hints *)
  | CSEM
      (** counting-semaphore producer/consumer: a V on {e every} enqueue
          and a P before every dequeue.  Not in the paper's evaluation —
          it is the naive design whose per-message system calls the awake
          flag exists to avoid — but it is the only protocol here that is
          safe with {e multiple consumers} on one queue, so the
          multi-threaded-server architecture (§8 future work) uses it *)

val name : t -> string
val all_basic : t list
(** [BSS; BSW; BSWY; BSLS 10; SYSV] — the protocol set most figures sweep. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
