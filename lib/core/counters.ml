type t = {
  mutable sends : int;
  mutable receives : int;
  mutable replies : int;
  mutable client_blocks : int;
  mutable server_blocks : int;
  mutable client_wakeups : int;
  mutable server_wakeups : int;
  mutable race_fix_p : int;
  mutable queue_full_sleeps : int;
  mutable spin_iterations : int;
  mutable spin_fallthroughs : int;
  mutable server_spin_iterations : int;
  mutable server_spin_fallthroughs : int;
  mutable backoff_sleeps : int;
  mutable steal_posts : int;
  mutable steal_handoffs : int;
  mutable steal_msgs : int;
  mutable slab_hwm : int;
  mutable sem_parks : int;
  mutable sem_grants : int;
}

let create () =
  {
    sends = 0;
    receives = 0;
    replies = 0;
    client_blocks = 0;
    server_blocks = 0;
    client_wakeups = 0;
    server_wakeups = 0;
    race_fix_p = 0;
    queue_full_sleeps = 0;
    spin_iterations = 0;
    spin_fallthroughs = 0;
    server_spin_iterations = 0;
    server_spin_fallthroughs = 0;
    backoff_sleeps = 0;
    steal_posts = 0;
    steal_handoffs = 0;
    steal_msgs = 0;
    slab_hwm = 0;
    sem_parks = 0;
    sem_grants = 0;
  }

let reset t =
  t.sends <- 0;
  t.receives <- 0;
  t.replies <- 0;
  t.client_blocks <- 0;
  t.server_blocks <- 0;
  t.client_wakeups <- 0;
  t.server_wakeups <- 0;
  t.race_fix_p <- 0;
  t.queue_full_sleeps <- 0;
  t.spin_iterations <- 0;
  t.spin_fallthroughs <- 0;
  t.server_spin_iterations <- 0;
  t.server_spin_fallthroughs <- 0;
  t.backoff_sleeps <- 0;
  t.steal_posts <- 0;
  t.steal_handoffs <- 0;
  t.steal_msgs <- 0;
  t.slab_hwm <- 0;
  t.sem_parks <- 0;
  t.sem_grants <- 0

let add dst src =
  dst.sends <- dst.sends + src.sends;
  dst.receives <- dst.receives + src.receives;
  dst.replies <- dst.replies + src.replies;
  dst.client_blocks <- dst.client_blocks + src.client_blocks;
  dst.server_blocks <- dst.server_blocks + src.server_blocks;
  dst.client_wakeups <- dst.client_wakeups + src.client_wakeups;
  dst.server_wakeups <- dst.server_wakeups + src.server_wakeups;
  dst.race_fix_p <- dst.race_fix_p + src.race_fix_p;
  dst.queue_full_sleeps <- dst.queue_full_sleeps + src.queue_full_sleeps;
  dst.spin_iterations <- dst.spin_iterations + src.spin_iterations;
  dst.spin_fallthroughs <- dst.spin_fallthroughs + src.spin_fallthroughs;
  dst.server_spin_iterations <-
    dst.server_spin_iterations + src.server_spin_iterations;
  dst.server_spin_fallthroughs <-
    dst.server_spin_fallthroughs + src.server_spin_fallthroughs;
  dst.backoff_sleeps <- dst.backoff_sleeps + src.backoff_sleeps;
  dst.steal_posts <- dst.steal_posts + src.steal_posts;
  dst.steal_handoffs <- dst.steal_handoffs + src.steal_handoffs;
  dst.steal_msgs <- dst.steal_msgs + src.steal_msgs;
  (* a high-water mark, not a flow: merging two observations of the same
     slab keeps the larger *)
  dst.slab_hwm <- max dst.slab_hwm src.slab_hwm;
  dst.sem_parks <- dst.sem_parks + src.sem_parks;
  dst.sem_grants <- dst.sem_grants + src.sem_grants

let pp ppf t =
  Format.fprintf ppf
    "@[<v>sends=%d receives=%d replies=%d@,\
     blocks: client=%d server=%d  wakeups: client=%d server=%d@,\
     race-fix P=%d queue-full sleeps=%d backoff sleeps=%d@,\
     client spin: iters=%d falls=%d  server spin: iters=%d falls=%d@,\
     steals: posts=%d handoffs=%d msgs=%d  slab hwm=%d@,\
     sem: parks=%d grants=%d@]"
    t.sends t.receives t.replies t.client_blocks t.server_blocks
    t.client_wakeups t.server_wakeups t.race_fix_p t.queue_full_sleeps
    t.backoff_sleeps t.spin_iterations t.spin_fallthroughs
    t.server_spin_iterations t.server_spin_fallthroughs t.steal_posts
    t.steal_handoffs t.steal_msgs t.slab_hwm t.sem_parks t.sem_grants
