type t = {
  mutable sends : int;
  mutable receives : int;
  mutable replies : int;
  mutable client_blocks : int;
  mutable server_blocks : int;
  mutable client_wakeups : int;
  mutable server_wakeups : int;
  mutable race_fix_p : int;
  mutable queue_full_sleeps : int;
  mutable spin_iterations : int;
  mutable spin_fallthroughs : int;
  mutable server_spin_iterations : int;
  mutable server_spin_fallthroughs : int;
  mutable backoff_sleeps : int;
  mutable steal_posts : int;
  mutable steal_handoffs : int;
  mutable steal_msgs : int;
  mutable slab_hwm : int;
  mutable sem_parks : int;
  mutable sem_grants : int;
}

let create () =
  {
    sends = 0;
    receives = 0;
    replies = 0;
    client_blocks = 0;
    server_blocks = 0;
    client_wakeups = 0;
    server_wakeups = 0;
    race_fix_p = 0;
    queue_full_sleeps = 0;
    spin_iterations = 0;
    spin_fallthroughs = 0;
    server_spin_iterations = 0;
    server_spin_fallthroughs = 0;
    backoff_sleeps = 0;
    steal_posts = 0;
    steal_handoffs = 0;
    steal_msgs = 0;
    slab_hwm = 0;
    sem_parks = 0;
    sem_grants = 0;
  }

let reset t =
  t.sends <- 0;
  t.receives <- 0;
  t.replies <- 0;
  t.client_blocks <- 0;
  t.server_blocks <- 0;
  t.client_wakeups <- 0;
  t.server_wakeups <- 0;
  t.race_fix_p <- 0;
  t.queue_full_sleeps <- 0;
  t.spin_iterations <- 0;
  t.spin_fallthroughs <- 0;
  t.server_spin_iterations <- 0;
  t.server_spin_fallthroughs <- 0;
  t.backoff_sleeps <- 0;
  t.steal_posts <- 0;
  t.steal_handoffs <- 0;
  t.steal_msgs <- 0;
  t.slab_hwm <- 0;
  t.sem_parks <- 0;
  t.sem_grants <- 0

let add dst src =
  dst.sends <- dst.sends + src.sends;
  dst.receives <- dst.receives + src.receives;
  dst.replies <- dst.replies + src.replies;
  dst.client_blocks <- dst.client_blocks + src.client_blocks;
  dst.server_blocks <- dst.server_blocks + src.server_blocks;
  dst.client_wakeups <- dst.client_wakeups + src.client_wakeups;
  dst.server_wakeups <- dst.server_wakeups + src.server_wakeups;
  dst.race_fix_p <- dst.race_fix_p + src.race_fix_p;
  dst.queue_full_sleeps <- dst.queue_full_sleeps + src.queue_full_sleeps;
  dst.spin_iterations <- dst.spin_iterations + src.spin_iterations;
  dst.spin_fallthroughs <- dst.spin_fallthroughs + src.spin_fallthroughs;
  dst.server_spin_iterations <-
    dst.server_spin_iterations + src.server_spin_iterations;
  dst.server_spin_fallthroughs <-
    dst.server_spin_fallthroughs + src.server_spin_fallthroughs;
  dst.backoff_sleeps <- dst.backoff_sleeps + src.backoff_sleeps;
  dst.steal_posts <- dst.steal_posts + src.steal_posts;
  dst.steal_handoffs <- dst.steal_handoffs + src.steal_handoffs;
  dst.steal_msgs <- dst.steal_msgs + src.steal_msgs;
  (* a high-water mark, not a flow: merging two observations of the same
     slab keeps the larger *)
  dst.slab_hwm <- max dst.slab_hwm src.slab_hwm;
  dst.sem_parks <- dst.sem_parks + src.sem_parks;
  dst.sem_grants <- dst.sem_grants + src.sem_grants

(* [snapshot] is the telemetry seam: a frozen copy the sampler can diff
   against a later copy with no coordination with the (racy, multi-domain)
   writers — int fields never tear under the OCaml memory model, so each
   field of the copy is some recently written value. *)
let snapshot t = { t with sends = t.sends }

(* Field-wise [after - before].  [slab_hwm] is a high-water mark, not a
   flow: the window's high water IS the later observation (monotone
   within a run), so [diff] carries [a.slab_hwm] through unchanged and
   [add]'s [max]-merge makes diff/snapshot round-trip exactly. *)
let diff a b =
  {
    sends = a.sends - b.sends;
    receives = a.receives - b.receives;
    replies = a.replies - b.replies;
    client_blocks = a.client_blocks - b.client_blocks;
    server_blocks = a.server_blocks - b.server_blocks;
    client_wakeups = a.client_wakeups - b.client_wakeups;
    server_wakeups = a.server_wakeups - b.server_wakeups;
    race_fix_p = a.race_fix_p - b.race_fix_p;
    queue_full_sleeps = a.queue_full_sleeps - b.queue_full_sleeps;
    spin_iterations = a.spin_iterations - b.spin_iterations;
    spin_fallthroughs = a.spin_fallthroughs - b.spin_fallthroughs;
    server_spin_iterations =
      a.server_spin_iterations - b.server_spin_iterations;
    server_spin_fallthroughs =
      a.server_spin_fallthroughs - b.server_spin_fallthroughs;
    backoff_sleeps = a.backoff_sleeps - b.backoff_sleeps;
    steal_posts = a.steal_posts - b.steal_posts;
    steal_handoffs = a.steal_handoffs - b.steal_handoffs;
    steal_msgs = a.steal_msgs - b.steal_msgs;
    slab_hwm = a.slab_hwm;
    sem_parks = a.sem_parks - b.sem_parks;
    sem_grants = a.sem_grants - b.sem_grants;
  }

let to_fields t =
  [
    ("sends", t.sends);
    ("receives", t.receives);
    ("replies", t.replies);
    ("client_blocks", t.client_blocks);
    ("server_blocks", t.server_blocks);
    ("client_wakeups", t.client_wakeups);
    ("server_wakeups", t.server_wakeups);
    ("race_fix_p", t.race_fix_p);
    ("queue_full_sleeps", t.queue_full_sleeps);
    ("spin_iterations", t.spin_iterations);
    ("spin_fallthroughs", t.spin_fallthroughs);
    ("server_spin_iterations", t.server_spin_iterations);
    ("server_spin_fallthroughs", t.server_spin_fallthroughs);
    ("backoff_sleeps", t.backoff_sleeps);
    ("steal_posts", t.steal_posts);
    ("steal_handoffs", t.steal_handoffs);
    ("steal_msgs", t.steal_msgs);
    ("slab_hwm", t.slab_hwm);
    ("sem_parks", t.sem_parks);
    ("sem_grants", t.sem_grants);
  ]

(* One printer driven by [to_fields], so a new counter field added to the
   flattening shows up everywhere at once. *)
let pp ppf t =
  Format.fprintf ppf "@[<hov>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf ppf "@ ";
      Format.fprintf ppf "%s=%d" name v)
    (to_fields t);
  Format.fprintf ppf "@]"
