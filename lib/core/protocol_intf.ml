(** Signature every sleep/wake-up protocol implements.

    The three operations of §2.1's Send/Receive/Reply interface.  All of
    them run {e inside} simulated processes and perform effects the kernel
    interprets; the shared state lives in the {!Session}. *)

module type S = sig
  val send : Session.t -> client:int -> Message.t -> Message.t
  (** Synchronous request: enqueue on the server's request channel, then
      obtain the response from this client's reply channel. *)

  val receive : Session.t -> Message.t
  (** Server side: obtain the next request. *)

  val reply : Session.t -> client:int -> Message.t -> unit
  (** Server side: respond on the given client's reply channel. *)
end
