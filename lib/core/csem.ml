(* Counting-semaphore producer/consumer: V on every enqueue, P before
   every dequeue, no awake flag.  Two system calls per message in each
   direction — the very overhead the paper's tas-guarded wake-up avoids —
   but, uniquely here, safe with several consumers sharing one queue:
   grants never exceed enqueued items (the V follows the enqueue), so a P
   that returns guarantees the following dequeue finds an item.  The
   multi-threaded-server architecture is built on this. *)

open Ulipc_os
open Ulipc_shm

let produce (s : Session.t) (ch : Channel.t) msg =
  Prims.flow_enqueue s ch msg;
  Usys.sem_v ch.Channel.sem

(* P grants one item; the dequeue can still lose a race for a *specific*
   item to a sibling consumer, but never for an item in total, so the
   retry loop terminates immediately in practice.  The loop guards the
   invariant rather than assuming it. *)
let consume (ch : Channel.t) =
  Usys.sem_p ch.Channel.sem;
  let rec take () =
    match Ms_queue.dequeue ch.Channel.queue with
    | Some m -> m
    | None -> take ()
  in
  take ()

let send (s : Session.t) ~client msg =
  produce s s.Session.request msg;
  let ans = consume (Session.reply_channel s client) in
  s.Session.counters.Counters.sends <- s.Session.counters.Counters.sends + 1;
  ans

let receive (s : Session.t) =
  let m = consume s.Session.request in
  s.Session.counters.Counters.receives <-
    s.Session.counters.Counters.receives + 1;
  m

let reply (s : Session.t) ~client msg =
  produce s (Session.reply_channel s client) msg;
  s.Session.counters.Counters.replies <- s.Session.counters.Counters.replies + 1
