(* The kernel-mediated baseline: System V message queues.  One request
   queue into the server, one reply queue shared by all clients with the
   reply routed by mtype (= client number + 1).  Four system calls per
   round-trip — the floor user-level IPC must beat (§2.2). *)

open Ulipc_os

let request_mtype = 1

let decode (s : Session.t) payload =
  match s.Session.project payload with
  | Some m -> m
  | None ->
    (* The session only ever injects its own messages. *)
    invalid_arg "Sysv_ipc: foreign payload in session queue"

let send (s : Session.t) ~client msg =
  Usys.msgsnd s.Session.sysv_request ~mtype:request_mtype (s.Session.inject msg);
  let ans =
    decode s
      (Usys.msgrcv s.Session.sysv_reply
         ~mtype:(Session.sysv_reply_mtype ~client))
  in
  s.Session.counters.Counters.sends <- s.Session.counters.Counters.sends + 1;
  ans

let receive (s : Session.t) =
  let m = decode s (Usys.msgrcv s.Session.sysv_request ~mtype:0) in
  s.Session.counters.Counters.receives <-
    s.Session.counters.Counters.receives + 1;
  m

let reply (s : Session.t) ~client msg =
  Usys.msgsnd s.Session.sysv_reply
    ~mtype:(Session.sysv_reply_mtype ~client)
    (s.Session.inject msg);
  s.Session.counters.Counters.replies <- s.Session.counters.Counters.replies + 1
