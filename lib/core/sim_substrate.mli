(** The simulated-OS substrate: {!Session}/{!Channel} state in cost-charged
    shared memory, semaphores and scheduling hints as kernel effects.
    Feed this to {!Protocol_core.Make} (done once, in {!Sim_protocols}) to
    obtain the protocols the simulator runs. *)

include
  Substrate.S
    with type t = Session.t
     and type channel = Channel.t
     and type msg = Message.t
