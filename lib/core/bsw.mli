(** Both Sides Wait (Figure 5): the basic blocking protocol.

    Producers perform the tas-guarded conditional wake-up (steps P.1–P.3
    of Figure 4); consumers run the C.1–C.5 sequence — clear the awake
    flag, dequeue {e again}, and only then sleep on the counting
    semaphore.  Functionally the goal, but §3.1 shows it is no faster
    than System V IPC: four system calls and two context switches per
    round-trip, because a V never forces a rescheduling decision. *)

val send : Session.t -> client:int -> Message.t -> Message.t
val receive : Session.t -> Message.t
val reply : Session.t -> client:int -> Message.t -> unit
