(** Variable-sized message payloads (§2.1).

    "Variable sized messages can be accommodated by using one of the
    fields of the fixed sized message to point to a variable sized
    component in shared memory."  This module implements that scheme on
    top of any session protocol: the payload bytes travel through a shared
    {!Ulipc_shm.Arena}, and the fixed-size message carries the block's
    offset (in [arg]) and length (in [seq]).

    Ownership follows the message: the sender allocates and writes the
    block, the receiver reads and frees it.  Request and reply payloads
    use the same arena.  When the arena is momentarily exhausted the
    sender backs off with the protocols' one-second flow-control sleep. *)

type t

val create : Session.t -> arena_size:int -> t
(** Attach a payload arena to a session.
    @raise Invalid_argument if [arena_size <= 0]. *)

val session : t -> Session.t
val arena : t -> Ulipc_shm.Arena.t

val call : t -> client:int -> bytes -> bytes
(** Synchronous request with a variable-sized payload; returns the
    server's (variable-sized) response.  Uses the session's protocol for
    the fixed-size message exchange. *)

val serve_one : t -> handler:(client:int -> bytes -> bytes) -> unit
(** Server side: receive one bulk request, run [handler] on its payload,
    and respond with the handler's result. *)

val bulk_opcode : Message.opcode
(** The [Custom] opcode tagging bulk messages; exposed so mixed servers
    can route on it. *)
