(** BSWY over the extended kernel interface of §6.

    Every scheduling hint becomes an explicit [handoff] system call:
    clients hand off to the server's pid after waking it and while
    waiting for a reply; the server hands off to PID_ANY ("run whoever is
    best, even at lower priority than me").  On the modified-yield Linux
    scheduler this matches BSWY without improving it, as the paper
    reports. *)

val send : Session.t -> client:int -> Message.t -> Message.t
val receive : Session.t -> Message.t
val reply : Session.t -> client:int -> Message.t -> unit
