(** Both Sides Limited Spin (Figure 9): poll up to MAX_SPIN times before
    running the blocking sequence.

    Each poll is a yield on a uniprocessor (a hand-off attempt) and a
    25 µs checking delay loop on a multiprocessor.  The paper's best
    blocking protocol: at MAX_SPIN = 20 a single client almost never
    blocks and sees its reply within ~2 polls (§4.2); on a multiprocessor
    it tracks BSS until clients out-spin the bound, where the wake-up
    feedback of §5 collapses it. *)

val send : Session.t -> client:int -> max_spin:int -> Message.t -> Message.t
val receive : Session.t -> max_spin:int -> Message.t
val reply : Session.t -> client:int -> Message.t -> unit
