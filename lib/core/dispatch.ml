let send (s : Session.t) ~client msg =
  match s.Session.kind with
  | Protocol_kind.BSS -> Bss.send s ~client msg
  | Protocol_kind.BSW -> Bsw.send s ~client msg
  | Protocol_kind.BSWY -> Bswy.send s ~client msg
  | Protocol_kind.BSLS max_spin | Protocol_kind.ADAPT max_spin ->
    Bsls.send s ~client ~max_spin msg
  | Protocol_kind.SYSV -> Sysv_ipc.send s ~client msg
  | Protocol_kind.HANDOFF -> Handoff_ipc.send s ~client msg
  | Protocol_kind.CSEM -> Csem.send s ~client msg

let receive (s : Session.t) =
  match s.Session.kind with
  | Protocol_kind.BSS -> Bss.receive s
  | Protocol_kind.BSW -> Bsw.receive s
  | Protocol_kind.BSWY -> Bswy.receive s
  | Protocol_kind.BSLS max_spin | Protocol_kind.ADAPT max_spin ->
    Bsls.receive s ~max_spin
  | Protocol_kind.SYSV -> Sysv_ipc.receive s
  | Protocol_kind.HANDOFF -> Handoff_ipc.receive s
  | Protocol_kind.CSEM -> Csem.receive s

let reply (s : Session.t) ~client msg =
  match s.Session.kind with
  | Protocol_kind.BSS -> Bss.reply s ~client msg
  | Protocol_kind.BSW -> Bsw.reply s ~client msg
  | Protocol_kind.BSWY -> Bswy.reply s ~client msg
  | Protocol_kind.BSLS _ | Protocol_kind.ADAPT _ -> Bsls.reply s ~client msg
  | Protocol_kind.SYSV -> Sysv_ipc.reply s ~client msg
  | Protocol_kind.HANDOFF -> Handoff_ipc.reply s ~client msg
  | Protocol_kind.CSEM -> Csem.reply s ~client msg
