(** Alias of {!Ulipc_observe.Histogram}.

    The implementation moved to [lib/observe] so the telemetry plane
    ([Ulipc_observe.Telemetry]) can window it with [merge_into]/[reset]
    without depending on this library; [Ulipc.Histogram.t] remains equal
    to [Ulipc_observe.Histogram.t], so drivers can hand their per-domain
    histograms straight to telemetry instruments. *)

include module type of struct
  include Ulipc_observe.Histogram
end
