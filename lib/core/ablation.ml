open Ulipc_os
open Ulipc_shm

type variant = No_second_dequeue | Plain_store_wake | Unconditional_wake

let name = function
  | No_second_dequeue -> "no-second-dequeue"
  | Plain_store_wake -> "plain-store-wake"
  | Unconditional_wake -> "unconditional-wake"

(* The BSW consumer with step C.3 removed: empty queue -> clear flag ->
   sleep.  Interleaving 4 makes this lose wake-ups. *)
let consumer_without_second_dequeue (s : Session.t) (ch : Channel.t) ~side =
  let count_block () =
    match side with
    | Prims.Client ->
      s.Session.counters.Counters.client_blocks <-
        s.Session.counters.Counters.client_blocks + 1
    | Prims.Server ->
      s.Session.counters.Counters.server_blocks <-
        s.Session.counters.Counters.server_blocks + 1
  in
  let rec outer () =
    match Ms_queue.dequeue ch.Channel.queue with
    | Some m -> m
    | None ->
      Mem.Flag.write ch.Channel.awake false;
      (* C.3 deliberately missing *)
      count_block ();
      Usys.sem_p ch.Channel.sem;
      Mem.Flag.write ch.Channel.awake true;
      outer ()
  in
  outer ()

(* The producer's wake-up with a plain read-then-store instead of
   test-and-set: concurrent producers both see the flag clear and both V
   (Interleaving 2); a producer racing a successful second dequeue leaves
   an undrainable V behind (Interleaving 3). *)
let wake_plain_store (s : Session.t) (ch : Channel.t) ~target =
  if not (Mem.Flag.read ch.Channel.awake) then begin
    Mem.Flag.write ch.Channel.awake true;
    (match target with
    | Prims.Client ->
      s.Session.counters.Counters.client_wakeups <-
        s.Session.counters.Counters.client_wakeups + 1
    | Prims.Server ->
      s.Session.counters.Counters.server_wakeups <-
        s.Session.counters.Counters.server_wakeups + 1);
    Usys.sem_v ch.Channel.sem
  end

let wake_unconditional (s : Session.t) (ch : Channel.t) ~target =
  (match target with
  | Prims.Client ->
    s.Session.counters.Counters.client_wakeups <-
      s.Session.counters.Counters.client_wakeups + 1
  | Prims.Server ->
    s.Session.counters.Counters.server_wakeups <-
      s.Session.counters.Counters.server_wakeups + 1);
  Usys.sem_v ch.Channel.sem

let iface variant =
  let wake =
    match variant with
    | No_second_dequeue ->
      fun s ch ~target -> ignore (Prims.wake_consumer s ch ~target : bool)
    | Plain_store_wake -> wake_plain_store
    | Unconditional_wake -> wake_unconditional
  in
  let consume s ch ~side =
    match variant with
    | No_second_dequeue -> consumer_without_second_dequeue s ch ~side
    | Plain_store_wake | Unconditional_wake ->
      Prims.blocking_dequeue s ch ~side ()
  in
  let send (s : Session.t) ~client msg =
    Prims.flow_enqueue s s.Session.request msg;
    wake s s.Session.request ~target:Prims.Server;
    let ans = consume s (Session.reply_channel s client) ~side:Prims.Client in
    s.Session.counters.Counters.sends <- s.Session.counters.Counters.sends + 1;
    ans
  in
  let receive (s : Session.t) =
    let m = consume s s.Session.request ~side:Prims.Server in
    s.Session.counters.Counters.receives <-
      s.Session.counters.Counters.receives + 1;
    m
  in
  let reply (s : Session.t) ~client msg =
    let ch = Session.reply_channel s client in
    Prims.flow_enqueue s ch msg;
    wake s ch ~target:Prims.Client;
    s.Session.counters.Counters.replies <-
      s.Session.counters.Counters.replies + 1
  in
  { Iface.send; receive; reply }

let semaphore_residue (s : Session.t) ~kernel =
  let value ch = Kernel.sem_value kernel ch.Channel.sem in
  Array.fold_left
    (fun acc ch -> acc + value ch)
    (value s.Session.request) s.Session.replies
