(** Overload-aware BSLS — the future work sketched at the end of §5.

    On the multiprocessor, plain BSLS collapses through positive feedback:
    once one client out-spins MAX_SPIN the server must pay a wake-up
    system call, which slows the server, which makes more clients
    out-spin.  The paper proposes "having the server recognize the fact
    that it is overloaded, and limit the number of clients it wakes up at
    any given time ... while guaranteeing that starvation doesn't occur".

    This variant implements that idea: while the server's request queue is
    non-empty (the server is overloaded), replies defer their wake-up V
    operations into a pending set instead of issuing them inline; the
    pending wake-ups are flushed — oldest first, bounded per batch — as
    soon as the request queue drains or the pending set reaches
    [max_pending].  Flushing before the server ever blocks guarantees no
    client starves. *)

type server_state

val server_state : max_pending:int -> server_state
(** @raise Invalid_argument if [max_pending <= 0]. *)

val pending_wakeups : server_state -> int

val iface : max_spin:int -> server_state -> Iface.t
(** Client side is plain BSLS; the server's receive/reply use the deferred
    wake-up policy above.  The state must not be shared across sessions. *)
