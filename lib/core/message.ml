type opcode = Connect | Echo | Disconnect | Custom of int

type t = { opcode : opcode; reply_chan : int; arg : float; seq : int }

let make ~opcode ~reply_chan ?(seq = 0) arg = { opcode; reply_chan; arg; seq }
let echo_reply m = { m with opcode = Echo }

let opcode_equal a b =
  match (a, b) with
  | Connect, Connect | Echo, Echo | Disconnect, Disconnect -> true
  | Custom x, Custom y -> x = y
  | (Connect | Echo | Disconnect | Custom _), _ -> false

let equal a b =
  opcode_equal a.opcode b.opcode
  && a.reply_chan = b.reply_chan
  && Float.equal a.arg b.arg
  && a.seq = b.seq

let pp_opcode ppf = function
  | Connect -> Format.pp_print_string ppf "connect"
  | Echo -> Format.pp_print_string ppf "echo"
  | Disconnect -> Format.pp_print_string ppf "disconnect"
  | Custom n -> Format.fprintf ppf "custom(%d)" n

let pp ppf m =
  Format.fprintf ppf "{%a reply=%d arg=%g seq=%d}" pp_opcode m.opcode
    m.reply_chan m.arg m.seq
