type t =
  | BSS
  | BSW
  | BSWY
  | BSLS of int
  | ADAPT of int
  | SYSV
  | HANDOFF
  | CSEM

let name = function
  | BSS -> "BSS"
  | BSW -> "BSW"
  | BSWY -> "BSWY"
  | BSLS n -> Printf.sprintf "BSLS(%d)" n
  | ADAPT n -> Printf.sprintf "ADAPT(%d)" n
  | SYSV -> "SYSV"
  | HANDOFF -> "HANDOFF"
  | CSEM -> "CSEM"

let all_basic = [ BSS; BSW; BSWY; BSLS 10; SYSV ]
let pp ppf t = Format.pp_print_string ppf (name t)

let equal a b =
  match (a, b) with
  | BSS, BSS | BSW, BSW | BSWY, BSWY | SYSV, SYSV | HANDOFF, HANDOFF
  | CSEM, CSEM ->
    true
  | BSLS x, BSLS y -> x = y
  | ADAPT x, ADAPT y -> x = y
  | (BSS | BSW | BSWY | BSLS _ | ADAPT _ | SYSV | HANDOFF | CSEM), _ -> false
