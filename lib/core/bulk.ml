open Ulipc_engine
open Ulipc_os
open Ulipc_shm

type t = { session : Session.t; arena : Arena.t }

let bulk_opcode = Message.Custom 0xB

let create session ~arena_size =
  {
    session;
    arena = Arena.create ~costs:session.Session.costs ~size:arena_size ();
  }

let session t = t.session
let arena t = t.arena

(* Allocate with the queue-full back-off discipline: an exhausted arena
   means receivers have not freed their blocks yet. *)
let rec alloc_blocking t n =
  match Arena.alloc t.arena n with
  | Some block -> block
  | None ->
    t.session.Session.counters.Counters.queue_full_sleeps <-
      t.session.Session.counters.Counters.queue_full_sleeps + 1;
    Usys.sleep (Sim_time.sec 1);
    alloc_blocking t n

(* A zero-length payload still needs a valid block handle; use one byte. *)
let stage t payload =
  let block = alloc_blocking t (max 1 (Bytes.length payload)) in
  Arena.write_bytes t.arena block payload;
  (block, Bytes.length payload)

let encode ~reply_chan (block : Arena.allocation) real_len =
  (* Offset rides in [arg] (exact for any offset below 2^53), the real
     payload length in [seq]; the block length is recomputed as
     max 1 real_len on the receiving side. *)
  Message.make ~opcode:bulk_opcode ~reply_chan ~seq:real_len
    (float_of_int block.Arena.offset)

let decode t (m : Message.t) =
  if not (Message.opcode_equal m.Message.opcode bulk_opcode) then
    invalid_arg "Bulk: message does not carry a bulk payload";
  let real_len = m.Message.seq in
  let block =
    {
      Arena.offset = int_of_float m.Message.arg;
      length = max 1 real_len;
    }
  in
  let all = Arena.read_bytes t.arena block in
  Arena.free t.arena block;
  Bytes.sub all 0 real_len

let call t ~client payload =
  let block, len = stage t payload in
  let answer =
    Dispatch.send t.session ~client (encode ~reply_chan:client block len)
  in
  decode t answer

let serve_one t ~handler =
  let m = Dispatch.receive t.session in
  let client = m.Message.reply_chan in
  let request = decode t m in
  let response = handler ~client request in
  let block, len = stage t response in
  Dispatch.reply t.session ~client (encode ~reply_chan:client block len)
