(** Asynchronous sends — the extension §1 and §8 sketch.

    A client may enqueue several requests without waiting for replies
    ("a client process can enqueue multiple asynchronous messages on to a
    shared queue without blocking waiting for a response") and collect the
    responses later.  On a uniprocessor this is where user-level IPC needs
    {e no} system calls at all in the best case: the server drains the
    batch in one possession of the CPU.

    The sleep/wake-up machinery is the BSW/BSWY producer and consumer
    halves, so these calls compose with servers running any of the
    blocking protocols (BSW, BSWY, BSLS, HANDOFF).  They do not apply to
    SYSV sessions. *)

val post : Session.t -> client:int -> Message.t -> unit
(** Enqueue a request and wake the server if needed; return immediately.
    Blocks (with the one-second flow-control sleep) only if the request
    queue is full. *)

val collect : Session.t -> client:int -> Message.t
(** Wait for the next response on this client's reply channel, sleeping if
    none is ready (the standard C.1–C.5 consumer sequence). *)

val try_collect : Session.t -> client:int -> Message.t option
(** Non-blocking poll of the reply channel: one dequeue attempt. *)

val call_batch : Session.t -> client:int -> Message.t list -> Message.t list
(** [call_batch s ~client msgs] posts every request, then collects exactly
    one response per request, in arrival order. *)
