(* Overload-aware BSLS (§5 future work) — re-export of the generic
   implementation in Protocol_core.Make.Bsls_throttle, instantiated over
   the simulated substrate, with its iface repackaged as the simulator's
   Iface.t record. *)

type server_state = Sim_protocols.Bsls_throttle.server_state

let server_state = Sim_protocols.Bsls_throttle.server_state
let pending_wakeups = Sim_protocols.Bsls_throttle.pending_wakeups

let iface ~max_spin st =
  let { Sim_protocols.send; receive; reply } =
    Sim_protocols.Bsls_throttle.iface ~max_spin st
  in
  { Iface.send; receive; reply }
