type server_state = {
  max_active : int;
  mutable active : int;
      (* wake-ups issued whose follow-up request has not yet been received *)
  mutable pending : Channel.t list; (* deferred wake-ups, oldest first *)
}

let server_state ~max_pending =
  if max_pending <= 0 then
    invalid_arg "Bsls_throttle.server_state: max_pending must be positive";
  { max_active = max_pending; active = 0; pending = [] }

let pending_wakeups st = List.length st.pending

let wake_now (s : Session.t) st ch =
  if Prims.wake_consumer s ch ~target:Prims.Client then
    st.active <- st.active + 1

(* Release deferred clients while the admission window has room.  Called on
   every receive, including right before the server would block, which is
   what guarantees no deferred client starves. *)
let release_window (s : Session.t) st =
  let rec go () =
    match st.pending with
    | ch :: rest when st.active < st.max_active ->
      st.pending <- rest;
      wake_now s st ch;
      go ()
    | _ :: _ | [] -> ()
  in
  go ()

let iface ~max_spin st =
  let send (s : Session.t) ~client msg = Bsls.send s ~client ~max_spin msg in
  let receive (s : Session.t) =
    release_window s st;
    (* Progress guarantee: if no request is waiting we may be about to
       block, and only a released client can produce the next request —
       keep releasing until a wake-up actually lands (a false return means
       the released client was already awake or has exited). *)
    if Ulipc_shm.Ms_queue.is_empty s.Session.request.Channel.queue then begin
      let rec force () =
        match st.pending with
        | [] -> ()
        | ch :: rest ->
          st.pending <- rest;
          if Prims.wake_consumer s ch ~target:Prims.Client then
            st.active <- st.active + 1
          else force ()
      in
      force ()
    end;
    let m = Bsls.receive s ~max_spin in
    (* A request arrived: whoever sent it is no longer sleeping. *)
    if st.active > 0 then st.active <- st.active - 1;
    m
  in
  let reply (s : Session.t) ~client msg =
    let ch = Session.reply_channel s client in
    Prims.flow_enqueue s ch msg;
    (* Defer only while the client is still awake (spinning): the reply is
       already enqueued, so a client that clears its flag after this read
       must find it at the second dequeue (step C.3) and never sleeps.  A
       client whose flag is already clear may be asleep and might never be
       flushed if the server stops receiving — wake it now. *)
    if st.active < st.max_active || not (Ulipc_shm.Mem.Flag.read ch.Channel.awake)
    then wake_now s st ch
    else st.pending <- st.pending @ [ ch ];
    s.Session.counters.Counters.replies <-
      s.Session.counters.Counters.replies + 1
  in
  { Iface.send; receive; reply }
