(** Counting-semaphore producer/consumer: a V on every enqueue, a P before
    every dequeue, no awake flag.

    Two system calls per message in each direction — exactly the overhead
    the paper's tas-guarded wake-up exists to avoid — but the per-item
    grants make it the one protocol here that is safe with several
    consumers sharing a queue, which the multi-threaded-server
    architecture ({!Ulipc_workload.Arch}) requires. *)

val send : Session.t -> client:int -> Message.t -> Message.t
val receive : Session.t -> Message.t
val reply : Session.t -> client:int -> Message.t -> unit
