(** Protocol dispatch: the public Send/Receive/Reply entry points.

    Routes each operation to the implementation selected by the session's
    {!Protocol_kind.t}.  These functions must be called from inside
    simulated processes (see {!Ulipc_os.Kernel.spawn}). *)

val send : Session.t -> client:int -> Message.t -> Message.t
(** Synchronous request from client [client]; returns the server's
    response.  Blocking behaviour depends on the protocol. *)

val receive : Session.t -> Message.t
(** Next request at the server. *)

val reply : Session.t -> client:int -> Message.t -> unit
(** Respond to client [client]. *)
