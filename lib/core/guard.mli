(** Server-side protection against misbehaving clients (§1).

    "Servers can protect themselves from clients by careful access to the
    shared memory queues.  Clients can be protected from other clients by
    placing only recoverable control information in the queues" — the
    request queue is writable by every client, so nothing read from it can
    be trusted.  This wrapper validates each received message before the
    server acts on it:

    - the reply-channel number must name a real channel (an out-of-range
      index would crash the server or let one client impersonate another);
    - the opcode must be one the server accepts;
    - a per-client credit bound caps how many requests a single client may
      have outstanding, so one client cannot monopolise the shared request
      queue (a recoverable-flow-control discipline).

    Invalid messages are dropped and counted; the server keeps serving. *)

type policy = {
  accept_opcode : Message.opcode -> bool;
  max_outstanding : int;
      (** per-client credit: requests received minus replies sent *)
}

val default_policy : policy
(** Accepts Connect/Echo/Disconnect and [Bulk.bulk_opcode];
    [max_outstanding = 16]. *)

type t

val create : Session.t -> policy -> t
val session : t -> Session.t

val rejected : t -> int
(** Messages dropped so far. *)

val receive : t -> Message.t
(** Like {!Dispatch.receive}, but skips (and counts) invalid messages
    until a valid one arrives. *)

val reply : t -> client:int -> Message.t -> unit
(** Like {!Dispatch.reply}; also returns the client's credit. *)
