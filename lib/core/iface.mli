(** A protocol implementation as a value.

    The workload driver and the ablation benchmarks run protocols through
    this record so that deliberately-broken variants ({!Ablation}) and
    extensions ({!Bsls_throttle}) can be swapped in for the standard
    implementations without the session type knowing about them. *)

type t = {
  send : Session.t -> client:int -> Message.t -> Message.t;
  receive : Session.t -> Message.t;
  reply : Session.t -> client:int -> Message.t -> unit;
}

val of_kind : Protocol_kind.t -> t
(** The standard implementation of each protocol (same routing as
    {!Dispatch}). *)
