type t = {
  kernel : Ulipc_os.Kernel.t;
  costs : Ulipc_os.Costs.t;
  multiprocessor : bool;
  kind : Protocol_kind.t;
  request : Channel.t;
  replies : Channel.t array;
  sysv_request : Ulipc_os.Syscall.msq_id;
  sysv_reply : Ulipc_os.Syscall.msq_id;
  inject : Message.t -> Ulipc_engine.Univ.t;
  project : Ulipc_engine.Univ.t -> Message.t option;
  mutable server_pid : Ulipc_os.Syscall.pid;
  counters : Counters.t;
  events : Ulipc_observe.Sink.t option;
}

let create ?events ~kernel ~costs ~multiprocessor ~kind ~nclients ~capacity () =
  if nclients <= 0 then invalid_arg "Session.create: nclients must be positive";
  if capacity <= 0 then invalid_arg "Session.create: capacity must be positive";
  (match kind with
  | Protocol_kind.BSLS max_spin when max_spin < 0 ->
    invalid_arg "Session.create: max_spin must be non-negative"
  | Protocol_kind.ADAPT cap when cap < 0 ->
    invalid_arg "Session.create: adaptive spin cap must be non-negative"
  | Protocol_kind.BSS | Protocol_kind.BSW | Protocol_kind.BSWY
  | Protocol_kind.BSLS _ | Protocol_kind.ADAPT _ | Protocol_kind.SYSV
  | Protocol_kind.HANDOFF | Protocol_kind.CSEM ->
    ());
  let inject, project = Ulipc_engine.Univ.embed () in
  {
    kernel;
    costs;
    multiprocessor;
    kind;
    request = Channel.create ~kernel ~costs ~capacity ~id:(-1);
    replies =
      Array.init nclients (fun id -> Channel.create ~kernel ~costs ~capacity ~id);
    sysv_request = Ulipc_os.Kernel.new_msgq kernel ~capacity;
    sysv_reply = Ulipc_os.Kernel.new_msgq kernel ~capacity;
    inject;
    project;
    server_pid = 0;
    counters = Counters.create ();
    events;
  }

let register_server t pid = t.server_pid <- pid

let reply_channel t n =
  if n < 0 || n >= Array.length t.replies then
    invalid_arg (Printf.sprintf "Session.reply_channel: no channel %d" n);
  t.replies.(n)

let nclients t = Array.length t.replies
let sysv_reply_mtype ~client = client + 1
