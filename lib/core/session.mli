(** A client-server IPC session (§2.1's server architecture).

    One request channel shared by all clients, one reply channel per
    client; requests carry the reply-channel number.  The session also
    owns the System V queues used by the kernel-mediated baseline and the
    instrumentation counters, so the same session object drives any
    protocol. *)

type t = {
  kernel : Ulipc_os.Kernel.t;
  costs : Ulipc_os.Costs.t;
  multiprocessor : bool;
      (** selects the [busy_wait] implementation: a spin delay loop on a
          multiprocessor, a [yield] system call on a uniprocessor (§2.1) *)
  kind : Protocol_kind.t;
  request : Channel.t;
  replies : Channel.t array;
  sysv_request : Ulipc_os.Syscall.msq_id;
  sysv_reply : Ulipc_os.Syscall.msq_id;
  inject : Message.t -> Ulipc_engine.Univ.t;
  project : Ulipc_engine.Univ.t -> Message.t option;
  mutable server_pid : Ulipc_os.Syscall.pid;
      (** pid the HANDOFF protocol hands off to; 0 until the server
          process registers with {!register_server} *)
  counters : Counters.t;
  events : Ulipc_observe.Sink.t option;
      (** unified trace-event sink ({!Ulipc_observe.Event}): when
          present, {!Sim_substrate} records every queue transfer,
          semaphore block/wake and scheduling hint with simulated-time
          stamps and proc-id actors — uncharged instrumentation that
          never perturbs the run *)
}

val create :
  ?events:Ulipc_observe.Sink.t ->
  kernel:Ulipc_os.Kernel.t ->
  costs:Ulipc_os.Costs.t ->
  multiprocessor:bool ->
  kind:Protocol_kind.t ->
  nclients:int ->
  capacity:int ->
  unit ->
  t
(** [capacity] bounds each shared queue (the free-pool size) and the
    System V queues alike.
    @raise Invalid_argument if [nclients <= 0], [capacity <= 0], or
    [kind] is [BSLS max_spin] with [max_spin < 0]. *)

val register_server : t -> Ulipc_os.Syscall.pid -> unit
(** Called by the server process (or the driver) so clients can hand off
    to it. *)

val reply_channel : t -> int -> Channel.t
(** @raise Invalid_argument on an out-of-range channel number. *)

val nclients : t -> int

val sysv_reply_mtype : client:int -> int
(** The System V message type that routes a reply to the given client:
    mtypes must be positive, so this is [client + 1]. *)
