(** The kernel-mediated baseline: System V message queues.

    One request queue into the server, one reply queue shared by all
    clients with replies routed by message type (client number + 1).
    Four system calls per round-trip — the floor user-level IPC must
    beat (§2.2), and the paper's lower bound on acceptable performance. *)

val request_mtype : int
(** The mtype every request carries (System V types must be positive). *)

val send : Session.t -> client:int -> Message.t -> Message.t
val receive : Session.t -> Message.t
val reply : Session.t -> client:int -> Message.t -> unit
