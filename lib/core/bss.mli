(** Both Sides Spin (Figure 1): the busy-waiting baseline.

    No process ever blocks: [busy_wait] is a [yield] system call on a
    uniprocessor and a tight delay loop on a multiprocessor, so whether
    anything useful happens during a wait is entirely the scheduler's
    decision — the observation §2.2 builds on.  Maximum throughput under
    continuous load; unacceptable waste when queues are often empty. *)

val send : Session.t -> client:int -> Message.t -> Message.t
val receive : Session.t -> Message.t
val reply : Session.t -> client:int -> Message.t -> unit
