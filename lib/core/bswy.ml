(* Both Sides Wait and Yield (Figure 7): BSW plus busy_wait/yield calls
   that suggest hand-off scheduling to the operating system.  The client
   busy-waits right after actually waking the server (give it a chance to
   produce the reply before we sleep) and once more when it first finds
   the reply queue empty; the server yields once before entering its
   blocking sequence so clients can enqueue follow-up requests. *)

open Ulipc_os

let send (s : Session.t) ~client msg =
  Prims.flow_enqueue s s.Session.request msg;
  if Prims.wake_consumer s s.Session.request ~target:Server then
    (* We really did wake the server: let it run (Figure 7). *)
    Prims.busy_wait s;
  let ans =
    Prims.blocking_dequeue s
      (Session.reply_channel s client)
      ~side:Client
      ~on_empty:(fun () -> Prims.busy_wait s)
      ()
  in
  s.Session.counters.Counters.sends <- s.Session.counters.Counters.sends + 1;
  ans

let receive (s : Session.t) =
  let counters = s.Session.counters in
  match Ulipc_shm.Ms_queue.dequeue s.Session.request.Channel.queue with
  | Some m ->
    (* Requests pending: keep processing rather than give up the CPU —
       this is what lets the server batch under multiple clients. *)
    counters.Counters.receives <- counters.Counters.receives + 1;
    m
  | None ->
    Usys.yield ();
    (* let the clients run *)
    let m = Prims.blocking_dequeue s s.Session.request ~side:Server () in
    counters.Counters.receives <- counters.Counters.receives + 1;
    m

let reply (s : Session.t) ~client msg =
  let ch = Session.reply_channel s client in
  Prims.flow_enqueue s ch msg;
  let (_ : bool) = Prims.wake_consumer s ch ~target:Client in
  s.Session.counters.Counters.replies <- s.Session.counters.Counters.replies + 1
