(* Both Sides Wait and Yield (Figure 7): BSW plus busy_wait/yield calls
   that suggest hand-off scheduling to the operating system.  The client
   busy-waits right after actually waking the server (give it a chance to
   produce the reply before we sleep) and once more when it first finds
   the reply queue empty; the server yields once before entering its
   blocking sequence so clients can enqueue follow-up requests.
   Instantiated from Protocol_core over the simulated substrate. *)

include Sim_protocols.Bswy
