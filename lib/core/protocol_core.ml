(* The substrate-parametric protocol core: every sleep/wake-up protocol of
   the paper, written once against the Substrate.S primitives and
   instantiated over the simulator (Sim_protocols) and over real OCaml 5
   domains (Ulipc_real.Rpc).  Nothing in this file knows whether time is
   simulated or real. *)

module Make (S : Substrate.S) = struct
  module Prims = struct
    type side = Client | Server

    let busy_wait = S.busy_wait
    let poll_queue = S.poll

    let flow_enqueue s ch msg =
      while not (S.enqueue s ch msg) do
        let c = S.counters s in
        c.Counters.queue_full_sleeps <- c.Counters.queue_full_sleeps + 1;
        S.flow_sleep s
      done

    let spin_enqueue s ch msg =
      while not (S.enqueue s ch msg) do
        S.busy_wait s
      done

    let wake_consumer s ch ~target =
      if not (S.awake_test_and_set s ch) then begin
        let c = S.counters s in
        (match target with
        | Client -> c.Counters.client_wakeups <- c.Counters.client_wakeups + 1
        | Server -> c.Counters.server_wakeups <- c.Counters.server_wakeups + 1);
        S.sem_v s ch;
        true
      end
      else false

    (* Emptiness is the [S.no_msg] sentinel, compared physically: for
       immediate messages (the real backend's slab indices) [==] is
       value equality and costs one compare, for boxed messages it is a
       pointer compare against the substrate's one distinguished block —
       either way the empty path allocates nothing, where an option
       return would box every successful dequeue.

       The wait loops below are module-level recursive functions, not
       local [let rec]s: a local loop would capture its environment in a
       closure allocated on every call (this project does not assume
       flambda), and these loops ARE the per-message consumer path of
       the zero-allocation message plane. *)
    let rec spinning_dequeue s ch =
      let m = S.dequeue s ch in
      if m != S.no_msg then m
      else begin
        S.busy_wait s;
        spinning_dequeue s ch
      end

    let count_block s = function
      | Client ->
        let c = S.counters s in
        c.Counters.client_blocks <- c.Counters.client_blocks + 1
      | Server ->
        let c = S.counters s in
        c.Counters.server_blocks <- c.Counters.server_blocks + 1

    (* The Interleaving-3 repair: the second dequeue (C.3) succeeded, so
       restore the flag with test-and-set.  If a producer already set it,
       that producer issued — or is just about to issue — a V we must
       consume, or wake-ups would accumulate and fire the *next* block
       sequence spuriously.  The drain is a non-blocking P (Figure 5),
       retried through the tiny window between the producer's test-and-set
       and its V, so no stale V is ever left behind. *)
    let drain_raced_wakeup s ch =
      if S.awake_test_and_set s ch then begin
        let c = S.counters s in
        c.Counters.race_fix_p <- c.Counters.race_fix_p + 1;
        while not (S.sem_try_p s ch) do
          S.busy_wait s
        done
      end

    (* What to do between a failed first dequeue (C.1) and clearing the
       awake flag (C.2): nothing (BSW), the §2.1 busy-wait hint (BSWY,
       BSLS) or the §6 hand-off (HANDOFF).  An enumeration rather than a
       closure on purpose — a [~on_empty:(fun () -> ...)] argument
       capturing the substrate would allocate a closure on every
       consumer call, and the zero-copy message plane promises an
       allocation-free round-trip. *)
    type empty_hint = No_hint | Hint_busy_wait | Hint_handoff_server

    let rec blocking_loop s ch ~side on_empty =
      let m = S.dequeue s ch in
      (* C.1 *)
      if m != S.no_msg then m
      else begin
        (match on_empty with
        | No_hint -> ()
        | Hint_busy_wait -> S.busy_wait s
        | Hint_handoff_server -> S.handoff_server s);
        S.awake_clear s ch;
        (* C.2 *)
        let m = S.dequeue s ch in
        (* C.3 *)
        if m != S.no_msg then begin
          drain_raced_wakeup s ch;
          m
        end
        else begin
          count_block s side;
          S.sem_p s ch;
          (* C.4 *)
          S.awake_set s ch;
          (* C.5 *)
          blocking_loop s ch ~side on_empty
        end
      end

    let blocking_dequeue s ch ~side ?(on_empty = No_hint) () =
      blocking_loop s ch ~side on_empty

    let bump_spin_iter s side =
      let c = S.counters s in
      match side with
      | Client -> c.Counters.spin_iterations <- c.Counters.spin_iterations + 1
      | Server ->
        c.Counters.server_spin_iterations <-
          c.Counters.server_spin_iterations + 1

    let bump_spin_fall s ch side =
      let c = S.counters s in
      (match side with
      | Client ->
        c.Counters.spin_fallthroughs <- c.Counters.spin_fallthroughs + 1
      | Server ->
        c.Counters.server_spin_fallthroughs <-
          c.Counters.server_spin_fallthroughs + 1);
      S.note_spin_exhausted s ch

    let rec limited_spin_loop s ch ~side ~max_spin spincnt =
      if S.queue_is_empty s ch then
        if spincnt < max_spin then begin
          bump_spin_iter s side;
          S.poll s ch;
          limited_spin_loop s ch ~side ~max_spin (spincnt + 1)
        end
        else bump_spin_fall s ch side

    let limited_spin s ch ~side ~max_spin =
      limited_spin_loop s ch ~side ~max_spin 0
  end

  let bump_sends s =
    let c = S.counters s in
    c.Counters.sends <- c.Counters.sends + 1

  let bump_receives s =
    let c = S.counters s in
    c.Counters.receives <- c.Counters.receives + 1

  let bump_replies s =
    let c = S.counters s in
    c.Counters.replies <- c.Counters.replies + 1

  (* Both Sides Spin (Figure 1): the busy-waiting baseline.  No process
     ever blocks, so performance is entirely in the scheduler's hands —
     the point of §2.2. *)
  module Bss = struct
    let send s ~client msg =
      let reply_ch = S.reply_channel s client in
      Prims.spin_enqueue s (S.request s) msg;
      let ans = Prims.spinning_dequeue s reply_ch in
      bump_sends s;
      ans

    let receive s =
      let m = Prims.spinning_dequeue s (S.request s) in
      bump_receives s;
      m

    let reply s ~client msg =
      Prims.spin_enqueue s (S.reply_channel s client) msg;
      bump_replies s
  end

  (* Both Sides Wait (Figure 5): the basic blocking protocol.  Producers
     conditionally wake the consumer with tas-guarded V operations;
     consumers run the C.1–C.5 sequence before sleeping. *)
  module Bsw = struct
    let send s ~client msg =
      let reply_ch = S.reply_channel s client in
      Prims.flow_enqueue s (S.request s) msg;
      let (_ : bool) = Prims.wake_consumer s (S.request s) ~target:Server in
      let ans = Prims.blocking_dequeue s reply_ch ~side:Prims.Client () in
      bump_sends s;
      ans

    let receive s =
      let m = Prims.blocking_dequeue s (S.request s) ~side:Prims.Server () in
      bump_receives s;
      m

    let reply s ~client msg =
      let ch = S.reply_channel s client in
      Prims.flow_enqueue s ch msg;
      let (_ : bool) = Prims.wake_consumer s ch ~target:Client in
      bump_replies s
  end

  (* Both Sides Wait and Yield (Figure 7): BSW plus busy_wait/yield calls
     that suggest hand-off scheduling to the operating system. *)
  module Bswy = struct
    let send s ~client msg =
      let reply_ch = S.reply_channel s client in
      Prims.flow_enqueue s (S.request s) msg;
      if Prims.wake_consumer s (S.request s) ~target:Server then
        (* We really did wake the server: let it run (Figure 7). *)
        S.busy_wait s;
      let ans =
        Prims.blocking_dequeue s reply_ch ~side:Prims.Client
          ~on_empty:Prims.Hint_busy_wait ()
      in
      bump_sends s;
      ans

    let receive s =
      let m = S.dequeue s (S.request s) in
      if m != S.no_msg then begin
        (* Requests pending: keep processing rather than give up the CPU —
           this is what lets the server batch under multiple clients. *)
        bump_receives s;
        m
      end
      else begin
        S.yield s;
        (* let the clients run *)
        let m = Prims.blocking_dequeue s (S.request s) ~side:Prims.Server () in
        bump_receives s;
        m
      end

    let reply s ~client msg =
      let ch = S.reply_channel s client in
      Prims.flow_enqueue s ch msg;
      let (_ : bool) = Prims.wake_consumer s ch ~target:Client in
      bump_replies s
  end

  (* Both Sides Limited Spin (Figure 9): poll the queue up to MAX_SPIN
     times before running the blocking sequence. *)
  module Bsls = struct
    let send s ~client ~max_spin msg =
      let reply_ch = S.reply_channel s client in
      Prims.flow_enqueue s (S.request s) msg;
      let (_ : bool) = Prims.wake_consumer s (S.request s) ~target:Server in
      Prims.limited_spin s reply_ch ~side:Prims.Client ~max_spin;
      let ans =
        Prims.blocking_dequeue s reply_ch ~side:Prims.Client
          ~on_empty:Prims.Hint_busy_wait ()
      in
      bump_sends s;
      ans

    let receive s ~max_spin =
      Prims.limited_spin s (S.request s) ~side:Prims.Server ~max_spin;
      let m = Prims.blocking_dequeue s (S.request s) ~side:Prims.Server () in
      bump_receives s;
      m

    let reply s ~client msg =
      let ch = S.reply_channel s client in
      Prims.flow_enqueue s ch msg;
      let (_ : bool) = Prims.wake_consumer s ch ~target:Client in
      bump_replies s
  end

  (* BSWY with the extended kernel interface of §6: every scheduling hint
     becomes an explicit handoff. *)
  module Handoff = struct
    let send s ~client msg =
      let reply_ch = S.reply_channel s client in
      Prims.flow_enqueue s (S.request s) msg;
      if Prims.wake_consumer s (S.request s) ~target:Server then
        S.handoff_server s;
      let ans =
        Prims.blocking_dequeue s reply_ch ~side:Prims.Client
          ~on_empty:Prims.Hint_handoff_server ()
      in
      bump_sends s;
      ans

    let receive s =
      let m = S.dequeue s (S.request s) in
      if m != S.no_msg then begin
        bump_receives s;
        m
      end
      else begin
        S.handoff_any s;
        (* let the clients run *)
        let m = Prims.blocking_dequeue s (S.request s) ~side:Prims.Server () in
        bump_receives s;
        m
      end

    let reply s ~client msg =
      let ch = S.reply_channel s client in
      Prims.flow_enqueue s ch msg;
      let (_ : bool) = Prims.wake_consumer s ch ~target:Client in
      bump_replies s
  end

  type iface = {
    send : S.t -> client:int -> S.msg -> S.msg;
    receive : S.t -> S.msg;
    reply : S.t -> client:int -> S.msg -> unit;
  }

  (* Overload-aware BSLS: the §5 future-work sketch.  Replies defer their
     wake-up V operations behind an admission window; deferred wake-ups
     are released on every receive — including right before the server
     would block, which is what guarantees no deferred client starves. *)
  module Bsls_throttle = struct
    type server_state = {
      max_active : int;
      mutable active : int;
          (* wake-ups issued whose follow-up request has not yet been
             received *)
      mutable pending : S.channel list; (* deferred wake-ups, oldest first *)
    }

    let server_state ~max_pending =
      if max_pending <= 0 then
        invalid_arg "Bsls_throttle.server_state: max_pending must be positive";
      { max_active = max_pending; active = 0; pending = [] }

    let pending_wakeups st = List.length st.pending

    let wake_now s st ch =
      if Prims.wake_consumer s ch ~target:Prims.Client then
        st.active <- st.active + 1

    (* Release deferred clients while the admission window has room. *)
    let release_window s st =
      let rec go () =
        match st.pending with
        | ch :: rest when st.active < st.max_active ->
          st.pending <- rest;
          wake_now s st ch;
          go ()
        | _ :: _ | [] -> ()
      in
      go ()

    let iface ~max_spin st =
      let send s ~client msg = Bsls.send s ~client ~max_spin msg in
      let receive s =
        release_window s st;
        (* Progress guarantee: if no request is waiting we may be about to
           block, and only a released client can produce the next request —
           keep releasing until a wake-up actually lands (a false return
           means the released client was already awake or has exited). *)
        if S.queue_is_empty s (S.request s) then begin
          let rec force () =
            match st.pending with
            | [] -> ()
            | ch :: rest ->
              st.pending <- rest;
              if Prims.wake_consumer s ch ~target:Prims.Client then
                st.active <- st.active + 1
              else force ()
          in
          force ()
        end;
        let m = Bsls.receive s ~max_spin in
        (* A request arrived: whoever sent it is no longer sleeping. *)
        if st.active > 0 then st.active <- st.active - 1;
        m
      in
      let reply s ~client msg =
        let ch = S.reply_channel s client in
        Prims.flow_enqueue s ch msg;
        (* Defer only while the client is still awake (spinning): the
           reply is already enqueued, so a client that clears its flag
           after this read must find it at the second dequeue (step C.3)
           and never sleeps.  A client whose flag is already clear may be
           asleep and might never be flushed if the server stops
           receiving — wake it now. *)
        if st.active < st.max_active || not (S.awake_read s ch) then
          wake_now s st ch
        else st.pending <- st.pending @ [ ch ];
        bump_replies s
      in
      { send; receive; reply }
  end
end
