(* Both Sides Limited Spin (Figure 9): before running the blocking
   sequence, both sides poll their queue up to MAX_SPIN times.  Each poll
   is a yield on a uniprocessor (a hand-off attempt) and a 25 µs checking
   delay loop on a multiprocessor.  §4.2 reports that at MAX_SPIN = 20 a
   single client blocks only 3% of the time and sees its reply within ~2
   poll iterations.  Instantiated from Protocol_core over the simulated
   substrate. *)

include Sim_protocols.Bsls
