(* Both Sides Limited Spin (Figure 9): before running the blocking
   sequence, both sides poll their queue up to MAX_SPIN times.  Each poll
   is a yield on a uniprocessor (a hand-off attempt) and a 25 µs checking
   delay loop on a multiprocessor.  §4.2 reports that at MAX_SPIN = 20 a
   single client blocks only 3% of the time and sees its reply within ~2
   poll iterations. *)

let send (s : Session.t) ~client ~max_spin msg =
  Prims.flow_enqueue s s.Session.request msg;
  let (_ : bool) = Prims.wake_consumer s s.Session.request ~target:Server in
  let reply_ch = Session.reply_channel s client in
  Prims.limited_spin s reply_ch ~side:Client ~max_spin;
  let ans =
    Prims.blocking_dequeue s reply_ch ~side:Client
      ~on_empty:(fun () -> Prims.busy_wait s)
      ()
  in
  s.Session.counters.Counters.sends <- s.Session.counters.Counters.sends + 1;
  ans

let receive (s : Session.t) ~max_spin =
  Prims.limited_spin s s.Session.request ~side:Server ~max_spin;
  let m = Prims.blocking_dequeue s s.Session.request ~side:Server () in
  s.Session.counters.Counters.receives <-
    s.Session.counters.Counters.receives + 1;
  m

let reply (s : Session.t) ~client msg =
  let ch = Session.reply_channel s client in
  Prims.flow_enqueue s ch msg;
  let (_ : bool) = Prims.wake_consumer s ch ~target:Client in
  s.Session.counters.Counters.replies <- s.Session.counters.Counters.replies + 1
