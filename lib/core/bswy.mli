(** Both Sides Wait and Yield (Figure 7): BSW plus [busy_wait]/[yield]
    calls that suggest hand-off scheduling.

    The client busy-waits right after actually waking the server and once
    more when it first finds the reply queue empty; the server yields once
    before entering its blocking sequence so clients can enqueue follow-up
    requests (the multi-client batching path).  Effective for one or two
    clients; with more, a yield that does not transfer control to the
    server only lengthens the critical path (§4.1). *)

val send : Session.t -> client:int -> Message.t -> Message.t
val receive : Session.t -> Message.t
val reply : Session.t -> client:int -> Message.t -> unit
