(** The fixed-size IPC message (§2.1).

    The paper uses 24-byte messages carrying an opcode identifying the
    request type, the number of the reply channel the response should use,
    and a double-precision argument.  Fixed-size messages permit efficient
    free-pool management; variable-sized payloads are accommodated by
    letting a field point at a separate shared region — here represented
    by the [arg]/[aux] pair.  [seq] is a sequence number the tests and
    integrity checks use; it stands in for application data. *)

type opcode =
  | Connect  (** join the server's session; reply doubles as a barrier *)
  | Echo  (** echo [arg] back — the paper's benchmark request *)
  | Disconnect  (** last message of a client *)
  | Custom of int  (** application-defined request types *)

type t = {
  opcode : opcode;
  reply_chan : int;  (** index of the reply queue for the response *)
  arg : float;
  seq : int;
}

val make : opcode:opcode -> reply_chan:int -> ?seq:int -> float -> t
val echo_reply : t -> t
(** The server's echo response: same payload, same sequence number. *)

val opcode_equal : opcode -> opcode -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
