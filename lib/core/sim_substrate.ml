(* The simulated-OS instantiation of Substrate.S: queues and flags live in
   cost-charged shared memory, the semaphore and the scheduling hints are
   syscall effects the simulated kernel interprets.  Every function here
   is exactly the substrate-specific half of what lib/core's protocols did
   before the functorization. *)

open Ulipc_engine
open Ulipc_os
open Ulipc_shm

type t = Session.t
type channel = Channel.t
type msg = Message.t

let request (s : Session.t) = s.Session.request
let reply_channel = Session.reply_channel
let enqueue (_ : t) (ch : channel) m = Ms_queue.enqueue ch.Channel.queue m
let dequeue (_ : t) (ch : channel) = Ms_queue.dequeue ch.Channel.queue
let queue_is_empty (_ : t) (ch : channel) = Ms_queue.is_empty ch.Channel.queue
let awake_test_and_set (_ : t) ch = Mem.Flag.test_and_set ch.Channel.awake
let awake_clear (_ : t) ch = Mem.Flag.write ch.Channel.awake false
let awake_set (_ : t) ch = Mem.Flag.write ch.Channel.awake true
let awake_read (_ : t) ch = Mem.Flag.read ch.Channel.awake
let sem_p (_ : t) ch = Usys.sem_p ch.Channel.sem
let sem_v (_ : t) ch = Usys.sem_v ch.Channel.sem

(* A single non-blocking semop: the count peek is an uncharged kernel-state
   read so the whole operation costs exactly one system call — the same
   charge the pre-functor code paid for its (never-blocking) plain P. *)
let sem_try_p (s : t) ch =
  if Kernel.sem_value s.Session.kernel ch.Channel.sem > 0 then begin
    Usys.sem_p ch.Channel.sem;
    true
  end
  else false

let busy_wait (s : t) =
  if s.Session.multiprocessor then Usys.work s.Session.costs.Costs.spin_delay
  else Usys.yield ()

(* On a multiprocessor, slice the 25 µs poll into 1 µs pieces and re-check
   emptiness on every slice (§5: "the empty check is made on every
   iteration"), so a reply arriving mid-poll is noticed promptly. *)
let poll (s : t) (ch : channel) =
  if s.Session.multiprocessor then begin
    let slice = Sim_time.us 1 in
    let slices = max 1 (s.Session.costs.Costs.poll_spin / slice) in
    let rec go i =
      if i < slices && Ms_queue.is_empty ch.Channel.queue then begin
        Usys.work slice;
        go (i + 1)
      end
    in
    go 0
  end
  else Usys.yield ()

let yield (_ : t) = Usys.yield ()

let handoff_server (s : t) =
  if s.Session.server_pid > 0 then
    Usys.handoff (Syscall.To_pid s.Session.server_pid)
  else
    (* Server not registered yet (connection phase): plain yield. *)
    Usys.yield ()

let handoff_any (_ : t) = Usys.handoff Syscall.To_any
let flow_sleep (_ : t) = Usys.sleep (Sim_time.sec 1)
let counters (s : t) = s.Session.counters
