(* The simulated-OS instantiation of Substrate.S: queues and flags live in
   cost-charged shared memory, the semaphore and the scheduling hints are
   syscall effects the simulated kernel interprets.  Every function here
   is exactly the substrate-specific half of what lib/core's protocols did
   before the functorization.

   Event emission reads the kernel's clock and current pid directly —
   uncharged instrumentation reads, not [Usys] syscalls — so attaching a
   sink changes nothing about the simulated run.  Timestamps follow the
   causal discipline shared with the real backend: producer-side events
   (Enqueue, Wake, Block) are stamped before the operation and Dequeue
   after it, so a merged cross-proc stream never shows an effect before
   its cause even when a proc is preempted mid-operation. *)

open Ulipc_engine
open Ulipc_os
open Ulipc_shm

type t = Session.t
type channel = Channel.t
type msg = Message.t

(* The simulator keeps its boxed Message.t view; the conversion seam to
   the core's sentinel-based dequeue is this one distinguished block,
   compared physically.  It is allocated once here and never enqueued,
   so [==] can only be true for the sentinel itself. *)
let no_msg : msg = Message.make ~opcode:(Custom (-1)) ~reply_chan:(-1) nan

let now_us (s : Session.t) = Sim_time.to_us (Kernel.now s.Session.kernel)

let emit_at (s : Session.t) (ch : channel) kind ~t_us =
  match s.Session.events with
  | None -> ()
  | Some sink ->
    Ulipc_observe.Sink.record sink kind ~t_us
      ~actor:(Kernel.current_pid s.Session.kernel)
      ~chan:ch.Channel.id

let emit (s : Session.t) (ch : channel) kind =
  match s.Session.events with
  | None -> ()
  | Some _ -> emit_at s ch kind ~t_us:(now_us s)

let request (s : Session.t) = s.Session.request
let reply_channel = Session.reply_channel

let enqueue (s : t) (ch : channel) m =
  match s.Session.events with
  | None -> Ms_queue.enqueue ch.Channel.queue m
  | Some _ ->
    let t_us = now_us s in
    let ok = Ms_queue.enqueue ch.Channel.queue m in
    if ok then emit_at s ch Ulipc_observe.Event.Enqueue ~t_us;
    ok

let dequeue (s : t) (ch : channel) =
  match Ms_queue.dequeue ch.Channel.queue with
  | Some m ->
    emit s ch Ulipc_observe.Event.Dequeue;
    m
  | None -> no_msg

let queue_is_empty (_ : t) (ch : channel) = Ms_queue.is_empty ch.Channel.queue
let awake_test_and_set (_ : t) ch = Mem.Flag.test_and_set ch.Channel.awake
let awake_clear (_ : t) ch = Mem.Flag.write ch.Channel.awake false
let awake_set (_ : t) ch = Mem.Flag.write ch.Channel.awake true
let awake_read (_ : t) ch = Mem.Flag.read ch.Channel.awake

let sem_p (s : t) ch =
  emit s ch Ulipc_observe.Event.Block;
  Usys.sem_p ch.Channel.sem

let sem_v (s : t) ch =
  emit s ch Ulipc_observe.Event.Wake;
  Usys.sem_v ch.Channel.sem

(* A single non-blocking semop: the count peek is an uncharged kernel-state
   read so the whole operation costs exactly one system call — the same
   charge the pre-functor code paid for its (never-blocking) plain P. *)
let sem_try_p (s : t) ch =
  if Kernel.sem_value s.Session.kernel ch.Channel.sem > 0 then begin
    Usys.sem_p ch.Channel.sem;
    emit s ch Ulipc_observe.Event.Wake_drain;
    true
  end
  else false

let busy_wait (s : t) =
  if s.Session.multiprocessor then Usys.work s.Session.costs.Costs.spin_delay
  else Usys.yield ()

(* On a multiprocessor, slice the 25 µs poll into 1 µs pieces and re-check
   emptiness on every slice (§5: "the empty check is made on every
   iteration"), so a reply arriving mid-poll is noticed promptly. *)
let poll (s : t) (ch : channel) =
  if s.Session.multiprocessor then begin
    let slice = Sim_time.us 1 in
    let slices = max 1 (s.Session.costs.Costs.poll_spin / slice) in
    let rec go i =
      if i < slices && Ms_queue.is_empty ch.Channel.queue then begin
        Usys.work slice;
        go (i + 1)
      end
    in
    go 0
  end
  else Usys.yield ()

let yield (_ : t) = Usys.yield ()

let handoff_server (s : t) =
  emit s s.Session.request Ulipc_observe.Event.Handoff;
  if s.Session.server_pid > 0 then
    Usys.handoff (Syscall.To_pid s.Session.server_pid)
  else
    (* Server not registered yet (connection phase): plain yield. *)
    Usys.yield ()

let handoff_any (s : t) =
  emit s s.Session.request Ulipc_observe.Event.Handoff;
  Usys.handoff Syscall.To_any

let flow_sleep (_ : t) = Usys.sleep (Sim_time.sec 1)

let note_spin_exhausted (s : t) ch =
  emit s ch Ulipc_observe.Event.Spin_exhaust

let counters (s : t) = s.Session.counters
