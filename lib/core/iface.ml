type t = {
  send : Session.t -> client:int -> Message.t -> Message.t;
  receive : Session.t -> Message.t;
  reply : Session.t -> client:int -> Message.t -> unit;
}

let of_kind kind =
  match kind with
  | Protocol_kind.BSS ->
    { send = Bss.send; receive = Bss.receive; reply = Bss.reply }
  | Protocol_kind.BSW ->
    { send = Bsw.send; receive = Bsw.receive; reply = Bsw.reply }
  | Protocol_kind.BSWY ->
    { send = Bswy.send; receive = Bswy.receive; reply = Bswy.reply }
  | Protocol_kind.BSLS max_spin | Protocol_kind.ADAPT max_spin ->
    {
      send = (fun s ~client msg -> Bsls.send s ~client ~max_spin msg);
      receive = (fun s -> Bsls.receive s ~max_spin);
      reply = Bsls.reply;
    }
  | Protocol_kind.SYSV ->
    { send = Sysv_ipc.send; receive = Sysv_ipc.receive; reply = Sysv_ipc.reply }
  | Protocol_kind.HANDOFF ->
    {
      send = Handoff_ipc.send;
      receive = Handoff_ipc.receive;
      reply = Handoff_ipc.reply;
    }
  | Protocol_kind.CSEM ->
    { send = Csem.send; receive = Csem.receive; reply = Csem.reply }
