(* The producer and consumer halves match the session's protocol family:
   spinning for BSS, per-item semaphore grants for CSEM, and the
   tas-guarded awake-flag wake-up for every blocking protocol. *)

open Ulipc_os

let post (s : Session.t) ~client msg =
  match s.Session.kind with
  | Protocol_kind.BSS ->
    ignore (client : int);
    Prims.spin_enqueue s s.Session.request msg
  | Protocol_kind.CSEM ->
    Prims.flow_enqueue s s.Session.request msg;
    Usys.sem_v s.Session.request.Channel.sem
  | Protocol_kind.SYSV ->
    (* System V is naturally asynchronous: msgsnd does not wait. *)
    Usys.msgsnd s.Session.sysv_request ~mtype:Sysv_ipc.request_mtype
      (s.Session.inject msg)
  | Protocol_kind.BSW | Protocol_kind.BSWY | Protocol_kind.BSLS _
  | Protocol_kind.ADAPT _ | Protocol_kind.HANDOFF ->
    Prims.flow_enqueue s s.Session.request msg;
    let (_ : bool) = Prims.wake_consumer s s.Session.request ~target:Server in
    ()

let collect (s : Session.t) ~client =
  let ch = Session.reply_channel s client in
  match s.Session.kind with
  | Protocol_kind.BSS -> Prims.spinning_dequeue s ch
  | Protocol_kind.CSEM ->
    Usys.sem_p ch.Channel.sem;
    let rec take () =
      match Ulipc_shm.Ms_queue.dequeue ch.Channel.queue with
      | Some m -> m
      | None -> take ()
    in
    take ()
  | Protocol_kind.SYSV -> (
    match
      s.Session.project
        (Usys.msgrcv s.Session.sysv_reply
           ~mtype:(Session.sysv_reply_mtype ~client))
    with
    | Some m -> m
    | None -> invalid_arg "Async.collect: foreign payload in session queue")
  | Protocol_kind.BSW | Protocol_kind.BSWY | Protocol_kind.BSLS _
  | Protocol_kind.ADAPT _ | Protocol_kind.HANDOFF ->
    Prims.blocking_dequeue s ch ~side:Client ()

let try_collect (s : Session.t) ~client =
  Ulipc_shm.Ms_queue.dequeue (Session.reply_channel s client).Channel.queue

let call_batch s ~client msgs =
  List.iter (post s ~client) msgs;
  List.map (fun (_ : Message.t) -> collect s ~client) msgs
