type entry = { proc : Proc.t; seq : int }
type t = { mutable entries : entry list; mutable next_seq : int }

let create () = { entries = []; next_seq = 0 }

let mem t p = List.exists (fun e -> e.proc == p) t.entries

let add t p =
  if mem t p then invalid_arg "Ready_set.add: process already queued";
  t.entries <- t.entries @ [ { proc = p; seq = t.next_seq } ];
  t.next_seq <- t.next_seq + 1

let remove t p =
  let present = mem t p in
  if present then t.entries <- List.filter (fun e -> e.proc != p) t.entries;
  present

let count t = List.length t.entries
let is_empty t = t.entries = []
let to_list t = List.map (fun e -> e.proc) t.entries

let take_first t =
  match t.entries with
  | [] -> None
  | e :: rest ->
    t.entries <- rest;
    Some e.proc

(* Lowest score wins; FIFO (lowest seq) among equals.  Entries are kept in
   seq order, so the first strictly-better entry encountered wins. *)
let best_entry entries ~score ~skip =
  let better candidate incumbent =
    match incumbent with
    | None -> true
    | Some (inc_score, _) -> candidate < inc_score
  in
  List.fold_left
    (fun acc e ->
      if skip e.proc then acc
      else
        let s = score e.proc in
        if better s acc then Some (s, e) else acc)
    None entries

let peek_best t ~score =
  match best_entry t.entries ~score ~skip:(fun _ -> false) with
  | None -> None
  | Some (_, e) -> Some e.proc

let take_best t ~score =
  match peek_best t ~score with
  | None -> None
  | Some p ->
    ignore (remove t p : bool);
    Some p

let take_best_excluding t ~score p =
  match best_entry t.entries ~score ~skip:(fun q -> q == p) with
  | Some (_, e) ->
    ignore (remove t e.proc : bool);
    Some e.proc
  | None ->
    (* [p] may be the only member. *)
    take_best t ~score
