type pid = int
type sem_id = int
type msq_id = int

type handoff_target = To_pid of pid | To_self | To_any

type usage = {
  voluntary_switches : int;
  involuntary_switches : int;
  cpu_time : Ulipc_engine.Sim_time.t;
  syscalls : int;
}

type _ t =
  | Yield : unit t
  | Handoff : handoff_target -> unit t
  | Sem_p : sem_id -> unit t
  | Sem_v : sem_id -> unit t
  | Sem_value : sem_id -> int t
  | Msg_snd : msq_id * int * Ulipc_engine.Univ.t -> unit t
  | Msg_rcv : msq_id * int -> Ulipc_engine.Univ.t t
  | Sleep : Ulipc_engine.Sim_time.t -> unit t
  | Get_time : Ulipc_engine.Sim_time.t t
  | Get_usage : usage t
  | Set_fixed_priority : bool -> bool t
  | Get_pid : pid t

let pp_request (type a) ppf (req : a t) =
  match req with
  | Yield -> Format.pp_print_string ppf "yield"
  | Handoff (To_pid p) -> Format.fprintf ppf "handoff(pid %d)" p
  | Handoff To_self -> Format.pp_print_string ppf "handoff(self)"
  | Handoff To_any -> Format.pp_print_string ppf "handoff(any)"
  | Sem_p s -> Format.fprintf ppf "P(sem %d)" s
  | Sem_v s -> Format.fprintf ppf "V(sem %d)" s
  | Sem_value s -> Format.fprintf ppf "semvalue(sem %d)" s
  | Msg_snd (q, ty, _) -> Format.fprintf ppf "msgsnd(q %d, type %d)" q ty
  | Msg_rcv (q, ty) -> Format.fprintf ppf "msgrcv(q %d, type %d)" q ty
  | Sleep d -> Format.fprintf ppf "sleep(%a)" Ulipc_engine.Sim_time.pp d
  | Get_time -> Format.pp_print_string ppf "gettime"
  | Get_usage -> Format.pp_print_string ppf "getrusage"
  | Set_fixed_priority b -> Format.fprintf ppf "setfixedprio(%b)" b
  | Get_pid -> Format.pp_print_string ppf "getpid"
