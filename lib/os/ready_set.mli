(** The set of runnable processes, shared by all scheduling policies.

    Keeps insertion order (a monotonically increasing sequence number) so
    ties between equal-priority processes resolve FIFO and runs stay
    deterministic.  Process counts in the reproduced experiments are tiny
    (≤ a dozen), so a linked list with linear scans is the simplest correct
    structure. *)

type t

val create : unit -> t
val add : t -> Proc.t -> unit
(** @raise Invalid_argument if the process is already in the set. *)

val remove : t -> Proc.t -> bool
(** [remove t p] takes [p] out; returns whether it was present. *)

val mem : t -> Proc.t -> bool
val count : t -> int
val is_empty : t -> bool

val to_list : t -> Proc.t list
(** In FIFO (insertion) order. *)

val take_first : t -> Proc.t option
(** Remove and return the longest-waiting process. *)

val take_best : t -> score:(Proc.t -> float) -> Proc.t option
(** Remove and return the process with the {e lowest} score; FIFO among
    equal scores. *)

val peek_best : t -> score:(Proc.t -> float) -> Proc.t option
(** Like {!take_best} without removing. *)

val take_best_excluding : t -> score:(Proc.t -> float) -> Proc.t -> Proc.t option
(** [take_best_excluding t ~score p] is {!take_best} ignoring [p], unless
    [p] is the only member, in which case [p] is taken. *)
