(** The simulated kernel.

    Drives processes over one or more CPUs under a scheduling policy,
    implements the system calls of {!Syscall}, and accounts every cost from
    the machine's {!Costs} model.  The simulation is a discrete-event loop:
    each process step (the code between two effects) executes atomically at
    a simulated instant, and all steps across all CPUs are serialised in
    global time order, so runs are exactly deterministic. *)

exception Proc_failure of string * exn
(** Raised by {!run} when a process body raised: carries the process name
    and the original exception. *)

type t

type run_result =
  | Completed  (** every process ran to completion *)
  | Deadlock of Proc.t list
      (** no event remains but these processes are still blocked *)
  | Time_limit  (** the [until] horizon was reached *)
  | Step_limit  (** the safety cap on executed steps was reached *)

val create :
  ?trace:Ulipc_engine.Trace.t ->
  ?max_steps:int ->
  ncpus:int ->
  policy:Policy.t ->
  costs:Costs.t ->
  unit ->
  t
(** A fresh kernel.  [max_steps] (default 200 million) bounds total process
    steps as a runaway-spin safety net. *)

val spawn : t -> name:string -> (unit -> unit) -> Proc.t
(** Create a ready process.  May be called before or during [run] (from
    outside process context). *)

val new_sem : t -> init:int -> Syscall.sem_id
(** A counting semaphore with the given initial count (≥ 0). *)

val new_msgq : t -> capacity:int -> Syscall.msq_id
(** A System-V-style message queue holding at most [capacity] messages. *)

val run : ?until:Ulipc_engine.Sim_time.t -> t -> run_result
(** Run until no events remain or a limit is hit.
    @raise Proc_failure if any process body raises. *)

val now : t -> Ulipc_engine.Sim_time.t

val current_pid : t -> int
(** Pid of the process currently being stepped (0 outside a step).  An
    uncharged instrumentation read — unlike [Usys.pid ()] it performs no
    syscall effect, so observers can attribute events to the running
    process without perturbing the simulation. *)

val trace : t -> Ulipc_engine.Trace.t
val procs : t -> Proc.t list
(** All processes ever spawned, in spawn order. *)

val live_count : t -> int
val steps_executed : t -> int

val sem_value : t -> Syscall.sem_id -> int
(** Current count (kernel-side view); for tests. *)

val sem_waiters : t -> Syscall.sem_id -> int
(** Number of processes blocked on the semaphore; for tests. *)

val msgq_length : t -> Syscall.msq_id -> int
(** Messages currently queued; for tests. *)

val cpu_busy : t -> int -> Ulipc_engine.Sim_time.t
(** Accumulated busy time (process execution plus context-switch
    overhead) of the given CPU. *)

val utilization : t -> float
(** Machine utilization so far: total busy time over [ncpus × now];
    in [0, 1]. *)

val pp_result : Format.formatter -> run_result -> unit
