(** User-side API for simulated processes.

    These functions may only be called from inside a process body spawned
    with {!Kernel.spawn}; they perform effects the kernel interprets.
    Calling them outside a simulation raises [Effect.Unhandled]. *)

val work : Ulipc_engine.Sim_time.t -> unit
(** Consume CPU for the given duration.  The memory side effects of the
    code following [work] happen atomically when the duration has been
    charged. *)

val yield : unit -> unit
(** Give the scheduler a chance to run someone else.  Whether a context
    switch actually happens is entirely up to the policy — the point the
    paper turns on. *)

val handoff : Syscall.handoff_target -> unit
(** The paper's proposed hand-off scheduling call (§6). *)

val sem_p : Syscall.sem_id -> unit
(** Down/P: block while the count is zero. *)

val sem_v : Syscall.sem_id -> unit
(** Up/V: wake one waiter or increment the count.  Does not reschedule. *)

val sem_value : Syscall.sem_id -> int

val msgsnd : Syscall.msq_id -> mtype:int -> Ulipc_engine.Univ.t -> unit
(** Kernel-mediated send; blocks while the queue is full. *)

val msgrcv : Syscall.msq_id -> mtype:int -> Ulipc_engine.Univ.t
(** Kernel-mediated receive; [mtype = 0] takes the queue head, a positive
    [mtype] the first message of that type.  Blocks while empty. *)

val sleep : Ulipc_engine.Sim_time.t -> unit
val time : unit -> Ulipc_engine.Sim_time.t
val usage : unit -> Syscall.usage
val set_fixed_priority : bool -> bool
val pid : unit -> Syscall.pid
