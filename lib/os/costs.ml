open Ulipc_engine

type t = {
  syscall_entry : Sim_time.t;
  yield_body : Sim_time.t;
  ctx_switch : Sim_time.t;
  ctx_switch_per_ready : Sim_time.t;
  sem_op : Sim_time.t;
  msg_op : Sim_time.t;
  sleep_setup : Sim_time.t;
  block_extra : Sim_time.t;
  wake_extra : Sim_time.t;
  time_read : Sim_time.t;
  shared_read : Sim_time.t;
  shared_write : Sim_time.t;
  tas : Sim_time.t;
  flag_write : Sim_time.t;
  queue_op_body : Sim_time.t;
  poll_spin : Sim_time.t;
  spin_delay : Sim_time.t;
}

let default =
  {
    syscall_entry = Sim_time.us 5;
    yield_body = Sim_time.us 2;
    ctx_switch = Sim_time.us 10;
    ctx_switch_per_ready = Sim_time.zero;
    sem_op = Sim_time.us 10;
    msg_op = Sim_time.us 15;
    sleep_setup = Sim_time.us 2;
    block_extra = Sim_time.us 5;
    wake_extra = Sim_time.us 5;
    time_read = Sim_time.ns 200;
    shared_read = Sim_time.ns 100;
    shared_write = Sim_time.ns 150;
    tas = Sim_time.ns 300;
    flag_write = Sim_time.ns 150;
    queue_op_body = Sim_time.ns 600;
    poll_spin = Sim_time.us 25;
    spin_delay = Sim_time.us 1;
  }

let pp ppf c =
  Format.fprintf ppf
    "@[<v>syscall_entry=%a yield_body=%a ctx_switch=%a (+%a/ready)@,\
     sem_op=%a msg_op=%a sleep_setup=%a block/wake extra=%a/%a time_read=%a@,\
     shared r/w=%a/%a tas=%a queue_op=%a poll_spin=%a@]"
    Sim_time.pp c.syscall_entry Sim_time.pp c.yield_body Sim_time.pp
    c.ctx_switch Sim_time.pp c.ctx_switch_per_ready Sim_time.pp c.sem_op
    Sim_time.pp c.msg_op Sim_time.pp c.sleep_setup Sim_time.pp c.block_extra
    Sim_time.pp c.wake_extra Sim_time.pp c.time_read
    Sim_time.pp c.shared_read Sim_time.pp c.shared_write Sim_time.pp c.tas
    Sim_time.pp c.queue_op_body Sim_time.pp c.poll_spin
