open Ulipc_engine

type params = {
  quantum : Sim_time.t;
  tick : Sim_time.t;
  affinity_bonus : float;
  modified_yield : bool;
  handoff_penalty_ns : float;
}

let default_params =
  {
    quantum = Sim_time.ms 30;
    tick = Sim_time.ms 10;
    affinity_bonus = 5.0e6 (* half a tick, in ns *);
    modified_yield = false;
    handoff_penalty_ns = 5.0e4;
  }

type state = {
  p : params;
  ready : Ready_set.t;
  mutable hint : Policy.hint option;
  mutable last_run : Proc.t option;
}

(* Lower score wins the pick, so score is the negated counter; the process
   that ran last gets an affinity bonus, which is what keeps an unmodified
   sched_yield returning to its caller between timer ticks. *)
let score st proc =
  let bonus =
    match st.last_run with Some q when q == proc -> st.p.affinity_bonus | _ -> 0.0
  in
  -.(proc.Proc.counter +. bonus)

let refill st proc = proc.Proc.counter <- float_of_int st.p.quantum

(* Counters drain at tick granularity: CPU consumption accumulates in
   [usage] and is converted to counter decrements one whole tick at a
   time. *)
let charge st proc ~ran =
  proc.Proc.usage <- proc.Proc.usage +. float_of_int ran;
  let tick = float_of_int st.p.tick in
  while proc.Proc.usage >= tick do
    proc.Proc.usage <- proc.Proc.usage -. tick;
    proc.Proc.counter <- proc.Proc.counter -. tick
  done

let epoch st extra =
  List.iter (refill st) (Ready_set.to_list st.ready);
  match extra with Some p -> refill st p | None -> ()

let create p =
  let st = { p; ready = Ready_set.create (); hint = None; last_run = None } in
  let enqueue proc reason ~now:(_ : Sim_time.t) =
    (match reason with
    | Policy.New | Policy.Woken ->
      (* A process that blocked (or just arrived) returns with a fresh
         quantum, approximating the priority boost sleepers accumulate. *)
      refill st proc
    | Policy.Preempted | Policy.Yielded -> ());
    Ready_set.add st.ready proc
  in
  let pick ~now:(_ : Sim_time.t) =
    let hint = st.hint in
    st.hint <- None;
    if
      (not (Ready_set.is_empty st.ready))
      && List.for_all
           (fun q -> q.Proc.counter <= 0.0)
           (Ready_set.to_list st.ready)
    then epoch st None;
    let chosen =
      match hint with
      | Some (Policy.Favor target) when Ready_set.mem st.ready target ->
        (* §6: a hint, not a directive — bump the target's counter so it is
           favoured, and charge it the small penalty that keeps a malicious
           client from using handoff to monopolise the CPU.  Scheduling
           still goes through the normal pick, so a backlog of other ready
           processes (the batching case) is not jumped over. *)
        target.Proc.counter <-
          target.Proc.counter +. st.p.affinity_bonus -. st.p.handoff_penalty_ns;
        Ready_set.take_best st.ready ~score:(score st)
      | Some (Policy.Avoid shunned) ->
        Ready_set.take_best_excluding st.ready ~score:(score st) shunned
      | Some (Policy.Favor _) | None -> Ready_set.take_best st.ready ~score:(score st)
    in
    (match chosen with Some q -> st.last_run <- Some q | None -> ());
    chosen
  in
  let should_preempt proc ~now:(_ : Sim_time.t) =
    if Ready_set.is_empty st.ready then false
    else begin
      if
        proc.Proc.counter <= 0.0
        && List.for_all
             (fun q -> q.Proc.counter <= 0.0)
             (Ready_set.to_list st.ready)
      then epoch st (Some proc);
      match Ready_set.peek_best st.ready ~score:(score st) with
      | None -> false
      | Some best ->
        best.Proc.counter > proc.Proc.counter +. st.p.affinity_bonus
    end
  in
  let on_yield proc ~now:(_ : Sim_time.t) =
    if st.p.modified_yield then begin
      (* The paper's fix: expire the caller's quantum and drop its affinity
         advantage so the yield forces a context switch. *)
      proc.Proc.counter <- 0.0;
      match st.last_run with
      | Some q when q == proc -> st.last_run <- None
      | Some _ | None -> ()
    end
  in
  {
    Policy.name = (if p.modified_yield then "linux-mod" else "linux-1.0");
    enqueue;
    pick;
    ready_count = (fun () -> Ready_set.count st.ready);
    charge = (fun proc ~ran ~now:(_ : Sim_time.t) -> charge st proc ~ran);
    should_preempt;
    on_yield;
    set_hint = (fun h -> st.hint <- Some h);
    supports_fixed_priority = false;
    remove = (fun proc -> ignore (Ready_set.remove st.ready proc : bool));
  }
