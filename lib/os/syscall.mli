(** System call requests understood by the simulated kernel.

    The request type is a GADT so each call site gets a correctly typed
    reply without downcasts.  User code does not build requests directly;
    it uses the wrappers in {!Usys}. *)

type pid = int
type sem_id = int
type msq_id = int

type handoff_target =
  | To_pid of pid  (** hint: schedule this process next *)
  | To_self  (** same semantics as [yield] *)
  | To_any
      (** put the caller at the back and let the best ready process run,
          even one whose priority is currently worse than the caller's *)

type usage = {
  voluntary_switches : int;
      (** context switches where the process gave up the CPU (block,
          yield-that-switched) *)
  involuntary_switches : int;  (** preemptions *)
  cpu_time : Ulipc_engine.Sim_time.t;  (** total CPU consumed *)
  syscalls : int;  (** number of system calls performed *)
}

type _ t =
  | Yield : unit t
  | Handoff : handoff_target -> unit t
  | Sem_p : sem_id -> unit t
  | Sem_v : sem_id -> unit t
  | Sem_value : sem_id -> int t  (** non-standard; used by tests *)
  | Msg_snd : msq_id * int * Ulipc_engine.Univ.t -> unit t
      (** the [int] is the System-V [mtype] of the message, must be > 0 *)
  | Msg_rcv : msq_id * int -> Ulipc_engine.Univ.t t
      (** the [int] is a System-V [mtype] selector: 0 takes the head of the
          queue, [n > 0] takes the first message sent with type [n] *)
  | Sleep : Ulipc_engine.Sim_time.t -> unit t
  | Get_time : Ulipc_engine.Sim_time.t t
  | Get_usage : usage t
  | Set_fixed_priority : bool -> bool t
      (** request the non-degrading scheduling class; returns whether the
          running policy supports it *)
  | Get_pid : pid t

val pp_request : Format.formatter -> 'a t -> unit
(** One-line description, for traces. *)
