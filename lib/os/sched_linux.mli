(** Linux-1.0-style counter scheduler.

    Each process owns a counter refilled to the quantum at scheduling
    epochs; the scheduler runs the ready process with the largest counter,
    with a small affinity bonus for the process that ran last.  Crucially,
    counters drain only at {e timer-tick} granularity, so an unmodified
    [sched_yield] between two equal-counter spinners returns to the caller
    until a whole tick has been accounted — this is what turns the paper's
    expected 120 µs round-trip into ~33 ms on the stock Linux 1.0.32
    scheduler (§6).  With [modified_yield] the caller's counter is expired
    on every yield, forcing a context switch, which restores the 120 µs
    round-trip. *)

type params = {
  quantum : Ulipc_engine.Sim_time.t;  (** counter refill at an epoch *)
  tick : Ulipc_engine.Sim_time.t;  (** usage accounting granularity *)
  affinity_bonus : float;
      (** tie-break advantage (in ns of counter) for the last-run process *)
  modified_yield : bool;  (** [sched_yield] expires the caller's quantum *)
  handoff_penalty_ns : float;
      (** counter charged to a process scheduled through a hand-off hint —
          enough that a malicious client cannot monopolise the CPU via
          [handoff], small enough not to starve a busy server (§6) *)
}

val default_params : params
val create : params -> Policy.t
