(** Fixed-priority round-robin policy.

    All processes share one priority level and schedule FIFO; [yield]
    always hands the CPU to the longest-waiting ready process.  This is the
    idealised non-degrading scheduler the paper approximates with
    super-user real-time priorities, kept as a separate policy both as the
    simplest reference implementation and for unit-testing the kernel. *)

type params = { quantum : Ulipc_engine.Sim_time.t }

val default_params : params
val create : params -> Policy.t
