open Ulipc_engine

type params = { quantum : Sim_time.t }

let default_params = { quantum = Sim_time.ms 100 }

type state = { ready : Ready_set.t; mutable hint : Policy.hint option }

let create p =
  let st = { ready = Ready_set.create (); hint = None } in
  let pick ~now:(_ : Sim_time.t) =
    let hint = st.hint in
    st.hint <- None;
    match hint with
    | Some (Policy.Favor target) when Ready_set.mem st.ready target ->
      ignore (Ready_set.remove st.ready target : bool);
      Some target
    | Some (Policy.Avoid shunned) ->
      Ready_set.take_best_excluding st.ready
        ~score:(fun (_ : Proc.t) -> 0.0)
        shunned
    | Some (Policy.Favor _) | None -> Ready_set.take_first st.ready
  in
  {
    Policy.name = "fixed-rr";
    enqueue =
      (fun proc (_ : Policy.reason) ~now:(_ : Sim_time.t) ->
        Ready_set.add st.ready proc);
    pick;
    ready_count = (fun () -> Ready_set.count st.ready);
    charge = (fun (_ : Proc.t) ~ran:(_ : Sim_time.t) ~now:(_ : Sim_time.t) -> ());
    should_preempt =
      (fun proc ~now:(_ : Sim_time.t) ->
        proc.Proc.quantum_used >= p.quantum
        && not (Ready_set.is_empty st.ready));
    on_yield = (fun (_ : Proc.t) ~now:(_ : Sim_time.t) -> ());
    set_hint = (fun h -> st.hint <- Some h);
    supports_fixed_priority = true;
    remove = (fun proc -> ignore (Ready_set.remove st.ready proc : bool));
  }
