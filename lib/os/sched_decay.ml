open Ulipc_engine

type params = {
  usage_weight : float;
  band_ns : float;
  half_life_ns : float;
  quantum : Sim_time.t;
  preempt_margin_bands : float;
  handoff_penalty_ns : float;
  supports_fixed : bool;
}

let default_params =
  {
    usage_weight = 1.0;
    band_ns = 4.0e4 (* 40 us *);
    half_life_ns = 2.0e8 (* 200 ms *);
    quantum = Sim_time.ms 100;
    preempt_margin_bands = 2.0;
    handoff_penalty_ns = 2.0e4;
    supports_fixed = true;
  }

type state = {
  p : params;
  ready : Ready_set.t;
  mutable hint : Policy.hint option;
  mutable last_run : Proc.t option;
}

(* Bring [proc.usage] current: usage decays by half every [half_life_ns]
   of wall-clock time, whether the process waited or ran. *)
let refresh st proc ~now =
  let dt = Sim_time.sub now proc.Proc.usage_stamp in
  if dt > 0 then begin
    let factor =
      Float.exp (-.Float.log 2.0 *. float_of_int dt /. st.p.half_life_ns)
    in
    proc.Proc.usage <- proc.Proc.usage *. factor;
    proc.Proc.usage_stamp <- now
  end

(* Banded dynamic priority; lower is better.  Fixed-priority processes
   always occupy the best band.  The incumbent (last-run) process gets a
   half-band bonus so it wins ties within its band — that is what lets a
   yield return to its caller. *)
let dyn_prio st proc ~now =
  if proc.Proc.fixed_prio then proc.Proc.base_prio -. 1.0e6
  else begin
    refresh st proc ~now;
    let weighted = st.p.usage_weight *. proc.Proc.usage in
    let band = Float.of_int (int_of_float (weighted /. st.p.band_ns)) in
    let incumbent =
      match st.last_run with Some q when q == proc -> true | _ -> false
    in
    proc.Proc.base_prio +. band -. (if incumbent then 0.5 else 0.0)
  end

let create p =
  let st = { p; ready = Ready_set.create (); hint = None; last_run = None } in
  let score ~now proc = dyn_prio st proc ~now in
  let enqueue proc (_ : Policy.reason) ~now =
    refresh st proc ~now;
    Ready_set.add st.ready proc
  in
  let pick ~now =
    let hint = st.hint in
    st.hint <- None;
    let chosen =
      match hint with
      | Some (Policy.Favor target) when Ready_set.mem st.ready target ->
        ignore (Ready_set.remove st.ready target : bool);
        (* Favoured once, but pays for the privilege (cf. §6). *)
        refresh st target ~now;
        target.Proc.usage <- target.Proc.usage +. st.p.handoff_penalty_ns;
        Some target
      | Some (Policy.Avoid shunned) ->
        Ready_set.take_best_excluding st.ready ~score:(score ~now) shunned
      | Some (Policy.Favor _) | None ->
        Ready_set.take_best st.ready ~score:(score ~now)
    in
    (match chosen with Some q -> st.last_run <- Some q | None -> ());
    chosen
  in
  let charge proc ~ran ~now =
    refresh st proc ~now;
    if not proc.Proc.fixed_prio then
      proc.Proc.usage <- proc.Proc.usage +. float_of_int ran
  in
  let should_preempt proc ~now =
    if Ready_set.is_empty st.ready then false
    else if proc.Proc.quantum_used >= st.p.quantum then true
    else
      match Ready_set.peek_best st.ready ~score:(score ~now) with
      | None -> false
      | Some best ->
        dyn_prio st best ~now +. st.p.preempt_margin_bands
        < dyn_prio st proc ~now
  in
  let on_yield (_ : Proc.t) ~now:(_ : Sim_time.t) = () in
  {
    Policy.name = "decay";
    enqueue;
    pick;
    ready_count = (fun () -> Ready_set.count st.ready);
    charge;
    should_preempt;
    on_yield;
    set_hint = (fun h -> st.hint <- Some h);
    supports_fixed_priority = p.supports_fixed;
    remove = (fun proc -> ignore (Ready_set.remove st.ready proc : bool));
  }
