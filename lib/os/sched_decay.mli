(** Degrading-priority (classic commercial Unix) scheduling policy.

    Models the IRIX/AIX behaviour the paper measures.  Every process
    carries a CPU-usage estimate that grows while it runs and decays
    exponentially over wall-clock time; dynamic priority is the usage
    {e quantized into bands}, and the process that last ran wins ties
    within a band.  The consequence — central to §2.2 — is that a [yield]
    returns to its caller until the caller's accumulated execution time
    pushes it into a worse band than its peer, at which point a real
    context switch happens.  With the SGI calibration this yields the
    paper's ~2.5 yields per possession; with a near-zero band every yield
    switches, which is the AIX-like behaviour.

    Processes granted the fixed-priority class
    ({!Usys.set_fixed_priority}) bypass usage entirely: they sit in the
    best band and schedule FIFO among themselves, so every yield hands off
    — reproducing the non-degrading-priority runs of Figure 3. *)

type params = {
  usage_weight : float;
      (** priority points per nanosecond of decayed usage (normally 1.0) *)
  band_ns : float;
      (** width of one priority band, in weighted-usage nanoseconds; a
          process keeps the CPU across yields until it climbs one band
          above its peers *)
  half_life_ns : float;
      (** usage halves every this many ns of wall-clock time; keeps
          long-run fairness without disturbing microsecond dynamics *)
  quantum : Ulipc_engine.Sim_time.t;  (** round-robin slice *)
  preempt_margin_bands : float;
      (** a ready process must be better by more than this many bands to
          preempt the running one between scheduling points *)
  handoff_penalty_ns : float;
      (** usage charged to a process scheduled through a hand-off hint, so
          it is favoured once but cannot monopolise the CPU *)
  supports_fixed : bool;
}

val default_params : params
(** SGI-like calibration: 40 µs bands. *)

val create : params -> Policy.t
