open Ulipc_engine

exception Proc_failure of string * exn

type event = Dispatch of int | Wake of Proc.t

type cpu = {
  idx : int;
  mutable current : Proc.t option;
  mutable idle : bool;
  mutable busy : Sim_time.t; (* process execution + switch overhead *)
}

type sem = { mutable count : int; sem_waiters : Proc.t Queue.t }

type msg_item = { mtype : int; payload : Univ.t }

type rcv_waiter = { rproc : Proc.t; sel : int; deliver : Univ.t -> unit }
type snd_waiter = { sproc : Proc.t; pending : msg_item; sent : unit -> unit }

type msq = {
  capacity : int;
  mutable items : msg_item list; (* FIFO: head is oldest *)
  mutable rcv_waiters : rcv_waiter list; (* FIFO *)
  mutable snd_waiters : snd_waiter list; (* FIFO *)
}

type run_result =
  | Completed
  | Deadlock of Proc.t list
  | Time_limit
  | Step_limit

type t = {
  costs : Costs.t;
  policy : Policy.t;
  tr : Trace.t;
  heap : event Event_heap.t;
  cpus : cpu array;
  mutable now : Sim_time.t;
  mutable all_procs : Proc.t list; (* reverse spawn order *)
  mutable next_pid : int;
  mutable live : int;
  sems : (int, sem) Hashtbl.t;
  mutable next_sem : int;
  msqs : (int, msq) Hashtbl.t;
  mutable next_msq : int;
  mutable steps : int;
  max_steps : int;
  mutable failure : (string * exn) option;
  mutable cur_pid : int; (* pid being stepped, 0 between steps *)
}

let create ?trace ?(max_steps = 200_000_000) ~ncpus ~policy ~costs () =
  if ncpus <= 0 then invalid_arg "Kernel.create: ncpus must be positive";
  let tr =
    match trace with Some tr -> tr | None -> Trace.create ~enabled:false ()
  in
  {
    costs;
    policy;
    tr;
    heap = Event_heap.create ();
    cpus =
      Array.init ncpus (fun idx -> { idx; current = None; idle = true; busy = Sim_time.zero });
    now = Sim_time.zero;
    all_procs = [];
    next_pid = 1;
    live = 0;
    sems = Hashtbl.create 16;
    next_sem = 0;
    msqs = Hashtbl.create 16;
    next_msq = 0;
    steps = 0;
    max_steps;
    failure = None;
    cur_pid = 0;
  }

let now t = t.now
let current_pid t = t.cur_pid
let trace t = t.tr
let procs t = List.rev t.all_procs
let live_count t = t.live
let steps_executed t = t.steps

let find_sem t id =
  match Hashtbl.find_opt t.sems id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Kernel: unknown semaphore %d" id)

let find_msq t id =
  match Hashtbl.find_opt t.msqs id with
  | Some q -> q
  | None -> invalid_arg (Printf.sprintf "Kernel: unknown message queue %d" id)

let sem_value t id = (find_sem t id).count
let sem_waiters t id = Queue.length (find_sem t id).sem_waiters
let msgq_length t id = List.length (find_msq t id).items

let new_sem t ~init =
  if init < 0 then invalid_arg "Kernel.new_sem: negative initial count";
  let id = t.next_sem in
  t.next_sem <- id + 1;
  Hashtbl.add t.sems id { count = init; sem_waiters = Queue.create () };
  id

let new_msgq t ~capacity =
  if capacity <= 0 then invalid_arg "Kernel.new_msgq: capacity must be positive";
  let id = t.next_msq in
  t.next_msq <- id + 1;
  Hashtbl.add t.msqs id
    { capacity; items = []; rcv_waiters = []; snd_waiters = [] };
  id

let schedule t ~at ev = Event_heap.push t.heap ~time:at ev

(* Wake an idle CPU so it notices newly ready work.  At most one CPU is
   kicked per call: one process became ready, one CPU is enough. *)
let kick t ~at =
  let rec find i =
    if i >= Array.length t.cpus then ()
    else if t.cpus.(i).idle then begin
      t.cpus.(i).idle <- false;
      schedule t ~at (Dispatch i)
    end
    else find (i + 1)
  in
  find 0

let make_ready t proc ~at ~reason =
  proc.Proc.state <- Proc.Ready;
  t.policy.Policy.enqueue proc reason ~now:at;
  kick t ~at

let spawn t ~name body =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let proc = Proc.make ~pid ~name ~body in
  proc.Proc.usage_stamp <- t.now;
  t.all_procs <- proc :: t.all_procs;
  t.live <- t.live + 1;
  Trace.recordf t.tr ~at:t.now ~tag:"spawn" "%s (pid %d)" name pid;
  t.policy.Policy.enqueue proc Policy.New ~now:t.now;
  kick t ~at:t.now;
  proc

(* Account [d] of CPU consumed by [p], finishing at [now_end]. *)
let charge t p d ~now_end =
  p.Proc.cpu_time <- Sim_time.add p.Proc.cpu_time d;
  p.Proc.quantum_used <- Sim_time.add p.Proc.quantum_used d;
  t.policy.Policy.charge p ~ran:d ~now:now_end

let ctx_switch_cost t =
  Sim_time.add t.costs.Costs.ctx_switch
    (t.costs.Costs.ctx_switch_per_ready * t.policy.Policy.ready_count ())

(* Mark the process blocked.  Blocking is always voluntary. *)
let block t p ~why =
  p.Proc.state <- Proc.Blocked why;
  p.Proc.vcsw <- p.Proc.vcsw + 1;
  Trace.recordf t.tr ~at:t.now ~tag:"block" "pid %d %s: %s" p.Proc.pid
    p.Proc.name why

(* Move messages around after a send or a receive changed the queue state:
   deliver queued items to matching blocked receivers, then admit blocked
   senders while there is room, until a fixpoint. *)
let rec msq_settle t q ~at =
  let progress = ref false in
  (* Match the longest-waiting receiver against the queue. *)
  (match q.rcv_waiters with
  | [] -> ()
  | w :: rest ->
    let matches item = w.sel = 0 || item.mtype = w.sel in
    let rec split seen = function
      | [] -> None
      | item :: tl ->
        if matches item then Some (item, List.rev_append seen tl)
        else split (item :: seen) tl
    in
    (match split [] q.items with
    | None -> ()
    | Some (item, remaining) ->
      q.items <- remaining;
      q.rcv_waiters <- rest;
      w.deliver item.payload;
      make_ready t w.rproc ~at ~reason:Policy.Woken;
      Trace.recordf t.tr ~at ~tag:"msgq" "deliver type %d to pid %d" item.mtype
        w.rproc.Proc.pid;
      progress := true));
  (* Admit the longest-waiting sender if there is room. *)
  (match q.snd_waiters with
  | w :: rest when List.length q.items < q.capacity ->
    q.snd_waiters <- rest;
    q.items <- q.items @ [ w.pending ];
    w.sent ();
    make_ready t w.sproc ~at ~reason:Policy.Woken;
    progress := true
  | _ :: _ | [] -> ());
  if !progress then msq_settle t q ~at

(* Handle one system call from process [p] running on [cpu] at time [now].
   Every branch charges the caller, stores how the process resumes, and
   schedules the CPU's next dispatch. *)
let handle_call (type a) t cpu p (req : a Syscall.t)
    (k : (a, Proc.step) Effect.Deep.continuation) ~now_ : unit =
  let c = t.costs in
  let entry = c.Costs.syscall_entry in
  if Trace.enabled t.tr then
    Trace.recordf t.tr ~at:now_ ~tag:"syscall" "pid %d %s: %a" p.Proc.pid
      p.Proc.name Syscall.pp_request req;
  let finish_at cost =
    let fin = Sim_time.add now_ cost in
    charge t p cost ~now_end:fin;
    cpu.busy <- Sim_time.add cpu.busy cost;
    fin
  in
  let continue_running ~fin (v : a) =
    Proc.set_resume p k v;
    schedule t ~at:fin (Dispatch cpu.idx)
  in
  match req with
  | Syscall.Yield ->
    p.Proc.yield_count <- p.Proc.yield_count + 1;
    let fin = finish_at (Sim_time.add entry c.Costs.yield_body) in
    Proc.set_resume p k ();
    t.policy.Policy.on_yield p ~now:fin;
    p.Proc.state <- Proc.Ready;
    t.policy.Policy.enqueue p Policy.Yielded ~now:fin;
    schedule t ~at:fin (Dispatch cpu.idx)
  | Syscall.Handoff target ->
    p.Proc.yield_count <- p.Proc.yield_count + 1;
    let fin = finish_at (Sim_time.add entry c.Costs.yield_body) in
    Proc.set_resume p k ();
    (* A handoff is a yield variant — the caller declares it has nothing to
       do — so the policy's yield treatment (e.g. quantum expiry under the
       modified Linux scheduler) applies to every target form. *)
    t.policy.Policy.on_yield p ~now:fin;
    (match target with
    | Syscall.To_self -> ()
    | Syscall.To_pid pid -> (
      match
        List.find_opt (fun q -> q.Proc.pid = pid && Proc.is_alive q) t.all_procs
      with
      | Some target_proc -> t.policy.Policy.set_hint (Policy.Favor target_proc)
      | None -> ())
    | Syscall.To_any -> t.policy.Policy.set_hint (Policy.Avoid p));
    p.Proc.state <- Proc.Ready;
    t.policy.Policy.enqueue p Policy.Yielded ~now:fin;
    schedule t ~at:fin (Dispatch cpu.idx)
  | Syscall.Sem_p id ->
    let sem = find_sem t id in
    if sem.count > 0 then begin
      let fin = finish_at (Sim_time.add entry c.Costs.sem_op) in
      sem.count <- sem.count - 1;
      continue_running ~fin ()
    end
    else begin
      let fin =
        finish_at
          (Sim_time.add entry (Sim_time.add c.Costs.sem_op c.Costs.block_extra))
      in
      Proc.set_resume p k ();
      block t p ~why:(Printf.sprintf "sem %d" id);
      Queue.add p sem.sem_waiters;
      schedule t ~at:fin (Dispatch cpu.idx)
    end
  | Syscall.Sem_v id ->
    let sem = find_sem t id in
    let waking = not (Queue.is_empty sem.sem_waiters) in
    let cost = Sim_time.add entry c.Costs.sem_op in
    let cost = if waking then Sim_time.add cost c.Costs.wake_extra else cost in
    let fin = finish_at cost in
    (* A V wakes a waiter but deliberately does NOT force a rescheduling
       decision — the behaviour §3.1 identifies as the reason BSW performs
       no better than System V IPC. *)
    (match Queue.take_opt sem.sem_waiters with
    | Some w -> make_ready t w ~at:fin ~reason:Policy.Woken
    | None -> sem.count <- sem.count + 1);
    continue_running ~fin ()
  | Syscall.Sem_value id ->
    let sem = find_sem t id in
    let fin = finish_at entry in
    continue_running ~fin sem.count
  | Syscall.Msg_snd (id, mtype, payload) ->
    if mtype <= 0 then invalid_arg "msgsnd: mtype must be positive";
    let q = find_msq t id in
    let room = List.length q.items < q.capacity in
    let cost = Sim_time.add entry c.Costs.msg_op in
    let cost =
      if room && q.rcv_waiters <> [] then Sim_time.add cost c.Costs.wake_extra
      else if not room then Sim_time.add cost c.Costs.block_extra
      else cost
    in
    let fin = finish_at cost in
    if room then begin
      q.items <- q.items @ [ { mtype; payload } ];
      Proc.set_resume p k ();
      msq_settle t q ~at:fin;
      schedule t ~at:fin (Dispatch cpu.idx)
    end
    else begin
      block t p ~why:(Printf.sprintf "msgsnd %d" id);
      q.snd_waiters <-
        q.snd_waiters
        @ [
            {
              sproc = p;
              pending = { mtype; payload };
              sent = (fun () -> Proc.set_resume p k ());
            };
          ];
      schedule t ~at:fin (Dispatch cpu.idx)
    end
  | Syscall.Msg_rcv (id, sel) ->
    let q = find_msq t id in
    let matches item = sel = 0 || item.mtype = sel in
    let rec split seen = function
      | [] -> None
      | item :: tl ->
        if matches item then Some (item, List.rev_append seen tl)
        else split (item :: seen) tl
    in
    (match split [] q.items with
    | Some (item, remaining) ->
      let cost = Sim_time.add entry c.Costs.msg_op in
      let cost =
        if q.snd_waiters <> [] then Sim_time.add cost c.Costs.wake_extra
        else cost
      in
      let fin = finish_at cost in
      q.items <- remaining;
      Proc.set_resume p k item.payload;
      msq_settle t q ~at:fin;
      schedule t ~at:fin (Dispatch cpu.idx)
    | None ->
      let fin =
        finish_at
          (Sim_time.add entry (Sim_time.add c.Costs.msg_op c.Costs.block_extra))
      in
      block t p ~why:(Printf.sprintf "msgrcv %d" id);
      q.rcv_waiters <-
        q.rcv_waiters
        @ [ { rproc = p; sel; deliver = (fun v -> Proc.set_resume p k v) } ];
      schedule t ~at:fin (Dispatch cpu.idx))
  | Syscall.Sleep d ->
    let fin =
      finish_at
        (Sim_time.add entry
           (Sim_time.add c.Costs.sleep_setup c.Costs.block_extra))
    in
    Proc.set_resume p k ();
    block t p ~why:"sleep";
    schedule t ~at:(Sim_time.add fin d) (Wake p);
    schedule t ~at:fin (Dispatch cpu.idx)
  | Syscall.Get_time ->
    let fin = finish_at c.Costs.time_read in
    continue_running ~fin fin
  | Syscall.Get_usage ->
    let fin = finish_at entry in
    continue_running ~fin (Proc.usage_snapshot p)
  | Syscall.Set_fixed_priority b ->
    let fin = finish_at entry in
    let supported = t.policy.Policy.supports_fixed_priority in
    if supported then p.Proc.fixed_prio <- b;
    continue_running ~fin supported
  | Syscall.Get_pid ->
    let fin = finish_at entry in
    continue_running ~fin p.Proc.pid

(* Run one step of [p] on [cpu] at time [now]. *)
let run_step t cpu p ~now_ =
  t.steps <- t.steps + 1;
  t.cur_pid <- p.Proc.pid;
  match Proc.run_next p with
  | Proc.Working (d, k) ->
    Proc.set_resume p k ();
    let fin = Sim_time.add now_ d in
    charge t p d ~now_end:fin;
    cpu.busy <- Sim_time.add cpu.busy d;
    schedule t ~at:fin (Dispatch cpu.idx)
  | Proc.Calling (req, k) ->
    p.Proc.syscall_count <- p.Proc.syscall_count + 1;
    handle_call t cpu p req k ~now_
  | Proc.Finished ->
    p.Proc.state <- Proc.Dead;
    t.live <- t.live - 1;
    t.policy.Policy.remove p;
    Trace.recordf t.tr ~at:now_ ~tag:"exit" "pid %d %s" p.Proc.pid p.Proc.name;
    schedule t ~at:now_ (Dispatch cpu.idx)
  | Proc.Failed e -> t.failure <- Some (p.Proc.name, e)

(* Choose who runs next on [cpu] and either run them (same process: the
   yield "returned to the caller") or pay the context switch. *)
let pick_and_run t cpu ~now_ =
  match t.policy.Policy.pick ~now:now_ with
  | None ->
    cpu.idle <- true;
    Trace.recordf t.tr ~at:now_ ~tag:"idle" "cpu %d" cpu.idx
  | Some q ->
    let same = match cpu.current with Some c -> c == q | None -> false in
    q.Proc.state <- Proc.Running cpu.idx;
    q.Proc.quantum_used <- Sim_time.zero;
    if same then begin
      (* The "preemption" or yield did not switch after all. *)
      if q.Proc.preempted then begin
        q.Proc.preempted <- false;
        q.Proc.icsw <- q.Proc.icsw - 1
      end;
      run_step t cpu q ~now_
    end
    else begin
      (match cpu.current with
      | Some prev when prev != q -> (
        match prev.Proc.state with
        | Proc.Ready ->
          if prev.Proc.preempted then prev.Proc.preempted <- false
          else prev.Proc.vcsw <- prev.Proc.vcsw + 1
        | Proc.Blocked _ | Proc.Dead | Proc.Running _ -> ())
      | Some _ | None -> ());
      cpu.current <- Some q;
      Trace.recordf t.tr ~at:now_ ~tag:"switch" "cpu %d -> pid %d %s" cpu.idx
        q.Proc.pid q.Proc.name;
      let cs = ctx_switch_cost t in
      cpu.busy <- Sim_time.add cpu.busy cs;
      schedule t ~at:(Sim_time.add now_ cs) (Dispatch cpu.idx)
    end

let dispatch t cpu ~now_ =
  match cpu.current with
  | Some p
    when (match p.Proc.state with
         | Proc.Running i -> i = cpu.idx
         | Proc.Ready | Proc.Blocked _ | Proc.Dead -> false) ->
    if t.policy.Policy.should_preempt p ~now:now_ then begin
      p.Proc.icsw <- p.Proc.icsw + 1;
      p.Proc.preempted <- true;
      p.Proc.state <- Proc.Ready;
      t.policy.Policy.enqueue p Policy.Preempted ~now:now_;
      Trace.recordf t.tr ~at:now_ ~tag:"preempt" "pid %d %s" p.Proc.pid
        p.Proc.name;
      pick_and_run t cpu ~now_
    end
    else run_step t cpu p ~now_
  | Some _ | None -> pick_and_run t cpu ~now_

let blocked_procs t =
  List.filter
    (fun p -> match p.Proc.state with Proc.Blocked _ -> true | _ -> false)
    (procs t)

let run ?until t =
  let result = ref None in
  while !result = None do
    (match t.failure with
    | Some (name, e) -> raise (Proc_failure (name, e))
    | None -> ());
    if t.steps >= t.max_steps then result := Some Step_limit
    else
      match Event_heap.pop t.heap with
      | None ->
        result := Some (if t.live = 0 then Completed else Deadlock (blocked_procs t))
      | Some (time, ev) -> (
        match until with
        | Some horizon when time > horizon ->
          (* Put the event back so a later run with a larger horizon can
             resume without losing a dispatch or wake-up. *)
          Event_heap.push t.heap ~time ev;
          t.now <- horizon;
          result := Some Time_limit
        | Some _ | None -> (
          t.now <- Sim_time.max t.now time;
          match ev with
          | Dispatch i -> dispatch t t.cpus.(i) ~now_:t.now
          | Wake p ->
            if Proc.is_alive p then
              make_ready t p ~at:t.now ~reason:Policy.Woken))
  done;
  (match t.failure with
  | Some (name, e) -> raise (Proc_failure (name, e))
  | None -> ());
  match !result with Some r -> r | None -> assert false

let cpu_busy t idx =
  if idx < 0 || idx >= Array.length t.cpus then
    invalid_arg "Kernel.cpu_busy: no such cpu";
  t.cpus.(idx).busy

let utilization t =
  if t.now = 0 then 0.0
  else
    let busy =
      Array.fold_left (fun acc c -> acc + c.busy) 0 t.cpus
    in
    float_of_int busy /. float_of_int (t.now * Array.length t.cpus)

let pp_result ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Deadlock ps ->
    Format.fprintf ppf "deadlock (%d blocked: %s)" (List.length ps)
      (String.concat ", " (List.map (fun p -> p.Proc.name) ps))
  | Time_limit -> Format.pp_print_string ppf "time limit reached"
  | Step_limit -> Format.pp_print_string ppf "step limit reached"
