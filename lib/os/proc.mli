(** Simulated processes.

    A process body is ordinary OCaml code written in direct style that
    performs effects to consume CPU time ({!Usys.work}) and to enter the
    kernel ({!Usys.yield}, {!Usys.sem_p}, …).  The kernel runs a body one
    {e step} at a time: a step is the code between two effects, and its
    memory side effects take place atomically at the simulated instant the
    step is dispatched.  This is the granularity of the paper's Figure-4
    interleaving diagrams.

    The record fields are bookkeeping owned by the kernel and the
    scheduling policy; user code never touches them. *)

type pid = int

(** Result of running a process until its next effect. *)
type step =
  | Working : Ulipc_engine.Sim_time.t * (unit, step) Effect.Deep.continuation
      -> step  (** consumed CPU for the given duration *)
  | Calling : 'a Syscall.t * ('a, step) Effect.Deep.continuation -> step
      (** entered the kernel *)
  | Finished  (** body returned *)
  | Failed of exn  (** body raised *)

type _ Effect.t +=
  | Work : Ulipc_engine.Sim_time.t -> unit Effect.t
  | Call : 'a Syscall.t -> 'a Effect.t

type run_state =
  | Ready
  | Running of int  (** CPU index *)
  | Blocked of string  (** reason, for traces and debugging *)
  | Dead

type t = {
  pid : pid;
  name : string;
  mutable next : (unit -> step) option;
      (** thunk resuming the process; [None] while it runs or once dead *)
  mutable state : run_state;
  (* -- scheduling state, owned by the policy -- *)
  mutable base_prio : float;
  mutable usage : float;  (** decayed CPU usage driving dynamic priority *)
  mutable usage_stamp : Ulipc_engine.Sim_time.t;
      (** when [usage] was last brought current *)
  mutable counter : float;  (** Linux-style remaining quantum, in ns *)
  mutable fixed_prio : bool;
  mutable ready_since : Ulipc_engine.Sim_time.t;
  mutable quantum_used : Ulipc_engine.Sim_time.t;
      (** CPU consumed since last gaining the processor *)
  mutable preempted : bool;
      (** transient: set while the process sits in the ready queue because
          of a preemption, so the switch is not double-counted *)
  (* -- accounting (getrusage) -- *)
  mutable vcsw : int;
  mutable icsw : int;
  mutable cpu_time : Ulipc_engine.Sim_time.t;
  mutable syscall_count : int;
  mutable yield_count : int;
      (** yield and handoff calls, the §2.2 instrumentation *)
}

val make : pid:pid -> name:string -> body:(unit -> unit) -> t
(** A fresh process whose first step runs [body] from the beginning. *)

val run_next : t -> step
(** Execute the process's next step.  Consumes the stored thunk.
    @raise Invalid_argument if the process has no pending step. *)

val set_resume : t -> ('a, step) Effect.Deep.continuation -> 'a -> unit
(** [set_resume p k v] arranges for [p]'s next step to resume continuation
    [k] with value [v]. *)

val usage_snapshot : t -> Syscall.usage

val is_alive : t -> bool

val pp : Format.formatter -> t -> unit
