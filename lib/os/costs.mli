(** Cost model for a simulated machine.

    All durations are {!Ulipc_engine.Sim_time.t} (nanoseconds).  The values
    are calibrated per machine in [lib/machines] against Table 1 of the
    paper and the text's reported latencies. *)

type t = {
  syscall_entry : Ulipc_engine.Sim_time.t;
      (** trap + kernel entry/exit, charged on every system call *)
  yield_body : Ulipc_engine.Sim_time.t;
      (** run-queue requeue work inside [yield], excluding dispatch *)
  ctx_switch : Ulipc_engine.Sim_time.t;
      (** base cost of switching the CPU to a different process *)
  ctx_switch_per_ready : Ulipc_engine.Sim_time.t;
      (** added switch cost per ready process (run-queue scan, cache
          pollution grows with the multiprogramming level) *)
  sem_op : Ulipc_engine.Sim_time.t;
      (** kernel work of a System V semaphore P or V beyond [syscall_entry] *)
  msg_op : Ulipc_engine.Sim_time.t;
      (** kernel work of [msgsnd]/[msgrcv] beyond [syscall_entry]: queue
          manipulation plus the copy of one fixed-size message *)
  sleep_setup : Ulipc_engine.Sim_time.t;
      (** timer arming work of [sleep] beyond [syscall_entry] *)
  block_extra : Ulipc_engine.Sim_time.t;
      (** additional kernel work when a system call actually blocks the
          caller: wait-channel enqueue, sleep bookkeeping *)
  wake_extra : Ulipc_engine.Sim_time.t;
      (** additional kernel work charged to the caller of a V/[msgsnd]
          that readies a blocked process *)
  time_read : Ulipc_engine.Sim_time.t;  (** cost of reading the clock *)
  shared_read : Ulipc_engine.Sim_time.t;  (** uncontended shared-memory load *)
  shared_write : Ulipc_engine.Sim_time.t;  (** shared-memory store *)
  tas : Ulipc_engine.Sim_time.t;  (** test-and-set (atomic RMW) *)
  flag_write : Ulipc_engine.Sim_time.t;
      (** plain store to a synchronization flag (the [awake] flag lives on
          its own contended cache line, so its store cost is modelled
          separately from ordinary shared stores) *)
  queue_op_body : Ulipc_engine.Sim_time.t;
      (** pointer surgery of one enqueue or dequeue, on top of the lock
          acquire/release modelled separately with [tas]/[shared_write] *)
  poll_spin : Ulipc_engine.Sim_time.t;
      (** one BSLS [poll_queue] delay on a multiprocessor (25 µs on the
          SGI Challenge, §5) *)
  spin_delay : Ulipc_engine.Sim_time.t;
      (** one turn of the tight busy-wait delay loop between queue
          re-checks on a multiprocessor (the BSS [busy_wait]) *)
}

val default : t
(** A neutral, round-numbered model used by unit tests. *)

val pp : Format.formatter -> t -> unit
