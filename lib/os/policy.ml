type reason = New | Preempted | Yielded | Woken

type hint = Favor of Proc.t | Avoid of Proc.t

type t = {
  name : string;
  enqueue : Proc.t -> reason -> now:Ulipc_engine.Sim_time.t -> unit;
  pick : now:Ulipc_engine.Sim_time.t -> Proc.t option;
  ready_count : unit -> int;
  charge :
    Proc.t -> ran:Ulipc_engine.Sim_time.t -> now:Ulipc_engine.Sim_time.t -> unit;
  should_preempt : Proc.t -> now:Ulipc_engine.Sim_time.t -> bool;
  on_yield : Proc.t -> now:Ulipc_engine.Sim_time.t -> unit;
  set_hint : hint -> unit;
  supports_fixed_priority : bool;
  remove : Proc.t -> unit;
}
