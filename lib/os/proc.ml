open Ulipc_engine

type pid = int

type step =
  | Working : Sim_time.t * (unit, step) Effect.Deep.continuation -> step
  | Calling : 'a Syscall.t * ('a, step) Effect.Deep.continuation -> step
  | Finished
  | Failed of exn

type _ Effect.t +=
  | Work : Sim_time.t -> unit Effect.t
  | Call : 'a Syscall.t -> 'a Effect.t

type run_state = Ready | Running of int | Blocked of string | Dead

type t = {
  pid : pid;
  name : string;
  mutable next : (unit -> step) option;
  mutable state : run_state;
  mutable base_prio : float;
  mutable usage : float;
  mutable usage_stamp : Sim_time.t;
  mutable counter : float;
  mutable fixed_prio : bool;
  mutable ready_since : Sim_time.t;
  mutable quantum_used : Sim_time.t;
  mutable preempted : bool;
  mutable vcsw : int;
  mutable icsw : int;
  mutable cpu_time : Sim_time.t;
  mutable syscall_count : int;
  mutable yield_count : int;
}

let handler : (unit, step) Effect.Deep.handler =
  {
    retc = (fun () -> Finished);
    exnc = (fun e -> Failed e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Work d ->
          Some
            (fun (k : (a, step) Effect.Deep.continuation) -> Working (d, k))
        | Call req -> Some (fun k -> Calling (req, k))
        | _ -> None);
  }

let make ~pid ~name ~body =
  {
    pid;
    name;
    next = Some (fun () -> Effect.Deep.match_with body () handler);
    state = Ready;
    base_prio = 0.0;
    usage = 0.0;
    usage_stamp = Sim_time.zero;
    counter = 0.0;
    fixed_prio = false;
    ready_since = Sim_time.zero;
    quantum_used = Sim_time.zero;
    preempted = false;
    vcsw = 0;
    icsw = 0;
    cpu_time = Sim_time.zero;
    syscall_count = 0;
    yield_count = 0;
  }

let run_next p =
  match p.next with
  | None -> invalid_arg "Proc.run_next: no pending step"
  | Some thunk ->
    p.next <- None;
    thunk ()

let set_resume p k v = p.next <- Some (fun () -> Effect.Deep.continue k v)

let usage_snapshot p =
  {
    Syscall.voluntary_switches = p.vcsw;
    involuntary_switches = p.icsw;
    cpu_time = p.cpu_time;
    syscalls = p.syscall_count;
  }

let is_alive p = match p.state with Dead -> false | _ -> true

let pp ppf p =
  let state =
    match p.state with
    | Ready -> "ready"
    | Running cpu -> Printf.sprintf "running@cpu%d" cpu
    | Blocked why -> Printf.sprintf "blocked(%s)" why
    | Dead -> "dead"
  in
  Format.fprintf ppf "[%d:%s %s cpu=%a vcsw=%d icsw=%d]" p.pid p.name state
    Sim_time.pp p.cpu_time p.vcsw p.icsw
