(** Scheduling policy interface.

    A policy owns the ready set and all priority bookkeeping.  The kernel
    calls [enqueue]/[pick] around every scheduling point, [charge] after
    every burst of CPU the process consumes, and [should_preempt] before
    letting the current process continue.  Policies are records of closures
    so different machines can carry differently-parameterised instances of
    the same family. *)

type reason =
  | New  (** process just spawned *)
  | Preempted  (** lost the CPU involuntarily *)
  | Yielded  (** called [yield] (or handoff) *)
  | Woken  (** unblocked by a semaphore, message or timer *)

type hint =
  | Favor of Proc.t  (** hand-off target: pick this process next if ready *)
  | Avoid of Proc.t
      (** hand-off [To_any]: next pick skips this process when possible *)

type t = {
  name : string;
  enqueue : Proc.t -> reason -> now:Ulipc_engine.Sim_time.t -> unit;
  pick : now:Ulipc_engine.Sim_time.t -> Proc.t option;
      (** remove and return the next process to run; honours and then
          clears any pending hint *)
  ready_count : unit -> int;
  charge :
    Proc.t -> ran:Ulipc_engine.Sim_time.t -> now:Ulipc_engine.Sim_time.t -> unit;
      (** account CPU consumption ending at [now] *)
  should_preempt : Proc.t -> now:Ulipc_engine.Sim_time.t -> bool;
      (** called between steps of the running process *)
  on_yield : Proc.t -> now:Ulipc_engine.Sim_time.t -> unit;
      (** policy-specific treatment of [yield], before the caller is
          re-enqueued (e.g. the modified Linux [sched_yield] expires the
          caller's quantum here) *)
  set_hint : hint -> unit;
  supports_fixed_priority : bool;
  remove : Proc.t -> unit;  (** drop a process from the ready set if present *)
}
