(** Variable-sized payloads in shared memory (§2.1).

    "Variable sized messages can be accommodated by using one of the
    fields of the fixed sized message to point to a variable sized
    component in shared memory."  This arena is that component's
    allocator: a first-fit free-list allocator over a fixed byte span,
    guarded by a spin lock, with every touch cost-charged like the other
    shared-memory primitives.

    The arena stores bytes; a message carries the returned offset (and
    length) in its [arg]/[seq] fields.  Offsets are stable for the life of
    the allocation — there is no compaction, as there would not be in a
    mapped segment. *)

type t

type allocation = { offset : int; length : int }

val create : costs:Ulipc_os.Costs.t -> size:int -> unit -> t
(** An arena of [size] bytes.
    @raise Invalid_argument if [size <= 0]. *)

val size : t -> int

val alloc : t -> int -> allocation option
(** [alloc t n] reserves [n] bytes (first fit); [None] if no free block is
    large enough.
    @raise Invalid_argument if [n <= 0]. *)

val free : t -> allocation -> unit
(** Return a block; adjacent free blocks coalesce.
    @raise Invalid_argument on a block that was not allocated by this
    arena (offset/length mismatch) or was already freed. *)

val write_bytes : t -> allocation -> bytes -> unit
(** Copy into the block, charging per-word store costs.
    @raise Invalid_argument if the bytes exceed the allocation. *)

val read_bytes : t -> allocation -> bytes
(** Copy out of the block, charging per-word load costs. *)

val free_bytes_peek : t -> int
(** Total free capacity (uncharged). *)

val largest_free_block_peek : t -> int
val allocations_peek : t -> int
(** Live allocation count (uncharged). *)
