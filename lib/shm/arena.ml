type allocation = { offset : int; length : int }

(* Free blocks kept sorted by offset so coalescing is a neighbour check. *)
type block = { b_off : int; b_len : int }

type t = {
  costs : Ulipc_os.Costs.t;
  lock : Mem.Spinlock.t;
  bytes : Bytes.t;
  total : int;
  mutable free_blocks : block list;
  mutable live : allocation list;
}

let charge d = Ulipc_os.Usys.work d
let word = 8

(* Cost of touching [n] bytes of shared memory at [per]-per-word. *)
let touch_cost ~per n = per * ((n + word - 1) / word)

let create ~costs ~size () =
  if size <= 0 then invalid_arg "Arena.create: size must be positive";
  {
    costs;
    lock = Mem.Spinlock.make ~costs ();
    bytes = Bytes.make size '\000';
    total = size;
    free_blocks = [ { b_off = 0; b_len = size } ];
    live = [];
  }

let size t = t.total

let alloc t n =
  if n <= 0 then invalid_arg "Arena.alloc: size must be positive";
  Mem.Spinlock.acquire t.lock;
  charge t.costs.Ulipc_os.Costs.shared_read;
  (* First fit over the sorted free list. *)
  let rec take acc = function
    | [] -> None
    | b :: rest when b.b_len >= n ->
      let remainder =
        if b.b_len = n then []
        else [ { b_off = b.b_off + n; b_len = b.b_len - n } ]
      in
      t.free_blocks <- List.rev_append acc (remainder @ rest);
      Some { offset = b.b_off; length = n }
    | b :: rest -> take (b :: acc) rest
  in
  let result = take [] t.free_blocks in
  (match result with
  | Some a ->
    charge t.costs.Ulipc_os.Costs.shared_write;
    t.live <- a :: t.live
  | None -> ());
  Mem.Spinlock.release t.lock;
  result

let free t a =
  Mem.Spinlock.acquire t.lock;
  charge t.costs.Ulipc_os.Costs.shared_read;
  if not (List.exists (fun l -> l.offset = a.offset && l.length = a.length) t.live)
  then begin
    Mem.Spinlock.release t.lock;
    invalid_arg
      (Printf.sprintf "Arena.free: no live allocation at %d (+%d)" a.offset
         a.length)
  end;
  t.live <-
    List.filter (fun l -> not (l.offset = a.offset && l.length = a.length)) t.live;
  (* Insert sorted and coalesce with neighbours. *)
  let rec insert = function
    | [] -> [ { b_off = a.offset; b_len = a.length } ]
    | b :: rest when a.offset < b.b_off ->
      { b_off = a.offset; b_len = a.length } :: b :: rest
    | b :: rest -> b :: insert rest
  in
  let rec coalesce = function
    | b1 :: b2 :: rest when b1.b_off + b1.b_len = b2.b_off ->
      coalesce ({ b_off = b1.b_off; b_len = b1.b_len + b2.b_len } :: rest)
    | b :: rest -> b :: coalesce rest
    | [] -> []
  in
  charge t.costs.Ulipc_os.Costs.shared_write;
  t.free_blocks <- coalesce (insert t.free_blocks);
  Mem.Spinlock.release t.lock

let check_within a data_len =
  if data_len > a.length then
    invalid_arg
      (Printf.sprintf "Arena: %d bytes do not fit allocation of %d" data_len
         a.length)

let write_bytes t a data =
  check_within a (Bytes.length data);
  charge (touch_cost ~per:t.costs.Ulipc_os.Costs.shared_write (Bytes.length data));
  Bytes.blit data 0 t.bytes a.offset (Bytes.length data)

let read_bytes t a =
  charge (touch_cost ~per:t.costs.Ulipc_os.Costs.shared_read a.length);
  Bytes.sub t.bytes a.offset a.length

let free_bytes_peek t =
  List.fold_left (fun acc b -> acc + b.b_len) 0 t.free_blocks

let largest_free_block_peek t =
  List.fold_left (fun acc b -> max acc b.b_len) 0 t.free_blocks

let allocations_peek t = List.length t.live
