(** Fixed-size message free pool (§2.1).

    "The interface uses fixed sized messages to permit efficient free-pool
    management": buffers are pre-allocated in the shared segment and
    recycled through a LIFO free list guarded by a spin lock, so an
    allocate or release is a couple of shared-memory operations and never
    a kernel call.  The pool's bound is what makes the queues
    flow-controlled: when no buffer is free, the sender must back off
    (the protocols' queue-full path).

    Elements are whatever the caller stores ('a slots); the pool hands
    out and takes back {e slot indices}, the shared-memory analogue of a
    buffer address. *)

type 'a t

val create :
  costs:Ulipc_os.Costs.t -> slots:int -> init:(int -> 'a) -> unit -> 'a t
(** [create ~slots ~init] builds a pool of [slots] buffers, the buffer at
    index [i] initialised to [init i].
    @raise Invalid_argument if [slots <= 0]. *)

val slots : 'a t -> int

val alloc : 'a t -> int option
(** Grab a free slot index; [None] when the pool is exhausted.  Charged:
    lock + free-list pop. *)

val release : 'a t -> int -> unit
(** Return a slot to the pool.  Charged: lock + free-list push.
    @raise Invalid_argument if the slot is out of range or already free. *)

val get : 'a t -> int -> 'a
(** Read slot contents (one charged shared load). *)

val set : 'a t -> int -> 'a -> unit
(** Write slot contents (one charged shared store). *)

val free_count_peek : 'a t -> int
(** Uncharged; for assertions. *)

val in_use_peek : 'a t -> int
