(** Michael & Scott two-lock concurrent FIFO queue, in simulated shared
    memory.

    This is the queue the paper's evaluation software uses ([9] in the
    paper): a singly linked list with a dummy node, one spin lock for the
    head (dequeuers) and one for the tail (enqueuers), so one producer and
    one consumer never contend.  The paper's queues are flow-controlled
    (fixed free pool of message buffers), so this implementation is
    bounded: [enqueue] fails on a full queue and the protocols respond with
    [sleep(1)].

    Every shared access charges simulated time; see {!Mem}. *)

type 'a t

val create : costs:Ulipc_os.Costs.t -> capacity:int -> unit -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val enqueue : 'a t -> 'a -> bool
(** Append; [false] if the queue is full (the free pool is exhausted). *)

val dequeue : 'a t -> 'a option
(** Remove the oldest element; [None] if empty. *)

val is_empty : 'a t -> bool
(** The cheap [empty(Q)] check of the BSLS polling loop: a single shared
    read, no locking.  May race with concurrent operations — exactly like
    the paper's check — but never misreports a non-empty queue that no one
    is mutating. *)

val length_peek : 'a t -> int
(** Uncharged, unlocked count; for assertions and metrics only. *)

val enqueues_peek : 'a t -> int
(** Total successful enqueues; uncharged, for metrics. *)

val dequeues_peek : 'a t -> int
val head_contention : 'a t -> int
(** Contended acquisitions of the head lock; for the MP analysis. *)

val tail_contention : 'a t -> int
