let charge_read (c : Ulipc_os.Costs.t) = Ulipc_os.Usys.work c.shared_read
let charge_write (c : Ulipc_os.Costs.t) = Ulipc_os.Usys.work c.shared_write
let charge_flag_write (c : Ulipc_os.Costs.t) = Ulipc_os.Usys.work c.flag_write
let charge_tas (c : Ulipc_os.Costs.t) = Ulipc_os.Usys.work c.tas

module Cell = struct
  type 'a t = { costs : Ulipc_os.Costs.t; mutable v : 'a }

  let make ~costs v = { costs; v }

  let read c =
    charge_read c.costs;
    c.v

  let write c v =
    charge_write c.costs;
    c.v <- v

  let peek c = c.v
end

module Flag = struct
  type t = { costs : Ulipc_os.Costs.t; mutable v : bool }

  let make ~costs v = { costs; v }

  let read f =
    charge_read f.costs;
    f.v

  let write f v =
    charge_flag_write f.costs;
    f.v <- v

  let test_and_set f =
    charge_tas f.costs;
    let old = f.v in
    f.v <- true;
    old

  let clear f = write f false
  let peek f = f.v
end

module Spinlock = struct
  type t = {
    costs : Ulipc_os.Costs.t;
    mutable held : bool;
    mutable contended : int;
  }

  let make ~costs () = { costs; held = false; contended = 0 }

  let acquire l =
    let rec spin ~first =
      charge_tas l.costs;
      if l.held then begin
        if first then l.contended <- l.contended + 1;
        spin ~first:false
      end
      else l.held <- true
    in
    spin ~first:true

  let release l =
    charge_write l.costs;
    l.held <- false

  let contended_acquires l = l.contended
end
