(** Cost-charged shared-memory primitives.

    Each operation charges the machine's memory cost via {!Ulipc_os.Usys.work}
    and then performs the OCaml mutation; because the kernel interleaves
    processes only between charged steps, every primitive here is one
    atomic action at one simulated instant — the protocol-step granularity
    of the paper's Figure 4.

    Every structure carries the cost model it was created with, so several
    simulated machines can coexist in one OCaml process. *)

(** A shared mutable cell. *)
module Cell : sig
  type 'a t

  val make : costs:Ulipc_os.Costs.t -> 'a -> 'a t
  val read : 'a t -> 'a  (** charged as one shared load *)

  val write : 'a t -> 'a -> unit  (** charged as one shared store *)

  val peek : 'a t -> 'a
  (** Uncharged read, for assertions and metrics outside simulated time. *)
end

(** A shared flag supporting test-and-set, e.g. the [awake] flag of the
    sleep/wake-up protocols. *)
module Flag : sig
  type t

  val make : costs:Ulipc_os.Costs.t -> bool -> t
  val read : t -> bool
  val write : t -> bool -> unit

  val test_and_set : t -> bool
  (** Atomically set the flag and return its previous value, charging the
      machine's atomic-RMW cost. *)

  val clear : t -> unit
  (** [clear f] is [write f false]. *)

  val peek : t -> bool  (** uncharged, for assertions *)
end

(** A shared spin lock built from test-and-set, as used inside the
    Michael & Scott two-lock queue. *)
module Spinlock : sig
  type t

  val make : costs:Ulipc_os.Costs.t -> unit -> t

  val acquire : t -> unit
  (** Spin (charging one RMW per attempt) until the lock is taken.  On the
      uncontended fast path this is a single test-and-set. *)

  val release : t -> unit

  val contended_acquires : t -> int
  (** How many acquires found the lock held at least once; for tests and
      the multiprocessor contention analysis. *)
end
