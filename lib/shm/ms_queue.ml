type 'a node = { mutable value : 'a option; mutable next : 'a node option }

type 'a t = {
  costs : Ulipc_os.Costs.t;
  cap : int;
  head_lock : Mem.Spinlock.t;
  tail_lock : Mem.Spinlock.t;
  mutable head : 'a node; (* dummy; real elements hang off [next] *)
  mutable tail : 'a node;
  mutable count : int;
  mutable enq_total : int;
  mutable deq_total : int;
}

let create ~costs ~capacity () =
  if capacity <= 0 then invalid_arg "Ms_queue.create: capacity must be positive";
  let dummy = { value = None; next = None } in
  {
    costs;
    cap = capacity;
    head_lock = Mem.Spinlock.make ~costs ();
    tail_lock = Mem.Spinlock.make ~costs ();
    head = dummy;
    tail = dummy;
    count = 0;
    enq_total = 0;
    deq_total = 0;
  }

let capacity q = q.cap

let charge d = Ulipc_os.Usys.work d

(* One enqueue: allocate-and-fill a node from the free pool, then link it in
   under the tail lock.  The pool bound is the [count] check; it is read
   under the tail lock so concurrent enqueuers cannot oversubscribe, while a
   racing dequeuer can only make more room. *)
let enqueue q v =
  charge q.costs.Ulipc_os.Costs.queue_op_body;
  let node = { value = Some v; next = None } in
  Mem.Spinlock.acquire q.tail_lock;
  charge q.costs.Ulipc_os.Costs.shared_read;
  if q.count >= q.cap then begin
    Mem.Spinlock.release q.tail_lock;
    false
  end
  else begin
    charge q.costs.Ulipc_os.Costs.shared_write;
    q.tail.next <- Some node;
    charge q.costs.Ulipc_os.Costs.shared_write;
    q.tail <- node;
    charge q.costs.Ulipc_os.Costs.tas;
    q.count <- q.count + 1;
    q.enq_total <- q.enq_total + 1;
    Mem.Spinlock.release q.tail_lock;
    true
  end

let dequeue q =
  charge q.costs.Ulipc_os.Costs.queue_op_body;
  Mem.Spinlock.acquire q.head_lock;
  charge q.costs.Ulipc_os.Costs.shared_read;
  match q.head.next with
  | None ->
    Mem.Spinlock.release q.head_lock;
    None
  | Some node ->
    charge q.costs.Ulipc_os.Costs.shared_read;
    let v = node.value in
    node.value <- None;
    charge q.costs.Ulipc_os.Costs.shared_write;
    q.head <- node;
    charge q.costs.Ulipc_os.Costs.tas;
    q.count <- q.count - 1;
    q.deq_total <- q.deq_total + 1;
    Mem.Spinlock.release q.head_lock;
    (match v with
    | Some v -> Some v
    | None ->
      (* The dummy node never carries a value and real nodes always do. *)
      assert false)

let is_empty q =
  charge q.costs.Ulipc_os.Costs.shared_read;
  match q.head.next with None -> true | Some _ -> false

let length_peek q = q.count
let enqueues_peek q = q.enq_total
let dequeues_peek q = q.deq_total
let head_contention q = Mem.Spinlock.contended_acquires q.head_lock
let tail_contention q = Mem.Spinlock.contended_acquires q.tail_lock
