type 'a t = {
  costs : Ulipc_os.Costs.t;
  lock : Mem.Spinlock.t;
  buffers : 'a array;
  mutable free_list : int list; (* LIFO: hot buffers stay cache-warm *)
  free_map : bool array; (* double-free detection *)
}

let charge d = Ulipc_os.Usys.work d

let create ~costs ~slots ~init () =
  if slots <= 0 then invalid_arg "Pool.create: slots must be positive";
  {
    costs;
    lock = Mem.Spinlock.make ~costs ();
    buffers = Array.init slots init;
    free_list = List.init slots (fun i -> i);
    free_map = Array.make slots true;
  }

let slots t = Array.length t.buffers

let alloc t =
  Mem.Spinlock.acquire t.lock;
  charge t.costs.Ulipc_os.Costs.shared_read;
  let result =
    match t.free_list with
    | [] -> None
    | slot :: rest ->
      charge t.costs.Ulipc_os.Costs.shared_write;
      t.free_list <- rest;
      t.free_map.(slot) <- false;
      Some slot
  in
  Mem.Spinlock.release t.lock;
  result

let release t slot =
  if slot < 0 || slot >= Array.length t.buffers then
    invalid_arg (Printf.sprintf "Pool.release: slot %d out of range" slot);
  Mem.Spinlock.acquire t.lock;
  charge t.costs.Ulipc_os.Costs.shared_read;
  if t.free_map.(slot) then begin
    Mem.Spinlock.release t.lock;
    invalid_arg (Printf.sprintf "Pool.release: slot %d already free" slot)
  end;
  charge t.costs.Ulipc_os.Costs.shared_write;
  t.free_list <- slot :: t.free_list;
  t.free_map.(slot) <- true;
  Mem.Spinlock.release t.lock

let get t slot =
  charge t.costs.Ulipc_os.Costs.shared_read;
  t.buffers.(slot)

let set t slot v =
  charge t.costs.Ulipc_os.Costs.shared_write;
  t.buffers.(slot) <- v

let free_count_peek t = List.length t.free_list
let in_use_peek t = Array.length t.buffers - List.length t.free_list
