type t = {
  machine : string;
  protocol : Ulipc.Protocol_kind.t;
  nclients : int;
  nservers : int;
  messages : int;
  elapsed : Ulipc_engine.Sim_time.t;
  throughput_msg_per_ms : float;
  latency_us : Ulipc.Histogram.t option;
  counters : Ulipc.Counters.t;
  server_usage : Ulipc_os.Syscall.usage;
  client_usage : Ulipc_os.Syscall.usage list;
  total_sim_time : Ulipc_engine.Sim_time.t;
  sim_steps : int;
  total_yields : int;
  utilization : float;
  utilization_max : float;
  depth : int;
  wake_latency_p50_us : float;
  wake_latency_p99_us : float;
  minor_words_per_op : float;
  series : Ulipc_observe.Series.frame list;
}

(* Real-domain runs have no simulated kernel behind them: usage, step and
   yield accounting do not exist.  Record the honest zeros/nans so the
   shared printers still apply. *)
let zero_usage =
  {
    Ulipc_os.Syscall.voluntary_switches = 0;
    involuntary_switches = 0;
    cpu_time = Ulipc_engine.Sim_time.zero;
    syscalls = 0;
  }

let of_real ?latency ?(utilization = nan) ?(utilization_max = nan)
    ?(depth = 1) ?(nservers = 1) ?(wake_latency_p50_us = nan)
    ?(wake_latency_p99_us = nan) ?(minor_words_per_op = nan) ?(series = [])
    ~machine ~protocol ~nclients ~messages ~elapsed_s ~counters () =
  let elapsed = Ulipc_engine.Sim_time.us_f (elapsed_s *. 1.0e6) in
  (* A single server's pool maximum IS its mean — callers only need to
     pass utilization_max for genuine pools. *)
  let utilization_max =
    if Float.is_nan utilization_max then utilization else utilization_max
  in
  {
    machine;
    protocol;
    nclients;
    nservers;
    messages;
    elapsed;
    throughput_msg_per_ms =
      (if elapsed_s <= 0.0 then nan
       else float_of_int messages /. (elapsed_s *. 1000.0));
    latency_us = latency;
    counters;
    server_usage = zero_usage;
    client_usage = [];
    total_sim_time = elapsed;
    sim_steps = 0;
    total_yields = 0;
    utilization;
    utilization_max;
    depth;
    wake_latency_p50_us;
    wake_latency_p99_us;
    minor_words_per_op;
    series;
  }

let round_trip_us t =
  if t.messages = 0 then nan
  else
    float_of_int t.nclients
    *. Ulipc_engine.Sim_time.to_us t.elapsed
    /. float_of_int t.messages

let latency_percentile t p =
  match t.latency_us with
  | Some h when Ulipc.Histogram.count h > 0 ->
    Some (Ulipc.Histogram.percentile h p)
  | Some _ | None -> None

let latency_max t =
  match t.latency_us with
  | Some h when Ulipc.Histogram.count h > 0 ->
    Some (Ulipc.Histogram.max_value h)
  | Some _ | None -> None

let yields_per_message t =
  if t.messages = 0 then nan
  else float_of_int t.total_yields /. float_of_int t.messages

let server_vcsw_per_message t =
  if t.messages = 0 then nan
  else
    float_of_int t.server_usage.Ulipc_os.Syscall.voluntary_switches
    /. float_of_int t.messages

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s %a clients=%d: %.2f msg/ms (%d msgs in %a; rt %.1f us)@,\
     yields/msg=%.2f server vcsw/msg=%.2f utilization=%.0f%%@,%a@]"
    t.machine Ulipc.Protocol_kind.pp t.protocol t.nclients
    t.throughput_msg_per_ms t.messages Ulipc_engine.Sim_time.pp t.elapsed
    (round_trip_us t) (yields_per_message t) (server_vcsw_per_message t)
    (100.0 *. t.utilization) Ulipc.Counters.pp t.counters

let pp_row ppf t =
  Format.fprintf ppf "%-10s %-11s %4dc %2ds d%-2d %8.2f msg/ms  rt %8.1f us"
    t.machine
    (Ulipc.Protocol_kind.name t.protocol)
    t.nclients t.nservers t.depth t.throughput_msg_per_ms (round_trip_us t);
  match t.latency_us with
  | Some h when Ulipc.Histogram.count h > 0 ->
    Format.fprintf ppf "  p50 %8.1f  p99 %8.1f  max %8.1f us"
      (Ulipc.Histogram.percentile h 50.0)
      (Ulipc.Histogram.percentile h 99.0)
      (Ulipc.Histogram.max_value h)
  | Some _ | None -> ()
