open Ulipc_engine
open Ulipc_os

type architecture = Single_queue | Thread_per_client | Multi_server of int

let architecture_name = function
  | Single_queue -> "single-queue"
  | Thread_per_client -> "thread-per-client"
  | Multi_server k -> Printf.sprintf "multi-server(%d)" k

type result = {
  architecture : architecture;
  protocol : Ulipc.Protocol_kind.t;
  nclients : int;
  messages : int;
  elapsed : Sim_time.t;
  throughput_msg_per_ms : float;
  utilization : float;
  server_threads : int;
}

let echo_client session ~client ~messages =
  for seq = 1 to messages do
    let arg = float_of_int ((client * 1_000_000) + seq) in
    let ans =
      Ulipc.Dispatch.send session ~client
        (Ulipc.Message.make ~opcode:Echo ~reply_chan:client ~seq arg)
    in
    if not (Float.equal ans.Ulipc.Message.arg arg) then
      failwith (Printf.sprintf "arch: echo mismatch, client %d seq %d" client seq)
  done

let fresh_kernel (machine : Ulipc_machines.Machine.t) =
  Kernel.create ~ncpus:machine.Ulipc_machines.Machine.ncpus
    ~policy:(machine.Ulipc_machines.Machine.policy ())
    ~costs:machine.Ulipc_machines.Machine.costs ()

let fresh_session kernel (machine : Ulipc_machines.Machine.t) ~kind ~nclients
    ~capacity =
  Ulipc.Session.create ~kernel ~costs:machine.Ulipc_machines.Machine.costs
    ~multiprocessor:machine.Ulipc_machines.Machine.multiprocessor ~kind
    ~nclients ~capacity ()

(* The paper's architecture: one server thread, shared request queue,
   counting its way to [nclients] Disconnects. *)
let run_single machine ~kind ~nclients ~messages ~capacity =
  let kernel = fresh_kernel machine in
  let session = fresh_session kernel machine ~kind ~nclients ~capacity in
  let server =
    Kernel.spawn kernel ~name:"server" (fun () ->
        let remaining = ref nclients in
        while !remaining > 0 do
          let m = Ulipc.Dispatch.receive session in
          match m.Ulipc.Message.opcode with
          | Ulipc.Message.Echo ->
            Ulipc.Dispatch.reply session ~client:m.Ulipc.Message.reply_chan
              (Ulipc.Message.echo_reply m)
          | Ulipc.Message.Disconnect -> decr remaining
          | Ulipc.Message.Connect | Ulipc.Message.Custom _ ->
            failwith "arch: unexpected opcode"
        done)
  in
  Ulipc.Session.register_server session server.Proc.pid;
  for client = 0 to nclients - 1 do
    ignore
      (Kernel.spawn kernel
         ~name:(Printf.sprintf "client-%d" client)
         (fun () ->
           echo_client session ~client ~messages;
           Ulipc.Async.post session ~client
             (Ulipc.Message.make ~opcode:Disconnect ~reply_chan:client 0.0)))
  done;
  (kernel, 1)

(* §2.1's alternative: a server thread per client over a full-duplex
   connection — realised as one single-client session per client. *)
let run_thread_per_client machine ~kind ~nclients ~messages ~capacity =
  let kernel = fresh_kernel machine in
  for client = 0 to nclients - 1 do
    let session = fresh_session kernel machine ~kind ~nclients:1 ~capacity in
    let server =
      Kernel.spawn kernel
        ~name:(Printf.sprintf "server-%d" client)
        (fun () ->
          let live = ref true in
          while !live do
            let m = Ulipc.Dispatch.receive session in
            match m.Ulipc.Message.opcode with
            | Ulipc.Message.Echo ->
              Ulipc.Dispatch.reply session ~client:0
                (Ulipc.Message.echo_reply m)
            | Ulipc.Message.Disconnect -> live := false
            | Ulipc.Message.Connect | Ulipc.Message.Custom _ ->
              failwith "arch: unexpected opcode"
          done)
    in
    Ulipc.Session.register_server session server.Proc.pid;
    ignore
      (Kernel.spawn kernel
         ~name:(Printf.sprintf "client-%d" client)
         (fun () ->
           echo_client session ~client:0 ~messages;
           Ulipc.Async.post session ~client:0
             (Ulipc.Message.make ~opcode:Disconnect ~reply_chan:0 0.0)))
  done;
  (kernel, nclients)

(* §8 future work: [k] server threads sharing the request queue, which
   requires the per-item grants of the CSEM protocol.  The last client to
   finish posts one poison Disconnect per server thread. *)
let run_multi_server machine ~k ~nclients ~messages ~capacity =
  let kernel = fresh_kernel machine in
  let session =
    fresh_session kernel machine ~kind:Ulipc.Protocol_kind.CSEM ~nclients
      ~capacity
  in
  for i = 0 to k - 1 do
    ignore
      (Kernel.spawn kernel
         ~name:(Printf.sprintf "server-%d" i)
         (fun () ->
           let live = ref true in
           while !live do
             let m = Ulipc.Dispatch.receive session in
             match m.Ulipc.Message.opcode with
             | Ulipc.Message.Echo ->
               Ulipc.Dispatch.reply session ~client:m.Ulipc.Message.reply_chan
                 (Ulipc.Message.echo_reply m)
             | Ulipc.Message.Disconnect -> live := false
             | Ulipc.Message.Connect | Ulipc.Message.Custom _ ->
               failwith "arch: unexpected opcode"
           done))
  done;
  (* Zero-cost harness bookkeeping, not protocol state. *)
  let finished = ref 0 in
  for client = 0 to nclients - 1 do
    ignore
      (Kernel.spawn kernel
         ~name:(Printf.sprintf "client-%d" client)
         (fun () ->
           echo_client session ~client ~messages;
           incr finished;
           if !finished = nclients then
             for _ = 1 to k do
               Ulipc.Async.post session ~client
                 (Ulipc.Message.make ~opcode:Disconnect ~reply_chan:client 0.0)
             done))
  done;
  (kernel, k)

let run ?(capacity = 64) ~machine ~kind ~architecture ~nclients
    ~messages_per_client () =
  if nclients <= 0 then invalid_arg "Arch.run: nclients must be positive";
  if messages_per_client <= 0 then
    invalid_arg "Arch.run: messages_per_client must be positive";
  let messages = messages_per_client in
  let protocol =
    match architecture with
    | Multi_server _ -> Ulipc.Protocol_kind.CSEM
    | Single_queue | Thread_per_client -> kind
  in
  let kernel, server_threads =
    match architecture with
    | Single_queue -> run_single machine ~kind ~nclients ~messages ~capacity
    | Thread_per_client ->
      run_thread_per_client machine ~kind ~nclients ~messages ~capacity
    | Multi_server k ->
      if k <= 0 then invalid_arg "Arch.run: server threads must be positive";
      run_multi_server machine ~k ~nclients ~messages ~capacity
  in
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> Format.kasprintf failwith "Arch.run: %a" Kernel.pp_result r);
  let elapsed = Kernel.now kernel in
  let total = nclients * messages in
  {
    architecture;
    protocol;
    nclients;
    messages = total;
    elapsed;
    throughput_msg_per_ms = float_of_int total /. Sim_time.to_ms elapsed;
    utilization = Kernel.utilization kernel;
    server_threads;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%-18s %-8s %2d clients %d srv  %8.2f msg/ms  util %5.1f%%"
    (architecture_name r.architecture)
    (Ulipc.Protocol_kind.name r.protocol)
    r.nclients r.server_threads r.throughput_msg_per_ms
    (100.0 *. r.utilization)
