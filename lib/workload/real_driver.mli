(** The echo benchmark workload on real OCaml 5 domains.

    Counterpart of {!Driver} for the {!Ulipc_real.Rpc} backend: the same
    client-server echo exchange, but against the machine's actual domains
    and wall clock rather than the simulator.  Results come back as the
    same {!Metrics.t} (counter fields included) so simulated and real runs
    print through one code path. *)

val kind_of_waiting : Ulipc_real.Rpc.waiting -> Ulipc.Protocol_kind.t
(** Spin ↦ BSS, Block ↦ BSW, Block_yield ↦ BSWY, Limited_spin n ↦ BSLS n,
    Handoff ↦ HANDOFF. *)

val run :
  ?machine:string ->
  ?transport:Ulipc_real.Real_substrate.transport ->
  ?trace:Ulipc_real.Trace_ring.t ->
  nclients:int ->
  messages:int ->
  Ulipc_real.Rpc.waiting ->
  Metrics.t
(** [run ~nclients ~messages waiting] spawns one server domain and
    [nclients] client domains, each performing [messages] synchronous
    echo calls; returns the wall-clock metrics.  [machine] labels the row
    (default ["domains"]); [transport] selects the queue transport
    (default ring — see {!Ulipc_real.Real_substrate.transport});
    [trace] attaches a per-domain event-trace sink to the session
    (drained by the caller after the run).

    The measured interval excludes domain start-up and tear-down: clients
    park on a start barrier after spawning, the clock starts when the
    barrier releases, and it stops once every client has been joined
    (before the server join).  Every send is individually timed, and
    [latency_us] in the result carries the merged round-trip histogram,
    so {!Metrics.latency_percentile} works for real rows exactly as for
    simulated ones. *)
