(** The echo benchmark workload on real OCaml 5 domains.

    Counterpart of {!Driver} for the {!Ulipc_real.Rpc} backend: the same
    client-server echo exchange, but against the machine's actual domains
    and wall clock rather than the simulator.  Results come back as the
    same {!Metrics.t} (counter fields included) so simulated and real runs
    print through one code path. *)

val kind_of_waiting : Ulipc_real.Rpc.waiting -> Ulipc.Protocol_kind.t
(** Spin ↦ BSS, Block ↦ BSW, Block_yield ↦ BSWY, Limited_spin n ↦ BSLS n,
    Handoff ↦ HANDOFF, Adaptive cap ↦ ADAPT cap. *)

val probe_warmup : int
(** Round-trips client 0 performs before the allocation probe to fault in
    domain-local state (backoff, trace buffers).  Probe traffic runs
    before the start barrier, so it is outside the measured interval but
    {e inside} an attached trace — a sink sees
    [2 * (probe_warmup + probe_ops)] extra enqueue/dequeue pairs at
    [depth = 1] (the probe is skipped for pipelined runs). *)

val probe_ops : int
(** Round-trips between the two [Gc.minor_words] readings whose per-op
    delta becomes the result's [minor_words_per_op]. *)

val run :
  ?machine:string ->
  ?transport:Ulipc_real.Real_substrate.transport ->
  ?trace:Ulipc_real.Trace_ring.t ->
  ?telemetry:Ulipc_observe.Telemetry.t ->
  ?depth:int ->
  ?nservers:int ->
  nclients:int ->
  messages:int ->
  Ulipc_real.Rpc.waiting ->
  Metrics.t
(** [run ~nclients ~messages waiting] spawns a pool of [nservers] server
    domains (default 1) behind the sharded request plane and [nclients]
    logical clients, each performing [messages] echo calls; returns the
    wall-clock metrics.  [machine] labels the row (default ["domains"]);
    [transport] selects the queue transport (default ring — see
    {!Ulipc_real.Real_substrate.transport}); [trace] attaches a
    per-domain event-trace sink to the session (drained by the caller
    after the run).  When [trace] is omitted the driver attaches its own
    sink; either way the trace is analysed after the joins
    ({!Ulipc_observe.Trace_analysis}) and the recovered wake-up-latency
    p50/p99 fill the result's [wake_latency_p50_us]/[wake_latency_p99_us]
    (nan for protocols that never block, e.g. BSS).

    Logical clients are folded onto at most ~96 real domains (OCaml caps
    a process at 128): a domain hosting several clients posts one
    request per hosted client and collects all the replies before the
    next round, so each logical client still has exactly one call
    outstanding and the recorded round duration is its observed
    round-trip.  Servers are stopped by per-shard poison requests posted
    after the measured interval, since with stealing no pool member can
    count its share of the traffic in advance.

    [depth] (default 1) is the pipelining depth.  At 1 every call is a
    synchronous {!Ulipc_real.Rpc.send} and the server answers one request
    at a time.  Above 1 each client keeps up to [depth] requests
    outstanding ({!Ulipc_real.Rpc.call_pipelined}, issued in bursts of
    [depth]) and the server uses the batched receive/reply path — one
    span claim and at most one wake-up per batch.  The result's [depth]
    field records the value.  Pipelining pairs replies positionally, so
    [depth > 1] requires [nservers = 1].

    The measured interval excludes domain start-up and tear-down: clients
    park on a start barrier after spawning, the clock starts when the
    barrier releases, and it stops once every client has been joined
    (before the server join).  Every send (or pipelined burst) is
    individually timed, and [latency_us] in the result carries the merged
    round-trip histogram — per-message means for bursts — so
    {!Metrics.latency_percentile} works for real rows exactly as for
    simulated ones.  The result's [utilization] is measured: 1 minus the
    fraction of the interval each server spent waiting inside receive,
    clamped to [0, 1] per server — the pool mean, with the busiest
    server in [utilization_max].  The result's counters carry the slab's
    high-water mark ([slab_hwm]) and the steal-protocol totals.

    Every run is live-sampled: the driver registers a messages counter,
    a windowed latency histogram, per-shard ring-depth / slab / trace-drop
    gauges and a Counters delta batch on [telemetry] (default: a fresh
    private registry with a 10 ms interval), starts its background
    sampler with the barrier release and stops it after the post-join
    harvests.  The sampled timeline lands in the result's
    [Metrics.series]; pass your own [telemetry] — a fresh registry per
    run — to choose the interval or render frames live via [on_frame]
    (that is [ulipc_top]).
    @raise Invalid_argument if [depth <= 0], or if [depth > 1] with
    [nservers > 1]. *)
