(** The paper's benchmark driver (§2.2).

    Up to [nclients] client processes connect to a single-threaded server,
    barrier (the server answers all Connect requests at once when everyone
    has arrived), then barrage it with [messages_per_client] 24-byte echo
    requests; the server echoes the argument back.  Throughput is measured
    over real (simulated) elapsed time from the barrier release until the
    last client's disconnect is processed, exactly as the paper computes
    it. *)

type config = {
  machine : Ulipc_machines.Machine.t;
  kind : Ulipc.Protocol_kind.t;
  nclients : int;
  messages_per_client : int;
  capacity : int;  (** shared-queue / free-pool bound *)
  fixed_priority : bool;
      (** run every process in the non-degrading class (Figures 3, 8) *)
  server_work : Ulipc_engine.Sim_time.t;
      (** per-request processing beyond the echo (0 in the paper) *)
  client_think : Ulipc_engine.Sim_time.t;
      (** client-side computation between requests (0 in the paper) *)
  collect_latency : bool;
      (** measure per-send round-trips with clock reads (perturbs the run
          slightly, like real gettimeofday pairs would) *)
  trace : Ulipc_engine.Trace.t option;
  events : Ulipc_observe.Sink.t option;
      (** unified trace-event sink handed to the session: the substrate
          records every queue transfer and semaphore interaction with
          uncharged simulated-time stamps, and the driver fills the
          wake-latency percentiles of {!Metrics} from its analysis *)
  time_limit : Ulipc_engine.Sim_time.t option;
      (** abort horizon for deliberately broken protocol variants *)
  iface : Ulipc.Iface.t option;
      (** override the protocol implementation (ablations, extensions);
          [kind] still labels the run and selects [busy_wait] behaviour *)
  noise : Noise.config option;
      (** background daemons competing for the CPU; shut down when the
          last client disconnects *)
}

val config :
  ?capacity:int ->
  ?fixed_priority:bool ->
  ?server_work:Ulipc_engine.Sim_time.t ->
  ?client_think:Ulipc_engine.Sim_time.t ->
  ?collect_latency:bool ->
  ?trace:Ulipc_engine.Trace.t ->
  ?events:Ulipc_observe.Sink.t ->
  ?time_limit:Ulipc_engine.Sim_time.t ->
  ?iface:Ulipc.Iface.t ->
  ?noise:Noise.config ->
  machine:Ulipc_machines.Machine.t ->
  kind:Ulipc.Protocol_kind.t ->
  nclients:int ->
  messages_per_client:int ->
  unit ->
  config
(** Defaults: capacity 64, no fixed priority, no extra work or think time,
    no latency collection, no trace, no event sink, no time limit. *)

exception Hung of Ulipc_os.Kernel.run_result
(** Raised when the run does not complete (deadlock, time or step limit) —
    which is the observable failure mode of the broken protocol variants
    the ablation benchmarks exercise. *)

type outcome = {
  metrics : Metrics.t;
  kernel : Ulipc_os.Kernel.t;
  session : Ulipc.Session.t;
  server : Ulipc_os.Proc.t;
  clients : Ulipc_os.Proc.t list;
}

val run : config -> Metrics.t
(** Execute one benchmark.
    @raise Hung if the simulation does not run to completion.
    @raise Ulipc_os.Kernel.Proc_failure if an integrity check fails. *)

val run_outcome : config -> outcome
(** Like {!run}, additionally exposing the kernel, session and processes
    for post-run inspection (semaphore residue, per-process accounting). *)

val sweep : config -> clients:int list -> Metrics.t list
(** [sweep config ~clients] runs the benchmark at each client count. *)
