(* The §2.2 echo workload on real OCaml 5 domains: one server domain,
   [nclients] client domains, each issuing [messages] synchronous calls
   through Ulipc_real.Rpc.  The same protocol core the simulator runs,
   measured in wall-clock time, reported through the same Metrics record. *)

let kind_of_waiting = function
  | Ulipc_real.Rpc.Spin -> Ulipc.Protocol_kind.BSS
  | Ulipc_real.Rpc.Block -> Ulipc.Protocol_kind.BSW
  | Ulipc_real.Rpc.Block_yield -> Ulipc.Protocol_kind.BSWY
  | Ulipc_real.Rpc.Limited_spin max_spin -> Ulipc.Protocol_kind.BSLS max_spin
  | Ulipc_real.Rpc.Handoff -> Ulipc.Protocol_kind.HANDOFF

let run ?(machine = "domains") ?transport ~nclients ~messages waiting =
  let t : (int, int) Ulipc_real.Rpc.t =
    Ulipc_real.Rpc.create ?transport ~nclients waiting
  in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref (nclients * messages) in
        while !remaining > 0 do
          let client, v = Ulipc_real.Rpc.receive t in
          Ulipc_real.Rpc.reply t ~client (v + 1);
          decr remaining
        done)
  in
  let t0 = Unix.gettimeofday () in
  let clients =
    List.init nclients (fun c ->
        Domain.spawn (fun () ->
            for i = 1 to messages do
              if Ulipc_real.Rpc.send t ~client:c i <> i + 1 then
                failwith "Real_driver.run: echo mismatch"
            done))
  in
  List.iter Domain.join clients;
  Domain.join server;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Metrics.of_real ~machine
    ~protocol:(kind_of_waiting waiting)
    ~nclients
    ~messages:(nclients * messages)
    ~elapsed_s
    ~counters:(Ulipc_real.Rpc.counters t)
