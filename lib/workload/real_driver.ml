(* The §2.2 echo workload on real OCaml 5 domains: a pool of [nservers]
   server domains behind the sharded request plane, [nclients] logical
   clients issuing [messages] calls each through Ulipc_real.Rpc.  The
   same protocol core the simulator runs, measured in wall-clock time,
   reported through the same Metrics record.

   Client multiplexing: OCaml caps a process at 128 live domains, and
   the F2/F11 sweeps need 512 clients against a 4-server pool.  Logical
   clients are therefore folded onto at most [max_client_domains] real
   domains: a domain hosting one client runs the classic timed send
   loop; a domain hosting k > 1 clients runs post-all/collect-all rounds
   — every hosted client keeps exactly one request outstanding, so
   per-client FIFO and the one-outstanding-call contract both hold, and
   the round duration is each hosted client's observed round-trip (its
   request is posted when the round opens and its reply is in hand when
   it closes).

   Shutdown: with a pool no server can know its share of the traffic in
   advance (stealing moves work between shards), so servers are stopped
   by poison rather than by counting.  After every client domain has
   joined — i.e. every request has been replied to and the rings are
   empty — the main domain posts one poison request per shard, payload
   [-1 - shard].  A server that receives a poison naming its own shard
   exits; one naming a sibling (possible only if a steal moved it, which
   the [steal_min >= 2] floor prevents once rings hold a single poison
   each) is forwarded to its target with [Rpc.post ~shard].  Poisons are
   never replied to.

   Timing discipline: a start barrier keeps Domain.spawn cost out of the
   measured interval — every client domain parks on an atomic flag after
   spawning, [t0] is taken once all are parked, and the flag releases
   them together (the wall-clock analogue of the simulator driver's
   Connect barrier).  [t1] is taken after joining the client domains but
   before poisoning the servers, so the interval covers exactly the
   messaging phase: last reply received, not last domain torn down.

   Each client also times every individual send with gettimeofday and
   records it into its own Ulipc.Histogram (per-domain, unsynchronised);
   the rings are merged after the joins, so real runs report the same
   p50/p99/max percentiles the simulator does.  gettimeofday granularity
   is ~1 µs on most hosts: sub-µs round-trips quantise to 0/1 µs ticks,
   so the percentiles are honest at µs resolution and the throughput
   numbers remain the precise measurement.

   Pipelining: [depth] > 1 switches each client to a sliding window of
   [depth] outstanding requests (Rpc.call_pipelined, issued in bursts of
   [depth] so every burst yields a latency sample) and the server to the
   batched receive/reply path (one span claim and at most one wake-up
   per batch).  The histogram then records mean per-message latency per
   burst — the per-message number a pipelined client actually observes.
   call_pipelined pairs replies with requests by queue position, which
   stealing may permute, so depth > 1 requires nservers = 1.

   Utilization: each server accumulates the time it spends waiting
   inside receive for calls that return a real request (the final
   poison wait is post-measurement and excluded); busy time is the
   measured interval minus that waiting, so per-server utilization is
   1 - waiting/elapsed.  The metrics row reports the pool mean and the
   busiest server — the gap between them is the imbalance stealing did
   not smooth.  The waits are the well-measurable part (block/backoff
   episodes are µs-scale and up, far above gettimeofday's tick), which
   keeps the subtraction honest even though individual service times
   are sub-µs. *)

let kind_of_waiting = function
  | Ulipc_real.Rpc.Spin -> Ulipc.Protocol_kind.BSS
  | Ulipc_real.Rpc.Block -> Ulipc.Protocol_kind.BSW
  | Ulipc_real.Rpc.Block_yield -> Ulipc.Protocol_kind.BSWY
  | Ulipc_real.Rpc.Limited_spin max_spin -> Ulipc.Protocol_kind.BSLS max_spin
  | Ulipc_real.Rpc.Handoff -> Ulipc.Protocol_kind.HANDOFF
  | Ulipc_real.Rpc.Adaptive cap -> Ulipc.Protocol_kind.ADAPT cap

let probe_warmup = 32
let probe_ops = 512

(* 128-domain runtime cap, minus the servers, the main domain and
   headroom for whatever the process is already running. *)
let max_client_domains nservers = max 1 (min 96 (120 - nservers))

let run ?(machine = "domains") ?transport ?trace ?telemetry ?(depth = 1)
    ?(nservers = 1) ~nclients ~messages waiting =
  if depth <= 0 then invalid_arg "Real_driver.run: depth must be positive";
  if depth > 1 && nservers > 1 then
    invalid_arg
      "Real_driver.run: depth > 1 requires nservers = 1 (stealing reorders \
       a client's in-flight requests, which breaks pipelined pairing)";
  (* Every run is traced: with no caller-supplied sink we attach our own,
     sized so a typical bench run (a few messages × a handful of events
     each, per domain) fits without overwrite, and distil the trace into
     the wake-latency percentiles of the metrics row. *)
  let trace =
    match trace with
    | Some sink -> sink
    | None -> Ulipc_real.Trace_ring.create ~capacity:65536 ()
  in
  let t : (int, int) Ulipc_real.Rpc.t =
    (* Immediate-int codecs: the echo payloads ride the slot's unboxed
       data field, so the steady-state round-trip is the zero-allocation
       path the probe below certifies. *)
    Ulipc_real.Rpc.create ?transport ~trace ~req_codec:Ulipc_real.Rpc.int_codec
      ~rep_codec:Ulipc_real.Rpc.int_codec ~nservers ~nclients waiting
  in
  (* Telemetry plane: every run is sampled into a Series ring (a
     caller-supplied registry — ulipc_top's — just brings its own
     interval and on_frame hook; use a fresh registry per run).  The
     hot-path instruments ride the measured loops only: the messages
     counter is one fetch-and-add per echo and the latency whist records
     next to the per-domain histogram, so the pre-barrier allocation
     probe below still certifies the bare send path.  Gauges read the
     live session (per-shard ring depth, slab occupancy, trace drops)
     and the counter batch diffs Counters snapshots — parks, grants,
     steals, backoff sleeps per window.  The sampler domain starts with
     the barrier release and stops after the post-join harvests, so its
     final frame carries the sem-park/grant and slab-high-water
     deltas. *)
  let tel =
    match telemetry with
    | Some tel -> tel
    | None -> Ulipc_observe.Telemetry.create ()
  in
  let msgs_c = Ulipc_observe.Telemetry.counter tel "messages" in
  let lat_w = Ulipc_observe.Telemetry.whist tel "latency_us" in
  for k = 0 to nservers - 1 do
    Ulipc_observe.Telemetry.gauge tel
      (Printf.sprintf "ring_depth_%d" k)
      (fun () -> float_of_int (Ulipc_real.Rpc.request_depth t k))
  done;
  Ulipc_observe.Telemetry.gauge tel "slab_in_use" (fun () ->
      float_of_int (Ulipc_real.Slab.in_use_count (Ulipc_real.Rpc.slab t)));
  Ulipc_observe.Telemetry.gauge tel "trace_dropped" (fun () ->
      float_of_int (Ulipc_real.Trace_ring.dropped trace));
  Ulipc_observe.Telemetry.ext_counters tel (fun () ->
      Ulipc.Counters.to_fields
        (Ulipc.Counters.snapshot (Ulipc_real.Rpc.counters t)));
  (* Allocation probe: before the barrier releases the timed phase, the
     domain hosting client 0 runs a short warm-up (faulting in its
     domain-local backoff and trace state) and then [probe_ops] bare
     sends between two [Gc.minor_words] readings.  minor_words is
     per-domain in OCaml 5, so the delta is exactly the issuing client's
     allocation; the calibration pair subtracts what the readings
     themselves charge.  Running pre-barrier keeps the probe traffic out
     of the measured interval — client 0's home server just serves
     [probe_total] extra messages. *)
  let probe_total = if depth = 1 then probe_warmup + probe_ops else 0 in
  let minor_words_per_op = ref nan in
  (* Slot k is written by server domain k alone, read after its join. *)
  let server_waiting_s = Array.make nservers 0.0 in
  let servers =
    if depth = 1 then
      Array.init nservers (fun k ->
          Domain.spawn (fun () ->
              let waiting_s = ref 0.0 in
              let live = ref true in
              while !live do
                let before = Unix.gettimeofday () in
                let client, v = Ulipc_real.Rpc.receive ~server:k t in
                if v >= 0 then begin
                  waiting_s := !waiting_s +. (Unix.gettimeofday () -. before);
                  Ulipc_real.Rpc.reply t ~client (v + 1)
                end
                else begin
                  let target = -1 - v in
                  if target = k then live := false
                  else Ulipc_real.Rpc.post ~shard:target t ~client:0 v
                end
              done;
              server_waiting_s.(k) <- !waiting_s))
    else
      (* Pipelined path: single server (enforced above), which can count
         its traffic exactly — no poison needed. *)
      [|
        Domain.spawn (fun () ->
            let remaining = ref ((nclients * messages) + probe_total) in
            let waiting_s = ref 0.0 in
            while !remaining > 0 do
              let before = Unix.gettimeofday () in
              let batch =
                Ulipc_real.Rpc.receive_batch t ~max:(depth * nclients)
              in
              waiting_s := !waiting_s +. (Unix.gettimeofday () -. before);
              Ulipc_real.Rpc.reply_batch t
                (List.map (fun (client, v) -> (client, v + 1)) batch);
              remaining := !remaining - List.length batch
            done;
            server_waiting_s.(0) <- !waiting_s);
      |]
  in
  (* Fold the logical clients onto at most [max_client_domains] real
     domains, in contiguous blocks as even as the division allows. *)
  let ndomains =
    if depth > 1 then nclients else min nclients (max_client_domains nservers)
  in
  let block d =
    let base = nclients / ndomains and rem = nclients mod ndomains in
    let lo = (d * base) + min d rem in
    (lo, lo + base + if d < rem then 1 else 0)
  in
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let client_domains =
    List.init ndomains (fun d ->
        Domain.spawn (fun () ->
            let lo, hi = block d in
            let hist = Ulipc.Histogram.create "round-trip (us)" in
            if lo = 0 && probe_total > 0 then begin
              for i = 1 to probe_warmup do
                if Ulipc_real.Rpc.send t ~client:0 i <> i + 1 then
                  failwith "Real_driver.run: echo mismatch"
              done;
              let calib =
                let a = Gc.minor_words () in
                Gc.minor_words () -. a
              in
              let w0 = Gc.minor_words () in
              for i = 1 to probe_ops do
                ignore (Ulipc_real.Rpc.send t ~client:0 i : int)
              done;
              let w1 = Gc.minor_words () in
              minor_words_per_op :=
                Float.max 0.0 ((w1 -. w0 -. calib) /. float_of_int probe_ops)
            end;
            Atomic.incr ready;
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            if depth = 1 then
              if hi - lo = 1 then
                for i = 1 to messages do
                  let before = Unix.gettimeofday () in
                  let ans = Ulipc_real.Rpc.send t ~client:lo i in
                  let after = Unix.gettimeofday () in
                  if ans <> i + 1 then
                    failwith "Real_driver.run: echo mismatch";
                  let rt_us = (after -. before) *. 1.0e6 in
                  Ulipc.Histogram.record hist rt_us;
                  Ulipc_observe.Telemetry.record lat_w rt_us;
                  Ulipc_observe.Telemetry.incr msgs_c
                done
              else
                for i = 1 to messages do
                  let before = Unix.gettimeofday () in
                  for c = lo to hi - 1 do
                    Ulipc_real.Rpc.post t ~client:c i
                  done;
                  for c = lo to hi - 1 do
                    if Ulipc_real.Rpc.collect t ~client:c <> i + 1 then
                      failwith "Real_driver.run: echo mismatch"
                  done;
                  let per_msg_us = (Unix.gettimeofday () -. before) *. 1.0e6 in
                  for _ = lo to hi - 1 do
                    Ulipc.Histogram.record hist per_msg_us;
                    Ulipc_observe.Telemetry.record lat_w per_msg_us
                  done;
                  Ulipc_observe.Telemetry.add msgs_c (hi - lo)
                done
            else begin
              let sent = ref 0 in
              while !sent < messages do
                let k = min depth (messages - !sent) in
                let burst = List.init k (fun j -> !sent + j + 1) in
                let before = Unix.gettimeofday () in
                let answers =
                  Ulipc_real.Rpc.call_pipelined t ~client:lo ~depth burst
                in
                let after = Unix.gettimeofday () in
                List.iter2
                  (fun req ans ->
                    if ans <> req + 1 then
                      failwith "Real_driver.run: echo mismatch")
                  burst answers;
                let per_msg_us =
                  (after -. before) *. 1.0e6 /. float_of_int k
                in
                for _ = 1 to k do
                  Ulipc.Histogram.record hist per_msg_us;
                  Ulipc_observe.Telemetry.record lat_w per_msg_us
                done;
                Ulipc_observe.Telemetry.add msgs_c k;
                sent := !sent + k
              done
            end;
            hist))
  in
  while Atomic.get ready < ndomains do
    Domain.cpu_relax ()
  done;
  Ulipc_observe.Telemetry.start_sampler tel;
  let t0 = Unix.gettimeofday () in
  Atomic.set go true;
  let hists = List.map Domain.join client_domains in
  let t1 = Unix.gettimeofday () in
  if depth = 1 then
    for k = 0 to nservers - 1 do
      Ulipc_real.Rpc.post ~shard:k t ~client:0 (-1 - k)
    done;
  Array.iter Domain.join servers;
  let elapsed_s = t1 -. t0 in
  let utilization, utilization_max =
    if elapsed_s <= 0.0 then (nan, nan)
    else begin
      (* A server also waits before the barrier releases the clients, so
         its waiting total can exceed the measured interval — clamp per
         server, then take the pool mean and the busiest shard. *)
      let sum = ref 0.0 and umax = ref 0.0 in
      Array.iter
        (fun w ->
          let u = Float.max 0.0 (Float.min 1.0 (1.0 -. (w /. elapsed_s))) in
          sum := !sum +. u;
          if u > !umax then umax := u)
        server_waiting_s;
      (!sum /. float_of_int nservers, !umax)
    end
  in
  let latency = Ulipc.Histogram.create "round-trip (us)" in
  List.iter (fun h -> Ulipc.Histogram.merge_into ~dst:latency h) hists;
  let counters = Ulipc_real.Rpc.counters t in
  counters.Ulipc.Counters.slab_hwm <-
    Ulipc_real.Slab.high_water (Ulipc_real.Rpc.slab t);
  Ulipc_real.Rpc.harvest_sem_counters t;
  (* Post-harvest stop: the final frame's counter batch carries the
     sem-park/grant and slab-high-water deltas, and summed per-window
     message deltas equal the row's messages exactly. *)
  Ulipc_observe.Telemetry.stop_sampler tel;
  let series = Ulipc_observe.Telemetry.frames tel in
  (* All recording domains are joined: the drain is race-free. *)
  let wake_latency_p50_us, wake_latency_p99_us =
    let report =
      Ulipc_observe.Trace_analysis.analyse
        ~complete:(Ulipc_real.Trace_ring.dropped trace = 0)
        (Ulipc_real.Trace_ring.events trace)
    in
    let d = report.Ulipc_observe.Trace_analysis.wake_latency in
    ( d.Ulipc_observe.Trace_analysis.p50_us,
      d.Ulipc_observe.Trace_analysis.p99_us )
  in
  Metrics.of_real ~latency ~utilization ~utilization_max ~depth ~nservers
    ~wake_latency_p50_us ~wake_latency_p99_us
    ~minor_words_per_op:!minor_words_per_op ~series ~machine
    ~protocol:(kind_of_waiting waiting)
    ~nclients
    ~messages:(nclients * messages)
    ~elapsed_s ~counters ()
