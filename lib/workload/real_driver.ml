(* The §2.2 echo workload on real OCaml 5 domains: one server domain,
   [nclients] client domains, each issuing [messages] synchronous calls
   through Ulipc_real.Rpc.  The same protocol core the simulator runs,
   measured in wall-clock time, reported through the same Metrics record.

   Timing discipline: a start barrier keeps Domain.spawn cost out of the
   measured interval — every client parks on an atomic flag after
   spawning, [t0] is taken once all are parked, and the flag releases
   them together (the wall-clock analogue of the simulator driver's
   Connect barrier).  [t1] is taken after joining the clients but before
   joining the server, so the interval covers exactly the messaging
   phase: last reply received, not last domain torn down.

   Each client also times every individual send with gettimeofday and
   records it into its own Ulipc.Histogram (per-domain, unsynchronised);
   the rings are merged after the joins, so real runs report the same
   p50/p99/max percentiles the simulator does.  gettimeofday granularity
   is ~1 µs on most hosts: sub-µs round-trips quantise to 0/1 µs ticks,
   so the percentiles are honest at µs resolution and the throughput
   numbers remain the precise measurement. *)

let kind_of_waiting = function
  | Ulipc_real.Rpc.Spin -> Ulipc.Protocol_kind.BSS
  | Ulipc_real.Rpc.Block -> Ulipc.Protocol_kind.BSW
  | Ulipc_real.Rpc.Block_yield -> Ulipc.Protocol_kind.BSWY
  | Ulipc_real.Rpc.Limited_spin max_spin -> Ulipc.Protocol_kind.BSLS max_spin
  | Ulipc_real.Rpc.Handoff -> Ulipc.Protocol_kind.HANDOFF

let run ?(machine = "domains") ?transport ?trace ~nclients ~messages waiting =
  let t : (int, int) Ulipc_real.Rpc.t =
    Ulipc_real.Rpc.create ?transport ?trace ~nclients waiting
  in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref (nclients * messages) in
        while !remaining > 0 do
          let client, v = Ulipc_real.Rpc.receive t in
          Ulipc_real.Rpc.reply t ~client (v + 1);
          decr remaining
        done)
  in
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let clients =
    List.init nclients (fun c ->
        Domain.spawn (fun () ->
            let hist = Ulipc.Histogram.create "round-trip (us)" in
            Atomic.incr ready;
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            for i = 1 to messages do
              let before = Unix.gettimeofday () in
              let ans = Ulipc_real.Rpc.send t ~client:c i in
              let after = Unix.gettimeofday () in
              if ans <> i + 1 then failwith "Real_driver.run: echo mismatch";
              Ulipc.Histogram.record hist ((after -. before) *. 1.0e6)
            done;
            hist))
  in
  while Atomic.get ready < nclients do
    Domain.cpu_relax ()
  done;
  let t0 = Unix.gettimeofday () in
  Atomic.set go true;
  let hists = List.map Domain.join clients in
  let t1 = Unix.gettimeofday () in
  Domain.join server;
  let latency = Ulipc.Histogram.create "round-trip (us)" in
  List.iter (fun h -> Ulipc.Histogram.merge_into ~dst:latency h) hists;
  Metrics.of_real ~latency ~machine
    ~protocol:(kind_of_waiting waiting)
    ~nclients
    ~messages:(nclients * messages)
    ~elapsed_s:(t1 -. t0)
    ~counters:(Ulipc_real.Rpc.counters t)
    ()
