(* The §2.2 echo workload on real OCaml 5 domains: one server domain,
   [nclients] client domains, each issuing [messages] calls through
   Ulipc_real.Rpc.  The same protocol core the simulator runs, measured
   in wall-clock time, reported through the same Metrics record.

   Timing discipline: a start barrier keeps Domain.spawn cost out of the
   measured interval — every client parks on an atomic flag after
   spawning, [t0] is taken once all are parked, and the flag releases
   them together (the wall-clock analogue of the simulator driver's
   Connect barrier).  [t1] is taken after joining the clients but before
   joining the server, so the interval covers exactly the messaging
   phase: last reply received, not last domain torn down.

   Each client also times every individual send with gettimeofday and
   records it into its own Ulipc.Histogram (per-domain, unsynchronised);
   the rings are merged after the joins, so real runs report the same
   p50/p99/max percentiles the simulator does.  gettimeofday granularity
   is ~1 µs on most hosts: sub-µs round-trips quantise to 0/1 µs ticks,
   so the percentiles are honest at µs resolution and the throughput
   numbers remain the precise measurement.

   Pipelining: [depth] > 1 switches each client to a sliding window of
   [depth] outstanding requests (Rpc.call_pipelined, issued in bursts of
   [depth] so every burst yields a latency sample) and the server to the
   batched receive/reply path (one span claim and at most one wake-up
   per batch).  The histogram then records mean per-message latency per
   burst — the per-message number a pipelined client actually observes.

   Utilization: the server accumulates the time it spends waiting inside
   receive; busy time is the measured interval minus that waiting, so
   utilization = 1 - waiting/elapsed.  The waits are the well-measurable
   part (block/backoff episodes are µs-scale and up, far above
   gettimeofday's tick), which keeps the subtraction honest even though
   individual service times are sub-µs. *)

let kind_of_waiting = function
  | Ulipc_real.Rpc.Spin -> Ulipc.Protocol_kind.BSS
  | Ulipc_real.Rpc.Block -> Ulipc.Protocol_kind.BSW
  | Ulipc_real.Rpc.Block_yield -> Ulipc.Protocol_kind.BSWY
  | Ulipc_real.Rpc.Limited_spin max_spin -> Ulipc.Protocol_kind.BSLS max_spin
  | Ulipc_real.Rpc.Handoff -> Ulipc.Protocol_kind.HANDOFF
  | Ulipc_real.Rpc.Adaptive cap -> Ulipc.Protocol_kind.ADAPT cap

let probe_warmup = 32
let probe_ops = 512

let run ?(machine = "domains") ?transport ?trace ?(depth = 1) ~nclients
    ~messages waiting =
  if depth <= 0 then invalid_arg "Real_driver.run: depth must be positive";
  (* Every run is traced: with no caller-supplied sink we attach our own,
     sized so a typical bench run (a few messages × a handful of events
     each, per domain) fits without overwrite, and distil the trace into
     the wake-latency percentiles of the metrics row. *)
  let trace =
    match trace with
    | Some sink -> sink
    | None -> Ulipc_real.Trace_ring.create ~capacity:65536 ()
  in
  let t : (int, int) Ulipc_real.Rpc.t =
    (* Immediate-int codecs: the echo payloads ride the slot's unboxed
       data field, so the steady-state round-trip is the zero-allocation
       path the probe below certifies. *)
    Ulipc_real.Rpc.create ?transport ~trace ~req_codec:Ulipc_real.Rpc.int_codec
      ~rep_codec:Ulipc_real.Rpc.int_codec ~nclients waiting
  in
  (* Allocation probe: before the barrier releases the timed phase,
     client 0 runs a short warm-up (faulting in its domain-local backoff
     and trace state) and then [probe_ops] bare sends between two
     [Gc.minor_words] readings.  minor_words is per-domain in OCaml 5,
     so the delta is exactly the issuing client's allocation; the
     calibration pair subtracts what the readings themselves charge.
     Running pre-barrier keeps the probe traffic out of the measured
     interval — the server just serves [probe_total] extra messages. *)
  let probe_total = if depth = 1 then probe_warmup + probe_ops else 0 in
  let minor_words_per_op = ref nan in
  (* Written by the server domain, read only after its join. *)
  let server_waiting_s = ref 0.0 in
  let server =
    Domain.spawn (fun () ->
        let remaining = ref ((nclients * messages) + probe_total) in
        let waiting_s = ref 0.0 in
        if depth = 1 then
          while !remaining > 0 do
            let before = Unix.gettimeofday () in
            let client, v = Ulipc_real.Rpc.receive t in
            waiting_s := !waiting_s +. (Unix.gettimeofday () -. before);
            Ulipc_real.Rpc.reply t ~client (v + 1);
            decr remaining
          done
        else
          while !remaining > 0 do
            let before = Unix.gettimeofday () in
            let batch = Ulipc_real.Rpc.receive_batch t ~max:(depth * nclients) in
            waiting_s := !waiting_s +. (Unix.gettimeofday () -. before);
            Ulipc_real.Rpc.reply_batch t
              (List.map (fun (client, v) -> (client, v + 1)) batch);
            remaining := !remaining - List.length batch
          done;
        server_waiting_s := !waiting_s)
  in
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let clients =
    List.init nclients (fun c ->
        Domain.spawn (fun () ->
            let hist = Ulipc.Histogram.create "round-trip (us)" in
            if c = 0 && probe_total > 0 then begin
              for i = 1 to probe_warmup do
                if Ulipc_real.Rpc.send t ~client:0 i <> i + 1 then
                  failwith "Real_driver.run: echo mismatch"
              done;
              let calib =
                let a = Gc.minor_words () in
                Gc.minor_words () -. a
              in
              let w0 = Gc.minor_words () in
              for i = 1 to probe_ops do
                ignore (Ulipc_real.Rpc.send t ~client:0 i : int)
              done;
              let w1 = Gc.minor_words () in
              minor_words_per_op :=
                Float.max 0.0 ((w1 -. w0 -. calib) /. float_of_int probe_ops)
            end;
            Atomic.incr ready;
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            if depth = 1 then
              for i = 1 to messages do
                let before = Unix.gettimeofday () in
                let ans = Ulipc_real.Rpc.send t ~client:c i in
                let after = Unix.gettimeofday () in
                if ans <> i + 1 then failwith "Real_driver.run: echo mismatch";
                Ulipc.Histogram.record hist ((after -. before) *. 1.0e6)
              done
            else begin
              let sent = ref 0 in
              while !sent < messages do
                let k = min depth (messages - !sent) in
                let burst = List.init k (fun j -> !sent + j + 1) in
                let before = Unix.gettimeofday () in
                let answers =
                  Ulipc_real.Rpc.call_pipelined t ~client:c ~depth burst
                in
                let after = Unix.gettimeofday () in
                List.iter2
                  (fun req ans ->
                    if ans <> req + 1 then
                      failwith "Real_driver.run: echo mismatch")
                  burst answers;
                let per_msg_us =
                  (after -. before) *. 1.0e6 /. float_of_int k
                in
                for _ = 1 to k do
                  Ulipc.Histogram.record hist per_msg_us
                done;
                sent := !sent + k
              done
            end;
            hist))
  in
  while Atomic.get ready < nclients do
    Domain.cpu_relax ()
  done;
  let t0 = Unix.gettimeofday () in
  Atomic.set go true;
  let hists = List.map Domain.join clients in
  let t1 = Unix.gettimeofday () in
  Domain.join server;
  let elapsed_s = t1 -. t0 in
  let utilization =
    if elapsed_s <= 0.0 then nan
    else
      (* The server also waits before the barrier releases the clients,
         so the waiting total can exceed the measured interval — clamp. *)
      Float.max 0.0 (Float.min 1.0 (1.0 -. (!server_waiting_s /. elapsed_s)))
  in
  let latency = Ulipc.Histogram.create "round-trip (us)" in
  List.iter (fun h -> Ulipc.Histogram.merge_into ~dst:latency h) hists;
  (* All recording domains are joined: the drain is race-free. *)
  let wake_latency_p50_us, wake_latency_p99_us =
    let report =
      Ulipc_observe.Trace_analysis.analyse
        ~complete:(Ulipc_real.Trace_ring.dropped trace = 0)
        (Ulipc_real.Trace_ring.events trace)
    in
    let d = report.Ulipc_observe.Trace_analysis.wake_latency in
    ( d.Ulipc_observe.Trace_analysis.p50_us,
      d.Ulipc_observe.Trace_analysis.p99_us )
  in
  Metrics.of_real ~latency ~utilization ~depth ~wake_latency_p50_us
    ~wake_latency_p99_us ~minor_words_per_op:!minor_words_per_op ~machine
    ~protocol:(kind_of_waiting waiting)
    ~nclients
    ~messages:(nclients * messages)
    ~elapsed_s
    ~counters:(Ulipc_real.Rpc.counters t)
    ()
