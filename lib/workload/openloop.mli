(** Latency under offered load.

    The paper's barrage benchmark is closed-loop at zero think time —
    every curve is a saturation measurement.  A server in production sees
    arrivals: this workload gives each client exponentially-distributed
    {e idle} think time (a sleep, not CPU work) between requests and
    sweeps the think time to trace response time against offered load —
    the classic queueing curve, and the regime where blocking protocols
    shine (the machine idles instead of spinning between arrivals).

    Response times are measured per send with simulated clock reads. *)

type point = {
  think_mean : Ulipc_engine.Sim_time.t;
  offered_per_ms : float;
      (** upper bound on the attempted arrival rate (clients / mean think
          time); the true closed-loop rate is lower by the response time,
          so treat this as the load axis, not a drop measurement *)
  achieved_per_ms : float;  (** measured completion rate *)
  mean_response_us : float;
  p99_response_us : float;
  utilization : float;
}

val run_point :
  ?capacity:int ->
  ?seed:int ->
  machine:Ulipc_machines.Machine.t ->
  kind:Ulipc.Protocol_kind.t ->
  nclients:int ->
  messages_per_client:int ->
  think_mean:Ulipc_engine.Sim_time.t ->
  unit ->
  point
(** One load level.  @raise Failure if the run does not complete. *)

val sweep :
  ?capacity:int ->
  ?seed:int ->
  machine:Ulipc_machines.Machine.t ->
  kind:Ulipc.Protocol_kind.t ->
  nclients:int ->
  messages_per_client:int ->
  think_means:Ulipc_engine.Sim_time.t list ->
  unit ->
  point list

val pp_point : Format.formatter -> point -> unit
