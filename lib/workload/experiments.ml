open Ulipc_engine
open Ulipc_os

type series = { label : string; points : (int * Metrics.t) list }
type check = { claim : string; holds : bool }
type figure = { id : string; title : string; series : series list; checks : check list }

let messages_default = 5_000

(* ------------------------------------------------------------------ *)
(* Helpers *)

let run_one ?(messages = messages_default) ?(fixed = false) ?capacity machine
    kind nclients =
  Driver.run
    (Driver.config ?capacity ~machine ~kind ~nclients
       ~messages_per_client:messages ~fixed_priority:fixed ())

let sweep ?messages ?fixed ~label machine kind clients =
  {
    label;
    points =
      List.map (fun n -> (n, run_one ?messages ?fixed machine kind n)) clients;
  }

let tp series n =
  match List.assoc_opt n series.points with
  | Some m -> m.Metrics.throughput_msg_per_ms
  | None -> invalid_arg (Printf.sprintf "no point at %d clients" n)

let metric series n =
  match List.assoc_opt n series.points with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "no point at %d clients" n)

let peak series = List.fold_left (fun acc (_, m) -> Float.max acc m.Metrics.throughput_msg_per_ms) 0.0 series.points
let trough series =
  List.fold_left
    (fun acc (_, m) -> Float.min acc m.Metrics.throughput_msg_per_ms)
    infinity series.points

(* Relative spread of a curve: (max - min) / max. *)
let spread series =
  let hi = peak series and lo = trough series in
  if hi <= 0.0 then 0.0 else (hi -. lo) /. hi

let dominates a b =
  (* [a] is above [b] at every common client count. *)
  List.for_all
    (fun (n, _) ->
      match List.assoc_opt n b.points with
      | None -> true
      | Some _ -> tp a n > tp b n)
    a.points

let checkf holds fmt = Format.kasprintf (fun claim -> { claim; holds }) fmt

let uniprocessor_clients = [ 1; 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* Table 1 *)

type table1_row = { operation : string; sgi_us : float; ibm_us : float }

let univ_int : (int -> Univ.t) * (Univ.t -> int option) = Univ.embed ()

(* Average cost of one queue-pair iteration measured by a single process in
   a tight loop, exactly as §2.2 measures the Table 1 primitives. *)
let measure_loop machine body_iter ~iters =
  let m = machine.Ulipc_machines.Machine.costs in
  let kernel =
    Kernel.create ~ncpus:1
      ~policy:(machine.Ulipc_machines.Machine.policy ())
      ~costs:m ()
  in
  let elapsed = ref Sim_time.zero in
  let setup = body_iter kernel in
  let _ =
    Kernel.spawn kernel ~name:"measure" (fun () ->
        let t0 = Usys.time () in
        for _ = 1 to iters do
          setup ()
        done;
        let t1 = Usys.time () in
        elapsed := Sim_time.sub t1 t0)
  in
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> failwith (Format.asprintf "measure_loop: %a" Kernel.pp_result r));
  Sim_time.to_us !elapsed /. float_of_int iters

let measure_queue_pair machine =
  measure_loop machine ~iters:1000 (fun _kernel ->
      let q =
        Ulipc_shm.Ms_queue.create
          ~costs:machine.Ulipc_machines.Machine.costs ~capacity:4 ()
      in
      fun () ->
        ignore (Ulipc_shm.Ms_queue.enqueue q 1 : bool);
        ignore (Ulipc_shm.Ms_queue.dequeue q : int option))

let measure_msgq_pair machine =
  let inj, _ = univ_int in
  measure_loop machine ~iters:1000 (fun kernel ->
      let q = Kernel.new_msgq kernel ~capacity:4 in
      fun () ->
        Usys.msgsnd q ~mtype:1 (inj 1);
        ignore (Usys.msgrcv q ~mtype:0 : Univ.t))

(* §2.2: n processes barrier, then enter a tight yield loop; the reported
   time is the average loop-trip time per process — total elapsed divided
   by the total number of trips. *)
let measure_concurrent_yields machine ~procs =
  let iters = 1000 in
  let kernel =
    Kernel.create ~ncpus:1
      ~policy:(machine.Ulipc_machines.Machine.policy ())
      ~costs:machine.Ulipc_machines.Machine.costs ()
  in
  for _ = 1 to procs do
    ignore
      (Kernel.spawn kernel ~name:"yielder" (fun () ->
           for _ = 1 to iters do
             Usys.yield ()
           done))
  done;
  (match Kernel.run kernel with
  | Kernel.Completed -> ()
  | r -> failwith (Format.asprintf "concurrent yields: %a" Kernel.pp_result r));
  Sim_time.to_us (Kernel.now kernel) /. float_of_int (procs * iters)

let table1 () =
  let sgi = Ulipc_machines.Sgi_indy.machine in
  let ibm = Ulipc_machines.Ibm_p4.machine in
  let row operation f = { operation; sgi_us = f sgi; ibm_us = f ibm } in
  [
    row "enqueue/dequeue pair" measure_queue_pair;
    row "msgsnd/msgrcv pair" measure_msgq_pair;
    row "concurrent yields, 1 process" (measure_concurrent_yields ~procs:1);
    row "concurrent yields, 2 processes" (measure_concurrent_yields ~procs:2);
    row "concurrent yields, 4 processes" (measure_concurrent_yields ~procs:4);
  ]

let pp_table1 ppf rows =
  Format.fprintf ppf "%-32s %10s %10s@." "Primitive Operation" "SGI" "IBM";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-32s %8.1fus %8.1fus@." r.operation r.sgi_us
        r.ibm_us)
    rows

(* ------------------------------------------------------------------ *)
(* Figure 2: BSS vs SYSV on both uniprocessors *)

let fig2_machine ?messages ~suffix machine ~rising =
  let bss =
    sweep ?messages ~label:"BSS" machine Ulipc.Protocol_kind.BSS
      uniprocessor_clients
  in
  let sysv =
    sweep ?messages ~label:"SYSV" machine Ulipc.Protocol_kind.SYSV
      uniprocessor_clients
  in
  let m1 = metric bss 1 in
  let checks =
    [
      checkf (tp bss 1 > tp sysv 1) "BSS beats System V at one client (%.1f vs %.1f msg/ms)" (tp bss 1) (tp sysv 1);
      checkf (peak bss /. tp sysv 1 >= 1.4)
        "user-level IPC outperforms kernel IPC by >= 1.4x (peak ratio %.2f)"
        (peak bss /. tp sysv 1);
      checkf (spread sysv < spread bss +. 0.1)
        "System V curve is flatter than BSS (spread %.2f vs %.2f)" (spread sysv)
        (spread bss);
    ]
    @
    if rising then
      [
        checkf (tp bss 6 > tp bss 1)
          "throughput increases with clients, the non-intuitive SGI effect \
           (%.1f -> %.1f msg/ms)"
          (tp bss 1) (tp bss 6);
        checkf
          (let y = Metrics.yields_per_message m1 in
           y >= 3.0 && y <= 6.5)
          "multiple yields per process per round-trip, the paper's ~2.5 \
           (measured %.2f per process)"
          (Metrics.yields_per_message m1 /. 2.0);
        checkf
          (let rt = Metrics.round_trip_us m1 in
           rt >= 85.0 && rt <= 150.0)
          "round-trip on the order of the paper's 119 us at one client \
           (measured %.1f us)"
          (Metrics.round_trip_us m1);
        checkf
          (Metrics.server_vcsw_per_message m1 >= 0.95
          && Metrics.server_vcsw_per_message m1 <= 1.05)
          "server makes one voluntary context switch per request at one \
           client (measured %.2f)"
          (Metrics.server_vcsw_per_message m1);
      ]
    else
      [
        checkf (tp bss 6 < 0.75 *. peak bss)
          "throughput rolls off as clients are added (peak %.1f -> %.1f \
           msg/ms at 6)"
          (peak bss) (tp bss 6);
      ]
  in
  {
    id = "fig2" ^ suffix;
    title =
      Printf.sprintf
        "Figure 2%s: uniprocessor server throughput, BSS vs System V (%s)"
        suffix machine.Ulipc_machines.Machine.name;
    series = [ bss; sysv ];
    checks;
  }

let fig2 ?messages () =
  ( fig2_machine ?messages ~suffix:"a" Ulipc_machines.Sgi_indy.machine
      ~rising:true,
    fig2_machine ?messages ~suffix:"b" Ulipc_machines.Ibm_p4.machine
      ~rising:false )

(* ------------------------------------------------------------------ *)
(* Figure 3: non-degrading priorities *)

let fig3_machine ?messages ~suffix machine ~gain_lo ~gain_hi =
  let bss =
    sweep ?messages ~label:"BSS" machine Ulipc.Protocol_kind.BSS
      uniprocessor_clients
  in
  let bss_fixed =
    sweep ?messages ~fixed:true ~label:"BSS-fixed" machine
      Ulipc.Protocol_kind.BSS uniprocessor_clients
  in
  let sysv =
    sweep ?messages ~label:"SYSV" machine Ulipc.Protocol_kind.SYSV
      uniprocessor_clients
  in
  let gain = tp bss_fixed 1 /. tp bss 1 in
  let checks =
    [
      checkf (dominates bss_fixed bss)
        "fixed priorities beat degrading priorities at every client count";
      checkf
        (gain >= gain_lo && gain <= gain_hi)
        "fixed-priority gain at one client in [%.0f%%, %.0f%%] (measured \
         +%.0f%%)"
        ((gain_lo -. 1.0) *. 100.)
        ((gain_hi -. 1.0) *. 100.)
        ((gain -. 1.0) *. 100.);
    ]
  in
  {
    id = "fig3" ^ suffix;
    title =
      Printf.sprintf
        "Figure 3%s: non-degrading priorities, BSS (%s)" suffix
        machine.Ulipc_machines.Machine.name;
    series = [ bss_fixed; bss; sysv ];
    checks;
  }

let fig3 ?messages () =
  ( fig3_machine ?messages ~suffix:"a" Ulipc_machines.Sgi_indy.machine
      ~gain_lo:1.3 ~gain_hi:1.9,
    fig3_machine ?messages ~suffix:"b" Ulipc_machines.Ibm_p4.machine
      ~gain_lo:1.1 ~gain_hi:1.7 )

(* ------------------------------------------------------------------ *)
(* Figure 6: Both Sides Wait *)

let fig6_machine ?messages ~suffix machine =
  let bss =
    sweep ?messages ~label:"BSS" machine Ulipc.Protocol_kind.BSS
      uniprocessor_clients
  in
  let bsw =
    sweep ?messages ~label:"BSW" machine Ulipc.Protocol_kind.BSW
      uniprocessor_clients
  in
  let sysv =
    sweep ?messages ~label:"SYSV" machine Ulipc.Protocol_kind.SYSV
      uniprocessor_clients
  in
  let ratio = tp bsw 1 /. tp sysv 1 in
  let checks =
    [
      checkf
        (ratio >= 0.75 && ratio <= 1.3)
        "BSW more or less matches kernel-mediated IPC at one client \
         (BSW/SYSV = %.2f)"
        ratio;
      checkf
        (tp bsw 1 < 0.75 *. tp bss 1)
        "blocking costs BSW the busy-wait advantage (BSW %.1f vs BSS %.1f \
         msg/ms at one client)"
        (tp bsw 1) (tp bss 1);
      checkf
        (let m = metric bsw 1 in
         let c = m.Metrics.counters in
         let per_msg =
           float_of_int
             (c.Ulipc.Counters.client_blocks + c.Ulipc.Counters.server_blocks
            + c.Ulipc.Counters.client_wakeups
            + c.Ulipc.Counters.server_wakeups)
           /. float_of_int (max 1 m.Metrics.messages)
         in
         per_msg >= 3.5 && per_msg <= 4.5)
        "four system calls per round-trip at one client (two V, two P)";
    ]
  in
  {
    id = "fig6" ^ suffix;
    title =
      Printf.sprintf "Figure 6%s: Both Sides Wait (%s)" suffix
        machine.Ulipc_machines.Machine.name;
    series = [ bss; bsw; sysv ];
    checks;
  }

let fig6 ?messages () =
  ( fig6_machine ?messages ~suffix:"a" Ulipc_machines.Sgi_indy.machine,
    fig6_machine ?messages ~suffix:"b" Ulipc_machines.Ibm_p4.machine )

(* ------------------------------------------------------------------ *)
(* Figure 8: Both Sides Wait and Yield *)

let fig8_machine ?messages ~suffix machine ~degrades =
  let bss =
    sweep ?messages ~label:"BSS" machine Ulipc.Protocol_kind.BSS
      uniprocessor_clients
  in
  let bsw =
    sweep ?messages ~label:"BSW" machine Ulipc.Protocol_kind.BSW
      uniprocessor_clients
  in
  let bswy =
    sweep ?messages ~label:"BSWY" machine Ulipc.Protocol_kind.BSWY
      uniprocessor_clients
  in
  let bswy_fixed =
    sweep ?messages ~fixed:true ~label:"BSWY-fixed" machine
      Ulipc.Protocol_kind.BSWY uniprocessor_clients
  in
  let bss_fixed =
    sweep ?messages ~fixed:true ~label:"BSS-fixed" machine
      Ulipc.Protocol_kind.BSS uniprocessor_clients
  in
  let checks =
    [
      checkf
        (tp bswy 1 >= 1.1 *. tp bsw 1)
        "the hand-off busy_waits are effective at one client (BSWY %.1f vs \
         BSW %.1f msg/ms)"
        (tp bswy 1) (tp bsw 1);
      checkf
        (let r = tp bswy_fixed 1 /. tp bss_fixed 1 in
         r >= 0.85 && r <= 1.15)
        "under fixed priorities BSWY matches busy-waiting BSS (ratio %.2f)"
        (tp bswy_fixed 1 /. tp bss_fixed 1);
    ]
    @
    if degrades then
      [
        checkf
          (tp bswy 6 < 0.75 *. tp bss 6)
          "with more clients the blind yields hurt: BSWY falls well below \
           BSS (%.1f vs %.1f msg/ms at 6)"
          (tp bswy 6) (tp bss 6);
      ]
    else []
  in
  {
    id = "fig8" ^ suffix;
    title =
      Printf.sprintf "Figure 8%s: Both Sides Wait and Yield (%s)" suffix
        machine.Ulipc_machines.Machine.name;
    series = [ bss_fixed; bswy_fixed; bss; bswy; bsw ];
    checks;
  }

let fig8 ?messages () =
  ( fig8_machine ?messages ~suffix:"a" Ulipc_machines.Sgi_indy.machine
      ~degrades:true,
    fig8_machine ?messages ~suffix:"b" Ulipc_machines.Ibm_p4.machine
      ~degrades:false )

(* ------------------------------------------------------------------ *)
(* Figure 10: BSLS MAX_SPIN sensitivity *)

let fig10 ?messages () =
  let machine = Ulipc_machines.Sgi_indy.machine in
  let spins = [ 1; 5; 10; 20 ] in
  let series =
    List.map
      (fun s ->
        sweep ?messages
          ~label:(Printf.sprintf "BSLS(%d)" s)
          machine (Ulipc.Protocol_kind.BSLS s) uniprocessor_clients)
      spins
  in
  let find s = List.nth series (Option.get (List.find_index (( = ) s) spins)) in
  let s20 = find 20 and s10 = find 10 and s1 = find 1 in
  let stats s n =
    let m = metric s n in
    let sends = max 1 m.Metrics.messages in
    let c = m.Metrics.counters in
    ( float_of_int c.Ulipc.Counters.spin_fallthroughs
      /. float_of_int sends *. 100.0,
      float_of_int c.Ulipc.Counters.spin_iterations /. float_of_int sends )
  in
  let fall1, iter1 = stats s20 1 in
  let fall6, iter6 = stats s20 6 in
  let checks =
    [
      checkf
        (List.for_all (fun n -> tp s20 n >= 0.95 *. tp s10 n) [ 4; 5; 6 ])
        "performance generally improves with MAX_SPIN: 20 never worse than \
         10 under load";
      checkf
        (tp s1 6 < 0.6 *. tp s20 6)
        "a too-small MAX_SPIN collapses under load (BSLS(1) %.1f vs \
         BSLS(20) %.1f msg/ms at 6 clients)"
        (tp s1 6) (tp s20 6);
      checkf (fall1 <= 5.0)
        "at MAX_SPIN 20 a single client rarely blocks (fall-through %.1f%%, \
         paper ~3%%)"
        fall1;
      checkf
        (iter1 >= 1.0 && iter1 <= 3.5)
        "a single client sees its reply within ~2 poll iterations (measured \
         %.1f)"
        iter1;
      checkf (fall6 <= 15.0)
        "with six clients fall-throughs stay bounded (%.1f%%, paper ~10%%)"
        fall6;
      checkf
        (iter6 >= 1.0 && iter6 <= 5.0)
        "loop iterations stay in the paper's 2-4 band under load (%.1f at 1 \
         client, %.1f at 6; paper reports 2 -> 4)"
        iter1 iter6;
    ]
  in
  {
    id = "fig10";
    title = "Figure 10: Both Sides Limited Spin, MAX_SPIN sensitivity (sgi-indy)";
    series;
    checks;
  }

(* ------------------------------------------------------------------ *)
(* Figure 11: the 8-CPU SGI Challenge *)

let fig11 ?messages () =
  let machine = Ulipc_machines.Sgi_challenge.machine in
  let clients = [ 1; 2; 4; 6; 8; 10; 12 ] in
  let bss = sweep ?messages ~label:"BSS" machine Ulipc.Protocol_kind.BSS clients in
  let bsls =
    List.map
      (fun s ->
        sweep ?messages
          ~label:(Printf.sprintf "BSLS(%d)" s)
          machine (Ulipc.Protocol_kind.BSLS s) clients)
      [ 2; 5; 10 ]
  in
  let sysv =
    sweep ?messages ~label:"SYSV" machine Ulipc.Protocol_kind.SYSV clients
  in
  let bsls2 = List.nth bsls 0 and bsls10 = List.nth bsls 2 in
  let checks =
    [
      checkf
        (peak bss > 1.5 *. tp bss 1)
        "BSS throughput rises rapidly until the server saturates (%.0f -> \
         %.0f msg/ms)"
        (tp bss 1) (peak bss);
      checkf
        (tp bss 6 > 0.8 *. peak bss)
        "BSS stays near saturation once the server is busy";
      checkf (dominates bss sysv)
        "System V message queues perform the worst and do not scale";
      checkf (spread sysv < 0.15) "the System V curve is flat (spread %.2f)"
        (spread sysv);
      checkf
        (let r = tp bsls10 2 /. tp bss 2 in
         r >= 0.8)
        "BSLS tracks BSS while spins succeed (ratio %.2f at 2 clients)"
        (tp bsls10 2 /. tp bss 2);
      checkf
        (List.exists (fun n -> tp bsls2 n < 0.3 *. tp bss n) clients)
        "once clients out-spin MAX_SPIN the wake-up feedback collapses BSLS";
      checkf
        (let collapse s =
           List.find_opt (fun n -> tp s n < 0.5 *. peak s) clients
         in
         match (collapse bsls2, collapse bsls10) with
         | Some n2, Some n10 -> n2 <= n10
         | Some _, None -> true
         | None, _ -> false)
        "larger MAX_SPIN defers the collapse point";
    ]
  in
  {
    id = "fig11";
    title = "Figure 11: multiprocessor server throughput (sgi-challenge, 8 CPUs)";
    series = (bss :: bsls) @ [ sysv ];
    checks;
  }

(* ------------------------------------------------------------------ *)
(* Figure 12: Linux with the modified sched_yield *)

let fig12 ?messages () =
  let machine = Ulipc_machines.Linux486.modified_yield in
  let clients = uniprocessor_clients in
  let bss = sweep ?messages ~label:"BSS" machine Ulipc.Protocol_kind.BSS clients in
  let bswy =
    sweep ?messages ~label:"BSWY" machine Ulipc.Protocol_kind.BSWY clients
  in
  let handoff =
    sweep ?messages ~label:"HANDOFF" machine Ulipc.Protocol_kind.HANDOFF clients
  in
  let sysv =
    sweep ?messages ~label:"SYSV" machine Ulipc.Protocol_kind.SYSV clients
  in
  (* The stock-scheduler data point quoted in §6: tens of milliseconds per
     round-trip until sched_yield is fixed. *)
  let stock =
    run_one ~messages:30 Ulipc_machines.Linux486.stock Ulipc.Protocol_kind.BSS 1
  in
  let stock_rt_ms = Metrics.round_trip_us stock /. 1000.0 in
  let mod_rt = Metrics.round_trip_us (metric bss 1) in
  let close a b lo hi =
    let r = a /. b in
    r >= lo && r <= hi
  in
  let checks =
    [
      checkf (stock_rt_ms > 5.0)
        "stock Linux 1.0 sched_yield leaves BSS at millisecond round-trips \
         (measured %.0f ms, paper ~33 ms)"
        stock_rt_ms;
      checkf
        (mod_rt >= 90.0 && mod_rt <= 160.0)
        "the modified sched_yield restores ~120 us round-trips (measured \
         %.0f us)"
        mod_rt;
      checkf
        (List.for_all (fun n -> close (tp bswy n) (tp bss n) 0.9 1.1) clients)
        "BSWY — without client-side spinning — performs as well as \
         busy-waiting BSS";
      checkf
        (List.for_all
           (fun n -> close (tp handoff n) (tp bswy n) 0.8 1.15)
           clients)
        "the handoff system call roughly matches BSWY and does not improve \
         it further (the eager hand-off costs a little request batching at \
         several clients)";
    ]
  in
  {
    id = "fig12";
    title =
      "Figure 12: Linux 1.0 with modified sched_yield (66 MHz 486)";
    series = [ bss; bswy; handoff; sysv ];
    checks;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let all_checks f = f.checks
let failed_checks f = List.filter (fun c -> not c.holds) f.checks

let pp_figure ppf f =
  Format.fprintf ppf "== %s ==@." f.title;
  let clients =
    List.sort_uniq compare
      (List.concat_map (fun s -> List.map fst s.points) f.series)
  in
  Format.fprintf ppf "%8s" "clients";
  List.iter (fun s -> Format.fprintf ppf " %12s" s.label) f.series;
  Format.fprintf ppf "   (msg/ms)@.";
  List.iter
    (fun n ->
      Format.fprintf ppf "%8d" n;
      List.iter
        (fun s ->
          match List.assoc_opt n s.points with
          | Some m -> Format.fprintf ppf " %12.2f" m.Metrics.throughput_msg_per_ms
          | None -> Format.fprintf ppf " %12s" "-")
        f.series;
      Format.fprintf ppf "@.")
    clients;
  List.iter
    (fun c ->
      Format.fprintf ppf "  [%s] %s@." (if c.holds then "OK" else "FAIL") c.claim)
    f.checks
