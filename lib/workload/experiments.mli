(** One definition per table and figure of the paper's evaluation.

    Each [figN] function runs the workload sweeps that figure plots and
    returns a {!figure}: the series (one per curve), the paper's
    qualitative claims as executable {!check}s, and a pretty-printer that
    renders the same rows the paper reports.  The benchmark harness prints
    them; the integration tests run them at reduced message counts and
    assert every check. *)

type series = {
  label : string;
  points : (int * Metrics.t) list;  (** client count → run metrics *)
}

type check = {
  claim : string;  (** the paper's statement, paraphrased *)
  holds : bool;
}

type figure = {
  id : string;  (** e.g. ["fig2a"] *)
  title : string;
  series : series list;
  checks : check list;
}

val messages_default : int
(** Messages per client used by the full benchmark harness (5000). *)

(** {1 Table 1 — primitive costs} *)

type table1_row = { operation : string; sgi_us : float; ibm_us : float }

val table1 : unit -> table1_row list
(** Measured inside the simulator exactly as §2.2 describes: the
    enqueue/dequeue and msgsnd/msgrcv pairs by a single process in a tight
    loop; concurrent yields by [n] processes that barrier and then yield in
    a loop, reporting average loop-trip time per process. *)

val pp_table1 : Format.formatter -> table1_row list -> unit

(** {1 Figures} *)

val fig2 : ?messages:int -> unit -> figure * figure
(** Uniprocessor BSS vs System V, SGI (a) and IBM (b), 1–6 clients. *)

val fig3 : ?messages:int -> unit -> figure * figure
(** Figure 2 plus the non-degrading (fixed) priority BSS curve. *)

val fig6 : ?messages:int -> unit -> figure * figure
(** Both Sides Wait against BSS and System V. *)

val fig8 : ?messages:int -> unit -> figure * figure
(** Both Sides Wait and Yield, default and fixed-priority scheduling. *)

val fig10 : ?messages:int -> unit -> figure
(** BSLS sensitivity to MAX_SPIN on the SGI uniprocessor, including the
    §4.2 block-percentage and loop-iteration statistics. *)

val fig11 : ?messages:int -> unit -> figure
(** The 8-CPU SGI Challenge: BSS, BSLS at three MAX_SPIN values, SYSV. *)

val fig12 : ?messages:int -> unit -> figure
(** Linux with the modified [sched_yield]: BSS, BSWY, HANDOFF — plus the
    stock-scheduler round-trip the §6 text quotes (~33 ms). *)

val pp_figure : Format.formatter -> figure -> unit
(** Aligned text table: one row per client count, one column per series,
    followed by the shape checks. *)

val all_checks : figure -> check list
val failed_checks : figure -> check list
