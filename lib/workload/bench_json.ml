(* JSON emission for the per-PR perf baseline (BENCH_real.json).

   Hand-rolled on purpose: the schema is flat, the repo takes no JSON
   dependency, and keeping the writer here (not in bench/main.ml) lets
   the test suite regenerate a file and parse it back.  The one subtlety
   is non-finite floats — Metrics.of_real legitimately reports nan for
   utilization (no simulated kernel) and for throughput of a zero-length
   interval, and Printf "%f" would emit a bare [nan], which is not JSON.
   Every float funnels through [json_float], which maps nan/±inf to
   null. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.3f" f else "null"

let json_float_opt = function None -> "null" | Some f -> json_float f

(* One telemetry frame, points flattened into a JSON object.  The whole
   series stays on the row's line (one row per line is the format's
   contract), and the caller emits it as the row's LAST key: compare.exe
   scans each line for the FIRST occurrence of every key it gates on, so
   a frame point that happens to share a name with a row column (e.g.
   [messages]) must come after it. *)
let frame_json (f : Ulipc_observe.Series.frame) =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{ \"t_us\": %s, \"window_us\": %s, \"points\": { "
       (json_float f.Ulipc_observe.Series.t_us)
       (json_float f.Ulipc_observe.Series.window_us));
  Array.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "\"%s\": %s" (json_escape name) (json_float v)))
    f.Ulipc_observe.Series.points;
  Buffer.add_string b " } }";
  Buffer.contents b

let series_json frames =
  "[" ^ String.concat ", " (List.map frame_json frames) ^ "]"

let write ~path ~quick ~micro ?(sem = []) ~real () =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  let sep i n = if i = n - 1 then "" else "," in
  p "{\n";
  p "  \"schema\": \"ulipc-bench-real/9\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"micro_ns_per_op\": [\n";
  let n = List.length micro in
  List.iteri
    (fun i (name, ns) ->
      p "    { \"name\": \"%s\", \"ns_per_op\": %s }%s\n" (json_escape name)
        (json_float ns) (sep i n))
    micro;
  p "  ],\n";
  p "  \"sem_wake_latency\": [\n";
  let n = List.length sem in
  List.iteri
    (fun i (r : Sem_bench.result) ->
      p
        "    { \"waiters\": %d, \"reps\": %d, \"samples\": %d, \"p50_us\": \
         %s, \"p99_us\": %s, \"max_us\": %s, \"violations\": %d, \
         \"broadcasts\": %d }%s\n"
        r.Sem_bench.waiters r.Sem_bench.reps
        (Array.length r.Sem_bench.samples)
        (json_float r.Sem_bench.p50_us)
        (json_float r.Sem_bench.p99_us)
        (json_float r.Sem_bench.max_us)
        r.Sem_bench.violations r.Sem_bench.broadcasts (sep i n))
    sem;
  p "  ],\n";
  p "  \"real_driver\": [\n";
  let n = List.length real in
  List.iteri
    (fun i (backend, transport, m) ->
      p
        "    { \"backend\": \"%s\", \"transport\": \"%s\", \"protocol\": \
         \"%s\", \"nclients\": %d, \
         \"nservers\": %d, \"depth\": %d, \"messages\": %d, \
         \"throughput_msg_per_ms\": %s, \"round_trip_us\": %s, \
         \"latency_p50_us\": %s, \"latency_p99_us\": %s, \"latency_max_us\": \
         %s, \"wake_latency_p50_us\": %s, \"wake_latency_p99_us\": %s, \
         \"utilization\": %s, \"utilization_max\": %s, \
         \"minor_words_per_op\": %s, \"series\": %s }%s\n"
        (json_escape backend) (json_escape transport)
        (json_escape (Ulipc.Protocol_kind.name m.Metrics.protocol))
        m.Metrics.nclients m.Metrics.nservers m.Metrics.depth
        m.Metrics.messages
        (json_float m.Metrics.throughput_msg_per_ms)
        (json_float (Metrics.round_trip_us m))
        (json_float_opt (Metrics.latency_percentile m 50.0))
        (json_float_opt (Metrics.latency_percentile m 99.0))
        (json_float_opt (Metrics.latency_max m))
        (json_float m.Metrics.wake_latency_p50_us)
        (json_float m.Metrics.wake_latency_p99_us)
        (json_float m.Metrics.utilization)
        (json_float m.Metrics.utilization_max)
        (json_float m.Metrics.minor_words_per_op)
        (series_json m.Metrics.series) (sep i n))
    real;
  p "  ]\n";
  p "}\n";
  close_out oc
