(** The echo workload across fork'd PROCESSES: the paper's protocols
    over the shared-memory arena ([Ulipc_procipc]), raced against pipe
    and Unix-domain-socket baselines on the same machine.  See
    proc_driver.ml for the fork/barrier/report discipline. *)

val kind_of_waiting : Ulipc_real.Rpc.waiting -> Ulipc.Protocol_kind.t

val run :
  ?machine:string ->
  ?capacity:int ->
  ?depth:int ->
  ?traced:bool ->
  ?events_out:Ulipc_observe.Event.t list ref ->
  ?dropped_out:int ref ->
  nclients:int ->
  messages:int ->
  Ulipc_procipc.Proc_rpc.waiting ->
  Metrics.t
(** Fork one server and [nclients] clients over a fresh arena session;
    each client issues [messages] echo calls ([depth] > 1 pipelines
    them in sliding windows).  Tracing is OFF by default (the fd
    baselines can't be traced, so traced shm rows would not be
    comparable); [traced:true] turns it on, and [events_out], which
    implies it, receives the merged pid-namespaced trace of every
    process, sorted — the cross-process feed for [bin/ulipc_trace].
    [dropped_out] receives the total ring-overflow drop count, the
    [~complete] input of {!Ulipc_observe.Trace_analysis.analyse}.
    [machine] defaults to ["proc"]. *)

type fd_transport = Fd_pipe | Fd_socket

val fd_transport_name : fd_transport -> string
(** ["pipe"] / ["socket"] — the transport strings of the bench rows. *)

val run_fd :
  ?machine:string ->
  transport:fd_transport ->
  nclients:int ->
  messages:int ->
  unit ->
  Metrics.t
(** The kernel-IPC baselines: the same echo workload over per-client
    pipe pairs or Unix-domain socketpairs, 8-byte payloads, the server
    blocking in [read]/[select].  Reported under BSW (the kernel's
    blocking read {e is} a sleep/wake-up protocol), [machine] defaults
    to ["proc"]. *)
