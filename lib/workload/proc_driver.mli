(** The echo workload across fork'd PROCESSES: the paper's protocols
    over the shared-memory arena ([Ulipc_procipc]), raced against pipe
    and Unix-domain-socket baselines on the same machine.  See
    proc_driver.ml for the fork/barrier/report discipline. *)

val kind_of_waiting : Ulipc_real.Rpc.waiting -> Ulipc.Protocol_kind.t

val run :
  ?machine:string ->
  ?capacity:int ->
  ?depth:int ->
  ?traced:bool ->
  ?telemetry:Ulipc_observe.Telemetry.t ->
  ?events_out:Ulipc_observe.Event.t list ref ->
  ?dropped_out:int ref ->
  nclients:int ->
  messages:int ->
  Ulipc_procipc.Proc_rpc.waiting ->
  Metrics.t
(** Fork one server and [nclients] clients over a fresh arena session;
    each client issues [messages] echo calls ([depth] > 1 pipelines
    them in sliding windows).  Tracing is OFF by default (the fd
    baselines can't be traced, so traced shm rows would not be
    comparable); [traced:true] turns it on, and [events_out], which
    implies it, receives the merged pid-namespaced trace of every
    process, sorted — the cross-process feed for [bin/ulipc_trace].
    [dropped_out] receives the total ring-overflow drop count, the
    [~complete] input of {!Ulipc_observe.Trace_analysis.analyse}.
    [machine] defaults to ["proc"].

    Shm runs are live-sampled across the fork boundary: every client
    publishes its message count in an arena word it alone writes, and
    the parent — which must not spawn a sampler domain before its
    children have been reaped (OCaml forbids fork after domain spawn) —
    samples inline with [Telemetry.tick] from its report-collection
    select loop, reading the arena words plus request-ring-depth and
    slab-occupancy gauges.  The timeline lands in [Metrics.series];
    pass [telemetry] (a fresh registry per run) to set the interval or
    observe frames via [on_frame].  The fd baselines ({!run_fd}) have
    no shared instrument plane and report an empty series. *)

type fd_transport = Fd_pipe | Fd_socket

val fd_transport_name : fd_transport -> string
(** ["pipe"] / ["socket"] — the transport strings of the bench rows. *)

val run_fd :
  ?machine:string ->
  transport:fd_transport ->
  nclients:int ->
  messages:int ->
  unit ->
  Metrics.t
(** The kernel-IPC baselines: the same echo workload over per-client
    pipe pairs or Unix-domain socketpairs, 8-byte payloads, the server
    blocking in [read]/[select].  Reported under BSW (the kernel's
    blocking read {e is} a sleep/wake-up protocol), [machine] defaults
    to ["proc"]. *)
