(* The §2.2 echo workload across PROCESSES: one fork'd server and
   [nclients] fork'd clients over the shared-memory arena
   (Ulipc_procipc), plus the pipe and Unix-domain-socket baselines the
   shm rows race against — the same-machine IPC ladder of the FreeBSD
   study (arXiv:2008.02145), with the paper's protocols on the shm
   rung.

   Fork discipline: the whole session — arena, rings, semaphores, slab,
   the barrier words below — is carved by the parent BEFORE any fork,
   so children inherit the mapping and the offset-holding records.
   Children never return into driver code: each runs its role, marshals
   a report up its pipe and [Unix._exit]s (no atexit, no double-flushed
   stdio; the parent flushes std streams before forking so no buffered
   bytes are duplicated into the children).

   Timing discipline mirrors Real_driver: a start barrier (two arena
   words) keeps fork+exec cost out of the measured interval.  [t0] is
   read by the parent once every client has checked in; each client
   stamps its own finish time and [t1] is the latest of them — valid
   because CLOCK_MONOTONIC is per-boot and system-wide, so child stamps
   and parent stamps share an origin (see Clock).

   Reports ride Marshal over a per-child pipe: Histogram and Counters
   are flat records of base types, and trace events are namespaced with
   the child's pid BEFORE marshalling (every process records as domain
   0 — Event.namespace_actor keeps the merged stream's actors unique).
   The merged, sorted stream feeds the same Trace_analysis the
   in-process driver uses, so cross-process runs report wake-latency
   percentiles (and can be checked against the full invariant suite by
   bin/ulipc_trace). *)

let kind_of_waiting = Real_driver.kind_of_waiting

let probe_warmup = 32
let probe_ops = 512

type child_report = {
  r_counters : Ulipc.Counters.t;
  r_hist : Ulipc.Histogram.t option; (* clients only *)
  r_waiting_s : float; (* server only *)
  r_finish_us : float;
  r_minor_words : float; (* client 0's probe; nan elsewhere *)
  r_events : Ulipc_observe.Event.t list; (* pid-namespaced *)
  r_dropped : int;
}

(* Fork one child running [role], reporting over a fresh pipe.  The
   child's exceptions become a message on stderr and exit code 2 — the
   parent turns a missing report into a failure instead of hanging. *)
let fork_child role =
  let rd, wr = Unix.pipe ~cloexec:false () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close rd;
    let code =
      try
        let report = role () in
        let oc = Unix.out_channel_of_descr wr in
        Marshal.to_channel oc report [];
        flush oc;
        0
      with e ->
        Printf.eprintf "[proc child %d] %s\n%!" (Unix.getpid ())
          (Printexc.to_string e);
        2
    in
    Unix._exit code
  | pid ->
    Unix.close wr;
    (pid, rd)

let read_report (pid, rd) =
  let ic = Unix.in_channel_of_descr rd in
  let report =
    match (Marshal.from_channel ic : child_report) with
    | r -> Some r
    | exception End_of_file -> None
  in
  close_in ic (* closes rd *);
  let _, status = Unix.waitpid [] pid in
  match (report, status) with
  | Some r, Unix.WEXITED 0 -> r
  | None, Unix.WEXITED 0 ->
    failwith (Printf.sprintf "Proc_driver: child %d sent no report" pid)
  | _, Unix.WEXITED n ->
    failwith (Printf.sprintf "Proc_driver: child %d exited with %d" pid n)
  | _, Unix.WSIGNALED s ->
    failwith (Printf.sprintf "Proc_driver: child %d killed by signal %d" pid s)
  | _, Unix.WSTOPPED s ->
    failwith (Printf.sprintf "Proc_driver: child %d stopped by signal %d" pid s)

(* Drain this process's trace copy into a pid-namespaced event list. *)
let harvest_events trace =
  match trace with
  | None -> ([], 0)
  | Some sink ->
    let pid = Unix.getpid () in
    ( List.map
        (Ulipc_observe.Event.namespace_actor ~pid)
        (Ulipc_real.Trace_ring.events sink),
      Ulipc_real.Trace_ring.dropped sink )

let child_report ?hist ?(waiting_s = 0.0) ?(minor_words = nan) ~finish_us
    ~counters ~trace () =
  let events, dropped = harvest_events trace in
  {
    r_counters = counters;
    r_hist = hist;
    r_waiting_s = waiting_s;
    r_finish_us = finish_us;
    r_minor_words = minor_words;
    r_events = events;
    r_dropped = dropped;
  }

(* ------------------------------------------------------------------ *)
(* Shared-memory backend                                               *)
(* ------------------------------------------------------------------ *)

let run ?(machine = "proc") ?(capacity = 64) ?(depth = 1) ?(traced = false)
    ?telemetry ?events_out ?dropped_out ~nclients ~messages waiting =
  if depth <= 0 then invalid_arg "Proc_driver.run: depth must be positive";
  if messages <= 0 then
    invalid_arg "Proc_driver.run: messages must be positive";
  (* Tracing is opt-in here, unlike Real_driver: the pipe/socket
     baselines these rows race against can't be traced, and the ~45 ns
     per event (≈ 0.4 µs per round trip across both sides) would be
     charged to shm alone.  [events_out] implies tracing — it's the
     feed for bin/ulipc_trace, whose runs are about the events.  The
     sink is created pre-fork so each process inherits an empty private
     copy. *)
  let traced = traced || Option.is_some events_out in
  let trace =
    if traced then Some (Ulipc_real.Trace_ring.create ~capacity:65536 ())
    else None
  in
  let t = Ulipc_procipc.Proc_rpc.create ~capacity ?trace ~nclients waiting in
  let arena = Ulipc_procipc.Proc_rpc.arena t in
  (* Barrier words: READY counts checked-in clients, GO releases them. *)
  let ready_w = Ulipc_procipc.Parena.alloc_line arena ~words:Ulipc_procipc.Parena.cache_line_words in
  let go_w = Ulipc_procipc.Parena.alloc_line arena ~words:Ulipc_procipc.Parena.cache_line_words in
  (* Telemetry across the fork boundary: each client owns one arena
     cache line and plain-stores its measured-message count there after
     every send (single writer per word — the same TSO publish the rings
     rely on), so the PARENT can sample children live.  The parent never
     spawns a domain (fork discipline): it samples inline with
     [Telemetry.tick] from the report-collection select loop below. *)
  let tel =
    match telemetry with
    | Some tel -> tel
    | None -> Ulipc_observe.Telemetry.create ()
  in
  let msgs_w =
    Array.init nclients (fun _ ->
        Ulipc_procipc.Parena.alloc_line arena
          ~words:Ulipc_procipc.Parena.cache_line_words)
  in
  Ulipc_observe.Telemetry.ext_counters tel (fun () ->
      let total =
        Array.fold_left
          (fun acc w -> acc + Ulipc_procipc.Parena.get arena w)
          0 msgs_w
      in
      [ ("messages", total) ]);
  Ulipc_observe.Telemetry.gauge tel "ring_depth_0" (fun () ->
      float_of_int (Ulipc_procipc.Proc_rpc.request_depth t));
  Ulipc_observe.Telemetry.gauge tel "slab_in_use" (fun () ->
      float_of_int
        (Ulipc_procipc.Pslab.in_use_count (Ulipc_procipc.Proc_rpc.slab t)));
  let probe_total = if depth = 1 then probe_warmup + probe_ops else 0 in
  let server_role () =
    let remaining = ref ((nclients * messages) + probe_total) in
    let waiting_s = ref 0.0 in
    while !remaining > 0 do
      let before = Ulipc_observe.Clock.now_us () in
      Ulipc_procipc.Proc_rpc.serve t (fun ~client:_ v ->
          waiting_s := !waiting_s +. ((Ulipc_observe.Clock.now_us () -. before) /. 1.0e6);
          v + 1);
      decr remaining
    done;
    Ulipc_procipc.Proc_rpc.harvest_sem_counters t;
    child_report ~waiting_s:!waiting_s
      ~finish_us:(Ulipc_observe.Clock.now_us ())
      ~counters:(Ulipc_procipc.Proc_rpc.counters t) ~trace ()
  in
  let client_role c () =
    let hist = Ulipc.Histogram.create "round-trip (us)" in
    let minor_words = ref nan in
    if c = 0 && probe_total > 0 then begin
      for i = 1 to probe_warmup do
        if Ulipc_procipc.Proc_rpc.send t ~client:0 i <> i + 1 then
          failwith "Proc_driver.run: echo mismatch"
      done;
      let calib =
        let a = Gc.minor_words () in
        Gc.minor_words () -. a
      in
      let w0 = Gc.minor_words () in
      for i = 1 to probe_ops do
        ignore (Ulipc_procipc.Proc_rpc.send t ~client:0 i : int)
      done;
      let w1 = Gc.minor_words () in
      minor_words :=
        Float.max 0.0 ((w1 -. w0 -. calib) /. float_of_int probe_ops)
    end;
    ignore (Ulipc_procipc.Parena.at_fetch_add arena ready_w 1 : int);
    while Ulipc_procipc.Parena.at_load arena go_w = 0 do
      Ulipc_procipc.Parena.sched_yield ()
    done;
    if depth = 1 then
      for i = 1 to messages do
        let before = Ulipc_observe.Clock.now_us () in
        let ans = Ulipc_procipc.Proc_rpc.send t ~client:c i in
        let after = Ulipc_observe.Clock.now_us () in
        if ans <> i + 1 then failwith "Proc_driver.run: echo mismatch";
        Ulipc.Histogram.record hist (after -. before);
        Ulipc_procipc.Parena.set arena msgs_w.(c) i
      done
    else begin
      let sent = ref 0 in
      while !sent < messages do
        let k = min depth (messages - !sent) in
        let burst = Array.init k (fun j -> !sent + j + 1) in
        let before = Ulipc_observe.Clock.now_us () in
        let answers = Ulipc_procipc.Proc_rpc.call_pipelined t ~client:c ~depth burst in
        let after = Ulipc_observe.Clock.now_us () in
        Array.iteri
          (fun j ans ->
            if ans <> burst.(j) + 1 then
              failwith "Proc_driver.run: echo mismatch")
          answers;
        let per_msg_us = (after -. before) /. float_of_int k in
        for _ = 1 to k do
          Ulipc.Histogram.record hist per_msg_us
        done;
        sent := !sent + k;
        Ulipc_procipc.Parena.set arena msgs_w.(c) !sent
      done
    end;
    let finish_us = Ulipc_observe.Clock.now_us () in
    Ulipc_procipc.Proc_rpc.harvest_sem_counters t;
    child_report ~hist ~minor_words:!minor_words ~finish_us
      ~counters:(Ulipc_procipc.Proc_rpc.counters t) ~trace ()
  in
  let server = fork_child server_role in
  let clients = List.init nclients (fun c -> fork_child (client_role c)) in
  (* Parent: wait for every client to check in, release them together. *)
  while Ulipc_procipc.Parena.at_load arena ready_w < nclients do
    Ulipc_procipc.Parena.sched_yield ()
  done;
  let t0_us = Ulipc_observe.Clock.now_us () in
  Ulipc_procipc.Parena.at_store arena go_w 1;
  (* Open the measured window at t0 (this frame's deltas cover only the
     pre-barrier setup, all zeros), then sample inline while waiting for
     the children's reports: select with the sampling interval as the
     timeout over every unread report pipe, one tick per wake-up.  Once
     a pipe turns readable its child has finished and is marshalling —
     the blocking Marshal read drains it promptly. *)
  ignore (Ulipc_observe.Telemetry.tick tel : Ulipc_observe.Series.frame);
  let client_reports =
    let interval_s = Ulipc_observe.Telemetry.interval_ms tel /. 1000.0 in
    let by_fd = Hashtbl.create (2 * nclients) in
    let pending = ref clients in
    while !pending <> [] do
      let fds = List.map snd !pending in
      let readable, _, _ =
        try Unix.select fds [] [] interval_s
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      ignore (Ulipc_observe.Telemetry.tick tel : Ulipc_observe.Series.frame);
      let done_, rest =
        List.partition (fun (_, rd) -> List.memq rd readable) !pending
      in
      List.iter
        (fun ((_, rd) as child) -> Hashtbl.replace by_fd rd (read_report child))
        done_;
      pending := rest
    done;
    List.map (fun (_, rd) -> Hashtbl.find by_fd rd) clients
  in
  let server_report = read_report server in
  let t1_us =
    List.fold_left
      (fun acc r -> Float.max acc r.r_finish_us)
      t0_us client_reports
  in
  let elapsed_s = (t1_us -. t0_us) /. 1.0e6 in
  let utilization =
    if elapsed_s <= 0.0 then nan
    else
      Float.max 0.0
        (Float.min 1.0 (1.0 -. (server_report.r_waiting_s /. elapsed_s)))
  in
  let latency = Ulipc.Histogram.create "round-trip (us)" in
  let counters = Ulipc.Counters.create () in
  let minor_words_per_op = ref nan in
  let all_events = ref [] and all_dropped = ref 0 in
  let absorb r =
    Ulipc.Counters.add counters r.r_counters;
    (match r.r_hist with
    | Some h -> Ulipc.Histogram.merge_into ~dst:latency h
    | None -> ());
    if Float.is_nan r.r_minor_words |> not then
      minor_words_per_op := r.r_minor_words;
    all_events := List.rev_append r.r_events !all_events;
    all_dropped := !all_dropped + r.r_dropped
  in
  List.iter absorb client_reports;
  absorb server_report;
  counters.Ulipc.Counters.slab_hwm <- Ulipc_procipc.Pslab.high_water (Ulipc_procipc.Proc_rpc.slab t);
  (* Close the window: the final frame's message delta makes the summed
     per-window deltas equal the row's messages exactly. *)
  ignore (Ulipc_observe.Telemetry.tick tel : Ulipc_observe.Series.frame);
  let series = Ulipc_observe.Telemetry.frames tel in
  let events = List.sort Ulipc_observe.Event.compare !all_events in
  (match events_out with Some r -> r := events | None -> ());
  (match dropped_out with Some r -> r := !all_dropped | None -> ());
  let wake_latency_p50_us, wake_latency_p99_us =
    if not traced then (nan, nan)
    else begin
      let report =
        Ulipc_observe.Trace_analysis.analyse ~complete:(!all_dropped = 0)
          events
      in
      let d = report.Ulipc_observe.Trace_analysis.wake_latency in
      ( d.Ulipc_observe.Trace_analysis.p50_us,
        d.Ulipc_observe.Trace_analysis.p99_us )
    end
  in
  Metrics.of_real ~latency ~utilization ~utilization_max:utilization ~depth
    ~nservers:1 ~wake_latency_p50_us ~wake_latency_p99_us
    ~minor_words_per_op:!minor_words_per_op ~series ~machine
    ~protocol:(kind_of_waiting waiting)
    ~nclients
    ~messages:(nclients * messages)
    ~elapsed_s ~counters ()

(* ------------------------------------------------------------------ *)
(* File-descriptor baselines: pipes and Unix-domain sockets            *)
(* ------------------------------------------------------------------ *)

type fd_transport = Fd_pipe | Fd_socket

let fd_transport_name = function Fd_pipe -> "pipe" | Fd_socket -> "socket"

let payload_bytes = 8

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n = Unix.write fd buf pos len in
    write_all fd buf (pos + n) (len - n)
  end

let rec read_all fd buf pos len =
  if len > 0 then
    match Unix.read fd buf pos len with
    | 0 -> raise End_of_file
    | n -> read_all fd buf (pos + n) (len - n)

let put_payload buf v = Bytes.set_int64_le buf 0 (Int64.of_int v)
let get_payload buf = Int64.to_int (Bytes.get_int64_le buf 0)

(* One kernel-object channel per client: a pipe pair or one socketpair.
   The server blocks in read (1 client) or select (n clients) — the
   kernel's own sleep/wake-up protocol, which is exactly why these rows
   are the baseline the shm protocols must beat: same blocking
   semantics, but every message pays two syscalls and a copy each way. *)
let run_fd ?(machine = "proc") ~transport ~nclients ~messages () =
  if messages <= 0 then
    invalid_arg "Proc_driver.run_fd: messages must be positive";
  let mk_pair () =
    match transport with
    | Fd_pipe ->
      let c2s_r, c2s_w = Unix.pipe ~cloexec:false () in
      let s2c_r, s2c_w = Unix.pipe ~cloexec:false () in
      ((c2s_r, s2c_w), (s2c_r, c2s_w))
      (* (server's fds), (client's fds) *)
    | Fd_socket ->
      let a, b = Unix.socketpair ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      ((a, a), (b, b))
  in
  let pairs = Array.init nclients (fun _ -> mk_pair ()) in
  (* Ready/go over pipes (no arena here): each client writes one READY
     byte and waits for one GO byte on its own control pipe. *)
  let ready_r, ready_w = Unix.pipe ~cloexec:false () in
  let go_pipes = Array.init nclients (fun _ -> Unix.pipe ~cloexec:false ()) in
  let close_both (a, b) =
    Unix.close a;
    if b <> a then Unix.close b
  in
  let server_role () =
    Unix.close ready_r;
    Unix.close ready_w;
    Array.iter (fun (_, g) -> Unix.close g) go_pipes;
    Array.iter (fun (g, _) -> Unix.close g) go_pipes;
    Array.iter (fun (_, cl) -> close_both cl) pairs;
    let buf = Bytes.create payload_bytes in
    let waiting_s = ref 0.0 in
    let remaining = ref (nclients * messages) in
    if nclients = 1 then begin
      let rd, wr = fst pairs.(0) in
      while !remaining > 0 do
        let before = Ulipc_observe.Clock.now_us () in
        read_all rd buf 0 payload_bytes;
        waiting_s :=
          !waiting_s +. ((Ulipc_observe.Clock.now_us () -. before) /. 1.0e6);
        put_payload buf (get_payload buf + 1);
        write_all wr buf 0 payload_bytes;
        decr remaining
      done
    end
    else begin
      let rds = Array.map (fun ((rd, _), _) -> rd) pairs in
      let by_fd = Hashtbl.create nclients in
      Array.iteri (fun i rd -> Hashtbl.replace by_fd rd i) rds;
      (* Select only on clients that still owe requests: a client that
         got its last reply exits and closes its write end, and a dead
         client's fd reads as perpetual EOF — keeping it in the select
         set would spin the loop and crash the read. *)
      let per_client = Array.make nclients messages in
      let live_rds () =
        List.filteri (fun i _ -> per_client.(i) > 0) (Array.to_list rds)
      in
      while !remaining > 0 do
        let before = Ulipc_observe.Clock.now_us () in
        let readable, _, _ = Unix.select (live_rds ()) [] [] (-1.0) in
        waiting_s :=
          !waiting_s +. ((Ulipc_observe.Clock.now_us () -. before) /. 1.0e6);
        List.iter
          (fun rd ->
            let i = Hashtbl.find by_fd rd in
            let _, wr = fst pairs.(i) in
            read_all rd buf 0 payload_bytes;
            put_payload buf (get_payload buf + 1);
            write_all wr buf 0 payload_bytes;
            per_client.(i) <- per_client.(i) - 1;
            decr remaining)
          readable
      done
    end;
    let counters = Ulipc.Counters.create () in
    counters.Ulipc.Counters.receives <- nclients * messages;
    counters.Ulipc.Counters.replies <- nclients * messages;
    child_report ~waiting_s:!waiting_s
      ~finish_us:(Ulipc_observe.Clock.now_us ())
      ~counters ~trace:None ()
  in
  let client_role c () =
    Unix.close ready_r;
    Array.iteri
      (fun i (g_r, g_w) ->
        Unix.close g_w;
        if i <> c then Unix.close g_r)
      go_pipes;
    Array.iteri
      (fun i (sv, cl) ->
        close_both sv;
        if i <> c then close_both cl)
      pairs;
    let rd, wr = snd pairs.(c) in
    let buf = Bytes.create payload_bytes in
    let hist = Ulipc.Histogram.create "round-trip (us)" in
    write_all ready_w buf 0 1;
    Unix.close ready_w;
    let go_r = fst go_pipes.(c) in
    read_all go_r buf 0 1;
    Unix.close go_r;
    for i = 1 to messages do
      let before = Ulipc_observe.Clock.now_us () in
      put_payload buf i;
      write_all wr buf 0 payload_bytes;
      read_all rd buf 0 payload_bytes;
      let after = Ulipc_observe.Clock.now_us () in
      if get_payload buf <> i + 1 then
        failwith "Proc_driver.run_fd: echo mismatch";
      Ulipc.Histogram.record hist (after -. before)
    done;
    let counters = Ulipc.Counters.create () in
    counters.Ulipc.Counters.sends <- messages;
    child_report ~hist ~finish_us:(Ulipc_observe.Clock.now_us ()) ~counters
      ~trace:None ()
  in
  let server = fork_child server_role in
  let clients = List.init nclients (fun c -> fork_child (client_role c)) in
  (* Parent: close its copies of the data-plane fds, collect READY
     bytes, stamp t0, release everyone. *)
  Array.iter
    (fun (sv, cl) ->
      close_both sv;
      close_both cl)
    pairs;
  Unix.close ready_w;
  let b = Bytes.create 1 in
  for _ = 1 to nclients do
    read_all ready_r b 0 1
  done;
  Unix.close ready_r;
  let t0_us = Ulipc_observe.Clock.now_us () in
  Array.iter
    (fun (g_r, g_w) ->
      write_all g_w b 0 1;
      Unix.close g_w;
      Unix.close g_r)
    go_pipes;
  let client_reports = List.map read_report clients in
  let server_report = read_report server in
  let t1_us =
    List.fold_left
      (fun acc r -> Float.max acc r.r_finish_us)
      t0_us client_reports
  in
  let elapsed_s = (t1_us -. t0_us) /. 1.0e6 in
  let utilization =
    if elapsed_s <= 0.0 then nan
    else
      Float.max 0.0
        (Float.min 1.0 (1.0 -. (server_report.r_waiting_s /. elapsed_s)))
  in
  let latency = Ulipc.Histogram.create "round-trip (us)" in
  let counters = Ulipc.Counters.create () in
  List.iter
    (fun r ->
      Ulipc.Counters.add counters r.r_counters;
      match r.r_hist with
      | Some h -> Ulipc.Histogram.merge_into ~dst:latency h
      | None -> ())
    client_reports;
  Ulipc.Counters.add counters server_report.r_counters;
  (* The kernel's blocking read IS a sleep/wake-up protocol: report the
     row under BSW so the ladder compares like with like. *)
  Metrics.of_real ~latency ~utilization ~utilization_max:utilization ~depth:1
    ~nservers:1 ~machine ~protocol:Ulipc.Protocol_kind.BSW ~nclients
    ~messages:(nclients * messages)
    ~elapsed_s ~counters ()
