(** Writer for the [BENCH_real.json] perf-trajectory file.

    Lives in the library (rather than the bench binary) so the test suite
    can emit a file and parse it back: every number goes through
    {!json_float}, which serialises non-finite values as [null] — a raw
    [nan]/[inf] token is not valid JSON and breaks downstream parsers. *)

val json_float : float -> string
(** Decimal rendering of a finite float; ["null"] for nan/±inf. *)

val json_escape : string -> string
(** Escape a string for inclusion between JSON double quotes. *)

val write :
  path:string ->
  quick:bool ->
  micro:(string * float) list ->
  ?sem:Sem_bench.result list ->
  real:(string * string * Metrics.t) list ->
  unit ->
  unit
(** Write schema [ulipc-bench-real/9]: the Bechamel ns/op rows, the
    semaphore directed-wake-latency sweep ([sem], default empty — one
    row per waiter population from {!Sem_bench.wake_latency}), and the
    real-driver echo rows as [(backend, transport, metrics)] triples —
    [backend] is ["inproc"] for OCaml-domain rows and ["proc"] for the
    fork'd cross-process rows, [transport] ["ring"]/["two-lock"] in
    process and ["shm"]/["pipe"]/["socket"] across processes — with
    a [depth] pipelining column, a measured [utilization],
    [latency_p50_us]/[latency_p99_us]/[latency_max_us] fields from the
    round-trip histogram ([null] when latency was not collected), and
    [wake_latency_p50_us]/[wake_latency_p99_us] recovered from the run's
    event trace ([null] for protocols that never block).

    Schema /9 adds a [series] array per row — the run's sampled
    telemetry timeline ({!Metrics.t.series}), one object per frame with
    [t_us]/[window_us] and a flat [points] map.  It is emitted as the
    row's LAST key, keeping compare.exe's first-occurrence line scanner
    blind to point names that shadow row columns. *)
