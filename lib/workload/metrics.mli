(** Results of one client-server benchmark run. *)

type t = {
  machine : string;
  protocol : Ulipc.Protocol_kind.t;
  nclients : int;
  nservers : int;
      (** server domains (request shards) the run used; the simulator and
          single-server real runs report 1 *)
  messages : int;  (** echo requests processed (excludes connects/disconnects) *)
  elapsed : Ulipc_engine.Sim_time.t;
      (** §2.2's measurement window: from the barrier release (first
          request) until the last client's disconnect is processed *)
  throughput_msg_per_ms : float;
  latency_us : Ulipc.Histogram.t option;
      (** per-send round-trip latency in µs, when collection was enabled:
          a log-bucketed {!Ulipc.Histogram}, the one report format both
          the simulator and the real-domains driver fill *)
  counters : Ulipc.Counters.t;
  server_usage : Ulipc_os.Syscall.usage;
  client_usage : Ulipc_os.Syscall.usage list;
  total_sim_time : Ulipc_engine.Sim_time.t;  (** whole-run simulated time *)
  sim_steps : int;  (** process steps executed by the simulator *)
  total_yields : int;
      (** yield/handoff system calls across all processes during the run *)
  utilization : float;
      (** machine utilization over the whole run, in [0, 1]; the cost
          busy-waiting pays.  Simulator runs report busy time / (ncpus ×
          elapsed); real runs report server service time (request in
          hand to reply enqueued) over wall clock — for a pool, the mean
          over all server domains *)
  utilization_max : float;
      (** the busiest single server's utilization; equals [utilization]
          when [nservers = 1].  The spread between the two is the
          imbalance the steal protocol did not (or could not) smooth *)
  depth : int;
      (** pipelining depth: requests a client keeps outstanding at once
          (1 = synchronous send/receive/reply) *)
  wake_latency_p50_us : float;
      (** wake-up latency (a producer's V to the dequeue it enabled)
          recovered by {!Ulipc_observe.Trace_analysis} from the run's
          event trace; [nan] when no trace was taken or no blocking
          wake-up occurred *)
  wake_latency_p99_us : float;
  minor_words_per_op : float;
      (** minor-heap words allocated per steady-state round-trip on the
          issuing client's domain ([Gc.minor_words] delta over a calibrated
          probe run, clamped at 0) — the zero-copy message plane's
          regression gate.  [nan] for simulator runs and whenever the
          probe was not taken. *)
  series : Ulipc_observe.Series.frame list;
      (** the run's sampled telemetry timeline, oldest frame first:
          per-window throughput/latency/counter deltas plus queue-depth
          and slab gauges (see {!Ulipc_observe.Telemetry}).  Empty for
          simulator runs and for runs measured without a telemetry
          plane. *)
}

val of_real :
  ?latency:Ulipc.Histogram.t ->
  ?utilization:float ->
  ?utilization_max:float ->
  ?depth:int ->
  ?nservers:int ->
  ?wake_latency_p50_us:float ->
  ?wake_latency_p99_us:float ->
  ?minor_words_per_op:float ->
  ?series:Ulipc_observe.Series.frame list ->
  machine:string ->
  protocol:Ulipc.Protocol_kind.t ->
  nclients:int ->
  messages:int ->
  elapsed_s:float ->
  counters:Ulipc.Counters.t ->
  unit ->
  t
(** Package a wall-clock measurement from the real-domains backend into
    the same record the simulator produces, so both report through one
    set of printers.  [elapsed_s] is wall-clock seconds; [latency] is the
    merged per-call round-trip histogram (µs); [utilization] (default
    [nan]) is the server pool's mean measured busy fraction and
    [utilization_max] (default: [utilization]) the busiest server's;
    [depth] (default 1) the pipelining depth the clients ran at;
    [nservers] (default 1) the server-pool size.  Fields only a simulated
    kernel can account (usage, sim steps, yields) are zero. *)

val round_trip_us : t -> float
(** Mean round-trip latency implied by throughput and client count:
    [nclients × elapsed / messages], in µs.  Matches the paper's
    "119 µs round-trip at one client" style of reporting. *)

val latency_percentile : t -> float -> float option
(** [latency_percentile t p] from the collected histogram; [None] when
    latency was not collected (or holds no samples). *)

val latency_max : t -> float option
(** Exact maximum of the collected round-trip latencies, when present. *)

val yields_per_message : t -> float
(** Yield-class system calls (yield/handoff) per echo message, summed over
    all processes — the §2.2 instrumentation that exposed the 2.5-yields
    effect. *)

val server_vcsw_per_message : t -> float

val pp : Format.formatter -> t -> unit

val pp_row : Format.formatter -> t -> unit
(** One aligned table row: protocol, clients, throughput, latency — plus
    p50/p99/max round-trip columns when the latency histogram holds
    samples. *)
