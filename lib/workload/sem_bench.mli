(** Directed wake-latency measurement for the waiting-array semaphore.

    Parks [waiters] systhreads on a fresh {!Ulipc_real.Rsem} (threads,
    not domains — the 512-waiter point exceeds OCaml's practical domain
    count), then releases them one directed credit at a time, validating
    every round through {!Ulipc_observe.Trace_analysis} and pooling the
    causal V→run latencies.  This is the evidence pipeline for the
    waiting array's claim: p99 wake latency stays flat as the parked
    population grows, because each V writes into exactly one slot
    instead of contending a global mutex against every sleeper.

    Parking is serialised and grants are paced (see the implementation
    header) so the causal pairing is exact: any reordering or lost
    wake-up surfaces as a nonzero [violations] count, not as noise. *)

type result = {
  waiters : int;
  reps : int;  (** park-and-drain rounds run *)
  samples : float array;  (** per-wake latency, us, sorted ascending *)
  p50_us : float;
  p99_us : float;
  max_us : float;
  violations : int;  (** trace-invariant violations across all rounds *)
  broadcasts : int;
      (** grants that hit a generation-shared slot (0 when the array is
          sized to the population) *)
}

val wake_latency :
  ?slots:int -> ?target_samples:int -> waiters:int -> unit -> result
(** [wake_latency ~waiters ()] runs enough park-and-drain rounds to
    collect about [target_samples] (default 256) latencies.  [slots]
    sizes the waiting array (default [waiters], so every waiter gets a
    private slot; pass fewer to exercise generation-shared slots and
    the broadcast path).
    @raise Invalid_argument if [waiters < 1].
    @raise Failure if a wake-up is lost (60 s await timeout). *)
