open Ulipc_engine
open Ulipc_os

type config = {
  procs : int;
  busy_mean : Sim_time.t;
  idle_mean : Sim_time.t;
  seed : int;
}

let config ?(procs = 2) ?(busy_mean = Sim_time.us 500)
    ?(idle_mean = Sim_time.ms 5) ?(seed = 7) () =
  if procs <= 0 then invalid_arg "Noise.config: procs must be positive";
  if busy_mean <= 0 || idle_mean <= 0 then
    invalid_arg "Noise.config: means must be positive";
  { procs; busy_mean; idle_mean; seed }

let duty_cycle c =
  float_of_int c.procs
  *. float_of_int c.busy_mean
  /. float_of_int (c.busy_mean + c.idle_mean)

let spawn kernel ~stop c =
  let master = Rng.create ~seed:c.seed in
  for i = 0 to c.procs - 1 do
    let rng = Rng.split master in
    ignore
      (Kernel.spawn kernel
         ~name:(Printf.sprintf "noise-%d" i)
         (fun () ->
           while not !stop do
             let burst =
               Rng.exponential rng ~mean:(float_of_int c.busy_mean)
             in
             Usys.work (max 1 (int_of_float burst));
             let idle = Rng.exponential rng ~mean:(float_of_int c.idle_mean) in
             Usys.sleep (max 1 (int_of_float idle))
           done))
  done
