(** Server architectures (§2.1's design discussion and §8's
    multiprocessor future work).

    The paper's evaluation uses one single-threaded server with one shared
    request queue and a reply queue per client, and notes that "an
    alternative architecture might be to have a server thread per client,
    but that would require two queues per client to implement the
    full-duplex virtual connection".  On the 8-CPU Challenge the single
    server is also the saturation point of Figure 11, which §8's
    multiprocessor future work invites us past.  This module runs the echo
    workload under three architectures:

    - {!Single_queue}: the paper's setup (any protocol);
    - {!Thread_per_client}: one server thread and one full-duplex
      connection (two queues) per client — each connection is simply a
      one-client session of the chosen protocol;
    - {!Multi_server}: [k] server threads sharing one request queue.
      Sharing a blocking queue among consumers needs per-item wake-up
      grants, so this architecture runs the {!Ulipc.Protocol_kind.CSEM}
      protocol regardless of [kind]. *)

type architecture =
  | Single_queue
  | Thread_per_client
  | Multi_server of int  (** number of server threads; must be > 0 *)

val architecture_name : architecture -> string

type result = {
  architecture : architecture;
  protocol : Ulipc.Protocol_kind.t;  (** the protocol actually run *)
  nclients : int;
  messages : int;
  elapsed : Ulipc_engine.Sim_time.t;  (** whole run, spawn to completion *)
  throughput_msg_per_ms : float;
  utilization : float;
  server_threads : int;
}

val run :
  ?capacity:int ->
  machine:Ulipc_machines.Machine.t ->
  kind:Ulipc.Protocol_kind.t ->
  architecture:architecture ->
  nclients:int ->
  messages_per_client:int ->
  unit ->
  result
(** Run the echo workload under the given architecture.  Unlike
    {!Driver.run} there is no barrier phase: all architectures are
    measured over the whole run, so results compare across architectures
    but not against {!Driver} numbers.
    @raise Invalid_argument on bad parameters.
    @raise Failure if the run does not complete. *)

val pp_result : Format.formatter -> result -> unit
