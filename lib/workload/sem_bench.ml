(* Wake-latency measurement for the waiting-array semaphore: park a
   population of waiters, deliver one directed credit at a time, and
   recover the V -> woken-waiter-runs latency distribution through the
   causal trace analysis — the pipeline that proves (or refutes) the
   claim the waiting array exists for: p99 wake latency stays flat as
   the parked population grows 2 -> 512.

   Waiters are systhreads, not domains: OCaml caps domains near the
   core-count scale (the sharded driver already stops at 96 client
   domains), while the 512-waiter point of the sweep needs five hundred
   concurrently parked entities.  Threads park and wake through the
   same Mutex/Condition slots — what the sweep measures is the
   semaphore's wake discipline, not domain parallelism.

   Events are assembled from per-waiter stamp arrays rather than
   recorded through {!Ulipc_real.Trace_ring}: the ring is per-domain
   and unsynchronised by design, so hundreds of threads of one domain
   recording into it would race.  Each waiter owns two cells of
   pre-sized arrays (no sharing, no allocation during measurement); the
   granter owns two more per credit.  The assembled stream carries one
   actor per waiter with contiguous sequence numbers, so the full
   violation checker applies.

   Two disciplines make the causal pairing exact rather than merely
   plausible:

   - SERIAL PARKING.  The analysis pairs a Wake with the oldest pending
     Block by timestamp; the semaphore serves park tickets in claim
     order.  A park storm can claim tickets in a different order than
     the Block stamps were taken (stamp and ticket are two
     instructions), which the analysis would misread as a
     wake-without-dequeue.  Waiter [i] therefore stamps its Block only
     once [i] waiters are already committed ([Rsem.parked] = i), which
     pins stamp order to ticket order.
   - PACED GRANTS.  Each credit is posted only after the previous
     waiter's Dequeue stamp is published, so every sample is one
     complete signal -> schedule -> run handoff with no grant queueing
     behind the granter's own loop.  Bulk grants would measure the
     granter's loop length (linear in the population), burying exactly
     the per-wake flatness the sweep exists to show.

   Small populations repeat the whole park-and-drain round until
   [target_samples] latencies are collected, so the 2-waiter and
   512-waiter rows rest on comparable sample counts. *)

type result = {
  waiters : int;
  reps : int;  (** park-and-drain rounds run *)
  samples : float array;  (** per-wake latency, us, sorted ascending *)
  p50_us : float;
  p99_us : float;
  max_us : float;
  violations : int;  (** trace-invariant violations across all rounds *)
  broadcasts : int;
      (** grants that hit a generation-shared slot (0 when the array is
          sized to the population) *)
}

let nearest_rank sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = int_of_float (Float.ceil (q /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(* Sleep-poll, never spin: a [Thread.yield] loop on a single CPU can
   keep winning the scheduler against the very thread it is waiting for
   (the sleeper's vruntime is behind after blocking), which showed up as
   millisecond wake-latency bursts that belong to the harness, not the
   semaphore.  [Thread.delay] releases both the runtime lock and the
   CPU, so the awaited thread runs at once; the poll granularity only
   delays the {e next} grant, never a measured stamp interval. *)
let await ~what pred =
  let deadline = Unix.gettimeofday () +. 60.0 in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Thread.delay 20e-6
  done;
  if not (pred ()) then
    failwith ("Sem_bench: timed out waiting for " ^ what ^ " (lost wake-up?)")

(* One park-and-drain round: returns (wake-latency samples, violation
   count, shared-slot broadcasts). *)
let round ~slots ~waiters:n =
  let s = Ulipc_real.Rsem.create ~spin:0 ~slots 0 in
  let block_ns = Array.make n 0 in
  let deq_ns = Array.make n 0 in
  let enq_ns = Array.make n 0 in
  let wake_ns = Array.make n 0 in
  let released = Atomic.make 0 in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            await ~what:"park turn" (fun () -> Ulipc_real.Rsem.parked s = i);
            block_ns.(i) <- Ulipc_observe.Clock.now_ns ();
            Ulipc_real.Rsem.p s;
            deq_ns.(i) <- Ulipc_observe.Clock.now_ns ();
            Atomic.incr released)
          ())
  in
  await ~what:"all waiters parked" (fun () -> Ulipc_real.Rsem.parked s = n);
  for k = 0 to n - 1 do
    enq_ns.(k) <- Ulipc_observe.Clock.now_ns ();
    wake_ns.(k) <- Ulipc_observe.Clock.now_ns ();
    Ulipc_real.Rsem.v s;
    await ~what:"directed wake" (fun () -> Atomic.get released > k)
  done;
  List.iter Thread.join threads;
  (* Waiter [i] is actor [i + 1] (Block seq 0, Dequeue seq 1); the
     granter is actor 0 (Enqueue seq 2k, Wake seq 2k+1).  One channel. *)
  let us ns = float_of_int ns /. 1.0e3 in
  let events = ref [] in
  let push t_us actor seq kind =
    events :=
      { Ulipc_observe.Event.t_us; actor; seq; chan = 0; kind } :: !events
  in
  for i = 0 to n - 1 do
    push (us block_ns.(i)) (i + 1) 0 Ulipc_observe.Event.Block;
    push (us deq_ns.(i)) (i + 1) 1 Ulipc_observe.Event.Dequeue;
    push (us enq_ns.(i)) 0 (2 * i) Ulipc_observe.Event.Enqueue;
    push (us wake_ns.(i)) 0 ((2 * i) + 1) Ulipc_observe.Event.Wake
  done;
  let report = Ulipc_observe.Trace_analysis.analyse ~complete:true !events in
  let samples =
    List.map Ulipc_observe.Trace_analysis.pair_us
      report.Ulipc_observe.Trace_analysis.wake_pairs
  in
  ( samples,
    List.length report.Ulipc_observe.Trace_analysis.violations,
    Ulipc_real.Rsem.shared_slot_broadcasts s )

let wake_latency ?slots ?(target_samples = 256) ~waiters () =
  if waiters < 1 then invalid_arg "Sem_bench.wake_latency: waiters < 1";
  let slots = match slots with Some k -> k | None -> waiters in
  let reps = max 1 ((target_samples + waiters - 1) / waiters) in
  let samples = ref [] and violations = ref 0 and broadcasts = ref 0 in
  for _ = 1 to reps do
    let s, v, b = round ~slots ~waiters in
    samples := List.rev_append s !samples;
    violations := !violations + v;
    broadcasts := !broadcasts + b
  done;
  let samples = Array.of_list !samples in
  Array.sort Float.compare samples;
  {
    waiters;
    reps;
    samples;
    p50_us = nearest_rank samples 50.0;
    p99_us = nearest_rank samples 99.0;
    max_us =
      (if Array.length samples = 0 then nan
       else samples.(Array.length samples - 1));
    violations = !violations;
    broadcasts = !broadcasts;
  }
