open Ulipc_engine
open Ulipc_os

type config = {
  machine : Ulipc_machines.Machine.t;
  kind : Ulipc.Protocol_kind.t;
  nclients : int;
  messages_per_client : int;
  capacity : int;
  fixed_priority : bool;
  server_work : Sim_time.t;
  client_think : Sim_time.t;
  collect_latency : bool;
  trace : Trace.t option;
  events : Ulipc_observe.Sink.t option;
  time_limit : Sim_time.t option;
  iface : Ulipc.Iface.t option;
  noise : Noise.config option;
}

let config ?(capacity = 64) ?(fixed_priority = false)
    ?(server_work = Sim_time.zero) ?(client_think = Sim_time.zero)
    ?(collect_latency = false) ?trace ?events ?time_limit ?iface ?noise
    ~machine ~kind ~nclients ~messages_per_client () =
  {
    machine;
    kind;
    nclients;
    messages_per_client;
    capacity;
    fixed_priority;
    server_work;
    client_think;
    collect_latency;
    trace;
    events;
    time_limit;
    iface;
    noise;
  }

exception Hung of Kernel.run_result

type outcome = {
  metrics : Metrics.t;
  kernel : Kernel.t;
  session : Ulipc.Session.t;
  server : Proc.t;
  clients : Proc.t list;
}

(* Fixed priority is granted by the launcher BEFORE the processes start
   competing, as the paper's super-user setup does.  Granting it from
   inside a process body instead reproduces the starvation the paper warns
   about: the first process to enter the real-time class outranks every
   timeshare process, and its busy-wait yields never let the others run
   (see the companion test in test_workload.ml). *)
let grant_fixed_priority cfg proc =
  if cfg.fixed_priority then proc.Proc.fixed_prio <- true

(* The server body: answer Connect requests all at once when every client
   has arrived (the barrier), then echo until every client disconnected.
   Returns the measurement window through the two refs. *)
let iface_of cfg =
  match cfg.iface with
  | Some iface -> iface
  | None -> Ulipc.Iface.of_kind cfg.kind

let server_body cfg session ~t_start ~t_stop ~echoed ~stop_noise () =
  let iface = iface_of cfg in
  (* Barrier: collect every client's Connect, then release all at once. *)
  let rec collect pending = function
    | 0 -> List.rev pending
    | n -> (
      let m = iface.Ulipc.Iface.receive session in
      match m.Ulipc.Message.opcode with
      | Ulipc.Message.Connect -> collect (m :: pending) (n - 1)
      | Ulipc.Message.Echo | Ulipc.Message.Disconnect | Ulipc.Message.Custom _
        ->
        failwith "server: expected Connect during the barrier phase")
  in
  let pending = collect [] cfg.nclients in
  List.iter
    (fun (m : Ulipc.Message.t) ->
      iface.Ulipc.Iface.reply session ~client:m.Ulipc.Message.reply_chan
        (Ulipc.Message.echo_reply m))
    pending;
  t_start := Usys.time ();
  let remaining = ref cfg.nclients in
  while !remaining > 0 do
    let m = iface.Ulipc.Iface.receive session in
    match m.Ulipc.Message.opcode with
    | Ulipc.Message.Echo ->
      Usys.work cfg.server_work;
      iface.Ulipc.Iface.reply session ~client:m.Ulipc.Message.reply_chan
        (Ulipc.Message.echo_reply m);
      incr echoed
    | Ulipc.Message.Disconnect ->
      iface.Ulipc.Iface.reply session ~client:m.Ulipc.Message.reply_chan
        (Ulipc.Message.echo_reply m);
      decr remaining
    | Ulipc.Message.Connect | Ulipc.Message.Custom _ ->
      failwith "server: unexpected request in the echo phase"
  done;
  t_stop := Usys.time ();
  stop_noise := true

let client_body cfg session ~client ~latency () =
  let iface = iface_of cfg in
  let send msg = iface.Ulipc.Iface.send session ~client msg in
  (* Connect doubles as the barrier: the reply releases us. *)
  let (_ : Ulipc.Message.t) =
    send (Ulipc.Message.make ~opcode:Connect ~reply_chan:client 0.0)
  in
  for seq = 1 to cfg.messages_per_client do
    Usys.work cfg.client_think;
    let arg = float_of_int ((client * 1_000_000) + seq) in
    let msg = Ulipc.Message.make ~opcode:Echo ~reply_chan:client ~seq arg in
    let ans =
      match latency with
      | None -> send msg
      | Some hist ->
        let before = Usys.time () in
        let ans = send msg in
        let after = Usys.time () in
        Ulipc.Histogram.record hist (Sim_time.to_us (Sim_time.sub after before));
        ans
    in
    (* Integrity: the reply must carry our argument and sequence number. *)
    if not (Float.equal ans.Ulipc.Message.arg arg) then
      failwith
        (Printf.sprintf "client %d: echo argument mismatch at seq %d" client
           seq);
    if ans.Ulipc.Message.seq <> seq then
      failwith (Printf.sprintf "client %d: sequence mismatch" client)
  done;
  let (_ : Ulipc.Message.t) =
    send (Ulipc.Message.make ~opcode:Disconnect ~reply_chan:client 0.0)
  in
  ()

let run_outcome cfg =
  if cfg.nclients <= 0 then invalid_arg "Driver.run: nclients must be positive";
  if cfg.messages_per_client < 0 then
    invalid_arg "Driver.run: messages_per_client must be non-negative";
  if cfg.fixed_priority
     && not cfg.machine.Ulipc_machines.Machine.supports_fixed_priority
  then
    invalid_arg
      (Printf.sprintf "Driver.run: %s does not support fixed priorities"
         cfg.machine.Ulipc_machines.Machine.name);
  let machine = cfg.machine in
  let kernel =
    Kernel.create
      ?trace:cfg.trace
      ~ncpus:machine.Ulipc_machines.Machine.ncpus
      ~policy:(machine.Ulipc_machines.Machine.policy ())
      ~costs:machine.Ulipc_machines.Machine.costs ()
  in
  let session =
    Ulipc.Session.create ?events:cfg.events ~kernel
      ~costs:machine.Ulipc_machines.Machine.costs
      ~multiprocessor:machine.Ulipc_machines.Machine.multiprocessor
      ~kind:cfg.kind ~nclients:cfg.nclients ~capacity:cfg.capacity ()
  in
  let t_start = ref Sim_time.zero and t_stop = ref Sim_time.zero in
  let echoed = ref 0 in
  let latency =
    if cfg.collect_latency then
      Some (Ulipc.Histogram.create "round-trip (us)")
    else None
  in
  let stop_noise = ref false in
  (match cfg.noise with
  | Some noise -> Noise.spawn kernel ~stop:stop_noise noise
  | None -> ());
  let server =
    Kernel.spawn kernel ~name:"server"
      (server_body cfg session ~t_start ~t_stop ~echoed ~stop_noise)
  in
  grant_fixed_priority cfg server;
  Ulipc.Session.register_server session server.Proc.pid;
  let clients =
    List.init cfg.nclients (fun client ->
        let proc =
          Kernel.spawn kernel
            ~name:(Printf.sprintf "client-%d" client)
            (client_body cfg session ~client ~latency)
        in
        grant_fixed_priority cfg proc;
        proc)
  in
  (match Kernel.run ?until:cfg.time_limit kernel with
  | Kernel.Completed -> ()
  | (Kernel.Deadlock _ | Kernel.Time_limit | Kernel.Step_limit) as r ->
    raise (Hung r));
  let elapsed = Sim_time.sub !t_stop !t_start in
  let messages = !echoed in
  let throughput =
    if elapsed > 0 then float_of_int messages /. Sim_time.to_ms elapsed
    else nan
  in
  let total_yields =
    List.fold_left
      (fun acc p -> acc + p.Proc.yield_count)
      0 (Kernel.procs kernel)
  in
  let wake_latency_p50_us, wake_latency_p99_us =
    match cfg.events with
    | None -> (nan, nan)
    | Some sink ->
      let report =
        Ulipc_observe.Trace_analysis.analyse
          ~complete:(Ulipc_observe.Sink.dropped sink = 0)
          (Ulipc_observe.Sink.events sink)
      in
      let d = report.Ulipc_observe.Trace_analysis.wake_latency in
      ( d.Ulipc_observe.Trace_analysis.p50_us,
        d.Ulipc_observe.Trace_analysis.p99_us )
  in
  let metrics = {
    Metrics.machine = machine.Ulipc_machines.Machine.name;
    protocol = cfg.kind;
    nclients = cfg.nclients;
    nservers = 1;
    messages;
    elapsed;
    throughput_msg_per_ms = throughput;
    latency_us = latency;
    counters = session.Ulipc.Session.counters;
    server_usage = Proc.usage_snapshot server;
    client_usage = List.map Proc.usage_snapshot clients;
    total_sim_time = Kernel.now kernel;
    sim_steps = Kernel.steps_executed kernel;
    total_yields;
    utilization = Kernel.utilization kernel;
    utilization_max = Kernel.utilization kernel;
    depth = 1;
    wake_latency_p50_us;
    wake_latency_p99_us;
    (* a simulated run has no real allocator behind it *)
    minor_words_per_op = nan;
    (* ... and no wall-clock sampler: the simulator's timeline is the
       event trace itself *)
    series = [];
  }
  in
  { metrics; kernel; session; server; clients }

let run cfg = (run_outcome cfg).metrics

let sweep cfg ~clients =
  List.map (fun nclients -> run { cfg with nclients }) clients
