(** Background load.

    The paper's measurements ran on real machines with daemons and other
    users; this simulator is otherwise noiseless, which is why, for
    example, a BSLS(20) client here never blocks where the paper reports
    3 % (Figure 10 discussion in EXPERIMENTS.md).  A noise process
    alternates exponentially-distributed CPU bursts and idle sleeps from
    its own deterministic random stream, competing for the CPU under the
    machine's normal scheduling. *)

type config = {
  procs : int;  (** number of background processes *)
  busy_mean : Ulipc_engine.Sim_time.t;  (** mean CPU burst *)
  idle_mean : Ulipc_engine.Sim_time.t;  (** mean sleep between bursts *)
  seed : int;
}

val config :
  ?procs:int ->
  ?busy_mean:Ulipc_engine.Sim_time.t ->
  ?idle_mean:Ulipc_engine.Sim_time.t ->
  ?seed:int ->
  unit ->
  config
(** Defaults: 2 processes, 500 µs bursts every 5 ms, seed 7 — a lightly
    loaded 1997 workstation. *)

val duty_cycle : config -> float
(** Expected fraction of one CPU the whole noise ensemble demands. *)

val spawn : Ulipc_os.Kernel.t -> stop:bool ref -> config -> unit
(** Spawn the noise processes.  They run until [!stop] is true (checked
    between bursts), so the driver can shut them down when the measured
    workload completes and the simulation can still terminate. *)
